#!/usr/bin/env python3
"""Perf-regression gate for the bench JSON documents.

The benches emit machine-readable results with --benchmark_format=json
(bench/bench_e9_readpath.cc, bench/bench_e3_query_time.cc):

  {"bench": "e9_readpath", "metrics": {"cold_start_speedup": 2.1, ...}}

Committed baselines under bench/baselines/ record, per metric, the
expected value and how to compare against it:

  {"bench": "e9_readpath",
   "metrics": {
     "cold_start_speedup": {"value": 2.1, "direction": "higher",
                            "tolerance": 0.15},
     "readpaths_agree":    {"value": 1.0, "direction": "higher",
                            "tolerance": 0.0, "min": 1.0}}}

A "higher"-direction metric fails when the run drops more than
`tolerance` (relative) below the baseline value; "lower" fails when it
rises more than `tolerance` above. An optional "min"/"max" adds an
absolute floor/ceiling that fails regardless of the baseline — for
hard invariants like "the two read paths decoded identical postings".
Gated metrics should be within-run ratios or deterministic counters,
which are stable across machines; absolute wall-clock times belong in
the JSON for humans but not in the baseline.

Usage:
  tools/benchgate.py --run RUN.json --baseline BASELINE.json
  tools/benchgate.py --run RUN.json --baseline BASELINE.json --update
  tools/benchgate.py --selftest

Exit 0 = within tolerance. On failure, either fix the regression or —
if the new numbers are the intended state of the world — refresh the
baseline with --update and commit the result.
"""

import argparse
import json
import sys


def check_metric(name, spec, run_value):
    """Returns (ok, detail) for one metric."""
    base = float(spec["value"])
    direction = spec.get("direction", "higher")
    tolerance = float(spec.get("tolerance", 0.15))
    if direction not in ("higher", "lower"):
        return False, f"baseline has bad direction {direction!r}"

    if direction == "higher":
        bound = base * (1.0 - tolerance)
        ok = run_value >= bound
        detail = f"{run_value:.4g} vs >= {bound:.4g} (base {base:.4g})"
    else:
        bound = base * (1.0 + tolerance)
        ok = run_value <= bound
        detail = f"{run_value:.4g} vs <= {bound:.4g} (base {base:.4g})"

    if ok and "min" in spec and run_value < float(spec["min"]):
        ok = False
        detail += f", below hard min {float(spec['min']):.4g}"
    if ok and "max" in spec and run_value > float(spec["max"]):
        ok = False
        detail += f", above hard max {float(spec['max']):.4g}"
    return ok, detail


def compare(run, baseline):
    """Returns (failures, report_lines) for a run against a baseline."""
    failures = []
    lines = []
    run_metrics = run.get("metrics", {})
    base_metrics = baseline.get("metrics", {})
    if run.get("bench") != baseline.get("bench"):
        failures.append("bench name mismatch: run %r vs baseline %r" % (
            run.get("bench"), baseline.get("bench")))

    width = max((len(n) for n in base_metrics), default=10)
    for name, spec in sorted(base_metrics.items()):
        if name not in run_metrics:
            failures.append(f"metric {name} missing from run output")
            lines.append(f"  {name:<{width}}  MISSING")
            continue
        ok, detail = check_metric(name, spec, float(run_metrics[name]))
        verdict = "ok" if ok else "FAIL"
        lines.append(f"  {name:<{width}}  {verdict:<4}  {detail}")
        if not ok:
            failures.append(f"metric {name} out of tolerance: {detail}")
    for name in sorted(set(run_metrics) - set(base_metrics)):
        lines.append(f"  {name:<{width}}  ----  not gated "
                     f"({float(run_metrics[name]):.4g})")
    return failures, lines


def update_baseline(run, baseline):
    """Rewrites baseline values from the run, keeping the comparison
    policy (direction/tolerance/min/max) of each existing metric."""
    run_metrics = run.get("metrics", {})
    for name, spec in baseline.get("metrics", {}).items():
        if name in run_metrics:
            spec["value"] = float(run_metrics[name])
    baseline["bench"] = run.get("bench", baseline.get("bench"))
    return baseline


def selftest():
    base = {
        "bench": "t",
        "metrics": {
            "speedup": {"value": 2.0, "direction": "higher",
                        "tolerance": 0.15},
            "latency": {"value": 10.0, "direction": "lower",
                        "tolerance": 0.10},
            "agree": {"value": 1.0, "direction": "higher",
                      "tolerance": 0.0, "min": 1.0},
        },
    }

    def run_with(**metrics):
        return {"bench": "t", "metrics": metrics}

    cases = [
        # (run metrics, expected number of failures)
        (run_with(speedup=2.0, latency=10.0, agree=1.0), 0),
        (run_with(speedup=1.71, latency=10.9, agree=1.0), 0),  # in tolerance
        (run_with(speedup=1.69, latency=10.0, agree=1.0), 1),  # too slow
        (run_with(speedup=2.0, latency=11.1, agree=1.0), 1),   # too high
        (run_with(speedup=2.0, latency=10.0, agree=0.0), 1),   # hard min
        (run_with(speedup=2.0, latency=10.0), 1),              # missing
        (run_with(speedup=9.0, latency=1.0, agree=1.0, extra=5.0), 0),
    ]
    for i, (run, want) in enumerate(cases):
        failures, _ = compare(run, json.loads(json.dumps(base)))
        if len(failures) != want:
            print(f"selftest case {i}: want {want} failures, "
                  f"got {failures}")
            return 1

    updated = update_baseline(run_with(speedup=3.0, latency=5.0, agree=1.0),
                              json.loads(json.dumps(base)))
    if updated["metrics"]["speedup"]["value"] != 3.0 or \
       updated["metrics"]["speedup"]["tolerance"] != 0.15:
        print("selftest: update_baseline broke value or policy")
        return 1
    print("benchgate selftest: ok")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--run", help="bench JSON output to check")
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baseline values from the run")
    parser.add_argument("--selftest", action="store_true")
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.run or not args.baseline:
        parser.error("--run and --baseline are required (or --selftest)")

    with open(args.run) as f:
        run = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    if args.update:
        updated = update_baseline(run, baseline)
        with open(args.baseline, "w") as f:
            json.dump(updated, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"updated {args.baseline} from {args.run}")
        return 0

    failures, lines = compare(run, baseline)
    print(f"benchgate: {run.get('bench')} vs {args.baseline}")
    for line in lines:
        print(line)
    if failures:
        print(f"\nFAILED: {len(failures)} metric(s) regressed "
              f"beyond tolerance.")
        print("If this is expected (intentional perf change), refresh "
              "the baseline:")
        print(f"  tools/benchgate.py --run {args.run} "
              f"--baseline {args.baseline} --update")
        print("then commit the updated baseline with the change that "
              "explains it.")
        return 1
    print("benchgate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
