#!/usr/bin/env python3
"""Validator for the Chrome trace-event JSON that /tracez and
cafe_cli --trace-out emit.

Checks what chrome://tracing or Perfetto would choke on, so span
timelines stay loadable without opening a browser in CI:

  - the document is a JSON object with a "traceEvents" array holding at
    least one event (plus our "trace_id" string and "dropped" count)
  - every event is a complete ("ph":"X") event with a non-empty string
    name, numeric ts/dur >= 0, and integer pid/tid
  - our "args" envelope carries the span tree: a positive integer id,
    unique across events, and a parent that is 0 (root) or a known id
  - at least one root span exists, and no event is its own parent

Optional flags tighten the check for the smoke test:
  --min-names N     require >= N distinct event names
  --require NAME    require NAME among the event names (repeatable)

Usage: tools/tracecheck.py [flags] FILE   (`-` = stdin; exit 0 = valid)
       tools/tracecheck.py --selftest     (verify the checker itself)
"""

import argparse
import json
import sys


def check(text, min_names=0, required=()):
    """Returns a list of problem strings (empty = loadable timeline)."""
    problems = []
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        return [f"not JSON: {e}"]
    if not isinstance(doc, dict):
        return ["top level is not an object"]

    trace_id = doc.get("trace_id")
    if not isinstance(trace_id, str) or len(trace_id) != 16:
        problems.append(f"trace_id is not a 16-char string: {trace_id!r}")
    dropped = doc.get("dropped")
    if not isinstance(dropped, int) or dropped < 0:
        problems.append(f"dropped is not a non-negative int: {dropped!r}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return problems + ["traceEvents is missing or not an array"]
    if not events:
        problems.append("traceEvents is empty")

    ids = set()
    names = set()
    roots = 0
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: bad name {name!r}")
        else:
            names.add(name)
        if ev.get("ph") != "X":
            problems.append(f"{where}: ph is {ev.get('ph')!r}, want 'X'")
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) \
                    or v < 0:
                problems.append(f"{where}: bad {key} {v!r}")
        for key in ("pid", "tid"):
            v = ev.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                problems.append(f"{where}: bad {key} {v!r}")
        args = ev.get("args")
        if not isinstance(args, dict):
            problems.append(f"{where}: args missing")
            continue
        span_id = args.get("id")
        if not isinstance(span_id, int) or span_id <= 0:
            problems.append(f"{where}: bad span id {span_id!r}")
            continue
        if span_id in ids:
            problems.append(f"{where}: duplicate span id {span_id}")
        ids.add(span_id)
        parent = args.get("parent")
        if not isinstance(parent, int) or parent < 0:
            problems.append(f"{where}: bad parent {parent!r}")
        elif parent == span_id:
            problems.append(f"{where}: span {span_id} is its own parent")
        elif parent == 0:
            roots += 1

    # Parents may be recorded before or after their children; resolve
    # against the full id set once it is known.
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or not isinstance(ev.get("args"), dict):
            continue
        parent = ev["args"].get("parent")
        if isinstance(parent, int) and parent > 0 and parent not in ids:
            problems.append(f"event {i}: parent {parent} is not a "
                            f"recorded span")
    if events and not roots:
        problems.append("no root span (every event has a parent)")

    if len(names) < min_names:
        problems.append(f"only {len(names)} distinct span name(s), "
                        f"want >= {min_names}: {sorted(names)}")
    for name in required:
        if name not in names:
            problems.append(f"required span name {name!r} missing "
                            f"(have {sorted(names)})")
    return problems


def _doc(events, trace_id="00000000deadbeef", dropped=0):
    return json.dumps(
        {"trace_id": trace_id, "dropped": dropped, "traceEvents": events})


def _event(name="request", span_id=1, parent=0, **over):
    ev = {"name": name, "ph": "X", "ts": 0.0, "dur": 1.5, "pid": 1,
          "tid": 0, "args": {"id": span_id, "parent": parent}}
    ev.update(over)
    return ev


SELFTEST_CASES = [
    # (document text, kwargs, expected problem count)
    (_doc([_event(), _event("search", 2, 1)]), {}, 0),
    ("not json {", {}, 1),
    ("[1,2]", {}, 1),
    (_doc([]), {}, 1),                                # no events
    (json.dumps({"trace_id": "00000000deadbeef", "dropped": 0}), {}, 1),
    (_doc([_event()], trace_id="short"), {}, 1),
    (_doc([_event()], dropped=-1), {}, 1),
    (_doc([_event(ph="B")]), {}, 1),                  # wrong phase
    (_doc([_event(name="")]), {}, 1),
    (_doc([_event(dur=-2.0)]), {}, 1),
    (_doc([_event(tid="zero")]), {}, 1),
    (_doc([_event(), _event("x", 1, 0)]), {}, 1),     # duplicate id
    (_doc([_event("x", 2, 2)]), {}, 2),               # own parent + no root
    (_doc([_event(), _event("x", 2, 99)]), {}, 1),    # unknown parent
    (_doc([_event("search", 2, 1), _event()]), {}, 0),  # child-first order
    (_doc([_event()]), {"min_names": 2}, 1),
    (_doc([_event()]), {"required": ["fine.worker"]}, 1),
    (_doc([_event(), _event("fine.worker", 2, 1)]),
     {"required": ["fine.worker"], "min_names": 2}, 0),
]


def selftest():
    failures = []
    for i, (text, kwargs, want) in enumerate(SELFTEST_CASES):
        got = check(text, **kwargs)
        if len(got) != want:
            failures.append(f"case {i}: expected {want} problem(s), "
                            f"got {len(got)}: {got}")
    for failure in failures:
        print(f"selftest: {failure}")
    print(f"tracecheck --selftest: {len(SELFTEST_CASES)} cases, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", nargs="?", help="trace JSON (- = stdin)")
    parser.add_argument("--min-names", type=int, default=0)
    parser.add_argument("--require", action="append", default=[])
    parser.add_argument("--selftest", action="store_true")
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.file:
        parser.error("FILE is required (or --selftest)")
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, encoding="utf-8") as f:
            text = f.read()
    problems = check(text, min_names=args.min_names, required=args.require)
    for p in problems:
        print(p)
    print(f"tracecheck: {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
