// cafe_serve — long-running query server over a prebuilt index.
//
//   cafe_serve --collection db.col --index db.idx
//       [--host 127.0.0.1] [--port 0] [--port-file FILE]
//       [--workers N] [--queue N] [--batch N] [--search-threads N]
//       [--chain off|filter] [--min-chain N]
//       [--index-mode memory|cached|mmap]   (--disk-index = cached)
//       [--http-port N] [--http-port-file FILE]
//       [--slow-ms N] [--flight-capacity N] [--slow-capacity N]
//       [--span-sample-rate RATE] [--stats-interval SECONDS]
//   cafe_serve --version
//
// --index-mode picks the index read path: memory (blob on heap),
// cached (DiskIndex block cache — the reference oracle) or mmap
// (zero-copy, lock-free, near-instant startup; the serving default
// for indexes larger than RAM). --disk-index is a legacy alias for
// cached.
//
// Speaks the length-prefixed binary protocol in src/server/protocol.h;
// cafe_loadgen and the Client library are the reference peers. With
// --port 0 the kernel picks the port; --port-file writes the resolved
// port for scripts to discover. SIGINT/SIGTERM trigger a graceful
// drain: in-flight requests complete, then the process exits 0.
//
// --http-port (>= 0; 0 = ephemeral) additionally starts the live
// introspection listener: /metrics (Prometheus text exposition),
// /statusz (JSON status), /flightz and /slowz (flight recorder / slow
// log as JSON), /tracez (span timelines as Chrome trace-event JSON).
// --slow-ms sets the slow-log pin threshold (0 pins every request).
// --span-sample-rate R records a span timeline for fraction R of
// requests (0 = only requests whose trace id is pinned in the slow
// log; 1 = all). --stats-interval N > 0 starts a stats thread that
// logs one windowed-delta line every N seconds.
//
// Operational messages go through obs::Log (timestamped, severity,
// trace-id aware); only usage/--version output and the port files are
// raw writes.
//
// Exit status 0 on clean shutdown, 1 on any startup error.

#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "align/sw_simd.h"
#include "collection/collection.h"
#include "index/index_reader.h"
#include "obs/flight.h"
#include "obs/log.h"
#include "obs/span.h"
#include "search/chain.h"
#include "search/partitioned.h"
#include "seqstore/packed_scan_simd.h"
#include "server/http.h"
#include "server/server.h"
#include "util/flags.h"
#include "util/simd.h"
#include "util/timer.h"
#include "util/version.h"

namespace cafe {
namespace {

// Signal handlers may only touch lock-free state; the main thread polls
// this flag from its pause() loop and runs the actual shutdown.
volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*signum*/) { g_stop = 1; }

int Fail(const Status& status) {
  obs::LogError(status.ToString());
  return 1;
}

int Usage() {
  // NOLINTNEXTLINE(cafe-no-raw-fprintf) — usage text, not a log line.
  std::fprintf(
      stderr,
      "usage: cafe_serve --collection FILE --index FILE\n"
      "           [--host ADDR] [--port N] [--port-file FILE]\n"
      "           [--workers N] [--queue N] [--batch N]\n"
      "           [--search-threads N]\n"
      "           [--chain off|filter] [--min-chain N]\n"
      "           [--index-mode memory|cached|mmap]  (--disk-index = "
      "cached)\n"
      "           [--http-port N] [--http-port-file FILE]\n"
      "           [--slow-ms N] [--flight-capacity N] [--slow-capacity N]\n"
      "           [--span-sample-rate RATE] [--stats-interval SECONDS]\n"
      "       cafe_serve --version\n");
  return 1;
}

Status WritePortFile(const std::string& path, uint16_t port) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot write port file " + path);
  }
  // NOLINTNEXTLINE(cafe-no-raw-fprintf) — data file, not a log line.
  std::fprintf(f, "%u\n", port);
  std::fclose(f);
  return Status::OK();
}

std::string StatuszJson(const server::Server& server,
                        const server::HttpServer& http,
                        const obs::FlightRecorder& flight,
                        const WallTimer& uptime, uint32_t sequences,
                        const std::string& engine_name,
                        IndexMode index_mode, double span_sample_rate) {
  char buf[320];
  std::string out = "{\"version\":\"";
  out += obs::JsonEscape(kVersionString);
  out += "\",\"engine\":\"";
  out += obs::JsonEscape(engine_name);
  out += "\"";
  // What this binary is actually running — build version above, SIMD
  // tier, index read path and sampling rate here — so an operator
  // never has to cross-reference startup logs.
  out += ",\"simd\":\"";
  out += obs::JsonEscape(SimdLevelName(ActiveSimdLevel()));
  out += "\",\"index_mode\":\"";
  out += obs::JsonEscape(IndexModeName(index_mode));
  out += "\"";
  std::snprintf(buf, sizeof(buf),
                ",\"span_sample_rate\":%g"
                ",\"protocol\":%u,\"uptime_seconds\":%" PRIu64
                ",\"sequences\":%u,\"port\":%u,\"http_port\":%u"
                ",\"queue_depth\":%zu,\"flight_recorded\":%" PRIu64
                ",\"slow_recorded\":%" PRIu64
                ",\"slow_threshold_micros\":%" PRIu64 "}",
                span_sample_rate,
                static_cast<unsigned>(server::kProtocolVersion),
                static_cast<uint64_t>(uptime.Micros() / 1000000), sequences,
                static_cast<unsigned>(server.port()),
                static_cast<unsigned>(http.port()), server.QueueDepth(),
                flight.recorded(), flight.slow_recorded(),
                flight.slow_threshold_micros());
  out += buf;
  return out;
}

// Extracts the 16-hex-digit trace id from a /tracez query string
// ("trace_id=00c0ffee…"); false when absent or malformed.
bool ParseTraceIdQuery(const std::string& query, uint64_t* trace_id) {
  const std::string key = "trace_id=";
  size_t pos = query.rfind(key, 0) == 0 ? key.size() : std::string::npos;
  if (pos == std::string::npos) return false;
  std::string value = query.substr(pos);
  const size_t amp = value.find('&');
  if (amp != std::string::npos) value.resize(amp);
  if (value.empty() || value.size() > 16) return false;
  uint64_t id = 0;
  for (char c : value) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    id = (id << 4) | static_cast<uint64_t>(digit);
  }
  *trace_id = id;
  return true;
}

// One windowed-delta log line: interval rates and interval latency
// percentiles, from MetricsRegistry::Delta over SnapshotData.
void LogStatsWindow(const obs::MetricsSnapshot& delta, uint64_t seconds) {
  auto counter = [&](const char* name) -> uint64_t {
    auto it = delta.counters.find(name);
    return it == delta.counters.end() ? 0 : it->second;
  };
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  uint64_t count = 0;
  auto it = delta.histograms.find("server.request_micros");
  if (it != delta.histograms.end()) {
    count = it->second.count;
    p50 = it->second.ApproxPercentile(0.50);
    p99 = it->second.ApproxPercentile(0.99);
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "stats window %" PRIu64 "s: requests=%" PRIu64
                " accepted=%" PRIu64 " rejected=%" PRIu64
                " deadline_exceeded=%" PRIu64 " http=%" PRIu64
                " p50_us=%" PRIu64 " p99_us=%" PRIu64,
                seconds, count, counter("server.requests_accepted"),
                counter("server.requests_rejected"),
                counter("server.deadline_exceeded"),
                counter("server.http_requests"), p50, p99);
  obs::LogInfo(buf);
}

Status Run(FlagParser& flags) {
  std::string col_path = flags.GetString("collection", "");
  std::string idx_path = flags.GetString("index", "");
  std::string port_file = flags.GetString("port-file", "");
  std::string http_port_file = flags.GetString("http-port-file", "");
  bool use_disk = flags.GetBool("disk-index");
  std::string index_mode_flag = flags.GetString("index-mode", "");
  server::ServerOptions options;
  options.bind_address = flags.GetString("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  options.dispatcher.workers =
      static_cast<uint32_t>(flags.GetInt("workers", 2));
  options.dispatcher.max_queue =
      static_cast<uint32_t>(flags.GetInt("queue", 256));
  options.dispatcher.max_batch =
      static_cast<uint32_t>(flags.GetInt("batch", 8));
  options.dispatcher.search_threads =
      static_cast<uint32_t>(flags.GetInt("search-threads", 1));
  std::string chain_flag = flags.GetString("chain", "off");
  options.dispatcher.min_chain_score =
      static_cast<uint32_t>(flags.GetInt("min-chain", 2));
  int64_t http_port = flags.GetInt("http-port", -1);  // -1 = no listener
  obs::FlightRecorder::Options flight_options;
  flight_options.slow_micros =
      static_cast<uint64_t>(flags.GetInt("slow-ms", 250)) * 1000;
  flight_options.capacity =
      static_cast<size_t>(flags.GetInt("flight-capacity", 256));
  flight_options.slow_capacity =
      static_cast<size_t>(flags.GetInt("slow-capacity", 64));
  options.dispatcher.span_sample_rate =
      flags.GetDouble("span-sample-rate", 0.0);
  int64_t stats_interval = flags.GetInt("stats-interval", 0);
  CAFE_RETURN_IF_ERROR(flags.Finish());
  if (col_path.empty() || idx_path.empty()) {
    return Status::InvalidArgument("--collection and --index are required");
  }
  Result<ChainMode> chain_mode = ParseChainMode(chain_flag);
  if (!chain_mode.ok()) return chain_mode.status();
  options.dispatcher.chain_mode = *chain_mode;

  Result<SequenceCollection> col = SequenceCollection::Load(col_path);
  if (!col.ok()) return col.status();
  Result<IndexMode> resolved = ResolveIndexModeFlags(index_mode_flag,
                                                     use_disk);
  if (!resolved.ok()) return resolved.status();
  IndexMode index_mode = *resolved;
  WallTimer open_timer;
  Result<IndexReader> reader = IndexReader::Open(idx_path, index_mode);
  if (!reader.ok()) return reader.status();
  obs::LogInfo(std::string("index open (") + IndexModeName(index_mode) +
               " mode): " + std::to_string(open_timer.Millis()) + " ms");
  PartitionedSearch engine(&*col, reader->source());

  WallTimer uptime;
  obs::FlightRecorder flight(flight_options);
  options.dispatcher.flight = &flight;
  obs::SpanStore span_store;
  options.dispatcher.span_store = &span_store;
  server::Server server(&engine, options);
  obs::MetricsRegistry* metrics = server.metrics();
  // Index read-path counters (disk_index.* / mmap_index.*) join the
  // server registry so they surface on /metrics and the stats verb.
  // Attach before Start: queries may be in flight afterwards.
  reader->AttachMetrics(metrics);
  // SIMD dispatch counters (coarse.packed_* / align.*) likewise: they
  // show which tier is serving the coarse scan and the fine alignments.
  AttachPackedScanMetrics(metrics);
  AttachAlignSimdMetrics(metrics);
  // chain.* counters: the middle-stage funnel (invocations, anchors,
  // kept/dropped candidates) for the /metrics page.
  AttachChainMetrics(metrics);
  CAFE_RETURN_IF_ERROR(server.Start());
  server::HttpOptions http_options;
  http_options.bind_address = options.bind_address;
  http_options.port = static_cast<uint16_t>(http_port < 0 ? 0 : http_port);
  http_options.metrics = metrics;
  server::HttpServer http(
      [&](const std::string& path, const std::string& query_string) {
        server::HttpResponse response;
        if (path == "/metrics") {
          response.content_type =
              "text/plain; version=0.0.4; charset=utf-8";
          response.body = metrics->SnapshotPrometheus();
        } else if (path == "/statusz") {
          response.content_type = "application/json";
          response.body =
              StatuszJson(server, http, flight, uptime,
                          col->NumSequences(), engine.name(), index_mode,
                          options.dispatcher.span_sample_rate);
        } else if (path == "/flightz") {
          response.content_type = "application/json";
          response.body = flight.RecentJson(flight.capacity());
        } else if (path == "/slowz") {
          response.content_type = "application/json";
          response.body = flight.SlowJson(flight.capacity());
        } else if (path == "/tracez") {
          // ?trace_id=<16 hex> fetches one sampled timeline as Chrome
          // trace-event JSON; bare /tracez lists what the store holds.
          uint64_t trace_id = 0;
          if (query_string.empty()) {
            response.content_type = "application/json";
            response.body = span_store.ListJson();
          } else if (!ParseTraceIdQuery(query_string, &trace_id)) {
            response.status = 400;
            response.body = "expected ?trace_id=<hex id>\n";
          } else if (!span_store.GetJson(trace_id, &response.body)) {
            response.status = 404;
            response.body =
                "no sampled timeline for that trace id (not sampled, "
                "or evicted)\n";
          } else {
            response.content_type = "application/json";
          }
        } else if (path == "/") {
          response.body =
              "cafe_serve introspection\n"
              "/metrics  Prometheus text exposition\n"
              "/statusz  server status (JSON)\n"
              "/flightz  recent completed requests (JSON)\n"
              "/slowz    pinned slow requests (JSON)\n"
              "/tracez   sampled span timelines (Chrome trace JSON)\n";
        } else {
          response.status = 404;
          response.body = "unknown path " + path + "\n";
        }
        return response;
      },
      http_options);
  if (http_port >= 0) {
    CAFE_RETURN_IF_ERROR(http.Start());
    obs::LogInfo("introspection on http://" + options.bind_address + ":" +
                 std::to_string(http.port()) +
                 " (/metrics /statusz /flightz /slowz /tracez)");
    if (!http_port_file.empty()) {
      CAFE_RETURN_IF_ERROR(WritePortFile(http_port_file, http.port()));
    }
  }

  obs::LogInfo(std::string("cafe_serve ") + kVersionString +
               " listening on " + options.bind_address + ":" +
               std::to_string(server.port()) + " (" +
               std::to_string(col->NumSequences()) + " sequences)");
  if (!port_file.empty()) {
    CAFE_RETURN_IF_ERROR(WritePortFile(port_file, server.port()));
  }

  // Stats thread: every --stats-interval seconds, diff a fresh snapshot
  // against the previous one and log the window. The cv lets shutdown
  // interrupt the wait immediately.
  std::mutex stats_mu;
  std::condition_variable stats_cv;
  bool stats_stop = false;
  std::thread stats_thread;
  if (stats_interval > 0) {
    stats_thread = std::thread([&] {
      obs::MetricsSnapshot baseline = metrics->SnapshotData();
      std::unique_lock<std::mutex> lock(stats_mu);
      while (!stats_cv.wait_for(lock,
                                std::chrono::seconds(stats_interval),
                                [&] { return stats_stop; })) {
        obs::MetricsSnapshot current = metrics->SnapshotData();
        LogStatsWindow(obs::MetricsRegistry::Delta(current, baseline),
                       static_cast<uint64_t>(stats_interval));
        baseline = std::move(current);
      }
    });
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) pause();  // signals interrupt pause()

  obs::LogInfo("shutting down (draining in-flight requests)");
  if (stats_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu);
      stats_stop = true;
    }
    stats_cv.notify_all();
    stats_thread.join();
  }
  http.Shutdown();
  server.Shutdown();
  return Status::OK();
}

}  // namespace
}  // namespace cafe

int main(int argc, char** argv) {
  using namespace cafe;
  if (argc >= 2 && std::string(argv[1]) == "--version") {
    // NOLINTNEXTLINE(cafe-no-raw-fprintf) — version query, not a log.
    std::printf("cafe_serve %s (protocol %u)\n", kVersionString,
                server::kProtocolVersion);
    return 0;
  }
  FlagParser flags(argc, argv);
  Status status = Run(flags);
  if (status.IsInvalidArgument()) {
    obs::LogError(status.ToString());
    return Usage();
  }
  return status.ok() ? 0 : Fail(status);
}
