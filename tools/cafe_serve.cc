// cafe_serve — long-running query server over a prebuilt index.
//
//   cafe_serve --collection db.col --index db.idx
//       [--host 127.0.0.1] [--port 0] [--port-file FILE]
//       [--workers N] [--queue N] [--batch N] [--search-threads N]
//       [--disk-index]
//   cafe_serve --version
//
// Speaks the length-prefixed binary protocol in src/server/protocol.h;
// cafe_loadgen and the Client library are the reference peers. With
// --port 0 the kernel picks the port; --port-file writes the resolved
// port for scripts to discover. SIGINT/SIGTERM trigger a graceful
// drain: in-flight requests complete, then the process exits 0.
//
// Exit status 0 on clean shutdown, 1 on any startup error.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

#include "collection/collection.h"
#include "index/disk_index.h"
#include "index/inverted_index.h"
#include "search/partitioned.h"
#include "server/server.h"
#include "util/flags.h"
#include "util/version.h"

namespace cafe {
namespace {

// Signal handlers may only touch lock-free state; the main thread polls
// this flag from its pause() loop and runs the actual shutdown.
volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*signum*/) { g_stop = 1; }

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: cafe_serve --collection FILE --index FILE\n"
      "           [--host ADDR] [--port N] [--port-file FILE]\n"
      "           [--workers N] [--queue N] [--batch N]\n"
      "           [--search-threads N] [--disk-index]\n"
      "       cafe_serve --version\n");
  return 1;
}

Status Run(FlagParser& flags) {
  std::string col_path = flags.GetString("collection", "");
  std::string idx_path = flags.GetString("index", "");
  std::string port_file = flags.GetString("port-file", "");
  bool use_disk = flags.GetBool("disk-index");
  server::ServerOptions options;
  options.bind_address = flags.GetString("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  options.dispatcher.workers =
      static_cast<uint32_t>(flags.GetInt("workers", 2));
  options.dispatcher.max_queue =
      static_cast<uint32_t>(flags.GetInt("queue", 256));
  options.dispatcher.max_batch =
      static_cast<uint32_t>(flags.GetInt("batch", 8));
  options.dispatcher.search_threads =
      static_cast<uint32_t>(flags.GetInt("search-threads", 1));
  CAFE_RETURN_IF_ERROR(flags.Finish());
  if (col_path.empty() || idx_path.empty()) {
    return Status::InvalidArgument("--collection and --index are required");
  }

  Result<SequenceCollection> col = SequenceCollection::Load(col_path);
  if (!col.ok()) return col.status();
  std::unique_ptr<DiskIndex> disk;
  InvertedIndex mem;
  const PostingSource* source = nullptr;
  if (use_disk) {
    Result<std::unique_ptr<DiskIndex>> opened = DiskIndex::Open(idx_path);
    if (!opened.ok()) return opened.status();
    disk = std::move(*opened);
    source = disk.get();
  } else {
    Result<InvertedIndex> loaded = InvertedIndex::Load(idx_path);
    if (!loaded.ok()) return loaded.status();
    mem = std::move(*loaded);
    source = &mem;
  }
  PartitionedSearch engine(&*col, source);

  server::Server server(&engine, options);
  CAFE_RETURN_IF_ERROR(server.Start());
  std::printf("cafe_serve %s listening on %s:%u (%u sequences)\n",
              kVersionString, options.bind_address.c_str(), server.port(),
              col->NumSequences());
  std::fflush(stdout);
  if (!port_file.empty()) {
    FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      return Status::IOError("cannot write --port-file " + port_file);
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) pause();  // signals interrupt pause()

  std::printf("shutting down (draining in-flight requests)\n");
  std::fflush(stdout);
  server.Shutdown();
  return Status::OK();
}

}  // namespace
}  // namespace cafe

int main(int argc, char** argv) {
  using namespace cafe;
  if (argc >= 2 && std::string(argv[1]) == "--version") {
    std::printf("cafe_serve %s (protocol %u)\n", kVersionString,
                server::kProtocolVersion);
    return 0;
  }
  FlagParser flags(argc, argv);
  Status status = Run(flags);
  if (status.IsInvalidArgument()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return Usage();
  }
  return status.ok() ? 0 : Fail(status);
}
