#!/usr/bin/env python3
"""Repo-specific lint for cafe.

Checks that clang-tidy / compiler warnings cannot express:

  include-guard   src/ header guards must be CAFE_<PATH>_H_
                  (src/util/check.h -> CAFE_UTIL_CHECK_H_)
  no-throw        library code under src/ never throws; fallible APIs
                  return Status/Result (see src/util/status.h)
  no-naked-new    no `new`/`delete` expressions under src/ — ownership
                  goes through smart pointers and containers
  no-raw-assert   no raw assert() under src/ — use CAFE_CHECK /
                  CAFE_DCHECK from util/check.h (static_assert is fine)
  no-std-thread   std::thread only inside src/util/thread_pool.* and
                  src/server/ (the serving layer owns blocking accept /
                  connection threads) — all other code schedules onto
                  ThreadPool
  no-adhoc-chrono no direct std::chrono in src/search/ or src/index/ —
                  hot-path timing goes through util/timer.h (WallTimer)
                  or the obs/ spans, so traces stay consistent
  no-raw-socket   socket headers (sys/socket.h, netinet/*, arpa/inet.h,
                  netdb.h) only under src/server/ — the network edge
                  stays in one subsystem
  no-raw-fprintf  no printf/fprintf logging in src/server/ or
                  tools/cafe_serve.cc — the serving path logs through
                  obs::Log (timestamp, severity, trace id), so server
                  output is uniformly greppable and joinable with the
                  flight recorder (snprintf formatting is fine)
  no-raw-mutex    no std::mutex / std::lock_guard / std::unique_lock /
                  std::condition_variable (or their timed/recursive/
                  shared variants) outside src/util/mutex.h — locking
                  goes through cafe::Mutex so every locking invariant
                  carries thread safety annotations and is checked by
                  clang -Wthread-safety (same confinement pattern as
                  std::thread -> ThreadPool)

Files under tools/ are binaries, not library code; only the fprintf
rule applies there, and only to cafe_serve.cc (the long-running
daemon — one-shot CLI tools print to stdout by design).

A finding on a line containing `NOLINT(cafe-<rule>)` — or directly
below a `NOLINTNEXTLINE(cafe-<rule>)` line — is suppressed; use this
only with a comment explaining why the exception is sound.

Usage: tools/lint_cafe.py [repo-root]     (exit 0 = clean, 1 = findings)
       tools/lint_cafe.py --selftest      (verify every rule fires and
                                           NOLINT suppresses it)
"""

import os
import re
import sys

RULE_GUARD = "cafe-include-guard"
RULE_THROW = "cafe-no-throw"
RULE_NEW = "cafe-no-naked-new"
RULE_ASSERT = "cafe-no-raw-assert"
RULE_THREAD = "cafe-no-std-thread"
RULE_CHRONO = "cafe-no-adhoc-chrono"
RULE_SOCKET = "cafe-no-raw-socket"
RULE_FPRINTF = "cafe-no-raw-fprintf"
RULE_MUTEX = "cafe-no-raw-mutex"

THROW_RE = re.compile(r"\bthrow\b")
# `new X`, `new (nothrow) X`, `new X[...]`; `delete p`, `delete[] p`.
# `= delete` (deleted special members) is not a delete-expression.
NEW_RE = re.compile(r"\bnew\b(?!\s*\()|(?<![=\s])\s*\bdelete\b|^\s*delete\b")
ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
THREAD_RE = re.compile(r"\bstd::thread\b")
CHRONO_RE = re.compile(r"\bstd::chrono\b")
SOCKET_RE = re.compile(r"#\s*include\s*<(sys/socket|netinet/|arpa/inet|netdb)")
# printf/fprintf calls (with or without std::). The lookbehind keeps
# snprintf/vfprintf (formatting, not output) from matching.
FPRINTF_RE = re.compile(r"(?<!\w)(?:std::)?f?printf\s*\(")
MUTEX_RE = re.compile(
    r"\bstd::(?:(?:timed_|recursive_|recursive_timed_|shared_|"
    r"shared_timed_)?mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable(?:_any)?)\b")


def strip_code_noise(line):
    """Removes string/char literals and // comments so the regexes only
    see code. Block comments are handled by the caller's state."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            i += 1
            out.append(quote + quote)  # keep an empty literal as a token
            continue
        out.append(c)
        i += 1
    return "".join(out)


def expected_guard(relpath):
    # src/util/check.h -> CAFE_UTIL_CHECK_H_
    inner = relpath[len("src/"):]
    return "CAFE_" + re.sub(r"[/.]", "_", inner.upper()) + "_"


def lint_file(root, relpath, findings):
    path = os.path.join(root, relpath)
    with open(path, encoding="utf-8") as f:
        lines = f.read().split("\n")
    lint_lines(relpath, lines, findings)


def lint_lines(relpath, lines, findings):
    is_header = relpath.endswith(".h")
    thread_ok = relpath.startswith(("src/util/thread_pool.",
                                    "src/server/"))
    mutex_ok = relpath == "src/util/mutex.h"
    socket_ok = relpath.startswith("src/server/")
    chrono_scoped = relpath.startswith(("src/search/", "src/index/"))
    fprintf_scoped = (relpath.startswith("src/server/")
                      or relpath == "tools/cafe_serve.cc")
    # tools/ entries are binaries; only the fprintf rule applies there.
    tools_file = not relpath.startswith("src/")

    if is_header and not tools_file:
        want = expected_guard(relpath)
        guard = None
        for ln in lines:
            m = re.match(r"\s*#ifndef\s+(\S+)", ln)
            if m:
                guard = m.group(1)
                break
        if guard != want:
            findings.append(
                (relpath, 1, RULE_GUARD,
                 f"include guard is {guard!r}, expected {want!r}"))

    in_block_comment = False
    prev_raw = ""
    for lineno, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        # Drop /* ... */ spans (single-line, or open-ended to EOL).
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]

        code = strip_code_noise(line)

        def report(rule, message):
            if f"NOLINT({rule})" in raw:
                return
            if f"NOLINTNEXTLINE({rule})" in prev_raw:
                return
            findings.append((relpath, lineno, rule, message))

        if FPRINTF_RE.search(code) and fprintf_scoped:
            report(RULE_FPRINTF,
                   "raw printf/fprintf in the serving path; log through "
                   "obs::Log (src/obs/log.h)")
        if tools_file:
            prev_raw = raw
            continue  # only the fprintf rule applies outside src/

        if THROW_RE.search(code):
            report(RULE_THROW,
                   "library code must return Status, not throw")
        if NEW_RE.search(code):
            report(RULE_NEW,
                   "naked new/delete; use smart pointers or containers")
        m = ASSERT_RE.search(code)
        if m and "static_assert" not in code[:m.start() + 6]:
            report(RULE_ASSERT,
                   "raw assert(); use CAFE_CHECK / CAFE_DCHECK "
                   "(util/check.h)")
        if THREAD_RE.search(code) and not thread_ok:
            report(RULE_THREAD,
                   "std::thread outside src/util/thread_pool.* or "
                   "src/server/; use ThreadPool")
        if MUTEX_RE.search(code) and not mutex_ok:
            report(RULE_MUTEX,
                   "raw std locking primitive; use cafe::Mutex / "
                   "MutexLock / CondVar (util/mutex.h) so the "
                   "invariants carry thread safety annotations")
        if CHRONO_RE.search(code) and chrono_scoped:
            report(RULE_CHRONO,
                   "ad-hoc std::chrono in search/index code; time with "
                   "util/timer.h (WallTimer) or obs/ spans")
        if SOCKET_RE.search(code) and not socket_ok:
            report(RULE_SOCKET,
                   "socket headers outside src/server/; the network "
                   "edge lives in the server subsystem")
        prev_raw = raw


# (file, line, rule that must fire — or None for must-stay-clean).
# Every rule appears at least once firing and once NOLINT-suppressed, so
# a regression in either direction fails the selftest.
SELFTEST_CASES = [
    ("src/util/foo.h", "#ifndef WRONG_GUARD_H_", RULE_GUARD),
    ("src/util/foo.h", "#ifndef CAFE_UTIL_FOO_H_", None),
    ("src/a/b.cc", 'throw std::runtime_error("x");', RULE_THROW),
    ("src/a/b.cc", "auto* p = new int;", RULE_NEW),
    ("src/a/b.cc", "delete p;", RULE_NEW),
    ("src/a/b.cc", "Foo(const Foo&) = delete;", None),
    ("src/a/b.cc", "assert(x > 0);", RULE_ASSERT),
    ("src/a/b.cc", "static_assert(sizeof(int) == 4);", None),
    ("src/a/b.cc", "std::thread t(run);", RULE_THREAD),
    ("src/util/thread_pool.cc", "std::thread t(run);", None),
    ("src/server/server.cc", "std::thread t(run);", None),
    ("src/a/b.cc", "std::mutex mu;", RULE_MUTEX),
    ("src/a/b.cc", "std::lock_guard<std::mutex> lock(mu);", RULE_MUTEX),
    ("src/a/b.cc", "std::unique_lock<std::mutex> lock(mu);", RULE_MUTEX),
    ("src/a/b.cc", "std::scoped_lock lock(a, b);", RULE_MUTEX),
    ("src/a/b.cc", "std::shared_mutex rw;", RULE_MUTEX),
    ("src/a/b.cc", "std::recursive_mutex mu;", RULE_MUTEX),
    ("src/a/b.cc", "std::condition_variable cv;", RULE_MUTEX),
    ("src/server/http.cc", "std::mutex mu;", RULE_MUTEX),
    # The one home raw primitives are allowed: the wrapper itself.
    ("src/util/mutex.h",
     "#ifndef CAFE_UTIL_MUTEX_H_\nstd::mutex mu_;", None),
    ("src/util/mutex.h",
     "#ifndef CAFE_UTIL_MUTEX_H_\n"
     "std::unique_lock<std::mutex> native(mu->mu_);", None),
    ("src/util/mutex.h",
     "#ifndef CAFE_UTIL_MUTEX_H_\nstd::condition_variable cv_;", None),
    ("src/a/b.cc", "cafe::Mutex mu_;", None),
    ("src/a/b.cc", "MutexLock lock(&mu_);", None),
    ("src/a/b.cc", "// std::mutex is banned here", None),
    ("src/a/b.cc", "std::mutex mu;  // NOLINT(cafe-no-raw-mutex)", None),
    ("src/a/b.cc", "#include <sys/socket.h>", RULE_SOCKET),
    ("src/a/b.cc", "#include <netinet/in.h>", RULE_SOCKET),
    ("src/a/b.cc", "#include <arpa/inet.h>", RULE_SOCKET),
    ("src/a/b.cc", "#include <netdb.h>", RULE_SOCKET),
    ("src/server/server.cc", "#include <sys/socket.h>", None),
    ("src/server/client.cc", "#include <arpa/inet.h>", None),
    ("src/a/b.cc", "#include <netinet/in.h>  "
     "// NOLINT(cafe-no-raw-socket)", None),
    ("src/search/x.cc", "auto t0 = std::chrono::steady_clock::now();",
     RULE_CHRONO),
    ("src/index/x.cc", "std::chrono::milliseconds d(1);", RULE_CHRONO),
    ("src/util/x.cc", "std::chrono::milliseconds d(1);", None),
    ("src/search/x.cc", "WallTimer total;", None),
    ("src/a/b.cc", "// std::thread belongs in thread_pool", None),
    ("src/a/b.cc", 'const char* s = "std::thread";', None),
    ("src/a/b.cc", "/* assert(x) */ int y = 0;", None),
    ("src/a/b.cc", "throw 1;  // NOLINT(cafe-no-throw)", None),
    ("src/a/b.cc", "auto* p = new int;  // NOLINT(cafe-no-naked-new)",
     None),
    ("src/a/b.cc", "assert(x);  // NOLINT(cafe-no-raw-assert)", None),
    ("src/a/b.cc", "std::thread t;  // NOLINT(cafe-no-std-thread)", None),
    ("src/search/x.cc",
     "std::chrono::seconds s(1);  // NOLINT(cafe-no-adhoc-chrono)", None),
    ("src/server/server.cc", 'std::fprintf(stderr, "x\\n");',
     RULE_FPRINTF),
    ("src/server/http.cc", 'printf("x\\n");', RULE_FPRINTF),
    ("tools/cafe_serve.cc", 'std::fprintf(stderr, "x\\n");',
     RULE_FPRINTF),
    # snprintf is formatting, not output.
    ("src/server/server.cc", "std::snprintf(buf, sizeof(buf), \"x\");",
     None),
    # Out of scope: library code away from the serving path, and
    # one-shot CLI tools, may print.
    ("src/obs/metrics.cc", 'std::fprintf(stderr, "x\\n");', None),
    ("tools/cafe_cli.cc", 'std::printf("x\\n");', None),
    # Only the fprintf rule applies to tools/ files.
    ("tools/cafe_serve.cc", "std::thread t(run);", None),
    ("src/server/server.cc",
     'std::fprintf(f, "%u", p);  // NOLINT(cafe-no-raw-fprintf)', None),
    ("tools/cafe_serve.cc",
     "// NOLINTNEXTLINE(cafe-no-raw-fprintf) — data file, not a log.\n"
     'std::fprintf(f, "%u", p);', None),
]


def selftest():
    failures = []
    for i, (relpath, line, want_rule) in enumerate(SELFTEST_CASES):
        findings = []
        lint_lines(relpath, line.split("\n"), findings)
        rules = [f[2] for f in findings]
        if want_rule is None and rules:
            failures.append(f"case {i} ({line!r}): unexpected {rules}")
        elif want_rule is not None and want_rule not in rules:
            failures.append(
                f"case {i} ({line!r}): expected {want_rule}, got {rules}")
    for failure in failures:
        print(f"selftest: {failure}")
    print(f"lint_cafe --selftest: {len(SELFTEST_CASES)} cases, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    if len(sys.argv) > 1 and sys.argv[1] == "--selftest":
        return selftest()
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    targets = []
    for dirpath, _, names in os.walk(os.path.join(root, "src")):
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                targets.append(rel.replace(os.sep, "/"))
    # The long-running daemon is held to the structured-logging rule.
    if os.path.exists(os.path.join(root, "tools", "cafe_serve.cc")):
        targets.append("tools/cafe_serve.cc")
    targets.sort()

    findings = []
    for rel in targets:
        lint_file(root, rel, findings)

    for relpath, lineno, rule, message in findings:
        print(f"{relpath}:{lineno}: [{rule}] {message}")
    print(f"lint_cafe: {len(targets)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
