// cafe_loadgen — load generator and latency reporter for cafe_serve.
//
//   cafe_loadgen --port N [--host 127.0.0.1]
//       (--query-file q.fa | [--queries N] [--query-bases N] [--seed N])
//       [--clients N] [--requests N] [--duration SECONDS]
//       [--rate PER_CLIENT_QPS]   (open loop; default closed loop)
//       [--deadline-ms N] [--top N] [--candidates N] [--both-strands]
//       [--stats-out FILE] [--slow-ms N] [--trace-ids N] [--http-port N]
//   cafe_loadgen --version
//
// Each client thread opens its own connection and cycles through the
// query set. Closed loop (default) sends the next request as soon as
// the previous response lands; --rate paces each client at a fixed
// request interval instead, so queueing at the server shows up as
// latency rather than as back-pressure. Reports throughput plus
// mean/p50/p90/p99/max end-to-end latency, and the ok / overloaded /
// truncated / error split. --stats-out fetches the server's stats
// document (the --stats=json schema) after the run.
//
// --slow-ms N prints the latency histogram buckets and how many
// requests crossed the threshold; --trace-ids N prints the server-
// echoed trace ids of the N slowest requests (`trace=<16 hex>`, the
// same rendering as server log lines and /flightz), so a slow request
// seen from the client can be joined with the server's flight
// recorder / slow log entry for it. With --http-port (the server's
// introspection port), each slow trace id is printed alongside its
// /tracez URL — paste it into curl for the request's span timeline
// when the server sampled it (`sampled` in the response says so).
//
// Exit status 0 when every request got a response (overloaded and
// truncated count as responses), 1 otherwise.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "collection/collection.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/timer.h"
#include "util/version.h"

namespace cafe {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

struct LoadOptions {
  std::string host;
  uint16_t port = 0;
  uint32_t clients = 4;
  uint64_t requests = 64;  // per client; 0 = until --duration
  double duration = 0.0;   // seconds; 0 = until --requests
  double rate = 0.0;       // per-client target qps; 0 = closed loop
  uint64_t slow_ms = 0;    // 0 = no slow/bucket report
  uint32_t trace_ids = 0;  // print ids of the N slowest; 0 = off
  uint16_t http_port = 0;  // server introspection port; 0 = no URLs
  server::SearchRequest request_template;
};

// One completed request as the client saw it, for the --trace-ids
// slowest-request report.
struct Sample {
  uint64_t micros = 0;
  uint64_t trace_id = 0;
  bool sampled = false;  // server recorded a span timeline for it
};

struct ClientStats {
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t truncated = 0;
  uint64_t errors = 0;
  uint64_t slow = 0;            // responses at or over --slow-ms
  std::vector<Sample> samples;  // filled only when --trace-ids > 0
};

// One client thread: own connection, own slice of the query set.
void RunClient(const LoadOptions& opt,
               const std::vector<std::string>& queries, uint32_t id,
               obs::Histogram* latency_micros, ClientStats* stats) {
  Result<std::unique_ptr<server::Client>> client =
      server::Client::Connect(opt.host, opt.port);
  if (!client.ok()) {
    std::fprintf(stderr, "client %u: %s\n", id,
                 client.status().ToString().c_str());
    stats->errors += 1;
    return;
  }

  WallTimer run_timer;
  const double interval = opt.rate > 0.0 ? 1.0 / opt.rate : 0.0;
  for (uint64_t i = 0; opt.requests == 0 || i < opt.requests; ++i) {
    if (opt.duration > 0.0 && run_timer.Seconds() >= opt.duration) break;
    if (interval > 0.0) {
      // Open loop: wait for this request's scheduled send time. Sleeping
      // keeps the pacing independent of how long responses take.
      double ahead = static_cast<double>(i) * interval - run_timer.Seconds();
      if (ahead > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(ahead));
      }
    }
    server::SearchRequest request = opt.request_template;
    request.query = queries[(id + i * opt.clients) % queries.size()];

    WallTimer timer;
    server::SearchResponse response;
    Status s = (*client)->Search(request, &response);
    const uint64_t micros = static_cast<uint64_t>(timer.Micros());
    latency_micros->Record(micros);
    if (s.ok() && opt.trace_ids > 0) {
      // Client::Search always leaves the travelled id in the response.
      stats->samples.push_back({micros, response.trace_id,
                                response.sampled});
    }
    if (s.ok() && opt.slow_ms > 0 && micros >= opt.slow_ms * 1000) {
      stats->slow += 1;
    }
    if (!s.ok()) {
      stats->errors += 1;
      std::fprintf(stderr, "client %u: %s\n", id, s.ToString().c_str());
      return;  // transport failure poisons the connection
    }
    if (response.status.IsOverloaded()) {
      stats->overloaded += 1;
    } else if (!response.status.ok()) {
      stats->errors += 1;
    } else if (response.truncated) {
      stats->truncated += 1;
    } else {
      stats->ok += 1;
    }
  }
}

Status Run(FlagParser& flags) {
  LoadOptions opt;
  opt.host = flags.GetString("host", "127.0.0.1");
  opt.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  opt.clients = static_cast<uint32_t>(flags.GetInt("clients", 4));
  opt.requests = static_cast<uint64_t>(flags.GetInt("requests", 64));
  opt.duration = flags.GetDouble("duration", 0.0);
  opt.rate = flags.GetDouble("rate", 0.0);
  opt.slow_ms = static_cast<uint64_t>(flags.GetInt("slow-ms", 0));
  opt.trace_ids = static_cast<uint32_t>(flags.GetInt("trace-ids", 0));
  opt.http_port = static_cast<uint16_t>(flags.GetInt("http-port", 0));
  opt.request_template.deadline_millis =
      static_cast<uint64_t>(flags.GetInt("deadline-ms", 0));
  opt.request_template.max_results =
      static_cast<uint32_t>(flags.GetInt("top", 10));
  opt.request_template.fine_candidates =
      static_cast<uint32_t>(flags.GetInt("candidates", 100));
  opt.request_template.both_strands = flags.GetBool("both-strands");
  std::string query_file = flags.GetString("query-file", "");
  uint32_t num_queries = static_cast<uint32_t>(flags.GetInt("queries", 16));
  uint32_t query_bases =
      static_cast<uint32_t>(flags.GetInt("query-bases", 200));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  std::string stats_out = flags.GetString("stats-out", "");
  CAFE_RETURN_IF_ERROR(flags.Finish());
  if (opt.port == 0) return Status::InvalidArgument("--port is required");
  if (opt.clients == 0) {
    return Status::InvalidArgument("--clients must be >= 1");
  }
  if (opt.requests == 0 && opt.duration <= 0.0) {
    return Status::InvalidArgument(
        "one of --requests / --duration must be set");
  }

  std::vector<std::string> queries;
  if (!query_file.empty()) {
    std::vector<FastaRecord> records;
    CAFE_RETURN_IF_ERROR(ReadFastaFile(query_file, &records));
    for (FastaRecord& rec : records) {
      queries.push_back(std::move(rec.sequence));
    }
    if (queries.empty()) {
      return Status::InvalidArgument("no sequences in " + query_file);
    }
  } else {
    // Uniform random queries: they exercise the full coarse path (every
    // interval gets looked up) even if few reach a reportable score.
    Rng rng(seed);
    static const char kBases[] = "ACGT";
    for (uint32_t i = 0; i < num_queries; ++i) {
      std::string q;
      q.reserve(query_bases);
      for (uint32_t j = 0; j < query_bases; ++j) {
        q.push_back(kBases[rng.Uniform(4)]);
      }
      queries.push_back(std::move(q));
    }
  }

  obs::Histogram latency;
  std::vector<ClientStats> stats(opt.clients);
  std::vector<std::thread> threads;
  threads.reserve(opt.clients);
  WallTimer wall;
  for (uint32_t c = 0; c < opt.clients; ++c) {
    threads.emplace_back(
        [&, c] { RunClient(opt, queries, c, &latency, &stats[c]); });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = wall.Seconds();

  ClientStats total;
  for (const ClientStats& s : stats) {
    total.ok += s.ok;
    total.overloaded += s.overloaded;
    total.truncated += s.truncated;
    total.errors += s.errors;
    total.slow += s.slow;
  }
  const uint64_t responses = total.ok + total.overloaded + total.truncated;
  obs::Histogram::Snapshot snap = latency.Snap();
  std::printf(
      "%llu responses in %.2fs (%.1f req/s, %u clients)\n"
      "  ok %llu, overloaded %llu, truncated %llu, errors %llu\n"
      "  latency mean %.2fms p50 %.2fms p90 %.2fms p99 %.2fms max %.2fms\n",
      static_cast<unsigned long long>(responses), elapsed,
      elapsed > 0.0 ? static_cast<double>(responses) / elapsed : 0.0,
      opt.clients, static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.overloaded),
      static_cast<unsigned long long>(total.truncated),
      static_cast<unsigned long long>(total.errors), snap.Mean() / 1e3,
      static_cast<double>(snap.ApproxPercentile(0.50)) / 1e3,
      static_cast<double>(snap.ApproxPercentile(0.90)) / 1e3,
      static_cast<double>(snap.ApproxPercentile(0.99)) / 1e3,
      static_cast<double>(snap.max) / 1e3);

  if (opt.slow_ms > 0) {
    std::printf("  slow requests (>= %llums): %llu of %llu\n",
                static_cast<unsigned long long>(opt.slow_ms),
                static_cast<unsigned long long>(total.slow),
                static_cast<unsigned long long>(responses));
    std::printf("  latency buckets (us):\n");
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] == 0) continue;
      // Bucket i of the bit-width histogram holds [2^(i-1), 2^i);
      // bucket 0 holds the exact value 0.
      const uint64_t lo = i == 0 ? 0 : 1ull << (i - 1);
      const uint64_t hi =
          i == 0 ? 0 : (i >= 64 ? UINT64_MAX : (1ull << i) - 1);
      std::printf("    [%llu, %llu] %llu\n",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(snap.buckets[i]));
    }
  }

  if (opt.trace_ids > 0) {
    std::vector<Sample> all;
    for (ClientStats& s : stats) {
      all.insert(all.end(), s.samples.begin(), s.samples.end());
    }
    std::sort(all.begin(), all.end(), [](const Sample& a, const Sample& b) {
      return a.micros > b.micros;
    });
    const size_t n = std::min<size_t>(opt.trace_ids, all.size());
    std::printf("  slowest %llu requests:\n",
                static_cast<unsigned long long>(n));
    for (size_t i = 0; i < n; ++i) {
      std::printf("    %.2fms trace=%016llx",
                  static_cast<double>(all[i].micros) / 1e3,
                  static_cast<unsigned long long>(all[i].trace_id));
      if (opt.http_port > 0) {
        // Link straight to the span timeline when the server kept one.
        if (all[i].sampled) {
          std::printf(" http://%s:%u/tracez?trace_id=%016llx",
                      opt.host.c_str(), opt.http_port,
                      static_cast<unsigned long long>(all[i].trace_id));
        } else {
          std::printf(" (not sampled)");
        }
      }
      std::printf("\n");
    }
  }

  if (!stats_out.empty()) {
    Result<std::unique_ptr<server::Client>> client =
        server::Client::Connect(opt.host, opt.port);
    if (!client.ok()) return client.status();
    std::string json;
    CAFE_RETURN_IF_ERROR((*client)->Stats(&json));
    FILE* f = std::fopen(stats_out.c_str(), "w");
    if (f == nullptr) {
      return Status::IOError("cannot write --stats-out " + stats_out);
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  if (total.errors > 0) return Status::Internal("some requests failed");
  return Status::OK();
}

}  // namespace
}  // namespace cafe

int main(int argc, char** argv) {
  using namespace cafe;
  if (argc >= 2 && std::string(argv[1]) == "--version") {
    std::printf("cafe_loadgen %s (protocol %u)\n", kVersionString,
                server::kProtocolVersion);
    return 0;
  }
  FlagParser flags(argc, argv);
  Status status = Run(flags);
  return status.ok() ? 0 : Fail(status);
}
