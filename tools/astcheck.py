#!/usr/bin/env python3
"""Repo-aware static analysis for cafe, past what lint_cafe's per-line
regexes can express. Two passes, both scope-sensitive:

  astcheck-view-escape
      A std::string_view / span / raw pointer derived from a mapping
      object (MmapFile::view()/data(), MmapIndex, PostingSource) is
      stored into a class member or a member container. Views into a
      mapping are borrows: they die with the mapping (docs/DESIGN.md
      "zero-copy read path"), so parking one in state that outlives
      the stack frame is a use-after-munmap waiting for a remap.
      Storing a view derived from the *same object's own* mapping
      member (e.g. MmapIndex::blob_ pointing into MmapIndex::file_) is
      allowed — member lifetimes are tied, that is the zero-copy
      design itself.

  astcheck-lock-scope
      A blocking call — read/write/pread/pwrite/recv/send/accept/
      connect/fsync/fdatasync, stdio output (fprintf/fflush), or the
      logging entry points (Log/LogInfo/LogWarning/LogError) — is made
      while a cafe::MutexLock is live in an enclosing scope. Blocking
      under a lock turns one slow fd into a convoy for every thread
      behind that mutex; stage the I/O outside the critical section
      (the Dispatcher::Complete / FlightRecorder split is the model).
      CondVar::Wait is exempt: it releases the lock while blocked.

Backends: by default a built-in single-pass lexer produces the line
stream (no dependencies — this is what CI runs). With
`--backend=libclang` (or `auto` when python3-clang is installed) the
same analyses run over libclang's token stream instead, using
compile_commands.json (-p) for include paths, which sees through
macro expansion. The findings format is identical.

A finding on a line containing `NOLINT(astcheck-<rule>)` — or below a
`NOLINTNEXTLINE(astcheck-<rule>)` line — is suppressed; every
suppression must carry a comment arguing why the exception is sound.

Usage: tools/astcheck.py [-p build-dir] [repo-root]
           (exit 0 = clean, 1 = findings)
       tools/astcheck.py --selftest
           (verify both passes fire and NOLINT suppresses them)
"""

import argparse
import json
import os
import re
import sys

RULE_VIEW = "astcheck-view-escape"
RULE_LOCK = "astcheck-lock-scope"

# Types whose instances own (or are) a memory mapping. A view derived
# from one of these is only valid while that object lives.
MAPPING_TYPES = ("MmapFile", "MmapIndex", "PostingSource")

# Accessors on mapping objects that hand out borrowed views/pointers.
VIEW_ACCESSORS = ("view", "data")

# Calls that can block (or perform I/O) and therefore must not run
# under a MutexLock. Deliberately excluded: open/close (bounded, and
# teardown paths legitimately close under their shutdown lock),
# thread join (shutdown-only), CondVar::Wait (releases the lock).
BLOCKING_CALLS = (
    "read", "write", "pread", "pwrite", "readv", "writev",
    "recv", "send", "accept", "connect", "fsync", "fdatasync",
    "fprintf", "fflush",
    "Log", "LogInfo", "LogWarning", "LogError",
)

BLOCKING_RE = re.compile(
    r"\b(?:" + "|".join(BLOCKING_CALLS) + r")\s*\(")
MUTEXLOCK_DECL_RE = re.compile(r"\b(?:cafe::)?MutexLock\s+\w+\s*[({]")
# `MmapFile file` / `const MmapIndex& idx` / `MmapFile* f` — captures
# the declared name so the pass knows which identifiers are mappings.
MAPPING_DECL_RE = re.compile(
    r"\b(" + "|".join(MAPPING_TYPES) + r")\b[&*\s]+(\w+)\s*[,;=)({]")
# Local that borrows from a mapping: `auto v = file.view();`,
# `std::string_view s{m->data(), n};`, `const char* p = f.data();`.
VIEW_LOCAL_DECL_RE = re.compile(
    r"\b(?:auto|std::string_view|std::span<[^;=]*>|"
    r"(?:const\s+)?(?:char|uint8_t|std::uint8_t|std::byte)\s*\*)"
    r"[&*\s]*(\w+)\s*[={(]")
# Assignment into a member (trailing-underscore convention), directly
# or via this->.
MEMBER_ASSIGN_RE = re.compile(r"(?:this\s*->\s*)?\b(\w+_)\s*=[^=]")
# Mutation of a member container that copies its argument in.
CONTAINER_STORE_RE = re.compile(
    r"(?:this\s*->\s*)?\b(\w+_)\s*(?:\.|->)\s*"
    r"(?:push_back|emplace_back|emplace|insert|assign|push)\s*\(")


def strip_code_noise(line):
    """Removes string/char literals and // comments so the regexes only
    see code. Block comments are handled by the caller's state."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            i += 1
            out.append(quote + quote)  # keep an empty literal as a token
            continue
        out.append(c)
        i += 1
    return "".join(out)


def code_lines(lines):
    """Yields (lineno, raw, code) with comments and literals removed
    from `code`, tracking block comments across lines."""
    in_block = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                yield lineno, raw, ""
                continue
            line = line[end + 2:]
            in_block = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + line[end + 2:]
        yield lineno, raw, strip_code_noise(line)


def brace_delta(code):
    return code.count("{") - code.count("}")


def view_exprs(code, mappings):
    """Names of mapping objects whose view()/data() is called in
    `code`, e.g. `file.view()` -> 'file'. Returns [(name, accessor)]."""
    out = []
    for m in re.finditer(
            r"\b(\w+)\s*(?:\.|->)\s*(" + "|".join(VIEW_ACCESSORS) +
            r")\s*\(", code):
        if m.group(1) in mappings:
            out.append((m.group(1), m.group(2)))
    return out


class _Reporter:
    """NOLINT-aware findings sink, same contract as lint_cafe."""

    def __init__(self, relpath, findings):
        self.relpath = relpath
        self.findings = findings
        self.prev_raw = ""

    def report(self, lineno, raw, rule, message):
        if f"NOLINT({rule})" not in raw and \
                f"NOLINTNEXTLINE({rule})" not in self.prev_raw:
            self.findings.append((self.relpath, lineno, rule, message))

    def advance(self, raw):
        self.prev_raw = raw


def check_lock_scope(relpath, lines, findings):
    """Flags blocking calls made while a MutexLock is live in an
    enclosing scope. Scope tracking is brace depth: a lock declared at
    depth d dies when depth drops below d. A function whose signature
    carries CAFE_REQUIRES(...) runs with the lock already held, so its
    whole body counts as a lock scope too."""
    rep = _Reporter(relpath, findings)
    depth = 0
    lock_depths = []  # brace depth at each live MutexLock declaration
    # A CAFE_REQUIRES seen on a signature still waiting for its `{`
    # (definition) or `;` (pure declaration — no body to guard).
    pending_requires = False
    for lineno, raw, code in code_lines(lines):
        # Close scopes first: a leading `}` ends locks before anything
        # else on the line runs.
        closing = len(code) - len(code.lstrip("} \t"))
        pre_depth = depth - code[:closing].count("}")
        while lock_depths and pre_depth < lock_depths[-1]:
            lock_depths.pop()

        if lock_depths and BLOCKING_RE.search(code):
            call = BLOCKING_RE.search(code).group(0).rstrip("( \t")
            rep.report(
                lineno, raw, RULE_LOCK,
                f"blocking call {call}() while a MutexLock is live; "
                "stage the I/O outside the critical section")

        depth += brace_delta(code)
        while lock_depths and depth < lock_depths[-1]:
            lock_depths.pop()

        is_directive = code.lstrip().startswith("#")
        requires_at = -1 if is_directive else code.find("CAFE_REQUIRES")
        scan_from = 0
        if requires_at >= 0:
            pending_requires = True
            scan_from = requires_at
        if pending_requires and not is_directive:
            rest = code[scan_from:]
            brace = rest.find("{")
            semi = rest.find(";")
            if brace >= 0 and (semi < 0 or brace < semi):
                lock_depths.append(depth if depth > 0 else 1)
                pending_requires = False
            elif semi >= 0:
                pending_requires = False

        if MUTEXLOCK_DECL_RE.search(code):
            lock_depths.append(depth if depth > 0 else 1)
        rep.advance(raw)


def check_view_escape(relpath, lines, findings):
    """Flags mapping-derived views stored into members or member
    containers. A view whose mapping is itself a member of the same
    class (name ends in '_') is lifetime-tied and allowed."""
    rep = _Reporter(relpath, findings)
    mappings = set()  # identifiers declared with a mapping type
    # local name -> True when derived from a NON-member mapping
    tainted = {}

    def external_sources(code):
        """Mapping names with a view accessor called on them in `code`
        where the mapping is not a member of the current class."""
        return [name for name, _ in view_exprs(code, mappings)
                if not name.endswith("_")]

    def tainted_in(code, exclude=None):
        return [name for name in tainted
                if name != exclude
                and tainted[name]
                and re.search(r"\b" + re.escape(name) + r"\b", code)]

    for lineno, raw, code in code_lines(lines):
        for m in MAPPING_DECL_RE.finditer(code):
            mappings.add(m.group(2))

        # Track locals borrowing from a mapping (or from another
        # tainted local) — one level of propagation is enough for the
        # patterns that occur in practice.
        decl = VIEW_LOCAL_DECL_RE.search(code)
        if decl and not decl.group(1).endswith("_"):
            init = code[decl.end(1):]
            ext = [name for name, _ in view_exprs(init, mappings)
                   if not name.endswith("_")]
            if ext or tainted_in(init, exclude=decl.group(1)):
                tainted[decl.group(1)] = True

        # Store into a member: `view_ = file.view();` or
        # `ptr_ = borrowed;` where `borrowed` is tainted.
        assign = MEMBER_ASSIGN_RE.search(code)
        if assign:
            member = assign.group(1)
            rhs = code[assign.end(1):]
            sources = external_sources(rhs) + tainted_in(rhs)
            if sources:
                rep.report(
                    lineno, raw, RULE_VIEW,
                    f"member {member} stores a view borrowed from "
                    f"mapping '{sources[0]}' that it does not own; "
                    "copy the bytes or tie the mapping's lifetime to "
                    "this object")

        # Store into a member container: `views_.push_back(v);`.
        store = CONTAINER_STORE_RE.search(code)
        if store:
            args = code[store.end():]
            sources = external_sources(args) + tainted_in(args)
            if sources:
                rep.report(
                    lineno, raw, RULE_VIEW,
                    f"container {store.group(1)} keeps a view borrowed "
                    f"from mapping '{sources[0]}' past the call; copy "
                    "the bytes or index by offset instead")
        rep.advance(raw)


def analyze_lines(relpath, lines, findings):
    check_lock_scope(relpath, lines, findings)
    check_view_escape(relpath, lines, findings)


def analyze_file(root, relpath, findings, backend="lite", compile_db=None):
    path = os.path.join(root, relpath)
    if backend == "libclang":
        lines = libclang_lines(path, compile_db)
        if lines is None:  # parse failure: fall back, never skip
            backend = "lite"
    if backend == "lite":
        with open(path, encoding="utf-8") as f:
            lines = f.read().split("\n")
    analyze_lines(relpath, lines, findings)


# -------------------------------------------------------------------
# libclang backend: reconstructs the per-line stream from clang's own
# lexer (comments already classified, literals exact, macros visible
# post-expansion in the token spellings). The analyses are shared with
# the lite backend — only the lexing differs.

def load_compile_db(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(path, encoding="utf-8") as f:
            entries = json.load(f)
    except OSError:
        return {}
    db = {}
    for entry in entries:
        args = entry.get("arguments")
        if args is None:
            args = entry.get("command", "").split()
        keep = [a for a in args[1:]
                if a.startswith(("-I", "-D", "-std", "-isystem"))]
        db[os.path.realpath(entry["file"])] = keep
    return db


def libclang_lines(path, compile_db):
    try:
        from clang import cindex  # noqa: PLC0415 — optional backend
    except ImportError:
        return None
    args = (compile_db or {}).get(os.path.realpath(path),
                                  ["-std=c++20", "-Isrc"])
    try:
        tu = cindex.Index.create().parse(path, args=args)
    except cindex.LibclangError:
        return None
    # Rebuild source lines from the token stream; comment tokens are
    # kept (NOLINT lives there), literals get clang's exact extents.
    lines = {}
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        loc = tok.location
        if loc.file is None or os.path.realpath(loc.file.name) != \
                os.path.realpath(path):
            continue
        lineno = loc.line
        text = lines.get(lineno, "")
        col = loc.column - 1
        if len(text) < col:
            text += " " * (col - len(text))
        lines[lineno] = text + tok.spelling.split("\n")[0]
    if not lines:
        return None
    return [lines.get(i, "") for i in range(1, max(lines) + 1)]


# -------------------------------------------------------------------
# Selftest fixtures: (file, source, rule that must fire — or None for
# must-stay-clean). Both passes appear firing, suppressed, and on the
# allowed patterns they must NOT flag.

SELFTEST_CASES = [
    # --- lock-scope: positives -------------------------------------
    ("src/a/b.cc",
     "void F() {\n"
     "  MutexLock lock(&mu_);\n"
     "  fprintf(stderr, \"x\");\n"
     "}", RULE_LOCK),
    ("src/a/b.cc",
     "void F() {\n"
     "  cafe::MutexLock lock(&mu_);\n"
     "  Log(obs::LogLevel::kInfo, \"x\");\n"
     "}", RULE_LOCK),
    ("src/a/b.cc",
     "void F(int fd) {\n"
     "  MutexLock lock(&mu_);\n"
     "  if (ready_) {\n"
     "    send(fd, buf, n, 0);\n"
     "  }\n"
     "}", RULE_LOCK),  # lock live in an *enclosing* scope
    ("src/a/b.cc",
     "void F(std::ifstream& f) {\n"
     "  MutexLock lock(&mu_);\n"
     "  f.read(buf, n);\n"
     "}", RULE_LOCK),  # member-call spelling of a blocking op
    # --- lock-scope: negatives -------------------------------------
    ("src/a/b.cc",
     "void F() {\n"
     "  {\n"
     "    MutexLock lock(&mu_);\n"
     "    ++count_;\n"
     "  }\n"
     "  fsync(fd_);\n"
     "}", None),  # lock scope closed before the I/O
    ("src/a/b.cc",
     "void F() {\n"
     "  MutexLock lock(&mu_);\n"
     "  while (!done_) cv_.Wait(&mu_);\n"
     "}", None),  # CondVar::Wait releases the lock: exempt
    ("src/a/b.cc",
     "void F() {\n"
     "  fprintf(stderr, \"no lock\");\n"
     "}", None),
    ("src/a/b.cc",
     "void F() {\n"
     "  MutexLock lock(&mu_);\n"
     "  // the sink write IS the critical section here\n"
     "  fflush(sink_);  // NOLINT(astcheck-lock-scope)\n"
     "}", None),
    ("src/a/b.cc",
     "void F() {\n"
     "  MutexLock lock(&mu_);\n"
     "  // NOLINTNEXTLINE(astcheck-lock-scope) — sink write is the CS\n"
     "  fprintf(sink_, \"x\");\n"
     "}", None),
    ("src/a/b.cc",
     "void F() {\n"
     "  MutexLock lock(&mu_);\n"
     "  spread(x);  thread_t t;  // 'read' inside other identifiers\n"
     "}", None),
    ("src/a/b.cc",
     "Status C::Fill(uint32_t term) const CAFE_REQUIRES(mu_) {\n"
     "  file_.read(buf, n);\n"
     "  return Status::OK();\n"
     "}", RULE_LOCK),  # REQUIRES body: the caller holds the lock
    ("src/a/b.h",
     "class C {\n"
     "  Status Fill(uint32_t term) const CAFE_REQUIRES(mu_);\n"
     "};\n"
     "inline void Free() { fsync(3); }", None),  # declaration only
    # --- view-escape: positives ------------------------------------
    ("src/a/b.cc",
     "void Load(const MmapFile& file) {\n"
     "  view_ = file.view();\n"
     "}", RULE_VIEW),  # the seeded violation: member outlives mapping
    ("src/a/b.cc",
     "void Load(const MmapFile& file) {\n"
     "  auto v = file.view();\n"
     "  view_ = v;\n"
     "}", RULE_VIEW),  # …via a borrowing local
    ("src/a/b.cc",
     "void Load(MmapIndex* idx) {\n"
     "  ptr_ = idx->data();\n"
     "}", RULE_VIEW),
    ("src/a/b.cc",
     "void Load(const MmapFile& file) {\n"
     "  std::string_view v = file.view();\n"
     "  auto w = v;\n"
     "  views_.push_back(w);\n"
     "}", RULE_VIEW),  # container store, two-hop borrow
    # --- view-escape: negatives ------------------------------------
    ("src/a/b.cc",
     "void MmapIndex::Attach() {\n"
     "  blob_ = file_.data() + header_bytes_;\n"
     "}", None),  # same-object store: file_ is our own member
    ("src/a/b.cc",
     "void Scan(const MmapFile& file) {\n"
     "  std::string_view v = file.view();\n"
     "  Decode(v);\n"
     "}", None),  # borrow stays on the stack
    ("src/a/b.cc",
     "void Load(const MmapFile& file) {\n"
     "  name_ = std::string(file.view());\n"
     "}", RULE_VIEW),  # conservative: flags even through std::string()
    ("src/a/b.cc",
     "void Load(const MmapFile& file) {\n"
     "  // offsets are values, not borrows\n"
     "  size_ = file.size();\n"
     "}", None),
    ("src/a/b.cc",
     "void Load(const MmapFile& file) {\n"
     "  // lifetime tied: *this owns the mapping, see Open()\n"
     "  view_ = file.view();  // NOLINT(astcheck-view-escape)\n"
     "}", None),
    ("src/a/b.cc",
     "void F(const Blob& blob) {\n"
     "  view_ = blob.view();\n"
     "}", None),  # not a mapping type: out of scope
]


def selftest():
    failures = []
    for i, (relpath, source, want_rule) in enumerate(SELFTEST_CASES):
        findings = []
        analyze_lines(relpath, source.split("\n"), findings)
        rules = [f[2] for f in findings]
        if want_rule is None and rules:
            failures.append(
                f"case {i} ({source.splitlines()[1]!r}...): "
                f"unexpected {rules}")
        elif want_rule is not None and want_rule not in rules:
            failures.append(
                f"case {i} ({source.splitlines()[1]!r}...): "
                f"expected {want_rule}, got {rules}")
    for failure in failures:
        print(f"selftest: {failure}")
    print(f"astcheck --selftest: {len(SELFTEST_CASES)} cases, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(
        description="cafe repo-aware static analysis")
    parser.add_argument("root", nargs="?", default=".",
                        help="repo root (default: .)")
    parser.add_argument("-p", dest="build_dir", default=None,
                        help="build dir with compile_commands.json "
                             "(libclang backend include paths)")
    parser.add_argument("--backend", default="lite",
                        choices=["lite", "libclang", "auto"],
                        help="lexer backend (default: lite — no "
                             "dependencies)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture suite and exit")
    opts = parser.parse_args()

    if opts.selftest:
        return selftest()

    backend = opts.backend
    if backend == "auto":
        try:
            import clang.cindex  # noqa: F401,PLC0415
            backend = "libclang"
        except ImportError:
            backend = "lite"

    compile_db = None
    if backend == "libclang" and opts.build_dir:
        compile_db = load_compile_db(opts.build_dir)

    targets = []
    for dirpath, _, names in os.walk(os.path.join(opts.root, "src")):
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                rel = os.path.relpath(os.path.join(dirpath, name),
                                      opts.root)
                targets.append(rel.replace(os.sep, "/"))
    targets.sort()

    findings = []
    for rel in targets:
        analyze_file(opts.root, rel, findings,
                     backend=backend, compile_db=compile_db)

    for relpath, lineno, rule, message in findings:
        print(f"{relpath}:{lineno}: [{rule}] {message}")
    print(f"astcheck ({backend}): {len(targets)} files, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
