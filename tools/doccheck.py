#!/usr/bin/env python3
"""Doc/code cross-check for the metric catalogue.

docs/OBSERVABILITY.md claims to document every counter and histogram
name. This check keeps that true in both directions, grep-style:

  code -> doc   every string literal passed to GetCounter("...") or
                GetHistogram("...") under src/ and tools/ must appear
                in docs/OBSERVABILITY.md — and so must the Prometheus
                name it exports as on /metrics (`cafe_` prefix, dots to
                underscores, `_total` suffix for counters; the mapping
                in MetricsRegistry::SnapshotPrometheus)
  doc -> code   every metric name in the catalogue tables (rows of the
                form `| `name` | ...`) must appear as such a literal,
                and every documented Prometheus name (`cafe_...` in
                backticks) must be one a code metric actually exports

Usage: tools/doccheck.py [repo-root]      (exit 0 = consistent)
"""

import os
import re
import sys

GET_RE = re.compile(r'Get(Counter|Histogram)\(\s*"([^"]+)"')
DOC_ROW_RE = re.compile(r"^\|\s*`([a-z0-9_]+\.[a-z0-9_]+)`\s*\|")
DOC_PROM_RE = re.compile(r"`(cafe_[a-z0-9_]+)`")
DOC_PATH = "docs/OBSERVABILITY.md"

# Backticked `cafe_*` words that are repo binaries / libraries / CMake
# helpers, not Prometheus series claims.
NON_METRIC_NAMES = frozenset({
    "cafe_cli", "cafe_serve", "cafe_loadgen", "cafe_align",
    "cafe_alphabet", "cafe_coding", "cafe_collection", "cafe_eval",
    "cafe_index", "cafe_obs", "cafe_search", "cafe_seqstore",
    "cafe_server", "cafe_sim", "cafe_util", "cafe_add_test",
})


def prometheus_name(metric, kind):
    """Mirrors MetricsRegistry::SnapshotPrometheus's name mapping."""
    base = "cafe_" + re.sub(r"[^a-zA-Z0-9_:]", "_", metric)
    return base + "_total" if kind == "Counter" else base


def code_metric_names(root):
    """{dotted name: (kind, first file using it)}"""
    names = {}
    for top in ("src", "tools"):
        for dirpath, _, files in os.walk(os.path.join(root, top)):
            for name in sorted(files):
                if not name.endswith((".h", ".cc")):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8") as f:
                    for kind, metric in GET_RE.findall(f.read()):
                        names.setdefault(
                            metric, (kind, os.path.relpath(path, root)))
    return names


def doc_metric_names(doc_text):
    names = set()
    for line in doc_text.split("\n"):
        m = DOC_ROW_RE.match(line)
        if m:
            names.add(m.group(1))
    return names


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    doc_path = os.path.join(root, DOC_PATH)
    with open(doc_path, encoding="utf-8") as f:
        doc_text = f.read()

    in_code = code_metric_names(root)
    in_doc = doc_metric_names(doc_text)
    problems = []

    exported = set()
    for m, (kind, _) in in_code.items():
        prom = prometheus_name(m, kind)
        exported.add(prom)
        if kind == "Histogram":
            # The series a Prometheus histogram actually exposes.
            exported.update(
                {prom + "_bucket", prom + "_sum", prom + "_count"})
    for metric in sorted(in_code):
        kind, where = in_code[metric]
        if f"`{metric}`" not in doc_text:
            problems.append(
                f"{where}: metric {metric!r} is not documented "
                f"in {DOC_PATH}")
        prom = prometheus_name(metric, kind)
        if f"`{prom}`" not in doc_text:
            problems.append(
                f"{where}: Prometheus name {prom!r} (for {metric!r}) is "
                f"not documented in {DOC_PATH}")
    for metric in sorted(in_doc):
        if metric not in in_code:
            problems.append(
                f"{DOC_PATH}: documents {metric!r} but no "
                f"GetCounter/GetHistogram literal in src/ or tools/ uses it")
    for prom in sorted(set(DOC_PROM_RE.findall(doc_text))):
        if prom not in exported and prom not in NON_METRIC_NAMES:
            problems.append(
                f"{DOC_PATH}: documents Prometheus name {prom!r} but "
                f"/metrics exports no such series")

    for p in problems:
        print(p)
    print(f"doccheck: {len(in_code)} metrics in code, {len(in_doc)} in "
          f"catalogue, {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
