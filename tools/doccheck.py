#!/usr/bin/env python3
"""Doc/code cross-checks: the metric catalogue and the mutex inventory.

docs/OBSERVABILITY.md claims to document every counter and histogram
name. This check keeps that true in both directions, grep-style:

  code -> doc   every string literal passed to GetCounter("...") or
                GetHistogram("...") under src/ and tools/ must appear
                in docs/OBSERVABILITY.md — and so must the Prometheus
                name it exports as on /metrics (`cafe_` prefix, dots to
                underscores, `_total` suffix for counters; the mapping
                in MetricsRegistry::SnapshotPrometheus)
  doc -> code   every metric name in the catalogue tables (rows of the
                form `| `name` | ...`) must appear as such a literal,
                and every documented Prometheus name (`cafe_...` in
                backticks) must be one a code metric actually exports

docs/OBSERVABILITY.md also claims to catalogue every span name a
timeline can contain (the `/tracez` view). Same bidirectional
contract:

  code -> doc   every string literal passed to StartSpan("..."),
                AddSpan("...") or the RAII `obs::Span` constructor
                under src/ and tools/ (outside src/obs/span.h, which
                defines the type) must have a span-catalogue row
  doc -> code   every span row (`| `name` | `parent` | `src/...` |`)
                must name a file that really records that span

docs/ARCHITECTURE.md ("Concurrency invariants") claims to inventory
every mutex in the tree. Same bidirectional contract:

  code -> doc   every `Mutex <name>` declaration under src/ (outside
                src/util/mutex.h, which defines the type) must have an
                inventory row naming it and its declaring file
  doc -> code   every inventory row (`| `Owner::name` | `src/...` |`)
                must point at a file that really declares that Mutex

docs/PERFORMANCE.md claims to inventory every runtime-dispatched SIMD
kernel and every benchmark binary. Same contract, twice over:

  code -> doc   every `__attribute__((target("...")))` function under
                src/ must have a dispatch-table row naming it and its
                defining file; every cafe_add_bench/cafe_add_micro
                target in bench/CMakeLists.txt must be mentioned
  doc -> code   every dispatch-table row (`| `Kernel` | `src/...` |`)
                must point at a file that really defines that kernel
                with a target attribute, and every backticked
                `bench_*` name must be a registered bench target

Usage: tools/doccheck.py [repo-root]      (exit 0 = consistent)
"""

import os
import re
import sys

GET_RE = re.compile(r'Get(Counter|Histogram)\(\s*"([^"]+)"')
# Metric rows carry a bare counter/histogram type cell, which is what
# tells them apart from the span-catalogue rows in the same document.
DOC_ROW_RE = re.compile(
    r"^\|\s*`([a-z0-9_]+\.[a-z0-9_]+)`\s*\|\s*(?:counter|histogram)\s*\|")
DOC_PROM_RE = re.compile(r"`(cafe_[a-z0-9_]+)`")
DOC_PATH = "docs/OBSERVABILITY.md"

# Span recording sites: explicit StartSpan/AddSpan calls plus the RAII
# wrapper (`obs::Span span(recorder, "name")`). The wrapper regex must
# not match obs::TraceSpan, whose argument is a double*, not a name.
SPAN_CALL_RE = re.compile(r'(?:StartSpan|AddSpan)\(\s*"([^"]+)"')
SPAN_RAII_RE = re.compile(r'obs::Span\s+\w+\([^;]*?,\s*"([^"]+)"')
# Span-catalogue rows: | `queue.wait` | `request` | `src/server/…` | …
# (the parent cell is `root` for top-level spans).
SPAN_ROW_RE = re.compile(
    r"^\|\s*`([a-z0-9_.]+)`\s*\|\s*`([a-z0-9_.]+|root)`\s*\|\s*"
    r"`((?:src|tools)/[\w./]+)`\s*\|")

ARCH_PATH = "docs/ARCHITECTURE.md"
# Inventory rows: | `Dispatcher::mu_` | `src/server/dispatcher.h` | …
# (file-scope mutexes like g_log_mu have no Owner:: prefix).
MUTEX_ROW_RE = re.compile(
    r"^\|\s*`(?:\w+::)?(\w+)`\s*\|\s*`(src/[\w./]+)`\s*\|")
# `Mutex name_;` / `mutable Mutex mu_ CAFE_…;` / `Mutex g_log_mu;`
MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:cafe::)?Mutex\s+(\w+)")

PERF_PATH = "docs/PERFORMANCE.md"
BENCH_CMAKE_PATH = "bench/CMakeLists.txt"
# `__attribute__((target("avx2"))) inline __m256i ShiftLanesUp(…` — the
# kernel name is the identifier before the first paren after the
# attribute (clang-format keeps them on one logical line).
TARGET_ATTR_RE = re.compile(
    r'__attribute__\(\(target\("[^"]+"\)\)\)\s*(?:inline\s+)?\w+\s+(\w+)\s*\(')
# Dispatch-table rows: | `PackedScanAvx2` | `src/seqstore/…` | …
PERF_KERNEL_ROW_RE = re.compile(r"^\|\s*`(\w+)`\s*\|\s*`(src/[\w./]+)`\s*\|")
BENCH_REG_RE = re.compile(r"cafe_add_(?:bench|micro)\((\w+)\)")
DOC_BENCH_RE = re.compile(r"`(bench_\w+)`")

# Backticked `cafe_*` words that are repo binaries / libraries / CMake
# helpers, not Prometheus series claims.
NON_METRIC_NAMES = frozenset({
    "cafe_cli", "cafe_serve", "cafe_loadgen", "cafe_align",
    "cafe_alphabet", "cafe_coding", "cafe_collection", "cafe_eval",
    "cafe_index", "cafe_obs", "cafe_search", "cafe_seqstore",
    "cafe_server", "cafe_sim", "cafe_util", "cafe_add_test",
})


def prometheus_name(metric, kind):
    """Mirrors MetricsRegistry::SnapshotPrometheus's name mapping."""
    base = "cafe_" + re.sub(r"[^a-zA-Z0-9_:]", "_", metric)
    return base + "_total" if kind == "Counter" else base


def code_metric_names(root):
    """{dotted name: (kind, first file using it)}"""
    names = {}
    for top in ("src", "tools"):
        for dirpath, _, files in os.walk(os.path.join(root, top)):
            for name in sorted(files):
                if not name.endswith((".h", ".cc")):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8") as f:
                    for kind, metric in GET_RE.findall(f.read()):
                        names.setdefault(
                            metric, (kind, os.path.relpath(path, root)))
    return names


def doc_metric_names(doc_text):
    names = set()
    for line in doc_text.split("\n"):
        m = DOC_ROW_RE.match(line)
        if m:
            names.add(m.group(1))
    return names


def code_span_names(root):
    """{span name: set of files recording it} under src/ and tools/,
    excluding src/obs/span.h (the type's own doc comments)."""
    names = {}
    for top in ("src", "tools"):
        for dirpath, _, files in os.walk(os.path.join(root, top)):
            for name in sorted(files):
                if not name.endswith((".h", ".cc")):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                if rel == "src/obs/span.h":
                    continue
                with open(path, encoding="utf-8") as f:
                    text = f.read()
                for span in SPAN_CALL_RE.findall(text):
                    names.setdefault(span, set()).add(rel)
                for span in SPAN_RAII_RE.findall(text):
                    names.setdefault(span, set()).add(rel)
    return names


def check_span_catalogue(root, doc_text, problems):
    in_code = code_span_names(root)
    rows = {}
    for line in doc_text.split("\n"):
        m = SPAN_ROW_RE.match(line)
        if m:
            rows[m.group(1)] = m.group(3)
    for span in sorted(set(in_code) - set(rows)):
        where = ", ".join(sorted(in_code[span]))
        problems.append(
            f"{where}: span {span!r} has no catalogue row in {DOC_PATH}")
    for span, rel in sorted(rows.items()):
        if span not in in_code:
            problems.append(
                f"{DOC_PATH}: span catalogue documents {span!r} but no "
                f"recording site in src/ or tools/ uses it")
        elif rel not in in_code[span]:
            problems.append(
                f"{DOC_PATH}: span catalogue claims {span!r} is recorded "
                f"by {rel!r}, but the recording sites are "
                f"{sorted(in_code[span])}")
    return len(in_code), len(rows)


def code_mutex_decls(root):
    """{(relpath, mutex name)} for every Mutex declared under src/,
    excluding util/mutex.h (the wrapper's own internals)."""
    decls = set()
    for dirpath, _, files in os.walk(os.path.join(root, "src")):
        for name in sorted(files):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            if rel == "src/util/mutex.h":
                continue
            with open(path, encoding="utf-8") as f:
                for line in f:
                    m = MUTEX_DECL_RE.match(line)
                    if m:
                        decls.add((rel, m.group(1)))
    return decls


def doc_mutex_rows(arch_text):
    rows = set()
    for line in arch_text.split("\n"):
        m = MUTEX_ROW_RE.match(line)
        if m:
            rows.add((m.group(2), m.group(1)))
    return rows


def check_mutex_inventory(root, problems):
    arch_path = os.path.join(root, ARCH_PATH)
    with open(arch_path, encoding="utf-8") as f:
        arch_text = f.read()
    in_code = code_mutex_decls(root)
    in_doc = doc_mutex_rows(arch_text)
    for rel, name in sorted(in_code - in_doc):
        problems.append(
            f"{rel}: Mutex {name!r} has no inventory row in {ARCH_PATH} "
            f"(\"Concurrency invariants\")")
    for rel, name in sorted(in_doc - in_code):
        problems.append(
            f"{ARCH_PATH}: inventory row claims Mutex {name!r} in "
            f"{rel!r}, but that file declares no such mutex")
    return len(in_code), len(in_doc)


def code_kernel_decls(root):
    """{(relpath, function name)} for every target-attributed function
    under src/ — the runtime-dispatched SIMD kernels."""
    decls = set()
    for dirpath, _, files in os.walk(os.path.join(root, "src")):
        for name in sorted(files):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                for fname in TARGET_ATTR_RE.findall(f.read()):
                    decls.add((rel, fname))
    return decls


def check_simd_inventory(root, perf_text, problems):
    in_code = code_kernel_decls(root)
    in_doc = set()
    for line in perf_text.split("\n"):
        m = PERF_KERNEL_ROW_RE.match(line)
        if m:
            in_doc.add((m.group(2), m.group(1)))
    for rel, name in sorted(in_code - in_doc):
        problems.append(
            f"{rel}: SIMD kernel {name!r} has no dispatch-table row in "
            f"{PERF_PATH}")
    for rel, name in sorted(in_doc - in_code):
        problems.append(
            f"{PERF_PATH}: dispatch-table row claims kernel {name!r} in "
            f"{rel!r}, but that file defines no such target-attributed "
            f"function")
    return len(in_code), len(in_doc)


def check_bench_inventory(root, perf_text, problems):
    with open(os.path.join(root, BENCH_CMAKE_PATH), encoding="utf-8") as f:
        registered = set(BENCH_REG_RE.findall(f.read()))
    documented = set(DOC_BENCH_RE.findall(perf_text))
    for name in sorted(registered - documented):
        problems.append(
            f"{BENCH_CMAKE_PATH}: bench target {name!r} is not documented "
            f"in {PERF_PATH}")
    for name in sorted(documented - registered):
        problems.append(
            f"{PERF_PATH}: mentions bench {name!r} but "
            f"{BENCH_CMAKE_PATH} registers no such target")
    return len(registered)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    doc_path = os.path.join(root, DOC_PATH)
    with open(doc_path, encoding="utf-8") as f:
        doc_text = f.read()

    in_code = code_metric_names(root)
    in_doc = doc_metric_names(doc_text)
    problems = []

    exported = set()
    for m, (kind, _) in in_code.items():
        prom = prometheus_name(m, kind)
        exported.add(prom)
        if kind == "Histogram":
            # The series a Prometheus histogram actually exposes.
            exported.update(
                {prom + "_bucket", prom + "_sum", prom + "_count"})
    for metric in sorted(in_code):
        kind, where = in_code[metric]
        if f"`{metric}`" not in doc_text:
            problems.append(
                f"{where}: metric {metric!r} is not documented "
                f"in {DOC_PATH}")
        prom = prometheus_name(metric, kind)
        if f"`{prom}`" not in doc_text:
            problems.append(
                f"{where}: Prometheus name {prom!r} (for {metric!r}) is "
                f"not documented in {DOC_PATH}")
    for metric in sorted(in_doc):
        if metric not in in_code:
            problems.append(
                f"{DOC_PATH}: documents {metric!r} but no "
                f"GetCounter/GetHistogram literal in src/ or tools/ uses it")
    for prom in sorted(set(DOC_PROM_RE.findall(doc_text))):
        if prom not in exported and prom not in NON_METRIC_NAMES:
            problems.append(
                f"{DOC_PATH}: documents Prometheus name {prom!r} but "
                f"/metrics exports no such series")

    span_code, span_doc = check_span_catalogue(root, doc_text, problems)
    mutex_code, mutex_doc = check_mutex_inventory(root, problems)

    with open(os.path.join(root, PERF_PATH), encoding="utf-8") as f:
        perf_text = f.read()
    kernel_code, kernel_doc = check_simd_inventory(root, perf_text, problems)
    bench_count = check_bench_inventory(root, perf_text, problems)

    for p in problems:
        print(p)
    print(f"doccheck: {len(in_code)} metrics in code, {len(in_doc)} in "
          f"catalogue, {span_code} spans in code, {span_doc} in span "
          f"catalogue, {mutex_code} mutexes in code, {mutex_doc} in "
          f"inventory, {kernel_code} SIMD kernels in code, {kernel_doc} in "
          f"dispatch table, {bench_count} bench targets, "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
