#!/usr/bin/env python3
"""Doc/code cross-check for the metric catalogue.

docs/OBSERVABILITY.md claims to document every counter and histogram
name. This check keeps that true in both directions, grep-style:

  code -> doc   every string literal passed to GetCounter("...") or
                GetHistogram("...") under src/ and tools/ must appear
                in docs/OBSERVABILITY.md
  doc -> code   every metric name in the catalogue tables (rows of the
                form `| `name` | ...`) must appear as such a literal

Usage: tools/doccheck.py [repo-root]      (exit 0 = consistent)
"""

import os
import re
import sys

GET_RE = re.compile(r'Get(?:Counter|Histogram)\(\s*"([^"]+)"')
DOC_ROW_RE = re.compile(r"^\|\s*`([a-z0-9_]+\.[a-z0-9_]+)`\s*\|")
DOC_PATH = "docs/OBSERVABILITY.md"


def code_metric_names(root):
    names = {}
    for top in ("src", "tools"):
        for dirpath, _, files in os.walk(os.path.join(root, top)):
            for name in sorted(files):
                if not name.endswith((".h", ".cc")):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8") as f:
                    for metric in GET_RE.findall(f.read()):
                        names.setdefault(metric, os.path.relpath(path, root))
    return names


def doc_metric_names(doc_text):
    names = set()
    for line in doc_text.split("\n"):
        m = DOC_ROW_RE.match(line)
        if m:
            names.add(m.group(1))
    return names


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    doc_path = os.path.join(root, DOC_PATH)
    with open(doc_path, encoding="utf-8") as f:
        doc_text = f.read()

    in_code = code_metric_names(root)
    in_doc = doc_metric_names(doc_text)
    problems = []

    for metric in sorted(in_code):
        if f"`{metric}`" not in doc_text:
            problems.append(
                f"{in_code[metric]}: metric {metric!r} is not documented "
                f"in {DOC_PATH}")
    for metric in sorted(in_doc):
        if metric not in in_code:
            problems.append(
                f"{DOC_PATH}: documents {metric!r} but no "
                f"GetCounter/GetHistogram literal in src/ or tools/ uses it")

    for p in problems:
        print(p)
    print(f"doccheck: {len(in_code)} metrics in code, {len(in_doc)} in "
          f"catalogue, {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
