#!/usr/bin/env python3
"""Validator for the Prometheus text exposition format (version 0.0.4).

Checks what a scraper would choke on, so /metrics stays scrapeable
without running Prometheus in CI:

  - every non-comment line parses as `name{labels} value`
    (metric names [a-zA-Z_:][a-zA-Z0-9_:]*, label values quoted,
    values int/float/+Inf/-Inf/NaN)
  - every sample family is preceded by exactly one `# TYPE` line, and
    sample names match the declared family (`_total` for counters;
    `_bucket`/`_sum`/`_count` for histograms)
  - histogram buckets carry `le` labels, counts are cumulative
    (non-decreasing in le order), the `+Inf` bucket exists and equals
    `_count`
  - no duplicate sample (same name + label set)

Usage: tools/promcheck.py FILE        (`-` = stdin; exit 0 = valid)
       tools/promcheck.py --selftest  (verify the checker itself)
"""

import re
import sys

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
TYPE_RE = re.compile(rf"^# TYPE ({NAME}) (counter|gauge|histogram|summary|untyped)$")
HELP_RE = re.compile(rf"^# HELP ({NAME}) ")
SAMPLE_RE = re.compile(
    rf"^({NAME})(\{{[^{{}}]*\}})?\s+(-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?"
    rf"|[+-]Inf|NaN)(?:\s+-?\d+)?$")
LABELS_RE = re.compile(rf'({NAME})="((?:[^"\\]|\\.)*)"')


def parse_labels(text):
    """'{a="x",b="y"}' -> dict; None on malformed label syntax."""
    if not text:
        return {}
    body = text[1:-1].strip()
    if not body:
        return {}
    labels = {}
    rest = body
    while rest:
        m = LABELS_RE.match(rest)
        if not m:
            return None
        labels[m.group(1)] = m.group(2)
        rest = rest[m.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            return None
    return labels


def family_of(sample_name, types):
    """The declared family a sample name belongs to, or None."""
    if sample_name in types:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if sample_name.endswith(suffix):
            base = sample_name[:-len(suffix)]
            if base in types:
                return base
    return None


def check(text):
    """Returns a list of problem strings (empty = valid exposition)."""
    problems = []
    types = {}
    seen = set()
    # family -> list of (le value, count) for histogram buckets, and
    # the _count sample value, checked at the end.
    buckets = {}
    counts = {}

    for lineno, line in enumerate(text.split("\n"), start=1):
        if line == "":
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if m:
                name, kind = m.group(1), m.group(2)
                if name in types:
                    problems.append(f"line {lineno}: duplicate TYPE for {name}")
                types[name] = kind
                continue
            if HELP_RE.match(line) or line.startswith("# "):
                continue
            problems.append(f"line {lineno}: malformed comment: {line!r}")
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, label_text, value = m.group(1), m.group(2), m.group(3)
        labels = parse_labels(label_text)
        if labels is None:
            problems.append(f"line {lineno}: malformed labels: {line!r}")
            continue
        key = (name, tuple(sorted(labels.items())))
        if key in seen:
            problems.append(f"line {lineno}: duplicate sample {name}{label_text or ''}")
        seen.add(key)

        family = family_of(name, types)
        if family is None:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE line")
            continue
        kind = types[family]
        if kind == "counter" and name != family:
            problems.append(
                f"line {lineno}: counter family {family!r} has stray "
                f"sample {name!r}")
        if kind == "histogram":
            if name == family + "_bucket":
                if "le" not in labels:
                    problems.append(
                        f"line {lineno}: histogram bucket without le label")
                else:
                    le = (float("inf") if labels["le"] == "+Inf"
                          else float(labels["le"]))
                    buckets.setdefault(family, []).append(
                        (lineno, le, float(value)))
            elif name == family + "_count":
                counts[family] = float(value)
            elif name != family + "_sum":
                problems.append(
                    f"line {lineno}: histogram family {family!r} has "
                    f"stray sample {name!r}")

    for family, rows in sorted(buckets.items()):
        prev = -1.0
        for lineno, le, count in rows:  # exposition order
            if count < prev:
                problems.append(
                    f"line {lineno}: {family} buckets not cumulative "
                    f"(le={le}: {count} < {prev})")
            prev = count
        inf_rows = [c for _, le, c in rows if le == float("inf")]
        if not inf_rows:
            problems.append(f"{family}: no +Inf bucket")
        elif family in counts and inf_rows[-1] != counts[family]:
            problems.append(
                f"{family}: +Inf bucket {inf_rows[-1]} != _count "
                f"{counts[family]}")
        if family not in counts:
            problems.append(f"{family}: histogram without _count sample")

    return problems


SELFTEST_CASES = [
    # (exposition text, expected problem count)
    ("# TYPE cafe_x_total counter\ncafe_x_total 5\n", 0),
    ("# TYPE cafe_h histogram\n"
     'cafe_h_bucket{le="1"} 2\n'
     'cafe_h_bucket{le="+Inf"} 3\n'
     "cafe_h_sum 9\n"
     "cafe_h_count 3\n", 0),
    # Missing TYPE line.
    ("cafe_x_total 5\n", 1),
    # Unparseable sample.
    ("# TYPE cafe_x_total counter\ncafe_x_total five\n", 1),
    # Duplicate sample.
    ("# TYPE cafe_x_total counter\ncafe_x_total 5\ncafe_x_total 6\n", 1),
    # Non-cumulative buckets.
    ("# TYPE cafe_h histogram\n"
     'cafe_h_bucket{le="1"} 5\n'
     'cafe_h_bucket{le="+Inf"} 3\n'
     "cafe_h_sum 9\n"
     "cafe_h_count 3\n", 1),
    # +Inf bucket disagrees with _count.
    ("# TYPE cafe_h histogram\n"
     'cafe_h_bucket{le="+Inf"} 4\n'
     "cafe_h_sum 9\n"
     "cafe_h_count 3\n", 1),
    # No +Inf bucket.
    ("# TYPE cafe_h histogram\n"
     'cafe_h_bucket{le="1"} 2\n'
     "cafe_h_sum 9\n"
     "cafe_h_count 3\n", 1),
    # Bucket without le.
    ("# TYPE cafe_h histogram\n"
     "cafe_h_bucket 2\n"
     'cafe_h_bucket{le="+Inf"} 2\n'
     "cafe_h_sum 9\n"
     "cafe_h_count 2\n", 1),
    # Malformed labels.
    ("# TYPE cafe_x_total counter\n"
     'cafe_x_total{bad} 5\n', 1),
    # Stray sample name inside a counter family.
    ("# TYPE cafe_y counter\n"
     "cafe_y_count 5\n", 1),
    # Duplicate TYPE line.
    ("# TYPE cafe_x_total counter\n"
     "# TYPE cafe_x_total counter\n"
     "cafe_x_total 5\n", 1),
]


def selftest():
    failures = []
    for i, (text, want) in enumerate(SELFTEST_CASES):
        got = check(text)
        if len(got) != want:
            failures.append(f"case {i}: expected {want} problem(s), "
                            f"got {len(got)}: {got}")
    for failure in failures:
        print(f"selftest: {failure}")
    print(f"promcheck --selftest: {len(SELFTEST_CASES)} cases, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    if len(sys.argv) > 1 and sys.argv[1] == "--selftest":
        return selftest()
    if len(sys.argv) != 2:
        print(__doc__.strip().split("\n")[-2].strip())
        return 2
    if sys.argv[1] == "-":
        text = sys.stdin.read()
    else:
        with open(sys.argv[1], encoding="utf-8") as f:
            text = f.read()
    problems = check(text)
    for p in problems:
        print(p)
    print(f"promcheck: {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
