// cafe_cli — command-line front end to the library.
//
//   cafe_cli generate --bases 1000000 --out db.fa [--seed N]
//       [--wildcards RATE]
//   cafe_cli build --fasta db.fa --collection db.col --index db.idx
//       [--interval 8] [--stride 1] [--granularity positional|document]
//       [--stop FRACTION] [--threads N]
//       [--seed-pattern 1101011]   (spaced seed; '1' count = interval)
//   cafe_cli info --collection db.col [--index db.idx]
//   cafe_cli search --collection db.col --index db.idx
//       (--query ACGT... | --query-file q.fa)
//       [--top 10] [--candidates 100] [--band 48] [--mode diagonal|hitcount]
//       [--both-strands] [--evalues] [--traceback]
//       [--chain off|filter] [--min-chain N] [--seed-pattern P]
//       [--index-mode memory|cached|mmap]   (--disk-index = cached)
//       [--threads N]   (default: one per hardware thread; 1 = sequential)
//       [--stats[=json]] [--trace-out FILE]
//   cafe_cli batch ...   (search over --query-file; same flags)
//
// --stats attaches the observability layer (src/obs/): per-query search
// traces plus the process metrics registry, as text after the normal
// output or, with --stats=json, as a single JSON document on stdout
// (schema in docs/OBSERVABILITY.md). --trace-out records one span
// timeline covering the whole run (index open + every query) and writes
// it as Chrome trace-event JSON — load the file in Perfetto or
// chrome://tracing.
//
// Exit status 0 on success, 1 on any error (message on stderr).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>

#include "align/statistics.h"
#include "align/sw_simd.h"
#include "alphabet/nucleotide.h"
#include "collection/collection.h"
#include "collection/genbank.h"
#include "eval/table.h"
#include "index/index_merge.h"
#include "index/index_reader.h"
#include "index/interval.h"
#include "index/index_stats.h"
#include "index/inverted_index.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "search/chain.h"
#include "search/partitioned.h"
#include "seqstore/packed_scan_simd.h"
#include "sim/generator.h"
#include "util/flags.h"
#include "util/stringutil.h"
#include "util/timer.h"
#include "util/version.h"

namespace cafe {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: cafe_cli <generate|build|info|terms|search|batch> [flags]\n"
      "  generate --bases N --out FILE [--seed N] [--wildcards RATE]\n"
      "  build    (--fasta FILE | --genbank FILE) --collection FILE\n"
      "           --index FILE\n"
      "           [--interval N] [--stride N] [--granularity g] [--stop F]\n"
      "           [--seed-pattern P]  (spaced seed; '1' count = interval)\n"
      "           [--shards N] [--threads N] [--stats[=json]]\n"
      "  info     --collection FILE [--index FILE]\n"
      "  terms    --index FILE [--top N]\n"
      "  search   --collection FILE --index FILE\n"
      "           (--query SEQ | --query-file FILE) [--top N]\n"
      "           [--candidates N] [--band N] [--mode diagonal|hitcount]\n"
      "           [--both-strands] [--evalues] [--traceback]\n"
      "           [--chain off|filter] [--min-chain N] [--seed-pattern P]\n"
      "           [--index-mode memory|cached|mmap]  (--disk-index = "
      "cached)\n"
      "           [--threads N]  (0 = one per hardware thread)\n"
      "           [--stats[=json]]  (per-query traces + metrics)\n"
      "           [--trace-out FILE]  (span timeline, Chrome trace JSON)\n"
      "  batch    search over a --query-file (same flags as search)\n"
      "  --version  print the build version and exit\n");
  return 1;
}

// --stats parses to "" (off), "text" (bare --stats) or "json".
Result<std::string> ParseStatsMode(FlagParser& flags) {
  std::string stats = flags.GetString("stats", "");
  if (stats.empty()) return std::string();
  if (stats == "true" || stats == "text") return std::string("text");
  if (stats == "json") return std::string("json");
  return Status::InvalidArgument("--stats takes no value, 'text' or 'json'");
}

Status CmdGenerate(FlagParser& flags) {
  sim::CollectionOptions options;
  options.target_bases =
      static_cast<uint64_t>(flags.GetInt("bases", 1000000));
  options.wildcard_rate = flags.GetDouble("wildcards", 0.0002);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  std::string out = flags.GetString("out", "");
  CAFE_RETURN_IF_ERROR(flags.Finish());
  if (out.empty()) {
    return Status::InvalidArgument("--out is required");
  }

  sim::CollectionGenerator gen(options);
  Result<SequenceCollection> col = gen.Generate();
  if (!col.ok()) return col.status();

  std::vector<FastaRecord> records;
  records.reserve(col->NumSequences());
  std::string seq;
  for (uint32_t i = 0; i < col->NumSequences(); ++i) {
    CAFE_RETURN_IF_ERROR(col->GetSequence(i, &seq));
    records.push_back({col->Name(i), col->Description(i), seq});
  }
  CAFE_RETURN_IF_ERROR(WriteFastaFile(out, records));
  std::printf("wrote %u sequences (%s bases) to %s\n", col->NumSequences(),
              WithCommas(col->TotalBases()).c_str(), out.c_str());
  return Status::OK();
}

Status CmdBuild(FlagParser& flags) {
  std::string fasta = flags.GetString("fasta", "");
  std::string genbank = flags.GetString("genbank", "");
  std::string col_path = flags.GetString("collection", "");
  std::string idx_path = flags.GetString("index", "");
  IndexOptions options;
  options.interval_length = static_cast<int>(flags.GetInt("interval", 8));
  options.stride = static_cast<uint32_t>(flags.GetInt("stride", 1));
  options.stop_doc_fraction = flags.GetDouble("stop", 1.0);
  options.spaced_seed = flags.GetString("seed-pattern", "");
  if (!options.spaced_seed.empty() && !flags.Has("interval")) {
    // The seed's weight IS the interval length; deriving it here means
    // --seed-pattern alone is a complete build spec. An explicit
    // --interval still has to agree (IndexOptions::Validate checks).
    options.interval_length = static_cast<int>(std::count(
        options.spaced_seed.begin(), options.spaced_seed.end(), '1'));
  }
  std::string gran = flags.GetString("granularity", "positional");
  uint32_t shards = static_cast<uint32_t>(flags.GetInt("shards", 0));
  int64_t threads_flag = flags.GetInt("threads", 1);
  Result<std::string> stats_mode = ParseStatsMode(flags);
  CAFE_RETURN_IF_ERROR(flags.Finish());
  if (!stats_mode.ok()) return stats_mode.status();
  if (threads_flag < 0) {
    return Status::InvalidArgument("--threads must be >= 0");
  }
  unsigned threads = static_cast<unsigned>(threads_flag);
  if (fasta.empty() == genbank.empty() || col_path.empty() ||
      idx_path.empty()) {
    return Status::InvalidArgument(
        "exactly one of --fasta/--genbank plus --collection and --index "
        "are required");
  }
  if (gran == "document" || gran == "doc") {
    options.granularity = IndexGranularity::kDocument;
  } else if (gran != "positional" && gran != "pos") {
    return Status::InvalidArgument("unknown granularity: " + gran);
  }

  std::vector<FastaRecord> records;
  if (!fasta.empty()) {
    CAFE_RETURN_IF_ERROR(ReadFastaFile(fasta, &records));
  } else {
    CAFE_RETURN_IF_ERROR(ReadGenBankFile(genbank, &records));
  }
  Result<SequenceCollection> col = SequenceCollection::FromFasta(records);
  if (!col.ok()) return col.status();

  obs::MetricsRegistry registry;
  if (!stats_mode->empty()) options.metrics = &registry;
  WallTimer timer;
  Result<InvertedIndex> index =
      shards > 1
          ? BuildSharded(*col, options,
                         (col->NumSequences() + shards - 1) / shards,
                         threads)
          : (threads != 1
                 ? IndexBuilder::BuildParallel(*col, options, threads)
                 : IndexBuilder::Build(*col, options));
  if (!index.ok()) return index.status();
  CAFE_RETURN_IF_ERROR(col->Save(col_path));
  CAFE_RETURN_IF_ERROR(index->Save(idx_path));
  // Verify the bytes that landed on disk: reopen through the zero-copy
  // mmap path (one CRC sweep + directory parse, no blob copy) and
  // check the directory it sees against the index just built.
  {
    Result<std::unique_ptr<MmapIndex>> verify = MmapIndex::Open(idx_path);
    if (!verify.ok()) return verify.status();
    if ((*verify)->stats().num_terms != index->stats().num_terms ||
        (*verify)->stats().total_postings !=
            index->stats().total_postings ||
        (*verify)->num_docs() != index->num_docs()) {
      return Status::Corruption(
          "saved index disagrees with the built index: " + idx_path);
    }
  }
  if (*stats_mode == "json") {
    // JSON mode: stdout is exactly one document.
    std::printf("{\"command\":\"build\","
                "\"collection\":{\"sequences\":%u,\"bases\":%" PRIu64 "},"
                "\"index\":{\"terms\":%" PRIu64 ",\"postings\":%" PRIu64
                ",\"bytes\":%" PRIu64 "},"
                "\"metrics\":%s}\n",
                col->NumSequences(), col->TotalBases(),
                index->stats().num_terms, index->stats().total_postings,
                index->SerializedBytes(), registry.SnapshotJson().c_str());
    return Status::OK();
  }
  std::printf(
      "collection: %u sequences, %s bases -> %s\n"
      "index: %s terms, %s postings, built in %.1fs -> %s (%s)\n",
      col->NumSequences(), WithCommas(col->TotalBases()).c_str(),
      col_path.c_str(), WithCommas(index->stats().num_terms).c_str(),
      WithCommas(index->stats().total_postings).c_str(), timer.Seconds(),
      idx_path.c_str(), HumanBytes(index->SerializedBytes()).c_str());
  if (*stats_mode == "text") {
    std::printf("\nmetrics:\n%s", registry.SnapshotText().c_str());
  }
  return Status::OK();
}

Status CmdInfo(FlagParser& flags) {
  std::string col_path = flags.GetString("collection", "");
  std::string idx_path = flags.GetString("index", "");
  CAFE_RETURN_IF_ERROR(flags.Finish());
  if (col_path.empty()) {
    return Status::InvalidArgument("--collection is required");
  }
  Result<SequenceCollection> col = SequenceCollection::Load(col_path);
  if (!col.ok()) return col.status();
  std::printf("collection %s\n  sequences : %s\n  bases     : %s\n"
              "  storage   : %s (%.2f bits/base)\n",
              col_path.c_str(), WithCommas(col->NumSequences()).c_str(),
              WithCommas(col->TotalBases()).c_str(),
              HumanBytes(col->StorageBytes()).c_str(),
              8.0 * static_cast<double>(col->StorageBytes()) /
                  static_cast<double>(col->TotalBases()));
  if (!idx_path.empty()) {
    Result<InvertedIndex> index = InvertedIndex::Load(idx_path);
    if (!index.ok()) return index.status();
    std::printf("\nindex %s\n%s", idx_path.c_str(),
                FormatIndexStats(*index, col->TotalBases()).c_str());
  }
  return Status::OK();
}

// Lists the most frequent intervals — the candidates index stopping
// would discard, and a window into the collection's repeat structure.
Status CmdTerms(FlagParser& flags) {
  std::string idx_path = flags.GetString("index", "");
  uint32_t top = static_cast<uint32_t>(flags.GetInt("top", 20));
  CAFE_RETURN_IF_ERROR(flags.Finish());
  if (idx_path.empty()) {
    return Status::InvalidArgument("--index is required");
  }
  Result<InvertedIndex> index = InvertedIndex::Load(idx_path);
  if (!index.ok()) return index.status();

  struct TermRow {
    uint32_t term;
    uint32_t doc_count;
    uint32_t posting_count;
  };
  std::vector<TermRow> rows;
  index->directory().ForEachTerm([&](uint32_t term, const TermEntry& e) {
    rows.push_back({term, e.doc_count, e.posting_count});
  });
  std::sort(rows.begin(), rows.end(),
            [](const TermRow& a, const TermRow& b) {
              if (a.posting_count != b.posting_count) {
                return a.posting_count > b.posting_count;
              }
              return a.term < b.term;
            });
  if (rows.size() > top) rows.resize(top);

  int n = index->options().interval_length;
  eval::TablePrinter table({"interval", "postings", "sequences",
                            "% of sequences"});
  for (const TermRow& r : rows) {
    table.AddRow({DecodeInterval(r.term, n), WithCommas(r.posting_count),
                  WithCommas(r.doc_count),
                  FormatDouble(100.0 * r.doc_count / index->num_docs(), 1)});
  }
  table.Print();
  return Status::OK();
}

// Renders one hit as a JSON object (--stats=json output).
std::string HitJson(const SequenceCollection& col, const SearchHit& h,
                    bool evalues) {
  char buf[160];
  std::string out = "{\"sequence\":\"" + obs::JsonEscape(col.Name(h.seq_id)) +
                    "\"";
  std::snprintf(buf, sizeof(buf), ",\"score\":%d,\"coarse\":%.0f",
                h.score, h.coarse_score);
  out += buf;
  out += h.strand == Strand::kForward ? ",\"strand\":\"+\""
                                      : ",\"strand\":\"-\"";
  if (evalues) {
    std::snprintf(buf, sizeof(buf), ",\"bits\":%.2f,\"evalue\":%.3e",
                  h.bit_score, h.evalue);
    out += buf;
  }
  out += "}";
  return out;
}

// `batch_mode` is the `batch` subcommand: identical to search but the
// queries must come from a --query-file.
Status CmdSearch(FlagParser& flags, bool batch_mode) {
  std::string col_path = flags.GetString("collection", "");
  std::string idx_path = flags.GetString("index", "");
  std::string query = flags.GetString("query", "");
  std::string query_file = flags.GetString("query-file", "");
  SearchOptions options;
  options.max_results = static_cast<uint32_t>(flags.GetInt("top", 10));
  options.fine_candidates =
      static_cast<uint32_t>(flags.GetInt("candidates", 100));
  options.band = static_cast<int>(flags.GetInt("band", 48));
  options.search_both_strands = flags.GetBool("both-strands");
  options.traceback = flags.GetBool("traceback");
  std::string chain_flag = flags.GetString("chain", "off");
  options.min_chain_score =
      static_cast<uint32_t>(flags.GetInt("min-chain", 2));
  options.seed_pattern = flags.GetString("seed-pattern", "");
  // 0 = one worker per hardware thread (the serving default); 1 forces
  // the sequential reference path.
  int64_t threads_flag = flags.GetInt("threads", 0);
  bool evalues = flags.GetBool("evalues");
  bool use_disk = flags.GetBool("disk-index");
  std::string index_mode_flag = flags.GetString("index-mode", "");
  std::string mode = flags.GetString("mode", "diagonal");
  std::string trace_out = flags.GetString("trace-out", "");
  Result<std::string> stats_flag = ParseStatsMode(flags);
  CAFE_RETURN_IF_ERROR(flags.Finish());
  if (!stats_flag.ok()) return stats_flag.status();
  const std::string& stats_mode = *stats_flag;
  if (threads_flag < 0) {
    return Status::InvalidArgument("--threads must be >= 0");
  }
  options.threads = static_cast<uint32_t>(threads_flag);
  if (col_path.empty() || idx_path.empty()) {
    return Status::InvalidArgument(
        "--collection and --index are required");
  }
  if (batch_mode && query_file.empty()) {
    return Status::InvalidArgument("batch requires --query-file");
  }
  if (query.empty() == query_file.empty()) {
    return Status::InvalidArgument(
        "exactly one of --query / --query-file is required");
  }
  if (mode == "hitcount" || mode == "hits") {
    options.coarse_mode = CoarseRankMode::kHitCount;
  } else if (mode != "diagonal" && mode != "diag") {
    return Status::InvalidArgument("unknown mode: " + mode);
  }
  Result<ChainMode> chain_mode = ParseChainMode(chain_flag);
  if (!chain_mode.ok()) return chain_mode.status();
  options.chain_mode = *chain_mode;

  Result<SequenceCollection> col = SequenceCollection::Load(col_path);
  if (!col.ok()) return col.status();

  Result<IndexMode> resolved = ResolveIndexModeFlags(index_mode_flag,
                                                     use_disk);
  if (!resolved.ok()) return resolved.status();
  IndexMode index_mode = *resolved;

  // --trace-out records the whole run (index open + every query) into
  // one timeline. Trace id 0 — this is a local run, not a wire request.
  std::unique_ptr<obs::SpanRecorder> spans;
  if (!trace_out.empty()) {
    spans = std::make_unique<obs::SpanRecorder>(0);
    options.spans = spans.get();
  }

  obs::MetricsRegistry registry;
  const uint32_t open_span =
      spans != nullptr ? spans->StartSpan("index.open") : 0;
  Result<IndexReader> reader = IndexReader::Open(idx_path, index_mode);
  if (spans != nullptr) spans->EndSpan(open_span);
  if (!reader.ok()) return reader.status();
  if (!stats_mode.empty()) {
    reader->AttachMetrics(&registry);
    // SIMD dispatch counters (coarse.packed_* / align.*) ride along so
    // the stats verb shows which tier served the hot loops.
    AttachPackedScanMetrics(&registry);
    AttachAlignSimdMetrics(&registry);
    AttachChainMetrics(&registry);
  }
  const PostingSource* source = reader->source();

  std::vector<std::pair<std::string, std::string>> queries;  // (name, seq)
  if (!query.empty()) {
    std::string normalized = NormalizeSequence(query);
    if (!IsValidSequence(normalized)) {
      return Status::InvalidArgument("query contains non-IUPAC characters");
    }
    queries.emplace_back("query", normalized);
  } else {
    std::vector<FastaRecord> records;
    CAFE_RETURN_IF_ERROR(ReadFastaFile(query_file, &records));
    for (FastaRecord& rec : records) {
      queries.emplace_back(rec.id, std::move(rec.sequence));
    }
  }

  if (evalues) {
    Result<GumbelParams> params = CalibrateGumbel(
        options.scoring, 128, 1024, /*trials=*/50, /*seed=*/1);
    if (!params.ok()) return params.status();
    options.statistics = *params;
  }

  PartitionedSearch engine(&*col, source);
  std::vector<std::string> query_seqs;
  query_seqs.reserve(queries.size());
  for (const auto& [name, q] : queries) query_seqs.push_back(q);
  std::vector<obs::SearchTrace> traces;
  Result<std::vector<SearchResult>> batch = engine.BatchSearchTraced(
      query_seqs, options, stats_mode.empty() ? nullptr : &traces);
  if (!batch.ok()) return batch.status();

  if (spans != nullptr) {
    std::FILE* f = std::fopen(trace_out.c_str(), "w");
    if (f == nullptr) {
      return Status::IOError("cannot write --trace-out file: " + trace_out);
    }
    const std::string trace_json = spans->ChromeTraceJson();
    std::fwrite(trace_json.data(), 1, trace_json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::fprintf(stderr, "trace: %zu spans -> %s\n", spans->size(),
                 trace_out.c_str());
  }

  if (stats_mode == "json") {
    // JSON mode: stdout is exactly one document. Schema in
    // docs/OBSERVABILITY.md.
    char buf[96];
    std::string out = "{\"command\":\"search\",";
    std::snprintf(buf, sizeof(buf),
                  "\"collection\":{\"sequences\":%u,\"bases\":%" PRIu64 "},",
                  col->NumSequences(), col->TotalBases());
    out += buf;
    out += "\"queries\":[";
    obs::SearchTrace total;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const auto& [name, q] = queries[qi];
      if (qi > 0) out += ",";
      out += "{\"name\":\"" + obs::JsonEscape(name) + "\"";
      std::snprintf(buf, sizeof(buf), ",\"bases\":%zu,", q.size());
      out += buf;
      out += "\"hits\":[";
      const std::vector<SearchHit>& hits = (*batch)[qi].hits;
      for (size_t i = 0; i < hits.size(); ++i) {
        if (i > 0) out += ",";
        out += HitJson(*col, hits[i], evalues);
      }
      out += "],\"trace\":" + traces[qi].ToJson() + "}";
      total.Merge(traces[qi]);
    }
    out += "],\"trace_total\":" + total.ToJson();
    out += ",\"metrics\":" + registry.SnapshotJson() + "}";
    std::printf("%s\n", out.c_str());
    return Status::OK();
  }

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& [name, q] = queries[qi];
    const SearchResult* result = &(*batch)[qi];
    std::printf("query %s (%zu bases): %zu hits in %.1f ms "
                "(coarse %.1f, fine %.1f)\n",
                name.c_str(), q.size(), result->hits.size(),
                result->stats.total_seconds * 1e3,
                result->stats.coarse_seconds * 1e3,
                result->stats.fine_seconds * 1e3);
    std::vector<std::string> headers = {"#", "sequence", "score", "coarse",
                                        "strand"};
    if (evalues) {
      headers.push_back("bits");
      headers.push_back("evalue");
    }
    eval::TablePrinter table(headers);
    for (size_t i = 0; i < result->hits.size(); ++i) {
      const SearchHit& h = result->hits[i];
      std::vector<std::string> row = {
          std::to_string(i + 1), col->Name(h.seq_id),
          std::to_string(h.score), FormatDouble(h.coarse_score, 0),
          h.strand == Strand::kForward ? "+" : "-"};
      if (evalues) {
        row.push_back(FormatDouble(h.bit_score, 1));
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2e", h.evalue);
        row.push_back(buf);
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    if (options.traceback) {
      std::string target;
      for (const SearchHit& h : result->hits) {
        if (h.alignment.ops.empty()) continue;
        CAFE_RETURN_IF_ERROR(col->GetSequence(h.seq_id, &target));
        std::string oriented =
            h.strand == Strand::kForward ? q : ReverseComplement(q);
        std::printf("\n%s%s\n", col->Name(h.seq_id).c_str(),
                    h.strand == Strand::kReverse ? " (minus strand)" : "");
        std::printf("%s", h.alignment.Format(oriented, target).c_str());
      }
    }
    if (stats_mode == "text") {
      std::printf("%s", traces[qi].ToText().c_str());
    }
    std::printf("\n");
  }
  if (stats_mode == "text") {
    std::string text = registry.SnapshotText();
    if (!text.empty()) std::printf("metrics:\n%s", text.c_str());
  }
  return Status::OK();
}

}  // namespace
}  // namespace cafe

int main(int argc, char** argv) {
  using namespace cafe;
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "--version" || cmd == "version") {
    std::printf("cafe_cli %s (git %s)\n", kVersionString, kGitRevision);
    return 0;
  }
  FlagParser flags(argc - 1, argv + 1);
  Status status;
  if (cmd == "generate") {
    status = CmdGenerate(flags);
  } else if (cmd == "build") {
    status = CmdBuild(flags);
  } else if (cmd == "info") {
    status = CmdInfo(flags);
  } else if (cmd == "terms") {
    status = CmdTerms(flags);
  } else if (cmd == "search") {
    status = CmdSearch(flags, /*batch_mode=*/false);
  } else if (cmd == "batch") {
    status = CmdSearch(flags, /*batch_mode=*/true);
  } else {
    return Usage();
  }
  return status.ok() ? 0 : Fail(status);
}
