// Retrieval-effectiveness metrics, measured against either the planted
// ground truth or the exhaustive-search oracle ranking.

#ifndef CAFE_EVAL_METRICS_H_
#define CAFE_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "search/engine.h"

namespace cafe::eval {

/// Fraction of `relevant` ids appearing among the first `k` hits.
/// Returns 1.0 when `relevant` is empty.
double RecallAtK(const std::vector<SearchHit>& hits,
                 const std::vector<uint32_t>& relevant, uint32_t k);

/// Non-interpolated average precision of the ranking w.r.t. `relevant`.
double AveragePrecision(const std::vector<SearchHit>& hits,
                        const std::vector<uint32_t>& relevant);

/// Fraction of the oracle's top-k ids that also appear in the candidate
/// engine's top-k ("how much of the exhaustive answer set the partitioned
/// search reproduces" — the paper's accuracy criterion).
double OverlapAtK(const std::vector<SearchHit>& candidate,
                  const std::vector<SearchHit>& oracle, uint32_t k);

/// Fraction of the first k hits that are relevant (0 if k = 0).
double PrecisionAtK(const std::vector<SearchHit>& hits,
                    const std::vector<uint32_t>& relevant, uint32_t k);

/// Classic 11-point interpolated average precision: interpolated
/// precision sampled at recall 0.0, 0.1, ..., 1.0 and averaged — the
/// standard IR summary of the era the paper was written in.
double ElevenPointAveragePrecision(const std::vector<SearchHit>& hits,
                                   const std::vector<uint32_t>& relevant);

/// One precision/recall operating point per rank where a relevant item
/// was retrieved (useful for plotting the trade-off curve).
struct PrecisionRecallPoint {
  double recall = 0.0;
  double precision = 0.0;
};
std::vector<PrecisionRecallPoint> PrecisionRecallCurve(
    const std::vector<SearchHit>& hits,
    const std::vector<uint32_t>& relevant);

}  // namespace cafe::eval

#endif  // CAFE_EVAL_METRICS_H_
