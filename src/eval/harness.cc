#include "eval/harness.h"

namespace cafe::eval {

Result<BatchResult> RunBatch(SearchEngine* engine,
                             const std::vector<std::string>& queries,
                             const SearchOptions& options) {
  BatchResult out;
  out.engine_name = engine->name();
  out.results.reserve(queries.size());
  for (const std::string& query : queries) {
    Result<SearchResult> r = engine->Search(query, options);
    if (!r.ok()) return r.status();
    out.aggregate.Accumulate(r->stats);
    out.results.push_back(std::move(*r));
  }
  if (!queries.empty()) {
    out.mean_query_seconds =
        out.aggregate.total_seconds / static_cast<double>(queries.size());
  }
  return out;
}

}  // namespace cafe::eval
