#include "eval/harness.h"

#include "util/timer.h"

namespace cafe::eval {

Result<BatchResult> RunBatch(SearchEngine* engine,
                             const std::vector<std::string>& queries,
                             const SearchOptions& options) {
  BatchResult out;
  out.engine_name = engine->name();
  WallTimer wall;
  Result<std::vector<SearchResult>> results =
      engine->BatchSearch(queries, options);
  if (!results.ok()) return results.status();
  out.wall_seconds = wall.Seconds();
  out.results = std::move(*results);
  for (const SearchResult& r : out.results) {
    out.aggregate.Accumulate(r.stats);
  }
  if (!queries.empty()) {
    out.mean_query_seconds =
        out.aggregate.total_seconds / static_cast<double>(queries.size());
  }
  return out;
}

}  // namespace cafe::eval
