#include "eval/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace cafe::eval {

double RecallAtK(const std::vector<SearchHit>& hits,
                 const std::vector<uint32_t>& relevant, uint32_t k) {
  if (relevant.empty()) return 1.0;
  std::unordered_set<uint32_t> rel(relevant.begin(), relevant.end());
  size_t found = 0;
  size_t limit = std::min<size_t>(k, hits.size());
  for (size_t i = 0; i < limit; ++i) {
    if (rel.count(hits[i].seq_id) != 0) ++found;
  }
  return static_cast<double>(found) / static_cast<double>(rel.size());
}

double AveragePrecision(const std::vector<SearchHit>& hits,
                        const std::vector<uint32_t>& relevant) {
  if (relevant.empty()) return 1.0;
  std::unordered_set<uint32_t> rel(relevant.begin(), relevant.end());
  size_t found = 0;
  double sum = 0.0;
  for (size_t i = 0; i < hits.size(); ++i) {
    if (rel.count(hits[i].seq_id) != 0) {
      ++found;
      sum += static_cast<double>(found) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(rel.size());
}

double PrecisionAtK(const std::vector<SearchHit>& hits,
                    const std::vector<uint32_t>& relevant, uint32_t k) {
  if (k == 0) return 0.0;
  std::unordered_set<uint32_t> rel(relevant.begin(), relevant.end());
  size_t limit = std::min<size_t>(k, hits.size());
  size_t found = 0;
  for (size_t i = 0; i < limit; ++i) {
    found += rel.count(hits[i].seq_id) != 0;
  }
  return static_cast<double>(found) / static_cast<double>(k);
}

std::vector<PrecisionRecallPoint> PrecisionRecallCurve(
    const std::vector<SearchHit>& hits,
    const std::vector<uint32_t>& relevant) {
  std::vector<PrecisionRecallPoint> curve;
  std::unordered_set<uint32_t> rel(relevant.begin(), relevant.end());
  if (rel.empty()) return curve;
  size_t found = 0;
  for (size_t i = 0; i < hits.size(); ++i) {
    if (rel.count(hits[i].seq_id) != 0) {
      ++found;
      curve.push_back(
          {static_cast<double>(found) / static_cast<double>(rel.size()),
           static_cast<double>(found) / static_cast<double>(i + 1)});
    }
  }
  return curve;
}

double ElevenPointAveragePrecision(const std::vector<SearchHit>& hits,
                                   const std::vector<uint32_t>& relevant) {
  if (relevant.empty()) return 1.0;
  std::vector<PrecisionRecallPoint> curve =
      PrecisionRecallCurve(hits, relevant);
  double sum = 0.0;
  for (int level = 0; level <= 10; ++level) {
    double recall = level / 10.0;
    // Interpolated precision: max precision at any recall >= level.
    double best = 0.0;
    for (const PrecisionRecallPoint& p : curve) {
      if (p.recall + 1e-12 >= recall) best = std::max(best, p.precision);
    }
    sum += best;
  }
  return sum / 11.0;
}

double OverlapAtK(const std::vector<SearchHit>& candidate,
                  const std::vector<SearchHit>& oracle, uint32_t k) {
  size_t oracle_k = std::min<size_t>(k, oracle.size());
  if (oracle_k == 0) return 1.0;
  std::unordered_set<uint32_t> cand;
  for (size_t i = 0; i < std::min<size_t>(k, candidate.size()); ++i) {
    cand.insert(candidate[i].seq_id);
  }
  size_t found = 0;
  for (size_t i = 0; i < oracle_k; ++i) {
    if (cand.count(oracle[i].seq_id) != 0) ++found;
  }
  return static_cast<double>(found) / static_cast<double>(oracle_k);
}

}  // namespace cafe::eval
