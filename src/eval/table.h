// Column-aligned table rendering for the experiment harnesses: every
// bench binary prints its reproduced paper table through this.

#ifndef CAFE_EVAL_TABLE_H_
#define CAFE_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace cafe::eval {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with a header rule; numeric-looking cells right-aligned.
  std::string Render() const;

  /// Render and write to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cafe::eval

#endif  // CAFE_EVAL_TABLE_H_
