// Batch evaluation harness: run an engine over a query workload,
// aggregate per-query statistics, and keep the rankings for
// effectiveness scoring.

#ifndef CAFE_EVAL_HARNESS_H_
#define CAFE_EVAL_HARNESS_H_

#include <string>
#include <vector>

#include "search/engine.h"

namespace cafe::eval {

struct BatchResult {
  std::string engine_name;
  /// One SearchResult per query, in input order.
  std::vector<SearchResult> results;
  /// Sum over queries.
  SearchStats aggregate;
  double mean_query_seconds = 0.0;
  /// Wall-clock time of the whole batch. With options.threads > 1 this
  /// is what shrinks (queries overlap), while the per-query stats the
  /// aggregate sums stay roughly constant.
  double wall_seconds = 0.0;
};

/// Runs every query through the engine via SearchEngine::BatchSearch
/// (concurrent across queries when options.threads > 1 and the engine
/// supports it). Fails fast on the first engine error.
Result<BatchResult> RunBatch(SearchEngine* engine,
                             const std::vector<std::string>& queries,
                             const SearchOptions& options);

}  // namespace cafe::eval

#endif  // CAFE_EVAL_HARNESS_H_
