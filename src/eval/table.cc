#include "eval/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace cafe::eval {
namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != ',' && c != '%' && c != 'e' &&
        c != 'x' && c != 'E') {
      return false;
    }
  }
  return true;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto pad = [&](const std::string& s, size_t w, bool right) {
    std::string out;
    if (right) out.append(w - s.size(), ' ');
    out += s;
    if (!right) out.append(w - s.size(), ' ');
    return out;
  };

  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += "  ";
    out += pad(headers_[c], widths[c], false);
  }
  out += "\n";
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += "  ";
    out.append(widths[c], '-');
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c) out += "  ";
      out += pad(row[c], widths[c], LooksNumeric(row[c]));
    }
    out += "\n";
  }
  return out;
}

void TablePrinter::Print() const {
  std::fputs(Render().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace cafe::eval
