// Elias gamma and delta codes for positive integers (Elias, 1975).
//
// gamma(v): unary code for 1 + floor(log2 v), then the low floor(log2 v)
// bits of v. Costs 2*floor(log2 v) + 1 bits; ideal for small values such
// as within-sequence occurrence counts.
//
// delta(v): gamma code for 1 + floor(log2 v), then the low bits. Costs
// O(log v + 2 log log v); better than gamma for larger magnitudes.
//
// Both are non-parameterised, so they need no side information — the
// property the paper exploits when mixing them with parameterised Golomb
// codes inside one postings list.

#ifndef CAFE_CODING_ELIAS_H_
#define CAFE_CODING_ELIAS_H_

#include <cstdint>

#include "util/bitio.h"

namespace cafe::coding {

/// Encodes v >= 1 with the Elias gamma code.
void EncodeGamma(BitWriter* w, uint64_t v);

/// Decodes one gamma-coded value.
uint64_t DecodeGamma(BitReader* r);

/// Bits EncodeGamma emits for v.
uint64_t GammaBits(uint64_t v);

/// Encodes v >= 1 with the Elias delta code.
void EncodeDelta(BitWriter* w, uint64_t v);

/// Decodes one delta-coded value.
uint64_t DecodeDelta(BitReader* r);

/// Bits EncodeDelta emits for v.
uint64_t DeltaBits(uint64_t v);

}  // namespace cafe::coding

#endif  // CAFE_CODING_ELIAS_H_
