// Fixed-width binary codes: the uncompressed control in the compression
// experiments, plus minimal binary (log-ceiling width) used by the
// truncated codes and the index dictionary.

#ifndef CAFE_CODING_BINARY_H_
#define CAFE_CODING_BINARY_H_

#include <cstdint>

#include "util/bitio.h"

namespace cafe::coding {

/// Encodes v >= 1 in `width` bits (v-1 is stored). v-1 must fit.
void EncodeFixed(BitWriter* w, uint64_t v, int width);

/// Decodes one fixed-width value.
uint64_t DecodeFixed(BitReader* r, int width);

/// Smallest width that can hold any value in [1, max_value].
int FixedWidthFor(uint64_t max_value);

}  // namespace cafe::coding

#endif  // CAFE_CODING_BINARY_H_
