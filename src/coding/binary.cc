#include "coding/binary.h"

#include "util/check.h"

namespace cafe::coding {

void EncodeFixed(BitWriter* w, uint64_t v, int width) {
  CAFE_DCHECK(v >= 1);
  CAFE_DCHECK(width == 64 || (v - 1) < (uint64_t{1} << width));
  w->WriteBits(v - 1, width);
}

uint64_t DecodeFixed(BitReader* r, int width) {
  return r->ReadBits(width) + 1;
}

int FixedWidthFor(uint64_t max_value) {
  CAFE_DCHECK(max_value >= 1);
  uint64_t span = max_value - 1;
  int width = 1;
  while (width < 64 && (span >> width) != 0) ++width;
  return width;
}

}  // namespace cafe::coding
