#include "coding/vbyte.h"

#include "util/check.h"

namespace cafe::coding {

void EncodeVByte(BitWriter* w, uint64_t v) {
  CAFE_DCHECK(v >= 1);
  uint64_t x = v - 1;
  while (x >= 128) {
    w->WriteBits(x & 0x7F, 8);  // continuation: high bit clear
    x >>= 7;
  }
  w->WriteBits(x | 0x80, 8);  // terminator: high bit set
}

uint64_t DecodeVByte(BitReader* r) {
  uint64_t x = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    uint64_t byte = r->ReadBits(8);
    x |= (byte & 0x7F) << shift;
    if (byte & 0x80) break;
    shift += 7;
  }
  return x + 1;
}

uint64_t VByteBits(uint64_t v) {
  CAFE_DCHECK(v >= 1);
  uint64_t x = v - 1;
  uint64_t bytes = 1;
  while (x >= 128) {
    x >>= 7;
    ++bytes;
  }
  return bytes * 8;
}

void AppendVByte(std::vector<uint8_t>* out, uint64_t v) {
  CAFE_DCHECK(v >= 1);
  uint64_t x = v - 1;
  while (x >= 128) {
    out->push_back(static_cast<uint8_t>(x & 0x7F));
    x >>= 7;
  }
  out->push_back(static_cast<uint8_t>(x | 0x80));
}

uint64_t ReadVByte(const uint8_t* data, size_t size, size_t* pos) {
  uint64_t x = 0;
  int shift = 0;
  while (*pos < size) {
    uint8_t byte = data[(*pos)++];
    x |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if (byte & 0x80) return x + 1;
    shift += 7;
  }
  return x + 1;  // truncated input; caller validates sizes upstream
}

}  // namespace cafe::coding
