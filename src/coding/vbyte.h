// Variable-byte code: seven payload bits per byte, high bit set on the
// terminating byte. Byte-aligned, so decode is branch-cheap; compression is
// coarser than the bit-aligned codes. Included as the "engineering
// baseline" the compressed-integer literature compares against.

#ifndef CAFE_CODING_VBYTE_H_
#define CAFE_CODING_VBYTE_H_

#include <cstdint>
#include <vector>

#include "util/bitio.h"

namespace cafe::coding {

/// Encodes v >= 1 (7 bits per emitted byte). Works at any bit offset since
/// it writes whole 8-bit groups through the bit stream.
void EncodeVByte(BitWriter* w, uint64_t v);

/// Decodes one vbyte value.
uint64_t DecodeVByte(BitReader* r);

/// Bits EncodeVByte emits for v (always a multiple of 8).
uint64_t VByteBits(uint64_t v);

/// Convenience byte-vector forms used where a bit stream is not in play.
void AppendVByte(std::vector<uint8_t>* out, uint64_t v);
uint64_t ReadVByte(const uint8_t* data, size_t size, size_t* pos);

}  // namespace cafe::coding

#endif  // CAFE_CODING_VBYTE_H_
