// A uniform interface over the integer codes, for the compression
// comparison experiment (E2) and the parameterised round-trip tests.
//
// Parameterised codecs (Golomb, Rice) derive their parameter from the
// sequence statistics at encode time and store it in a small header, the
// way the index stores a per-list parameter.

#ifndef CAFE_CODING_CODEC_H_
#define CAFE_CODING_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/bitio.h"
#include "util/status.h"

namespace cafe::coding {

enum class CodecId {
  kUnary,
  kGamma,
  kDelta,
  kGolomb,
  kRice,
  kVByte,
  kFixed32,
  kInterpolative,
};

/// Encodes/decodes arrays of positive integers.
class IntegerCodec {
 public:
  virtual ~IntegerCodec() = default;

  virtual std::string name() const = 0;
  virtual CodecId id() const = 0;

  /// Appends an encoding of `values` (all >= 1). May write a parameter
  /// header. The block is self-delimiting given the count.
  virtual void Encode(const std::vector<uint64_t>& values,
                      BitWriter* w) const = 0;

  /// Decodes `count` values previously written by Encode.
  virtual void Decode(BitReader* r, size_t count,
                      std::vector<uint64_t>* out) const = 0;
};

/// Factory. All codecs are stateless and cheap to construct.
std::unique_ptr<IntegerCodec> CreateCodec(CodecId id);

/// Every codec id, for parameterised sweeps.
std::vector<CodecId> AllCodecIds();

const char* CodecIdName(CodecId id);

}  // namespace cafe::coding

#endif  // CAFE_CODING_CODEC_H_
