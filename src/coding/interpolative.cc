#include "coding/interpolative.h"

#include "util/check.h"

namespace cafe::coding {
namespace {

// Minimal binary ("truncated binary") code for v in [0, n): values below
// the cut take floor(log2 n) bits, the rest take ceil(log2 n).
void WriteMinimalBinary(BitWriter* w, uint64_t v, uint64_t n) {
  CAFE_DCHECK(n >= 1 && v < n);
  if (n == 1) return;  // zero bits: the value is forced
  int bits = 64 - __builtin_clzll(n - 1);  // ceil(log2 n)
  uint64_t cut = (uint64_t{1} << bits) - n;
  if (v < cut) {
    w->WriteBits(v, bits - 1);
  } else {
    w->WriteBits(v + cut, bits);
  }
}

uint64_t ReadMinimalBinary(BitReader* r, uint64_t n) {
  CAFE_DCHECK(n >= 1);
  if (n == 1) return 0;
  int bits = 64 - __builtin_clzll(n - 1);
  uint64_t cut = (uint64_t{1} << bits) - n;
  uint64_t v = r->ReadBits(bits - 1);
  if (v >= cut) {
    v = (v << 1) | r->ReadBits(1);
    v -= cut;
  }
  return v;
}

void EncodeRange(const uint64_t* s, int64_t l, int64_t r, uint64_t lo,
                 uint64_t hi, BitWriter* w) {
  if (l > r) return;
  int64_t mid = l + (r - l) / 2;
  // With (mid - l) predecessors and (r - mid) successors inside
  // [lo, hi], s[mid] is confined to [lo + (mid-l), hi - (r-mid)].
  uint64_t vlo = lo + static_cast<uint64_t>(mid - l);
  uint64_t vhi = hi - static_cast<uint64_t>(r - mid);
  CAFE_DCHECK(s[mid] >= vlo && s[mid] <= vhi);
  WriteMinimalBinary(w, s[mid] - vlo, vhi - vlo + 1);
  EncodeRange(s, l, mid - 1, lo, s[mid] - 1, w);
  EncodeRange(s, mid + 1, r, s[mid] + 1, hi, w);
}

void DecodeRange(uint64_t* s, int64_t l, int64_t r, uint64_t lo,
                 uint64_t hi, BitReader* reader) {
  if (l > r) return;
  int64_t mid = l + (r - l) / 2;
  uint64_t vlo = lo + static_cast<uint64_t>(mid - l);
  uint64_t vhi = hi - static_cast<uint64_t>(r - mid);
  s[mid] = vlo + ReadMinimalBinary(reader, vhi - vlo + 1);
  DecodeRange(s, l, mid - 1, lo, s[mid] - 1, reader);
  DecodeRange(s, mid + 1, r, s[mid] + 1, hi, reader);
}

}  // namespace

void EncodeInterpolative(const std::vector<uint64_t>& values,
                         uint64_t universe, BitWriter* w) {
  if (values.empty()) return;
  CAFE_DCHECK(values.front() >= 1 && values.back() <= universe);
  EncodeRange(values.data(), 0, static_cast<int64_t>(values.size()) - 1, 1,
              universe, w);
}

void DecodeInterpolative(BitReader* r, size_t count, uint64_t universe,
                         std::vector<uint64_t>* out) {
  out->resize(count);
  if (count == 0) return;
  DecodeRange(out->data(), 0, static_cast<int64_t>(count) - 1, 1, universe,
              r);
}

int MinimalBinaryBits(uint64_t range_size) {
  if (range_size <= 1) return 0;
  return 64 - __builtin_clzll(range_size - 1);
}

}  // namespace cafe::coding
