// Unary code for positive integers: v-1 zero bits then a one bit.
// The degenerate baseline of the code family; useful for tiny values and
// as the prefix part of the Elias and Golomb codes.

#ifndef CAFE_CODING_UNARY_H_
#define CAFE_CODING_UNARY_H_

#include <cstdint>

#include "util/bitio.h"

namespace cafe::coding {

/// Encodes v >= 1.
void EncodeUnary(BitWriter* w, uint64_t v);

/// Decodes one unary-coded value (>= 1).
uint64_t DecodeUnary(BitReader* r);

/// Number of bits EncodeUnary will emit for v.
uint64_t UnaryBits(uint64_t v);

}  // namespace cafe::coding

#endif  // CAFE_CODING_UNARY_H_
