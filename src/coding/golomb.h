// Golomb codes (Golomb, 1966) for positive integers, with the Rice
// power-of-two special case.
//
// Golomb coding with parameter b splits v-1 into quotient q = (v-1)/b
// (unary) and remainder r = (v-1) mod b (truncated binary). For postings
// d-gaps drawn from a geometric distribution — which is what uniform term
// occurrences over a collection produce — the choice
//     b ≈ 0.69 * (universe / occurrences)
// is within a fraction of a bit of the entropy (Gallager & Van Voorhis).
// This is the workhorse code for the paper's compressed inverted index.

#ifndef CAFE_CODING_GOLOMB_H_
#define CAFE_CODING_GOLOMB_H_

#include <cstdint>

#include "util/bitio.h"

namespace cafe::coding {

/// Encodes v >= 1 with Golomb parameter b >= 1.
void EncodeGolomb(BitWriter* w, uint64_t v, uint64_t b);

/// Decodes one Golomb-coded value with parameter b.
uint64_t DecodeGolomb(BitReader* r, uint64_t b);

/// Bits EncodeGolomb emits for v with parameter b.
uint64_t GolombBits(uint64_t v, uint64_t b);

/// The near-optimal parameter for n occurrences spread over a universe of
/// size `universe` (mean gap universe/n): b = max(1, round(ln2 * mean)).
uint64_t OptimalGolombParameter(uint64_t occurrences, uint64_t universe);

/// Rice code: Golomb restricted to b = 2^k; cheaper decode (no truncated
/// binary branch).
void EncodeRice(BitWriter* w, uint64_t v, int k);
uint64_t DecodeRice(BitReader* r, int k);
uint64_t RiceBits(uint64_t v, int k);

/// Rice parameter k approximating the optimal Golomb parameter.
int OptimalRiceParameter(uint64_t occurrences, uint64_t universe);

}  // namespace cafe::coding

#endif  // CAFE_CODING_GOLOMB_H_
