#include "coding/unary.h"

#include "util/check.h"

namespace cafe::coding {

void EncodeUnary(BitWriter* w, uint64_t v) {
  CAFE_DCHECK(v >= 1);
  w->WriteUnary(v - 1);
}

uint64_t DecodeUnary(BitReader* r) { return r->ReadUnary() + 1; }

uint64_t UnaryBits(uint64_t v) { return v; }

}  // namespace cafe::coding
