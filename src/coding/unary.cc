#include "coding/unary.h"

#include <cassert>

namespace cafe::coding {

void EncodeUnary(BitWriter* w, uint64_t v) {
  assert(v >= 1);
  w->WriteUnary(v - 1);
}

uint64_t DecodeUnary(BitReader* r) { return r->ReadUnary() + 1; }

uint64_t UnaryBits(uint64_t v) { return v; }

}  // namespace cafe::coding
