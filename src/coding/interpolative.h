// Binary interpolative coding (Moffat & Stuiver) for sorted postings.
//
// Instead of coding gaps independently, the cumulative positions are
// coded recursively: the middle element is written in minimal binary
// within the range its neighbours permit, then each half is coded within
// the narrowed range. Clustered lists — exactly what interval postings
// look like when a homologous region concentrates occurrences — compress
// below the gap-entropy bound that gap codes are limited by.

#ifndef CAFE_CODING_INTERPOLATIVE_H_
#define CAFE_CODING_INTERPOLATIVE_H_

#include <cstdint>
#include <vector>

#include "util/bitio.h"

namespace cafe::coding {

/// Encodes strictly increasing `values` each in [1, universe]; `universe`
/// must be >= values.back(). Not self-delimiting: the decoder needs
/// (count, universe).
void EncodeInterpolative(const std::vector<uint64_t>& values,
                         uint64_t universe, BitWriter* w);

/// Decodes `count` strictly increasing values in [1, universe].
void DecodeInterpolative(BitReader* r, size_t count, uint64_t universe,
                         std::vector<uint64_t>* out);

/// Bits used for a single minimal-binary value in a range of size
/// `range_size` (diagnostic helper).
int MinimalBinaryBits(uint64_t range_size);

}  // namespace cafe::coding

#endif  // CAFE_CODING_INTERPOLATIVE_H_
