#include "coding/elias.h"

#include "util/check.h"

namespace cafe::coding {
namespace {

inline int FloorLog2(uint64_t v) {
  return 63 - __builtin_clzll(v);
}

}  // namespace

void EncodeGamma(BitWriter* w, uint64_t v) {
  CAFE_DCHECK(v >= 1);
  int k = FloorLog2(v);
  w->WriteUnary(static_cast<uint64_t>(k));  // k zeros then a 1
  if (k > 0) w->WriteBits(v, k);            // low k bits (drop the leading 1)
}

uint64_t DecodeGamma(BitReader* r) {
  uint64_t k = r->ReadUnary();
  if (k >= 64) return 1;  // overflowed / corrupt; caller checks r->overflowed()
  uint64_t low = k > 0 ? r->ReadBits(static_cast<int>(k)) : 0;
  return (uint64_t{1} << k) | low;
}

uint64_t GammaBits(uint64_t v) {
  CAFE_DCHECK(v >= 1);
  return 2 * static_cast<uint64_t>(FloorLog2(v)) + 1;
}

void EncodeDelta(BitWriter* w, uint64_t v) {
  CAFE_DCHECK(v >= 1);
  int k = FloorLog2(v);
  EncodeGamma(w, static_cast<uint64_t>(k) + 1);
  if (k > 0) w->WriteBits(v, k);
}

uint64_t DecodeDelta(BitReader* r) {
  uint64_t k = DecodeGamma(r) - 1;
  if (k >= 64) return 1;
  uint64_t low = k > 0 ? r->ReadBits(static_cast<int>(k)) : 0;
  return (uint64_t{1} << k) | low;
}

uint64_t DeltaBits(uint64_t v) {
  CAFE_DCHECK(v >= 1);
  uint64_t k = static_cast<uint64_t>(FloorLog2(v));
  return GammaBits(k + 1) + k;
}

}  // namespace cafe::coding
