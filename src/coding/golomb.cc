#include "coding/golomb.h"

#include "util/check.h"
#include <cmath>

namespace cafe::coding {
namespace {

inline int CeilLog2(uint64_t v) {
  if (v <= 1) return 0;
  return 64 - __builtin_clzll(v - 1);
}

}  // namespace

void EncodeGolomb(BitWriter* w, uint64_t v, uint64_t b) {
  CAFE_DCHECK(v >= 1 && b >= 1);
  uint64_t x = v - 1;
  uint64_t q = x / b;
  uint64_t rem = x % b;
  w->WriteUnary(q);
  if (b == 1) return;
  // Truncated binary for rem in [0, b): values below `cut` take
  // `bits-1` bits, the rest take `bits` bits with an offset.
  int bits = CeilLog2(b);
  uint64_t cut = (uint64_t{1} << bits) - b;
  if (rem < cut) {
    w->WriteBits(rem, bits - 1);
  } else {
    w->WriteBits(rem + cut, bits);
  }
}

uint64_t DecodeGolomb(BitReader* r, uint64_t b) {
  CAFE_DCHECK(b >= 1);
  uint64_t q = r->ReadUnary();
  if (b == 1) return q + 1;
  int bits = CeilLog2(b);
  uint64_t cut = (uint64_t{1} << bits) - b;
  uint64_t rem = r->ReadBits(bits - 1);
  if (rem >= cut) {
    rem = (rem << 1) | r->ReadBits(1);
    rem -= cut;
  }
  return q * b + rem + 1;
}

uint64_t GolombBits(uint64_t v, uint64_t b) {
  CAFE_DCHECK(v >= 1 && b >= 1);
  uint64_t x = v - 1;
  uint64_t q = x / b;
  if (b == 1) return q + 1;
  uint64_t rem = x % b;
  int bits = CeilLog2(b);
  uint64_t cut = (uint64_t{1} << bits) - b;
  return q + 1 + static_cast<uint64_t>(rem < cut ? bits - 1 : bits);
}

uint64_t OptimalGolombParameter(uint64_t occurrences, uint64_t universe) {
  if (occurrences == 0 || universe == 0) return 1;
  double mean = static_cast<double>(universe) /
                static_cast<double>(occurrences);
  uint64_t b = static_cast<uint64_t>(std::llround(0.69314718055994531 * mean));
  return b < 1 ? 1 : b;
}

void EncodeRice(BitWriter* w, uint64_t v, int k) {
  CAFE_DCHECK(v >= 1 && k >= 0 && k < 63);
  uint64_t x = v - 1;
  w->WriteUnary(x >> k);
  if (k > 0) w->WriteBits(x, k);
}

uint64_t DecodeRice(BitReader* r, int k) {
  uint64_t q = r->ReadUnary();
  uint64_t low = k > 0 ? r->ReadBits(k) : 0;
  return (q << k) + low + 1;
}

uint64_t RiceBits(uint64_t v, int k) {
  CAFE_DCHECK(v >= 1);
  return ((v - 1) >> k) + 1 + static_cast<uint64_t>(k);
}

int OptimalRiceParameter(uint64_t occurrences, uint64_t universe) {
  uint64_t b = OptimalGolombParameter(occurrences, universe);
  int k = 0;
  while ((uint64_t{1} << (k + 1)) <= b) ++k;
  return k;
}

}  // namespace cafe::coding
