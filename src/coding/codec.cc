#include "coding/codec.h"

#include <algorithm>
#include <numeric>

#include "coding/binary.h"
#include "coding/elias.h"
#include "coding/golomb.h"
#include "coding/interpolative.h"
#include "coding/unary.h"
#include "coding/vbyte.h"

namespace cafe::coding {
namespace {

class UnaryCodec final : public IntegerCodec {
 public:
  std::string name() const override { return "unary"; }
  CodecId id() const override { return CodecId::kUnary; }
  void Encode(const std::vector<uint64_t>& values,
              BitWriter* w) const override {
    for (uint64_t v : values) EncodeUnary(w, v);
  }
  void Decode(BitReader* r, size_t count,
              std::vector<uint64_t>* out) const override {
    out->resize(count);
    for (size_t i = 0; i < count; ++i) (*out)[i] = DecodeUnary(r);
  }
};

class GammaCodec final : public IntegerCodec {
 public:
  std::string name() const override { return "gamma"; }
  CodecId id() const override { return CodecId::kGamma; }
  void Encode(const std::vector<uint64_t>& values,
              BitWriter* w) const override {
    for (uint64_t v : values) EncodeGamma(w, v);
  }
  void Decode(BitReader* r, size_t count,
              std::vector<uint64_t>* out) const override {
    out->resize(count);
    for (size_t i = 0; i < count; ++i) (*out)[i] = DecodeGamma(r);
  }
};

class DeltaCodec final : public IntegerCodec {
 public:
  std::string name() const override { return "delta"; }
  CodecId id() const override { return CodecId::kDelta; }
  void Encode(const std::vector<uint64_t>& values,
              BitWriter* w) const override {
    for (uint64_t v : values) EncodeDelta(w, v);
  }
  void Decode(BitReader* r, size_t count,
              std::vector<uint64_t>* out) const override {
    out->resize(count);
    for (size_t i = 0; i < count; ++i) (*out)[i] = DecodeDelta(r);
  }
};

// Parameterised codecs store the parameter in a gamma-coded header so the
// decoder is self-contained, mirroring how the index stores per-list
// Golomb parameters.
class GolombCodec final : public IntegerCodec {
 public:
  std::string name() const override { return "golomb"; }
  CodecId id() const override { return CodecId::kGolomb; }
  void Encode(const std::vector<uint64_t>& values,
              BitWriter* w) const override {
    uint64_t sum = std::accumulate(values.begin(), values.end(), uint64_t{0});
    uint64_t b = OptimalGolombParameter(values.size(), sum);
    EncodeGamma(w, b);
    for (uint64_t v : values) EncodeGolomb(w, v, b);
  }
  void Decode(BitReader* r, size_t count,
              std::vector<uint64_t>* out) const override {
    uint64_t b = DecodeGamma(r);
    out->resize(count);
    for (size_t i = 0; i < count; ++i) (*out)[i] = DecodeGolomb(r, b);
  }
};

class RiceCodec final : public IntegerCodec {
 public:
  std::string name() const override { return "rice"; }
  CodecId id() const override { return CodecId::kRice; }
  void Encode(const std::vector<uint64_t>& values,
              BitWriter* w) const override {
    uint64_t sum = std::accumulate(values.begin(), values.end(), uint64_t{0});
    int k = OptimalRiceParameter(values.size(), sum);
    EncodeGamma(w, static_cast<uint64_t>(k) + 1);
    for (uint64_t v : values) EncodeRice(w, v, k);
  }
  void Decode(BitReader* r, size_t count,
              std::vector<uint64_t>* out) const override {
    int k = static_cast<int>(DecodeGamma(r) - 1);
    out->resize(count);
    for (size_t i = 0; i < count; ++i) (*out)[i] = DecodeRice(r, k);
  }
};

class VByteCodec final : public IntegerCodec {
 public:
  std::string name() const override { return "vbyte"; }
  CodecId id() const override { return CodecId::kVByte; }
  void Encode(const std::vector<uint64_t>& values,
              BitWriter* w) const override {
    for (uint64_t v : values) EncodeVByte(w, v);
  }
  void Decode(BitReader* r, size_t count,
              std::vector<uint64_t>* out) const override {
    out->resize(count);
    for (size_t i = 0; i < count; ++i) (*out)[i] = DecodeVByte(r);
  }
};

class Fixed32Codec final : public IntegerCodec {
 public:
  std::string name() const override { return "fixed32"; }
  CodecId id() const override { return CodecId::kFixed32; }
  void Encode(const std::vector<uint64_t>& values,
              BitWriter* w) const override {
    for (uint64_t v : values) EncodeFixed(w, v, 32);
  }
  void Decode(BitReader* r, size_t count,
              std::vector<uint64_t>* out) const override {
    out->resize(count);
    for (size_t i = 0; i < count; ++i) (*out)[i] = DecodeFixed(r, 32);
  }
};

// Gap codec over interpolative coding: gaps are prefix-summed into a
// strictly increasing sequence, the universe (= total) is stored in a
// gamma header, and the cumulative values are interpolatively coded.
class InterpolativeCodec final : public IntegerCodec {
 public:
  std::string name() const override { return "interp"; }
  CodecId id() const override { return CodecId::kInterpolative; }
  void Encode(const std::vector<uint64_t>& values,
              BitWriter* w) const override {
    std::vector<uint64_t> sums(values.size());
    uint64_t run = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      run += values[i];
      sums[i] = run;
    }
    EncodeGamma(w, run + 1);
    EncodeInterpolative(sums, run, w);
  }
  void Decode(BitReader* r, size_t count,
              std::vector<uint64_t>* out) const override {
    uint64_t universe = DecodeGamma(r) - 1;
    std::vector<uint64_t> sums;
    DecodeInterpolative(r, count, universe, &sums);
    out->resize(count);
    uint64_t prev = 0;
    for (size_t i = 0; i < count; ++i) {
      (*out)[i] = sums[i] - prev;
      prev = sums[i];
    }
  }
};

}  // namespace

std::unique_ptr<IntegerCodec> CreateCodec(CodecId id) {
  switch (id) {
    case CodecId::kUnary:
      return std::make_unique<UnaryCodec>();
    case CodecId::kGamma:
      return std::make_unique<GammaCodec>();
    case CodecId::kDelta:
      return std::make_unique<DeltaCodec>();
    case CodecId::kGolomb:
      return std::make_unique<GolombCodec>();
    case CodecId::kRice:
      return std::make_unique<RiceCodec>();
    case CodecId::kVByte:
      return std::make_unique<VByteCodec>();
    case CodecId::kFixed32:
      return std::make_unique<Fixed32Codec>();
    case CodecId::kInterpolative:
      return std::make_unique<InterpolativeCodec>();
  }
  return nullptr;
}

std::vector<CodecId> AllCodecIds() {
  return {CodecId::kUnary,   CodecId::kGamma, CodecId::kDelta,
          CodecId::kGolomb,  CodecId::kRice,  CodecId::kVByte,
          CodecId::kFixed32, CodecId::kInterpolative};
}

const char* CodecIdName(CodecId id) {
  switch (id) {
    case CodecId::kUnary:
      return "unary";
    case CodecId::kGamma:
      return "gamma";
    case CodecId::kDelta:
      return "delta";
    case CodecId::kGolomb:
      return "golomb";
    case CodecId::kRice:
      return "rice";
    case CodecId::kVByte:
      return "vbyte";
    case CodecId::kFixed32:
      return "fixed32";
    case CodecId::kInterpolative:
      return "interp";
  }
  return "?";
}

}  // namespace cafe::coding
