// SequenceCollection: the nucleotide database. Pairs the direct-coded
// sequence store with record identifiers/descriptions and an on-disk
// format. This is the object the index is built over and that both search
// phases read from.

#ifndef CAFE_COLLECTION_COLLECTION_H_
#define CAFE_COLLECTION_COLLECTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "collection/fasta.h"
#include "seqstore/sequence_store.h"

namespace cafe {

class SequenceCollection {
 public:
  /// Adds one sequence (normalized IUPAC); returns its dense id.
  [[nodiscard]] Result<uint32_t> Add(std::string_view id, std::string_view description,
                       std::string_view sequence);

  /// Builds a collection from parsed FASTA records.
  [[nodiscard]] static Result<SequenceCollection> FromFasta(
      const std::vector<FastaRecord>& records);

  /// Materializes sequence `id`.
  [[nodiscard]] Status GetSequence(uint32_t id, std::string* out) const;

  /// Record identifier (FASTA id) of sequence `id`; empty if out of range.
  const std::string& Name(uint32_t id) const;
  const std::string& Description(uint32_t id) const;

  /// Length in bases of sequence `id` without decoding it.
  [[nodiscard]] Result<size_t> SequenceLength(uint32_t id) const;

  uint32_t NumSequences() const { return store_.NumSequences(); }
  uint64_t TotalBases() const { return store_.TotalBases(); }

  /// Bytes of the in-memory representation (compressed blob + names).
  uint64_t StorageBytes() const;

  const SequenceStore& store() const { return store_; }

  void Serialize(std::string* out) const;
  [[nodiscard]] static Result<SequenceCollection> Deserialize(std::string_view data);
  [[nodiscard]] Status Save(const std::string& path) const;
  [[nodiscard]] static Result<SequenceCollection> Load(const std::string& path);

 private:
  SequenceStore store_;
  std::vector<std::string> names_;
  std::vector<std::string> descriptions_;
};

}  // namespace cafe

#endif  // CAFE_COLLECTION_COLLECTION_H_
