#include "collection/collection.h"

#include <cstring>

#include "coding/vbyte.h"
#include "util/crc32.h"
#include "util/env.h"

namespace cafe {
namespace {

constexpr char kMagic[8] = {'C', 'A', 'F', 'C', 'O', 'L', '1', '\0'};

void AppendString(std::string* out, const std::string& s) {
  std::vector<uint8_t> len;
  coding::AppendVByte(&len, s.size() + 1);
  out->append(reinterpret_cast<const char*>(len.data()), len.size());
  out->append(s);
}

Status ReadString(std::string_view data, size_t* pos, std::string* out) {
  uint64_t len = coding::ReadVByte(
      reinterpret_cast<const uint8_t*>(data.data()), data.size(), pos);
  if (len == 0) return Status::Corruption("collection: bad string length");
  len -= 1;
  if (*pos + len > data.size()) {
    return Status::Corruption("collection: truncated string");
  }
  out->assign(data.data() + *pos, len);
  *pos += len;
  return Status::OK();
}

}  // namespace

Result<uint32_t> SequenceCollection::Add(std::string_view id,
                                         std::string_view description,
                                         std::string_view sequence) {
  if (id.empty()) {
    return Status::InvalidArgument("empty sequence identifier");
  }
  Result<uint32_t> seq_id = store_.Append(sequence);
  if (!seq_id.ok()) return seq_id.status();
  names_.emplace_back(id);
  descriptions_.emplace_back(description);
  return *seq_id;
}

Result<SequenceCollection> SequenceCollection::FromFasta(
    const std::vector<FastaRecord>& records) {
  SequenceCollection col;
  for (const FastaRecord& rec : records) {
    Result<uint32_t> r = col.Add(rec.id, rec.description, rec.sequence);
    if (!r.ok()) return r.status();
  }
  return col;
}

Status SequenceCollection::GetSequence(uint32_t id, std::string* out) const {
  return store_.Get(id, out);
}

const std::string& SequenceCollection::Name(uint32_t id) const {
  static const std::string kEmpty;
  return id < names_.size() ? names_[id] : kEmpty;
}

const std::string& SequenceCollection::Description(uint32_t id) const {
  static const std::string kEmpty;
  return id < descriptions_.size() ? descriptions_[id] : kEmpty;
}

Result<size_t> SequenceCollection::SequenceLength(uint32_t id) const {
  return store_.Length(id);
}

uint64_t SequenceCollection::StorageBytes() const {
  uint64_t names = 0;
  for (const auto& n : names_) names += n.size();
  for (const auto& d : descriptions_) names += d.size();
  return store_.StorageBytes() + names;
}

void SequenceCollection::Serialize(std::string* out) const {
  out->clear();
  out->append(kMagic, 8);
  std::vector<uint8_t> count;
  coding::AppendVByte(&count, names_.size() + 1);
  out->append(reinterpret_cast<const char*>(count.data()), count.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    AppendString(out, names_[i]);
    AppendString(out, descriptions_[i]);
  }
  std::string store_data;
  store_.Serialize(&store_data);
  out->append(store_data);
  uint32_t crc = Crc32(out->data(), out->size());
  char buf[4];
  std::memcpy(buf, &crc, 4);
  out->append(buf, 4);
}

Result<SequenceCollection> SequenceCollection::Deserialize(
    std::string_view data) {
  if (data.size() < 8 + 1 + 4) {
    return Status::Corruption("collection: too short");
  }
  if (std::memcmp(data.data(), kMagic, 8) != 0) {
    return Status::Corruption("collection: bad magic");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, data.data() + data.size() - 4, 4);
  if (Crc32(data.data(), data.size() - 4) != stored_crc) {
    return Status::Corruption("collection: checksum mismatch");
  }
  data = data.substr(0, data.size() - 4);

  size_t pos = 8;
  uint64_t count = coding::ReadVByte(
      reinterpret_cast<const uint8_t*>(data.data()), data.size(), &pos);
  if (count == 0) return Status::Corruption("collection: bad count");
  count -= 1;
  if (count > data.size()) {
    return Status::Corruption("collection: record count too large");
  }

  SequenceCollection col;
  col.names_.reserve(count);
  col.descriptions_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string name, desc;
    CAFE_RETURN_IF_ERROR(ReadString(data, &pos, &name));
    CAFE_RETURN_IF_ERROR(ReadString(data, &pos, &desc));
    col.names_.push_back(std::move(name));
    col.descriptions_.push_back(std::move(desc));
  }

  Result<SequenceStore> store = SequenceStore::Deserialize(data.substr(pos));
  if (!store.ok()) return store.status();
  if (store->NumSequences() != count) {
    return Status::Corruption("collection: name/sequence count mismatch");
  }
  col.store_ = std::move(*store);
  return col;
}

Status SequenceCollection::Save(const std::string& path) const {
  std::string data;
  Serialize(&data);
  return WriteStringToFile(path, data);
}

Result<SequenceCollection> SequenceCollection::Load(const std::string& path) {
  std::string data;
  Status s = ReadFileToString(path, &data);
  if (!s.ok()) return s;
  return Deserialize(data);
}

}  // namespace cafe
