// GenBank flat-file parsing.
//
// The 1996 collections were distributed as GenBank flat files (LOCUS /
// DEFINITION / ORIGIN records), not FASTA. This parser handles the
// subset needed to load sequence data: LOCUS (accession), DEFINITION
// (description, possibly continued over lines), ORIGIN..// (sequence
// lines with base counters), and tolerates any other keyword lines.

#ifndef CAFE_COLLECTION_GENBANK_H_
#define CAFE_COLLECTION_GENBANK_H_

#include <string>
#include <string_view>
#include <vector>

#include "collection/fasta.h"
#include "util/status.h"

namespace cafe {

/// Parses GenBank flat-file text into the same record structure FASTA
/// uses (id = LOCUS name, description = DEFINITION). Fails with
/// InvalidArgument on structural errors (sequence data outside
/// ORIGIN..//, missing LOCUS, invalid bases), naming the offending line.
[[nodiscard]] Status ParseGenBank(std::string_view text, std::vector<FastaRecord>* out);

/// Reads and parses a GenBank flat file.
[[nodiscard]] Status ReadGenBankFile(const std::string& path,
                       std::vector<FastaRecord>* out);

/// Renders records as a minimal GenBank flat file (LOCUS, DEFINITION,
/// ORIGIN with 60 bases per line in the classic 6x10 layout, //).
std::string WriteGenBank(const std::vector<FastaRecord>& records);

}  // namespace cafe

#endif  // CAFE_COLLECTION_GENBANK_H_
