#include "collection/fasta.h"

#include "alphabet/nucleotide.h"
#include "util/env.h"
#include "util/stringutil.h"

namespace cafe {

Status ParseFasta(std::string_view text, std::vector<FastaRecord>* out) {
  out->clear();
  FastaRecord* current = nullptr;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    ++line_no;
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

    line = Trim(line);
    if (line.empty()) continue;

    if (line[0] == '>') {
      std::string_view header = Trim(line.substr(1));
      if (header.empty()) {
        return Status::InvalidArgument("empty FASTA header at line " +
                                       std::to_string(line_no));
      }
      FastaRecord rec;
      size_t space = header.find_first_of(" \t");
      if (space == std::string_view::npos) {
        rec.id = std::string(header);
      } else {
        rec.id = std::string(header.substr(0, space));
        rec.description = std::string(Trim(header.substr(space + 1)));
      }
      out->push_back(std::move(rec));
      current = &out->back();
      continue;
    }

    if (current == nullptr) {
      return Status::InvalidArgument(
          "sequence data before first FASTA header at line " +
          std::to_string(line_no));
    }
    std::string normalized = NormalizeSequence(line);
    if (!IsValidSequence(normalized)) {
      return Status::InvalidArgument("invalid character in record '" +
                                     current->id + "' at line " +
                                     std::to_string(line_no));
    }
    current->sequence.append(normalized);
  }
  return Status::OK();
}

Status ReadFastaFile(const std::string& path, std::vector<FastaRecord>* out) {
  std::string text;
  CAFE_RETURN_IF_ERROR(ReadFileToString(path, &text));
  return ParseFasta(text, out);
}

std::string WriteFasta(const std::vector<FastaRecord>& records,
                       size_t line_width) {
  if (line_width == 0) line_width = 70;
  std::string out;
  for (const FastaRecord& rec : records) {
    out.push_back('>');
    out.append(rec.id);
    if (!rec.description.empty()) {
      out.push_back(' ');
      out.append(rec.description);
    }
    out.push_back('\n');
    for (size_t i = 0; i < rec.sequence.size(); i += line_width) {
      out.append(rec.sequence, i,
                 std::min(line_width, rec.sequence.size() - i));
      out.push_back('\n');
    }
  }
  return out;
}

Status WriteFastaFile(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      size_t line_width) {
  return WriteStringToFile(path, WriteFasta(records, line_width));
}

}  // namespace cafe
