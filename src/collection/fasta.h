// FASTA parsing and writing. The database construction path of the system:
// GenBank-style flat files are distributed as FASTA, and the synthetic
// generator emits the same records, so everything enters the collection
// through this module.

#ifndef CAFE_COLLECTION_FASTA_H_
#define CAFE_COLLECTION_FASTA_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cafe {

/// One FASTA record. `id` is the first whitespace-delimited token of the
/// header; `description` is the remainder of the header line.
struct FastaRecord {
  std::string id;
  std::string description;
  std::string sequence;  // normalized (upper case, U->T)
};

/// Parses FASTA text. Sequence lines are concatenated, normalized and
/// validated against the IUPAC alphabet; blank lines are permitted.
/// Fails with InvalidArgument on malformed input (data before the first
/// header, empty header, invalid characters — the offending record is
/// named in the message).
[[nodiscard]] Status ParseFasta(std::string_view text, std::vector<FastaRecord>* out);

/// Reads and parses a FASTA file.
[[nodiscard]] Status ReadFastaFile(const std::string& path, std::vector<FastaRecord>* out);

/// Renders records as FASTA with `line_width` bases per sequence line.
std::string WriteFasta(const std::vector<FastaRecord>& records,
                       size_t line_width = 70);

/// Writes records to a file.
[[nodiscard]] Status WriteFastaFile(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      size_t line_width = 70);

}  // namespace cafe

#endif  // CAFE_COLLECTION_FASTA_H_
