#include "collection/genbank.h"

#include <cctype>

#include "alphabet/nucleotide.h"
#include "util/env.h"
#include "util/stringutil.h"

namespace cafe {
namespace {

// First whitespace-delimited token of a line body.
std::string_view FirstToken(std::string_view text) {
  size_t b = 0;
  while (b < text.size() &&
         std::isspace(static_cast<unsigned char>(text[b]))) {
    ++b;
  }
  size_t e = b;
  while (e < text.size() &&
         !std::isspace(static_cast<unsigned char>(text[e]))) {
    ++e;
  }
  return text.substr(b, e - b);
}

}  // namespace

Status ParseGenBank(std::string_view text, std::vector<FastaRecord>* out) {
  out->clear();
  FastaRecord* current = nullptr;
  bool in_origin = false;
  bool in_definition = false;
  size_t line_no = 0;
  size_t pos = 0;

  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    ++line_no;
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (Trim(line).empty()) continue;

    if (StartsWith(line, "LOCUS")) {
      std::string_view name = FirstToken(line.substr(5));
      if (name.empty()) {
        return Status::InvalidArgument("empty LOCUS name at line " +
                                       std::to_string(line_no));
      }
      out->push_back(FastaRecord{std::string(name), "", ""});
      current = &out->back();
      in_origin = false;
      in_definition = false;
      continue;
    }
    if (StartsWith(line, "//")) {
      in_origin = false;
      in_definition = false;
      current = nullptr;
      continue;
    }
    if (current == nullptr) {
      return Status::InvalidArgument("data before LOCUS at line " +
                                     std::to_string(line_no));
    }
    if (StartsWith(line, "DEFINITION")) {
      current->description = std::string(Trim(line.substr(10)));
      in_definition = true;
      in_origin = false;
      continue;
    }
    if (StartsWith(line, "ORIGIN")) {
      in_origin = true;
      in_definition = false;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(line[0]))) {
      // Any other keyword section (ACCESSION, FEATURES, ...): skip it and
      // end any continued DEFINITION.
      in_definition = false;
      in_origin = false;
      continue;
    }
    if (in_definition) {
      current->description += " ";
      current->description += std::string(Trim(line));
      continue;
    }
    if (in_origin) {
      // "        1 gatcctccat atacaacggt ..." — digits and spaces are
      // layout; letters are bases.
      for (char c : line) {
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            std::isspace(static_cast<unsigned char>(c))) {
          continue;
        }
        char u = static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
        if (u == 'U') u = 'T';
        if (!IsIupac(u)) {
          return Status::InvalidArgument(
              std::string("invalid base '") + c + "' in record '" +
              current->id + "' at line " + std::to_string(line_no));
        }
        current->sequence.push_back(u);
      }
      continue;
    }
    // Indented continuation of a section we do not track: ignore.
  }
  return Status::OK();
}

Status ReadGenBankFile(const std::string& path,
                       std::vector<FastaRecord>* out) {
  std::string text;
  CAFE_RETURN_IF_ERROR(ReadFileToString(path, &text));
  return ParseGenBank(text, out);
}

std::string WriteGenBank(const std::vector<FastaRecord>& records) {
  std::string out;
  for (const FastaRecord& rec : records) {
    out += "LOCUS       " + rec.id + " " +
           std::to_string(rec.sequence.size()) + " bp    DNA\n";
    if (!rec.description.empty()) {
      out += "DEFINITION  " + rec.description + "\n";
    }
    out += "ORIGIN\n";
    for (size_t i = 0; i < rec.sequence.size(); i += 60) {
      char counter[24];  // %9zu can widen to 20 digits for huge offsets
      std::snprintf(counter, sizeof(counter), "%9zu", i + 1);
      out += counter;
      for (size_t j = i; j < std::min(i + 60, rec.sequence.size());
           j += 10) {
        out.push_back(' ');
        size_t end = std::min(j + 10, rec.sequence.size());
        for (size_t k = j; k < end; ++k) {
          out.push_back(static_cast<char>(
              std::tolower(static_cast<unsigned char>(rec.sequence[k]))));
        }
      }
      out.push_back('\n');
    }
    out += "//\n";
  }
  return out;
}

}  // namespace cafe
