// MmapIndex: a zero-copy, lock-free disk-resident posting source.
//
// DiskIndex (the cached reference path) funnels every postings fetch
// through a mutexed LRU block cache: one lock acquisition, one heap
// allocation and one read() copy per cache miss, and a warmup period
// before the cache earns its keep. MmapIndex removes all three. The
// index file is mapped read-only once at Open; the directory is parsed
// out of the mapping, the file's CRC is verified with one sequential
// sweep (which doubles as the page first-touch pass), and from then on
// ScanPostings decodes each term's list *directly from the mapped
// bytes* — no copy, no lock, no warmup, no per-query allocation. The
// kernel page cache is the only cache: shared across processes, sized
// by available memory, and evicted under pressure, so indexes larger
// than RAM serve correctly with the kernel paging postings in on
// demand (the mapping is advised MADV_RANDOM after the sweep so point
// lookups do not drag readahead behind them).
//
// Reentrancy contract: the object is immutable after Open and the
// mapped bytes are read-only, so ScanPostings and every other const
// query method are safe for unlimited concurrent callers with no
// synchronization whatsoever — the property DiskIndex's mutex only
// approximates. AttachMetrics is the one mutating call; make it before
// serving traffic.
//
// Failure model: Open returns Status for every malformed input
// (missing file, truncation, bit-rot caught by the CRC) — never a
// CHECK. After a successful Open the file must not shrink on disk;
// like every mmap consumer, a concurrent truncation turns page loads
// into SIGBUS. Replace-by-rename (the only update pattern the repo
// uses) is safe: the mapping pins the old inode.

#ifndef CAFE_INDEX_MMAP_INDEX_H_
#define CAFE_INDEX_MMAP_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/inverted_index.h"
#include "index/posting_source.h"
#include "obs/metrics.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace cafe {

class MmapIndex final : public PostingSource {
 public:
  /// Maps an index file produced by InvertedIndex::Save, verifies its
  /// CRC with one sequential sweep of the mapping, and parses the
  /// directory. Steady-state heap holds only the directory — postings
  /// stay in the mapping.
  [[nodiscard]] static Result<std::unique_ptr<MmapIndex>> Open(
      const std::string& path);

  const IndexOptions& options() const override { return options_; }
  uint32_t num_docs() const override {
    return static_cast<uint32_t>(doc_lengths_.size());
  }
  const TermEntry* FindTerm(uint32_t term) const override {
    return directory_.Find(term);
  }
  void ScanPostings(uint32_t term,
                    const PostingCallback& fn) const override;

  const std::vector<uint32_t>& doc_lengths() const { return doc_lengths_; }
  const IndexStats& stats() const { return stats_; }

  /// Mirrors read-path activity into `registry` under the
  /// `mmap_index.*` names (docs/OBSERVABILITY.md). On first attach the
  /// open-time facts are recorded too: one `mmap_index.maps`,
  /// `mmap_index.bytes_mapped`, and the CRC-sweep duration into
  /// `mmap_index.first_touch_micros` (every page of the file is
  /// faulted in by that sweep, so its duration is the page-fault cost
  /// proxy). The registry must outlive this index; pass nullptr to
  /// detach. Not thread-safe against in-flight queries — attach before
  /// serving. Detached (the default), the hot path pays one null check.
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// Heap-resident bytes: directory plus (once metrics have been
  /// attached) the per-term length table. The mapping itself is file-
  /// backed page cache, not heap, and is deliberately excluded — it is
  /// reclaimable at any time and shared with other readers of the file.
  uint64_t MemoryBytes() const;

  /// Size of the underlying mapping in bytes (the whole index file).
  uint64_t MappedBytes() const { return file_.size(); }

 private:
  MmapIndex() : directory_(4) {}

  /// Compressed bit length of `entry`'s list (metrics bookkeeping).
  uint64_t ListBits(uint32_t term, const TermEntry& entry) const;

  IndexOptions options_;
  std::vector<uint32_t> doc_lengths_;
  TermDirectory directory_;
  IndexStats stats_;

  MmapFile file_;
  const uint8_t* blob_ = nullptr;  // into file_'s mapping
  uint64_t blob_bytes_ = 0;
  uint64_t first_touch_micros_ = 0;  // duration of the open-time sweep

  // Per-term compressed list length in bits, derived from consecutive
  // directory offsets. Built on first AttachMetrics — bytes-decoded
  // accounting is the only consumer, so a detached index never pays
  // the heap for it.
  std::unordered_map<uint32_t, uint64_t> bit_lengths_;

  // Registry mirror (see AttachMetrics). Written only by AttachMetrics;
  // read with a null check on the hot path.
  obs::Counter* metric_lists_ = nullptr;
  obs::Counter* metric_bytes_decoded_ = nullptr;
  bool open_facts_recorded_ = false;
};

}  // namespace cafe

#endif  // CAFE_INDEX_MMAP_INDEX_H_
