#include "index/vocabulary.h"

#include <algorithm>

#include "index/interval.h"

namespace cafe {

TermDirectory::TermDirectory(int interval_length)
    : interval_length_(interval_length),
      dense_(interval_length <= kDenseLimit) {
  if (dense_) {
    dense_entries_.resize(VocabularyUniverse(interval_length));
  }
}

const TermEntry* TermDirectory::Find(uint32_t term) const {
  if (dense_) {
    if (term >= dense_entries_.size()) return nullptr;
    const TermEntry& e = dense_entries_[term];
    return e.posting_count > 0 ? &e : nullptr;
  }
  auto it = sparse_entries_.find(term);
  return it == sparse_entries_.end() ? nullptr : &it->second;
}

TermEntry* TermDirectory::FindOrCreate(uint32_t term) {
  if (dense_) {
    TermEntry& e = dense_entries_[term];
    if (e.posting_count == 0) ++num_terms_;
    return &e;
  }
  auto [it, inserted] = sparse_entries_.try_emplace(term);
  if (inserted) ++num_terms_;
  return &it->second;
}

void TermDirectory::Erase(uint32_t term) {
  if (dense_) {
    if (term < dense_entries_.size() &&
        dense_entries_[term].posting_count > 0) {
      dense_entries_[term] = TermEntry{};
      --num_terms_;
    }
  } else {
    num_terms_ -= sparse_entries_.erase(term);
  }
}

uint64_t TermDirectory::MemoryBytes() const {
  if (dense_) return dense_entries_.size() * sizeof(TermEntry);
  // Rough hash-node estimate: entry + key + bucket overhead.
  return sparse_entries_.size() * (sizeof(TermEntry) + 24);
}

std::vector<uint32_t> TermDirectory::SortedSparseTerms() const {
  std::vector<uint32_t> terms;
  terms.reserve(sparse_entries_.size());
  for (const auto& [t, e] : sparse_entries_) {
    if (e.posting_count > 0) terms.push_back(t);
  }
  std::sort(terms.begin(), terms.end());
  return terms;
}

}  // namespace cafe
