#include "index/postings.h"

#include "util/check.h"

namespace cafe {

uint32_t EncodePostings(const uint32_t* docs, const uint32_t* positions,
                        size_t count, uint32_t num_docs,
                        IndexGranularity granularity, BitWriter* w,
                        uint32_t* position_param) {
  CAFE_CHECK_GT(count, 0u) << "empty postings run";

  // First scan: distinct docs, and the statistics for the position-gap
  // parameter (sum of the values that will actually be Golomb coded).
  uint32_t doc_count = 0;
  uint64_t pos_value_sum = 0;
  for (size_t i = 0; i < count; ++i) {
    bool new_doc = (i == 0) || docs[i] != docs[i - 1];
    if (new_doc) ++doc_count;
    if (granularity == IndexGranularity::kPositional) {
      uint64_t v = new_doc ? static_cast<uint64_t>(positions[i]) + 1
                           : static_cast<uint64_t>(positions[i]) -
                                 positions[i - 1];
      pos_value_sum += v;
    }
  }

  uint64_t b_pos = 1;
  if (granularity == IndexGranularity::kPositional) {
    b_pos = coding::OptimalGolombParameter(count, pos_value_sum);
  }
  *position_param = static_cast<uint32_t>(b_pos);

  const uint64_t b_doc = coding::OptimalGolombParameter(doc_count, num_docs);

  size_t i = 0;
  uint32_t prev_doc = 0;
  bool first_doc = true;
  while (i < count) {
    uint32_t doc = docs[i];
    size_t j = i;
    while (j < count && docs[j] == doc) ++j;
    uint32_t tf = static_cast<uint32_t>(j - i);

    uint64_t gap = first_doc ? static_cast<uint64_t>(doc) + 1
                             : static_cast<uint64_t>(doc) - prev_doc;
    coding::EncodeGolomb(w, gap, b_doc);
    coding::EncodeGamma(w, tf);

    if (granularity == IndexGranularity::kPositional) {
      uint32_t prev_pos = 0;
      bool first_pos = true;
      for (size_t k = i; k < j; ++k) {
        uint64_t v = first_pos ? static_cast<uint64_t>(positions[k]) + 1
                               : static_cast<uint64_t>(positions[k]) -
                                     prev_pos;
        CAFE_DCHECK_GE(v, 1u) << "positions not strictly increasing";
        coding::EncodeGolomb(w, v, b_pos);
        prev_pos = positions[k];
        first_pos = false;
      }
    }

    prev_doc = doc;
    first_doc = false;
    i = j;
  }
  return doc_count;
}

}  // namespace cafe
