// Term directory for the interval vocabulary.
//
// Interval terms are dense integers in [0, 4^n), so for practical interval
// lengths (n <= 12) the directory is a flat array indexed by term — no
// hashing on the query path. For longer intervals the universe outgrows
// memory and a hash map backend takes over transparently.

#ifndef CAFE_INDEX_VOCABULARY_H_
#define CAFE_INDEX_VOCABULARY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cafe {

/// Per-term bookkeeping: where its compressed postings list starts, and
/// the statistics needed to decode it.
struct TermEntry {
  uint64_t bit_offset = 0;     // start of the list in the postings blob
  uint32_t doc_count = 0;      // number of sequences containing the term
  uint32_t posting_count = 0;  // total occurrences across the collection
  uint32_t position_param = 1;  // Golomb parameter for in-sequence gaps
};

class TermDirectory {
 public:
  /// Largest interval length served by the dense (array) backend.
  static constexpr int kDenseLimit = 12;

  explicit TermDirectory(int interval_length);

  int interval_length() const { return interval_length_; }

  /// Entry for `term`, or nullptr if the term never occurred.
  const TermEntry* Find(uint32_t term) const;

  /// Entry for `term`, creating it if needed.
  TermEntry* FindOrCreate(uint32_t term);

  /// Number of terms with at least one posting.
  uint64_t NumTerms() const { return num_terms_; }

  /// Visits occupied entries in increasing term order:
  /// fn(uint32_t term, const TermEntry&).
  template <typename Fn>
  void ForEachTerm(Fn&& fn) const {
    if (dense_) {
      for (uint64_t t = 0; t < dense_entries_.size(); ++t) {
        if (dense_entries_[t].posting_count > 0) {
          fn(static_cast<uint32_t>(t), dense_entries_[t]);
        }
      }
    } else {
      for (uint32_t t : SortedSparseTerms()) {
        fn(t, sparse_entries_.at(t));
      }
    }
  }

  /// Mutable variant of ForEachTerm, same order.
  template <typename Fn>
  void ForEachTermMutable(Fn&& fn) {
    if (dense_) {
      for (uint64_t t = 0; t < dense_entries_.size(); ++t) {
        if (dense_entries_[t].posting_count > 0) {
          fn(static_cast<uint32_t>(t), &dense_entries_[t]);
        }
      }
    } else {
      for (uint32_t t : SortedSparseTerms()) {
        fn(t, &sparse_entries_.at(t));
      }
    }
  }

  /// Removes a term (used by index stopping).
  void Erase(uint32_t term);

  /// Approximate resident bytes of the directory itself.
  uint64_t MemoryBytes() const;

 private:
  std::vector<uint32_t> SortedSparseTerms() const;

  int interval_length_;
  bool dense_;
  uint64_t num_terms_ = 0;
  std::vector<TermEntry> dense_entries_;
  std::unordered_map<uint32_t, TermEntry> sparse_entries_;
};

}  // namespace cafe

#endif  // CAFE_INDEX_VOCABULARY_H_
