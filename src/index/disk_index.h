// DiskIndex: a disk-resident posting source.
//
// CAFE's defining systems property is that the index lives on disk: only
// the term directory is memory-resident, and each query touches just the
// postings lists of its own interval terms. DiskIndex opens a file
// written by InvertedIndex::Save, keeps the directory (and per-term list
// lengths) in memory, verifies the file checksum once with a streaming
// pass, and serves ScanPostings by reading the term's byte range on
// demand through an LRU cache of recently used lists.
//
// This makes the fundamental trade measurable (bench E3): slightly slower
// coarse phases in exchange for steady-state memory independent of the
// postings volume.
//
// Reentrancy contract: ScanPostings and the other const query methods
// are safe for concurrent use. File reads and cache bookkeeping are
// serialized behind an internal mutex; cached list bytes are
// shared_ptr-owned so decoding proceeds outside the lock even if the
// entry is evicted concurrently. cache_stats()/MemoryBytes() never
// touch that mutex: the stats are relaxed atomics (the striped-counter
// pattern of obs/metrics.h), so a stats poller cannot stall the query
// hot path — the numbers are point-in-time-ish, exact once queries
// quiesce.

#ifndef CAFE_INDEX_DISK_INDEX_H_
#define CAFE_INDEX_DISK_INDEX_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/posting_source.h"
#include "index/inverted_index.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/status.h"

namespace cafe {

class DiskIndex final : public PostingSource {
 public:
  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t bytes_read = 0;   // postings bytes fetched from disk
    uint64_t evictions = 0;
  };

  /// Opens an index file produced by InvertedIndex::Save. The whole file
  /// is streamed once to verify its CRC; afterwards only the directory
  /// (plus up to `cache_capacity_bytes` of cached postings) stays in
  /// memory.
  [[nodiscard]] static Result<std::unique_ptr<DiskIndex>> Open(
      const std::string& path, size_t cache_capacity_bytes = 4 << 20);

  const IndexOptions& options() const override { return options_; }
  uint32_t num_docs() const override {
    return static_cast<uint32_t>(doc_lengths_.size());
  }
  const TermEntry* FindTerm(uint32_t term) const override {
    return directory_.Find(term);
  }
  void ScanPostings(uint32_t term,
                    const PostingCallback& fn) const override;

  const std::vector<uint32_t>& doc_lengths() const { return doc_lengths_; }
  const IndexStats& stats() const { return stats_; }

  /// Lock-free snapshot (relaxed loads) — safe to poll from a stats
  /// thread while queries are in flight.
  CacheStats cache_stats() const {
    CacheStats out;
    out.hits = cache_stats_.hits.load(std::memory_order_relaxed);
    out.misses = cache_stats_.misses.load(std::memory_order_relaxed);
    out.bytes_read =
        cache_stats_.bytes_read.load(std::memory_order_relaxed);
    out.evictions =
        cache_stats_.evictions.load(std::memory_order_relaxed);
    return out;
  }

  /// Mirrors cache activity into `registry` from this call on, under the
  /// counters `disk_index.cache_hits`, `disk_index.cache_misses`,
  /// `disk_index.cache_evictions` and `disk_index.bytes_read`. The
  /// registry must outlive this index; pass nullptr to detach. Detached
  /// (the default) the hot path pays only a null check.
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// Resident bytes: directory + current cache contents. Lock-free
  /// (relaxed load of the cache byte count).
  uint64_t MemoryBytes() const;

 private:
  DiskIndex() : directory_(4) {}

  struct CacheEntry {
    // Shared ownership lets a scan keep decoding a list that another
    // thread's insertion just evicted.
    std::shared_ptr<std::vector<uint8_t>> bytes;
    uint64_t first_byte = 0;  // blob-relative offset of bytes[0]
    std::list<uint32_t>::iterator lru_it;
  };

  /// Fetches (or returns cached) raw bytes covering the term's list.
  /// *out keeps the bytes alive after the lock is released.
  [[nodiscard]] Status FetchTermBytes(uint32_t term, const TermEntry& entry,
                        std::shared_ptr<std::vector<uint8_t>>* out,
                        uint64_t* first_byte) const CAFE_REQUIRES(mu_);

  IndexOptions options_;
  std::vector<uint32_t> doc_lengths_;
  TermDirectory directory_;
  IndexStats stats_;

  std::string path_;
  uint64_t blob_file_offset_ = 0;  // byte offset of the blob in the file
  uint64_t blob_bytes_ = 0;

  // Per-term compressed list length in bits (offsets are ascending in
  // term order, so lengths are differences).
  std::unordered_map<uint32_t, uint64_t> bit_lengths_;

  // Stats counters are relaxed atomics so cache_stats()/MemoryBytes()
  // read them without mu_ — writers bump them while holding the lock,
  // readers never take it (the obs/metrics.cc pattern).
  struct AtomicCacheStats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> evictions{0};
  };

  // LRU cache over term byte ranges. mu_ guards the file stream and
  // the cache structures; postings decoding happens outside the lock
  // on the fetched bytes.
  mutable Mutex mu_;
  mutable std::ifstream file_ CAFE_GUARDED_BY(mu_);
  size_t cache_capacity_bytes_;
  mutable std::atomic<size_t> cache_bytes_{0};
  mutable std::list<uint32_t> lru_
      CAFE_GUARDED_BY(mu_);  // front = most recently used
  mutable std::unordered_map<uint32_t, CacheEntry> cache_
      CAFE_GUARDED_BY(mu_);
  mutable AtomicCacheStats cache_stats_;

  // Optional registry mirror (see AttachMetrics); written under mu_.
  obs::Counter* metric_hits_ CAFE_GUARDED_BY(mu_) = nullptr;
  obs::Counter* metric_misses_ CAFE_GUARDED_BY(mu_) = nullptr;
  obs::Counter* metric_evictions_ CAFE_GUARDED_BY(mu_) = nullptr;
  obs::Counter* metric_bytes_read_ CAFE_GUARDED_BY(mu_) = nullptr;
};

}  // namespace cafe

#endif  // CAFE_INDEX_DISK_INDEX_H_
