// SeedExtractor: one resolved extraction plan for both the builder and
// the query side — contiguous intervals of length n (the default) or a
// spaced-seed pattern whose weight is n. Both emit (position, 2n-bit
// term) through the same callback shape, so everything downstream of
// extraction (directory, postings, coarse ranking, chaining) is
// agnostic to which was used. Resolve once, then extract per sequence.

#ifndef CAFE_INDEX_SEED_EXTRACT_H_
#define CAFE_INDEX_SEED_EXTRACT_H_

#include <optional>
#include <string_view>
#include <utility>

#include "alphabet/spaced_seed.h"
#include "index/interval.h"
#include "util/status.h"

namespace cafe {

static_assert(kMinSeedWeight == kMinIntervalLength &&
                  kMaxSeedWeight == kMaxIntervalLength,
              "seed weight bounds must mirror the interval length bounds");

class SeedExtractor {
 public:
  /// Resolves the plan: an empty `spaced_pattern` selects contiguous
  /// intervals of `interval_length`; otherwise the pattern is parsed
  /// and its weight must equal `interval_length`.
  [[nodiscard]] static Result<SeedExtractor> Create(
      int interval_length, std::string_view spaced_pattern) {
    SeedExtractor ex;
    ex.n_ = interval_length;
    if (!spaced_pattern.empty()) {
      Result<SpacedSeed> seed = SpacedSeed::Parse(spaced_pattern);
      if (!seed.ok()) return seed.status();
      if (seed->weight() != interval_length) {
        return Status::InvalidArgument(
            "spaced seed weight must equal interval_length");
      }
      ex.seed_ = std::move(*seed);
    }
    return ex;
  }

  bool spaced() const { return seed_.has_value(); }

  /// Window width a term occupies in the sequence: the interval length
  /// for contiguous extraction, the pattern span for spaced seeds.
  int window() const { return seed_.has_value() ? seed_->span() : n_; }

  /// Calls `fn(position, term)` for every valid window at positions
  /// 0, stride, 2*stride, ...
  template <typename Fn>
  void ForEach(std::string_view seq, uint32_t stride, Fn&& fn) const {
    if (seed_.has_value()) {
      ForEachSpacedSeed(seq, *seed_, stride, std::forward<Fn>(fn));
    } else {
      ForEachInterval(seq, n_, stride, std::forward<Fn>(fn));
    }
  }

 private:
  SeedExtractor() = default;

  int n_ = 0;
  std::optional<SpacedSeed> seed_;
};

}  // namespace cafe

#endif  // CAFE_INDEX_SEED_EXTRACT_H_
