// Compressed postings lists.
//
// A term's list is a sequence of (sequence id, occurrence positions)
// entries, stored as:
//
//   for each of doc_count sequences (ids ascending):
//     Golomb(doc gap; b_doc)        b_doc derived from (doc_count, N) —
//                                   both known to the decoder, so the
//                                   parameter costs no storage
//     gamma(tf)                     occurrences in this sequence
//     [positional granularity only]
//     Golomb(position gaps; b_pos)  first value is position+1; b_pos is
//                                   chosen per list at build time and kept
//                                   in the term directory
//
// This is the inverted-file organisation of Bell/Moffat/Zobel text
// indexing transplanted to interval terms, which is precisely what the
// paper proposes ("a variation on techniques used for inverted file
// compression").

#ifndef CAFE_INDEX_POSTINGS_H_
#define CAFE_INDEX_POSTINGS_H_

#include <cstdint>
#include <vector>

#include "coding/elias.h"
#include "coding/golomb.h"
#include "index/vocabulary.h"
#include "util/bitio.h"
#include "util/check.h"

namespace cafe {

/// What a postings entry records about each matching sequence.
enum class IndexGranularity : uint8_t {
  kDocument = 0,    // sequence id + occurrence count
  kPositional = 1,  // id + count + every occurrence position
};

/// Encodes one term's postings from parallel arrays sorted by
/// (doc, position). Returns the number of distinct docs and stores the
/// chosen position-gap Golomb parameter in *position_param (1 for
/// document granularity).
uint32_t EncodePostings(const uint32_t* docs, const uint32_t* positions,
                        size_t count, uint32_t num_docs,
                        IndexGranularity granularity, BitWriter* w,
                        uint32_t* position_param);

/// Streaming decoder for one term's postings list.
/// `fn(doc, tf, positions, npos)` is invoked once per matching sequence;
/// `positions` is nullptr (npos = 0) at document granularity. The
/// positions buffer is owned by the decoder and reused across calls.
template <typename Fn>
void DecodePostings(const uint8_t* blob, size_t blob_bytes,
                    uint64_t bit_offset, const TermEntry& entry,
                    uint32_t num_docs, IndexGranularity granularity,
                    std::vector<uint32_t>* pos_buf, Fn&& fn) {
  // Directory offsets are producer-side invariants: the blob and its
  // directory were either built in-process or admitted past a CRC check,
  // so an out-of-range offset is a bug, not bad input.
  CAFE_DCHECK_LE(bit_offset, blob_bytes * 8);
  BitReader r(blob, blob_bytes);
  r.SeekToBit(bit_offset);
  const uint64_t b_doc =
      coding::OptimalGolombParameter(entry.doc_count, num_docs);
  const uint64_t b_pos = entry.position_param;
  uint32_t doc = 0;
  bool first = true;
  for (uint32_t i = 0; i < entry.doc_count; ++i) {
    uint64_t gap = coding::DecodeGolomb(&r, b_doc);
    doc = first ? static_cast<uint32_t>(gap - 1)
                : doc + static_cast<uint32_t>(gap);
    first = false;
    uint32_t tf = static_cast<uint32_t>(coding::DecodeGamma(&r));
    if (granularity == IndexGranularity::kDocument) {
      fn(doc, tf, static_cast<const uint32_t*>(nullptr), uint32_t{0});
      continue;
    }
    pos_buf->resize(tf);
    uint64_t pos = 0;
    for (uint32_t k = 0; k < tf; ++k) {
      pos += coding::DecodeGolomb(&r, b_pos);
      (*pos_buf)[k] = static_cast<uint32_t>(pos - 1);
    }
    fn(doc, tf, pos_buf->data(), tf);
    if (r.overflowed()) return;  // corrupt input; caller validated via CRC
  }
}

}  // namespace cafe

#endif  // CAFE_INDEX_POSTINGS_H_
