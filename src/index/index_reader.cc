#include "index/index_reader.h"

#include <utility>

namespace cafe {

Result<IndexMode> ParseIndexMode(const std::string& name) {
  if (name == "memory" || name == "mem") return IndexMode::kMemory;
  if (name == "cached" || name == "disk") return IndexMode::kCached;
  if (name == "mmap") return IndexMode::kMmap;
  return Status::InvalidArgument(
      "unknown index mode '" + name + "' (want memory, cached or mmap)");
}

Result<IndexMode> ResolveIndexModeFlags(const std::string& index_mode,
                                        bool disk_index) {
  if (!index_mode.empty()) return ParseIndexMode(index_mode);
  return disk_index ? IndexMode::kCached : IndexMode::kMemory;
}

const char* IndexModeName(IndexMode mode) {
  switch (mode) {
    case IndexMode::kMemory:
      return "memory";
    case IndexMode::kCached:
      return "cached";
    case IndexMode::kMmap:
      return "mmap";
  }
  return "unknown";
}

Result<IndexReader> IndexReader::Open(const std::string& path,
                                      IndexMode mode) {
  IndexReader reader;
  reader.mode_ = mode;
  switch (mode) {
    case IndexMode::kMemory: {
      Result<InvertedIndex> loaded = InvertedIndex::Load(path);
      if (!loaded.ok()) return loaded.status();
      reader.memory_ =
          std::make_unique<InvertedIndex>(std::move(*loaded));
      reader.source_ = reader.memory_.get();
      break;
    }
    case IndexMode::kCached: {
      Result<std::unique_ptr<DiskIndex>> opened = DiskIndex::Open(path);
      if (!opened.ok()) return opened.status();
      reader.cached_ = std::move(*opened);
      reader.source_ = reader.cached_.get();
      break;
    }
    case IndexMode::kMmap: {
      Result<std::unique_ptr<MmapIndex>> opened = MmapIndex::Open(path);
      if (!opened.ok()) return opened.status();
      reader.mapped_ = std::move(*opened);
      reader.source_ = reader.mapped_.get();
      break;
    }
  }
  return reader;
}

void IndexReader::AttachMetrics(obs::MetricsRegistry* registry) {
  if (cached_ != nullptr) cached_->AttachMetrics(registry);
  if (mapped_ != nullptr) mapped_->AttachMetrics(registry);
}

void IndexReader::MoveFrom(IndexReader&& other) {
  mode_ = other.mode_;
  memory_ = std::move(other.memory_);
  cached_ = std::move(other.cached_);
  mapped_ = std::move(other.mapped_);
  source_ = std::exchange(other.source_, nullptr);
}

}  // namespace cafe
