#include "index/mmap_index.h"

#include <cstring>
#include <utility>

#include "index/index_format.h"
#include "util/crc32.h"
#include "util/timer.h"

namespace cafe {

Result<std::unique_ptr<MmapIndex>> MmapIndex::Open(const std::string& path) {
  Result<MmapFile> mapped = MmapFile::Open(path, /*populate=*/true);
  if (!mapped.ok()) return mapped.status();
  MmapFile file = std::move(*mapped);
  if (file.size() < 8 + 14 + 4) {
    return Status::Corruption("index: too short");
  }

  // One sequential sweep verifies the CRC and faults every page in —
  // the mmap path's whole cold-start cost, timed as the page-fault
  // proxy metric. Readahead is wide open for the sweep, then switched
  // to random for the point lookups that follow.
  WallTimer sweep_timer;
  file.Advise(MmapFile::Advice::kSequential);
  const size_t body = file.size() - 4;
  uint32_t stored_crc;
  std::memcpy(&stored_crc, file.data() + body, 4);
  if (Crc32(reinterpret_cast<const char*>(file.data()), body) != stored_crc) {
    return Status::Corruption("index: checksum mismatch");
  }
  const uint64_t first_touch_micros =
      static_cast<uint64_t>(sweep_timer.Micros());
  file.Advise(MmapFile::Advice::kRandom);

  // make_unique cannot reach the private constructor.
  std::unique_ptr<MmapIndex> index(
      new MmapIndex());  // NOLINT(cafe-no-naked-new)
  index_internal::IndexPrefix prefix;
  CAFE_RETURN_IF_ERROR(
      index_internal::ParseIndexPrefix(file.view().substr(0, body), &prefix));

  index->options_ = prefix.options;
  index->doc_lengths_ = std::move(prefix.doc_lengths);
  index->directory_ = std::move(prefix.directory);
  index->stats_ = prefix.stats;
  // Sound borrow: `file` is moved into index->file_ four lines down,
  // so blob_ and the mapping it points into share this object's
  // lifetime — the zero-copy design, not an escape.
  // NOLINTNEXTLINE(astcheck-view-escape)
  index->blob_ = file.data() + prefix.blob_offset;
  index->blob_bytes_ = prefix.blob_bytes;
  index->first_touch_micros_ = first_touch_micros;
  index->file_ = std::move(file);
  return index;
}

void MmapIndex::ScanPostings(uint32_t term,
                             const PostingCallback& fn) const {
  const TermEntry* e = directory_.Find(term);
  if (e == nullptr) return;
  if (metric_lists_ != nullptr) metric_lists_->Add(1);
  if (metric_bytes_decoded_ != nullptr) {
    const uint64_t bits = ListBits(term, *e);
    metric_bytes_decoded_->Add((e->bit_offset + bits + 7) / 8 -
                               e->bit_offset / 8);
  }
  static thread_local std::vector<uint32_t> pos_buf;
  DecodePostings(blob_, blob_bytes_, e->bit_offset, *e, num_docs(),
                 options_.granularity, &pos_buf, fn);
}

uint64_t MmapIndex::ListBits(uint32_t term, const TermEntry& entry) const {
  auto it = bit_lengths_.find(term);
  if (it != bit_lengths_.end()) return it->second;
  return blob_bytes_ * 8 - entry.bit_offset;  // last list in the blob
}

void MmapIndex::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metric_lists_ = nullptr;
    metric_bytes_decoded_ = nullptr;
    return;
  }
  if (bit_lengths_.empty() && directory_.NumTerms() > 1) {
    bit_lengths_.reserve(directory_.NumTerms());
    uint32_t prev_term = 0;
    uint64_t prev_offset = 0;
    bool have_prev = false;
    directory_.ForEachTerm([&](uint32_t term, const TermEntry& e) {
      if (have_prev) bit_lengths_[prev_term] = e.bit_offset - prev_offset;
      prev_term = term;
      prev_offset = e.bit_offset;
      have_prev = true;
    });
    // The final term's list runs to the end of the blob — ListBits'
    // fallback covers it without a map entry.
  }
  metric_lists_ = registry->GetCounter("mmap_index.lists_scanned");
  metric_bytes_decoded_ = registry->GetCounter("mmap_index.bytes_decoded");
  if (!open_facts_recorded_) {
    open_facts_recorded_ = true;
    registry->GetCounter("mmap_index.maps")->Add(1);
    registry->GetCounter("mmap_index.bytes_mapped")->Add(file_.size());
    registry->GetHistogram("mmap_index.first_touch_micros")
        ->Record(first_touch_micros_);
  }
}

uint64_t MmapIndex::MemoryBytes() const {
  return directory_.MemoryBytes() + bit_lengths_.size() * 16;
}

}  // namespace cafe
