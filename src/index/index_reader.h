// IndexReader: one entry point for "open this index file and give me a
// PostingSource", switchable between the three read paths:
//
//   kMemory  InvertedIndex::Load — the whole postings blob copied to
//            heap; fastest steady state, heap grows with the index.
//   kCached  DiskIndex::Open — directory on heap, postings fetched
//            through a mutexed LRU block cache; the reference oracle
//            for byte-identical A/B tests against the mmap path.
//   kMmap    MmapIndex::Open — directory on heap, postings decoded
//            zero-copy out of a read-only mapping; no lock, no warmup,
//            serves indexes larger than RAM.
//
// cafe_cli and cafe_serve expose the choice as --index-mode=
// memory|cached|mmap (--disk-index is kept as an alias for cached).

#ifndef CAFE_INDEX_INDEX_READER_H_
#define CAFE_INDEX_INDEX_READER_H_

#include <memory>
#include <string>

#include "index/disk_index.h"
#include "index/inverted_index.h"
#include "index/mmap_index.h"
#include "index/posting_source.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace cafe {

enum class IndexMode {
  kMemory,
  kCached,
  kMmap,
};

/// Parses "memory" | "cached" | "mmap" (plus the legacy spelling
/// "disk" for cached); InvalidArgument otherwise.
[[nodiscard]] Result<IndexMode> ParseIndexMode(const std::string& name);

/// One shared resolution of the tools' flag pair: a non-empty
/// --index-mode value wins (and is parsed exactly once); otherwise the
/// legacy --disk-index boolean selects cached, default memory. Both
/// cafe_cli and cafe_serve route through this, so the flag semantics
/// cannot drift between them.
[[nodiscard]] Result<IndexMode> ResolveIndexModeFlags(
    const std::string& index_mode, bool disk_index);

const char* IndexModeName(IndexMode mode);

/// An opened index: owns whichever implementation the mode selected
/// and exposes it through the PostingSource interface. Move-only;
/// `source()` stays valid for the lifetime of this object.
class IndexReader {
 public:
  [[nodiscard]] static Result<IndexReader> Open(const std::string& path,
                                                IndexMode mode);

  const PostingSource* source() const { return source_; }
  IndexMode mode() const { return mode_; }

  /// Forwards to the implementation's metric mirror where one exists
  /// (cached -> disk_index.*, mmap -> mmap_index.*; memory has none).
  void AttachMetrics(obs::MetricsRegistry* registry);

  IndexReader(IndexReader&& other) noexcept { MoveFrom(std::move(other)); }
  IndexReader& operator=(IndexReader&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }
  IndexReader(const IndexReader&) = delete;
  IndexReader& operator=(const IndexReader&) = delete;

 private:
  IndexReader() = default;
  void MoveFrom(IndexReader&& other);

  IndexMode mode_ = IndexMode::kMemory;
  std::unique_ptr<InvertedIndex> memory_;
  std::unique_ptr<DiskIndex> cached_;
  std::unique_ptr<MmapIndex> mapped_;
  const PostingSource* source_ = nullptr;
};

}  // namespace cafe

#endif  // CAFE_INDEX_INDEX_READER_H_
