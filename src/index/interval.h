// Fixed-length substrings ("intervals") and their integer codes.
//
// The paper's central representational choice: every window of n
// consecutive unambiguous bases maps to a 2n-bit integer term
// (A=0 C=1 G=2 T=3, most significant base first), giving a vocabulary of
// at most 4^n terms. Windows containing IUPAC wildcards are skipped — a
// wildcard denotes several bases, so it cannot be assigned a single term;
// skipping loses nothing measurable at GenBank wildcard rates.
//
// Extraction is rolling (O(1) per window). The database side may extract
// at a stride > 1 (e.g. non-overlapping intervals) to shrink the index;
// the query side always uses stride 1.

#ifndef CAFE_INDEX_INTERVAL_H_
#define CAFE_INDEX_INTERVAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cafe {

/// Inclusive bounds on interval length: 4^16 already exceeds a uint32
/// vocabulary at 17, and lengths below 4 have no selectivity.
inline constexpr int kMinIntervalLength = 4;
inline constexpr int kMaxIntervalLength = 16;

/// Number of distinct terms for interval length n (4^n).
inline uint64_t VocabularyUniverse(int n) { return uint64_t{1} << (2 * n); }

/// An extracted interval occurrence.
struct IntervalHit {
  uint32_t position;  // start offset within the sequence
  uint32_t term;      // 2n-bit interval code
};

/// Encodes the first `n` characters of `window` as a term.
/// Returns -1 (as int64) if any character is not an unambiguous base.
int64_t EncodeInterval(std::string_view window, int n);

/// Decodes a term back to its n-character string form (for diagnostics).
std::string DecodeInterval(uint32_t term, int n);

/// Calls `fn(position, term)` for every valid interval of length `n` at
/// positions 0, stride, 2*stride, ... Windows straddling a wildcard are
/// skipped (their aligned position is consumed, matching an indexing pass
/// that steps the sequence once).
template <typename Fn>
void ForEachInterval(std::string_view seq, int n, uint32_t stride, Fn&& fn);

/// Convenience: materializes all interval hits.
std::vector<IntervalHit> ExtractIntervals(std::string_view seq, int n,
                                          uint32_t stride = 1);

// ---------------------------------------------------------------------------
// Implementation of the template.

namespace interval_internal {
/// Base code lookup shared with alphabet/; -1 for non-base characters.
int CodeOf(char c);
}  // namespace interval_internal

template <typename Fn>
void ForEachInterval(std::string_view seq, int n, uint32_t stride, Fn&& fn) {
  if (n < kMinIntervalLength || n > kMaxIntervalLength ||
      seq.size() < static_cast<size_t>(n) || stride == 0) {
    return;
  }
  const uint32_t mask =
      n == 16 ? 0xFFFFFFFFu : ((uint32_t{1} << (2 * n)) - 1);
  uint32_t term = 0;
  int run = 0;  // length of the current wildcard-free suffix, capped at n
  for (size_t i = 0; i < seq.size(); ++i) {
    int code = interval_internal::CodeOf(seq[i]);
    if (code < 0) {
      run = 0;
      term = 0;
      continue;
    }
    term = ((term << 2) | static_cast<uint32_t>(code)) & mask;
    if (run < n) ++run;
    if (run == n) {
      size_t start = i + 1 - static_cast<size_t>(n);
      if (start % stride == 0) {
        fn(static_cast<uint32_t>(start), term);
      }
    }
  }
}

}  // namespace cafe

#endif  // CAFE_INDEX_INTERVAL_H_
