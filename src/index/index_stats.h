// Index statistics reporting helpers.

#ifndef CAFE_INDEX_INDEX_STATS_H_
#define CAFE_INDEX_INDEX_STATS_H_

#include <cstdint>
#include <string>

namespace cafe {

class InvertedIndex;

/// Multi-line summary of an index; `collection_bases` (total bases in the
/// indexed collection) enables the index-to-database size ratio line,
/// pass 0 to omit it.
std::string FormatIndexStats(const InvertedIndex& index,
                             uint64_t collection_bases);

}  // namespace cafe

#endif  // CAFE_INDEX_INDEX_STATS_H_
