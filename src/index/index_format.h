// Internal: shared parser for the on-disk index format's prefix (header,
// document lengths, term directory). Used by InvertedIndex::Deserialize
// (which then copies the postings blob into memory) and DiskIndex::Open
// (which leaves the blob on disk and remembers only its file offset).
//
// See index_io.cc for the format layout.

#ifndef CAFE_INDEX_INDEX_FORMAT_H_
#define CAFE_INDEX_INDEX_FORMAT_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "index/interval.h"
#include "index/inverted_index.h"
#include "index/vocabulary.h"
#include "util/status.h"

namespace cafe::index_internal {

struct IndexPrefix {
  IndexOptions options;
  std::vector<uint32_t> doc_lengths;
  TermDirectory directory{kMinIntervalLength};
  IndexStats stats;
  /// Byte offset of the postings blob within the parsed region.
  size_t blob_offset = 0;
  uint64_t blob_bytes = 0;
};

/// Parses everything before the postings blob. `data` must cover the file
/// contents *without* the trailing CRC-32 (the caller verifies that);
/// on success, data.substr(out->blob_offset, out->blob_bytes) is the blob.
[[nodiscard]] Status ParseIndexPrefix(std::string_view data, IndexPrefix* out);

}  // namespace cafe::index_internal

#endif  // CAFE_INDEX_INDEX_FORMAT_H_
