// Sharded index construction.
//
// Building an index over a collection that exceeds memory proceeds the
// way large text inverted files are built: index consecutive shards of
// the collection independently, then merge the shards' postings term by
// term. MergeIndexes produces an index bit-for-bit equivalent in content
// to a direct build over the whole collection (tested); BuildSharded is
// the convenience driver.
//
// Index stopping is a whole-collection decision (a term's collection
// frequency is unknowable per shard), so shards must be built without
// stopping; apply stopping, if desired, in a direct build.

#ifndef CAFE_INDEX_INDEX_MERGE_H_
#define CAFE_INDEX_INDEX_MERGE_H_

#include <vector>

#include "index/inverted_index.h"

namespace cafe {

/// Merges shard indexes covering consecutive document ranges: shard i's
/// local document j is global document `doc_offsets[i] + j`. All shards
/// must share identical options with stop_doc_fraction == 1.0.
/// `doc_offsets` must be ascending and sized like `shards`.
[[nodiscard]] Result<InvertedIndex> MergeIndexes(
    const std::vector<const InvertedIndex*>& shards,
    const std::vector<uint32_t>& doc_offsets);

/// Builds an index over `collection` in shards of `docs_per_shard`
/// sequences and merges them. With `threads` > 1 (0 = hardware threads)
/// the shards are built concurrently — each covers a disjoint document
/// range — and then merged sequentially, so the output is identical to
/// the single-threaded build.
[[nodiscard]] Result<InvertedIndex> BuildSharded(const SequenceCollection& collection,
                                   const IndexOptions& options,
                                   uint32_t docs_per_shard,
                                   unsigned threads = 1);

}  // namespace cafe

#endif  // CAFE_INDEX_INDEX_MERGE_H_
