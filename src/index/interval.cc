#include "index/interval.h"

#include "alphabet/nucleotide.h"

namespace cafe {

namespace interval_internal {
int CodeOf(char c) { return BaseToCode(c); }
}  // namespace interval_internal

int64_t EncodeInterval(std::string_view window, int n) {
  if (n < kMinIntervalLength || n > kMaxIntervalLength ||
      window.size() < static_cast<size_t>(n)) {
    return -1;
  }
  uint32_t term = 0;
  for (int i = 0; i < n; ++i) {
    int code = BaseToCode(window[i]);
    if (code < 0) return -1;
    term = (term << 2) | static_cast<uint32_t>(code);
  }
  return term;
}

std::string DecodeInterval(uint32_t term, int n) {
  std::string out(static_cast<size_t>(n), 'A');
  for (int i = n - 1; i >= 0; --i) {
    out[i] = CodeToBase(static_cast<int>(term & 3));
    term >>= 2;
  }
  return out;
}

std::vector<IntervalHit> ExtractIntervals(std::string_view seq, int n,
                                          uint32_t stride) {
  std::vector<IntervalHit> out;
  ForEachInterval(seq, n, stride, [&](uint32_t pos, uint32_t term) {
    out.push_back(IntervalHit{pos, term});
  });
  return out;
}

}  // namespace cafe
