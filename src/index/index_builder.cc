#include <memory>
#include <unordered_map>

#include "collection/collection.h"
#include "index/index_metrics.h"
#include "index/interval.h"
#include "index/inverted_index.h"
#include "index/seed_extract.h"
#include "util/timer.h"

namespace cafe {
namespace {

// Scratch "last doc seen" table used to count document frequencies during
// the first pass; dense alongside the dense directory, hashed otherwise.
class LastDocTable {
 public:
  LastDocTable(int interval_length, bool dense) : dense_(dense) {
    if (dense_) {
      dense_table_.assign(VocabularyUniverse(interval_length), 0);
    }
  }

  // Returns true the first time `term` is seen in `doc`.
  bool MarkSeen(uint32_t term, uint32_t doc) {
    uint32_t tag = doc + 1;
    if (dense_) {
      if (dense_table_[term] == tag) return false;
      dense_table_[term] = tag;
      return true;
    }
    auto [it, inserted] = sparse_table_.try_emplace(term, tag);
    if (!inserted) {
      if (it->second == tag) return false;
      it->second = tag;
    }
    return true;
  }

 private:
  bool dense_;
  std::vector<uint32_t> dense_table_;
  std::unordered_map<uint32_t, uint32_t> sparse_table_;
};

// Per-term write cursors into the flat posting arrays.
class CursorTable {
 public:
  CursorTable(int interval_length, bool dense) : dense_(dense) {
    if (dense_) {
      dense_table_.assign(VocabularyUniverse(interval_length), 0);
    }
  }

  uint64_t* Slot(uint32_t term) {
    if (dense_) return &dense_table_[term];
    return &sparse_table_[term];
  }

 private:
  bool dense_;
  std::vector<uint64_t> dense_table_;
  std::unordered_map<uint32_t, uint64_t> sparse_table_;
};

}  // namespace

Status IndexOptions::Validate() const {
  if (interval_length < kMinIntervalLength ||
      interval_length > kMaxIntervalLength) {
    return Status::InvalidArgument(
        "interval_length must be in [" + std::to_string(kMinIntervalLength) +
        ", " + std::to_string(kMaxIntervalLength) + "]");
  }
  if (stride == 0) {
    return Status::InvalidArgument("stride must be >= 1");
  }
  if (stop_doc_fraction <= 0.0 || stop_doc_fraction > 1.0) {
    return Status::InvalidArgument("stop_doc_fraction must be in (0, 1]");
  }
  if (!spaced_seed.empty()) {
    // Create() parses the pattern and checks weight == interval_length.
    Result<SeedExtractor> extractor =
        SeedExtractor::Create(interval_length, spaced_seed);
    if (!extractor.ok()) return extractor.status();
  }
  return Status::OK();
}

Result<InvertedIndex> IndexBuilder::Build(const SequenceCollection& collection,
                                          const IndexOptions& options) {
  WallTimer timer;
  Result<InvertedIndex> built =
      BuildRange(collection, options, 0, collection.NumSequences());
  if (built.ok()) {
    RecordIndexBuildMetrics(options.metrics, (*built).stats(),
                            (*built).num_docs(), timer.Micros());
  }
  return built;
}

Result<InvertedIndex> IndexBuilder::BuildRange(
    const SequenceCollection& collection, const IndexOptions& options,
    uint32_t doc_begin, uint32_t doc_end) {
  CAFE_RETURN_IF_ERROR(options.Validate());
  if (doc_begin >= doc_end || doc_end > collection.NumSequences()) {
    return Status::InvalidArgument("cannot index an empty collection");
  }
  const uint32_t num_docs = doc_end - doc_begin;

  InvertedIndex index;
  index.options_ = options;
  index.directory_ = TermDirectory(options.interval_length);
  index.doc_lengths_.resize(num_docs);

  const int n = options.interval_length;
  const bool dense = n <= TermDirectory::kDenseLimit;
  // Validate() above guarantees this resolves.
  Result<SeedExtractor> extractor =
      SeedExtractor::Create(n, options.spaced_seed);
  CAFE_RETURN_IF_ERROR(extractor.status());

  // Pass 1: posting and document counts per term.
  {
    LastDocTable last_doc(n, dense);
    std::string seq;
    for (uint32_t doc = 0; doc < num_docs; ++doc) {
      CAFE_RETURN_IF_ERROR(collection.GetSequence(doc_begin + doc, &seq));
      index.doc_lengths_[doc] = static_cast<uint32_t>(seq.size());
      extractor->ForEach(seq, options.stride,
                         [&](uint32_t /*pos*/, uint32_t term) {
                           TermEntry* e = index.directory_.FindOrCreate(term);
                           ++e->posting_count;
                           if (last_doc.MarkSeen(term, doc)) ++e->doc_count;
                         });
    }
  }

  // Index stopping: drop terms present in too many sequences.
  if (options.stop_doc_fraction < 1.0) {
    const auto threshold = static_cast<uint64_t>(
        options.stop_doc_fraction * static_cast<double>(num_docs));
    std::vector<uint32_t> stopped;
    index.directory_.ForEachTerm([&](uint32_t term, const TermEntry& e) {
      if (e.doc_count > threshold) {
        stopped.push_back(term);
        ++index.stats_.stopped_terms;
        index.stats_.stopped_postings += e.posting_count;
      }
    });
    for (uint32_t term : stopped) index.directory_.Erase(term);
  }

  // Cursor setup: contiguous slices of the flat arrays in term order.
  uint64_t total_postings = 0;
  CursorTable cursors(n, dense);
  index.directory_.ForEachTerm([&](uint32_t term, const TermEntry& e) {
    *cursors.Slot(term) = total_postings;
    total_postings += e.posting_count;
  });

  const bool positional =
      options.granularity == IndexGranularity::kPositional;
  std::vector<uint32_t> flat_docs(total_postings);
  std::vector<uint32_t> flat_positions(positional ? total_postings : 0);

  // Pass 2: fill the flat arrays (extraction order is already sorted by
  // (doc, position) within each term).
  {
    std::string seq;
    for (uint32_t doc = 0; doc < num_docs; ++doc) {
      CAFE_RETURN_IF_ERROR(collection.GetSequence(doc_begin + doc, &seq));
      extractor->ForEach(seq, options.stride,
                         [&](uint32_t pos, uint32_t term) {
                           if (index.directory_.Find(term) == nullptr) return;
                           uint64_t* slot = cursors.Slot(term);
                           flat_docs[*slot] = doc;
                           if (positional) flat_positions[*slot] = pos;
                           ++*slot;
                         });
    }
  }

  // Encode each term's list; record offsets and parameters.
  BitWriter writer;
  uint64_t start = 0;
  index.directory_.ForEachTermMutable([&](uint32_t /*term*/, TermEntry* e) {
    e->bit_offset = writer.bit_count();
    uint32_t param = 1;
    uint32_t doc_count = EncodePostings(
        flat_docs.data() + start,
        positional ? flat_positions.data() + start : nullptr,
        e->posting_count, num_docs, options.granularity, &writer, &param);
    e->position_param = param;
    // doc_count was already established in pass 1; EncodePostings
    // recomputes it from the data as a consistency check.
    if (doc_count != e->doc_count) {
      e->doc_count = doc_count;  // defensive; cannot happen for valid input
    }
    start += e->posting_count;
  });
  index.blob_ = writer.Finish();

  index.stats_.num_terms = index.directory_.NumTerms();
  index.stats_.total_postings = total_postings;
  index.stats_.postings_bits = index.blob_.size() * 8;
  index.stats_.directory_bytes = index.directory_.MemoryBytes();
  index.stats_.bits_per_posting =
      total_postings == 0
          ? 0.0
          : static_cast<double>(index.stats_.postings_bits) /
                static_cast<double>(total_postings);
  return index;
}

}  // namespace cafe
