// The compressed inverted interval index — the data structure the paper
// contributes. Maps every interval term to a compressed postings list over
// the collection; the coarse search phase drives its ForEachPosting.
//
// Reentrancy contract: once built (or loaded), the const query surface —
// FindTerm, ScanPostings, ForEachPosting, num_docs, doc_length(s),
// options, stats — is safe for concurrent use from any number of
// threads; postings decoding uses a thread-local scratch buffer and
// everything else is read-only. Serialize/SerializedBytes maintain a
// cached size and are not part of that concurrent-safe surface.

#ifndef CAFE_INDEX_INVERTED_INDEX_H_
#define CAFE_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/posting_source.h"
#include "index/postings.h"
#include "index/vocabulary.h"
#include "util/status.h"

namespace cafe {

namespace obs {
class MetricsRegistry;
}  // namespace obs

class SequenceCollection;

/// Build-time knobs. Defaults follow the CAFE practice: overlapping
/// intervals of length 8, positional granularity, no stopping.
struct IndexOptions {
  /// Interval (fixed substring) length n; vocabulary is 4^n.
  int interval_length = 8;

  /// Database-side extraction stride: 1 indexes every position
  /// (overlapping intervals); `interval_length` indexes non-overlapping
  /// intervals. The query side always extracts at stride 1.
  uint32_t stride = 1;

  /// Document-level or positional postings. Positional postings append
  /// delta-coded in-sequence offsets to every posting — the raw
  /// material for diagonal ranking and seed chaining; document
  /// granularity stores term frequencies only and costs far less space.
  IndexGranularity granularity = IndexGranularity::kPositional;

  /// Spaced-seed extraction pattern ('1' = care, '0' = don't care;
  /// alphabet/spaced_seed.h). Empty (the default) extracts contiguous
  /// intervals of `interval_length`; otherwise the pattern's weight
  /// must equal `interval_length` (terms stay 2n bits either way).
  /// Serialized in the index header (format version 2), so readers and
  /// the query side always extract with the builder's pattern.
  std::string spaced_seed;

  /// Index stopping: a term occurring in more than this fraction of the
  /// sequences is dropped from the index (1.0 disables stopping). The
  /// coarse search simply never sees stopped terms — the lossy
  /// acceleration the CAFE papers describe.
  double stop_doc_fraction = 1.0;

  /// Optional observability sink (obs/metrics.h). Runtime-only: never
  /// serialized, never affects index contents. When non-null, top-level
  /// builds (Build, BuildParallel, BuildSharded) record the
  /// `index_build.*` counters and the `index_build.build_micros`
  /// histogram into it exactly once per build.
  obs::MetricsRegistry* metrics = nullptr;

  [[nodiscard]] Status Validate() const;
};

/// Size/occupancy statistics used by experiments E1/E2/E6.
struct IndexStats {
  uint64_t num_terms = 0;
  uint64_t total_postings = 0;      // surviving (doc, pos) occurrences
  uint64_t stopped_terms = 0;
  uint64_t stopped_postings = 0;
  uint64_t postings_bits = 0;       // compressed postings blob
  uint64_t directory_bytes = 0;     // in-memory term directory footprint
  double bits_per_posting = 0.0;
};

class InvertedIndex final : public PostingSource {
 public:
  InvertedIndex() : directory_(kMinIntervalLengthForCtor) {}

  const IndexOptions& options() const override { return options_; }
  uint32_t num_docs() const override {
    return static_cast<uint32_t>(doc_lengths_.size());
  }
  uint32_t doc_length(uint32_t doc) const { return doc_lengths_[doc]; }
  const std::vector<uint32_t>& doc_lengths() const { return doc_lengths_; }

  /// Directory entry for `term`, or nullptr if the term is unindexed
  /// (never occurred, or stopped).
  const TermEntry* FindTerm(uint32_t term) const override {
    return directory_.Find(term);
  }

  /// PostingSource implementation (type-erased callback); prefer the
  /// ForEachPosting template when the callee type is known statically.
  void ScanPostings(uint32_t term,
                    const PostingCallback& fn) const override {
    ForEachPosting(term, fn);
  }

  /// Streams the postings of `term`:
  /// fn(doc, tf, positions, npos); positions is nullptr at document
  /// granularity. No-op for unindexed terms. Safe for concurrent calls:
  /// the position scratch is thread-local, so each searching thread
  /// reuses its own buffer across terms without synchronization.
  template <typename Fn>
  void ForEachPosting(uint32_t term, Fn&& fn) const {
    const TermEntry* e = directory_.Find(term);
    if (e == nullptr) return;
    static thread_local std::vector<uint32_t> pos_buf;
    DecodePostings(blob_.data(), blob_.size(), e->bit_offset, *e,
                   num_docs(), options_.granularity, &pos_buf,
                   std::forward<Fn>(fn));
  }

  const TermDirectory& directory() const { return directory_; }

  const IndexStats& stats() const { return stats_; }

  /// Serialized size in bytes (same as what Save writes).
  uint64_t SerializedBytes() const;

  void Serialize(std::string* out) const;
  [[nodiscard]] static Result<InvertedIndex> Deserialize(std::string_view data);
  [[nodiscard]] Status Save(const std::string& path) const;
  [[nodiscard]] static Result<InvertedIndex> Load(const std::string& path);

 private:
  friend class IndexBuilder;
  friend Result<InvertedIndex> MergeIndexes(
      const std::vector<const InvertedIndex*>& shards,
      const std::vector<uint32_t>& doc_offsets);

  // TermDirectory has no default constructor; a freshly constructed index
  // holds an empty directory at the smallest length until Build/Load
  // replaces it.
  static constexpr int kMinIntervalLengthForCtor = 4;

  IndexOptions options_;
  std::vector<uint32_t> doc_lengths_;
  TermDirectory directory_;
  std::vector<uint8_t> blob_;
  IndexStats stats_;
  mutable uint64_t serialized_bytes_cache_ = 0;
};

/// Builds indexes over collections.
class IndexBuilder {
 public:
  [[nodiscard]] static Result<InvertedIndex> Build(const SequenceCollection& collection,
                                     const IndexOptions& options);

  /// Builds over the sub-range of sequences [doc_begin, doc_end);
  /// document ids in the result are local (0-based within the range).
  /// Used by the sharded construction path (index_merge.h).
  [[nodiscard]] static Result<InvertedIndex> BuildRange(
      const SequenceCollection& collection, const IndexOptions& options,
      uint32_t doc_begin, uint32_t doc_end);

  /// Parallel build: per-sequence interval extraction runs over `threads`
  /// workers (0 = hardware threads), each indexing a contiguous shard of
  /// the collection, followed by a sequential term-by-term merge. The
  /// result is identical in content to Build. Falls back to the
  /// sequential Build when threads <= 1, the collection is small, or
  /// index stopping is requested (stopping is a whole-collection
  /// decision, incompatible with per-shard builds). Implemented in
  /// index_merge.cc.
  [[nodiscard]] static Result<InvertedIndex> BuildParallel(
      const SequenceCollection& collection, const IndexOptions& options,
      unsigned threads);
};

}  // namespace cafe

#endif  // CAFE_INDEX_INVERTED_INDEX_H_
