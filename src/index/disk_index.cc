#include "index/disk_index.h"

#include <algorithm>
#include <cstring>

#include "index/index_format.h"
#include "util/check.h"
#include "util/crc32.h"

namespace cafe {

Result<std::unique_ptr<DiskIndex>> DiskIndex::Open(
    const std::string& path, size_t cache_capacity_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open index file: " + path);
  }

  // Streaming pass: verify the CRC and find the file size without
  // retaining the postings blob.
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  if (file_size < 8 + 14 + 4) {
    return Status::Corruption("index: too short");
  }
  in.seekg(0, std::ios::beg);
  uint32_t crc = 0;
  {
    std::vector<char> buf(1 << 20);
    uint64_t remaining = file_size - 4;
    while (remaining > 0) {
      size_t chunk = static_cast<size_t>(
          std::min<uint64_t>(remaining, buf.size()));
      in.read(buf.data(), static_cast<std::streamsize>(chunk));
      if (!in) return Status::IOError("index: read failed: " + path);
      crc = Crc32(buf.data(), chunk, crc);
      remaining -= chunk;
    }
    uint32_t stored_crc;
    char tail[4];
    in.read(tail, 4);
    if (!in) return Status::IOError("index: read failed: " + path);
    std::memcpy(&stored_crc, tail, 4);
    if (crc != stored_crc) {
      return Status::Corruption("index: checksum mismatch");
    }
  }

  // Parse the prefix (header + doc lengths + directory). The body is
  // read once here and released immediately after parsing — steady-state
  // memory holds only the directory, never the postings blob.
  // make_unique cannot reach the private constructor.
  std::unique_ptr<DiskIndex> index(
      new DiskIndex());  // NOLINT(cafe-no-naked-new)
  index_internal::IndexPrefix prefix;
  {
    const uint64_t body = file_size - 4;
    std::string data(body, '\0');
    in.clear();
    in.seekg(0, std::ios::beg);
    in.read(data.data(), static_cast<std::streamsize>(body));
    if (!in) return Status::IOError("index: read failed: " + path);
    CAFE_RETURN_IF_ERROR(index_internal::ParseIndexPrefix(data, &prefix));
  }

  index->options_ = prefix.options;
  index->doc_lengths_ = std::move(prefix.doc_lengths);
  index->directory_ = std::move(prefix.directory);
  index->stats_ = prefix.stats;
  index->blob_file_offset_ = prefix.blob_offset;
  index->blob_bytes_ = prefix.blob_bytes;
  index->path_ = path;
  index->cache_capacity_bytes_ = cache_capacity_bytes;

  // Per-term bit lengths from consecutive offsets.
  index->bit_lengths_.reserve(index->directory_.NumTerms());
  uint32_t prev_term = 0;
  uint64_t prev_offset = 0;
  bool have_prev = false;
  index->directory_.ForEachTerm([&](uint32_t term, const TermEntry& e) {
    if (have_prev) {
      index->bit_lengths_[prev_term] = e.bit_offset - prev_offset;
    }
    prev_term = term;
    prev_offset = e.bit_offset;
    have_prev = true;
  });
  if (have_prev) {
    index->bit_lengths_[prev_term] =
        index->blob_bytes_ * 8 - prev_offset;
  }

  {
    // The object is not yet published, but file_ is annotated
    // CAFE_GUARDED_BY(mu_) and the analysis checks factories unlike
    // constructors — an uncontended acquire here keeps the invariant
    // machine-checked end to end.
    MutexLock lock(&index->mu_);
    index->file_.open(path, std::ios::binary);
    if (!index->file_) {
      return Status::IOError("cannot reopen index file: " + path);
    }
  }
  return index;
}

Status DiskIndex::FetchTermBytes(
    uint32_t term, const TermEntry& entry,
    std::shared_ptr<std::vector<uint8_t>>* out,
    uint64_t* first_byte_out) const CAFE_REQUIRES(mu_) {
  auto it = cache_.find(term);
  if (it != cache_.end()) {
    cache_stats_.hits.fetch_add(1, std::memory_order_relaxed);
    if (metric_hits_ != nullptr) metric_hits_->Add(1);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    *out = it->second.bytes;
    *first_byte_out = it->second.first_byte;
    return Status::OK();
  }
  cache_stats_.misses.fetch_add(1, std::memory_order_relaxed);
  if (metric_misses_ != nullptr) metric_misses_->Add(1);

  auto len_it = bit_lengths_.find(term);
  if (len_it == bit_lengths_.end()) {
    return Status::Internal("disk index: missing bit length");
  }
  uint64_t first_byte = entry.bit_offset / 8;
  uint64_t end_byte = (entry.bit_offset + len_it->second + 7) / 8;
  if (end_byte > blob_bytes_) {
    return Status::Corruption("disk index: list range out of blob");
  }

  CacheEntry cache_entry;
  cache_entry.first_byte = first_byte;
  cache_entry.bytes =
      std::make_shared<std::vector<uint8_t>>(end_byte - first_byte);
  file_.clear();
  file_.seekg(
      static_cast<std::streamoff>(blob_file_offset_ + first_byte));
  // DiskIndex's documented design point: cache misses read from the
  // shared stream under mu_, trading scan concurrency for a bounded
  // heap (the header's "reentrancy contract"). MmapIndex is the
  // lock-free read path; this stays as the reference oracle.
  // NOLINTNEXTLINE(astcheck-lock-scope)
  file_.read(reinterpret_cast<char*>(cache_entry.bytes->data()),
             static_cast<std::streamsize>(cache_entry.bytes->size()));
  if (!file_) {
    return Status::IOError("disk index: postings read failed");
  }
  cache_stats_.bytes_read.fetch_add(cache_entry.bytes->size(),
                                    std::memory_order_relaxed);
  if (metric_bytes_read_ != nullptr) {
    metric_bytes_read_->Add(cache_entry.bytes->size());
  }

  // Insert and evict.
  cache_bytes_.fetch_add(cache_entry.bytes->size(),
                         std::memory_order_relaxed);
  lru_.push_front(term);
  cache_entry.lru_it = lru_.begin();
  *out = cache_entry.bytes;
  *first_byte_out = first_byte;
  cache_.emplace(term, std::move(cache_entry));
  while (cache_bytes_.load(std::memory_order_relaxed) >
             cache_capacity_bytes_ &&
         lru_.size() > 1) {
    uint32_t victim = lru_.back();
    lru_.pop_back();
    auto vit = cache_.find(victim);
    cache_bytes_.fetch_sub(vit->second.bytes->size(),
                           std::memory_order_relaxed);
    cache_.erase(vit);
    cache_stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    if (metric_evictions_ != nullptr) metric_evictions_->Add(1);
  }
  return Status::OK();
}

void DiskIndex::AttachMetrics(obs::MetricsRegistry* registry) {
  MutexLock lock(&mu_);
  if (registry == nullptr) {
    metric_hits_ = nullptr;
    metric_misses_ = nullptr;
    metric_evictions_ = nullptr;
    metric_bytes_read_ = nullptr;
    return;
  }
  metric_hits_ = registry->GetCounter("disk_index.cache_hits");
  metric_misses_ = registry->GetCounter("disk_index.cache_misses");
  metric_evictions_ = registry->GetCounter("disk_index.cache_evictions");
  metric_bytes_read_ = registry->GetCounter("disk_index.bytes_read");
}

void DiskIndex::ScanPostings(uint32_t term,
                             const PostingCallback& fn) const {
  const TermEntry* e = directory_.Find(term);
  if (e == nullptr) return;
  std::shared_ptr<std::vector<uint8_t>> bytes;
  uint64_t first_byte = 0;
  {
    MutexLock lock(&mu_);
    Status s = FetchTermBytes(term, *e, &bytes, &first_byte);
    if (!s.ok()) return;  // I/O failure: treat as no postings
                          // (CRC-checked at open, so this indicates a
                          // vanished file)
  }
  // Decode outside the lock: `bytes` is pinned by shared ownership even
  // if the entry gets evicted meanwhile, and the scratch is per-thread.
  CAFE_DCHECK_GE(e->bit_offset, first_byte * 8);
  uint64_t local_bit_offset = e->bit_offset - first_byte * 8;
  static thread_local std::vector<uint32_t> pos_buf;
  DecodePostings(bytes->data(), bytes->size(), local_bit_offset, *e,
                 num_docs(), options_.granularity, &pos_buf, fn);
}

uint64_t DiskIndex::MemoryBytes() const {
  return directory_.MemoryBytes() +
         cache_bytes_.load(std::memory_order_relaxed) +
         bit_lengths_.size() * 16;
}

}  // namespace cafe
