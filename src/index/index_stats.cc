// Human-readable index statistics reporting (used by the index_explorer
// example and the size experiments).

#include "index/index_stats.h"

#include <sstream>

#include "index/inverted_index.h"
#include "util/stringutil.h"

namespace cafe {

std::string FormatIndexStats(const InvertedIndex& index,
                             uint64_t collection_bases) {
  const IndexStats& s = index.stats();
  std::ostringstream out;
  out << "interval length     : " << index.options().interval_length << "\n";
  out << "stride              : " << index.options().stride << "\n";
  out << "granularity         : "
      << (index.options().granularity == IndexGranularity::kPositional
              ? "positional"
              : "document")
      << "\n";
  out << "sequences           : " << WithCommas(index.num_docs()) << "\n";
  out << "distinct terms      : " << WithCommas(s.num_terms) << "\n";
  out << "postings            : " << WithCommas(s.total_postings) << "\n";
  if (s.stopped_terms > 0) {
    out << "stopped terms       : " << WithCommas(s.stopped_terms) << "\n";
    out << "stopped postings    : " << WithCommas(s.stopped_postings) << "\n";
  }
  out << "postings blob       : " << HumanBytes(s.postings_bits / 8) << "\n";
  out << "bits per posting    : " << FormatDouble(s.bits_per_posting, 2)
      << "\n";
  uint64_t serialized = index.SerializedBytes();
  out << "serialized index    : " << HumanBytes(serialized) << "\n";
  if (collection_bases > 0) {
    double pct = 100.0 * static_cast<double>(serialized) /
                 static_cast<double>(collection_bases);
    out << "index / database    : " << FormatDouble(pct, 1)
        << "% of one byte per base\n";
  }
  return out.str();
}

}  // namespace cafe
