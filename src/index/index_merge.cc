#include "index/index_merge.h"

#include <algorithm>
#include <map>

#include "collection/collection.h"
#include "index/index_metrics.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cafe {

Result<InvertedIndex> MergeIndexes(
    const std::vector<const InvertedIndex*>& shards,
    const std::vector<uint32_t>& doc_offsets) {
  if (shards.empty() || shards.size() != doc_offsets.size()) {
    return Status::InvalidArgument(
        "need at least one shard and matching doc_offsets");
  }
  IndexOptions options = shards[0]->options();
  if (options.stop_doc_fraction < 1.0) {
    return Status::InvalidArgument(
        "stopped shards cannot be merged (stopping is a whole-collection "
        "decision)");
  }
  uint64_t total_docs = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    const IndexOptions& o = shards[i]->options();
    // Granularity may differ across parts: a positional shard carries a
    // superset of the document-level information, so a mixed set merges
    // at the weaker (document) granularity. Everything that shapes the
    // term space itself must still agree exactly.
    if (o.interval_length != options.interval_length ||
        o.stride != options.stride ||
        o.spaced_seed != options.spaced_seed ||
        o.stop_doc_fraction != options.stop_doc_fraction) {
      return Status::InvalidArgument("shard options differ");
    }
    if (o.granularity == IndexGranularity::kDocument) {
      options.granularity = IndexGranularity::kDocument;
    }
    if (doc_offsets[i] != total_docs) {
      return Status::InvalidArgument(
          "doc_offsets must be the cumulative shard sizes");
    }
    total_docs += shards[i]->num_docs();
  }
  if (total_docs > 0xFFFFFFFFull) {
    return Status::InvalidArgument("merged collection too large");
  }

  InvertedIndex merged;
  merged.options_ = options;
  merged.directory_ = TermDirectory(options.interval_length);
  merged.doc_lengths_.reserve(total_docs);
  for (const InvertedIndex* shard : shards) {
    merged.doc_lengths_.insert(merged.doc_lengths_.end(),
                               shard->doc_lengths().begin(),
                               shard->doc_lengths().end());
  }

  // Union of terms -> which shards hold postings for each.
  std::map<uint32_t, std::vector<uint32_t>> term_shards;
  for (uint32_t si = 0; si < shards.size(); ++si) {
    shards[si]->directory().ForEachTerm(
        [&](uint32_t term, const TermEntry&) {
          term_shards[term].push_back(si);
        });
  }

  const bool positional =
      options.granularity == IndexGranularity::kPositional;
  BitWriter writer;
  uint64_t total_postings = 0;
  std::vector<uint32_t> docs, positions;
  for (const auto& [term, shard_ids] : term_shards) {
    docs.clear();
    positions.clear();
    for (uint32_t si : shard_ids) {
      uint32_t offset = doc_offsets[si];
      shards[si]->ForEachPosting(
          term, [&](uint32_t doc, uint32_t tf, const uint32_t* pos,
                    uint32_t npos) {
            if (positional) {
              // Merged granularity is positional only when every shard
              // is, so `pos` is always available here.
              for (uint32_t k = 0; k < npos; ++k) {
                docs.push_back(offset + doc);
                positions.push_back(pos[k]);
              }
            } else {
              // Document granularity: keep one entry per occurrence so
              // the re-encoder reconstructs tf from run lengths. A
              // positional shard merging into a document-level index
              // contributes tf occurrences and drops its offsets.
              for (uint32_t k = 0; k < tf; ++k) {
                docs.push_back(offset + doc);
              }
            }
          });
    }

    // Every term in the union came from at least one shard directory, so
    // its gathered postings cannot be empty, and positional runs must
    // stay aligned with their document ids.
    CAFE_CHECK(!docs.empty()) << "term " << term << " lost its postings";
    if (positional) CAFE_CHECK_EQ(docs.size(), positions.size());

    TermEntry* e = merged.directory_.FindOrCreate(term);
    e->bit_offset = writer.bit_count();
    e->posting_count = static_cast<uint32_t>(docs.size());
    uint32_t param = 1;
    e->doc_count = EncodePostings(
        docs.data(), positional ? positions.data() : nullptr, docs.size(),
        static_cast<uint32_t>(total_docs), options.granularity, &writer,
        &param);
    e->position_param = param;
    total_postings += docs.size();
  }
  merged.blob_ = writer.Finish();

  merged.stats_.num_terms = merged.directory_.NumTerms();
  merged.stats_.total_postings = total_postings;
  merged.stats_.postings_bits = merged.blob_.size() * 8;
  merged.stats_.directory_bytes = merged.directory_.MemoryBytes();
  merged.stats_.bits_per_posting =
      total_postings == 0 ? 0.0
                          : static_cast<double>(merged.stats_.postings_bits) /
                                static_cast<double>(total_postings);
  return merged;
}

Result<InvertedIndex> BuildSharded(const SequenceCollection& collection,
                                   const IndexOptions& options,
                                   uint32_t docs_per_shard,
                                   unsigned threads) {
  WallTimer timer;
  if (docs_per_shard == 0) {
    return Status::InvalidArgument("docs_per_shard must be positive");
  }
  if (options.stop_doc_fraction < 1.0) {
    return Status::InvalidArgument(
        "sharded builds do not support index stopping");
  }
  const uint32_t num_docs = collection.NumSequences();
  if (num_docs == 0) {
    return Status::InvalidArgument("cannot index an empty collection");
  }

  const size_t num_shards =
      (num_docs + docs_per_shard - 1) / docs_per_shard;
  std::vector<InvertedIndex> shards(num_shards);
  std::vector<uint32_t> offsets(num_shards);
  std::vector<Status> errors(num_shards, Status::OK());
  for (size_t s = 0; s < num_shards; ++s) {
    offsets[s] = static_cast<uint32_t>(s) * docs_per_shard;
  }

  // Shards cover disjoint document ranges, so their builds (the
  // per-sequence interval extraction) are independent; the merge below
  // stays sequential and term-ordered, so the merged index is identical
  // in content no matter how many workers built the shards.
  if (threads == 0) threads = ThreadPool::HardwareThreads();
  auto build_shard = [&](size_t s) {
    uint32_t begin = offsets[s];
    uint32_t end = std::min(num_docs, begin + docs_per_shard);
    Result<InvertedIndex> shard =
        IndexBuilder::BuildRange(collection, options, begin, end);
    if (shard.ok()) {
      shards[s] = std::move(*shard);
    } else {
      errors[s] = shard.status();
    }
  };
  if (threads > 1 && num_shards > 1) {
    ThreadPool pool(static_cast<unsigned>(
        std::min<size_t>(threads, num_shards)));
    pool.ParallelFor(num_shards,
                     [&](size_t s, unsigned /*worker*/) { build_shard(s); });
  } else {
    for (size_t s = 0; s < num_shards; ++s) build_shard(s);
  }
  for (const Status& s : errors) {
    if (!s.ok()) return s;
  }

  std::vector<const InvertedIndex*> shard_ptrs;
  shard_ptrs.reserve(shards.size());
  for (const InvertedIndex& s : shards) shard_ptrs.push_back(&s);
  Result<InvertedIndex> merged = MergeIndexes(shard_ptrs, offsets);
  // BuildRange does not record (shards are an implementation detail);
  // the sharded build counts as one user-visible build here.
  if (merged.ok()) {
    RecordIndexBuildMetrics(options.metrics, (*merged).stats(),
                            (*merged).num_docs(), timer.Micros());
  }
  return merged;
}

Result<InvertedIndex> IndexBuilder::BuildParallel(
    const SequenceCollection& collection, const IndexOptions& options,
    unsigned threads) {
  CAFE_RETURN_IF_ERROR(options.Validate());
  if (threads == 0) threads = ThreadPool::HardwareThreads();
  const uint32_t num_docs = collection.NumSequences();
  // Stopping is a whole-collection decision, so stopped indexes must be
  // built directly; tiny collections are not worth the shard overhead.
  if (threads <= 1 || options.stop_doc_fraction < 1.0 ||
      num_docs < 2 * threads) {
    return Build(collection, options);
  }
  const uint32_t docs_per_shard = (num_docs + threads - 1) / threads;
  return BuildSharded(collection, options, docs_per_shard, threads);
}

}  // namespace cafe
