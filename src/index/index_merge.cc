#include "index/index_merge.h"

#include <map>

#include "collection/collection.h"

namespace cafe {

Result<InvertedIndex> MergeIndexes(
    const std::vector<const InvertedIndex*>& shards,
    const std::vector<uint32_t>& doc_offsets) {
  if (shards.empty() || shards.size() != doc_offsets.size()) {
    return Status::InvalidArgument(
        "need at least one shard and matching doc_offsets");
  }
  const IndexOptions& options = shards[0]->options();
  if (options.stop_doc_fraction < 1.0) {
    return Status::InvalidArgument(
        "stopped shards cannot be merged (stopping is a whole-collection "
        "decision)");
  }
  uint64_t total_docs = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    const IndexOptions& o = shards[i]->options();
    if (o.interval_length != options.interval_length ||
        o.stride != options.stride ||
        o.granularity != options.granularity ||
        o.stop_doc_fraction != options.stop_doc_fraction) {
      return Status::InvalidArgument("shard options differ");
    }
    if (doc_offsets[i] != total_docs) {
      return Status::InvalidArgument(
          "doc_offsets must be the cumulative shard sizes");
    }
    total_docs += shards[i]->num_docs();
  }
  if (total_docs > 0xFFFFFFFFull) {
    return Status::InvalidArgument("merged collection too large");
  }

  InvertedIndex merged;
  merged.options_ = options;
  merged.directory_ = TermDirectory(options.interval_length);
  merged.doc_lengths_.reserve(total_docs);
  for (const InvertedIndex* shard : shards) {
    merged.doc_lengths_.insert(merged.doc_lengths_.end(),
                               shard->doc_lengths().begin(),
                               shard->doc_lengths().end());
  }

  // Union of terms -> which shards hold postings for each.
  std::map<uint32_t, std::vector<uint32_t>> term_shards;
  for (uint32_t si = 0; si < shards.size(); ++si) {
    shards[si]->directory().ForEachTerm(
        [&](uint32_t term, const TermEntry&) {
          term_shards[term].push_back(si);
        });
  }

  const bool positional =
      options.granularity == IndexGranularity::kPositional;
  BitWriter writer;
  uint64_t total_postings = 0;
  std::vector<uint32_t> docs, positions;
  for (const auto& [term, shard_ids] : term_shards) {
    docs.clear();
    positions.clear();
    for (uint32_t si : shard_ids) {
      uint32_t offset = doc_offsets[si];
      shards[si]->ForEachPosting(
          term, [&](uint32_t doc, uint32_t tf, const uint32_t* pos,
                    uint32_t npos) {
            (void)tf;
            if (positional) {
              for (uint32_t k = 0; k < npos; ++k) {
                docs.push_back(offset + doc);
                positions.push_back(pos[k]);
              }
            } else {
              // Document granularity: keep one entry per occurrence so
              // the re-encoder reconstructs tf from run lengths.
              for (uint32_t k = 0; k < tf; ++k) {
                docs.push_back(offset + doc);
              }
            }
          });
    }

    TermEntry* e = merged.directory_.FindOrCreate(term);
    e->bit_offset = writer.bit_count();
    e->posting_count = static_cast<uint32_t>(docs.size());
    uint32_t param = 1;
    e->doc_count = EncodePostings(
        docs.data(), positional ? positions.data() : nullptr, docs.size(),
        static_cast<uint32_t>(total_docs), options.granularity, &writer,
        &param);
    e->position_param = param;
    total_postings += docs.size();
  }
  merged.blob_ = writer.Finish();

  merged.stats_.num_terms = merged.directory_.NumTerms();
  merged.stats_.total_postings = total_postings;
  merged.stats_.postings_bits = merged.blob_.size() * 8;
  merged.stats_.directory_bytes = merged.directory_.MemoryBytes();
  merged.stats_.bits_per_posting =
      total_postings == 0 ? 0.0
                          : static_cast<double>(merged.stats_.postings_bits) /
                                static_cast<double>(total_postings);
  return merged;
}

Result<InvertedIndex> BuildSharded(const SequenceCollection& collection,
                                   const IndexOptions& options,
                                   uint32_t docs_per_shard) {
  if (docs_per_shard == 0) {
    return Status::InvalidArgument("docs_per_shard must be positive");
  }
  if (options.stop_doc_fraction < 1.0) {
    return Status::InvalidArgument(
        "sharded builds do not support index stopping");
  }
  const uint32_t num_docs = collection.NumSequences();
  if (num_docs == 0) {
    return Status::InvalidArgument("cannot index an empty collection");
  }

  std::vector<InvertedIndex> shards;
  std::vector<uint32_t> offsets;
  for (uint32_t begin = 0; begin < num_docs; begin += docs_per_shard) {
    uint32_t end = std::min(num_docs, begin + docs_per_shard);
    Result<InvertedIndex> shard =
        IndexBuilder::BuildRange(collection, options, begin, end);
    if (!shard.ok()) return shard.status();
    offsets.push_back(begin);
    shards.push_back(std::move(*shard));
  }

  std::vector<const InvertedIndex*> shard_ptrs;
  shard_ptrs.reserve(shards.size());
  for (const InvertedIndex& s : shards) shard_ptrs.push_back(&s);
  return MergeIndexes(shard_ptrs, offsets);
}

}  // namespace cafe
