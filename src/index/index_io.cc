// On-disk format of the inverted index.
//
//   magic "CAFIDX1\0" (contiguous seeds) or "CAFIDX2\0" (spaced seeds)
//   u8  interval_length, u8 granularity, u32 stride, f64 stop_doc_fraction
//   [v2 only] u8 seed_span, seed_span bytes of '0'/'1' pattern
//   vbyte num_docs+1, vbyte(doc length + 1) per doc
//   vbyte num_terms+1
//   per term, in ascending term order:
//     vbyte(term gap)            first entry stores term+1
//     vbyte(doc_count)
//     vbyte(posting_count)
//     vbyte(position_param)
//     vbyte(bit offset gap + 1)  offsets are non-decreasing
//   vbyte blob_bytes+1, blob
//   u32 CRC-32 of everything above

#include <cstring>

#include "coding/vbyte.h"
#include "index/index_format.h"
#include "index/interval.h"
#include "index/inverted_index.h"
#include "util/crc32.h"
#include "util/env.h"

namespace cafe {
namespace {

// Version 1 has no spaced-seed header field; indexes built without a
// pattern still serialize as v1 byte-for-byte, so every pre-existing
// index (and tool that compares default index files) is unaffected.
constexpr char kMagicV1[8] = {'C', 'A', 'F', 'I', 'D', 'X', '1', '\0'};
constexpr char kMagicV2[8] = {'C', 'A', 'F', 'I', 'D', 'X', '2', '\0'};

void AppendVByteStr(std::string* out, uint64_t v) {
  std::vector<uint8_t> tmp;
  coding::AppendVByte(&tmp, v);
  out->append(reinterpret_cast<const char*>(tmp.data()), tmp.size());
}

class Parser {
 public:
  explicit Parser(std::string_view data) : data_(data) {}

  uint64_t ReadVByte() {
    if (pos_ >= data_.size()) {
      failed_ = true;
      return 1;
    }
    return coding::ReadVByte(
        reinterpret_cast<const uint8_t*>(data_.data()), data_.size(), &pos_);
  }

  bool ReadRaw(void* dst, size_t n) {
    if (pos_ + n > data_.size()) {
      failed_ = true;
      return false;
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  size_t pos() const { return pos_; }
  bool failed() const { return failed_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

namespace index_internal {

Status ParseIndexPrefix(std::string_view data, IndexPrefix* out) {
  if (data.size() < 8 + 14) {
    return Status::Corruption("index: too short");
  }
  const bool v2 = std::memcmp(data.data(), kMagicV2, 8) == 0;
  if (!v2 && std::memcmp(data.data(), kMagicV1, 8) != 0) {
    return Status::Corruption("index: bad magic");
  }

  Parser p(data.substr(8));
  IndexOptions options;
  uint8_t n8 = 0, g8 = 0;
  if (!p.ReadRaw(&n8, 1) || !p.ReadRaw(&g8, 1)) {
    return Status::Corruption("index: truncated header");
  }
  options.interval_length = n8;
  if (g8 > 1) return Status::Corruption("index: bad granularity");
  options.granularity = static_cast<IndexGranularity>(g8);
  uint32_t stride;
  double stop;
  if (!p.ReadRaw(&stride, 4) || !p.ReadRaw(&stop, 8)) {
    return Status::Corruption("index: truncated header");
  }
  options.stride = stride;
  options.stop_doc_fraction = stop;
  if (v2) {
    uint8_t span = 0;
    if (!p.ReadRaw(&span, 1)) {
      return Status::Corruption("index: truncated header");
    }
    if (span > 0) {
      options.spaced_seed.resize(span);
      if (!p.ReadRaw(options.spaced_seed.data(), span)) {
        return Status::Corruption("index: truncated seed pattern");
      }
    }
  }
  CAFE_RETURN_IF_ERROR(options.Validate());
  out->options = options;

  uint64_t num_docs = p.ReadVByte() - 1;
  // Each document length costs at least one byte; bound before resizing.
  if (num_docs > data.size()) {
    return Status::Corruption("index: document count too large");
  }
  out->doc_lengths.resize(num_docs);
  for (uint64_t i = 0; i < num_docs; ++i) {
    out->doc_lengths[i] = static_cast<uint32_t>(p.ReadVByte() - 1);
  }

  out->directory = TermDirectory(options.interval_length);
  uint64_t num_terms = p.ReadVByte() - 1;
  if (num_terms > data.size()) {
    return Status::Corruption("index: term count too large");
  }
  uint64_t term = 0;
  uint64_t offset = 0;
  uint64_t total_postings = 0;
  for (uint64_t i = 0; i < num_terms; ++i) {
    uint64_t gap = p.ReadVByte();
    term = (i == 0) ? gap - 1 : term + gap;
    if (term >= VocabularyUniverse(options.interval_length)) {
      return Status::Corruption("index: term out of range");
    }
    TermEntry* e = out->directory.FindOrCreate(static_cast<uint32_t>(term));
    e->doc_count = static_cast<uint32_t>(p.ReadVByte());
    e->posting_count = static_cast<uint32_t>(p.ReadVByte());
    e->position_param = static_cast<uint32_t>(p.ReadVByte());
    offset += p.ReadVByte() - 1;
    e->bit_offset = offset;
    if (e->doc_count == 0 || e->posting_count < e->doc_count ||
        e->position_param == 0) {
      return Status::Corruption("index: bad term entry");
    }
    total_postings += e->posting_count;
  }

  uint64_t blob_bytes = p.ReadVByte() - 1;
  if (p.failed()) return Status::Corruption("index: truncated directory");
  if (8 + p.pos() + blob_bytes != data.size()) {
    return Status::Corruption("index: blob size mismatch");
  }
  out->blob_offset = 8 + p.pos();
  out->blob_bytes = blob_bytes;

  out->stats = IndexStats{};
  out->stats.num_terms = num_terms;
  out->stats.total_postings = total_postings;
  out->stats.postings_bits = blob_bytes * 8;
  out->stats.directory_bytes = out->directory.MemoryBytes();
  out->stats.bits_per_posting =
      total_postings == 0 ? 0.0
                          : static_cast<double>(blob_bytes * 8) /
                                static_cast<double>(total_postings);
  return Status::OK();
}

}  // namespace index_internal

void InvertedIndex::Serialize(std::string* out) const {
  out->clear();
  const bool v2 = !options_.spaced_seed.empty();
  out->append(v2 ? kMagicV2 : kMagicV1, 8);
  out->push_back(static_cast<char>(options_.interval_length));
  out->push_back(static_cast<char>(options_.granularity));
  uint32_t stride = options_.stride;
  out->append(reinterpret_cast<const char*>(&stride), 4);
  double stop = options_.stop_doc_fraction;
  out->append(reinterpret_cast<const char*>(&stop), 8);
  if (v2) {
    out->push_back(static_cast<char>(options_.spaced_seed.size()));
    out->append(options_.spaced_seed);
  }

  AppendVByteStr(out, doc_lengths_.size() + 1);
  for (uint32_t len : doc_lengths_) AppendVByteStr(out, uint64_t{len} + 1);

  AppendVByteStr(out, directory_.NumTerms() + 1);
  uint64_t prev_term = 0;
  uint64_t prev_offset = 0;
  bool first = true;
  directory_.ForEachTerm([&](uint32_t term, const TermEntry& e) {
    AppendVByteStr(out, first ? uint64_t{term} + 1 : term - prev_term);
    AppendVByteStr(out, e.doc_count);
    AppendVByteStr(out, e.posting_count);
    AppendVByteStr(out, e.position_param);
    AppendVByteStr(out, e.bit_offset - prev_offset + 1);
    prev_term = term;
    prev_offset = e.bit_offset;
    first = false;
  });

  AppendVByteStr(out, blob_.size() + 1);
  out->append(reinterpret_cast<const char*>(blob_.data()), blob_.size());

  uint32_t crc = Crc32(out->data(), out->size());
  char buf[4];
  std::memcpy(buf, &crc, 4);
  out->append(buf, 4);

  // Cache the serialized size for SerializedBytes().
  serialized_bytes_cache_ = out->size();
}

uint64_t InvertedIndex::SerializedBytes() const {
  if (serialized_bytes_cache_ == 0) {
    std::string tmp;
    Serialize(&tmp);
  }
  return serialized_bytes_cache_;
}

Result<InvertedIndex> InvertedIndex::Deserialize(std::string_view data) {
  if (data.size() < 8 + 14 + 4) {
    return Status::Corruption("index: too short");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, data.data() + data.size() - 4, 4);
  if (Crc32(data.data(), data.size() - 4) != stored_crc) {
    return Status::Corruption("index: checksum mismatch");
  }
  data = data.substr(0, data.size() - 4);

  index_internal::IndexPrefix prefix;
  CAFE_RETURN_IF_ERROR(index_internal::ParseIndexPrefix(data, &prefix));

  InvertedIndex index;
  index.options_ = prefix.options;
  index.doc_lengths_ = std::move(prefix.doc_lengths);
  index.directory_ = std::move(prefix.directory);
  index.stats_ = prefix.stats;
  const uint8_t* blob =
      reinterpret_cast<const uint8_t*>(data.data() + prefix.blob_offset);
  index.blob_.assign(blob, blob + prefix.blob_bytes);
  return index;
}

Status InvertedIndex::Save(const std::string& path) const {
  std::string data;
  Serialize(&data);
  return WriteStringToFile(path, data);
}

Result<InvertedIndex> InvertedIndex::Load(const std::string& path) {
  std::string data;
  Status s = ReadFileToString(path, &data);
  if (!s.ok()) return s;
  return Deserialize(data);
}

}  // namespace cafe
