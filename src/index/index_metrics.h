// Recording helper bridging index builds to the observability layer.
//
// Kept out of inverted_index.h so that header only needs a forward
// declaration of obs::MetricsRegistry; the .cc files that actually
// record (index_builder.cc, index_merge.cc) include this.

#ifndef CAFE_INDEX_INDEX_METRICS_H_
#define CAFE_INDEX_INDEX_METRICS_H_

#include <cstdint>

#include "index/inverted_index.h"
#include "obs/metrics.h"

namespace cafe {

/// Records one completed index build into `registry` (no-op when null).
/// Call exactly once per top-level build so `index_build.builds` counts
/// user-visible builds, not internal shards.
inline void RecordIndexBuildMetrics(obs::MetricsRegistry* registry,
                                    const IndexStats& stats,
                                    uint64_t num_docs, double micros) {
  if (registry == nullptr) return;
  registry->GetCounter("index_build.builds")->Add(1);
  registry->GetCounter("index_build.docs_indexed")->Add(num_docs);
  registry->GetCounter("index_build.terms_indexed")->Add(stats.num_terms);
  registry->GetCounter("index_build.postings_indexed")
      ->Add(stats.total_postings);
  registry->GetCounter("index_build.terms_stopped")
      ->Add(stats.stopped_terms);
  registry->GetCounter("index_build.postings_stopped")
      ->Add(stats.stopped_postings);
  registry->GetHistogram("index_build.build_micros")
      ->Record(micros <= 0.0 ? 0 : static_cast<uint64_t>(micros));
}

}  // namespace cafe

#endif  // CAFE_INDEX_INDEX_METRICS_H_
