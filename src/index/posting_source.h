// PostingSource: the interface the coarse search phase consumes.
//
// Three implementations exist: InvertedIndex (everything resident in
// memory), DiskIndex (directory in memory, postings read from disk on
// demand with a mutexed LRU cache — the cached reference path), and
// MmapIndex (directory in memory, postings decoded zero-copy out of a
// read-only mapping, no lock) — the configuration the CAFE system
// actually shipped, where the index is much larger than main memory
// and "index-based approaches do not rely on the entire collection
// fitting into main memory". Tools select between them with
// --index-mode=memory|cached|mmap.

#ifndef CAFE_INDEX_POSTING_SOURCE_H_
#define CAFE_INDEX_POSTING_SOURCE_H_

#include <cstdint>
#include <functional>

#include "index/postings.h"
#include "index/vocabulary.h"

namespace cafe {

struct IndexOptions;

/// Callback invoked once per posting entry:
/// (doc, tf, positions, npos); positions is nullptr at document
/// granularity.
using PostingCallback =
    std::function<void(uint32_t, uint32_t, const uint32_t*, uint32_t)>;

class PostingSource {
 public:
  virtual ~PostingSource() = default;

  virtual const IndexOptions& options() const = 0;
  virtual uint32_t num_docs() const = 0;

  /// Directory entry for `term`; nullptr if unindexed.
  virtual const TermEntry* FindTerm(uint32_t term) const = 0;

  /// Streams the postings of `term` through `fn`; no-op for unindexed
  /// terms. Implementations must be safe for concurrent calls from
  /// multiple search threads — the parallel query layer (BatchSearch)
  /// issues coarse-phase scans from every worker. InvertedIndex and
  /// MmapIndex decode with thread-local scratch over immutable bytes
  /// (no lock anywhere); DiskIndex serializes its file reads and cache
  /// updates behind a mutex and decodes outside the lock.
  virtual void ScanPostings(uint32_t term, const PostingCallback& fn)
      const = 0;
};

}  // namespace cafe

#endif  // CAFE_INDEX_POSTING_SOURCE_H_
