#include "server/protocol.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "util/crc32.h"

namespace cafe::server {
namespace {

// --- Little-endian byte packing ------------------------------------
// The postings codecs (coding/) are bit-level; the wire wants plain
// byte-aligned little-endian, so the helpers live here.

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

// Bounds-checked cursor over an untrusted payload. Every getter fails
// with Corruption instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  [[nodiscard]] Status GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return Short();
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  [[nodiscard]] Status GetU16(uint16_t* v) {
    uint8_t lo = 0, hi = 0;
    CAFE_RETURN_IF_ERROR(GetU8(&lo));
    CAFE_RETURN_IF_ERROR(GetU8(&hi));
    *v = static_cast<uint16_t>(lo | (hi << 8));
    return Status::OK();
  }

  [[nodiscard]] Status GetU32(uint32_t* v) {
    uint16_t lo = 0, hi = 0;
    CAFE_RETURN_IF_ERROR(GetU16(&lo));
    CAFE_RETURN_IF_ERROR(GetU16(&hi));
    *v = static_cast<uint32_t>(lo) | (static_cast<uint32_t>(hi) << 16);
    return Status::OK();
  }

  [[nodiscard]] Status GetU64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    CAFE_RETURN_IF_ERROR(GetU32(&lo));
    CAFE_RETURN_IF_ERROR(GetU32(&hi));
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return Status::OK();
  }

  [[nodiscard]] Status GetDouble(double* v) {
    uint64_t bits = 0;
    CAFE_RETURN_IF_ERROR(GetU64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }

  [[nodiscard]] Status GetString(std::string* s) {
    uint32_t size = 0;
    CAFE_RETURN_IF_ERROR(GetU32(&size));
    if (size > data_.size() - pos_) return Short();
    s->assign(data_.data() + pos_, size);
    pos_ += size;
    return Status::OK();
  }

  /// Trailing bytes after a complete decode are themselves corruption —
  /// a well-formed peer never pads.
  [[nodiscard]] Status ExpectDone() const {
    if (pos_ != data_.size()) {
      return Status::Corruption("trailing bytes after payload");
    }
    return Status::OK();
  }

  /// True when every payload byte has been consumed — the v1 shape of
  /// a payload whose newer fields are trailing additions.
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  static Status Short() {
    return Status::Corruption("payload truncated");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// --- EINTR-safe socket I/O -----------------------------------------
// send() with MSG_NOSIGNAL so a peer that hung up yields EPIPE -> Status
// instead of killing the process with SIGPIPE.

Status SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes. `*eof_ok` in: whether a clean EOF before
/// the first byte is acceptable; out: whether that clean EOF happened.
Status RecvAll(int fd, char* data, size_t size, bool* eof_ok) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && eof_ok != nullptr && *eof_ok) return Status::OK();
      return Status::IOError("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  if (eof_ok != nullptr) *eof_ok = false;
  return Status::OK();
}

}  // namespace

SearchOptions SearchRequest::ToSearchOptions() const {
  SearchOptions options;
  options.max_results = max_results;
  options.fine_candidates = fine_candidates;
  options.band = band;
  options.frame_width = frame_width;
  options.min_score = min_score;
  options.coarse_mode =
      diagonal_mode ? CoarseRankMode::kDiagonal : CoarseRankMode::kHitCount;
  options.search_both_strands = both_strands;
  options.rescore_full = rescore_full;
  return options;
}

std::string SearchRequest::OptionsKey() const {
  std::string key;
  PutU32(&key, max_results);
  PutU32(&key, fine_candidates);
  PutU32(&key, static_cast<uint32_t>(band));
  PutU32(&key, frame_width);
  PutU32(&key, static_cast<uint32_t>(min_score));
  PutU8(&key, static_cast<uint8_t>(diagonal_mode));
  PutU8(&key, static_cast<uint8_t>(both_strands));
  PutU8(&key, static_cast<uint8_t>(rescore_full));
  return key;
}

std::string EncodeHello(const Hello& hello) {
  std::string out;
  PutString(&out, hello.server_version);
  return out;
}

Status DecodeHello(std::string_view payload, Hello* out) {
  ByteReader r(payload);
  CAFE_RETURN_IF_ERROR(r.GetString(&out->server_version));
  return r.ExpectDone();
}

std::string EncodeSearchRequest(const SearchRequest& request) {
  std::string out;
  PutU32(&out, request.max_results);
  PutU32(&out, request.fine_candidates);
  PutU32(&out, static_cast<uint32_t>(request.band));
  PutU32(&out, request.frame_width);
  PutU32(&out, static_cast<uint32_t>(request.min_score));
  PutU8(&out, static_cast<uint8_t>(request.diagonal_mode));
  PutU8(&out, static_cast<uint8_t>(request.both_strands));
  PutU8(&out, static_cast<uint8_t>(request.rescore_full));
  PutU32(&out, request.deadline_millis);
  PutString(&out, request.query);
  PutU64(&out, request.trace_id);  // v2 trailing field
  return out;
}

Status DecodeSearchRequest(std::string_view payload, SearchRequest* out) {
  ByteReader r(payload);
  uint8_t diagonal = 0, both = 0, rescore = 0;
  uint32_t band = 0, min_score = 0;
  CAFE_RETURN_IF_ERROR(r.GetU32(&out->max_results));
  CAFE_RETURN_IF_ERROR(r.GetU32(&out->fine_candidates));
  CAFE_RETURN_IF_ERROR(r.GetU32(&band));
  CAFE_RETURN_IF_ERROR(r.GetU32(&out->frame_width));
  CAFE_RETURN_IF_ERROR(r.GetU32(&min_score));
  CAFE_RETURN_IF_ERROR(r.GetU8(&diagonal));
  CAFE_RETURN_IF_ERROR(r.GetU8(&both));
  CAFE_RETURN_IF_ERROR(r.GetU8(&rescore));
  CAFE_RETURN_IF_ERROR(r.GetU32(&out->deadline_millis));
  CAFE_RETURN_IF_ERROR(r.GetString(&out->query));
  // v2 appended the trace id; a v1 payload ends at the query.
  out->trace_id = 0;
  if (!r.AtEnd()) {
    CAFE_RETURN_IF_ERROR(r.GetU64(&out->trace_id));
  }
  CAFE_RETURN_IF_ERROR(r.ExpectDone());
  out->band = static_cast<int32_t>(band);
  out->min_score = static_cast<int32_t>(min_score);
  if (diagonal > 1 || both > 1 || rescore > 1) {
    return Status::Corruption("search request: flag byte out of range");
  }
  out->diagonal_mode = diagonal != 0;
  out->both_strands = both != 0;
  out->rescore_full = rescore != 0;
  return Status::OK();
}

std::string EncodeSearchResponse(const SearchResponse& response) {
  std::string out;
  PutU8(&out, StatusCodeToWire(response.status));
  PutString(&out, response.status.message());
  PutU8(&out, static_cast<uint8_t>(response.truncated));
  PutU32(&out, static_cast<uint32_t>(response.hits.size()));
  for (const SearchHit& hit : response.hits) {
    PutU32(&out, hit.seq_id);
    PutU32(&out, static_cast<uint32_t>(hit.score));
    PutDouble(&out, hit.coarse_score);
    PutU8(&out, hit.strand == Strand::kReverse ? 1 : 0);
  }
  PutU64(&out, response.trace_id);  // v2 trailing field
  PutU8(&out, static_cast<uint8_t>(response.sampled));  // v3 trailing field
  return out;
}

Status DecodeSearchResponse(std::string_view payload, SearchResponse* out) {
  ByteReader r(payload);
  uint8_t code = 0, truncated = 0;
  std::string message;
  uint32_t hit_count = 0;
  CAFE_RETURN_IF_ERROR(r.GetU8(&code));
  CAFE_RETURN_IF_ERROR(r.GetString(&message));
  CAFE_RETURN_IF_ERROR(r.GetU8(&truncated));
  CAFE_RETURN_IF_ERROR(r.GetU32(&hit_count));
  if (truncated > 1) {
    return Status::Corruption("search response: flag byte out of range");
  }
  // 17 bytes per hit (u32 + u32 + double + u8); the count cannot
  // promise more than the payload holds, so a hostile count never
  // triggers a giant reserve.
  if (hit_count > payload.size() / 17) {
    return Status::Corruption("search response: hit count exceeds payload");
  }
  out->status = StatusFromWire(code, std::move(message));
  out->truncated = truncated != 0;
  out->hits.clear();
  out->hits.reserve(hit_count);
  for (uint32_t i = 0; i < hit_count; ++i) {
    SearchHit hit;
    uint32_t score = 0;
    uint8_t strand = 0;
    CAFE_RETURN_IF_ERROR(r.GetU32(&hit.seq_id));
    CAFE_RETURN_IF_ERROR(r.GetU32(&score));
    CAFE_RETURN_IF_ERROR(r.GetDouble(&hit.coarse_score));
    CAFE_RETURN_IF_ERROR(r.GetU8(&strand));
    if (strand > 1) {
      return Status::Corruption("search response: strand out of range");
    }
    hit.score = static_cast<int32_t>(score);
    hit.strand = strand == 1 ? Strand::kReverse : Strand::kForward;
    out->hits.push_back(std::move(hit));
  }
  // v2 appended the trace id; a v1 payload ends with the last hit.
  out->trace_id = 0;
  if (!r.AtEnd()) {
    CAFE_RETURN_IF_ERROR(r.GetU64(&out->trace_id));
  }
  // v3 appended the sampled flag; a v2 payload ends with the trace id.
  out->sampled = false;
  if (!r.AtEnd()) {
    uint8_t sampled = 0;
    CAFE_RETURN_IF_ERROR(r.GetU8(&sampled));
    if (sampled > 1) {
      return Status::Corruption("search response: sampled out of range");
    }
    out->sampled = sampled != 0;
  }
  return r.ExpectDone();
}

uint8_t StatusCodeToWire(const Status& status) {
  return static_cast<uint8_t>(status.code());
}

Status StatusFromWire(uint8_t code, std::string message) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(message));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(message));
    case Status::Code::kIOError:
      return Status::IOError(std::move(message));
    case Status::Code::kNotSupported:
      return Status::NotSupported(std::move(message));
    case Status::Code::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case Status::Code::kInternal:
      return Status::Internal(std::move(message));
    case Status::Code::kOverloaded:
      return Status::Overloaded(std::move(message));
  }
  return Status::Internal("unknown wire status code " +
                          std::to_string(code) + ": " + message);
}

Status WriteFrame(int fd, FrameType type, std::string_view payload,
                  uint16_t version) {
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload exceeds kMaxPayloadBytes");
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, kFrameMagic);
  PutU16(&frame, version);
  PutU16(&frame, static_cast<uint16_t>(type));
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload.data(), payload.size());
  return SendAll(fd, frame.data(), frame.size());
}

Status ReadFrame(int fd, FrameType* type, std::string* payload) {
  char header[kFrameHeaderBytes];
  bool clean_eof = true;
  CAFE_RETURN_IF_ERROR(RecvAll(fd, header, sizeof(header), &clean_eof));
  if (clean_eof) return Status::NotFound("peer closed the connection");

  ByteReader r(std::string_view(header, sizeof(header)));
  uint32_t magic = 0, size = 0, crc = 0;
  uint16_t version = 0, raw_type = 0;
  CAFE_RETURN_IF_ERROR(r.GetU32(&magic));
  CAFE_RETURN_IF_ERROR(r.GetU16(&version));
  CAFE_RETURN_IF_ERROR(r.GetU16(&raw_type));
  CAFE_RETURN_IF_ERROR(r.GetU32(&size));
  CAFE_RETURN_IF_ERROR(r.GetU32(&crc));
  if (magic != kFrameMagic) {
    return Status::Corruption("bad frame magic");
  }
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return Status::NotSupported(
        "protocol version " + std::to_string(version) + ", this build "
        "speaks " + std::to_string(kMinProtocolVersion) + ".." +
        std::to_string(kProtocolVersion));
  }
  if (size > kMaxPayloadBytes) {
    return Status::Corruption("frame payload length " +
                              std::to_string(size) + " exceeds limit");
  }
  payload->resize(size);
  if (size > 0) {
    CAFE_RETURN_IF_ERROR(RecvAll(fd, payload->data(), size, nullptr));
  }
  if (Crc32(payload->data(), payload->size()) != crc) {
    return Status::Corruption("frame payload CRC mismatch");
  }
  *type = static_cast<FrameType>(raw_type);
  return Status::OK();
}

}  // namespace cafe::server
