#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string_view>
#include <utility>

namespace cafe::server {
namespace {

// A request line plus headers larger than this is not an operator with
// curl; drop the connection instead of buffering unboundedly.
constexpr size_t kMaxRequestBytes = 8192;

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

// Reads until the blank line ending the headers, EOF, or the size cap.
// Returns false when no complete request line arrived.
bool ReadRequestHead(int fd, std::string* head) {
  char buf[1024];
  while (head->size() < kMaxRequestBytes) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) break;  // EOF — whatever arrived is all there is
    head->append(buf, static_cast<size_t>(n));
    if (head->find("\r\n\r\n") != std::string::npos ||
        head->find("\n\n") != std::string::npos) {
      break;
    }
  }
  // A usable head has at least a full request line.
  return head->find('\n') != std::string::npos;
}

void WriteAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away; nothing useful to do with the error
    }
    written += static_cast<size_t>(n);
  }
}

void WriteResponse(int fd, const HttpResponse& response) {
  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  WriteAll(fd, out);
}

}  // namespace

HttpServer::HttpServer(HttpHandler handler, const HttpOptions& options)
    : handler_(std::move(handler)), options_(options) {
  if (options_.metrics != nullptr) {
    requests_ = options_.metrics->GetCounter("server.http_requests");
  }
}

HttpServer::~HttpServer() { Shutdown(); }

Status HttpServer::Start() {
  if (started_) return Status::Internal("Start() called twice");

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Errno("bind");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, /*backlog=*/16) < 0) {
    Status s = Errno("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    Status s = Errno("getsockname");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(addr.sin_port);

  {
    MutexLock lock(&conn_mu_);
    stopping_ = false;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void HttpServer::Shutdown() {
  MutexLock shutdown_lock(&shutdown_mu_);
  if (!started_) return;

  {
    MutexLock lock(&conn_mu_);
    stopping_ = true;
  }
  shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;

  {
    MutexLock lock(&conn_mu_);
    for (int fd : conn_fds_) shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
  started_ = false;
}

void HttpServer::AcceptLoop() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // shutdown(listen_fd_) during Shutdown() lands here
    }
    MutexLock lock(&conn_mu_);
    if (stopping_) {
      close(fd);
      return;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void HttpServer::HandleConnection(int fd) {
  std::string head;
  if (ReadRequestHead(fd, &head)) {
    if (requests_ != nullptr) requests_->Increment();
    // Request line: METHOD SP PATH SP VERSION. Everything from '?' on
    // is split off and handed to the handler as the raw query string.
    const size_t eol = head.find_first_of("\r\n");
    const std::string line = head.substr(0, eol);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.find(' ', sp1 == std::string::npos ? sp1
                                                               : sp1 + 1);
    HttpResponse response;
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      response.status = 400;
      response.body = "malformed request line\n";
    } else if (line.substr(0, sp1) != "GET") {
      response.status = 405;
      response.body = "only GET is supported\n";
    } else {
      std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      std::string query_string;
      const size_t query = path.find('?');
      if (query != std::string::npos) {
        query_string = path.substr(query + 1);
        path.resize(query);
      }
      response = handler_(path, query_string);
    }
    WriteResponse(fd, response);
  }

  MutexLock lock(&conn_mu_);
  conn_fds_.erase(fd);
  close(fd);
}

}  // namespace cafe::server
