#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "alphabet/nucleotide.h"
#include "util/version.h"

namespace cafe::server {
namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Server::Server(SearchEngine* engine, const ServerOptions& options)
    : engine_(engine), options_(options) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  connections_ = metrics_->GetCounter("server.connections");
  protocol_errors_ = metrics_->GetCounter("server.protocol_errors");
  stats_requests_ = metrics_->GetCounter("server.stats_requests");
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_) return Status::Internal("Start() called twice");

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Errno("bind");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, /*backlog=*/64) < 0) {
    Status s = Errno("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    Status s = Errno("getsockname");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(addr.sin_port);

  DispatcherOptions dopt = options_.dispatcher;
  dopt.metrics = metrics_;
  dispatcher_ = std::make_unique<Dispatcher>(engine_, dopt);
  {
    MutexLock lock(&conn_mu_);
    stopping_ = false;  // allows Start() again after Shutdown()
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void Server::Shutdown() {
  MutexLock shutdown_lock(&shutdown_mu_);
  if (!started_) return;

  // 1. Stop accepting: shutdown() wakes the blocked accept(), then the
  //    accept thread exits and no new connection threads appear.
  {
    MutexLock lock(&conn_mu_);
    stopping_ = true;
  }
  shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;

  // 2. Half-close every live connection: handlers blocked in ReadFrame
  //    see EOF and exit; a handler mid-request finishes it and still
  //    writes the response (writes stay open).
  {
    MutexLock lock(&conn_mu_);
    for (int fd : conn_fds_) shutdown(fd, SHUT_RD);
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();

  // 3. With every connection gone, the dispatcher queue can only
  //    shrink; drain it and join the workers.
  if (dispatcher_ != nullptr) dispatcher_->Stop();
  started_ = false;
}

void Server::AcceptLoop() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown(listen_fd_) during Shutdown() lands here.
      return;
    }
    MutexLock lock(&conn_mu_);
    if (stopping_) {
      close(fd);
      return;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  connections_->Increment();
  Hello hello;
  hello.server_version = kVersionString;
  Status s = WriteFrame(fd, FrameType::kHello, EncodeHello(hello));

  while (s.ok()) {
    FrameType type{};
    std::string payload;
    Status read = ReadFrame(fd, &type, &payload);
    if (!read.ok()) {
      // NotFound = clean hang-up between frames; anything else is a
      // corrupt or misbehaving peer and poisons the stream.
      if (!read.IsNotFound()) protocol_errors_->Increment();
      break;
    }
    switch (type) {
      case FrameType::kSearchRequest: {
        SearchRequest request;
        SearchResponse response;
        Status decoded = DecodeSearchRequest(payload, &request);
        if (!decoded.ok()) {
          protocol_errors_->Increment();
          response.status = std::move(decoded);
        } else {
          // Echo the trace id whatever the outcome, so the caller can
          // join even a rejected request with the server's records.
          response.trace_id = request.trace_id;
          request.query = NormalizeSequence(request.query);
          if (!IsValidSequence(request.query) || request.query.empty()) {
            response.status = Status::InvalidArgument(
                "query contains non-IUPAC characters");
          } else {
            bool sampled = false;
            Result<SearchResult> result =
                dispatcher_->Execute(request, &sampled);
            response.sampled = sampled;
            if (result.ok()) {
              response.truncated = result->truncated;
              response.hits = std::move(result->hits);
            } else {
              response.status = result.status();
            }
          }
        }
        s = WriteFrame(fd, FrameType::kSearchResponse,
                       EncodeSearchResponse(response));
        break;
      }
      case FrameType::kStatsRequest: {
        stats_requests_->Increment();
        s = WriteFrame(fd, FrameType::kStatsResponse, StatsJson());
        break;
      }
      default: {
        protocol_errors_->Increment();
        s = WriteFrame(fd, FrameType::kError,
                       "unsupported frame type");
        break;
      }
    }
  }

  MutexLock lock(&conn_mu_);
  conn_fds_.erase(fd);
  close(fd);
}

std::string Server::StatsJson() const {
  std::string out = "{\"command\":\"stats\",\"server\":{\"version\":\"";
  out += obs::JsonEscape(kVersionString);
  out += "\",\"protocol\":";
  out += std::to_string(kProtocolVersion);
  out += ",\"engine\":\"";
  out += obs::JsonEscape(engine_->name());
  out += "\"},\"metrics\":";
  out += metrics_->SnapshotJson();
  out += "}";
  return out;
}

}  // namespace cafe::server
