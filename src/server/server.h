// Blocking TCP query server: the long-running daemon behind cafe_serve.
//
// Threading model: one accept thread, one thread per connection (the
// protocol is strictly request/response per connection, so blocking
// reads are the simple and correct shape), and the Dispatcher's worker
// pool doing the actual searching. Connection threads never touch the
// engine directly — every query goes through Dispatcher::Execute, which
// is where batching, admission control and deadlines live.
//
// Shutdown() is graceful and ordered: stop accepting, half-close every
// connection (pending reads see EOF, requests already being processed
// still get their response written), join the connection threads, then
// drain the dispatcher. Safe to call from a signal-notified thread;
// idempotent.

#ifndef CAFE_SERVER_SERVER_H_
#define CAFE_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "search/engine.h"
#include "server/dispatcher.h"
#include "util/mutex.h"
#include "util/status.h"

namespace cafe::server {

struct ServerOptions {
  /// Address to bind; numeric IPv4 only (e.g. "127.0.0.1", "0.0.0.0").
  std::string bind_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port — read it back via port().
  uint16_t port = 0;
  DispatcherOptions dispatcher;
  /// Registry for the server.* metrics and the `stats` verb. When null
  /// the server creates and owns one, so stats always work.
  obs::MetricsRegistry* metrics = nullptr;
};

class Server {
 public:
  /// `engine` must outlive the server and support concurrent Search
  /// (or the dispatcher's batches fall back to sequential evaluation).
  Server(SearchEngine* engine, const ServerOptions& options);
  ~Server();  // calls Shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts accepting. Fails with IOError when the
  /// address or port is unavailable.
  [[nodiscard]] Status Start();

  /// The actually bound port (resolves port 0) — valid after Start().
  uint16_t port() const { return port_; }

  /// Graceful drain; see the file comment for the ordering. Idempotent.
  void Shutdown();

  /// The registry the server records into (owned or caller-provided).
  obs::MetricsRegistry* metrics() { return metrics_; }

  /// Queued-but-not-yet-dispatched requests right now (0 before
  /// Start()). Feeds /statusz.
  size_t QueueDepth() const {
    return dispatcher_ != nullptr ? dispatcher_->QueueDepth() : 0;
  }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// The `stats` verb payload: one JSON document in the --stats=json
  /// schema family ({"command":"stats","server":{…},"metrics":{…}}).
  std::string StatsJson() const;

  SearchEngine* const engine_;
  ServerOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<Dispatcher> dispatcher_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  Mutex conn_mu_;
  std::set<int> conn_fds_ CAFE_GUARDED_BY(conn_mu_);
  // Appended by the accept loop under conn_mu_; drained by Shutdown()
  // only after the accept thread is joined (no writer left), so the
  // joins themselves run lock-free — a phase protocol, not a guard.
  std::vector<std::thread> conn_threads_;
  bool stopping_ CAFE_GUARDED_BY(conn_mu_) = false;
  // Written by Start()/Shutdown() only; those two are externally
  // serialized (Start from the owner, Shutdown under shutdown_mu_).
  bool started_ = false;
  // Serializes Shutdown() callers. Lock order: shutdown_mu_ before
  // conn_mu_ before the dispatcher's locks — never the reverse.
  Mutex shutdown_mu_ CAFE_ACQUIRED_BEFORE(conn_mu_);

  obs::Counter* connections_ = nullptr;
  obs::Counter* protocol_errors_ = nullptr;
  obs::Counter* stats_requests_ = nullptr;
};

}  // namespace cafe::server

#endif  // CAFE_SERVER_SERVER_H_
