// Wire protocol for the cafe_serve query daemon.
//
// Frames are length-prefixed binary with a fixed 16-byte header:
//
//   u32 magic    "CAFE" (0x45464143 little-endian)
//   u16 version  kProtocolVersion — mismatches are rejected on read
//   u16 type     FrameType
//   u32 size     payload bytes that follow (<= kMaxPayloadBytes)
//   u32 crc      CRC-32 of the payload (util/crc32.h)
//
// All integers are little-endian. Every byte off the wire is untrusted:
// decoders bound-check and return Status (never CAFE_CHECK, per the
// correctness-tooling policy) so a malicious or corrupt peer can only
// produce an error, not a crash. A header-level problem (bad magic,
// version skew, oversized length, CRC mismatch) poisons the stream and
// the connection should be closed; a payload-level decode error is
// answerable with an in-band error response.
//
// On connect the server speaks first with a kHello frame carrying its
// software version (util/version.h), so clients can log what they
// talked to; the protocol version rides in every frame header.

#ifndef CAFE_SERVER_PROTOCOL_H_
#define CAFE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "search/engine.h"
#include "util/status.h"

namespace cafe::server {

inline constexpr uint32_t kFrameMagic = 0x45464143u;  // "CAFE"
/// Current protocol version. v2 added the optional trailing trace-id
/// field to SearchRequest and SearchResponse; v3 added the trailing
/// `sampled` byte to SearchResponse (the server recorded a span
/// timeline for this request — see /tracez).
inline constexpr uint16_t kProtocolVersion = 3;
/// Oldest version this build still speaks. ReadFrame accepts any frame
/// version in [kMinProtocolVersion, kProtocolVersion], and both the
/// trace-id field (v2) and the sampled byte (v3) are *trailing*
/// additions, so a v1 or v2 payload (request or response) decodes here
/// with the missing fields at their zero defaults — an older peer's
/// Hello, requests and responses all still work against this build
/// (asserted both directions in protocol_test).
inline constexpr uint16_t kMinProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;

/// Upper bound on a frame payload. Anything larger is Corruption —
/// a length prefix must never make the reader allocate unboundedly.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 26;  // 64 MiB

enum class FrameType : uint16_t {
  kHello = 1,          // server -> client, once, on connect
  kSearchRequest = 2,  // client -> server
  kSearchResponse = 3, // server -> client
  kStatsRequest = 4,   // client -> server (empty payload)
  kStatsResponse = 5,  // server -> client (JSON document)
  kError = 6,          // server -> client (unknown frame type)
};

struct Hello {
  std::string server_version;  // cafe::kVersionString of the server
};

/// The SearchOptions subset that travels on the wire, plus the query.
/// Everything a remote caller may choose; server-side knobs (threads,
/// traces, statistics calibration) stay server-side.
struct SearchRequest {
  uint32_t max_results = 10;
  uint32_t fine_candidates = 100;
  int32_t band = 48;
  uint32_t frame_width = 16;
  int32_t min_score = 1;
  bool diagonal_mode = true;  // false = CoarseRankMode::kHitCount
  bool both_strands = false;
  bool rescore_full = false;
  /// Per-request deadline in milliseconds, measured from admission;
  /// 0 = no deadline.
  uint32_t deadline_millis = 0;
  std::string query;  // normalized IUPAC nucleotides
  /// End-to-end request correlation id, echoed verbatim in the
  /// SearchResponse and stamped on the server's flight-recorder entry
  /// and log lines for this request. 0 = caller declined to pick one;
  /// Client::Search mints a random id in that case so every request is
  /// joinable. Not part of OptionsKey(). v2 wire field — absent (0)
  /// when the peer speaks v1.
  uint64_t trace_id = 0;

  /// The engine-side options these wire fields select (deadline and
  /// server-side knobs left at their defaults).
  SearchOptions ToSearchOptions() const;

  /// Batching compatibility key: requests with equal keys may share one
  /// BatchSearch call (everything except the query and the deadline,
  /// which stay per-request).
  std::string OptionsKey() const;
};

struct SearchResponse {
  /// Status::Code of the server-side evaluation, kOk on success.
  Status status;
  /// True when the request's deadline fired: hits are partial.
  bool truncated = false;
  /// seq_id / score / coarse_score / strand are filled; alignment and
  /// statistics fields do not travel.
  std::vector<SearchHit> hits;
  /// The request's trace id, echoed so the client can join its own
  /// latency measurement with the server's flight-recorder entry.
  /// v2 wire field — 0 from a v1 server.
  uint64_t trace_id = 0;
  /// True when the server recorded a span timeline for this request —
  /// fetch it at /tracez?trace_id=… while it is still in the span
  /// store. v3 wire field — false from an older server.
  bool sampled = false;
};

// --- Payload codecs -------------------------------------------------

std::string EncodeHello(const Hello& hello);
[[nodiscard]] Status DecodeHello(std::string_view payload, Hello* out);

std::string EncodeSearchRequest(const SearchRequest& request);
[[nodiscard]] Status DecodeSearchRequest(std::string_view payload,
                                         SearchRequest* out);

std::string EncodeSearchResponse(const SearchResponse& response);
[[nodiscard]] Status DecodeSearchResponse(std::string_view payload,
                                          SearchResponse* out);

/// Status <-> wire code. Unknown wire codes decode to kInternal rather
/// than failing, so a newer peer's codes degrade gracefully.
uint8_t StatusCodeToWire(const Status& status);
Status StatusFromWire(uint8_t code, std::string message);

// --- Framed socket I/O (blocking, EINTR-safe) -----------------------

/// Writes one complete frame to `fd`. `version` stamps the header —
/// callers other than compatibility tests leave the default.
[[nodiscard]] Status WriteFrame(int fd, FrameType type,
                                std::string_view payload,
                                uint16_t version = kProtocolVersion);

/// Reads one complete frame. Clean EOF before any header byte returns
/// NotFound (the peer hung up between frames); everything else that is
/// short or inconsistent is IOError/Corruption.
[[nodiscard]] Status ReadFrame(int fd, FrameType* type,
                               std::string* payload);

}  // namespace cafe::server

#endif  // CAFE_SERVER_PROTOCOL_H_
