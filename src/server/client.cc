#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace cafe::server {
namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

uint64_t SplitMix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t Client::MintTraceId() {
  // Seeded once per process from the wall clock; each mint advances a
  // counter through splitmix64, so ids are unique within the process
  // and overwhelmingly unlikely to collide across processes.
  static const uint64_t base = SplitMix64(static_cast<uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count()));
  static std::atomic<uint64_t> counter{0};
  uint64_t id = 0;
  while (id == 0) {  // 0 means "no trace id" on the wire
    id = SplitMix64(base ^ counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host (numeric IPv4 only): " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("connect");
    close(fd);
    return s;
  }

  // make_unique cannot reach the private constructor; the pointer is
  // owned by the unique_ptr on the same line.
  std::unique_ptr<Client> client(new Client(fd));  // NOLINT(cafe-no-naked-new)
  // The server speaks first: consume its Hello before the first request.
  FrameType type{};
  std::string payload;
  CAFE_RETURN_IF_ERROR(ReadFrame(fd, &type, &payload));
  if (type != FrameType::kHello) {
    return Status::Corruption("expected Hello frame, got type " +
                              std::to_string(static_cast<int>(type)));
  }
  Hello hello;
  CAFE_RETURN_IF_ERROR(DecodeHello(payload, &hello));
  client->server_version_ = std::move(hello.server_version);
  return client;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status Client::Search(const SearchRequest& request,
                      SearchResponse* response) {
  if (fd_ < 0) return Status::IOError("client is closed");
  SearchRequest outbound = request;
  if (outbound.trace_id == 0) outbound.trace_id = MintTraceId();
  CAFE_RETURN_IF_ERROR(WriteFrame(fd_, FrameType::kSearchRequest,
                                  EncodeSearchRequest(outbound)));
  FrameType type{};
  std::string payload;
  CAFE_RETURN_IF_ERROR(ReadFrame(fd_, &type, &payload));
  if (type == FrameType::kError) {
    return Status::Corruption("server rejected the frame: " + payload);
  }
  if (type != FrameType::kSearchResponse) {
    return Status::Corruption("expected SearchResponse frame, got type " +
                              std::to_string(static_cast<int>(type)));
  }
  CAFE_RETURN_IF_ERROR(DecodeSearchResponse(payload, response));
  // A v1 server does not echo; the caller still learns the id the
  // request travelled under.
  if (response->trace_id == 0) response->trace_id = outbound.trace_id;
  return Status::OK();
}

Status Client::Stats(std::string* json) {
  if (fd_ < 0) return Status::IOError("client is closed");
  CAFE_RETURN_IF_ERROR(
      WriteFrame(fd_, FrameType::kStatsRequest, std::string()));
  FrameType type{};
  std::string payload;
  CAFE_RETURN_IF_ERROR(ReadFrame(fd_, &type, &payload));
  if (type != FrameType::kStatsResponse) {
    return Status::Corruption("expected StatsResponse frame, got type " +
                              std::to_string(static_cast<int>(type)));
  }
  *json = std::move(payload);
  return Status::OK();
}

}  // namespace cafe::server
