#include "server/dispatcher.h"

#include <algorithm>

namespace cafe::server {

Dispatcher::Dispatcher(SearchEngine* engine,
                       const DispatcherOptions& options)
    : engine_(engine), options_(options) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    accepted_ = m->GetCounter("server.requests_accepted");
    rejected_ = m->GetCounter("server.requests_rejected");
    deadline_exceeded_ = m->GetCounter("server.deadline_exceeded");
    batches_ = m->GetCounter("server.batches_dispatched");
    queue_depth_ = m->GetHistogram("server.queue_depth");
    batch_size_ = m->GetHistogram("server.batch_size");
    queue_wait_micros_ = m->GetHistogram("server.queue_wait_micros");
    search_micros_ = m->GetHistogram("server.search_micros");
    request_micros_ = m->GetHistogram("server.request_micros");
  }
  const uint32_t workers = std::max<uint32_t>(options_.workers, 1);
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Dispatcher::~Dispatcher() { Stop(); }

Result<SearchResult> Dispatcher::Execute(const SearchRequest& request) {
  auto pending = std::make_shared<Pending>();
  pending->query = request.query;
  pending->options = request.ToSearchOptions();
  pending->options.threads = options_.search_threads;
  if (request.deadline_millis > 0) {
    pending->deadline = Deadline::AfterMillis(request.deadline_millis);
  }
  pending->key = request.OptionsKey();

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      if (rejected_ != nullptr) rejected_->Increment();
      return Status::Overloaded("server is shutting down");
    }
    if (queue_.size() >= options_.max_queue) {
      if (rejected_ != nullptr) rejected_->Increment();
      return Status::Overloaded("request queue is full (" +
                                std::to_string(options_.max_queue) + ")");
    }
    queue_.push_back(pending);
    if (accepted_ != nullptr) accepted_->Increment();
    if (queue_depth_ != nullptr) queue_depth_->Record(queue_.size());
    work_cv_.notify_one();
    done_cv_.wait(lock, [&] { return pending->done; });
  }
  if (request_micros_ != nullptr) {
    request_micros_->Record(
        static_cast<uint64_t>(pending->admitted.Micros()));
  }
  if (!pending->status.ok()) return pending->status;
  return std::move(pending->result);
}

void Dispatcher::Stop() {
  // Serializes concurrent Stop() calls (say, Server::Shutdown racing
  // the destructor) so only one of them joins the workers.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

size_t Dispatcher::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void Dispatcher::WorkerLoop() {
  while (true) {
    std::vector<std::shared_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, and fully drained
      batch.push_back(queue_.front());
      queue_.pop_front();
      // Coalesce: sweep the queue front-to-back for requests that can
      // share this BatchSearch call (same options key), preserving
      // arrival order among those taken.
      const std::string& key = batch.front()->key;
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < options_.max_batch;) {
        if ((*it)->key == key) {
          batch.push_back(*it);
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    RunBatch(std::move(batch));
  }
}

void Dispatcher::RunBatch(std::vector<std::shared_ptr<Pending>> batch) {
  if (batches_ != nullptr) batches_->Increment();
  if (batch_size_ != nullptr) batch_size_->Record(batch.size());
  if (queue_wait_micros_ != nullptr) {
    for (const auto& p : batch) {
      queue_wait_micros_->Record(
          static_cast<uint64_t>(p->admitted.Micros()));
    }
  }

  // Requests whose whole budget was spent queueing complete here as
  // truncated empties — paying for an alignment the client has already
  // given up on only deepens an overload.
  std::vector<std::shared_ptr<Pending>> live;
  live.reserve(batch.size());
  for (auto& p : batch) {
    if (p->deadline.Expired()) {
      SearchResult expired;
      expired.truncated = true;
      Complete(p, Status::OK(), std::move(expired));
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  std::vector<std::string> queries;
  std::vector<Deadline> deadlines;
  queries.reserve(live.size());
  deadlines.reserve(live.size());
  for (const auto& p : live) {
    queries.push_back(p->query);
    deadlines.push_back(p->deadline);
  }

  WallTimer search_timer;
  Result<std::vector<SearchResult>> results = engine_->BatchSearchTraced(
      queries, live.front()->options, /*traces=*/nullptr, &deadlines);
  if (search_micros_ != nullptr) {
    search_micros_->Record(static_cast<uint64_t>(search_timer.Micros()));
  }

  if (results.ok()) {
    for (size_t i = 0; i < live.size(); ++i) {
      Complete(live[i], Status::OK(), std::move((*results)[i]));
    }
    return;
  }
  // The batch failed on its first bad query; re-run the members one at
  // a time so each request gets its own verdict instead of a shared
  // error (one malformed query must not fail its batch-mates).
  for (const auto& p : live) {
    SearchOptions options = p->options;
    options.deadline = p->deadline.has_deadline() ? &p->deadline : nullptr;
    Result<SearchResult> one =
        SearchWithStrands(engine_, p->query, options);
    if (one.ok()) {
      Complete(p, Status::OK(), std::move(*one));
    } else {
      Complete(p, one.status(), SearchResult());
    }
  }
}

void Dispatcher::Complete(const std::shared_ptr<Pending>& p, Status status,
                          SearchResult result) {
  if (result.truncated && deadline_exceeded_ != nullptr) {
    deadline_exceeded_->Increment();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    p->status = std::move(status);
    p->result = std::move(result);
    p->done = true;
  }
  done_cv_.notify_all();
}

}  // namespace cafe::server
