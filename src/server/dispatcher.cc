#include "server/dispatcher.h"

#include <algorithm>

namespace cafe::server {
namespace {

// OptionsKey() is packed binary; the flight recorder wants something an
// operator can read and compare across records.
std::string HexFingerprint(const std::string& key) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(key.size() * 2);
  for (unsigned char c : key) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

}  // namespace

Dispatcher::Dispatcher(SearchEngine* engine,
                       const DispatcherOptions& options)
    : engine_(engine),
      options_(options),
      sampler_(options.span_sample_rate) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    accepted_ = m->GetCounter("server.requests_accepted");
    rejected_ = m->GetCounter("server.requests_rejected");
    deadline_exceeded_ = m->GetCounter("server.deadline_exceeded");
    batches_ = m->GetCounter("server.batches_dispatched");
    queue_depth_ = m->GetHistogram("server.queue_depth");
    batch_size_ = m->GetHistogram("server.batch_size");
    queue_wait_micros_ = m->GetHistogram("server.queue_wait_micros");
    search_micros_ = m->GetHistogram("server.search_micros");
    request_micros_ = m->GetHistogram("server.request_micros");
  }
  const uint32_t workers = std::max<uint32_t>(options_.workers, 1);
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Dispatcher::~Dispatcher() { Stop(); }

Result<SearchResult> Dispatcher::Execute(const SearchRequest& request,
                                         bool* sampled) {
  if (sampled != nullptr) *sampled = false;
  auto pending = std::make_shared<Pending>();
  pending->query = request.query;
  pending->options = request.ToSearchOptions();
  pending->options.threads = options_.search_threads;
  pending->options.chain_mode = options_.chain_mode;
  pending->options.min_chain_score = options_.min_chain_score;
  if (request.deadline_millis > 0) {
    pending->deadline = Deadline::AfterMillis(request.deadline_millis);
  }
  pending->key = request.OptionsKey();
  pending->trace_id = request.trace_id;

  // Span sampling: decided at admission so the timeline covers the
  // queue wait too. The slow-log pin overrides the rate — a replayed
  // request an operator already sees in /slowz always gets a timeline.
  if (options_.span_store != nullptr &&
      (sampler_.ShouldSample(request.trace_id) ||
       (options_.flight != nullptr &&
        options_.flight->SlowPinned(request.trace_id)))) {
    pending->spans = std::make_unique<obs::SpanRecorder>(request.trace_id);
    pending->root_span = pending->spans->StartSpan("request");
    pending->queue_span = pending->spans->StartSpan("queue.wait");
    pending->options.spans = pending->spans.get();
  }

  {
    MutexLock lock(&mu_);
    if (stopping_) {
      if (rejected_ != nullptr) rejected_->Increment();
      return Status::Overloaded("server is shutting down");
    }
    if (queue_.size() >= options_.max_queue) {
      if (rejected_ != nullptr) rejected_->Increment();
      return Status::Overloaded("request queue is full (" +
                                std::to_string(options_.max_queue) + ")");
    }
    queue_.push_back(pending);
    if (accepted_ != nullptr) accepted_->Increment();
    if (queue_depth_ != nullptr) queue_depth_->Record(queue_.size());
    work_cv_.NotifyOne();
    while (!pending->done) done_cv_.Wait(&mu_);
  }
  if (request_micros_ != nullptr) {
    request_micros_->Record(
        static_cast<uint64_t>(pending->admitted.Micros()));
  }
  // Reported only for requests that completed (a rejected request's
  // recorder never reached the span store).
  if (sampled != nullptr) *sampled = pending->spans != nullptr;
  if (!pending->status.ok()) return pending->status;
  return std::move(pending->result);
}

void Dispatcher::Stop() {
  // Serializes concurrent Stop() calls (say, Server::Shutdown racing
  // the destructor) so only one of them joins the workers.
  MutexLock stop_lock(&stop_mu_);
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

size_t Dispatcher::QueueDepth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

void Dispatcher::WorkerLoop() {
  while (true) {
    std::vector<std::shared_ptr<Pending>> batch;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) work_cv_.Wait(&mu_);
      if (queue_.empty()) return;  // stopping, and fully drained
      batch.push_back(queue_.front());
      queue_.pop_front();
      // Coalesce: sweep the queue front-to-back for requests that can
      // share this BatchSearch call (same options key), preserving
      // arrival order among those taken.
      const std::string& key = batch.front()->key;
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < options_.max_batch;) {
        if ((*it)->key == key) {
          batch.push_back(*it);
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    RunBatch(std::move(batch));
  }
}

void Dispatcher::RunBatch(std::vector<std::shared_ptr<Pending>> batch) {
  if (batches_ != nullptr) batches_->Increment();
  if (batch_size_ != nullptr) batch_size_->Record(batch.size());
  for (const auto& p : batch) {
    p->queue_micros = static_cast<uint64_t>(p->admitted.Micros());
    if (queue_wait_micros_ != nullptr) {
      queue_wait_micros_->Record(p->queue_micros);
    }
    // queue.wait ends for every member at dispatch — including the
    // queue-expired ones, whose timeline is queue wait and nothing
    // else.
    if (p->spans != nullptr) p->spans->EndSpan(p->queue_span);
  }

  // Requests whose whole budget was spent queueing complete here as
  // truncated empties — paying for an alignment the client has already
  // given up on only deepens an overload.
  std::vector<std::shared_ptr<Pending>> live;
  live.reserve(batch.size());
  for (auto& p : batch) {
    if (p->deadline.Expired()) {
      p->deadline_expired = true;
      SearchResult expired;
      expired.truncated = true;
      Complete(p, Status::OK(), std::move(expired));
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  std::vector<std::string> queries;
  std::vector<Deadline> deadlines;
  std::vector<obs::SpanRecorder*> span_ptrs;
  queries.reserve(live.size());
  deadlines.reserve(live.size());
  span_ptrs.reserve(live.size());
  for (const auto& p : live) {
    queries.push_back(p->query);
    deadlines.push_back(p->deadline);
    // batch.search covers engine evaluation for this member. Each
    // request records into its own recorder (null for unsampled
    // batch-mates), so coalescing never blurs timelines — the same
    // isolation the per-query trace slots give the funnel counters.
    if (p->spans != nullptr) {
      p->batch_span = p->spans->StartSpan("batch.search");
    }
    span_ptrs.push_back(p->spans.get());
  }

  WallTimer search_timer;
  std::vector<obs::SearchTrace> traces;
  Result<std::vector<SearchResult>> results = engine_->BatchSearchTraced(
      queries, live.front()->options, &traces, &deadlines, &span_ptrs);
  if (search_micros_ != nullptr) {
    search_micros_->Record(static_cast<uint64_t>(search_timer.Micros()));
  }

  if (results.ok()) {
    for (size_t i = 0; i < live.size(); ++i) {
      // Each request keeps its own slot of the batch trace, so the
      // flight recorder shows this query's funnel, not the batch's.
      if (i < traces.size()) live[i]->trace = traces[i];
      Complete(live[i], Status::OK(), std::move((*results)[i]));
    }
    return;
  }
  // The batch failed on its first bad query; re-run the members one at
  // a time so each request gets its own verdict instead of a shared
  // error (one malformed query must not fail its batch-mates).
  for (const auto& p : live) {
    SearchOptions options = p->options;
    options.deadline = p->deadline.has_deadline() ? &p->deadline : nullptr;
    options.trace = &p->trace;  // keep the funnel even on the retry path
    options.spans = p->spans.get();  // and the timeline
    Result<SearchResult> one =
        SearchWithStrands(engine_, p->query, options);
    if (one.ok()) {
      Complete(p, Status::OK(), std::move(*one));
    } else {
      Complete(p, one.status(), SearchResult());
    }
  }
}

void Dispatcher::Complete(const std::shared_ptr<Pending>& p, Status status,
                          SearchResult result) {
  if (result.truncated && deadline_exceeded_ != nullptr) {
    deadline_exceeded_->Increment();
  }
  // Until `done` is published below, the worker exclusively owns *p —
  // so the record can be assembled and handed to the recorder with no
  // lock held at all, and the ordering guarantee still stands: the
  // moment the waiter can observe done (it re-acquires mu_ to read
  // it), the record has already landed. Keeping FlightRecorder::Record
  // outside the critical section means its slot spinlock and slow-log
  // mutex never nest under mu_.
  p->status = std::move(status);
  p->result = std::move(result);
  // Close the timeline and hand it to the span store before `done` is
  // published, so a client that sees the response's sampled flag can
  // fetch /tracez immediately. Both stores use only leaf locks, so
  // nothing nests under mu_.
  if (p->spans != nullptr) {
    p->spans->EndSpan(p->batch_span);
    p->spans->EndSpan(p->root_span);
  }
  RecordFlight(*p);
  if (p->spans != nullptr && options_.span_store != nullptr) {
    options_.span_store->Put(*p->spans);
  }
  {
    MutexLock lock(&mu_);
    p->done = true;
  }
  done_cv_.NotifyAll();
}

void Dispatcher::RecordFlight(const Pending& p) {
  if (options_.flight == nullptr) return;
  obs::FlightRecord record;
  record.trace_id = p.trace_id;
  record.options_key = HexFingerprint(p.key);
  record.queue_micros = p.queue_micros;
  record.total_micros = static_cast<uint64_t>(p.admitted.Micros());
  record.trace = p.trace;
  record.hits = static_cast<uint32_t>(p.result.hits.size());
  record.status_code = StatusCodeToWire(p.status);
  record.truncated = p.result.truncated;
  record.deadline_expired = p.deadline_expired;
  record.sampled = p.spans != nullptr;
  options_.flight->Record(std::move(record));
}

}  // namespace cafe::server
