// Blocking client for the cafe_serve wire protocol.
//
// One Client is one TCP connection; the protocol is strictly
// request/response, so a Client must not be shared between threads
// without external serialization (cafe_loadgen gives each client
// thread its own Client). Server-side failures — including
// kOverloaded rejections from admission control — come back as the
// Status inside the SearchResponse, not as a transport error.

#ifndef CAFE_SERVER_CLIENT_H_
#define CAFE_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "server/protocol.h"
#include "util/status.h"

namespace cafe::server {

class Client {
 public:
  /// Connects to `host`:`port` (numeric IPv4 only) and consumes the
  /// server's Hello frame. Fails with IOError when the connect or the
  /// handshake fails.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port);

  ~Client();  // closes the connection

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// The version string the server announced in its Hello frame.
  const std::string& server_version() const { return server_version_; }

  /// Sends one search and blocks for the response. A transport or
  /// framing failure poisons the connection; a server-side failure
  /// (bad query, overload) arrives in `response->status` with the
  /// connection still usable.
  [[nodiscard]] Status Search(const SearchRequest& request,
                              SearchResponse* response);

  /// Fetches the server's stats document (the --stats=json schema).
  [[nodiscard]] Status Stats(std::string* json);

  /// Closes the connection; later Search/Stats calls fail. Idempotent.
  void Close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string server_version_;
};

}  // namespace cafe::server

#endif  // CAFE_SERVER_CLIENT_H_
