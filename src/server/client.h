// Blocking client for the cafe_serve wire protocol.
//
// One Client is one TCP connection; the protocol is strictly
// request/response, so a Client must not be shared between threads
// without external serialization (cafe_loadgen gives each client
// thread its own Client). Server-side failures — including
// kOverloaded rejections from admission control — come back as the
// Status inside the SearchResponse, not as a transport error.

#ifndef CAFE_SERVER_CLIENT_H_
#define CAFE_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "server/protocol.h"
#include "util/status.h"

namespace cafe::server {

class Client {
 public:
  /// Connects to `host`:`port` (numeric IPv4 only) and consumes the
  /// server's Hello frame. Fails with IOError when the connect or the
  /// handshake fails.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port);

  ~Client();  // closes the connection

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// The version string the server announced in its Hello frame.
  const std::string& server_version() const { return server_version_; }

  /// Sends one search and blocks for the response. A transport or
  /// framing failure poisons the connection; a server-side failure
  /// (bad query, overload) arrives in `response->status` with the
  /// connection still usable.
  ///
  /// Trace ids: when `request.trace_id` is 0 the client mints a random
  /// non-zero id for this request, so every request is joinable with
  /// the server's flight recorder / slow log. Either way,
  /// `response->trace_id` always carries the id this request travelled
  /// under — the server's echo, or (against a v1 server that does not
  /// echo) the id that was sent.
  ///
  /// `response->sampled` (v3) reports whether the server recorded a
  /// span timeline for this request; if so, its Chrome-trace JSON is
  /// at /tracez?trace_id=… on the server's introspection port while
  /// the span store retains it. False from an older server.
  [[nodiscard]] Status Search(const SearchRequest& request,
                              SearchResponse* response);

  /// Fetches the server's stats document (the --stats=json schema).
  [[nodiscard]] Status Stats(std::string* json);

  /// Closes the connection; later Search/Stats calls fail. Idempotent.
  void Close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// A fresh non-zero trace id: a process-wide counter mixed through
  /// splitmix64 with a per-process random base, so ids from concurrent
  /// clients (and consecutive runs) don't collide or look sequential.
  static uint64_t MintTraceId();

  int fd_ = -1;
  std::string server_version_;
};

}  // namespace cafe::server

#endif  // CAFE_SERVER_CLIENT_H_
