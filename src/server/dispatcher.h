// Request dispatcher: the bridge between connection threads and the
// search engine.
//
// Connection handlers block in Execute(); a small pool of dispatcher
// workers drains the shared queue, coalescing concurrently-arriving
// requests with compatible options into one
// SearchEngine::BatchSearchTraced call — the engine's heavy-traffic
// shape — while each request keeps its own deadline.
//
// Admission control is a hard bound on queue depth: when the queue is
// full (or the dispatcher is stopping) Execute returns
// Status::Overloaded immediately instead of queueing unboundedly, so
// overload degrades into fast, explicit rejections. Requests whose
// deadline expires while still queued complete as truncated empty
// results without ever reaching the engine.
//
// Stop() is a graceful drain: new requests are rejected, every already
// admitted request still completes, then the workers exit. The
// destructor calls Stop().

#ifndef CAFE_SERVER_DISPATCHER_H_
#define CAFE_SERVER_DISPATCHER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "search/engine.h"
#include "server/protocol.h"
#include "util/deadline.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace cafe::server {

struct DispatcherOptions {
  /// Dispatcher worker threads — concurrent BatchSearch calls.
  uint32_t workers = 2;
  /// Admission bound: requests queued (not yet dispatched) beyond this
  /// are rejected with kOverloaded.
  uint32_t max_queue = 256;
  /// At most this many compatible requests coalesce into one batch.
  uint32_t max_batch = 8;
  /// SearchOptions::threads for each query inside a batch. 1 (the
  /// default) keeps each query sequential — parallelism comes from
  /// batching and the worker pool, which composes safely with
  /// BatchSearch's own fan-out rules.
  uint32_t search_threads = 1;
  /// Server-side chaining defaults applied to every admitted request
  /// (the wire protocol carries no chain fields, so the operator's
  /// flags decide). Chaining only drops non-reportable candidates, so
  /// turning it on changes cost, not results — see search/chain.h.
  ChainMode chain_mode = ChainMode::kOff;
  uint32_t min_chain_score = 2;
  /// When non-null, the dispatcher records the server.* metrics here
  /// (catalogue in docs/OBSERVABILITY.md).
  obs::MetricsRegistry* metrics = nullptr;
  /// When non-null, every completed request — including queue-expired
  /// and failed ones — leaves one FlightRecord here: trace id, options
  /// fingerprint, queue wait, end-to-end time, and the per-request
  /// pruning funnel (the per-query slot of BatchSearchTraced, so
  /// batch-mates never blur each other's funnel).
  obs::FlightRecorder* flight = nullptr;
  /// Fraction of admitted requests ([0,1]) that record a span timeline
  /// (obs::SpanSampler decides per trace id). 0 — the default — turns
  /// the gate off; a request whose trace id is pinned in the slow log
  /// is force-sampled regardless, so an operator staring at /slowz can
  /// replay the request and get its timeline.
  double span_sample_rate = 0.0;
  /// Where finished timelines go (the /tracez backing). Null disables
  /// span recording entirely, whatever the rate.
  obs::SpanStore* span_store = nullptr;
};

class Dispatcher {
 public:
  /// Starts the worker threads. `engine` must outlive the dispatcher.
  Dispatcher(SearchEngine* engine, const DispatcherOptions& options);
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Admits `request`, blocks until it completes, and returns its
  /// result. Thread-safe; called from connection threads. Fails fast
  /// with Status::Overloaded when the queue is full or the dispatcher
  /// is stopping. A result with `truncated` set means the request's
  /// deadline fired first.
  /// `sampled`, when non-null, reports whether a span timeline was
  /// recorded for this request (the wire response's v3 sampled flag).
  Result<SearchResult> Execute(const SearchRequest& request,
                               bool* sampled = nullptr) CAFE_EXCLUDES(mu_);

  /// Rejects new work, drains everything already admitted, joins the
  /// workers. Idempotent.
  void Stop() CAFE_EXCLUDES(stop_mu_, mu_);

  /// Queued-but-not-yet-dispatched requests right now.
  size_t QueueDepth() const CAFE_EXCLUDES(mu_);

 private:
  // One admitted request. Ownership protocol, not a per-field guard:
  // the fields are written by the admitting thread before the Pending
  // enters queue_, then exclusively by the worker that dequeued it,
  // and only `done` — the publication flag — is ever touched under
  // mu_ by both sides. The waiter reads the rest only after observing
  // done under mu_ (the lock's release/acquire pair orders the
  // worker's plain writes before the waiter's reads).
  struct Pending {
    std::string query;
    SearchOptions options;  // deadline handled separately, see below
    Deadline deadline;
    std::string key;        // OptionsKey() of the originating request
    uint64_t trace_id = 0;  // wire trace id, 0 when the caller sent none
    WallTimer admitted;     // queue-wait + end-to-end latency clock
    uint64_t queue_micros = 0;    // stamped when the batch is dispatched
    obs::SearchTrace trace;       // this request's slot of the batch trace
    bool deadline_expired = false;  // budget spent before dispatch
    // Span timeline of a sampled request (null otherwise). The
    // recorder rides the same ownership protocol as the other fields:
    // the admitting thread opens request/queue.wait, the dequeuing
    // worker ends queue.wait, runs the engine and hands the finished
    // timeline to the span store before publishing `done`.
    std::unique_ptr<obs::SpanRecorder> spans;
    uint32_t root_span = 0;   // "request" (opened at admission)
    uint32_t queue_span = 0;  // "queue.wait" (ended at dispatch)
    uint32_t batch_span = 0;  // "batch.search" (live batch members)
    SearchResult result;
    Status status;
    bool done = false;
  };

  void WorkerLoop() CAFE_EXCLUDES(mu_);
  /// Runs one coalesced batch outside the lock and completes each
  /// request. `batch` is non-empty and shares one options key.
  void RunBatch(std::vector<std::shared_ptr<Pending>> batch)
      CAFE_EXCLUDES(mu_);
  /// Records `p`'s flight record (outside any lock), then publishes
  /// `done` under mu_ and wakes the waiter.
  void Complete(const std::shared_ptr<Pending>& p, Status status,
                SearchResult result) CAFE_EXCLUDES(mu_);
  /// Leaves `p`'s FlightRecord with the recorder, when one is attached.
  /// Called exactly once per request, from Complete(), before `done`
  /// is published — so no lock is held and none is needed: the worker
  /// still exclusively owns *p.
  void RecordFlight(const Pending& p) CAFE_EXCLUDES(mu_);

  SearchEngine* const engine_;
  const DispatcherOptions options_;
  obs::SpanSampler sampler_;

  // Lock order: stop_mu_ before mu_ — never the reverse.
  mutable Mutex mu_ CAFE_ACQUIRED_AFTER(stop_mu_);
  CondVar work_cv_;  // workers wait for queue/stop
  CondVar done_cv_;  // Execute waits for completion
  std::deque<std::shared_ptr<Pending>> queue_ CAFE_GUARDED_BY(mu_);
  bool stopping_ CAFE_GUARDED_BY(mu_) = false;
  Mutex stop_mu_;  // serializes Stop() callers around the joins
  // Spawned by the constructor (pre-publication, analysis-exempt);
  // joined and cleared only under stop_mu_.
  std::vector<std::thread> workers_ CAFE_GUARDED_BY(stop_mu_);

  // Resolved once at construction; null when metrics are detached.
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* deadline_exceeded_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Histogram* queue_depth_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;
  obs::Histogram* queue_wait_micros_ = nullptr;
  obs::Histogram* search_micros_ = nullptr;
  obs::Histogram* request_micros_ = nullptr;
};

}  // namespace cafe::server

#endif  // CAFE_SERVER_DISPATCHER_H_
