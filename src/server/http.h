// Minimal HTTP/1.0 listener for live introspection (/metrics, /statusz,
// /flightz, /slowz in cafe_serve).
//
// This is deliberately not a web server: GET only, no keep-alive, no
// TLS, request line + headers capped at a few KiB, every response ends
// with Connection: close. It exists so an operator (or a Prometheus
// scraper) can look inside a running cafe_serve with curl — the query
// protocol stays on its own binary port. Threading mirrors Server: one
// accept thread, one short-lived thread per connection; handlers run on
// the connection thread and must be thread-safe.

#ifndef CAFE_SERVER_HTTP_H_
#define CAFE_SERVER_HTTP_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/status.h"

namespace cafe::server {

struct HttpOptions {
  /// Address to bind; numeric IPv4 only.
  std::string bind_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port — read it back via port().
  uint16_t port = 0;
  /// When non-null, server.http_requests counts every request served
  /// (any path, any status).
  obs::MetricsRegistry* metrics = nullptr;
};

struct HttpResponse {
  /// HTTP status code; 200/400/404/405 are the ones this server emits.
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Maps a request path (e.g. "/metrics") and its raw query string
/// (everything after '?', without the '?'; empty when absent — e.g.
/// "trace_id=00c0ffee" for "/tracez?trace_id=00c0ffee") to a response.
/// Runs on a connection thread — must be thread-safe and should be
/// quick.
using HttpHandler = std::function<HttpResponse(const std::string& path,
                                               const std::string& query)>;

class HttpServer {
 public:
  HttpServer(HttpHandler handler, const HttpOptions& options);
  ~HttpServer();  // calls Shutdown()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts accepting.
  [[nodiscard]] Status Start();

  /// The actually bound port (resolves port 0) — valid after Start().
  uint16_t port() const { return port_; }

  /// Stops accepting, closes every live connection, joins the threads.
  /// Idempotent.
  void Shutdown();

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  const HttpHandler handler_;
  const HttpOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  Mutex conn_mu_;
  std::set<int> conn_fds_ CAFE_GUARDED_BY(conn_mu_);
  // Appended by the accept loop under conn_mu_; drained by Shutdown()
  // only after the accept thread is joined (no writer left), so the
  // joins themselves run lock-free — a phase protocol, not a guard.
  std::vector<std::thread> conn_threads_;
  bool stopping_ CAFE_GUARDED_BY(conn_mu_) = false;
  // Written by Start()/Shutdown() only; those two are externally
  // serialized (Start from the owner, Shutdown under shutdown_mu_).
  bool started_ = false;
  // Serializes Shutdown() callers. Lock order: shutdown_mu_ before
  // conn_mu_ — never the reverse.
  Mutex shutdown_mu_ CAFE_ACQUIRED_BEFORE(conn_mu_);

  obs::Counter* requests_ = nullptr;
};

}  // namespace cafe::server

#endif  // CAFE_SERVER_HTTP_H_
