#include "align/sw_simd.h"

#include <atomic>
#include <cstring>
#include <utility>

#include "align/smith_waterman.h"
#include "obs/metrics.h"
#include "util/check.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define CAFE_SW_SIMD_X86 1
#endif

namespace cafe {
namespace {

std::atomic<obs::Counter*> g_striped_scores{nullptr};
std::atomic<obs::Counter*> g_scalar_scores{nullptr};
std::atomic<obs::Counter*> g_striped_fallbacks{nullptr};

#if defined(CAFE_SW_SIMD_X86)

// Everything a kernel needs, resolved before the target-specific code
// runs: 256 profile-row pointers (only rows for characters that occur
// in `target` are non-null), the striped scratch columns, and the
// positive gap penalties.
struct StripedCtx {
  const int16_t* rows[256];
  const uint8_t* target;
  size_t target_len;
  size_t seg_len;
  int16_t* h_store;
  int16_t* h_load;
  int16_t* e;
  uint16_t gap_open;
  uint16_t gap_extend;
};

// Farrar's striped kernel at 128-bit width (8 query stripes per
// vector). The structure is the classic one (Farrar 2007, as shipped in
// SSW's word kernel): per target character, add the profile row to the
// previous column's H (rotated one lane so each stripe sees its
// diagonal predecessor), fold in E (target-direction gaps, persists
// across columns) and F (query-direction gaps), then run the lazy-F
// loop until no lane can still improve. E and F clamp at zero via
// unsigned saturating subtract — exact because H >= 0 everywhere, so a
// negative E/F can never win a max. Returns the best H seen; INT16_MAX
// means saturation (caller falls back).
__attribute__((target("sse2"))) int StripedKernelSse2(const StripedCtx& c) {
  const size_t seg = c.seg_len;
  const __m128i gap_open = _mm_set1_epi16(static_cast<short>(c.gap_open));
  const __m128i gap_ext = _mm_set1_epi16(static_cast<short>(c.gap_extend));
  __m128i max_h = _mm_setzero_si128();
  int16_t* store = c.h_store;
  int16_t* load = c.h_load;
  for (size_t t = 0; t < c.target_len; ++t) {
    const int16_t* prof = c.rows[c.target[t]];
    __m128i f = _mm_setzero_si128();
    // H of the previous column's last segment, rotated one lane up:
    // stripe k now holds the diagonal predecessor of query position
    // k*seg_len (zero enters lane 0 — the H[-1][*] = 0 boundary).
    __m128i h = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(store + (seg - 1) * 8));
    h = _mm_slli_si128(h, 2);
    std::swap(store, load);
    for (size_t j = 0; j < seg; ++j) {
      h = _mm_adds_epi16(
          h, _mm_loadu_si128(reinterpret_cast<const __m128i*>(prof + j * 8)));
      __m128i e =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(c.e + j * 8));
      h = _mm_max_epi16(h, e);
      h = _mm_max_epi16(h, f);
      max_h = _mm_max_epi16(max_h, h);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(store + j * 8), h);
      __m128i open = _mm_subs_epu16(h, gap_open);
      e = _mm_subs_epu16(e, gap_ext);
      e = _mm_max_epi16(e, open);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c.e + j * 8), e);
      f = _mm_subs_epu16(f, gap_ext);
      f = _mm_max_epi16(f, open);
      h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(load + j * 8));
    }
    // Lazy F (Farrar's original loop): propagate query-direction gaps
    // across stripe boundaries, testing before each segment whether F
    // can still beat opening a fresh gap there (E is deliberately not
    // touched — skipping it is exact because a gap can always be
    // re-opened for no more than extending when |open| >= |extend|).
    // Terminates because F only decays: each step subtracts gap_extend
    // (>= 1 for any validated scheme) and each wrap shifts a zero in.
    size_t j = 0;
    f = _mm_slli_si128(f, 2);
    __m128i h2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(store + j * 8));
    while (_mm_movemask_epi8(
               _mm_cmpgt_epi16(f, _mm_subs_epu16(h2, gap_open))) != 0) {
      h2 = _mm_max_epi16(h2, f);
      max_h = _mm_max_epi16(max_h, h2);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(store + j * 8), h2);
      f = _mm_subs_epu16(f, gap_ext);
      if (++j >= seg) {
        j = 0;
        f = _mm_slli_si128(f, 2);
      }
      h2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(store + j * 8));
    }
  }
  alignas(16) int16_t lanes[8];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), max_h);
  int best = 0;
  for (int16_t v : lanes) {
    if (v > best) best = v;
  }
  return best;
}

// Rotates a 256-bit vector of int16 one lane toward the MSB with zero
// fill (the cross-128-bit-lane equivalent of _mm_slli_si128(v, 2)).
__attribute__((target("avx2"))) inline __m256i ShiftLanesUp(__m256i v) {
  // [zero | v_low], then per-lane alignr stitches the carried bytes.
  __m256i carry = _mm256_permute2x128_si256(v, v, 0x28);
  return _mm256_alignr_epi8(v, carry, 14);
}

// The same kernel at 256-bit width (16 query stripes per vector).
__attribute__((target("avx2"))) int StripedKernelAvx2(const StripedCtx& c) {
  const size_t seg = c.seg_len;
  const __m256i gap_open = _mm256_set1_epi16(static_cast<short>(c.gap_open));
  const __m256i gap_ext = _mm256_set1_epi16(static_cast<short>(c.gap_extend));
  __m256i max_h = _mm256_setzero_si256();
  int16_t* store = c.h_store;
  int16_t* load = c.h_load;
  for (size_t t = 0; t < c.target_len; ++t) {
    const int16_t* prof = c.rows[c.target[t]];
    __m256i f = _mm256_setzero_si256();
    __m256i h = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(store + (seg - 1) * 16));
    h = ShiftLanesUp(h);
    std::swap(store, load);
    for (size_t j = 0; j < seg; ++j) {
      h = _mm256_adds_epi16(
          h,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prof + j * 16)));
      __m256i e =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c.e + j * 16));
      h = _mm256_max_epi16(h, e);
      h = _mm256_max_epi16(h, f);
      max_h = _mm256_max_epi16(max_h, h);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(store + j * 16), h);
      __m256i open = _mm256_subs_epu16(h, gap_open);
      e = _mm256_subs_epu16(e, gap_ext);
      e = _mm256_max_epi16(e, open);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(c.e + j * 16), e);
      f = _mm256_subs_epu16(f, gap_ext);
      f = _mm256_max_epi16(f, open);
      h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(load + j * 16));
    }
    size_t j = 0;
    f = ShiftLanesUp(f);
    __m256i h2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(store + j * 16));
    while (_mm256_movemask_epi8(_mm256_cmpgt_epi16(
               f, _mm256_subs_epu16(h2, gap_open))) != 0) {
      h2 = _mm256_max_epi16(h2, f);
      max_h = _mm256_max_epi16(max_h, h2);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(store + j * 16), h2);
      f = _mm256_subs_epu16(f, gap_ext);
      if (++j >= seg) {
        j = 0;
        f = ShiftLanesUp(f);
      }
      h2 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(store + j * 16));
    }
  }
  alignas(32) int16_t lanes[16];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), max_h);
  int best = 0;
  for (int16_t v : lanes) {
    if (v > best) best = v;
  }
  return best;
}

#endif  // CAFE_SW_SIMD_X86

}  // namespace

StripedScorer::StripedScorer(const ScoringScheme& scheme) {
  // Stored as positive penalties for the saturating-subtract domain;
  // Supported() guarantees they fit.
  gap_open_ = static_cast<uint16_t>(
      scheme.gap_open < 0 ? -scheme.gap_open : scheme.gap_open);
  gap_extend_ = static_cast<uint16_t>(
      scheme.gap_extend < 0 ? -scheme.gap_extend : scheme.gap_extend);
}

bool StripedScorer::Supported(const ScoringScheme& scheme) {
  // The clamp-at-zero E/F recurrences and the lazy-F early exit are
  // exact only for genuine local-alignment penalties: positive match,
  // negative mismatch, negative affine gaps with opening at least as
  // costly as extending — precisely what Validate() enforces.
  if (!scheme.Validate().ok()) return false;
  // Penalties must fit the 16-bit saturating domain.
  return scheme.gap_open > INT16_MIN && scheme.gap_extend > INT16_MIN;
}

void StripedScorer::PrepareQuery(std::string_view query, size_t lanes) {
  query_.assign(query.data(), query.size());
  lanes_ = lanes;
  seg_len_ = (query.size() + lanes - 1) / lanes;
  row_built_.fill(false);
  size_t stride = seg_len_ * lanes_;
  h_store_.assign(stride, 0);
  h_load_.assign(stride, 0);
  e_.assign(stride, 0);
}

const int16_t* StripedScorer::ProfileRow(const PairScoreTable& table,
                                         uint8_t c) {
  std::vector<int16_t>& row = rows_[c];
  if (!row_built_[c]) {
    const int16_t* scores = table.Row(static_cast<char>(c));
    // Zero padding past the query end is max-safe: a padded stripe's H
    // only ever copies earlier H values (score 0 contributions), so it
    // never exceeds the running maximum.
    row.assign(seg_len_ * lanes_, 0);
    for (size_t j = 0; j < seg_len_; ++j) {
      for (size_t k = 0; k < lanes_; ++k) {
        size_t q = j + k * seg_len_;
        if (q < query_.size()) {
          row[j * lanes_ + k] = scores[static_cast<uint8_t>(query_[q])];
        }
      }
    }
    row_built_[c] = true;
  }
  return row.data();
}

bool StripedScorer::Score(const PairScoreTable& table, std::string_view query,
                          std::string_view target, SimdLevel level,
                          int* score) {
#if defined(CAFE_SW_SIMD_X86)
  if (level == SimdLevel::kScalar) return false;
  if (query.empty() || target.empty()) return false;
  size_t lanes = level >= SimdLevel::kAvx2 ? 16 : 8;
  if (query != query_ || lanes != lanes_) {
    PrepareQuery(query, lanes);
  } else {
    size_t stride = seg_len_ * lanes_;
    std::memset(h_store_.data(), 0, stride * sizeof(int16_t));
    std::memset(h_load_.data(), 0, stride * sizeof(int16_t));
    std::memset(e_.data(), 0, stride * sizeof(int16_t));
  }

  StripedCtx ctx;
  std::memset(ctx.rows, 0, sizeof(ctx.rows));
  for (char tc : target) {
    uint8_t c = static_cast<uint8_t>(tc);
    if (ctx.rows[c] == nullptr) ctx.rows[c] = ProfileRow(table, c);
  }
  ctx.target = reinterpret_cast<const uint8_t*>(target.data());
  ctx.target_len = target.size();
  ctx.seg_len = seg_len_;
  ctx.h_store = h_store_.data();
  ctx.h_load = h_load_.data();
  ctx.e = e_.data();
  ctx.gap_open = gap_open_;
  ctx.gap_extend = gap_extend_;

  int best = level >= SimdLevel::kAvx2 ? StripedKernelAvx2(ctx)
                                       : StripedKernelSse2(ctx);
  if (best >= INT16_MAX) {
    // The saturating domain clipped; the 32-bit oracle rescues the
    // exact score.
    internal::RecordStripedFallback();
    return false;
  }
  *score = best;
  return true;
#else
  (void)table;
  (void)query;
  (void)target;
  (void)level;
  (void)score;
  return false;
#endif
}

void AttachAlignSimdMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    g_striped_scores.store(nullptr, std::memory_order_release);
    g_scalar_scores.store(nullptr, std::memory_order_release);
    g_striped_fallbacks.store(nullptr, std::memory_order_release);
    return;
  }
  g_striped_scores.store(registry->GetCounter("align.striped_scores"),
                         std::memory_order_release);
  g_scalar_scores.store(registry->GetCounter("align.scalar_scores"),
                        std::memory_order_release);
  g_striped_fallbacks.store(registry->GetCounter("align.striped_fallbacks"),
                            std::memory_order_release);
}

namespace internal {

void RecordScoreOnly(bool striped) {
  obs::Counter* counter =
      striped ? g_striped_scores.load(std::memory_order_acquire)
              : g_scalar_scores.load(std::memory_order_acquire);
  if (counter != nullptr) counter->Increment();
}

void RecordStripedFallback() {
  obs::Counter* counter = g_striped_fallbacks.load(std::memory_order_acquire);
  if (counter != nullptr) counter->Increment();
}

}  // namespace internal

}  // namespace cafe
