#include "align/scoring.h"

#include "alphabet/nucleotide.h"

namespace cafe {

int ScoringScheme::Score(char a, char b) const {
  if (a == b && IsBase(a)) return match;
  if (iupac_aware && (IsWildcard(a) || IsWildcard(b))) {
    return IupacCompatible(a, b) ? wildcard_score : mismatch;
  }
  return a == b ? match : mismatch;
}

Status ScoringScheme::Validate() const {
  if (match <= 0) {
    return Status::InvalidArgument("match score must be positive");
  }
  if (mismatch >= 0) {
    return Status::InvalidArgument("mismatch score must be negative");
  }
  if (gap_open >= 0 || gap_extend >= 0) {
    return Status::InvalidArgument("gap penalties must be negative");
  }
  if (gap_extend < gap_open) {
    return Status::InvalidArgument(
        "gap_extend must not be more negative than gap_open");
  }
  return Status::OK();
}

}  // namespace cafe
