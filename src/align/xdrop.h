// Ungapped X-drop extension (the BLAST hit-extension primitive).
//
// Starting from a seed match, extend left and right along the diagonal,
// accumulating substitution scores; an arm stops once its running score
// falls `xdrop` below the best seen. Used by the BLAST-like baseline
// engine and available as a cheap pre-filter before banded alignment.

#ifndef CAFE_ALIGN_XDROP_H_
#define CAFE_ALIGN_XDROP_H_

#include <cstdint>
#include <string_view>

#include "align/smith_waterman.h"

namespace cafe {

/// An ungapped alignment segment (one diagonal).
struct UngappedSegment {
  int score = 0;
  uint32_t query_begin = 0;
  uint32_t query_end = 0;  // half-open
  uint32_t target_begin = 0;
  uint32_t target_end = 0;

  uint32_t Length() const { return query_end - query_begin; }
};

/// Extends the seed query[q_pos, q_pos+seed_len) == target[t_pos, ...)
/// in both directions. `table` supplies substitution scores; `xdrop` is
/// the (positive) drop-off threshold.
UngappedSegment XDropExtend(std::string_view query, std::string_view target,
                            uint32_t q_pos, uint32_t t_pos,
                            uint32_t seed_len, const PairScoreTable& table,
                            int xdrop);

}  // namespace cafe

#endif  // CAFE_ALIGN_XDROP_H_
