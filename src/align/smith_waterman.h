// Local alignment (Smith-Waterman with Gotoh affine gaps).
//
// Aligner bundles a scoring scheme with a precomputed 256x256 pair-score
// table so the O(mn) inner loops are pure table lookups. One Aligner is
// built per search worker and reused across every candidate sequence it
// scores.
//
// Reentrancy contract (scratch-per-instance): the const query methods
// mutate only this instance's DP scratch and cell counter, so distinct
// Aligner instances are safe to use concurrently — the parallel fine
// phase gives every worker thread its own Aligner and sums the
// per-instance cell counts afterwards. A single instance must not be
// shared across threads without external synchronization.

#ifndef CAFE_ALIGN_SMITH_WATERMAN_H_
#define CAFE_ALIGN_SMITH_WATERMAN_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "align/alignment.h"
#include "align/scoring.h"
#include "align/sw_simd.h"
#include "util/simd.h"
#include "util/status.h"

namespace cafe {

/// Dense pairwise score lookup built from a ScoringScheme.
class PairScoreTable {
 public:
  explicit PairScoreTable(const ScoringScheme& scheme);

  int operator()(char a, char b) const {
    return table_[static_cast<uint8_t>(a)][static_cast<uint8_t>(b)];
  }

  const int16_t* Row(char a) const {
    return table_[static_cast<uint8_t>(a)].data();
  }

 private:
  std::array<std::array<int16_t, 256>, 256> table_;
};

class Aligner {
 public:
  explicit Aligner(const ScoringScheme& scheme = ScoringScheme());

  const ScoringScheme& scheme() const { return scheme_; }

  /// Best local alignment score; linear space, O(|q|*|t|) time.
  /// Dispatches to the striped SIMD kernel (align/sw_simd.h) when the
  /// active tier and the scheme allow it; the scalar loop is the oracle
  /// and the saturation fallback. Every tier returns the identical
  /// score and advances cells_computed() identically.
  int ScoreOnly(std::string_view query, std::string_view target) const;

  /// Best local alignment with traceback. Fails with InvalidArgument when
  /// the DP matrix would exceed `max_cells` (one byte per cell).
  Result<LocalAlignment> Align(std::string_view query,
                               std::string_view target,
                               uint64_t max_cells = uint64_t{1} << 26) const;

  /// Banded local alignment score. The band is centred on diagonal
  /// `diagonal` (= target position - query position) with half-width
  /// `band`: only cells with |(j - i) - diagonal| <= band are computed.
  /// This is the fine-search workhorse — candidates arrive from the
  /// coarse phase with a known hit diagonal.
  int BandedScore(std::string_view query, std::string_view target,
                  int64_t diagonal, int band) const;

  /// Banded local alignment with traceback.
  Result<LocalAlignment> BandedAlign(std::string_view query,
                                     std::string_view target,
                                     int64_t diagonal, int band) const;

  /// DP cells computed since construction (performance accounting for the
  /// experiments).
  uint64_t cells_computed() const { return cells_; }
  void ResetCellCount() { cells_ = 0; }

  /// The dispatch tier ScoreOnly runs at — ActiveSimdLevel() at
  /// construction. The setter is a test hook: the oracle tests force
  /// every tier onto identical inputs without re-exec'ing under a
  /// different CAFE_SIMD_LEVEL.
  SimdLevel simd_level() const { return simd_level_; }
  void set_simd_level(SimdLevel level) { simd_level_ = level; }

 private:
  ScoringScheme scheme_;
  PairScoreTable table_;
  SimdLevel simd_level_;
  bool striped_ok_;
  mutable uint64_t cells_ = 0;
  mutable std::vector<int32_t> h_buf_;
  mutable std::vector<int32_t> f_buf_;
  mutable StripedScorer striped_;
};

}  // namespace cafe

#endif  // CAFE_ALIGN_SMITH_WATERMAN_H_
