// Striped (Farrar) SIMD Smith-Waterman, score-only.
//
// The fine phase's dominant cost is Aligner::ScoreOnly over the
// candidate set. This is the Farrar 2007 formulation of that exact
// recurrence: the query is laid out striped across 16-bit vector lanes
// (8 for SSE2, 16 for AVX2), a per-target-character query profile turns
// the substitution lookup into one vector load, and the vertical-gap
// dependency is resolved by Farrar's lazy-F loop (test-before-apply,
// so F chains propagate across stripe boundaries until no lane can
// still improve). Saturating 16-bit arithmetic clamps E/F at zero —
// exact for
// local alignment because H >= 0 always (scores this kernel returns are
// bit-identical to the scalar oracle; the tier tests enforce it).
//
// Scoring semantics are inherited wholesale: the profile is built from
// the same PairScoreTable the scalar loop reads, so IUPAC wildcard
// scoring, mismatch and match values all match by construction. Scores
// that would reach INT16_MAX saturate; Score() detects that and returns
// false so the caller reruns the 32-bit scalar oracle — the fallback is
// a correctness guarantee, not an approximation.
//
// Reentrancy: same contract as Aligner (scratch-per-instance). One
// StripedScorer lives inside each Aligner; distinct instances are safe
// concurrently, a single instance is not.

#ifndef CAFE_ALIGN_SW_SIMD_H_
#define CAFE_ALIGN_SW_SIMD_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "align/scoring.h"
#include "util/simd.h"

namespace cafe {

namespace obs {
class MetricsRegistry;
}  // namespace obs

class PairScoreTable;

class StripedScorer {
 public:
  explicit StripedScorer(const ScoringScheme& scheme);

  /// True iff the striped kernels compute this scheme exactly: real
  /// Smith-Waterman penalties (ScoringScheme::Validate) whose gap costs
  /// fit the 16-bit saturating domain. Unsupported schemes always take
  /// the scalar oracle.
  static bool Supported(const ScoringScheme& scheme);

  /// Computes the best local alignment score of query vs target with
  /// the widest kernel `level` allows. Returns true and sets `*score`
  /// on success; returns false — caller must run the scalar oracle —
  /// when `level` is scalar (or the build has no x86 kernels), either
  /// sequence is empty, or the 16-bit score domain saturated.
  ///
  /// `table` must be the table built from the scheme this scorer was
  /// constructed with (the Aligner owns both).
  bool Score(const PairScoreTable& table, std::string_view query,
             std::string_view target, SimdLevel level, int* score);

 private:
  /// Re-stripes the cached query layout for `lanes` lanes.
  void PrepareQuery(std::string_view query, size_t lanes);
  /// Builds (once) and returns the striped profile row for target
  /// character `c`: entry j*lanes + k = score(query[j + k*seg_len], c),
  /// zero-padded past the query end.
  const int16_t* ProfileRow(const PairScoreTable& table, uint8_t c);

  uint16_t gap_open_ = 0;    // positive penalty, includes first base
  uint16_t gap_extend_ = 0;  // positive penalty per further base

  std::string query_;  // the query the current layout was built for
  size_t lanes_ = 0;
  size_t seg_len_ = 0;
  std::array<std::vector<int16_t>, 256> rows_;  // lazily built profile
  std::array<bool, 256> row_built_{};
  std::vector<int16_t> h_store_;
  std::vector<int16_t> h_load_;
  std::vector<int16_t> e_;
};

/// Mirrors ScoreOnly's dispatch into counters:
///   align.striped_scores    ScoreOnly calls served by a striped kernel
///   align.scalar_scores     ScoreOnly calls served by the scalar oracle
///   align.striped_fallbacks striped attempts that saturated 16 bits
///                           and reran on the oracle
/// Pass nullptr to detach. Attach before concurrent search starts; the
/// counters themselves are lock-free.
void AttachAlignSimdMetrics(obs::MetricsRegistry* registry);

namespace internal {

/// Hot-path hooks for smith_waterman.cc / sw_simd.cc (relaxed-atomic
/// counter pointers; one null check per site when detached).
void RecordScoreOnly(bool striped);
void RecordStripedFallback();

}  // namespace internal

}  // namespace cafe

#endif  // CAFE_ALIGN_SW_SIMD_H_
