// Alignment score statistics (Karlin-Altschul / Gumbel).
//
// Local alignment scores of unrelated sequences follow an extreme-value
// (Gumbel) distribution, so a raw score S converts to
//   bit score  = (lambda*S - ln K) / ln 2
//   E-value    = K * m * n * exp(-lambda * S)
// For ungapped scoring, lambda is the unique positive root of
//   sum_ij p_i p_j exp(lambda * s_ij) = 1
// (Karlin & Altschul, 1990), solved here exactly by bisection. For
// gapped scoring no closed form exists; CalibrateGumbel fits (lambda, K)
// empirically from Smith-Waterman scores of random sequence pairs, the
// standard practice since BLAST 2.

#ifndef CAFE_ALIGN_STATISTICS_H_
#define CAFE_ALIGN_STATISTICS_H_

#include <array>
#include <vector>

#include "align/scoring.h"
#include "util/status.h"

namespace cafe {

/// Gumbel (extreme-value) parameters: the (lambda, K) pair of the
/// Karlin-Altschul theory.
struct GumbelParams {
  double lambda = 0.0;
  double k = 0.0;
};

/// Uniform nucleotide background.
inline constexpr std::array<double, 4> kUniformComposition = {0.25, 0.25,
                                                              0.25, 0.25};

/// Exact ungapped lambda for a substitution-only scoring scheme over the
/// given base composition. Fails if the expected pair score is
/// non-negative (no positive root exists — the scheme cannot produce
/// local-alignment statistics).
Result<double> UngappedLambda(const ScoringScheme& scheme,
                              const std::array<double, 4>& composition);

/// Method-of-moments Gumbel fit from raw maximal scores of random
/// alignments between sequences of lengths m and n:
///   lambda = pi / (sqrt(6) * stddev),  K = exp(lambda*mu) / (m*n).
GumbelParams FitGumbel(const std::vector<int>& scores, uint64_t m,
                       uint64_t n);

/// Empirical calibration: Smith-Waterman scores of `trials` random pairs
/// (composition-weighted) of lengths m x n, fitted with FitGumbel.
/// Deterministic for a given seed. Costs trials * m * n DP cells.
Result<GumbelParams> CalibrateGumbel(
    const ScoringScheme& scheme, uint64_t m, uint64_t n, int trials,
    uint64_t seed,
    const std::array<double, 4>& composition = kUniformComposition);

/// Relative entropy H of the target (aligned-pair) distribution at the
/// given lambda: H = lambda * sum_ij p_i p_j s_ij exp(lambda s_ij), in
/// nats per aligned pair. Drives the edge-effect length correction.
Result<double> UngappedEntropy(const ScoringScheme& scheme,
                               const std::array<double, 4>& composition);

/// BLAST-style edge-effect correction: an alignment of expected length
/// l = ln(K m n)/H cannot start within l of a sequence end, so E-values
/// use effective lengths m' = m - l, n' = n - (n/m_avg)*l. This returns
/// the corrected (m', n') clamped to at least 1.
struct EffectiveLengths {
  uint64_t query = 0;
  uint64_t database = 0;
};
EffectiveLengths ComputeEffectiveLengths(uint64_t query_length,
                                         uint64_t database_bases,
                                         uint64_t num_sequences,
                                         const GumbelParams& params,
                                         double entropy);

/// bits = (lambda*S - ln K) / ln 2.
double BitScore(int raw_score, const GumbelParams& params);

/// E = K * m * n * exp(-lambda * S).
double Evalue(int raw_score, uint64_t query_length, uint64_t database_bases,
              const GumbelParams& params);

}  // namespace cafe

#endif  // CAFE_ALIGN_STATISTICS_H_
