// Scoring schemes for nucleotide local alignment.
//
// Default parameters follow the classic nucleotide practice (match +5,
// mismatch -4, affine gaps): the regime in which the paper's fine search
// ranks candidate sequences. Wildcard-aware scoring treats IUPAC-
// compatible letter pairs (e.g. N vs anything, R vs A) as neutral rather
// than as mismatches, so lossless wildcard storage does not poison
// alignments.

#ifndef CAFE_ALIGN_SCORING_H_
#define CAFE_ALIGN_SCORING_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace cafe {

struct ScoringScheme {
  int match = 5;
  int mismatch = -4;
  /// Penalty charged when a gap is opened (includes the first gapped base).
  int gap_open = -10;
  /// Penalty per additional gapped base.
  int gap_extend = -2;
  /// Score for non-identical but IUPAC-compatible pairs (only consulted
  /// when iupac_aware is set).
  int wildcard_score = 0;
  bool iupac_aware = true;

  /// Pairwise substitution score.
  int Score(char a, char b) const;

  Status Validate() const;
};

}  // namespace cafe

#endif  // CAFE_ALIGN_SCORING_H_
