#include "align/xdrop.h"

namespace cafe {

UngappedSegment XDropExtend(std::string_view query, std::string_view target,
                            uint32_t q_pos, uint32_t t_pos,
                            uint32_t seed_len, const PairScoreTable& table,
                            int xdrop) {
  // Score the seed itself.
  int score = 0;
  for (uint32_t k = 0; k < seed_len; ++k) {
    score += table(query[q_pos + k], target[t_pos + k]);
  }

  UngappedSegment seg;
  seg.query_begin = q_pos;
  seg.query_end = q_pos + seed_len;
  seg.target_begin = t_pos;
  seg.target_end = t_pos + seed_len;

  // Left arm.
  {
    int run = score;
    int best = score;
    uint32_t qi = q_pos;
    uint32_t ti = t_pos;
    uint32_t best_q = q_pos, best_t = t_pos;
    while (qi > 0 && ti > 0) {
      --qi;
      --ti;
      run += table(query[qi], target[ti]);
      if (run > best) {
        best = run;
        best_q = qi;
        best_t = ti;
      } else if (run < best - xdrop) {
        break;
      }
    }
    score = best;
    seg.query_begin = best_q;
    seg.target_begin = best_t;
  }

  // Right arm.
  {
    int run = score;
    int best = score;
    uint32_t qi = q_pos + seed_len;
    uint32_t ti = t_pos + seed_len;
    uint32_t best_q = qi, best_t = ti;
    while (qi < query.size() && ti < target.size()) {
      run += table(query[qi], target[ti]);
      ++qi;
      ++ti;
      if (run > best) {
        best = run;
        best_q = qi;
        best_t = ti;
      } else if (run < best - xdrop) {
        break;
      }
    }
    score = best;
    seg.query_end = best_q;
    seg.target_end = best_t;
  }

  seg.score = score;
  return seg;
}

}  // namespace cafe
