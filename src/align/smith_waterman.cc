#include "align/smith_waterman.h"

#include <algorithm>
#include <cassert>

namespace cafe {
namespace {

constexpr int32_t kNegInf = INT32_MIN / 4;

// Traceback direction encoding, one byte per cell.
constexpr uint8_t kHStop = 0;
constexpr uint8_t kHDiag = 1;
constexpr uint8_t kHFromE = 2;  // horizontal (gap consuming target)
constexpr uint8_t kHFromF = 3;  // vertical (gap consuming query)
constexpr uint8_t kHMask = 3;
constexpr uint8_t kEExtend = 4;  // E came from E (not H)
constexpr uint8_t kFExtend = 8;  // F came from F (not H)

}  // namespace

PairScoreTable::PairScoreTable(const ScoringScheme& scheme) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      table_[a][b] = static_cast<int16_t>(
          scheme.Score(static_cast<char>(a), static_cast<char>(b)));
    }
  }
}

Aligner::Aligner(const ScoringScheme& scheme)
    : scheme_(scheme),
      table_(scheme),
      simd_level_(ActiveSimdLevel()),
      striped_ok_(StripedScorer::Supported(scheme)),
      striped_(scheme) {}

int Aligner::ScoreOnly(std::string_view query, std::string_view target) const {
  const size_t m = query.size();
  const size_t n = target.size();
  if (m == 0 || n == 0) return 0;
  if (simd_level_ != SimdLevel::kScalar && striped_ok_) {
    int score = 0;
    if (striped_.Score(table_, query, target, simd_level_, &score)) {
      // Same accounting as the scalar loop, so stats and traces are
      // byte-identical across dispatch tiers.
      cells_ += static_cast<uint64_t>(m) * n;
      internal::RecordScoreOnly(/*striped=*/true);
      return score;
    }
  }
  internal::RecordScoreOnly(/*striped=*/false);
  const int32_t go = scheme_.gap_open;
  const int32_t ge = scheme_.gap_extend;

  h_buf_.assign(n + 1, 0);
  f_buf_.assign(n + 1, kNegInf);
  int32_t* h = h_buf_.data();
  int32_t* f = f_buf_.data();

  int32_t best = 0;
  for (size_t i = 1; i <= m; ++i) {
    const int16_t* score_row = table_.Row(query[i - 1]);
    int32_t diag = 0;  // H[i-1][0]
    int32_t e = kNegInf;
    int32_t h_left = 0;  // H[i][j-1]
    for (size_t j = 1; j <= n; ++j) {
      int32_t fj = std::max(h[j] + go, f[j] + ge);
      f[j] = fj;
      e = std::max(h_left + go, e + ge);
      int32_t hv = diag + score_row[static_cast<uint8_t>(target[j - 1])];
      hv = std::max(hv, e);
      hv = std::max(hv, fj);
      hv = std::max(hv, 0);
      diag = h[j];
      h[j] = hv;
      h_left = hv;
      best = std::max(best, hv);
    }
  }
  cells_ += static_cast<uint64_t>(m) * n;
  return best;
}

Result<LocalAlignment> Aligner::Align(std::string_view query,
                                      std::string_view target,
                                      uint64_t max_cells) const {
  const size_t m = query.size();
  const size_t n = target.size();
  if (m == 0 || n == 0) {
    return LocalAlignment{};
  }
  if (static_cast<uint64_t>(m) * n > max_cells) {
    return Status::InvalidArgument(
        "alignment matrix of " + std::to_string(m) + "x" + std::to_string(n) +
        " exceeds max_cells; use BandedAlign for long targets");
  }
  const int32_t go = scheme_.gap_open;
  const int32_t ge = scheme_.gap_extend;

  std::vector<uint8_t> dir(m * n);
  h_buf_.assign(n + 1, 0);
  f_buf_.assign(n + 1, kNegInf);
  int32_t* h = h_buf_.data();
  int32_t* f = f_buf_.data();

  int32_t best = 0;
  size_t best_i = 0, best_j = 0;
  for (size_t i = 1; i <= m; ++i) {
    const int16_t* score_row = table_.Row(query[i - 1]);
    uint8_t* dir_row = dir.data() + (i - 1) * n;
    int32_t diag = 0;
    int32_t e = kNegInf;
    int32_t h_left = 0;
    for (size_t j = 1; j <= n; ++j) {
      uint8_t d = 0;

      int32_t f_open = h[j] + go;
      int32_t f_ext = f[j] + ge;
      int32_t fj = f_open;
      if (f_ext > f_open) {
        fj = f_ext;
        d |= kFExtend;
      }
      f[j] = fj;

      int32_t e_open = h_left + go;
      int32_t e_ext = e + ge;
      if (e_ext > e_open) {
        e = e_ext;
        d |= kEExtend;
      } else {
        e = e_open;
      }

      int32_t hd = diag + score_row[static_cast<uint8_t>(target[j - 1])];
      int32_t hv = 0;
      uint8_t src = kHStop;
      if (hd > hv) {
        hv = hd;
        src = kHDiag;
      }
      if (e > hv) {
        hv = e;
        src = kHFromE;
      }
      if (fj > hv) {
        hv = fj;
        src = kHFromF;
      }
      dir_row[j - 1] = d | src;

      diag = h[j];
      h[j] = hv;
      h_left = hv;
      if (hv > best) {
        best = hv;
        best_i = i;
        best_j = j;
      }
    }
  }
  cells_ += static_cast<uint64_t>(m) * n;

  LocalAlignment out;
  out.score = best;
  if (best == 0) {
    return out;
  }

  // Traceback from the best cell.
  std::vector<EditOp> rops;
  size_t i = best_i, j = best_j;
  enum class State { kH, kE, kF } state = State::kH;
  while (i > 0 && j > 0) {
    uint8_t d = dir[(i - 1) * n + (j - 1)];
    if (state == State::kH) {
      uint8_t src = d & kHMask;
      if (src == kHStop) break;
      if (src == kHDiag) {
        rops.push_back(query[i - 1] == target[j - 1] ? EditOp::kMatch
                                                     : EditOp::kMismatch);
        --i;
        --j;
      } else if (src == kHFromE) {
        state = State::kE;
      } else {
        state = State::kF;
      }
    } else if (state == State::kE) {
      rops.push_back(EditOp::kDeletion);
      bool ext = (d & kEExtend) != 0;
      --j;
      if (!ext) state = State::kH;
    } else {  // State::kF
      rops.push_back(EditOp::kInsertion);
      bool ext = (d & kFExtend) != 0;
      --i;
      if (!ext) state = State::kH;
    }
  }

  out.query_begin = static_cast<uint32_t>(i);
  out.query_end = static_cast<uint32_t>(best_i);
  out.target_begin = static_cast<uint32_t>(j);
  out.target_end = static_cast<uint32_t>(best_j);
  out.ops.assign(rops.rbegin(), rops.rend());
  return out;
}

}  // namespace cafe
