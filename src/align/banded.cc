// Banded local alignment. The band is centred on a diagonal supplied by
// the coarse phase (interval hits fix the diagonal of a putative
// alignment) so fine search costs O(|q| * band) instead of O(|q| * |t|).
//
// Band geometry: cell (i, j) — query base i, target base j, 1-based — is
// inside the band when j - i is within `band` of the centre diagonal d0.
// Row i covers k = 0 .. 2*band, with j = i + d0 - band + k. Under this
// indexing the previous row's slot k is the diagonal neighbour and slot
// k+1 the vertical neighbour, so one array updated in place (ascending k)
// suffices: slot k is read (diag) in iteration k and slot k+1 (vertical)
// before either is overwritten.

#include <algorithm>
#include <vector>

#include "align/smith_waterman.h"

namespace cafe {
namespace {

constexpr int32_t kNegInf = INT32_MIN / 4;

constexpr uint8_t kHStop = 0;
constexpr uint8_t kHDiag = 1;
constexpr uint8_t kHFromE = 2;  // horizontal: gap consuming a target base
constexpr uint8_t kHFromF = 3;  // vertical: gap consuming a query base
constexpr uint8_t kHMask = 3;
constexpr uint8_t kEExtend = 4;
constexpr uint8_t kFExtend = 8;

struct BandedResult {
  int32_t best = 0;
  size_t best_i = 0;
  size_t best_j = 0;
};

// When `dir` is non-null it receives one byte per in-band cell
// (row-major, 2*band+1 cells per row) for traceback.
BandedResult RunBandedDp(std::string_view query, std::string_view target,
                         int64_t d0, int band, const PairScoreTable& table,
                         int32_t go, int32_t ge, std::vector<int32_t>* h_buf,
                         std::vector<int32_t>* f_buf,
                         std::vector<uint8_t>* dir, uint64_t* cells) {
  const int64_t m = static_cast<int64_t>(query.size());
  const int64_t n = static_cast<int64_t>(target.size());
  const int64_t width = 2 * static_cast<int64_t>(band) + 1;

  h_buf->assign(width, kNegInf);
  f_buf->assign(width, kNegInf);
  int32_t* h = h_buf->data();
  int32_t* f = f_buf->data();

  BandedResult out;
  for (int64_t i = 1; i <= m; ++i) {
    const int16_t* score_row = table.Row(query[i - 1]);
    uint8_t* dir_row = dir ? dir->data() + (i - 1) * width : nullptr;
    const bool first_row = (i == 1);
    const int64_t j_first = i + d0 - band;

    // Left neighbours of the first in-band cell of this row.
    int32_t h_left = (j_first - 1 == 0) ? 0 : kNegInf;
    int32_t e = kNegInf;

    for (int64_t k = 0; k < width; ++k) {
      const int64_t j = j_first + k;
      if (j < 1 || j > n) {
        h[k] = kNegInf;
        f[k] = kNegInf;
        if (dir_row) dir_row[k] = kHStop;
        h_left = kNegInf;
        e = kNegInf;
        continue;
      }

      // Previous-row neighbours (row 0 is all zeros for local alignment;
      // column 0 likewise).
      int32_t diag = first_row ? 0 : ((j - 1 == 0) ? 0 : h[k]);
      int32_t ph = first_row ? 0 : (k + 1 < width ? h[k + 1] : kNegInf);
      int32_t pf = first_row ? kNegInf
                             : (k + 1 < width ? f[k + 1] : kNegInf);

      uint8_t d = 0;
      int32_t f_open = ph + go;
      int32_t f_ext = pf + ge;
      int32_t fj = f_open;
      if (f_ext > f_open) {
        fj = f_ext;
        d |= kFExtend;
      }

      int32_t e_open = h_left + go;
      int32_t e_ext = e + ge;
      if (e_ext > e_open) {
        e = e_ext;
        d |= kEExtend;
      } else {
        e = e_open;
      }

      int32_t hd = diag + score_row[static_cast<uint8_t>(target[j - 1])];
      int32_t hv = 0;
      uint8_t src = kHStop;
      if (hd > hv) {
        hv = hd;
        src = kHDiag;
      }
      if (e > hv) {
        hv = e;
        src = kHFromE;
      }
      if (fj > hv) {
        hv = fj;
        src = kHFromF;
      }
      if (dir_row) dir_row[k] = d | src;

      h[k] = hv;
      f[k] = fj;
      h_left = hv;
      if (hv > out.best) {
        out.best = hv;
        out.best_i = static_cast<size_t>(i);
        out.best_j = static_cast<size_t>(j);
      }
    }
    if (cells) *cells += static_cast<uint64_t>(width);
  }
  return out;
}

}  // namespace

int Aligner::BandedScore(std::string_view query, std::string_view target,
                         int64_t diagonal, int band) const {
  if (query.empty() || target.empty() || band < 0) return 0;
  BandedResult r =
      RunBandedDp(query, target, diagonal, band, table_, scheme_.gap_open,
                  scheme_.gap_extend, &h_buf_, &f_buf_, nullptr, &cells_);
  return r.best;
}

Result<LocalAlignment> Aligner::BandedAlign(std::string_view query,
                                            std::string_view target,
                                            int64_t diagonal,
                                            int band) const {
  LocalAlignment out;
  if (query.empty() || target.empty() || band < 0) return out;
  const int64_t width = 2 * static_cast<int64_t>(band) + 1;
  std::vector<uint8_t> dir(query.size() * static_cast<size_t>(width));
  BandedResult r =
      RunBandedDp(query, target, diagonal, band, table_, scheme_.gap_open,
                  scheme_.gap_extend, &h_buf_, &f_buf_, &dir, &cells_);
  out.score = r.best;
  if (r.best == 0) return out;

  std::vector<EditOp> rops;
  int64_t i = static_cast<int64_t>(r.best_i);
  int64_t j = static_cast<int64_t>(r.best_j);
  enum class State { kH, kE, kF } state = State::kH;
  while (i > 0 && j > 0) {
    int64_t k = j - i - diagonal + band;
    if (k < 0 || k >= width) break;
    uint8_t d = dir[(i - 1) * width + k];
    if (state == State::kH) {
      uint8_t src = d & kHMask;
      if (src == kHStop) break;
      if (src == kHDiag) {
        rops.push_back(query[i - 1] == target[j - 1] ? EditOp::kMatch
                                                     : EditOp::kMismatch);
        --i;
        --j;
      } else if (src == kHFromE) {
        state = State::kE;
      } else {
        state = State::kF;
      }
    } else if (state == State::kE) {
      rops.push_back(EditOp::kDeletion);
      bool ext = (d & kEExtend) != 0;
      --j;
      if (!ext) state = State::kH;
    } else {
      rops.push_back(EditOp::kInsertion);
      bool ext = (d & kFExtend) != 0;
      --i;
      if (!ext) state = State::kH;
    }
  }

  out.query_begin = static_cast<uint32_t>(i);
  out.query_end = static_cast<uint32_t>(r.best_i);
  out.target_begin = static_cast<uint32_t>(j);
  out.target_end = static_cast<uint32_t>(r.best_j);
  out.ops.assign(rops.rbegin(), rops.rend());
  return out;
}

}  // namespace cafe
