#include "align/alignment.h"

#include <sstream>

namespace cafe {

size_t LocalAlignment::Matches() const {
  size_t n = 0;
  for (EditOp op : ops) n += op == EditOp::kMatch;
  return n;
}

size_t LocalAlignment::Mismatches() const {
  size_t n = 0;
  for (EditOp op : ops) n += op == EditOp::kMismatch;
  return n;
}

size_t LocalAlignment::GapColumns() const {
  size_t n = 0;
  for (EditOp op : ops) {
    n += op == EditOp::kInsertion || op == EditOp::kDeletion;
  }
  return n;
}

double LocalAlignment::Identity() const {
  if (ops.empty()) return 0.0;
  return static_cast<double>(Matches()) / static_cast<double>(ops.size());
}

std::string LocalAlignment::Cigar() const {
  std::string out;
  size_t i = 0;
  while (i < ops.size()) {
    size_t j = i;
    while (j < ops.size() && ops[j] == ops[i]) ++j;
    out += std::to_string(j - i);
    out.push_back(static_cast<char>(ops[i]));
    i = j;
  }
  return out;
}

std::string LocalAlignment::Format(std::string_view query,
                                   std::string_view target,
                                   size_t width) const {
  if (width == 0) width = 60;
  std::string qrow, mrow, trow;
  size_t qi = query_begin;
  size_t ti = target_begin;
  for (EditOp op : ops) {
    switch (op) {
      case EditOp::kMatch:
        qrow.push_back(query[qi]);
        mrow.push_back('|');
        trow.push_back(target[ti]);
        ++qi;
        ++ti;
        break;
      case EditOp::kMismatch:
        qrow.push_back(query[qi]);
        mrow.push_back(' ');
        trow.push_back(target[ti]);
        ++qi;
        ++ti;
        break;
      case EditOp::kInsertion:
        qrow.push_back(query[qi]);
        mrow.push_back(' ');
        trow.push_back('-');
        ++qi;
        break;
      case EditOp::kDeletion:
        qrow.push_back('-');
        mrow.push_back(' ');
        trow.push_back(target[ti]);
        ++ti;
        break;
    }
  }

  std::ostringstream out;
  out << "score " << score << "  identity "
      << static_cast<int>(Identity() * 100.0 + 0.5) << "%  query "
      << query_begin << ".." << query_end << "  target " << target_begin
      << ".." << target_end << "\n";
  for (size_t start = 0; start < qrow.size(); start += width) {
    size_t len = std::min(width, qrow.size() - start);
    out << "Q " << qrow.substr(start, len) << "\n";
    out << "  " << mrow.substr(start, len) << "\n";
    out << "T " << trow.substr(start, len) << "\n";
    if (start + width < qrow.size()) out << "\n";
  }
  return out.str();
}

}  // namespace cafe
