// Local alignment results and their rendering.

#ifndef CAFE_ALIGN_ALIGNMENT_H_
#define CAFE_ALIGN_ALIGNMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cafe {

/// One column class of an alignment transcript, extended-CIGAR style.
enum class EditOp : char {
  kMatch = '=',
  kMismatch = 'X',
  kInsertion = 'I',  // base present in the query only
  kDeletion = 'D',   // base present in the target only
};

/// A scored local alignment between a query and a target region.
/// Coordinate ranges are half-open: [query_begin, query_end).
struct LocalAlignment {
  int score = 0;
  uint32_t query_begin = 0;
  uint32_t query_end = 0;
  uint32_t target_begin = 0;
  uint32_t target_end = 0;
  std::vector<EditOp> ops;  // empty for score-only computations

  uint32_t QuerySpan() const { return query_end - query_begin; }
  uint32_t TargetSpan() const { return target_end - target_begin; }

  size_t Matches() const;
  size_t Mismatches() const;
  size_t GapColumns() const;

  /// Matches / alignment columns, in [0, 1]; 0 for empty alignments.
  double Identity() const;

  /// Compressed CIGAR string over {=, X, I, D}, e.g. "37=1X12=2D8=".
  std::string Cigar() const;

  /// Three-line pretty print (query row, match row, target row), wrapped
  /// at `width` columns. Requires ops to be populated.
  std::string Format(std::string_view query, std::string_view target,
                     size_t width = 60) const;
};

}  // namespace cafe

#endif  // CAFE_ALIGN_ALIGNMENT_H_
