#include "align/statistics.h"

#include <cmath>

#include "align/smith_waterman.h"
#include "alphabet/nucleotide.h"
#include "util/random.h"

namespace cafe {
namespace {

constexpr double kLn2 = 0.6931471805599453;
constexpr double kEulerGamma = 0.5772156649015329;

// sum_ij p_i p_j exp(lambda * s_ij) for the 4x4 base block.
double PairExpSum(const ScoringScheme& scheme,
                  const std::array<double, 4>& p, double lambda) {
  double total = 0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      int s = scheme.Score(CodeToBase(i), CodeToBase(j));
      total += p[i] * p[j] * std::exp(lambda * s);
    }
  }
  return total;
}

}  // namespace

Result<double> UngappedLambda(const ScoringScheme& scheme,
                              const std::array<double, 4>& composition) {
  CAFE_RETURN_IF_ERROR(scheme.Validate());
  double psum = 0;
  for (double p : composition) {
    if (p < 0) return Status::InvalidArgument("negative composition");
    psum += p;
  }
  if (psum <= 0) return Status::InvalidArgument("empty composition");
  std::array<double, 4> p = composition;
  for (double& v : p) v /= psum;

  // Expected pair score must be negative for a positive root to exist.
  double expected = 0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      expected += p[i] * p[j] *
                  scheme.Score(CodeToBase(i), CodeToBase(j));
    }
  }
  if (expected >= 0) {
    return Status::InvalidArgument(
        "expected pair score is non-negative; no Karlin-Altschul "
        "statistics exist for this scheme/composition");
  }

  // f(lambda) = PairExpSum - 1: f(0) = 0, f'(0) = expected < 0, and
  // f -> +inf as lambda grows (match scores are positive), so the
  // positive root is bracketed by doubling then found by bisection.
  double hi = 1e-3;
  while (PairExpSum(scheme, p, hi) < 1.0) {
    hi *= 2;
    if (hi > 1e3) return Status::Internal("lambda bracket failed");
  }
  double lo = hi / 2;
  // `lo` may still be past the root if the first doubling overshot;
  // rewind toward zero until f(lo) < 1.
  while (lo > 1e-12 && PairExpSum(scheme, p, lo) >= 1.0) lo /= 2;
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (PairExpSum(scheme, p, mid) < 1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

GumbelParams FitGumbel(const std::vector<int>& scores, uint64_t m,
                       uint64_t n) {
  GumbelParams params;
  if (scores.size() < 2 || m == 0 || n == 0) return params;
  double mean = 0;
  for (int s : scores) mean += s;
  mean /= static_cast<double>(scores.size());
  double var = 0;
  for (int s : scores) var += (s - mean) * (s - mean);
  var /= static_cast<double>(scores.size() - 1);
  if (var <= 0) return params;

  double lambda = 3.141592653589793 / std::sqrt(6.0 * var);
  double mu = mean - kEulerGamma / lambda;
  double k = std::exp(lambda * mu) /
             (static_cast<double>(m) * static_cast<double>(n));
  params.lambda = lambda;
  params.k = k;
  return params;
}

Result<GumbelParams> CalibrateGumbel(
    const ScoringScheme& scheme, uint64_t m, uint64_t n, int trials,
    uint64_t seed, const std::array<double, 4>& composition) {
  CAFE_RETURN_IF_ERROR(scheme.Validate());
  if (m == 0 || n == 0 || trials < 2) {
    return Status::InvalidArgument("need m, n > 0 and trials >= 2");
  }
  double psum =
      composition[0] + composition[1] + composition[2] + composition[3];
  if (psum <= 0) return Status::InvalidArgument("empty composition");
  double cum[4];
  double run = 0;
  for (int i = 0; i < 4; ++i) {
    run += composition[i] / psum;
    cum[i] = run;
  }

  Rng rng(seed);
  auto random_seq = [&](uint64_t len) {
    std::string s(len, 'A');
    for (char& c : s) {
      double u = rng.NextDouble();
      int code = 0;
      while (code < 3 && u > cum[code]) ++code;
      c = CodeToBase(code);
    }
    return s;
  };

  Aligner aligner(scheme);
  std::vector<int> scores;
  scores.reserve(static_cast<size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    std::string a = random_seq(m);
    std::string b = random_seq(n);
    scores.push_back(aligner.ScoreOnly(a, b));
  }
  GumbelParams params = FitGumbel(scores, m, n);
  if (params.lambda <= 0 || params.k <= 0) {
    return Status::Internal("gumbel fit degenerate");
  }
  return params;
}

Result<double> UngappedEntropy(const ScoringScheme& scheme,
                               const std::array<double, 4>& composition) {
  Result<double> lambda = UngappedLambda(scheme, composition);
  if (!lambda.ok()) return lambda.status();
  double psum =
      composition[0] + composition[1] + composition[2] + composition[3];
  std::array<double, 4> p = composition;
  for (double& v : p) v /= psum;
  double h = 0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      int s = scheme.Score(CodeToBase(i), CodeToBase(j));
      h += p[i] * p[j] * s * std::exp(*lambda * s);
    }
  }
  return *lambda * h;
}

EffectiveLengths ComputeEffectiveLengths(uint64_t query_length,
                                         uint64_t database_bases,
                                         uint64_t num_sequences,
                                         const GumbelParams& params,
                                         double entropy) {
  EffectiveLengths out{query_length, database_bases};
  if (params.lambda <= 0 || params.k <= 0 || entropy <= 0 ||
      query_length == 0 || database_bases == 0 || num_sequences == 0) {
    return out;
  }
  double l = std::log(params.k * static_cast<double>(query_length) *
                      static_cast<double>(database_bases)) /
             entropy;
  if (l < 0) l = 0;
  auto clamp = [](double v) {
    return v < 1.0 ? uint64_t{1} : static_cast<uint64_t>(v);
  };
  out.query = clamp(static_cast<double>(query_length) - l);
  out.database = clamp(static_cast<double>(database_bases) -
                       static_cast<double>(num_sequences) * l);
  return out;
}

double BitScore(int raw_score, const GumbelParams& params) {
  return (params.lambda * raw_score - std::log(params.k)) / kLn2;
}

double Evalue(int raw_score, uint64_t query_length, uint64_t database_bases,
              const GumbelParams& params) {
  return params.k * static_cast<double>(query_length) *
         static_cast<double>(database_bases) *
         std::exp(-params.lambda * raw_score);
}

}  // namespace cafe
