#include "obs/log.h"

#include <chrono>
#include <cinttypes>
#include <ctime>

#include "obs/span.h"
#include "util/mutex.h"

namespace cafe::obs {
namespace {

Mutex g_log_mu;
std::FILE* g_log_sink CAFE_GUARDED_BY(g_log_mu) =
    nullptr;  // null = stderr

char SeverityLetter(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return 'I';
    case LogSeverity::kWarning:
      return 'W';
    case LogSeverity::kError:
      return 'E';
  }
  return '?';
}

}  // namespace

std::string FormatLogLine(LogSeverity severity, std::string_view message,
                          uint64_t trace_id, int64_t unix_micros,
                          uint32_t tid) {
  const std::time_t secs = static_cast<std::time_t>(unix_micros / 1000000);
  const int millis = static_cast<int>((unix_micros % 1000000) / 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char stamp[96];
  std::snprintf(stamp, sizeof(stamp),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ %c tid=%u ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, millis, SeverityLetter(severity),
                tid);
  std::string line = stamp;
  if (trace_id != 0) {
    char trace[32];
    std::snprintf(trace, sizeof(trace), "trace=%016" PRIx64 " ", trace_id);
    line += trace;
  }
  line.append(message.data(), message.size());
  return line;
}

void Log(LogSeverity severity, std::string_view message,
         uint64_t trace_id) {
  const int64_t now_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  const std::string line =
      FormatLogLine(severity, message, trace_id, now_micros,
                    DenseThreadId());
  MutexLock lock(&g_log_mu);
  std::FILE* sink = g_log_sink != nullptr ? g_log_sink : stderr;
  // The sink write *is* the critical section: g_log_mu exists to keep
  // concurrent log lines from interleaving in the stream, so the I/O
  // must happen under it. Nothing else is ever locked here, and every
  // caller-side lock is screened by the same pass.
  // NOLINTNEXTLINE(astcheck-lock-scope)
  std::fprintf(sink, "%s\n", line.c_str());
  std::fflush(sink);  // NOLINT(astcheck-lock-scope) — same line batch
}

void SetLogSink(std::FILE* sink) {
  MutexLock lock(&g_log_mu);
  g_log_sink = sink;
}

}  // namespace cafe::obs
