// Flight recorder: the last N completed requests, always on.
//
// A metrics registry answers "how is the service doing overall"; the
// flight recorder answers "why was *that* request slow". Every request
// the dispatcher completes leaves one FlightRecord — trace id, options
// fingerprint, queue wait, end-to-end time, and the full pruning
// funnel (obs::SearchTrace) — in a fixed-size ring, and records whose
// end-to-end time reaches a configurable slow threshold are
// additionally pinned into a separate bounded slow log, so a burst of
// fast traffic cannot wash a slow request out of the ring before an
// operator looks at it. cafe_serve exposes both over HTTP as /flightz
// and /slowz.
//
// Cost model. The hot path (Record) is one relaxed fetch_add to claim
// a slot plus one per-slot spinlock acquire to publish the payload —
// concurrent writers land on different slots and never contend unless
// the ring wraps within one write. Readers (Recent/Slow) lock each
// slot briefly while copying; they are introspection endpoints, not
// hot paths. The slow log is mutex-guarded (slow requests are, by
// definition, rare).

#ifndef CAFE_OBS_FLIGHT_H_
#define CAFE_OBS_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/mutex.h"

namespace cafe::obs {

/// Everything worth keeping about one completed request.
struct FlightRecord {
  /// Wire trace id (0 when the peer sent none).
  uint64_t trace_id = 0;
  /// Hex fingerprint of the request's options key — requests with equal
  /// fingerprints were batchable together.
  std::string options_key;
  /// Admission -> dispatch wait.
  uint64_t queue_micros = 0;
  /// Admission -> completion (what the slow threshold is tested
  /// against).
  uint64_t total_micros = 0;
  /// The pruning funnel and per-phase timings of this one request.
  SearchTrace trace;
  /// Hits returned to the client.
  uint32_t hits = 0;
  /// Status::Code of the evaluation (0 = ok), as the wire byte.
  uint8_t status_code = 0;
  /// The request's deadline fired: hits are partial.
  bool truncated = false;
  /// The deadline fired while the request was still queued — it never
  /// reached the engine (truncated is also set).
  bool deadline_expired = false;
  /// A span timeline was recorded for this request (sampling gate or
  /// slow-pin force-on); ToJson() then links the /tracez URL.
  bool sampled = false;
  /// Wall clock at completion, microseconds since the Unix epoch.
  /// Stamped by FlightRecorder::Record.
  int64_t completed_unix_micros = 0;

  /// One JSON object, fixed field order; trace ids render as 16-digit
  /// hex so they match log lines and client output.
  std::string ToJson() const;
};

class FlightRecorder {
 public:
  struct Options {
    /// Ring capacity (completed requests retained). Clamped to >= 1.
    size_t capacity = 256;
    /// Records with total_micros >= this are pinned into the slow log;
    /// 0 pins every record (useful in tests and for "show me
    /// everything" debugging).
    uint64_t slow_micros = 250000;
    /// Slow-log capacity; the oldest slow record is dropped beyond
    /// this. Clamped to >= 1.
    size_t slow_capacity = 64;
  };

  explicit FlightRecorder(const Options& options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Publishes one completed request, stamping completed_unix_micros.
  /// Thread-safe and wait-free against other writers except when two
  /// writers wrap onto the same slot simultaneously.
  void Record(FlightRecord record);

  /// Newest-first copies of up to `max` retained records.
  std::vector<FlightRecord> Recent(size_t max) const;

  /// Newest-first copies of up to `max` pinned slow records.
  std::vector<FlightRecord> Slow(size_t max) const;

  /// Requests recorded / pinned as slow since construction (monotonic,
  /// not bounded by the ring).
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  uint64_t slow_recorded() const {
    return slow_recorded_.load(std::memory_order_relaxed);
  }

  uint64_t slow_threshold_micros() const { return options_.slow_micros; }
  size_t capacity() const { return options_.capacity; }

  /// True when a record with this trace id is currently pinned in the
  /// slow log — the dispatcher's force-on signal: a repeat of a request
  /// an operator is already staring at in /slowz gets a span timeline
  /// regardless of the sampling rate. Constant-time false until
  /// something has been pinned, then a scan of the bounded slow log.
  bool SlowPinned(uint64_t trace_id) const CAFE_EXCLUDES(slow_mu_);

  /// {"records":[...]} — newest first, at most `max` entries.
  std::string RecentJson(size_t max) const;
  /// {"threshold_micros":N,"records":[...]} — newest first.
  std::string SlowJson(size_t max) const;

 private:
  // One ring slot: a tiny spinlock publishing `record`, plus the
  // global sequence number it holds (UINT64_MAX = never written), so
  // readers can order slots and skip ones a wrapping writer is
  // mid-overwrite on.
  struct Slot {
    std::atomic<uint32_t> lock{0};
    uint64_t seq = UINT64_MAX;
    FlightRecord record;
  };

  void LockSlot(Slot& slot) const;
  void UnlockSlot(Slot& slot) const;

  const Options options_;
  std::atomic<uint64_t> next_{0};
  std::vector<std::unique_ptr<Slot>> slots_;

  mutable Mutex slow_mu_;
  std::deque<FlightRecord> slow_
      CAFE_GUARDED_BY(slow_mu_);  // oldest first, bounded
  std::atomic<uint64_t> slow_recorded_{0};
};

}  // namespace cafe::obs

#endif  // CAFE_OBS_FLIGHT_H_
