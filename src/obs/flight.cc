#include "obs/flight.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"

namespace cafe::obs {
namespace {

int64_t NowUnixMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string FlightRecord::ToJson() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"trace_id\":\"%016" PRIx64
                "\",\"completed_unix_micros\":%lld,\"queue_us\":%" PRIu64
                ",\"total_us\":%" PRIu64 ",\"hits\":%u,\"status\":%u"
                ",\"truncated\":%s,\"deadline_expired\":%s"
                ",\"sampled\":%s",
                trace_id, static_cast<long long>(completed_unix_micros),
                queue_micros, total_micros, hits,
                static_cast<unsigned>(status_code),
                truncated ? "true" : "false",
                deadline_expired ? "true" : "false",
                sampled ? "true" : "false");
  std::string out = buf;
  if (sampled) {
    // One copy-paste from /flightz or /slowz to the timeline.
    std::snprintf(buf, sizeof(buf),
                  ",\"tracez\":\"/tracez?trace_id=%016" PRIx64 "\"",
                  trace_id);
    out += buf;
  }
  out += ",\"options_key\":\"";
  out += JsonEscape(options_key);
  out += "\",\"trace\":";
  out += trace.ToJson();
  out += "}";
  return out;
}

FlightRecorder::FlightRecorder(const Options& options)
    : options_{std::max<size_t>(options.capacity, 1), options.slow_micros,
               std::max<size_t>(options.slow_capacity, 1)} {
  slots_.reserve(options_.capacity);
  for (size_t i = 0; i < options_.capacity; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void FlightRecorder::LockSlot(Slot& slot) const {
  uint32_t expected = 0;
  while (!slot.lock.compare_exchange_weak(expected, 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
    expected = 0;
  }
}

void FlightRecorder::UnlockSlot(Slot& slot) const {
  slot.lock.store(0, std::memory_order_release);
}

void FlightRecorder::Record(FlightRecord record) {
  record.completed_unix_micros = NowUnixMicros();
  const bool slow = record.total_micros >= options_.slow_micros;

  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = *slots_[seq % options_.capacity];
  LockSlot(slot);
  slot.seq = seq;
  slot.record = record;  // copy: the slow log may still need it below
  UnlockSlot(slot);

  if (slow) {
    slow_recorded_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(&slow_mu_);
    slow_.push_back(std::move(record));
    while (slow_.size() > options_.slow_capacity) slow_.pop_front();
  }
}

bool FlightRecorder::SlowPinned(uint64_t trace_id) const {
  if (trace_id == 0) return false;
  // Relaxed precheck: nothing has ever been pinned, so the common
  // (healthy-service) path never touches the mutex.
  if (slow_recorded_.load(std::memory_order_relaxed) == 0) return false;
  MutexLock lock(&slow_mu_);
  for (const FlightRecord& record : slow_) {
    if (record.trace_id == trace_id) return true;
  }
  return false;
}

std::vector<FlightRecord> FlightRecorder::Recent(size_t max) const {
  // Copy every written slot with its sequence number, then sort
  // newest-first. The ring is introspection-sized, so a full sweep is
  // cheaper than trying to chase concurrent writers index by index.
  std::vector<std::pair<uint64_t, FlightRecord>> copies;
  copies.reserve(slots_.size());
  for (const auto& slot_ptr : slots_) {
    Slot& slot = *slot_ptr;
    LockSlot(slot);
    if (slot.seq != UINT64_MAX) {
      copies.emplace_back(slot.seq, slot.record);
    }
    UnlockSlot(slot);
  }
  std::sort(copies.begin(), copies.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (copies.size() > max) copies.resize(max);
  std::vector<FlightRecord> out;
  out.reserve(copies.size());
  for (auto& [seq, record] : copies) out.push_back(std::move(record));
  return out;
}

std::vector<FlightRecord> FlightRecorder::Slow(size_t max) const {
  MutexLock lock(&slow_mu_);
  std::vector<FlightRecord> out;
  const size_t n = std::min(max, slow_.size());
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(slow_[slow_.size() - 1 - i]);  // newest first
  }
  return out;
}

std::string FlightRecorder::RecentJson(size_t max) const {
  std::string out = "{\"records\":[";
  bool first = true;
  for (const FlightRecord& record : Recent(max)) {
    if (!first) out += ",";
    first = false;
    out += record.ToJson();
  }
  out += "]}";
  return out;
}

std::string FlightRecorder::SlowJson(size_t max) const {
  std::string out = "{\"threshold_micros\":";
  out += std::to_string(options_.slow_micros);
  out += ",\"records\":[";
  bool first = true;
  for (const FlightRecord& record : Slow(max)) {
    if (!first) out += ",";
    first = false;
    out += record.ToJson();
  }
  out += "]}";
  return out;
}

}  // namespace cafe::obs
