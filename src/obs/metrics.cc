#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>

namespace cafe::obs {

size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  static thread_local size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Snapshot::ApproxPercentile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested quantile, 1-based; q = 0 means the first
  // sample, q = 1 the last.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i).
      uint64_t upper = i == 0  ? 0
                       : i >= 64 ? UINT64_MAX
                                 : (uint64_t{1} << i) - 1;
      if (upper > max) upper = max;
      if (upper < min) upper = min;
      return upper;
    }
  }
  return max;
}

Histogram::Snapshot Histogram::Snapshot::DeltaFrom(
    const Snapshot& baseline) const {
  Snapshot delta;
  delta.count = count - std::min(baseline.count, count);
  delta.sum = sum - std::min(baseline.sum, sum);
  size_t lowest = kBuckets, highest = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t base = std::min(baseline.buckets[i], buckets[i]);
    delta.buckets[i] = buckets[i] - base;
    if (delta.buckets[i] > 0) {
      if (lowest == kBuckets) lowest = i;
      highest = i;
    }
  }
  if (delta.count > 0 && lowest < kBuckets) {
    // Bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i).
    delta.min = lowest == 0 ? 0 : uint64_t{1} << (lowest - 1);
    delta.max = highest == 0    ? 0
                : highest >= 64 ? UINT64_MAX
                                : (uint64_t{1} << highest) - 1;
    // The cumulative extremes still bound the interval's samples.
    if (min > delta.min) delta.min = min;
    if (max < delta.max) delta.max = max;
  }
  return delta;
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = min == UINT64_MAX ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::SnapshotText() const {
  MutexLock lock(&mu_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "%s %" PRIu64 "\n", name.c_str(),
                  counter->Value());
    out += line;
  }
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot s = histogram->Snap();
    std::snprintf(line, sizeof(line),
                  "%s count=%" PRIu64 " mean=%.1f min=%" PRIu64
                  " max=%" PRIu64 "\n",
                  name.c_str(), s.count, s.Mean(), s.min, s.max);
    out += line;
  }
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\"counters\":{";
  char buf[320];  // one histogram header line incl. percentiles
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, name.c_str(),
                  counter->Value());
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ",";
    first = false;
    Histogram::Snapshot s = histogram->Snap();
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"min\":%" PRIu64 ",\"max\":%" PRIu64
                  ",\"mean\":%.3f,\"p50\":%" PRIu64 ",\"p90\":%" PRIu64
                  ",\"p99\":%" PRIu64 ",\"buckets\":{",
                  name.c_str(), s.count, s.sum, s.min, s.max, s.Mean(),
                  s.ApproxPercentile(0.50), s.ApproxPercentile(0.90),
                  s.ApproxPercentile(0.99));
    out += buf;
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (s.buckets[i] == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      std::snprintf(buf, sizeof(buf), "\"%zu\":%" PRIu64, i, s.buckets[i]);
      out += buf;
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

MetricsSnapshot MetricsRegistry::SnapshotData() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snap();
  }
  return snap;
}

MetricsSnapshot MetricsRegistry::Delta(const MetricsSnapshot& current,
                                       const MetricsSnapshot& baseline) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : current.counters) {
    auto it = baseline.counters.find(name);
    const uint64_t base = it == baseline.counters.end() ? 0 : it->second;
    delta.counters[name] = value - std::min(base, value);
  }
  for (const auto& [name, snap] : current.histograms) {
    auto it = baseline.histograms.find(name);
    delta.histograms[name] = it == baseline.histograms.end()
                                 ? snap
                                 : snap.DeltaFrom(it->second);
  }
  return delta;
}

namespace {

// disk_index.cache_hits -> cafe_disk_index_cache_hits; characters a
// Prometheus metric name cannot hold become underscores.
std::string PrometheusName(const std::string& name) {
  std::string out = "cafe_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::SnapshotPrometheus() const {
  MutexLock lock(&mu_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusName(name) + "_total";
    std::snprintf(line, sizeof(line), "# TYPE %s counter\n%s %" PRIu64 "\n",
                  prom.c_str(), prom.c_str(), counter->Value());
    out += line;
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = PrometheusName(name);
    const Histogram::Snapshot s = histogram->Snap();
    std::snprintf(line, sizeof(line), "# TYPE %s histogram\n", prom.c_str());
    out += line;
    // Bucket i of the log-scale histogram holds values whose bit width
    // is i, so its inclusive upper bound is 2^i - 1 — a valid `le`
    // edge. Cumulative counts; empty buckets are elided (Prometheus
    // allows sparse edges), +Inf always present.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (s.buckets[i] == 0) continue;
      cumulative += s.buckets[i];
      const uint64_t edge =
          i == 0 ? 0 : i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1;
      std::snprintf(line, sizeof(line),
                    "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                    prom.c_str(), edge, cumulative);
      out += line;
    }
    std::snprintf(line, sizeof(line),
                  "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n%s_sum %" PRIu64
                  "\n%s_count %" PRIu64 "\n",
                  prom.c_str(), s.count, prom.c_str(), s.sum, prom.c_str(),
                  s.count);
    out += line;
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace cafe::obs
