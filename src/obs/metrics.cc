#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

namespace cafe::obs {

size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  static thread_local size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Snapshot::ApproxPercentile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested quantile, 1-based; q = 0 means the first
  // sample, q = 1 the last.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i).
      uint64_t upper = i == 0  ? 0
                       : i >= 64 ? UINT64_MAX
                                 : (uint64_t{1} << i) - 1;
      if (upper > max) upper = max;
      if (upper < min) upper = min;
      return upper;
    }
  }
  return max;
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = min == UINT64_MAX ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::SnapshotText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "%s %" PRIu64 "\n", name.c_str(),
                  counter->Value());
    out += line;
  }
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot s = histogram->Snap();
    std::snprintf(line, sizeof(line),
                  "%s count=%" PRIu64 " mean=%.1f min=%" PRIu64
                  " max=%" PRIu64 "\n",
                  name.c_str(), s.count, s.Mean(), s.min, s.max);
    out += line;
  }
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  char buf[128];
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, name.c_str(),
                  counter->Value());
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ",";
    first = false;
    Histogram::Snapshot s = histogram->Snap();
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"min\":%" PRIu64 ",\"max\":%" PRIu64
                  ",\"mean\":%.3f,\"buckets\":{",
                  name.c_str(), s.count, s.sum, s.min, s.max, s.Mean());
    out += buf;
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (s.buckets[i] == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      std::snprintf(buf, sizeof(buf), "\"%zu\":%" PRIu64, i, s.buckets[i]);
      out += buf;
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace cafe::obs
