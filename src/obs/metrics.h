// Process-wide observability: a registry of named counters and
// log-scale histograms, designed for the same execution model as the
// rest of the library (util/thread_pool.h): many reader/writer threads,
// deterministic merge on snapshot.
//
// Cost model. Counters are striped: each thread increments its own
// cache-line-padded atomic slot with a relaxed fetch_add, so concurrent
// writers never contend on one line (lock-free; no mutex on the hot
// path). Histograms record into power-of-two buckets with relaxed
// atomics. The registry's mutex guards only name -> metric registration
// and snapshotting; callers look a metric up once and keep the pointer.
// When no registry is attached anywhere, instrumentation reduces to one
// null-check per guarded site (measured by bench_micro_obs).
//
// Lifetime. Metric pointers returned by GetCounter/GetHistogram remain
// valid for the registry's lifetime; metrics are never unregistered.

#ifndef CAFE_OBS_METRICS_H_
#define CAFE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/mutex.h"
#include "util/timer.h"

namespace cafe::obs {

/// Dense per-thread stripe id in [0, kCounterStripes); assigned on first
/// use per thread, reused for the thread's lifetime.
size_t ThreadStripe();

/// A monotonically increasing sum. Writes are lock-free and contention-
/// free across threads (striped); Value() merges the stripes.
class Counter {
 public:
  static constexpr size_t kStripes = 16;

  void Add(uint64_t delta) {
    stripes_[ThreadStripe() % kStripes].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all stripes. Concurrent with writers: the result is some
  /// valid point-in-time-ish total (each stripe read atomically).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };
  std::array<Stripe, kStripes> stripes_;
};

/// A log-scale (power-of-two bucket) histogram of uint64 samples.
/// Bucket i counts samples whose bit width is i: bucket 0 holds the
/// value 0, bucket i >= 1 holds [2^(i-1), 2^i). Recording is lock-free
/// (relaxed atomics; min/max via CAS loops).
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void Record(uint64_t value);

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;  // 0 when count == 0
    uint64_t max = 0;
    std::array<uint64_t, kBuckets> buckets{};

    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Approximate value at quantile q in [0, 1]: the upper edge of the
    /// first bucket whose cumulative count reaches q·count, clamped to
    /// the observed [min, max]. Log-scale buckets make this exact only
    /// to within a factor of two — good enough for the latency
    /// percentiles cafe_loadgen reports. Returns 0 when empty.
    uint64_t ApproxPercentile(double q) const;

    /// This snapshot minus `baseline` (an earlier snapshot of the same
    /// histogram): interval count/sum/buckets. Exact min/max are not
    /// recoverable from two cumulative snapshots, so the delta's
    /// min/max are the bucket edges spanning the interval's samples —
    /// within the same factor-of-two bound as ApproxPercentile, which
    /// stays meaningful on the result. The windowed-rates primitive
    /// behind MetricsRegistry::Delta.
    Snapshot DeltaFrom(const Snapshot& baseline) const;
  };
  Snapshot Snap() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// A point-in-time copy of every metric in a registry — the value type
/// behind windowed rates: snapshot now, snapshot later, Delta() the
/// two, and the result holds per-interval counts and histogram
/// percentiles instead of since-startup cumulatives.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, Histogram::Snapshot> histograms;
};

/// Name -> metric registry. Names are dotted paths
/// (`disk_index.cache_hits`); the full catalogue is documented in
/// docs/OBSERVABILITY.md and cross-checked by tools/doccheck.py.
class MetricsRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first
  /// use. The pointer stays valid for the registry's lifetime; look it
  /// up once, not per increment.
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// `name value` lines for counters, `name count=… mean=… min=… max=…`
  /// for histograms, sorted by name.
  std::string SnapshotText() const;

  /// {"counters": {name: value, …},
  ///  "histograms": {name: {"count":…, "sum":…, "min":…, "max":…,
  ///                        "mean":…, "p50":…, "p90":…, "p99":…,
  ///                        "buckets": {"<bit width>": n}}}}
  /// Percentiles are Histogram::Snapshot::ApproxPercentile — the same
  /// numbers cafe_loadgen prints. Keys are sorted (std::map), so equal
  /// metric states produce byte-identical documents.
  std::string SnapshotJson() const;

  /// Structured copy of every metric, for windowed diffing via Delta.
  MetricsSnapshot SnapshotData() const;

  /// Per-metric `current - baseline`: counter differences and
  /// Histogram::Snapshot::DeltaFrom for histograms. Metrics absent
  /// from `baseline` (registered mid-window) diff against zero. This
  /// is how cafe_serve's stats thread turns cumulative metrics into
  /// per-interval rates and interval percentiles.
  static MetricsSnapshot Delta(const MetricsSnapshot& current,
                               const MetricsSnapshot& baseline);

  /// Prometheus text exposition (version 0.0.4) of every metric.
  /// Dotted names map to `cafe_` + dots replaced by underscores;
  /// counters gain the conventional `_total` suffix; histograms export
  /// as native Prometheus histograms whose `le` edges are the
  /// log-scale bucket upper bounds (2^i - 1). The name catalogue is
  /// documented in docs/OBSERVABILITY.md and cross-checked by
  /// tools/doccheck.py; the format is validated by tools/promcheck.py.
  std::string SnapshotPrometheus() const;

 private:
  // Guards the name -> metric maps, never the metric updates (those
  // are lock-free; callers cache the returned pointers).
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      CAFE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      CAFE_GUARDED_BY(mu_);
};

/// RAII timer recording elapsed microseconds into a histogram on
/// destruction. Null histogram = no-op (the detached case).
class Timer {
 public:
  explicit Timer(Histogram* sink) : sink_(sink) {}
  ~Timer() {
    if (sink_ != nullptr) {
      sink_->Record(static_cast<uint64_t>(timer_.Micros()));
    }
  }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

 private:
  Histogram* sink_;
  WallTimer timer_;
};

/// Minimal JSON string escaping (quotes, backslash, control chars) for
/// the exporters here and the CLI's --stats=json output.
std::string JsonEscape(std::string_view s);

}  // namespace cafe::obs

#endif  // CAFE_OBS_METRICS_H_
