// Per-query search tracing: the pruning funnel and per-phase timings
// behind one partitioned query, recorded by the engines when a trace is
// attached to SearchOptions (null pointer = zero work beyond the check).
//
// The counter fields are *deterministic*: for a given engine, query,
// index and options they are identical at every SearchOptions::threads
// setting (per-worker sums are merged, and every merge order produces
// the same totals) — asserted by obs_test. Timings are wall-clock and
// vary run to run; CountersJson() exists so callers can compare the
// deterministic part byte-for-byte.

#ifndef CAFE_OBS_TRACE_H_
#define CAFE_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "util/timer.h"

namespace cafe::obs {

struct SearchTrace {
  // --- The pruning funnel (deterministic counters) -------------------
  /// Search() calls merged into this trace (2 per query with
  /// search_both_strands, 1 otherwise).
  uint64_t queries = 0;
  /// Interval occurrences extracted from the query (stride 1).
  uint64_t intervals_extracted = 0;
  /// Distinct interval terms among them.
  uint64_t terms_distinct = 0;
  /// Query terms with no postings list — stopped at build time or never
  /// seen in the collection. The index-stopping savings show up here.
  uint64_t terms_unindexed = 0;
  /// Postings lists actually fetched and decoded.
  uint64_t postings_lists_touched = 0;
  /// Postings entries decoded across those lists.
  uint64_t postings_decoded = 0;
  /// Sequences with non-zero coarse evidence.
  uint64_t candidates_ranked = 0;
  /// Candidates surviving the coarse cut (<= fine_candidates).
  uint64_t candidates_kept = 0;
  /// Candidates the coarse cut discarded (ranked - kept).
  uint64_t candidates_discarded = 0;
  /// Coarse candidates entering the chaining stage (0 when chaining is
  /// off or inapplicable — e.g. the index lacks positions).
  uint64_t chain_candidates_in = 0;
  /// Seed anchors (query position, subject position pairs) gathered
  /// across all chained candidates.
  uint64_t chain_anchors = 0;
  /// Candidates whose best collinear chain met min_chain_score; only
  /// these reach the fine phase when chaining is on.
  uint64_t chain_candidates_kept = 0;
  /// Candidates the chaining stage filtered out (in - kept).
  uint64_t chain_candidates_dropped = 0;
  /// Sequences that received fine (DP) scoring.
  uint64_t candidates_aligned = 0;
  /// DP cells computed (banded + full, including rescore/traceback).
  uint64_t cells_computed = 0;
  /// Hits reported to the caller.
  uint64_t hits_reported = 0;

  // --- Per-phase wall clock (microseconds; NOT deterministic) --------
  double coarse_micros = 0.0;
  /// Chaining stage (between coarse and fine; 0 when chaining is off).
  double chain_micros = 0.0;
  double fine_micros = 0.0;
  /// Post-processing: full rescoring and traceback of reported hits.
  double post_micros = 0.0;
  double total_micros = 0.0;

  /// Field-wise accumulation; merge order does not affect the result.
  void Merge(const SearchTrace& other);

  /// JSON object of the deterministic counters only, fixed field order —
  /// byte-identical across thread counts for the same work.
  std::string CountersJson() const;

  /// {"counters": …, "timings_us": {"coarse":…, "fine":…, "post":…,
  ///  "total":…}}
  std::string ToJson() const;

  /// Human-readable multi-line rendering (the CLI's --stats output).
  std::string ToText() const;
};

/// RAII span adding elapsed microseconds to a phase field on
/// destruction. Null sink = no-op, so call sites stay unconditional:
///   obs::TraceSpan span(trace ? &trace->coarse_micros : nullptr);
class TraceSpan {
 public:
  explicit TraceSpan(double* sink_micros) : sink_(sink_micros) {}
  ~TraceSpan() {
    if (sink_ != nullptr) *sink_ += timer_.Micros();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace cafe::obs

#endif  // CAFE_OBS_TRACE_H_
