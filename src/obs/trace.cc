#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace cafe::obs {

void SearchTrace::Merge(const SearchTrace& other) {
  queries += other.queries;
  intervals_extracted += other.intervals_extracted;
  terms_distinct += other.terms_distinct;
  terms_unindexed += other.terms_unindexed;
  postings_lists_touched += other.postings_lists_touched;
  postings_decoded += other.postings_decoded;
  candidates_ranked += other.candidates_ranked;
  candidates_kept += other.candidates_kept;
  candidates_discarded += other.candidates_discarded;
  chain_candidates_in += other.chain_candidates_in;
  chain_anchors += other.chain_anchors;
  chain_candidates_kept += other.chain_candidates_kept;
  chain_candidates_dropped += other.chain_candidates_dropped;
  candidates_aligned += other.candidates_aligned;
  cells_computed += other.cells_computed;
  hits_reported += other.hits_reported;
  coarse_micros += other.coarse_micros;
  chain_micros += other.chain_micros;
  fine_micros += other.fine_micros;
  post_micros += other.post_micros;
  total_micros += other.total_micros;
}

std::string SearchTrace::CountersJson() const {
  char buf[896];
  std::snprintf(
      buf, sizeof(buf),
      "{\"queries\":%" PRIu64 ",\"intervals_extracted\":%" PRIu64
      ",\"terms_distinct\":%" PRIu64 ",\"terms_unindexed\":%" PRIu64
      ",\"postings_lists_touched\":%" PRIu64 ",\"postings_decoded\":%" PRIu64
      ",\"candidates_ranked\":%" PRIu64 ",\"candidates_kept\":%" PRIu64
      ",\"candidates_discarded\":%" PRIu64 ",\"chain_candidates_in\":%" PRIu64
      ",\"chain_anchors\":%" PRIu64 ",\"chain_candidates_kept\":%" PRIu64
      ",\"chain_candidates_dropped\":%" PRIu64
      ",\"candidates_aligned\":%" PRIu64 ",\"cells_computed\":%" PRIu64
      ",\"hits_reported\":%" PRIu64 "}",
      queries, intervals_extracted, terms_distinct, terms_unindexed,
      postings_lists_touched, postings_decoded, candidates_ranked,
      candidates_kept, candidates_discarded, chain_candidates_in,
      chain_anchors, chain_candidates_kept, chain_candidates_dropped,
      candidates_aligned, cells_computed, hits_reported);
  return buf;
}

std::string SearchTrace::ToJson() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ",\"timings_us\":{\"coarse\":%.1f,\"chain\":%.1f,"
                "\"fine\":%.1f,\"post\":%.1f,\"total\":%.1f}}",
                coarse_micros, chain_micros, fine_micros, post_micros,
                total_micros);
  return "{\"counters\":" + CountersJson() + buf;
}

std::string SearchTrace::ToText() const {
  char buf[1280];
  std::snprintf(
      buf, sizeof(buf),
      "  funnel: %" PRIu64 " intervals -> %" PRIu64
      " distinct terms (%" PRIu64 " unindexed) -> %" PRIu64
      " lists, %" PRIu64 " postings decoded -> %" PRIu64
      " candidates ranked (%" PRIu64 " discarded) -> %" PRIu64
      " aligned -> %" PRIu64 " hits\n"
      "  chain:  %" PRIu64 " candidates in -> %" PRIu64
      " anchors -> %" PRIu64 " kept (%" PRIu64 " dropped)\n"
      "  work:   %" PRIu64 " DP cells over %" PRIu64 " strand pass(es)\n"
      "  time:   coarse %.1f us, chain %.1f us, fine %.1f us, "
      "post %.1f us, total %.1f us\n",
      intervals_extracted, terms_distinct, terms_unindexed,
      postings_lists_touched, postings_decoded, candidates_ranked,
      candidates_discarded, candidates_aligned, hits_reported,
      chain_candidates_in, chain_anchors, chain_candidates_kept,
      chain_candidates_dropped, cells_computed, queries, coarse_micros,
      chain_micros, fine_micros, post_micros, total_micros);
  return buf;
}

}  // namespace cafe::obs
