// Per-request hierarchical span timelines.
//
// A SpanRecorder is attached to one request (keyed by its wire
// trace_id) and collects a tree of named, thread-stamped wall-clock
// spans — dispatcher queue wait, batch assembly, engine phases, per
// partition fine workers — into a preallocated arena. Recording is
// lock-free: a slot is claimed with one relaxed fetch_add, and the
// claiming thread alone writes that slot, so concurrent fine workers
// never contend. When the arena is full further spans are counted in
// dropped() instead of recorded; the timeline stays valid, just
// truncated.
//
// Attachment follows the SearchTrace convention: a null recorder
// pointer means "sampling off" and every instrumentation site reduces
// to a single branch (benchmarked by bench_micro_obs --gate). The
// sampling decision itself lives in SpanSampler: a SplitMix64 hash of
// the trace id against the configured rate, so the same trace id
// samples identically on every hop, with a round-robin counter
// fallback for clients that do not mint trace ids.
//
// Spans whose begin and end happen on one thread use the RAII Span
// wrapper (or StartSpan/EndSpan with the implicit parent anchor).
// Spans that cross threads — queue.wait begins on the connection
// thread and ends on a dispatcher worker; fine.worker lives on a pool
// thread — use AddSpan with an explicit parent id and the begin/end
// stamps taken where the work happened. Cross-thread visibility of
// slot contents is the caller's synchronization (the dispatcher's
// done-publication mutex, ThreadPool's join barrier); the recorder
// only guarantees unique slot ownership.
//
// Export is Chrome trace-event JSON ("X" complete events, one per
// span, microsecond timestamps relative to the recorder's creation),
// loadable directly in chrome://tracing and Perfetto. The serving
// layer keeps finished timelines in a bounded SpanStore for the
// /tracez HTTP endpoint; the CLI writes them to --trace-out=FILE.
//
// The span name catalogue (name, parent, recording file) is
// documented in docs/OBSERVABILITY.md and cross-checked against the
// code bidirectionally by tools/doccheck.py.

#ifndef CAFE_OBS_SPAN_H_
#define CAFE_OBS_SPAN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace cafe::obs {

/// Small dense id for the calling thread (0, 1, 2, … in first-call
/// order), stable for the thread's lifetime. Used as the span `tid`
/// and as the `tid=` field on log lines, so the two can be joined.
uint32_t DenseThreadId();

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash. Public so
/// tests can reproduce sampling decisions.
uint64_t SplitMix64Hash(uint64_t x);

/// One recorded span. `name` must point at a string literal (the
/// recorder stores the pointer, never a copy). Timestamps are
/// steady-clock nanoseconds from SpanRecorder::NowNanos(); end_ns is 0
/// while the span is still open.
struct SpanEvent {
  const char* name = nullptr;
  uint32_t id = 0;      ///< 1-based slot id; 0 is "no span".
  uint32_t parent = 0;  ///< Parent span id; 0 = root.
  uint32_t tid = 0;     ///< DenseThreadId() of the recording thread.
  uint64_t begin_ns = 0;
  uint64_t end_ns = 0;
};

/// Arena of spans for one request. See the file comment for the
/// threading contract; all recording methods are safe to call
/// concurrently.
class SpanRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 512;

  explicit SpanRecorder(uint64_t trace_id,
                        size_t capacity = kDefaultCapacity);

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Steady-clock nanoseconds (monotonic; comparable only within a
  /// process). The timebase for AddSpan callers.
  static uint64_t NowNanos();

  /// Opens a span under the current implicit anchor (the most recently
  /// started, not-yet-ended span on the Start/End path) and makes the
  /// new span the anchor. Returns its id, or 0 if the arena is full
  /// (the span is counted in dropped() and EndSpan(0) is a no-op).
  uint32_t StartSpan(const char* name);

  /// Opens a span under an explicit parent (0 = root) without touching
  /// the implicit anchor. For spans recorded off the Start/End path.
  uint32_t StartSpan(const char* name, uint32_t parent);

  /// Closes the span. If it is the current anchor, the anchor returns
  /// to its parent. EndSpan(0) is a no-op.
  void EndSpan(uint32_t id);

  /// Records an already-measured span in one call: explicit parent,
  /// thread id, and begin/end stamps from NowNanos(). The fine-phase
  /// workers use this so a worker span carries the pool thread's tid
  /// even though the timeline is assembled after the join.
  uint32_t AddSpan(const char* name, uint32_t parent, uint32_t tid,
                   uint64_t begin_ns, uint64_t end_ns);

  uint64_t trace_id() const { return trace_id_; }
  size_t capacity() const { return slots_.size(); }
  /// Spans that did not fit in the arena.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Spans recorded so far.
  size_t size() const;
  /// Id of the current implicit anchor (0 = root). The natural parent
  /// for AddSpan calls made from worker threads.
  uint32_t current() const {
    return current_.load(std::memory_order_relaxed);
  }

  /// Copy of the recorded spans, in recording order.
  std::vector<SpanEvent> Snapshot() const;

  /// Chrome trace-event JSON: {"trace_id":"…","traceEvents":[…]} with
  /// one "X" (complete) event per span, ts/dur in microseconds
  /// relative to the recorder's creation, pid 1, tid the dense thread
  /// id. Loads directly in chrome://tracing and Perfetto. Call after
  /// recording has quiesced (see the file comment).
  std::string ChromeTraceJson() const;

 private:
  const uint64_t trace_id_;
  const uint64_t origin_ns_;
  std::vector<SpanEvent> slots_;
  std::atomic<uint32_t> next_{0};
  std::atomic<uint32_t> current_{0};
  std::atomic<uint64_t> dropped_{0};
};

/// RAII span for single-thread sections. A null recorder makes both
/// constructor and destructor a single branch — the detached cost
/// bench_micro_obs gates:
///   obs::Span span(options.spans, "coarse.rank");
class Span {
 public:
  Span(SpanRecorder* recorder, const char* name)
      : recorder_(recorder),
        id_(recorder != nullptr ? recorder->StartSpan(name) : 0) {}
  ~Span() {
    if (recorder_ != nullptr) recorder_->EndSpan(id_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Id of the opened span (0 when detached or dropped) — the parent
  /// to hand to AddSpan for children recorded on other threads.
  uint32_t id() const { return id_; }

 private:
  SpanRecorder* const recorder_;
  const uint32_t id_;
};

/// Sampling gate for the dispatcher: should this request get a
/// recorder? Deterministic in the trace id (SplitMix64 hash against
/// rate * 2^64), so retries and cross-service hops of the same id
/// sample identically; requests without a trace id (0) fall back to a
/// shared round-robin counter at the same rate. rate <= 0 never
/// samples, rate >= 1 always does. Thread-safe.
class SpanSampler {
 public:
  explicit SpanSampler(double rate);

  bool ShouldSample(uint64_t trace_id);
  double rate() const { return rate_; }

 private:
  const double rate_;
  const uint64_t threshold_;  ///< Sample when hash < threshold.
  const uint64_t period_;     ///< Counter fallback period (>= 1).
  std::atomic<uint64_t> counter_{0};
};

/// Bounded store of finished timelines, keyed by trace id — the
/// backing for /tracez. Put() renders the recorder to Chrome trace
/// JSON and evicts the oldest entry once `capacity` timelines are
/// held. Thread-safe.
class SpanStore {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  explicit SpanStore(size_t capacity = kDefaultCapacity);

  void Put(const SpanRecorder& recorder) CAFE_EXCLUDES(mu_);
  /// Copies the stored JSON for the trace id into *out; false if the
  /// id was never sampled or has been evicted.
  bool GetJson(uint64_t trace_id, std::string* out) const
      CAFE_EXCLUDES(mu_);
  /// {"stored":[{"trace_id":"…","spans":N}, …]} — newest first, the
  /// /tracez index page.
  std::string ListJson() const CAFE_EXCLUDES(mu_);
  size_t size() const CAFE_EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    uint64_t trace_id = 0;
    uint64_t spans = 0;
    std::string json;
  };

  const size_t capacity_;
  mutable Mutex mu_;
  std::deque<Entry> entries_ CAFE_GUARDED_BY(mu_);
};

}  // namespace cafe::obs

#endif  // CAFE_OBS_SPAN_H_
