#include "obs/span.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace cafe::obs {

uint32_t DenseThreadId() {
  static std::atomic<uint32_t> next{0};
  static thread_local uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

uint64_t SplitMix64Hash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

SpanRecorder::SpanRecorder(uint64_t trace_id, size_t capacity)
    : trace_id_(trace_id), origin_ns_(NowNanos()), slots_(capacity) {}

uint64_t SpanRecorder::NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t SpanRecorder::StartSpan(const char* name) {
  uint32_t id = StartSpan(name, current_.load(std::memory_order_relaxed));
  if (id != 0) current_.store(id, std::memory_order_relaxed);
  return id;
}

uint32_t SpanRecorder::StartSpan(const char* name, uint32_t parent) {
  uint32_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  SpanEvent& event = slots_[slot];
  event.name = name;
  event.id = slot + 1;
  event.parent = parent;
  event.tid = DenseThreadId();
  event.begin_ns = NowNanos();
  return slot + 1;
}

void SpanRecorder::EndSpan(uint32_t id) {
  if (id == 0) return;
  SpanEvent& event = slots_[id - 1];
  event.end_ns = NowNanos();
  // If the ended span is the implicit anchor, the anchor returns to
  // its parent. Out-of-order ends (a still-open sibling) leave the
  // anchor alone rather than guessing.
  uint32_t expected = id;
  current_.compare_exchange_strong(expected, event.parent,
                                   std::memory_order_relaxed);
}

uint32_t SpanRecorder::AddSpan(const char* name, uint32_t parent,
                               uint32_t tid, uint64_t begin_ns,
                               uint64_t end_ns) {
  uint32_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  SpanEvent& event = slots_[slot];
  event.name = name;
  event.id = slot + 1;
  event.parent = parent;
  event.tid = tid;
  event.begin_ns = begin_ns;
  event.end_ns = end_ns;
  return slot + 1;
}

size_t SpanRecorder::size() const {
  uint32_t claimed = next_.load(std::memory_order_relaxed);
  return claimed < slots_.size() ? claimed : slots_.size();
}

std::vector<SpanEvent> SpanRecorder::Snapshot() const {
  size_t count = size();
  return std::vector<SpanEvent>(slots_.begin(),
                                slots_.begin() + static_cast<long>(count));
}

std::string SpanRecorder::ChromeTraceJson() const {
  char buf[192];
  std::string out;
  std::snprintf(buf, sizeof(buf), "{\"trace_id\":\"%016" PRIx64 "\"",
                trace_id_);
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"dropped\":%" PRIu64, dropped());
  out += buf;
  out += ",\"traceEvents\":[";
  size_t count = size();
  for (size_t i = 0; i < count; ++i) {
    const SpanEvent& event = slots_[i];
    // An unclosed span (crashed or still open at export) renders with
    // dur 0 rather than a negative duration.
    uint64_t end_ns =
        event.end_ns >= event.begin_ns ? event.end_ns : event.begin_ns;
    double ts_us =
        static_cast<double>(event.begin_ns - origin_ns_) / 1000.0;
    double dur_us = static_cast<double>(end_ns - event.begin_ns) / 1000.0;
    if (i != 0) out += ',';
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
                  "\"args\":{\"id\":%u,\"parent\":%u}}",
                  event.name != nullptr ? event.name : "", ts_us, dur_us,
                  event.tid, event.id, event.parent);
    out += buf;
  }
  out += "]}";
  return out;
}

SpanSampler::SpanSampler(double rate)
    : rate_(rate),
      threshold_(rate >= 1.0 ? UINT64_MAX
                 : rate <= 0.0
                     ? 0
                     : static_cast<uint64_t>(rate * 18446744073709551616.0)),
      period_(rate >= 1.0 || rate <= 0.0
                  ? 1
                  : static_cast<uint64_t>(1.0 / rate)) {}

bool SpanSampler::ShouldSample(uint64_t trace_id) {
  if (rate_ <= 0.0) return false;
  if (rate_ >= 1.0) return true;
  if (trace_id == 0) {
    // No id to hash: round-robin at the same effective rate.
    return counter_.fetch_add(1, std::memory_order_relaxed) % period_ == 0;
  }
  return SplitMix64Hash(trace_id) < threshold_;
}

SpanStore::SpanStore(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

void SpanStore::Put(const SpanRecorder& recorder) {
  Entry entry;
  entry.trace_id = recorder.trace_id();
  entry.spans = recorder.size();
  entry.json = recorder.ChromeTraceJson();  // render outside the lock
  MutexLock lock(&mu_);
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
}

bool SpanStore::GetJson(uint64_t trace_id, std::string* out) const {
  MutexLock lock(&mu_);
  // Newest first, so a re-used trace id resolves to the latest run.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->trace_id == trace_id) {
      *out = it->json;
      return true;
    }
  }
  return false;
}

std::string SpanStore::ListJson() const {
  char buf[96];
  std::string out = "{\"stored\":[";
  MutexLock lock(&mu_);
  bool first = true;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"trace_id\":\"%016" PRIx64 "\",\"spans\":%" PRIu64 "}",
                  it->trace_id, it->spans);
    out += buf;
  }
  out += "]}";
  return out;
}

size_t SpanStore::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace cafe::obs
