// Structured logging for the serving layer.
//
// Every operational line cafe_serve (and src/server/) emits goes
// through Log(): one line per call, with a UTC timestamp, a severity
// letter, the emitting thread's dense id (`tid=`, joinable against
// span timelines), and — when the message concerns one request — its
// trace id, so a log line can be joined against the flight recorder,
// the slow log, and the client's own view of the same request. The
// `cafe-no-raw-fprintf` repo lint rule (tools/lint_cafe.py) enforces
// that the serving layer never bypasses this shim.
//
// Log() is thread-safe (one mutex-guarded write per line, so
// concurrent threads never interleave fragments) and cheap enough for
// per-connection events, but it is not for hot paths: per-request
// facts belong in the MetricsRegistry and the FlightRecorder, not in
// the log.

#ifndef CAFE_OBS_LOG_H_
#define CAFE_OBS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace cafe::obs {

enum class LogSeverity : int {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
};

/// One formatted log line (no trailing newline):
///   2026-08-07T12:34:56.789Z I tid=3 trace=00000000deadbeef message
/// `tid=` is the emitting thread's obs::DenseThreadId() — the same id
/// span timelines carry, so a log line can be joined against the
/// /tracez view of its request. `trace=` is omitted when trace_id is 0
/// (no request in scope); unix_micros is microseconds since the Unix
/// epoch, UTC.
std::string FormatLogLine(LogSeverity severity, std::string_view message,
                          uint64_t trace_id, int64_t unix_micros,
                          uint32_t tid);

/// Writes one line to the log sink (stderr by default), stamped with
/// the current wall-clock time. Thread-safe; lines never interleave.
void Log(LogSeverity severity, std::string_view message,
         uint64_t trace_id = 0);

inline void LogInfo(std::string_view message, uint64_t trace_id = 0) {
  Log(LogSeverity::kInfo, message, trace_id);
}
inline void LogWarning(std::string_view message, uint64_t trace_id = 0) {
  Log(LogSeverity::kWarning, message, trace_id);
}
inline void LogError(std::string_view message, uint64_t trace_id = 0) {
  Log(LogSeverity::kError, message, trace_id);
}

/// Redirects Log() output (tests; null resets to stderr). The stream
/// must stay valid until the next SetLogSink call.
void SetLogSink(std::FILE* sink);

}  // namespace cafe::obs

#endif  // CAFE_OBS_LOG_H_
