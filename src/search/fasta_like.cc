#include "search/fasta_like.h"

#include "align/smith_waterman.h"
#include "index/interval.h"
#include "util/timer.h"

namespace cafe {

Result<SearchResult> FastaLikeSearch::Search(std::string_view query,
                                             const SearchOptions& options) {
  CAFE_RETURN_IF_ERROR(options.Validate());
  const int k = params_.ktup;
  if (k < kMinIntervalLength || k > 12) {
    return Status::InvalidArgument("ktup out of range");
  }
  if (query.size() < static_cast<size_t>(k)) {
    return Status::InvalidArgument("query shorter than ktup");
  }

  WallTimer total;
  obs::SearchTrace* trace = options.trace;
  obs::TraceSpan total_span(trace != nullptr ? &trace->total_micros
                                             : nullptr);
  obs::TraceSpan fine_span(trace != nullptr ? &trace->fine_micros
                                            : nullptr);
  obs::Span search_span(options.spans, "search");
  if (trace != nullptr) ++trace->queries;
  SearchResult result;
  Aligner aligner(options.scoring);
  TopHits top(options.max_results);

  // Dense k-tuple lookup: term -> query positions.
  std::vector<std::vector<uint32_t>> lookup(VocabularyUniverse(k));
  ForEachInterval(query, k, /*stride=*/1,
                  [&](uint32_t pos, uint32_t term) {
                    lookup[term].push_back(pos);
                    if (trace != nullptr) {
                      ++trace->intervals_extracted;
                      if (lookup[term].size() == 1) ++trace->terms_distinct;
                    }
                  });

  const int64_t qlen = static_cast<int64_t>(query.size());
  std::vector<uint32_t> histo;
  std::vector<int64_t> touched;
  std::string seq;
  const uint32_t num_docs = collection_->NumSequences();
  for (uint32_t doc = 0; doc < num_docs; ++doc) {
    CAFE_RETURN_IF_ERROR(collection_->GetSequence(doc, &seq));

    // Diagonal histogram (FASTA init phase).
    const size_t diag_range = query.size() + seq.size();
    if (histo.size() < diag_range) histo.resize(diag_range, 0);
    touched.clear();
    ForEachInterval(seq, k, /*stride=*/1, [&](uint32_t tpos, uint32_t term) {
      const std::vector<uint32_t>& qpositions = lookup[term];
      for (uint32_t qpos : qpositions) {
        int64_t idx = static_cast<int64_t>(tpos) - qpos + qlen;
        if (histo[idx]++ == 0) touched.push_back(idx);
      }
    });

    uint32_t best_hits = 0;
    int64_t best_diag = 0;
    for (int64_t idx : touched) {
      if (histo[idx] > best_hits) {
        best_hits = histo[idx];
        best_diag = idx - qlen;
      }
    }
    for (int64_t idx : touched) histo[idx] = 0;

    if (best_hits < params_.min_diagonal_hits) continue;
    ++result.stats.candidates_ranked;

    // Rescore the best region with a banded alignment (FASTA opt phase).
    int score = aligner.BandedScore(query, seq, best_diag, options.band);
    ++result.stats.candidates_aligned;
    if (score < options.min_score) continue;

    SearchHit hit;
    hit.seq_id = doc;
    hit.score = score;
    hit.coarse_score = best_hits;
    top.Add(std::move(hit));
  }
  result.hits = top.Take();

  if (options.traceback) {
    for (SearchHit& hit : result.hits) {
      CAFE_RETURN_IF_ERROR(collection_->GetSequence(hit.seq_id, &seq));
      Result<LocalAlignment> aln = aligner.Align(query, seq);
      if (!aln.ok()) return aln.status();
      hit.alignment = std::move(*aln);
    }
  }

  result.stats.cells_computed = aligner.cells_computed();
  result.stats.fine_seconds = total.Seconds();
  result.stats.total_seconds = result.stats.fine_seconds;
  if (trace != nullptr) {
    trace->candidates_ranked += result.stats.candidates_ranked;
    trace->candidates_kept += result.stats.candidates_ranked;
    trace->candidates_aligned += result.stats.candidates_aligned;
    trace->cells_computed += result.stats.cells_computed;
    trace->hits_reported += result.hits.size();
  }
  if (options.statistics.has_value()) {
    AnnotateStatistics(&result, query.size(), collection_->TotalBases(),
                       *options.statistics);
  }
  return result;
}

}  // namespace cafe
