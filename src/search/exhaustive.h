// ExhaustiveSearch — the oracle baseline: full Smith-Waterman dynamic
// programming against every sequence in the collection. This is the
// "exhaustive search technique" of the paper's abstract; its ranking also
// serves as the ground truth for the retrieval-effectiveness experiment.

#ifndef CAFE_SEARCH_EXHAUSTIVE_H_
#define CAFE_SEARCH_EXHAUSTIVE_H_

#include "collection/collection.h"
#include "search/engine.h"

namespace cafe {

class ExhaustiveSearch final : public SearchEngine {
 public:
  explicit ExhaustiveSearch(const SequenceCollection* collection)
      : collection_(collection) {}

  std::string name() const override { return "exhaustive-sw"; }

  Result<SearchResult> Search(std::string_view query,
                              const SearchOptions& options) override;

  /// Stateless apart from the collection pointer; Search uses only
  /// per-call scratch, so concurrent queries are safe.
  bool SupportsConcurrentSearch() const override { return true; }

 private:
  const SequenceCollection* collection_;
};

}  // namespace cafe

#endif  // CAFE_SEARCH_EXHAUSTIVE_H_
