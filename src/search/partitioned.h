// PartitionedSearch — the paper's contribution. A query is evaluated in
// two phases: a coarse phase ranks the collection by interval evidence
// using only the compressed inverted index, then a fine phase runs local
// alignment on the top-ranked candidates only. Several-fold faster than
// exhaustive dynamic programming at a small cost in retrieval accuracy,
// controlled by SearchOptions::fine_candidates.

#ifndef CAFE_SEARCH_PARTITIONED_H_
#define CAFE_SEARCH_PARTITIONED_H_

#include "collection/collection.h"
#include "index/inverted_index.h"
#include "index/posting_source.h"
#include "search/coarse.h"
#include "search/engine.h"

namespace cafe {

class PartitionedSearch final : public SearchEngine {
 public:
  /// Both pointers must outlive the engine; the index must have been
  /// built over `collection`.
  PartitionedSearch(const SequenceCollection* collection,
                    const PostingSource* index)
      : collection_(collection), index_(index), ranker_(index) {}

  std::string name() const override { return "partitioned"; }

  /// With options.threads > 1 (0 = hardware threads) the fine phase
  /// spreads candidates over a worker pool, each worker with its own
  /// aligner scratch; hits and statistics merge deterministically, so
  /// results are identical at every thread count. threads == 1 runs the
  /// sequential reference path.
  Result<SearchResult> Search(std::string_view query,
                              const SearchOptions& options) override;

  /// Search only reads the collection and the posting source through
  /// their thread-safe const interfaces, so concurrent queries (the
  /// BatchSearch fan-out) are safe.
  bool SupportsConcurrentSearch() const override { return true; }

 private:
  const SequenceCollection* collection_;
  const PostingSource* index_;
  CoarseRanker ranker_;
};

}  // namespace cafe

#endif  // CAFE_SEARCH_PARTITIONED_H_
