// PartitionedSearch — the paper's contribution. A query is evaluated in
// two phases: a coarse phase ranks the collection by interval evidence
// using only the compressed inverted index, then a fine phase runs local
// alignment on the top-ranked candidates only. Several-fold faster than
// exhaustive dynamic programming at a small cost in retrieval accuracy,
// controlled by SearchOptions::fine_candidates.

#ifndef CAFE_SEARCH_PARTITIONED_H_
#define CAFE_SEARCH_PARTITIONED_H_

#include "collection/collection.h"
#include "index/inverted_index.h"
#include "index/posting_source.h"
#include "search/coarse.h"
#include "search/engine.h"

namespace cafe {

class PartitionedSearch final : public SearchEngine {
 public:
  /// Both pointers must outlive the engine; the index must have been
  /// built over `collection`.
  PartitionedSearch(const SequenceCollection* collection,
                    const PostingSource* index)
      : collection_(collection), index_(index), ranker_(index) {}

  std::string name() const override { return "partitioned"; }

  Result<SearchResult> Search(std::string_view query,
                              const SearchOptions& options) override;

 private:
  const SequenceCollection* collection_;
  const PostingSource* index_;
  CoarseRanker ranker_;
};

}  // namespace cafe

#endif  // CAFE_SEARCH_PARTITIONED_H_
