// The coarse phase of partitioned search: rank collection sequences by
// interval evidence against the query, using only the compressed inverted
// index — no sequence data is touched.

#ifndef CAFE_SEARCH_COARSE_H_
#define CAFE_SEARCH_COARSE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "index/posting_source.h"
#include "search/engine.h"

namespace cafe {

/// A sequence the coarse phase considers promising.
struct CoarseCandidate {
  uint32_t doc = 0;
  /// Interval-evidence score (hit count, or best combined frame count).
  double score = 0.0;
  /// Best-evidence alignment diagonal (target pos - query pos); only
  /// meaningful when has_diagonal is set (diagonal mode on a positional
  /// index).
  int64_t diagonal = 0;
  bool has_diagonal = false;
};

class CoarseRanker {
 public:
  explicit CoarseRanker(const PostingSource* index) : index_(index) {}

  /// Ranks all matching sequences and returns the best `limit` in
  /// descending score order. `mode` falls back to kHitCount when the
  /// index lacks positions. Updates stats (postings_decoded,
  /// candidates_ranked, coarse_seconds) and, when `trace` is non-null,
  /// the coarse stages of the pruning funnel (interval/term counts,
  /// lists touched, candidates ranked/kept/discarded, coarse_micros).
  /// When `spans` is non-null, records the coarse.rank span with a
  /// nested index.postings span around the postings decode loop.
  std::vector<CoarseCandidate> Rank(std::string_view query,
                                    CoarseRankMode mode, uint32_t limit,
                                    uint32_t frame_width, SearchStats* stats,
                                    obs::SearchTrace* trace = nullptr,
                                    obs::SpanRecorder* spans = nullptr) const;

 private:
  std::vector<CoarseCandidate> RankHitCount(std::string_view query,
                                            uint32_t limit,
                                            SearchStats* stats,
                                            obs::SearchTrace* trace,
                                            obs::SpanRecorder* spans) const;
  std::vector<CoarseCandidate> RankDiagonal(std::string_view query,
                                            uint32_t limit,
                                            uint32_t frame_width,
                                            SearchStats* stats,
                                            obs::SearchTrace* trace,
                                            obs::SpanRecorder* spans) const;

  const PostingSource* index_;
};

}  // namespace cafe

#endif  // CAFE_SEARCH_COARSE_H_
