#include "search/blast_like.h"

#include <unordered_map>

#include "align/smith_waterman.h"
#include "align/xdrop.h"
#include "index/interval.h"
#include "util/timer.h"

namespace cafe {

Result<SearchResult> BlastLikeSearch::Search(std::string_view query,
                                             const SearchOptions& options) {
  CAFE_RETURN_IF_ERROR(options.Validate());
  const int w = params_.seed_length;
  if (w < kMinIntervalLength || w > kMaxIntervalLength) {
    return Status::InvalidArgument("seed_length out of range");
  }
  if (query.size() < static_cast<size_t>(w)) {
    return Status::InvalidArgument("query shorter than the seed length");
  }

  WallTimer total;
  obs::SearchTrace* trace = options.trace;
  obs::TraceSpan total_span(trace != nullptr ? &trace->total_micros
                                             : nullptr);
  obs::TraceSpan fine_span(trace != nullptr ? &trace->fine_micros
                                            : nullptr);
  obs::Span search_span(options.spans, "search");
  if (trace != nullptr) ++trace->queries;
  SearchResult result;
  Aligner aligner(options.scoring);
  PairScoreTable table(options.scoring);
  TopHits top(options.max_results);

  // Query word table: seed term -> query positions.
  std::unordered_map<uint32_t, std::vector<uint32_t>> words;
  ForEachInterval(query, w, /*stride=*/1,
                  [&](uint32_t pos, uint32_t term) {
                    words[term].push_back(pos);
                  });
  if (trace != nullptr) {
    trace->terms_distinct += words.size();
    for (const auto& [term, positions] : words) {
      trace->intervals_extracted += positions.size();
    }
  }

  std::string seq;
  const uint32_t num_docs = collection_->NumSequences();
  // Per-sequence "how far has this diagonal been extended" map, to avoid
  // re-extending every seed inside an already-found segment.
  std::unordered_map<int64_t, uint32_t> diag_end;
  for (uint32_t doc = 0; doc < num_docs; ++doc) {
    CAFE_RETURN_IF_ERROR(collection_->GetSequence(doc, &seq));
    diag_end.clear();

    int best_score = 0;
    int best_ungapped = 0;
    int64_t best_diag = 0;
    bool triggered = false;

    ForEachInterval(seq, w, /*stride=*/1, [&](uint32_t tpos, uint32_t term) {
      auto it = words.find(term);
      if (it == words.end()) return;
      for (uint32_t qpos : it->second) {
        int64_t diag = static_cast<int64_t>(tpos) - qpos;
        auto de = diag_end.find(diag);
        if (de != diag_end.end() && tpos < de->second) continue;
        UngappedSegment seg =
            XDropExtend(query, seq, qpos, tpos, static_cast<uint32_t>(w),
                        table, params_.xdrop);
        diag_end[diag] = seg.target_end;
        if (seg.score > best_ungapped) {
          best_ungapped = seg.score;
          best_diag = static_cast<int64_t>(seg.target_begin) -
                      seg.query_begin;
        }
        if (seg.score >= params_.gapped_trigger) triggered = true;
      }
    });

    if (best_ungapped <= 0) continue;
    ++result.stats.candidates_ranked;
    if (triggered) {
      best_score =
          aligner.BandedScore(query, seq, best_diag, options.band);
      ++result.stats.candidates_aligned;
    } else {
      best_score = best_ungapped;
    }
    if (best_score < options.min_score) continue;

    SearchHit hit;
    hit.seq_id = doc;
    hit.score = best_score;
    hit.coarse_score = best_ungapped;
    top.Add(std::move(hit));
  }
  result.hits = top.Take();

  if (options.traceback) {
    for (SearchHit& hit : result.hits) {
      CAFE_RETURN_IF_ERROR(collection_->GetSequence(hit.seq_id, &seq));
      Result<LocalAlignment> aln = aligner.Align(query, seq);
      if (!aln.ok()) return aln.status();
      hit.alignment = std::move(*aln);
    }
  }

  result.stats.cells_computed = aligner.cells_computed();
  result.stats.fine_seconds = total.Seconds();
  result.stats.total_seconds = result.stats.fine_seconds;
  if (trace != nullptr) {
    trace->candidates_ranked += result.stats.candidates_ranked;
    trace->candidates_kept += result.stats.candidates_ranked;
    trace->candidates_aligned += result.stats.candidates_aligned;
    trace->cells_computed += result.stats.cells_computed;
    trace->hits_reported += result.hits.size();
  }
  if (options.statistics.has_value()) {
    AnnotateStatistics(&result, query.size(), collection_->TotalBases(),
                       *options.statistics);
  }
  return result;
}

}  // namespace cafe
