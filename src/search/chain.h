// The chaining middle stage of partitioned search: between the coarse
// interval ranking and the fine (DP) alignment phase, re-examine each
// coarse candidate's seed matches as (query position, subject position)
// anchors, filter them to the best diagonal window, and keep only the
// candidates whose anchors form a collinear chain — the localization
// step the positional-index DNA engines build on (arXiv:1307.0194,
// arXiv:1006.4114). After PR 8's SIMD work the fine-phase candidate
// count, not per-candidate cost, dominates query time; this stage is
// the knife that shrinks it.
//
// The stage is deliberately conservative: it only *drops* candidates
// (never reorders or rescores them), and its band hints only widen the
// traceback window (candidate scoring keeps the caller's band), so the
// surviving hits are byte-identical to what the same options produce
// with chaining off whenever the dropped candidates were not going to
// be reported — the property bench/baselines/chain.json gates.

#ifndef CAFE_SEARCH_CHAIN_H_
#define CAFE_SEARCH_CHAIN_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "index/posting_source.h"
#include "search/coarse.h"
#include "search/engine.h"

namespace cafe {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Output of the chaining stage.
struct ChainOutcome {
  /// Surviving candidates, in the coarse ranking's order.
  std::vector<CoarseCandidate> kept;
  /// Per-kept-candidate banded-alignment hint, parallel to `kept`: a
  /// half-width covering the diagonal window the candidate's filtered
  /// anchors span, never below the requested band. Consumed by the
  /// traceback step so reported alignments are not clipped to a window
  /// narrower than the chain; candidate *scoring* keeps the caller's
  /// band so the ranking is identical with chaining on or off.
  std::vector<int> band_hints;
};

/// Runs the diagonal-filter + collinear-chaining stage. Passes every
/// candidate through untouched (hints = options.band) when chaining is
/// off, the index lacks positions, or there are no candidates; when
/// active, records the chain.* funnel into `trace` (chain_micros,
/// chain_candidates_in/anchors/kept/dropped) and the process-wide
/// chain.* counters. Deterministic: depends only on (query, index,
/// candidates, options), never on thread count.
ChainOutcome ChainCandidates(std::string_view query,
                             std::vector<CoarseCandidate> candidates,
                             const PostingSource& index,
                             const SearchOptions& options,
                             obs::SearchTrace* trace);

/// Mirrors the chaining stage's process-wide counters into `registry`
/// (chain.invocations, chain.anchors, chain.candidates_kept,
/// chain.candidates_dropped). Null detaches. Same idiom as
/// AttachPackedScanMetrics: relaxed-atomic counter pointers, zero cost
/// when detached.
void AttachChainMetrics(obs::MetricsRegistry* registry);

namespace internal {
/// Hot-path hook behind AttachChainMetrics; no-op when detached.
void RecordChain(uint64_t anchors, uint64_t kept, uint64_t dropped);
}  // namespace internal

}  // namespace cafe

#endif  // CAFE_SEARCH_CHAIN_H_
