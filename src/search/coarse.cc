#include "search/coarse.h"

#include <algorithm>
#include <unordered_map>

#include "index/interval.h"
#include "index/inverted_index.h"
#include "index/seed_extract.h"
#include "obs/span.h"
#include "util/timer.h"

namespace cafe {
namespace {

// Groups the query's interval occurrences by term so each postings list
// is decoded exactly once. Extraction follows the index's own plan
// (contiguous intervals or its spaced-seed pattern) at stride 1.
std::unordered_map<uint32_t, std::vector<uint32_t>> QueryTermPositions(
    std::string_view query, const IndexOptions& options) {
  std::unordered_map<uint32_t, std::vector<uint32_t>> terms;
  Result<SeedExtractor> extractor = SeedExtractor::Create(
      options.interval_length, options.spaced_seed);
  if (!extractor.ok()) return terms;  // validated at build/load time
  extractor->ForEach(query, /*stride=*/1,
                     [&](uint32_t pos, uint32_t term) {
                       terms[term].push_back(pos);
                     });
  return terms;
}

// Counts the query-side stages of the funnel: interval occurrences,
// distinct terms, and how many terms have a postings list at all (the
// rest were stopped at build time or never occurred). Null trace = no
// work beyond the check.
void TraceQueryTerms(
    const PostingSource* index,
    const std::unordered_map<uint32_t, std::vector<uint32_t>>& terms,
    obs::SearchTrace* trace) {
  if (trace == nullptr) return;
  trace->terms_distinct += terms.size();
  for (const auto& [term, qpositions] : terms) {
    trace->intervals_extracted += qpositions.size();
    if (index->FindTerm(term) == nullptr) {
      ++trace->terms_unindexed;
    } else {
      ++trace->postings_lists_touched;
    }
  }
}

std::vector<CoarseCandidate> SelectTop(std::vector<CoarseCandidate> all,
                                       uint32_t limit) {
  auto better = [](const CoarseCandidate& a, const CoarseCandidate& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  };
  if (all.size() > limit) {
    std::nth_element(all.begin(), all.begin() + limit, all.end(), better);
    all.resize(limit);
  }
  std::sort(all.begin(), all.end(), better);
  return all;
}

}  // namespace

std::vector<CoarseCandidate> CoarseRanker::Rank(
    std::string_view query, CoarseRankMode mode, uint32_t limit,
    uint32_t frame_width, SearchStats* stats, obs::SearchTrace* trace,
    obs::SpanRecorder* spans) const {
  WallTimer timer;
  obs::TraceSpan span(trace != nullptr ? &trace->coarse_micros : nullptr);
  obs::Span rank_span(spans, "coarse.rank");
  std::vector<CoarseCandidate> out;
  if (mode == CoarseRankMode::kDiagonal &&
      index_->options().granularity == IndexGranularity::kPositional) {
    out = RankDiagonal(query, limit, frame_width, stats, trace, spans);
  } else {
    out = RankHitCount(query, limit, stats, trace, spans);
  }
  if (trace != nullptr) {
    trace->candidates_kept += out.size();
  }
  if (stats != nullptr) stats->coarse_seconds += timer.Seconds();
  return out;
}

std::vector<CoarseCandidate> CoarseRanker::RankHitCount(
    std::string_view query, uint32_t limit, SearchStats* stats,
    obs::SearchTrace* trace, obs::SpanRecorder* spans) const {
  auto terms = QueryTermPositions(query, index_->options());
  TraceQueryTerms(index_, terms, trace);

  std::vector<double> acc(index_->num_docs(), 0.0);
  std::vector<uint32_t> touched;
  uint64_t postings = 0;
  {
    obs::Span postings_span(spans, "index.postings");
    for (const auto& [term, qpositions] : terms) {
      const auto qtf = static_cast<uint32_t>(qpositions.size());
      index_->ScanPostings(
          term, [&](uint32_t doc, uint32_t tf, const uint32_t*, uint32_t) {
            if (acc[doc] == 0.0) touched.push_back(doc);
            acc[doc] += std::min(qtf, tf);
            ++postings;
          });
    }
  }

  std::vector<CoarseCandidate> all;
  all.reserve(touched.size());
  for (uint32_t doc : touched) {
    all.push_back(CoarseCandidate{doc, acc[doc], 0, false});
  }
  if (stats != nullptr) {
    stats->postings_decoded += postings;
    stats->candidates_ranked += all.size();
  }
  if (trace != nullptr) {
    trace->postings_decoded += postings;
    trace->candidates_ranked += all.size();
    trace->candidates_discarded +=
        all.size() > limit ? all.size() - limit : 0;
  }
  return SelectTop(std::move(all), limit);
}

std::vector<CoarseCandidate> CoarseRanker::RankDiagonal(
    std::string_view query, uint32_t limit, uint32_t frame_width,
    SearchStats* stats, obs::SearchTrace* trace,
    obs::SpanRecorder* spans) const {
  if (frame_width == 0) frame_width = 16;
  auto terms = QueryTermPositions(query, index_->options());
  TraceQueryTerms(index_, terms, trace);
  const int64_t qlen = static_cast<int64_t>(query.size());

  // (doc, frame) -> number of interval hits whose diagonal falls in the
  // frame. Frames partition the diagonal range [-qlen, doc_len).
  std::unordered_map<uint64_t, uint32_t> frame_hits;
  frame_hits.reserve(1024);
  uint64_t postings = 0;
  {
    obs::Span postings_span(spans, "index.postings");
    for (const auto& [term, qpositions] : terms) {
      index_->ScanPostings(
          term, [&](uint32_t doc, uint32_t tf, const uint32_t* positions,
                    uint32_t npos) {
            (void)tf;
            ++postings;
            for (uint32_t pi = 0; pi < npos; ++pi) {
              for (uint32_t qpos : qpositions) {
                int64_t diag = static_cast<int64_t>(positions[pi]) -
                               static_cast<int64_t>(qpos);
                uint64_t frame =
                    static_cast<uint64_t>(diag + qlen) / frame_width;
                ++frame_hits[(uint64_t{doc} << 32) | frame];
              }
            }
          });
    }
  }

  // Combine each frame with its right neighbour so evidence straddling a
  // frame boundary is not split, and take the best combined window per
  // sequence.
  std::unordered_map<uint32_t, CoarseCandidate> best;
  best.reserve(frame_hits.size());
  for (const auto& [key, count] : frame_hits) {
    uint32_t doc = static_cast<uint32_t>(key >> 32);
    uint64_t frame = key & 0xFFFFFFFFull;
    auto right = frame_hits.find((uint64_t{doc} << 32) | (frame + 1));
    double combined =
        count + (right == frame_hits.end() ? 0 : right->second);
    int64_t diagonal =
        static_cast<int64_t>((frame + 1) * frame_width) - qlen;
    CoarseCandidate& cand = best[doc];
    if (combined > cand.score) {
      cand.doc = doc;
      cand.score = combined;
      cand.diagonal = diagonal;
      cand.has_diagonal = true;
    }
  }

  std::vector<CoarseCandidate> all;
  all.reserve(best.size());
  for (auto& [doc, cand] : best) all.push_back(cand);
  if (stats != nullptr) {
    stats->postings_decoded += postings;
    stats->candidates_ranked += all.size();
  }
  if (trace != nullptr) {
    trace->postings_decoded += postings;
    trace->candidates_ranked += all.size();
    trace->candidates_discarded +=
        all.size() > limit ? all.size() - limit : 0;
  }
  return SelectTop(std::move(all), limit);
}

}  // namespace cafe
