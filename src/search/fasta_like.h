// FastaLikeSearch — a scan-based diagonal-histogram baseline in the style
// of FASTA (Pearson & Lipman, 1988): short k-tuple lookups build a
// per-sequence diagonal histogram; the densest diagonal region is then
// rescored with a banded alignment. Like the BLAST-like engine it reads
// the entire collection per query.

#ifndef CAFE_SEARCH_FASTA_LIKE_H_
#define CAFE_SEARCH_FASTA_LIKE_H_

#include "collection/collection.h"
#include "search/engine.h"

namespace cafe {

struct FastaLikeParams {
  /// k-tuple length (FASTA's ktup; 6 is the classic nucleotide choice).
  int ktup = 6;
  /// Minimum diagonal hit count for a sequence to be rescored.
  uint32_t min_diagonal_hits = 2;
};

class FastaLikeSearch final : public SearchEngine {
 public:
  explicit FastaLikeSearch(const SequenceCollection* collection,
                           const FastaLikeParams& params = FastaLikeParams())
      : collection_(collection), params_(params) {}

  std::string name() const override { return "fasta-like"; }

  Result<SearchResult> Search(std::string_view query,
                              const SearchOptions& options) override;

  /// Stateless apart from the collection pointer and fixed params;
  /// concurrent queries are safe.
  bool SupportsConcurrentSearch() const override { return true; }

 private:
  const SequenceCollection* collection_;
  FastaLikeParams params_;
};

}  // namespace cafe

#endif  // CAFE_SEARCH_FASTA_LIKE_H_
