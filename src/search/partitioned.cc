#include "search/partitioned.h"

#include <algorithm>
#include <cstddef>

#include "align/smith_waterman.h"
#include "index/inverted_index.h"
#include "obs/span.h"
#include "search/chain.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cafe {
namespace {

// Per-worker fine-phase state: its own aligner (DP scratch is
// per-instance), its own top-k, and its own counters, merged
// sequentially after the loop so results are identical to the
// single-threaded path.
struct FineWorker {
  FineWorker(const ScoringScheme& scheme, uint32_t limit)
      : aligner(scheme), top(limit) {}

  Aligner aligner;
  TopHits top;
  std::string seq;
  uint64_t aligned = 0;
  // fine.worker span stamps: first/last candidate touched on this
  // worker and the pool thread that ran it. Recorded via AddSpan after
  // the join (a worker span must carry the pool thread's tid, but only
  // the coordinating thread may assemble the timeline).
  uint64_t span_begin_ns = 0;
  uint64_t span_end_ns = 0;
  uint32_t span_tid = 0;
  // Set when the deadline fired before this worker's share was done.
  bool truncated = false;
  // Lowest candidate index that failed, mirroring the sequential path's
  // fail-on-first-error behaviour deterministically.
  size_t error_index = SIZE_MAX;
  Status error = Status::OK();
};

void AlignCandidate(const SequenceCollection& collection,
                    std::string_view query, const SearchOptions& options,
                    const CoarseCandidate& cand, size_t index,
                    FineWorker* w) {
  if (w->error_index != SIZE_MAX && index > w->error_index) return;
  // Deadline poll between candidates: one clock read (~ns) against an
  // alignment (~µs+), so the fine phase stops within one candidate of
  // the deadline instead of finishing the whole budget.
  if (options.deadline != nullptr &&
      (w->truncated || options.deadline->Expired())) {
    w->truncated = true;
    return;
  }
  Status s = collection.GetSequence(cand.doc, &w->seq);
  if (!s.ok()) {
    if (index < w->error_index) {
      w->error_index = index;
      w->error = s;
    }
    return;
  }
  int score =
      cand.has_diagonal
          ? w->aligner.BandedScore(query, w->seq, cand.diagonal,
                                   options.band)
          : w->aligner.ScoreOnly(query, w->seq);
  ++w->aligned;
  if (score < options.min_score) return;
  SearchHit hit;
  hit.seq_id = cand.doc;
  hit.score = score;
  hit.coarse_score = cand.score;
  w->top.Add(std::move(hit));
}

}  // namespace

Result<SearchResult> PartitionedSearch::Search(std::string_view query,
                                               const SearchOptions& options) {
  CAFE_RETURN_IF_ERROR(options.Validate());
  if (query.size() < static_cast<size_t>(index_->options().interval_length)) {
    return Status::InvalidArgument(
        "query shorter than the index interval length");
  }
  if (!options.seed_pattern.empty()) {
    // A caller that pins the seed shape gets a hard error instead of
    // silently wrong terms when the index was built differently.
    const IndexOptions& iopt = index_->options();
    const std::string effective =
        iopt.spaced_seed.empty()
            ? std::string(static_cast<size_t>(iopt.interval_length), '1')
            : iopt.spaced_seed;
    if (options.seed_pattern != effective) {
      return Status::InvalidArgument("seed_pattern does not match the index "
                                     "(index extracts with '" +
                                     effective + "')");
    }
  }

  WallTimer total;
  obs::SearchTrace* trace = options.trace;
  obs::TraceSpan total_span(trace != nullptr ? &trace->total_micros
                                             : nullptr);
  obs::SpanRecorder* spans = options.spans;
  obs::Span search_span(spans, "search");
  if (trace != nullptr) ++trace->queries;
  SearchResult result;

  // Deadline poll at entry: a request that spent its whole budget
  // queued (or on the forward strand) returns immediately.
  if (options.deadline != nullptr && options.deadline->Expired()) {
    result.truncated = true;
    result.stats.total_seconds += total.Seconds();
    return result;
  }

  // Coarse phase: rank by interval evidence, keep the fine-search budget.
  std::vector<CoarseCandidate> candidates = ranker_.Rank(
      query, options.coarse_mode, options.fine_candidates,
      options.frame_width, &result.stats, trace, spans);

  // Phase boundary: when the deadline fired during the coarse phase,
  // skip fine alignment entirely rather than starting work we cannot
  // finish. The per-candidate polls inside the fine loop handle a
  // deadline that fires mid-phase.
  if (options.deadline != nullptr && options.deadline->Expired()) {
    result.truncated = true;
    candidates.clear();
  }

  // Chaining middle stage: re-examine each candidate's seed matches as
  // (qpos, spos) anchors, filter to the best diagonal window, and drop
  // candidates without a collinear chain of min_chain_score seeds. A
  // pure pass-through when chaining is off or the index lacks
  // positions. Sequential and deterministic, like the coarse phase.
  ChainOutcome chained = ChainCandidates(query, std::move(candidates),
                                         *index_, options, trace);
  const std::vector<CoarseCandidate>& survivors = chained.kept;

  // Fine phase: local alignment on the candidates only. Each candidate
  // is independent, so with threads > 1 the candidates are spread over a
  // pool of workers, each with its own aligner; per-worker top-k sets
  // and counters are merged in worker order. Top-k selection under the
  // total order (score desc, seq_id asc) is a pure function of the hit
  // set, so the merged ranking is bit-identical to the sequential one.
  WallTimer fine;
  const uint32_t requested = options.threads == 0
                                 ? ThreadPool::HardwareThreads()
                                 : options.threads;
  const size_t workers =
      std::min<size_t>(std::max<uint32_t>(requested, 1), survivors.size());

  {
    // fine.align covers alignment plus merge; each participating worker
    // additionally gets one fine.worker child (first-to-last candidate
    // on that worker, stamped with the running thread). The sequential
    // path emits the same span names as the pooled one so the timeline
    // shape is thread-count invariant (span_test asserts this).
    obs::Span fine_span(spans, "fine.align");
    if (workers <= 1) {
      // Sequential reference path (--threads 1): no pool is created.
      FineWorker w(options.scoring, options.max_results);
      if (spans != nullptr && !survivors.empty()) {
        w.span_begin_ns = obs::SpanRecorder::NowNanos();
        w.span_tid = obs::DenseThreadId();
      }
      for (size_t i = 0; i < survivors.size(); ++i) {
        AlignCandidate(*collection_, query, options, survivors[i], i, &w);
        if (w.error_index != SIZE_MAX) return w.error;
      }
      if (spans != nullptr && !survivors.empty()) {
        w.span_end_ns = obs::SpanRecorder::NowNanos();
        spans->AddSpan("fine.worker", fine_span.id(), w.span_tid,
                       w.span_begin_ns, w.span_end_ns);
      }
      obs::Span merge_span(spans, "fine.merge");
      result.hits = w.top.Take();
      result.stats.candidates_aligned += w.aligned;
      result.stats.cells_computed += w.aligner.cells_computed();
      result.truncated = result.truncated || w.truncated;
    } else {
      std::vector<FineWorker> states;
      states.reserve(workers);
      for (size_t w = 0; w < workers; ++w) {
        states.emplace_back(options.scoring, options.max_results);
      }
      ThreadPool pool(static_cast<unsigned>(workers));
      pool.ParallelFor(survivors.size(), [&](size_t i, unsigned w) {
        FineWorker& state = states[w];
        if (spans != nullptr && state.span_begin_ns == 0) {
          state.span_begin_ns = obs::SpanRecorder::NowNanos();
          state.span_tid = obs::DenseThreadId();
        }
        AlignCandidate(*collection_, query, options, survivors[i], i,
                       &state);
        if (spans != nullptr) {
          state.span_end_ns = obs::SpanRecorder::NowNanos();
        }
      });
      const FineWorker* failed = nullptr;
      for (const FineWorker& w : states) {
        if (w.error_index != SIZE_MAX &&
            (failed == nullptr || w.error_index < failed->error_index)) {
          failed = &w;
        }
      }
      if (failed != nullptr) return failed->error;
      if (spans != nullptr) {
        // The pool has joined, so the stamps are visible here and the
        // coordinating thread can assemble the worker spans.
        for (const FineWorker& w : states) {
          if (w.span_begin_ns == 0) continue;  // never ran a candidate
          spans->AddSpan("fine.worker", fine_span.id(), w.span_tid,
                         w.span_begin_ns, w.span_end_ns);
        }
      }
      obs::Span merge_span(spans, "fine.merge");
      TopHits top(options.max_results);
      for (FineWorker& w : states) {
        for (SearchHit& hit : w.top.Take()) top.Add(std::move(hit));
        result.stats.candidates_aligned += w.aligned;
        result.stats.cells_computed += w.aligner.cells_computed();
        result.truncated = result.truncated || w.truncated;
      }
      result.hits = top.Take();
    }
  }

  if (trace != nullptr) {
    trace->fine_micros += fine.Micros();
    trace->candidates_aligned += result.stats.candidates_aligned;
  }

  // Post-processing on the reported hits (at most max_results of them)
  // stays sequential: it is cheap, and keeping it single-threaded keeps
  // the output trivially deterministic. A truncated result skips it —
  // the contract after a deadline is "return what you have, fast".
  obs::TraceSpan post_span(trace != nullptr ? &trace->post_micros
                                            : nullptr);
  obs::Span post_process_span(spans, "post.process");
  Aligner post_aligner(options.scoring);
  std::string seq;
  if (options.rescore_full && !result.truncated) {
    // Remove band clipping from the reported scores: one full DP per
    // reported hit (cheap — max_results sequences, not the collection).
    for (SearchHit& hit : result.hits) {
      CAFE_RETURN_IF_ERROR(collection_->GetSequence(hit.seq_id, &seq));
      hit.score = post_aligner.ScoreOnly(query, seq);
    }
    std::sort(result.hits.begin(), result.hits.end(),
              [](const SearchHit& a, const SearchHit& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.seq_id < b.seq_id;
              });
  }

  if (options.traceback && !result.truncated) {
    for (SearchHit& hit : result.hits) {
      CAFE_RETURN_IF_ERROR(collection_->GetSequence(hit.seq_id, &seq));
      // Re-derive the candidate diagonal for a banded traceback; fall
      // back to the full matrix when the coarse phase had no positions.
      // The chain's band hint (>= options.band) widens the traceback
      // window so the reported alignment is not clipped to a band
      // narrower than the anchors it chained.
      const CoarseCandidate* cand = nullptr;
      int traceback_band = options.band;
      for (size_t ci = 0; ci < survivors.size(); ++ci) {
        if (survivors[ci].doc == hit.seq_id) {
          cand = &survivors[ci];
          traceback_band = chained.band_hints[ci];
          break;
        }
      }
      if (cand != nullptr && cand->has_diagonal) {
        Result<LocalAlignment> aln = post_aligner.BandedAlign(
            query, seq, cand->diagonal, traceback_band);
        if (!aln.ok()) return aln.status();
        hit.alignment = std::move(*aln);
      } else {
        Result<LocalAlignment> aln = post_aligner.Align(query, seq);
        if (!aln.ok()) return aln.status();
        hit.alignment = std::move(*aln);
      }
    }
  }

  result.stats.cells_computed += post_aligner.cells_computed();
  result.stats.fine_seconds += fine.Seconds();
  result.stats.total_seconds += total.Seconds();
  if (trace != nullptr) {
    trace->cells_computed += result.stats.cells_computed;
    trace->hits_reported += result.hits.size();
  }
  if (options.statistics.has_value()) {
    AnnotateStatistics(&result, query.size(), collection_->TotalBases(),
                       *options.statistics);
  }
  return result;
}

}  // namespace cafe
