#include "search/partitioned.h"

#include <algorithm>

#include "align/smith_waterman.h"
#include "util/timer.h"

namespace cafe {

Result<SearchResult> PartitionedSearch::Search(std::string_view query,
                                               const SearchOptions& options) {
  CAFE_RETURN_IF_ERROR(options.scoring.Validate());
  if (query.size() < static_cast<size_t>(index_->options().interval_length)) {
    return Status::InvalidArgument(
        "query shorter than the index interval length");
  }

  WallTimer total;
  SearchResult result;

  // Coarse phase: rank by interval evidence, keep the fine-search budget.
  std::vector<CoarseCandidate> candidates = ranker_.Rank(
      query, options.coarse_mode, options.fine_candidates,
      options.frame_width, &result.stats);

  // Fine phase: local alignment on the candidates only.
  WallTimer fine;
  Aligner aligner(options.scoring);
  TopHits top(options.max_results);
  std::string seq;
  for (const CoarseCandidate& cand : candidates) {
    CAFE_RETURN_IF_ERROR(collection_->GetSequence(cand.doc, &seq));
    int score;
    if (cand.has_diagonal) {
      score = aligner.BandedScore(query, seq, cand.diagonal, options.band);
    } else {
      score = aligner.ScoreOnly(query, seq);
    }
    ++result.stats.candidates_aligned;
    if (score < options.min_score) continue;
    SearchHit hit;
    hit.seq_id = cand.doc;
    hit.score = score;
    hit.coarse_score = cand.score;
    top.Add(std::move(hit));
  }
  result.hits = top.Take();

  if (options.rescore_full) {
    // Remove band clipping from the reported scores: one full DP per
    // reported hit (cheap — max_results sequences, not the collection).
    for (SearchHit& hit : result.hits) {
      CAFE_RETURN_IF_ERROR(collection_->GetSequence(hit.seq_id, &seq));
      hit.score = aligner.ScoreOnly(query, seq);
    }
    std::sort(result.hits.begin(), result.hits.end(),
              [](const SearchHit& a, const SearchHit& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.seq_id < b.seq_id;
              });
  }

  if (options.traceback) {
    for (SearchHit& hit : result.hits) {
      CAFE_RETURN_IF_ERROR(collection_->GetSequence(hit.seq_id, &seq));
      // Re-derive the candidate diagonal for a banded traceback; fall
      // back to the full matrix when the coarse phase had no positions.
      const CoarseCandidate* cand = nullptr;
      for (const CoarseCandidate& c : candidates) {
        if (c.doc == hit.seq_id) {
          cand = &c;
          break;
        }
      }
      if (cand != nullptr && cand->has_diagonal) {
        Result<LocalAlignment> aln =
            aligner.BandedAlign(query, seq, cand->diagonal, options.band);
        if (!aln.ok()) return aln.status();
        hit.alignment = std::move(*aln);
      } else {
        Result<LocalAlignment> aln = aligner.Align(query, seq);
        if (!aln.ok()) return aln.status();
        hit.alignment = std::move(*aln);
      }
    }
  }

  result.stats.cells_computed += aligner.cells_computed();
  result.stats.fine_seconds += fine.Seconds();
  result.stats.total_seconds += total.Seconds();
  if (options.statistics.has_value()) {
    AnnotateStatistics(&result, query.size(), collection_->TotalBases(),
                       *options.statistics);
  }
  return result;
}

}  // namespace cafe
