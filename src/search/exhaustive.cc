#include "search/exhaustive.h"

#include "align/smith_waterman.h"
#include "util/timer.h"

namespace cafe {

Result<SearchResult> ExhaustiveSearch::Search(std::string_view query,
                                              const SearchOptions& options) {
  CAFE_RETURN_IF_ERROR(options.Validate());
  if (query.empty()) {
    return Status::InvalidArgument("empty query");
  }

  WallTimer total;
  obs::SearchTrace* trace = options.trace;
  obs::TraceSpan total_span(trace != nullptr ? &trace->total_micros
                                             : nullptr);
  obs::TraceSpan fine_span(trace != nullptr ? &trace->fine_micros
                                            : nullptr);
  obs::Span search_span(options.spans, "search");
  if (trace != nullptr) ++trace->queries;
  SearchResult result;
  Aligner aligner(options.scoring);
  TopHits top(options.max_results);
  std::string seq;
  const uint32_t num_docs = collection_->NumSequences();
  for (uint32_t doc = 0; doc < num_docs; ++doc) {
    CAFE_RETURN_IF_ERROR(collection_->GetSequence(doc, &seq));
    int score = aligner.ScoreOnly(query, seq);
    ++result.stats.candidates_aligned;
    if (score < options.min_score) continue;
    SearchHit hit;
    hit.seq_id = doc;
    hit.score = score;
    top.Add(std::move(hit));
  }
  result.hits = top.Take();

  if (options.traceback) {
    for (SearchHit& hit : result.hits) {
      CAFE_RETURN_IF_ERROR(collection_->GetSequence(hit.seq_id, &seq));
      Result<LocalAlignment> aln = aligner.Align(query, seq);
      if (!aln.ok()) return aln.status();
      hit.alignment = std::move(*aln);
    }
  }

  result.stats.candidates_ranked = num_docs;
  result.stats.cells_computed = aligner.cells_computed();
  result.stats.fine_seconds = total.Seconds();
  result.stats.total_seconds = result.stats.fine_seconds;
  if (trace != nullptr) {
    // No coarse phase: every sequence is a kept candidate.
    trace->candidates_ranked += num_docs;
    trace->candidates_kept += num_docs;
    trace->candidates_aligned += result.stats.candidates_aligned;
    trace->cells_computed += result.stats.cells_computed;
    trace->hits_reported += result.hits.size();
  }
  if (options.statistics.has_value()) {
    AnnotateStatistics(&result, query.size(), collection_->TotalBases(),
                       *options.statistics);
  }
  return result;
}

}  // namespace cafe
