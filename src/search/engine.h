// Common search-engine interface, options, results and statistics.
//
// Every engine answers the same question — "which sequences in the
// collection have a high-quality local alignment with this query?" — so
// the partitioned (indexed) engine and the exhaustive baselines are
// interchangeable behind SearchEngine, which is what the effectiveness
// and timing experiments exploit.

#ifndef CAFE_SEARCH_ENGINE_H_
#define CAFE_SEARCH_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "align/alignment.h"
#include "align/scoring.h"
#include "align/statistics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/status.h"

namespace cafe {

/// Which strand of the query a hit was found on.
enum class Strand : uint8_t {
  kForward,
  kReverse,  // the hit matches the reverse complement of the query
};

/// How the coarse phase ranks candidate sequences.
enum class CoarseRankMode {
  /// Bag-of-intervals: count matching intervals per sequence.
  kHitCount,
  /// Frame/diagonal evidence: count interval hits that agree on an
  /// alignment diagonal (requires a positional index); far more selective
  /// for gapped-but-collinear homology.
  kDiagonal,
};

/// Whether the chaining middle stage (search/chain.h) runs between the
/// coarse ranking and the fine alignment phase.
enum class ChainMode : uint8_t {
  /// No chaining: every coarse candidate is fine-aligned (the classic
  /// two-phase pipeline).
  kOff,
  /// Diagonal-filter + collinear chaining: only candidates whose seed
  /// matches form a collinear chain of at least min_chain_score seeds
  /// reach the fine phase. Requires a positional index; silently falls
  /// back to kOff when positions are unavailable.
  kFilter,
};

/// Parses "off" | "filter"; InvalidArgument otherwise.
[[nodiscard]] Result<ChainMode> ParseChainMode(const std::string& name);

const char* ChainModeName(ChainMode mode);

struct SearchOptions {
  /// Number of hits to report.
  uint32_t max_results = 20;

  /// Partitioned search only: how many coarse candidates receive fine
  /// (alignment) scoring. The accuracy/time dial of experiment E4.
  uint32_t fine_candidates = 100;

  /// Half-width of the banded fine alignment around the coarse diagonal.
  int band = 48;

  /// Width of a coarse diagonal frame (positions); hits whose diagonals
  /// fall in the same or adjacent frames are combined.
  uint32_t frame_width = 16;

  CoarseRankMode coarse_mode = CoarseRankMode::kDiagonal;

  /// Partitioned search only: run the chaining middle stage between the
  /// coarse and fine phases (see ChainMode).
  ChainMode chain_mode = ChainMode::kOff;

  /// Minimum collinear chain length (in seed anchors) a candidate needs
  /// to survive the chaining stage. Ignored when chain_mode is kOff.
  uint32_t min_chain_score = 2;

  /// Expected seed extraction pattern of the index ('1'/'0', see
  /// alphabet/spaced_seed.h). Empty accepts whatever the index was
  /// built with; non-empty makes partitioned search fail with
  /// InvalidArgument when the index's pattern differs — a guard for
  /// callers that baked assumptions about seed shape into their
  /// queries. The all-ones pattern matches a contiguous-interval index
  /// of the same length.
  std::string seed_pattern;

  /// Populate LocalAlignment (with traceback) for reported hits.
  bool traceback = false;

  /// Hits scoring below this are not reported.
  int min_score = 1;

  /// Partitioned search only: re-score the reported hits with full
  /// (unbanded) Smith-Waterman after banded candidate scoring, so
  /// reported scores are never clipped by the band. Costs one full DP
  /// per reported hit.
  bool rescore_full = false;

  /// When set, SearchWithStrands also evaluates the reverse complement
  /// of the query and merges hits from both strands.
  bool search_both_strands = false;

  /// When present, hits are annotated with bit scores and E-values
  /// (against the collection's total base count). Obtain parameters from
  /// align/statistics.h (UngappedLambda / CalibrateGumbel).
  std::optional<GumbelParams> statistics;

  /// Worker threads for the parallel execution layer: the fine phase of
  /// partitioned search and concurrent queries in BatchSearch. 1 runs
  /// the sequential reference path (no thread pool is created); 0 means
  /// one worker per hardware thread. Results are identical at every
  /// setting — parallelism only changes wall time.
  uint32_t threads = 1;

  /// Observability hook: when non-null, the engine accumulates the
  /// per-stage pruning funnel and phase timings of every Search() call
  /// into this trace (+=, never overwritten, so strand passes and
  /// sequential batches compose). The pointer must stay valid for the
  /// duration of the call and is written from the calling thread only;
  /// BatchSearch gives each concurrent query a private trace and merges
  /// them in input order, so counters stay deterministic at any thread
  /// count. Null (the default) costs one branch per guarded site.
  obs::SearchTrace* trace = nullptr;

  /// When non-null, the engine records named wall-clock spans (coarse
  /// scan, chaining, per-partition fine workers, merge, post) into this
  /// recorder — the per-request timeline behind /tracez and
  /// `cafe_cli --trace-out`. Written from the calling thread and, for
  /// worker spans, from fine-phase pool threads (SpanRecorder is
  /// lock-free; see obs/span.h for the contract). The pointer must stay
  /// valid for the duration of the call. Null (the default — the
  /// unsampled case) costs one branch per guarded site, gated by
  /// bench_micro_obs.
  obs::SpanRecorder* spans = nullptr;

  /// When non-null, the engine polls this deadline at phase boundaries
  /// (and, in the partitioned fine phase, between candidates) and stops
  /// early: the call still succeeds, but the result carries whatever
  /// hits were complete when the deadline fired and
  /// SearchResult::truncated is set. The pointer must stay valid for
  /// the duration of the call. Engines without deadline support simply
  /// run to completion. Which hits survive a truncation is timing-
  /// dependent — determinism holds only for untruncated results.
  const Deadline* deadline = nullptr;

  ScoringScheme scoring;

  /// Checks every request-derived knob (including the scoring scheme)
  /// and returns InvalidArgument instead of aborting, so wire-facing
  /// entry points can reject bad requests gracefully. Every engine's
  /// Search() calls this first.
  [[nodiscard]] Status Validate() const;
};

struct SearchHit {
  uint32_t seq_id = 0;
  /// Fine (local alignment) score.
  int score = 0;
  /// Coarse-phase evidence (0 when the engine has no coarse phase).
  double coarse_score = 0.0;
  /// Strand of the query this hit matches (always kForward unless
  /// searched via SearchWithStrands with search_both_strands set). For
  /// reverse hits, alignment coordinates refer to the reverse complement
  /// of the query.
  Strand strand = Strand::kForward;
  /// Normalized score and expectation; populated when
  /// SearchOptions::statistics is set (otherwise 0 and -1).
  double bit_score = 0.0;
  double evalue = -1.0;
  /// Populated when SearchOptions::traceback is set.
  LocalAlignment alignment;
};

struct SearchStats {
  double coarse_seconds = 0.0;
  double fine_seconds = 0.0;
  double total_seconds = 0.0;
  /// Sequences with non-zero coarse evidence.
  uint64_t candidates_ranked = 0;
  /// Sequences that received fine (DP) scoring.
  uint64_t candidates_aligned = 0;
  /// DP cells computed by the aligner.
  uint64_t cells_computed = 0;
  /// Postings entries decoded from the index.
  uint64_t postings_decoded = 0;

  void Accumulate(const SearchStats& other);
};

struct SearchResult {
  std::vector<SearchHit> hits;  // sorted by descending score
  SearchStats stats;
  /// True when SearchOptions::deadline expired before the search
  /// finished: `hits` is a partial (possibly empty) answer.
  bool truncated = false;
};

class SearchEngine {
 public:
  virtual ~SearchEngine() = default;

  virtual std::string name() const = 0;

  /// Finds the best-aligning sequences for `query` (normalized IUPAC).
  virtual Result<SearchResult> Search(std::string_view query,
                                      const SearchOptions& options) = 0;

  /// True when concurrent Search() calls on this instance are safe —
  /// i.e. Search touches only per-call state and thread-safe const
  /// methods of the collection/index. Engines that keep per-engine
  /// mutable scratch must return false; BatchSearch then falls back to
  /// evaluating queries one at a time.
  virtual bool SupportsConcurrentSearch() const { return false; }

  /// Evaluates a batch of independent queries — the heavy-traffic
  /// serving shape. Results arrive in input order and each equals what
  /// SearchWithStrands(this, query, options) returns (both strands are
  /// searched when options.search_both_strands is set). With
  /// options.threads > 1 and SupportsConcurrentSearch(), queries are
  /// evaluated concurrently, each internally sequential; otherwise the
  /// batch runs one query at a time, passing options.threads through so
  /// engines with an internal parallel phase still use it. Fails with
  /// the first (lowest-index) query error.
  Result<std::vector<SearchResult>> BatchSearch(
      const std::vector<std::string>& queries,
      const SearchOptions& options);

  /// BatchSearch that also returns one SearchTrace per query (in input
  /// order; `traces` is resized to queries.size()). Per-query traces are
  /// recorded into private structs even when queries run concurrently,
  /// then options.trace (if set) additionally receives their merge in
  /// input order — so batch totals are identical at every thread count.
  ///
  /// `deadlines`, when non-null, must hold one Deadline per query; query
  /// i runs with options.deadline pointing at (*deadlines)[i] (the
  /// serving layer's per-request deadlines, which differ within one
  /// coalesced batch). Null keeps options.deadline for every query.
  ///
  /// `spans`, when non-null, must hold one SpanRecorder pointer per
  /// query (null entries allowed — only sampled requests in a coalesced
  /// batch carry a recorder); query i runs with options.spans pointing
  /// at (*spans)[i]. Null keeps options.spans for every query.
  Result<std::vector<SearchResult>> BatchSearchTraced(
      const std::vector<std::string>& queries, const SearchOptions& options,
      std::vector<obs::SearchTrace>* traces,
      const std::vector<Deadline>* deadlines = nullptr,
      const std::vector<obs::SpanRecorder*>* spans = nullptr);
};

/// Evaluates the query through `engine`, and — when
/// options.search_both_strands is set — also its reverse complement,
/// merging both strands' hits into one ranking of options.max_results.
/// Statistics from both passes are accumulated.
Result<SearchResult> SearchWithStrands(SearchEngine* engine,
                                       std::string_view query,
                                       const SearchOptions& options);

/// Annotates every hit with bit score and E-value under `params`,
/// using the classic Karlin-Altschul relations
///   bits = (lambda * S - ln K) / ln 2
///   E    = K * m * n * exp(-lambda * S).
void AnnotateStatistics(SearchResult* result, uint64_t query_length,
                        uint64_t database_bases, const GumbelParams& params);

/// Keeps the `limit` highest-scoring hits; ties broken by lower seq_id.
class TopHits {
 public:
  explicit TopHits(uint32_t limit) : limit_(limit) {}

  void Add(SearchHit hit);

  /// Lowest score currently retained (INT_MIN until full).
  int Floor() const;

  /// Extracts hits in descending score order.
  std::vector<SearchHit> Take();

  size_t size() const { return heap_.size(); }

 private:
  uint32_t limit_;
  std::vector<SearchHit> heap_;  // min-heap on (score, -seq_id)
};

}  // namespace cafe

#endif  // CAFE_SEARCH_ENGINE_H_
