#include "search/chain.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <unordered_map>

#include "index/inverted_index.h"
#include "index/seed_extract.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace cafe {
namespace {

std::atomic<obs::Counter*> g_invocations{nullptr};
std::atomic<obs::Counter*> g_anchors{nullptr};
std::atomic<obs::Counter*> g_kept{nullptr};
std::atomic<obs::Counter*> g_dropped{nullptr};

/// A seed match between the query and one candidate sequence.
struct Anchor {
  uint32_t qpos;
  uint32_t spos;
};

// Length of the longest collinear chain: anchors usable one after
// another with strictly increasing query AND subject positions.
// Classic reduction to longest-strictly-increasing-subsequence: after
// sorting by (qpos asc, spos desc), a strictly increasing subsequence
// of spos can never take two anchors with equal qpos, so patience
// tails with lower_bound give the answer in O(m log m).
uint32_t LongestChain(std::vector<Anchor>* anchors) {
  std::sort(anchors->begin(), anchors->end(),
            [](const Anchor& a, const Anchor& b) {
              if (a.qpos != b.qpos) return a.qpos < b.qpos;
              return a.spos > b.spos;
            });
  std::vector<uint32_t> tails;
  for (const Anchor& a : *anchors) {
    auto it = std::lower_bound(tails.begin(), tails.end(), a.spos);
    if (it == tails.end()) {
      tails.push_back(a.spos);
    } else {
      *it = a.spos;
    }
  }
  return static_cast<uint32_t>(tails.size());
}

ChainOutcome Passthrough(std::vector<CoarseCandidate> candidates, int band) {
  ChainOutcome out;
  out.kept = std::move(candidates);
  out.band_hints.assign(out.kept.size(), band);
  return out;
}

}  // namespace

ChainOutcome ChainCandidates(std::string_view query,
                             std::vector<CoarseCandidate> candidates,
                             const PostingSource& index,
                             const SearchOptions& options,
                             obs::SearchTrace* trace) {
  const IndexOptions& iopt = index.options();
  if (options.chain_mode != ChainMode::kFilter || candidates.empty() ||
      iopt.granularity != IndexGranularity::kPositional) {
    return Passthrough(std::move(candidates), options.band);
  }
  Result<SeedExtractor> extractor =
      SeedExtractor::Create(iopt.interval_length, iopt.spaced_seed);
  if (!extractor.ok()) {
    // A loaded index has validated options; unreachable in practice.
    return Passthrough(std::move(candidates), options.band);
  }
  obs::TraceSpan span(trace != nullptr ? &trace->chain_micros : nullptr);
  obs::Span chain_span(options.spans, "chain.filter");

  // Query term -> positions, with the index's own extraction plan (the
  // query side always extracts at stride 1, like the coarse phase).
  std::unordered_map<uint32_t, std::vector<uint32_t>> terms;
  extractor->ForEach(query, /*stride=*/1,
                     [&](uint32_t pos, uint32_t term) {
                       terms[term].push_back(pos);
                     });

  // Anchor gathering, restricted to the coarse candidate set: one more
  // pass over the query's postings lists, but only (doc, pos) pairs of
  // surviving candidates are materialized.
  std::unordered_map<uint32_t, uint32_t> slot_of;
  slot_of.reserve(candidates.size() * 2);
  for (uint32_t i = 0; i < candidates.size(); ++i) {
    slot_of.emplace(candidates[i].doc, i);
  }
  std::vector<std::vector<Anchor>> anchors(candidates.size());
  for (const auto& [term, qpositions] : terms) {
    const std::vector<uint32_t>& qpos_list = qpositions;
    index.ScanPostings(
        term, [&](uint32_t doc, uint32_t /*tf*/, const uint32_t* positions,
                  uint32_t npos) {
          auto it = slot_of.find(doc);
          if (it == slot_of.end()) return;
          std::vector<Anchor>& a = anchors[it->second];
          for (uint32_t pi = 0; pi < npos; ++pi) {
            for (uint32_t qpos : qpos_list) {
              a.push_back(Anchor{qpos, positions[pi]});
            }
          }
        });
  }

  const int64_t qlen = static_cast<int64_t>(query.size());
  const uint32_t frame_width =
      options.frame_width == 0 ? 16 : options.frame_width;
  ChainOutcome out;
  out.kept.reserve(candidates.size());
  uint64_t total_anchors = 0;
  std::vector<Anchor> filtered;
  for (size_t i = 0; i < candidates.size(); ++i) {
    std::vector<Anchor>& a = anchors[i];
    total_anchors += a.size();
    uint32_t chain_len = 0;
    int hint = options.band;
    if (!a.empty()) {
      // Diagonal filter: bucket anchors into frames of the diagonal
      // range (mirroring the coarse ranker's geometry) and keep only
      // the best combined (frame, frame+1) window. Ordered map =>
      // deterministic smallest-frame tie-break.
      std::map<uint64_t, uint32_t> frames;
      auto frame_of = [&](const Anchor& an) {
        int64_t diag =
            static_cast<int64_t>(an.spos) - static_cast<int64_t>(an.qpos);
        return static_cast<uint64_t>(diag + qlen) / frame_width;
      };
      for (const Anchor& an : a) ++frames[frame_of(an)];
      uint64_t best_frame = 0;
      uint32_t best_count = 0;
      for (const auto& [frame, count] : frames) {
        auto right = frames.find(frame + 1);
        uint32_t combined =
            count + (right == frames.end() ? 0 : right->second);
        if (combined > best_count) {
          best_count = combined;
          best_frame = frame;
        }
      }
      filtered.clear();
      for (const Anchor& an : a) {
        uint64_t frame = frame_of(an);
        if (frame == best_frame || frame == best_frame + 1) {
          filtered.push_back(an);
        }
      }
      chain_len = LongestChain(&filtered);

      // Band hint: half-width covering the filtered diagonal window
      // (plus the seed's own span) around the candidate's diagonal.
      const int64_t lo =
          static_cast<int64_t>(best_frame) * frame_width - qlen;
      const int64_t hi =
          static_cast<int64_t>(best_frame + 2) * frame_width - qlen +
          extractor->window();
      const int64_t center =
          candidates[i].has_diagonal ? candidates[i].diagonal : (lo + hi) / 2;
      const int64_t spread = std::max(center - lo, hi - center);
      hint = static_cast<int>(std::max<int64_t>(options.band, spread));
    }
    if (chain_len >= options.min_chain_score) {
      out.kept.push_back(candidates[i]);
      out.band_hints.push_back(hint);
    }
  }

  const uint64_t dropped = candidates.size() - out.kept.size();
  if (trace != nullptr) {
    trace->chain_candidates_in += candidates.size();
    trace->chain_anchors += total_anchors;
    trace->chain_candidates_kept += out.kept.size();
    trace->chain_candidates_dropped += dropped;
  }
  internal::RecordChain(total_anchors, out.kept.size(), dropped);
  return out;
}

void AttachChainMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    g_invocations.store(nullptr, std::memory_order_release);
    g_anchors.store(nullptr, std::memory_order_release);
    g_kept.store(nullptr, std::memory_order_release);
    g_dropped.store(nullptr, std::memory_order_release);
    return;
  }
  g_invocations.store(registry->GetCounter("chain.invocations"),
                      std::memory_order_release);
  g_anchors.store(registry->GetCounter("chain.anchors"),
                  std::memory_order_release);
  g_kept.store(registry->GetCounter("chain.candidates_kept"),
               std::memory_order_release);
  g_dropped.store(registry->GetCounter("chain.candidates_dropped"),
                  std::memory_order_release);
}

namespace internal {

void RecordChain(uint64_t anchors, uint64_t kept, uint64_t dropped) {
  obs::Counter* invocations = g_invocations.load(std::memory_order_acquire);
  if (invocations == nullptr) return;
  invocations->Increment();
  if (anchors != 0) {
    g_anchors.load(std::memory_order_acquire)->Add(anchors);
  }
  if (kept != 0) {
    g_kept.load(std::memory_order_acquire)->Add(kept);
  }
  if (dropped != 0) {
    g_dropped.load(std::memory_order_acquire)->Add(dropped);
  }
}

}  // namespace internal

}  // namespace cafe
