// BlastLikeSearch — a scan-based seed-and-extend baseline in the style of
// BLAST 1 (Altschul et al., 1990): hash the query's words, scan every
// collection sequence for word hits, extend hits ungapped with an X-drop,
// and run a banded gapped alignment where the ungapped segment is strong.
// No index: the whole collection is read on every query, which is exactly
// the cost profile the paper's partitioned approach removes.

#ifndef CAFE_SEARCH_BLAST_LIKE_H_
#define CAFE_SEARCH_BLAST_LIKE_H_

#include "collection/collection.h"
#include "search/engine.h"

namespace cafe {

struct BlastLikeParams {
  /// Word (seed) length; BLASTN's classic default is 11.
  int seed_length = 11;
  /// X-drop threshold for ungapped extension, in score units.
  int xdrop = 20;
  /// Ungapped score that triggers a gapped (banded) alignment.
  int gapped_trigger = 40;
};

class BlastLikeSearch final : public SearchEngine {
 public:
  explicit BlastLikeSearch(const SequenceCollection* collection,
                           const BlastLikeParams& params = BlastLikeParams())
      : collection_(collection), params_(params) {}

  std::string name() const override { return "blast-like"; }

  Result<SearchResult> Search(std::string_view query,
                              const SearchOptions& options) override;

  /// Stateless apart from the collection pointer and fixed params;
  /// concurrent queries are safe.
  bool SupportsConcurrentSearch() const override { return true; }

 private:
  const SequenceCollection* collection_;
  BlastLikeParams params_;
};

}  // namespace cafe

#endif  // CAFE_SEARCH_BLAST_LIKE_H_
