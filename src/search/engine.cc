#include "search/engine.h"

#include <algorithm>
#include <climits>
#include <cmath>

#include "alphabet/nucleotide.h"
#include "alphabet/spaced_seed.h"
#include "util/thread_pool.h"

namespace cafe {
namespace {

// Min-heap comparator: the *worst* hit sits at the front. A hit is worse
// when its score is lower, or equal-scored with a higher seq_id (so ties
// prefer keeping lower ids, matching a stable full sort).
bool WorseFirst(const SearchHit& a, const SearchHit& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.seq_id < b.seq_id;
}

}  // namespace

Result<ChainMode> ParseChainMode(const std::string& name) {
  if (name == "off") return ChainMode::kOff;
  if (name == "filter") return ChainMode::kFilter;
  return Status::InvalidArgument("unknown chain mode '" + name +
                                 "' (expected off|filter)");
}

const char* ChainModeName(ChainMode mode) {
  switch (mode) {
    case ChainMode::kOff:
      return "off";
    case ChainMode::kFilter:
      return "filter";
  }
  return "unknown";
}

Status SearchOptions::Validate() const {
  CAFE_RETURN_IF_ERROR(scoring.Validate());
  if (max_results == 0) {
    return Status::InvalidArgument("max_results must be >= 1");
  }
  if (band < 0) {
    return Status::InvalidArgument("band must be >= 0");
  }
  if (frame_width == 0) {
    return Status::InvalidArgument("frame_width must be >= 1");
  }
  if (chain_mode != ChainMode::kOff && min_chain_score == 0) {
    return Status::InvalidArgument("min_chain_score must be >= 1");
  }
  if (!seed_pattern.empty()) {
    Result<SpacedSeed> seed = SpacedSeed::Parse(seed_pattern);
    if (!seed.ok()) return seed.status();
  }
  return Status::OK();
}

void SearchStats::Accumulate(const SearchStats& other) {
  coarse_seconds += other.coarse_seconds;
  fine_seconds += other.fine_seconds;
  total_seconds += other.total_seconds;
  candidates_ranked += other.candidates_ranked;
  candidates_aligned += other.candidates_aligned;
  cells_computed += other.cells_computed;
  postings_decoded += other.postings_decoded;
}

void TopHits::Add(SearchHit hit) {
  if (limit_ == 0) return;
  if (heap_.size() < limit_) {
    heap_.push_back(std::move(hit));
    std::push_heap(heap_.begin(), heap_.end(), WorseFirst);
    return;
  }
  const SearchHit& worst = heap_.front();
  if (hit.score < worst.score ||
      (hit.score == worst.score && hit.seq_id > worst.seq_id)) {
    return;
  }
  std::pop_heap(heap_.begin(), heap_.end(), WorseFirst);
  heap_.back() = std::move(hit);
  std::push_heap(heap_.begin(), heap_.end(), WorseFirst);
}

int TopHits::Floor() const {
  if (heap_.size() < limit_ || heap_.empty()) return INT_MIN;
  return heap_.front().score;
}

Result<std::vector<SearchResult>> SearchEngine::BatchSearch(
    const std::vector<std::string>& queries, const SearchOptions& options) {
  return BatchSearchTraced(queries, options, nullptr);
}

Result<std::vector<SearchResult>> SearchEngine::BatchSearchTraced(
    const std::vector<std::string>& queries, const SearchOptions& options,
    std::vector<obs::SearchTrace>* traces,
    const std::vector<Deadline>* deadlines,
    const std::vector<obs::SpanRecorder*>* spans) {
  if (deadlines != nullptr && deadlines->size() != queries.size()) {
    return Status::InvalidArgument(
        "BatchSearchTraced: deadlines must match queries in size");
  }
  if (spans != nullptr && spans->size() != queries.size()) {
    return Status::InvalidArgument(
        "BatchSearchTraced: spans must match queries in size");
  }
  std::vector<SearchResult> results(queries.size());
  // Each query records into its own slot so concurrent queries never
  // share a trace; options.trace receives the input-order merge at the
  // end, making batch totals independent of the thread count.
  std::vector<obs::SearchTrace> local_traces;
  obs::SearchTrace* caller_trace = options.trace;
  const bool tracing = traces != nullptr || caller_trace != nullptr;
  std::vector<obs::SearchTrace>* slots =
      traces != nullptr ? traces : &local_traces;
  if (tracing) slots->assign(queries.size(), obs::SearchTrace{});

  const uint32_t requested = options.threads == 0
                                 ? ThreadPool::HardwareThreads()
                                 : options.threads;
  const bool concurrent = requested > 1 && queries.size() > 1 &&
                          SupportsConcurrentSearch();
  if (!concurrent) {
    SearchOptions per_query = options;
    for (size_t i = 0; i < queries.size(); ++i) {
      per_query.trace = tracing ? &(*slots)[i] : nullptr;
      if (deadlines != nullptr) per_query.deadline = &(*deadlines)[i];
      if (spans != nullptr) per_query.spans = (*spans)[i];
      Result<SearchResult> r =
          SearchWithStrands(this, queries[i], per_query);
      if (!r.ok()) return r.status();
      results[i] = std::move(*r);
    }
  } else {
    // One worker per query slot, each query internally sequential so the
    // pool is never entered recursively. Per-query results are the same
    // objects the sequential loop would produce, so the batch is
    // deterministic under any thread count.
    SearchOptions per_query = options;
    per_query.threads = 1;
    per_query.trace = nullptr;
    const size_t workers = std::min<size_t>(requested, queries.size());
    std::vector<Status> errors(queries.size(), Status::OK());
    ThreadPool pool(static_cast<unsigned>(workers));
    pool.ParallelFor(queries.size(), [&](size_t i, unsigned /*worker*/) {
      SearchOptions query_options = per_query;
      query_options.trace = tracing ? &(*slots)[i] : nullptr;
      if (deadlines != nullptr) query_options.deadline = &(*deadlines)[i];
      if (spans != nullptr) query_options.spans = (*spans)[i];
      Result<SearchResult> r =
          SearchWithStrands(this, queries[i], query_options);
      if (r.ok()) {
        results[i] = std::move(*r);
      } else {
        errors[i] = r.status();
      }
    });
    for (const Status& s : errors) {
      if (!s.ok()) return s;
    }
  }
  if (caller_trace != nullptr) {
    for (const obs::SearchTrace& t : *slots) caller_trace->Merge(t);
  }
  return results;
}

Result<SearchResult> SearchWithStrands(SearchEngine* engine,
                                       std::string_view query,
                                       const SearchOptions& options) {
  Result<SearchResult> forward = engine->Search(query, options);
  if (!forward.ok() || !options.search_both_strands) return forward;

  std::string rc = ReverseComplement(query);
  Result<SearchResult> reverse = engine->Search(rc, options);
  if (!reverse.ok()) return reverse.status();

  SearchResult merged;
  TopHits top(options.max_results);
  for (SearchHit& hit : forward->hits) {
    hit.strand = Strand::kForward;
    top.Add(std::move(hit));
  }
  for (SearchHit& hit : reverse->hits) {
    hit.strand = Strand::kReverse;
    top.Add(std::move(hit));
  }
  merged.hits = top.Take();
  merged.stats = forward->stats;
  merged.stats.Accumulate(reverse->stats);
  merged.truncated = forward->truncated || reverse->truncated;
  return merged;
}

void AnnotateStatistics(SearchResult* result, uint64_t query_length,
                        uint64_t database_bases,
                        const GumbelParams& params) {
  if (params.lambda <= 0 || params.k <= 0) return;
  const double ln2 = 0.6931471805599453;
  const double mn = static_cast<double>(query_length) *
                    static_cast<double>(database_bases);
  for (SearchHit& hit : result->hits) {
    hit.bit_score =
        (params.lambda * hit.score - std::log(params.k)) / ln2;
    hit.evalue = params.k * mn * std::exp(-params.lambda * hit.score);
  }
}

std::vector<SearchHit> TopHits::Take() {
  std::vector<SearchHit> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), [](const SearchHit& a,
                                       const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.seq_id < b.seq_id;
  });
  return out;
}

}  // namespace cafe
