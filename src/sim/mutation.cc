#include "sim/mutation.h"

#include "alphabet/nucleotide.h"

namespace cafe::sim {

Status MutationModel::Validate() const {
  if (substitution_rate < 0 || substitution_rate > 1 || insertion_rate < 0 ||
      insertion_rate > 1 || deletion_rate < 0 || deletion_rate > 1) {
    return Status::InvalidArgument("mutation rates must be in [0, 1]");
  }
  if (indel_extension < 0 || indel_extension >= 1) {
    return Status::InvalidArgument("indel_extension must be in [0, 1)");
  }
  return Status::OK();
}

MutationModel MutationModel::ForDivergence(double divergence) {
  MutationModel m;
  m.substitution_rate = divergence * 0.8;
  // Indels are rarer but multi-base; with extension p the mean length is
  // 1/(1-p), so scale the start rate down accordingly.
  double indel_budget = divergence * 0.2;
  double mean_len = 1.0 / (1.0 - m.indel_extension);
  m.insertion_rate = indel_budget / 2.0 / mean_len;
  m.deletion_rate = indel_budget / 2.0 / mean_len;
  return m;
}

std::string Mutate(std::string_view seq, const MutationModel& model,
                   Rng* rng) {
  std::string out;
  out.reserve(seq.size() + seq.size() / 8);
  size_t i = 0;
  while (i < seq.size()) {
    // Insertion before this base?
    if (model.insertion_rate > 0 && rng->Bernoulli(model.insertion_rate)) {
      size_t len = 1 + rng->NextGeometric(1.0 - model.indel_extension);
      for (size_t k = 0; k < len; ++k) {
        out.push_back(CodeToBase(static_cast<int>(rng->Uniform(4))));
      }
    }
    // Deletion of a run starting here?
    if (model.deletion_rate > 0 && rng->Bernoulli(model.deletion_rate)) {
      size_t len = 1 + rng->NextGeometric(1.0 - model.indel_extension);
      i += len;
      continue;
    }
    char c = seq[i];
    if (model.substitution_rate > 0 &&
        rng->Bernoulli(model.substitution_rate)) {
      int old_code = BaseToCode(c);
      if (old_code >= 0) {
        // Substitute with one of the three other bases.
        int code = static_cast<int>(rng->Uniform(3));
        if (code >= old_code) ++code;
        c = CodeToBase(code);
      }
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

}  // namespace cafe::sim
