// Synthetic GenBank-like collection generation.
//
// Real GenBank divisions have a log-normal-ish length distribution
// (most records around a kilobase), skewed base composition (AT-rich),
// and a sprinkling of IUPAC wildcards from sequencing ambiguity. The
// generator reproduces those aggregate statistics so index size,
// compression ratio and search cost behave like they would on the real
// collection (DESIGN.md, "Data substitution").

#ifndef CAFE_SIM_GENERATOR_H_
#define CAFE_SIM_GENERATOR_H_

#include <array>
#include <cstdint>
#include <string>

#include "collection/collection.h"
#include "util/random.h"
#include "util/status.h"

namespace cafe::sim {

struct CollectionOptions {
  /// Number of sequences; ignored when target_bases is non-zero.
  uint32_t num_sequences = 1000;

  /// When non-zero, keep generating sequences until the collection holds
  /// at least this many bases (the way the scalability experiment sweeps
  /// database size).
  uint64_t target_bases = 0;

  /// Log-normal length model: median ~ exp(mu). Defaults give a median
  /// around 900 bases with a heavy right tail, GenBank-like.
  double length_mu = 6.8;
  double length_sigma = 0.6;
  uint32_t min_length = 60;
  uint32_t max_length = 50000;

  /// Base composition (A, C, G, T); defaults are mildly AT-rich.
  std::array<double, 4> composition = {0.30, 0.20, 0.20, 0.30};

  /// Per-base probability of an IUPAC wildcard (GenBank-like ~2e-4).
  double wildcard_rate = 0.0002;

  /// Interspersed repeat model: real nucleotide collections are riddled
  /// with repeated elements (Alu-like short interspersed repeats,
  /// poly-A runs), which is where high-frequency intervals — the target
  /// of index stopping — come from. `repeat_fraction` of all bases are
  /// drawn from a small library of `repeat_library_size` shared elements
  /// of length `repeat_length` (lightly mutated per insertion) instead of
  /// from the i.i.d. background.
  double repeat_fraction = 0.0;
  uint32_t repeat_library_size = 4;
  uint32_t repeat_length = 300;
  double repeat_divergence = 0.05;

  uint64_t seed = 42;

  Status Validate() const;
};

class CollectionGenerator {
 public:
  explicit CollectionGenerator(const CollectionOptions& options)
      : options_(options), rng_(options.seed) {}

  /// Generates the full collection.
  Result<SequenceCollection> Generate();

  /// One random sequence of exactly `length` bases under the configured
  /// composition and wildcard rate (no repeat insertion).
  std::string RandomSequence(uint32_t length);

  /// A sequence of approximately `length` bases including repeat-library
  /// insertions per the configured repeat model. Equals RandomSequence
  /// when repeat_fraction is 0.
  std::string RandomSequenceWithRepeats(uint32_t length);

  /// A random length drawn from the configured distribution.
  uint32_t RandomLength();

  Rng* rng() { return &rng_; }
  const CollectionOptions& options() const { return options_; }

 private:
  /// Lazily built shared repeat elements.
  const std::vector<std::string>& RepeatLibrary();

  CollectionOptions options_;
  Rng rng_;
  std::vector<std::string> repeat_library_;
};

}  // namespace cafe::sim

#endif  // CAFE_SIM_GENERATOR_H_
