// Sequence mutation model: point substitutions plus geometric-length
// indels. Used to derive homologous sequences (and noisy queries) at a
// controlled evolutionary divergence, which gives the retrieval
// experiments an exact ground truth — the substitute for GenBank's real
// homologies documented in DESIGN.md.

#ifndef CAFE_SIM_MUTATION_H_
#define CAFE_SIM_MUTATION_H_

#include <string>
#include <string_view>

#include "util/random.h"
#include "util/status.h"

namespace cafe::sim {

struct MutationModel {
  /// Per-base probability of a substitution to a different base.
  double substitution_rate = 0.05;
  /// Per-base probability of starting an insertion before this base.
  double insertion_rate = 0.005;
  /// Per-base probability of deleting this base (and possibly more).
  double deletion_rate = 0.005;
  /// Indel lengths are 1 + Geometric(1 - indel_extension): higher means
  /// longer indels.
  double indel_extension = 0.3;

  Status Validate() const;

  /// A model whose expected per-base divergence (substitutions + indels)
  /// is approximately `divergence`, split 80% substitutions / 20% indels.
  static MutationModel ForDivergence(double divergence);
};

/// Returns a mutated copy of `seq`.
std::string Mutate(std::string_view seq, const MutationModel& model,
                   Rng* rng);

}  // namespace cafe::sim

#endif  // CAFE_SIM_MUTATION_H_
