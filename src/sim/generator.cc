#include "sim/generator.h"

#include <algorithm>
#include <cmath>

#include "alphabet/nucleotide.h"
#include "sim/mutation.h"

namespace cafe::sim {
namespace {

// Wildcards drawn when wildcard_rate fires; N dominates in real data.
constexpr char kWildcards[] = {'N', 'N', 'N', 'N', 'R', 'Y', 'S',
                               'W', 'K', 'M', 'B', 'D', 'H', 'V'};
constexpr size_t kNumWildcards = sizeof(kWildcards);

}  // namespace

Status CollectionOptions::Validate() const {
  if (num_sequences == 0 && target_bases == 0) {
    return Status::InvalidArgument("empty collection requested");
  }
  if (min_length == 0 || max_length < min_length) {
    return Status::InvalidArgument("bad length bounds");
  }
  double total = 0;
  for (double c : composition) {
    if (c < 0) return Status::InvalidArgument("negative composition weight");
    total += c;
  }
  if (total <= 0) {
    return Status::InvalidArgument("composition weights sum to zero");
  }
  if (wildcard_rate < 0 || wildcard_rate > 0.5) {
    return Status::InvalidArgument("wildcard_rate out of range");
  }
  if (repeat_fraction < 0 || repeat_fraction > 0.9) {
    return Status::InvalidArgument("repeat_fraction out of range");
  }
  if (repeat_fraction > 0 &&
      (repeat_library_size == 0 || repeat_length == 0)) {
    return Status::InvalidArgument("empty repeat library requested");
  }
  if (repeat_divergence < 0 || repeat_divergence > 0.5) {
    return Status::InvalidArgument("repeat_divergence out of range");
  }
  return Status::OK();
}

uint32_t CollectionGenerator::RandomLength() {
  double len = rng_.NextLogNormal(options_.length_mu, options_.length_sigma);
  len = std::clamp(len, static_cast<double>(options_.min_length),
                   static_cast<double>(options_.max_length));
  return static_cast<uint32_t>(len);
}

std::string CollectionGenerator::RandomSequence(uint32_t length) {
  // Cumulative composition for inverse sampling.
  double total = options_.composition[0] + options_.composition[1] +
                 options_.composition[2] + options_.composition[3];
  double cum[4];
  double run = 0;
  for (int i = 0; i < 4; ++i) {
    run += options_.composition[i] / total;
    cum[i] = run;
  }

  std::string out(length, 'A');
  for (uint32_t i = 0; i < length; ++i) {
    if (options_.wildcard_rate > 0 &&
        rng_.Bernoulli(options_.wildcard_rate)) {
      out[i] = kWildcards[rng_.Uniform(kNumWildcards)];
      continue;
    }
    double u = rng_.NextDouble();
    int code = 0;
    while (code < 3 && u > cum[code]) ++code;
    out[i] = CodeToBase(code);
  }
  return out;
}

const std::vector<std::string>& CollectionGenerator::RepeatLibrary() {
  if (repeat_library_.empty() && options_.repeat_fraction > 0) {
    for (uint32_t i = 0; i < options_.repeat_library_size; ++i) {
      repeat_library_.push_back(RandomSequence(options_.repeat_length));
    }
  }
  return repeat_library_;
}

std::string CollectionGenerator::RandomSequenceWithRepeats(uint32_t length) {
  if (options_.repeat_fraction <= 0) return RandomSequence(length);
  const std::vector<std::string>& library = RepeatLibrary();
  MutationModel drift = MutationModel::ForDivergence(
      options_.repeat_divergence);
  std::string out;
  out.reserve(length + options_.repeat_length);
  while (out.size() < length) {
    if (rng_.Bernoulli(options_.repeat_fraction)) {
      const std::string& element =
          library[rng_.Uniform(library.size())];
      out += Mutate(element, drift, &rng_);
    } else {
      // Background stretch sized like a repeat element so the repeat
      // fraction of bases tracks repeat_fraction.
      out += RandomSequence(options_.repeat_length);
    }
  }
  out.resize(length);
  return out;
}

Result<SequenceCollection> CollectionGenerator::Generate() {
  CAFE_RETURN_IF_ERROR(options_.Validate());
  SequenceCollection col;
  uint64_t bases = 0;
  uint32_t i = 0;
  while (true) {
    if (options_.target_bases > 0) {
      if (bases >= options_.target_bases) break;
    } else if (i >= options_.num_sequences) {
      break;
    }
    uint32_t len = RandomLength();
    std::string seq = RandomSequenceWithRepeats(len);
    std::string name = "SYN" + std::to_string(i);
    Result<uint32_t> id = col.Add(name, "synthetic GenBank-like record", seq);
    if (!id.ok()) return id.status();
    bases += len;
    ++i;
  }
  return col;
}

}  // namespace cafe::sim
