// Query workloads with planted ground truth.
//
// Each query is derived from an "ancestor" region; a configurable number
// of homologues of that region — at divergences spread over a range — are
// embedded in otherwise-random collection sequences. Retrieval
// effectiveness (experiment E4) is then an exact measurement: the true
// answer set of every query is known by construction, and the exhaustive
// Smith-Waterman engine provides the ranking oracle exactly as the paper
// measures against exhaustive search.

#ifndef CAFE_SIM_WORKLOAD_H_
#define CAFE_SIM_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "sim/generator.h"
#include "sim/mutation.h"

namespace cafe::sim {

struct WorkloadOptions {
  uint32_t num_queries = 20;

  /// Length of the ancestor region each query is cut from.
  uint32_t query_length = 400;

  /// Divergence applied to the query copy of the ancestor (sequencing /
  /// strain noise on the probe itself).
  double query_divergence = 0.02;

  /// Homologues planted per query.
  uint32_t homologs_per_query = 5;

  /// Planted homologue divergences are spread uniformly over
  /// [min_homolog_divergence, max_homolog_divergence].
  double min_homolog_divergence = 0.05;
  double max_homolog_divergence = 0.30;

  uint64_t seed = 4242;

  Status Validate() const;
};

struct PlantedQuery {
  std::string sequence;
  /// Collection ids of the sequences containing a planted homologue,
  /// ordered by increasing divergence (strongest homologue first).
  std::vector<uint32_t> true_positives;
  /// Divergence of each true positive, parallel to true_positives.
  std::vector<double> divergences;
};

struct PlantedWorkload {
  SequenceCollection collection;  // background + planted homologues
  std::vector<PlantedQuery> queries;
};

/// Generates a background collection per `col_options`, then plants
/// homologues and builds the query set per `wl_options`.
Result<PlantedWorkload> BuildPlantedWorkload(
    const CollectionOptions& col_options, const WorkloadOptions& wl_options);

/// Samples `count` query strings by excising regions of `length` from
/// random collection sequences and mutating them at `divergence`
/// (workload for the pure timing experiments, no ground truth needed).
Result<std::vector<std::string>> SampleQueries(
    const SequenceCollection& collection, uint32_t count, uint32_t length,
    double divergence, uint64_t seed);

}  // namespace cafe::sim

#endif  // CAFE_SIM_WORKLOAD_H_
