#include "sim/workload.h"

#include <algorithm>

namespace cafe::sim {

Status WorkloadOptions::Validate() const {
  if (num_queries == 0) {
    return Status::InvalidArgument("num_queries must be positive");
  }
  if (query_length < 20) {
    return Status::InvalidArgument("query_length too short");
  }
  if (query_divergence < 0 || query_divergence > 0.9 ||
      min_homolog_divergence < 0 || max_homolog_divergence > 0.9 ||
      min_homolog_divergence > max_homolog_divergence) {
    return Status::InvalidArgument("bad divergence range");
  }
  return Status::OK();
}

Result<PlantedWorkload> BuildPlantedWorkload(
    const CollectionOptions& col_options,
    const WorkloadOptions& wl_options) {
  CAFE_RETURN_IF_ERROR(wl_options.Validate());
  CollectionGenerator gen(col_options);
  Result<SequenceCollection> background = gen.Generate();
  if (!background.ok()) return background.status();

  PlantedWorkload out;
  out.collection = std::move(*background);
  Rng rng(wl_options.seed);

  for (uint32_t q = 0; q < wl_options.num_queries; ++q) {
    // Ancestor region the query and its homologues descend from.
    std::string ancestor = gen.RandomSequence(wl_options.query_length);

    PlantedQuery query;
    query.sequence = Mutate(
        ancestor, MutationModel::ForDivergence(wl_options.query_divergence),
        &rng);

    // Plant homologues at divergences spread over the configured range,
    // strongest first.
    for (uint32_t h = 0; h < wl_options.homologs_per_query; ++h) {
      double div =
          wl_options.homologs_per_query == 1
              ? wl_options.min_homolog_divergence
              : wl_options.min_homolog_divergence +
                    (wl_options.max_homolog_divergence -
                     wl_options.min_homolog_divergence) *
                        h / (wl_options.homologs_per_query - 1);
      std::string homolog_core =
          Mutate(ancestor, MutationModel::ForDivergence(div), &rng);

      // Embed the homologous region inside a random host sequence.
      uint32_t flank_before =
          static_cast<uint32_t>(rng.Uniform(gen.options().min_length + 200));
      uint32_t flank_after =
          static_cast<uint32_t>(rng.Uniform(gen.options().min_length + 200));
      std::string host = gen.RandomSequence(flank_before) + homolog_core +
                         gen.RandomSequence(flank_after);

      std::string name =
          "HOM_q" + std::to_string(q) + "_h" + std::to_string(h);
      Result<uint32_t> id = out.collection.Add(
          name, "planted homologue div=" + std::to_string(div), host);
      if (!id.ok()) return id.status();
      query.true_positives.push_back(*id);
      query.divergences.push_back(div);
    }
    out.queries.push_back(std::move(query));
  }
  return out;
}

Result<std::vector<std::string>> SampleQueries(
    const SequenceCollection& collection, uint32_t count, uint32_t length,
    double divergence, uint64_t seed) {
  if (collection.NumSequences() == 0) {
    return Status::InvalidArgument("empty collection");
  }
  Rng rng(seed);
  MutationModel model = MutationModel::ForDivergence(divergence);
  std::vector<std::string> queries;
  queries.reserve(count);
  std::string seq;
  uint32_t attempts = 0;
  while (queries.size() < count) {
    if (++attempts > count * 100 + 1000) {
      return Status::Internal(
          "collection has too few sequences of the requested length");
    }
    uint32_t doc =
        static_cast<uint32_t>(rng.Uniform(collection.NumSequences()));
    CAFE_RETURN_IF_ERROR(collection.GetSequence(doc, &seq));
    if (seq.size() < length) continue;
    size_t start = rng.Uniform(seq.size() - length + 1);
    std::string region = seq.substr(start, length);
    queries.push_back(divergence > 0 ? Mutate(region, model, &rng)
                                     : std::move(region));
  }
  return queries;
}

}  // namespace cafe::sim
