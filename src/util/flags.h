// Minimal command-line flag parsing for the tools.
//
// Accepts --name=value and --name value pairs plus bare --name boolean
// flags; everything else is positional. Typed getters record which flags
// the program understands, so Finish() can reject typos instead of
// silently ignoring them.

#ifndef CAFE_UTIL_FLAGS_H_
#define CAFE_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace cafe {

class FlagParser {
 public:
  /// Parses argv[1..argc). A value-less flag stores "true"; `--` ends
  /// flag processing (everything after is positional).
  FlagParser(int argc, const char* const* argv);

  explicit FlagParser(const std::vector<std::string>& args);

  std::string GetString(const std::string& name,
                        const std::string& default_value);
  int64_t GetInt(const std::string& name, int64_t default_value);
  double GetDouble(const std::string& name, double default_value);
  bool GetBool(const std::string& name, bool default_value = false);

  bool Has(const std::string& name) const {
    return values_.count(name) != 0;
  }

  const std::vector<std::string>& positional() const { return positional_; }

  /// Fails if any provided flag was never consumed by a getter, or if a
  /// typed getter saw an unparsable value.
  [[nodiscard]] Status Finish() const;

 private:
  void Parse(const std::vector<std::string>& args);

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::set<std::string> consumed_;
  std::vector<std::string> errors_;
};

}  // namespace cafe

#endif  // CAFE_UTIL_FLAGS_H_
