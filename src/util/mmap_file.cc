#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cafe {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

Result<MmapFile> MmapFile::Open(const std::string& path, bool populate) {
  int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(hicpp-vararg)
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot open", path));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("cannot stat", path));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IOError("not a regular file: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MmapFile(nullptr, 0);
  }
  int flags = MAP_PRIVATE;
#if defined(MAP_POPULATE)
  if (populate) flags |= MAP_POPULATE;
#else
  (void)populate;
#endif
  void* mapped = ::mmap(nullptr, size, PROT_READ, flags, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is
  // no longer needed either way.
  ::close(fd);
  if (mapped == MAP_FAILED) {
    return Status::IOError(ErrnoMessage("cannot mmap", path));
  }
  return MmapFile(static_cast<uint8_t*>(mapped), size);
}

MmapFile::~MmapFile() { Unmap(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Unmap();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MmapFile::Unmap() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

void MmapFile::Advise(Advice advice, size_t offset, size_t length) const {
  if (data_ == nullptr || offset >= size_) return;
  if (length == 0 || offset + length > size_) length = size_ - offset;
  // madvise requires a page-aligned start address.
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t aligned = offset & ~(page - 1);
  length += offset - aligned;
  int flag = MADV_NORMAL;
  switch (advice) {
    case Advice::kNormal:
      flag = MADV_NORMAL;
      break;
    case Advice::kSequential:
      flag = MADV_SEQUENTIAL;
      break;
    case Advice::kRandom:
      flag = MADV_RANDOM;
      break;
    case Advice::kWillNeed:
      flag = MADV_WILLNEED;
      break;
    case Advice::kDontNeed:
      flag = MADV_DONTNEED;
      break;
  }
  // Best-effort hint; ignore failures by contract.
  ::madvise(data_ + aligned, length, flag);
}

}  // namespace cafe
