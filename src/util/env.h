// Filesystem and environment helpers used by the on-disk formats and the
// benchmark harnesses.

#ifndef CAFE_UTIL_ENV_H_
#define CAFE_UTIL_ENV_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace cafe {

/// Reads an entire file into `*out`.
[[nodiscard]] Status ReadFileToString(const std::string& path, std::string* out);

/// Atomically-ish writes `data` to `path` (write then rename is overkill
/// here; this truncates and writes).
[[nodiscard]] Status WriteStringToFile(const std::string& path, const std::string& data);

/// Removes a file; missing files are not an error.
[[nodiscard]] Status RemoveFile(const std::string& path);

bool FileExists(const std::string& path);

/// Integer environment variable with a default (used by the benches so the
/// experiment scale can be adjusted without recompiling).
int64_t GetEnvInt(const char* name, int64_t default_value);

/// Returns a writable temporary directory for tests/benches.
std::string TempDir();

}  // namespace cafe

#endif  // CAFE_UTIL_ENV_H_
