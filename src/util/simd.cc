#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace cafe {
namespace {

// -1 = no override; otherwise the int value of the forced SimdLevel.
std::atomic<int> g_override{-1};

SimdLevel ComputeActiveSimdLevel() {
  SimdLevel level = DetectCpuSimdLevel();
  const char* env = std::getenv("CAFE_SIMD_LEVEL");
  SimdLevel cap;
  if (env != nullptr && ParseSimdLevel(env, &cap) && cap < level) {
    level = cap;
  }
  return level;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool ParseSimdLevel(const char* text, SimdLevel* out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "scalar") == 0) {
    *out = SimdLevel::kScalar;
    return true;
  }
  if (std::strcmp(text, "sse2") == 0) {
    *out = SimdLevel::kSse2;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    *out = SimdLevel::kAvx2;
    return true;
  }
  return false;
}

SimdLevel DetectCpuSimdLevel() {
#if defined(__x86_64__) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
#endif
  return SimdLevel::kScalar;
}

SimdLevel ActiveSimdLevel() {
  int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  static const SimdLevel cached = ComputeActiveSimdLevel();
  return cached;
}

namespace internal {

void SetActiveSimdLevelForTest(SimdLevel level) {
  // Clamp to what this CPU can run so a test forcing avx2 degrades to
  // the widest available kernel instead of SIGILL on older hardware.
  SimdLevel cpu = DetectCpuSimdLevel();
  if (level > cpu) level = cpu;
  g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ResetActiveSimdLevelForTest() {
  g_override.store(-1, std::memory_order_relaxed);
}

}  // namespace internal

}  // namespace cafe
