#include "util/bitio.h"

#include "util/check.h"

namespace cafe {

void BitWriter::FlushAcc() {
  while (acc_bits_ >= 8) {
    buf_.push_back(static_cast<uint8_t>(acc_ >> (acc_bits_ - 8)));
    acc_bits_ -= 8;
  }
  acc_ &= (acc_bits_ == 0) ? 0 : ((uint64_t{1} << acc_bits_) - 1);
}

void BitWriter::WriteBits(uint64_t value, int nbits) {
  CAFE_DCHECK_GE(nbits, 0);
  CAFE_DCHECK_LE(nbits, 64);
  if (nbits == 0) return;
  if (nbits < 64) value &= (uint64_t{1} << nbits) - 1;
  bit_count_ += static_cast<size_t>(nbits);
  // Write in chunks so acc_ never holds more than 63 live bits.
  while (nbits > 56 - acc_bits_) {
    int take = 56 - acc_bits_;
    if (take <= 0) {
      FlushAcc();
      continue;
    }
    acc_ = (acc_ << take) | (value >> (nbits - take));
    acc_bits_ += take;
    nbits -= take;
    if (nbits < 64) value &= (uint64_t{1} << nbits) - 1;
    FlushAcc();
  }
  acc_ = (acc_ << nbits) | value;
  acc_bits_ += nbits;
  FlushAcc();
}

void BitWriter::WriteUnary(uint64_t count) {
  while (count >= 32) {
    WriteBits(0, 32);
    count -= 32;
  }
  // `count` zero bits followed by a one bit.
  WriteBits(1, static_cast<int>(count) + 1);
}

void BitWriter::AlignToByte() {
  int rem = static_cast<int>(bit_count_ % 8);
  if (rem != 0) WriteBits(0, 8 - rem);
}

std::vector<uint8_t> BitWriter::Finish() {
  AlignToByte();
  CAFE_DCHECK_EQ(acc_bits_, 0);
  std::vector<uint8_t> out;
  out.swap(buf_);
  bit_count_ = 0;
  acc_ = 0;
  acc_bits_ = 0;
  return out;
}

void BitWriter::Clear() {
  buf_.clear();
  acc_ = 0;
  acc_bits_ = 0;
  bit_count_ = 0;
}

uint64_t BitReader::ReadBits(int nbits) {
  CAFE_DCHECK_GE(nbits, 0);
  CAFE_DCHECK_LE(nbits, 64);
  if (nbits == 0) return 0;
  if (pos_ + static_cast<size_t>(nbits) > size_bits_) {
    overflowed_ = true;
    pos_ = size_bits_;
    return 0;
  }
  uint64_t out = 0;
  int remaining = nbits;
  while (remaining > 0) {
    size_t byte_index = pos_ >> 3;
    int bit_offset = static_cast<int>(pos_ & 7);
    int avail = 8 - bit_offset;
    int take = remaining < avail ? remaining : avail;
    uint8_t byte = data_[byte_index];
    uint8_t chunk =
        static_cast<uint8_t>(byte >> (avail - take)) &
        static_cast<uint8_t>((1u << take) - 1);
    out = (out << take) | chunk;
    pos_ += static_cast<size_t>(take);
    remaining -= take;
  }
  return out;
}

uint64_t BitReader::ReadUnary() {
  uint64_t count = 0;
  // Scan byte-at-a-time once aligned; bit-at-a-time at the fringes.
  while (true) {
    if (pos_ >= size_bits_) {
      overflowed_ = true;
      return count;
    }
    if ((pos_ & 7) == 0 && size_bits_ - pos_ >= 8) {
      uint8_t byte = data_[pos_ >> 3];
      if (byte == 0) {
        count += 8;
        pos_ += 8;
        continue;
      }
      // Position of the highest set bit, from the MSB side.
      int lead = __builtin_clz(byte) - 24;
      count += static_cast<uint64_t>(lead);
      pos_ += static_cast<size_t>(lead) + 1;
      return count;
    }
    if (ReadBits(1) != 0) return count;
    if (overflowed_) return count;
    ++count;
  }
}

void BitReader::AlignToByte() {
  size_t rem = pos_ % 8;
  if (rem != 0) pos_ += 8 - rem;
  if (pos_ > size_bits_) {
    pos_ = size_bits_;
    overflowed_ = true;
  }
}

void BitReader::SeekToBit(size_t bit) {
  if (bit > size_bits_) {
    pos_ = size_bits_;
    overflowed_ = true;
    return;
  }
  pos_ = bit;
}

}  // namespace cafe
