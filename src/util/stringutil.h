// Small string/formatting helpers shared by the tools and harnesses.

#ifndef CAFE_UTIL_STRINGUTIL_H_
#define CAFE_UTIL_STRINGUTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cafe {

/// "1.5 KB", "23.4 MB", ... (powers of 1024).
std::string HumanBytes(uint64_t bytes);

/// Fixed-point rendering with `digits` decimals, e.g. FormatDouble(1.5, 2)
/// == "1.50".
std::string FormatDouble(double value, int digits);

/// Thousands-separated integer, e.g. 1234567 -> "1,234,567".
std::string WithCommas(uint64_t value);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on any occurrence of `sep` (single char); keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII upper-casing (locale-independent).
std::string ToUpper(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace cafe

#endif  // CAFE_UTIL_STRINGUTIL_H_
