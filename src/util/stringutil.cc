#include "util/stringutil.h"

#include <cctype>
#include <cstdio>

namespace cafe {

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string WithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace cafe
