// Deterministic pseudo-random generation for the synthetic collections and
// property tests. All randomness in the library flows through Rng so that
// every experiment is reproducible from a seed.

#ifndef CAFE_UTIL_RANDOM_H_
#define CAFE_UTIL_RANDOM_H_

#include "util/check.h"
#include <cmath>
#include <cstdint>
#include <vector>

namespace cafe {

/// xoshiro256** generator seeded via splitmix64. Header-only for speed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 expansion of the seed into the full state.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xBF58476D1CE4E5B9ull;
      t = (t ^ (t >> 27)) * 0x94D049BB133111EBull;
      s = t ^ (t >> 31);
    }
  }

  uint64_t Next() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) {
    CAFE_DCHECK(bound > 0);
    // Debiased multiply-shift (Lemire).
    while (true) {
      uint64_t x = Next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      uint64_t lo = static_cast<uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    CAFE_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Log-normal with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma) {
    return std::exp(mu + sigma * NextGaussian());
  }

  /// Geometric: number of failures before first success, success prob p.
  uint64_t NextGeometric(double p) {
    CAFE_DCHECK(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 0;
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return static_cast<uint64_t>(std::log(u) / std::log1p(-p));
  }

  /// Samples an index according to non-negative weights (need not sum to 1).
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double x = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0) return i;
    }
    return weights.size() - 1;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace cafe

#endif  // CAFE_UTIL_RANDOM_H_
