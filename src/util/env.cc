#include "util/env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace cafe {

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failed: " + path);
  }
  *out = ss.str();
  return Status::OK();
}

Status WriteStringToFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for write: " + path);
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError("remove failed: " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

int64_t GetEnvInt(const char* name, int64_t default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return default_value;
  return parsed;
}

std::string TempDir() {
  const char* t = std::getenv("TMPDIR");
  if (t != nullptr && *t != '\0') return t;
  return "/tmp";
}

}  // namespace cafe
