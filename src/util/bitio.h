// Bit-level I/O over in-memory buffers.
//
// BitWriter appends bits MSB-first into a growable byte buffer; BitReader
// consumes them in the same order. These are the substrate for all the
// integer codes in coding/ and for the direct-coded sequence store.
//
// Reads past the end of the buffer set an overflow flag (and return zero
// bits) rather than invoking undefined behaviour; decoders check
// `overflowed()` once per list rather than per bit, which keeps the hot
// decode loops branch-light.

#ifndef CAFE_UTIL_BITIO_H_
#define CAFE_UTIL_BITIO_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cafe {

/// Append-only MSB-first bit sink.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `nbits` bits of `value`, most significant first.
  /// `nbits` must be <= 64.
  void WriteBits(uint64_t value, int nbits);

  /// Appends a single bit.
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  /// Appends `count` zero bits followed by a terminating one bit
  /// (the unary code for `count`).
  void WriteUnary(uint64_t count);

  /// Pads with zero bits to the next byte boundary.
  void AlignToByte();

  /// Number of bits written so far.
  [[nodiscard]] size_t bit_count() const { return bit_count_; }

  /// Finishes (pads to a byte boundary) and returns the buffer.
  [[nodiscard]] std::vector<uint8_t> Finish();

  /// Read-only view of the bytes written so far, including a final
  /// partially-filled byte if any.
  [[nodiscard]] const std::vector<uint8_t>& bytes() const { return buf_; }

  void Clear();

 private:
  std::vector<uint8_t> buf_;
  uint64_t acc_ = 0;   // pending bits, left-aligned within `acc_bits_`
  int acc_bits_ = 0;   // number of pending bits in acc_ (< 8)
  size_t bit_count_ = 0;

  void FlushAcc();
};

/// MSB-first bit source over a caller-owned byte buffer.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size_bytes)
      : data_(data), size_bits_(size_bytes * 8) {}

  explicit BitReader(const std::vector<uint8_t>& data)
      : BitReader(data.data(), data.size()) {}

  /// Reads `nbits` bits (<= 64) and returns them right-aligned.
  /// Past-the-end reads return 0 and set the overflow flag.
  [[nodiscard]] uint64_t ReadBits(int nbits);

  /// Reads a single bit.
  [[nodiscard]] bool ReadBit() { return ReadBits(1) != 0; }

  /// Reads a unary code: the number of zero bits before the next one bit.
  [[nodiscard]] uint64_t ReadUnary();

  /// Skips ahead to the next byte boundary.
  void AlignToByte();

  /// True once any read has run past the end of the buffer.
  [[nodiscard]] bool overflowed() const { return overflowed_; }

  [[nodiscard]] size_t bit_position() const { return pos_; }
  [[nodiscard]] size_t size_bits() const { return size_bits_; }
  [[nodiscard]] size_t bits_remaining() const {
    return pos_ >= size_bits_ ? 0 : size_bits_ - pos_;
  }

  /// Repositions the read cursor (for random access into an encoded block).
  void SeekToBit(size_t bit);

 private:
  const uint8_t* data_;
  size_t size_bits_;
  size_t pos_ = 0;
  bool overflowed_ = false;
};

}  // namespace cafe

#endif  // CAFE_UTIL_BITIO_H_
