#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace cafe {
namespace internal {

CheckFailure::CheckFailure(const char* file, int line, const char* message) {
  stream_ << file << ":" << line << ": " << message;
}

CheckFailure::CheckFailure(const char* file, int line, std::string message) {
  stream_ << file << ":" << line << ": " << message;
}

CheckFailure::~CheckFailure() {
  const std::string msg = stream_.str();
  std::fprintf(stderr, "%s\n", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace cafe
