#include "util/status.h"

namespace cafe {

std::string Status::ToString() const {
  const char* label = nullptr;
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      label = "Invalid argument";
      break;
    case Code::kNotFound:
      label = "Not found";
      break;
    case Code::kCorruption:
      label = "Corruption";
      break;
    case Code::kIOError:
      label = "IO error";
      break;
    case Code::kNotSupported:
      label = "Not supported";
      break;
    case Code::kOutOfRange:
      label = "Out of range";
      break;
    case Code::kInternal:
      label = "Internal";
      break;
    case Code::kOverloaded:
      label = "Overloaded";
      break;
  }
  std::string out = label;
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cafe
