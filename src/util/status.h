// Status / Result error-handling types.
//
// Library code never throws across the public API boundary; fallible
// operations return a Status (or a Result<T> when they also produce a
// value), in the style of LevelDB/RocksDB.

#ifndef CAFE_UTIL_STATUS_H_
#define CAFE_UTIL_STATUS_H_

#include "util/check.h"
#include <string>
#include <utility>
#include <variant>

namespace cafe {

/// Outcome of a fallible operation.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kIOError,
    kNotSupported,
    kOutOfRange,
    kInternal,
    /// The server refused the request to protect itself (admission
    /// control): the queue is full or it is shutting down. Retriable.
    kOverloaded,
  };

  /// Default-constructed Status is success.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(Code::kOverloaded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsOverloaded() const { return code_ == Code::kOverloaded; }

  /// Human-readable rendering, e.g. "Corruption: bad checksum".
  std::string ToString() const;

  /// Explicitly discards the status. The only sanctioned way to drop a
  /// [[nodiscard]] Status — reserve it for best-effort operations
  /// (cleanup of temporary files and the like).
  void IgnoreError() const {}

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A value or an error. Holds T on success, a non-OK Status on failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from error. `status` must be non-OK.
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    CAFE_DCHECK(!std::get<Status>(value_).ok());
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(value_); }

  /// The error; Status::OK() if this holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(value_);
  }

  /// Precondition: ok().
  const T& value() const& {
    CAFE_DCHECK(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    CAFE_DCHECK(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    CAFE_DCHECK(ok());
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace cafe

/// Propagate a non-OK Status from the current function.
#define CAFE_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::cafe::Status _s = (expr);             \
    if (!_s.ok()) return _s;                \
  } while (0)

#endif  // CAFE_UTIL_STATUS_H_
