// A small fixed-size thread pool for the parallel execution layer.
//
// Design goals, in order: determinism of results (the pool only
// distributes work; callers merge per-worker state in a fixed order),
// exception safety (task exceptions are captured and rethrown on the
// waiting thread; worker threads never die), and simplicity (no work
// stealing, no task priorities — queries and candidates are uniform
// enough that a shared queue with an atomic cursor is within noise of
// fancier schedulers for this workload).
//
// Typical use:
//
//   ThreadPool pool(4);
//   pool.ParallelFor(items.size(), [&](size_t i, unsigned worker) {
//     scratch[worker].Process(items[i]);   // scratch is per-worker
//   });
//   // merge scratch[0..pool.num_threads()) sequentially
//
// ParallelFor must not be called from inside a pool task (the queued
// sub-tasks would wait behind the caller); keep nested parallelism out
// by forcing inner layers to one thread, as BatchSearch does.

#ifndef CAFE_UTIL_THREAD_POOL_H_
#define CAFE_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace cafe {

class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned num_threads = 0);

  /// Waits for every submitted task to finish, then joins the workers.
  /// Task exceptions never propagate here — they are delivered through
  /// the futures Submit returned (or rethrown by ParallelFor).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues `fn` for execution on some worker. The returned future
  /// reports completion and rethrows any exception `fn` threw.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs body(i, worker) for every i in [0, n), distributing indices
  /// dynamically over min(num_threads(), n) workers; `worker` is a dense
  /// id in [0, that count), stable for the duration of the call, so the
  /// caller can give each worker its own scratch state. Blocks until all
  /// indices ran; if any invocation threw, rethrows the first captured
  /// exception after the loop drains (workers that did not throw keep
  /// consuming indices). Which worker runs which index is unspecified —
  /// callers must merge per-worker state deterministically.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, unsigned)>& body);

  /// max(1, std::thread::hardware_concurrency()).
  static unsigned HardwareThreads();

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;  // workers wait for queue_/stopping_
  std::queue<std::function<void()>> queue_ CAFE_GUARDED_BY(mu_);
  bool stopping_ CAFE_GUARDED_BY(mu_) = false;
  // Written only by the constructor, drained by the destructor —
  // never mutated while workers run, so no lock guards it.
  std::vector<std::thread> workers_;
};

}  // namespace cafe

#endif  // CAFE_UTIL_THREAD_POOL_H_
