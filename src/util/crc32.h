// CRC-32 (IEEE 802.3 polynomial) for on-disk file integrity checks.

#ifndef CAFE_UTIL_CRC32_H_
#define CAFE_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace cafe {

/// Computes the CRC-32 of `data`, continuing from `seed` (pass 0 for a
/// fresh checksum; pass a previous result to checksum data in chunks).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace cafe

#endif  // CAFE_UTIL_CRC32_H_
