// MmapFile: RAII wrapper over a read-only memory-mapped file.
//
// The mapping is the file: no read() copies, no userspace buffer, no
// cache to size — the kernel's page cache is the cache, shared across
// processes and evicted under memory pressure. A mapped region is
// immutable from this side (PROT_READ) and valid for the lifetime of
// the MmapFile object; moving the object transfers ownership of the
// mapping, destruction unmaps.
//
// Advise() forwards access-pattern hints to madvise(2) so a consumer
// can tell the kernel how it will touch the pages: kSequential before
// a one-pass CRC sweep (aggressive readahead), kRandom for point
// postings lookups (no readahead pollution), kWillNeed to prefault a
// range it is about to decode. Hints are best-effort; failure to
// advise is never an error.
//
// Thread safety: the mapped bytes are read-only and the object is
// immutable after Open, so any number of threads may read data()
// concurrently with no synchronization.

#ifndef CAFE_UTIL_MMAP_FILE_H_
#define CAFE_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace cafe {

class MmapFile {
 public:
  enum class Advice {
    kNormal,      // default kernel heuristics
    kSequential,  // aggressive readahead, drop behind
    kRandom,      // disable readahead
    kWillNeed,    // prefault: start reading these pages now
    kDontNeed,    // the pages will not be touched again soon
  };

  /// Maps `path` read-only in its entirety. Empty files map to a valid
  /// object with size() == 0 and data() == nullptr. With `populate`,
  /// page tables for the whole file are filled during the mmap call
  /// (MAP_POPULATE) instead of via one fault per touched page — the
  /// right call when the consumer is about to sweep every byte anyway,
  /// as the index CRC check at open does. Best-effort: kernels without
  /// it just fault lazily.
  [[nodiscard]] static Result<MmapFile> Open(const std::string& path,
                                             bool populate = false);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr || size_ == 0; }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }

  /// Applies an access-pattern hint to [offset, offset + length).
  /// length 0 means "to the end of the mapping". Offsets are rounded
  /// down to page boundaries as madvise requires. Best-effort: always
  /// safe to call, including on an empty mapping.
  void Advise(Advice advice, size_t offset = 0, size_t length = 0) const;

 private:
  MmapFile(uint8_t* data, size_t size) : data_(data), size_(size) {}

  void Unmap();

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace cafe

#endif  // CAFE_UTIL_MMAP_FILE_H_
