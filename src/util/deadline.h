// Request deadlines for the serving layer.
//
// A Deadline is an absolute point on the monotonic clock, fixed when the
// request is admitted, so queue wait and every later phase all draw from
// the same budget. Engines poll it at phase boundaries (see
// SearchOptions::deadline) and return partial results with the
// `truncated` flag instead of running past it; the dispatcher drops
// requests whose deadline expired while they were still queued.
//
// Header-only value type; copying preserves the absolute expiry point.

#ifndef CAFE_UTIL_DEADLINE_H_
#define CAFE_UTIL_DEADLINE_H_

#include <chrono>
#include <cstdint>
#include <limits>

namespace cafe {

class Deadline {
 public:
  /// Default-constructed deadlines never expire.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `seconds` from now (<= 0 means already expired).
  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline AfterMillis(uint64_t millis) {
    return AfterSeconds(static_cast<double>(millis) * 1e-3);
  }

  bool has_deadline() const { return has_deadline_; }

  bool Expired() const { return has_deadline_ && Clock::now() >= at_; }

  /// Seconds until expiry; negative when expired, +infinity when this
  /// deadline never expires.
  double RemainingSeconds() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;

  Clock::time_point at_{};
  bool has_deadline_ = false;
};

}  // namespace cafe

#endif  // CAFE_UTIL_DEADLINE_H_
