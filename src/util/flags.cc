#include "util/flags.h"

#include <cstdlib>

namespace cafe {

FlagParser::FlagParser(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  Parse(args);
}

FlagParser::FlagParser(const std::vector<std::string>& args) { Parse(args); }

void FlagParser::Parse(const std::vector<std::string>& args) {
  bool flags_done = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (flags_done || arg.size() < 3 || arg.substr(0, 2) != "--") {
      if (arg == "--") {
        flags_done = true;
        continue;
      }
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is itself a flag (or absent):
    // then it is a boolean.
    if (i + 1 < args.size() && args[i + 1].substr(0, 2) != "--") {
      values_[body] = args[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) {
  consumed_.insert(name);
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t default_value) {
  consumed_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + name + " expects an integer, got '" +
                      it->second + "'");
    return default_value;
  }
  return v;
}

double FlagParser::GetDouble(const std::string& name, double default_value) {
  consumed_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + name + " expects a number, got '" +
                      it->second + "'");
    return default_value;
  }
  return v;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) {
  consumed_.insert(name);
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  if (it->second == "true" || it->second == "1" || it->second == "yes") {
    return true;
  }
  if (it->second == "false" || it->second == "0" || it->second == "no") {
    return false;
  }
  errors_.push_back("--" + name + " expects a boolean, got '" + it->second +
                    "'");
  return default_value;
}

Status FlagParser::Finish() const {
  for (const auto& [name, value] : values_) {
    if (consumed_.count(name) == 0) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
  }
  if (!errors_.empty()) {
    return Status::InvalidArgument(errors_.front());
  }
  return Status::OK();
}

}  // namespace cafe
