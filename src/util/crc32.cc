#include "util/crc32.h"

#include <array>
#include <cstring>

#include "util/simd.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define CAFE_CRC32_PCLMUL 1
#endif

namespace cafe {
namespace {

// Slice-by-8 tables: table[0] is the classic bytewise table for the
// IEEE 802.3 polynomial; table[s][b] is the CRC of byte b followed by
// s zero bytes. Eight table lookups then advance the CRC eight input
// bytes per iteration. This is the portable path and the tail handler;
// every index open checksums the whole file before serving from it, so
// the bulk of the work goes through the carryless-multiply kernel below
// when the CPU has one.
std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = table[0][i];
    for (size_t s = 1; s < 8; ++s) {
      c = table[0][c & 0xFF] ^ (c >> 8);
      table[s][i] = c;
    }
  }
  return table;
}

#if defined(CAFE_CRC32_PCLMUL)

// Folding constants for the reflected CRC-32 polynomial 0xEDB88320,
// from Intel's "Fast CRC Computation Using PCLMULQDQ" (the same values
// zlib and Chromium ship): x^(576..64) mod P and the Barrett pair.
alignas(16) const uint64_t kFold512[2] = {0x0154442bd4, 0x01c6e41596};
alignas(16) const uint64_t kFold128[2] = {0x01751997d0, 0x00ccaa009e};
alignas(16) const uint64_t kFold64[2] = {0x0163cd6124, 0x0000000000};
alignas(16) const uint64_t kBarrett[2] = {0x01db710641, 0x01f7011641};

/// Carryless-multiply CRC over `size` bytes (size >= 64 and a multiple
/// of 16). Takes and returns the raw (pre-final-xor) CRC register.
__attribute__((target("pclmul,sse4.1"))) uint32_t Crc32Pclmul(
    const uint8_t* p, size_t size, uint32_t crc) {
  const __m128i* buf = reinterpret_cast<const __m128i*>(p);
  __m128i x1 = _mm_loadu_si128(buf + 0);
  __m128i x2 = _mm_loadu_si128(buf + 1);
  __m128i x3 = _mm_loadu_si128(buf + 2);
  __m128i x4 = _mm_loadu_si128(buf + 3);
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  __m128i k = _mm_load_si128(reinterpret_cast<const __m128i*>(kFold512));
  buf += 4;
  size -= 64;

  // Fold four 128-bit lanes in parallel, 64 input bytes per step.
  while (size >= 64) {
    __m128i x5 = _mm_clmulepi64_si128(x1, k, 0x00);
    __m128i x6 = _mm_clmulepi64_si128(x2, k, 0x00);
    __m128i x7 = _mm_clmulepi64_si128(x3, k, 0x00);
    __m128i x8 = _mm_clmulepi64_si128(x4, k, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), _mm_loadu_si128(buf + 0));
    x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), _mm_loadu_si128(buf + 1));
    x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), _mm_loadu_si128(buf + 2));
    x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), _mm_loadu_si128(buf + 3));
    buf += 4;
    size -= 64;
  }

  // Fold the four lanes into one, then any remaining 16-byte blocks.
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(kFold128));
  __m128i x5 = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x2);
  x5 = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x3);
  x5 = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), x4);
  while (size >= 16) {
    x5 = _mm_clmulepi64_si128(x1, k, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), _mm_loadu_si128(buf));
    buf += 1;
    size -= 16;
  }

  // Reduce 128 -> 64 bits.
  const __m128i mask = _mm_setr_epi32(~0, 0, ~0, 0);
  __m128i t = _mm_clmulepi64_si128(x1, k, 0x10);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, t);
  k = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(kFold64));
  t = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask);
  x1 = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_xor_si128(x1, t);

  // Barrett reduction 64 -> 32 bits.
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(kBarrett));
  t = _mm_and_si128(x1, mask);
  t = _mm_clmulepi64_si128(t, k, 0x10);
  t = _mm_and_si128(t, mask);
  t = _mm_clmulepi64_si128(t, k, 0x00);
  x1 = _mm_xor_si128(x1, t);
  return static_cast<uint32_t>(_mm_extract_epi32(x1, 1));
}

bool HavePclmul() {
  return __builtin_cpu_supports("pclmul") &&
         __builtin_cpu_supports("sse4.1");
}

#endif  // CAFE_CRC32_PCLMUL

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> table = MakeTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
#if defined(CAFE_CRC32_PCLMUL)
  // CAFE_SIMD_LEVEL=scalar forces the slice-by-8 oracle; any wider tier
  // keeps the carryless-multiply kernel (PCLMULQDQ is its own CPU
  // feature, not an SSE2/AVX2 width — see docs/PERFORMANCE.md).
  static const bool have_pclmul = HavePclmul();
  if (have_pclmul && size >= 64 && ActiveSimdLevel() != SimdLevel::kScalar) {
    const size_t folded = size & ~size_t{15};
    c = Crc32Pclmul(p, folded, c);
    p += folded;
    size -= folded;
  }
#endif
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= c;
    const uint32_t lo = static_cast<uint32_t>(word);
    const uint32_t hi = static_cast<uint32_t>(word >> 32);
    c = table[7][lo & 0xFF] ^ table[6][(lo >> 8) & 0xFF] ^
        table[5][(lo >> 16) & 0xFF] ^ table[4][lo >> 24] ^
        table[3][hi & 0xFF] ^ table[2][(hi >> 8) & 0xFF] ^
        table[1][(hi >> 16) & 0xFF] ^ table[0][hi >> 24];
    p += 8;
    size -= 8;
  }
#endif
  for (size_t i = 0; i < size; ++i) {
    c = table[0][(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace cafe
