// Runtime invariant checks: CAFE_CHECK / CAFE_DCHECK.
//
// CAFE_CHECK(cond) aborts the process with a `file:line: Check failed:`
// message when `cond` is false, in every build type. Use it for
// invariants whose violation means the process must not continue
// (index-format corruption the caller cannot recover from, broken
// internal state). Extra context can be streamed in:
//
//   CAFE_CHECK(block < num_blocks_) << "term " << term;
//   CAFE_CHECK_EQ(header.magic, kMagic) << "while opening " << path;
//
// CAFE_DCHECK and friends are identical in Debug builds and compile to
// nothing in Release (NDEBUG) builds — the condition is not evaluated.
// Use them for hot-path preconditions (per-integer codec contracts,
// per-bit I/O bounds) where a Release-mode branch would be measurable.
//
// The _EQ/_NE/_LT/_LE/_GT/_GE variants print both operand values on
// failure, which plain CAFE_CHECK(a == b) cannot do.

#ifndef CAFE_UTIL_CHECK_H_
#define CAFE_UTIL_CHECK_H_

#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace cafe {
namespace internal {

// Accumulates the failure message; its destructor reports file:line plus
// the streamed message to stderr and aborts. Instances only ever exist as
// temporaries in a failed check's full-expression, so streaming extra
// context happens before the abort fires.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* message);
  CheckFailure(const char* file, int line, std::string message);
  ~CheckFailure();

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Lower precedence than operator<< so the macro can swallow the whole
// streamed expression; returns void so a check cannot be used as a value.
struct CheckVoidify {
  void operator&(std::ostream&) {}
};

// Builds the "a vs. b" message for a failed CAFE_CHECK_op. Out of line
// from the comparison so the failure path stays cold.
template <typename A, typename B>
std::string MakeCheckOpMessage(const char* expr, const A& a, const B& b) {
  std::ostringstream os;
  os << "Check failed: " << expr << " (" << a << " vs. " << b << ") ";
  return os.str();
}

// One helper per comparison; returns the failure message, or nullopt on
// success. Operands are evaluated exactly once, in the caller.
#define CAFE_INTERNAL_DEFINE_CHECK_OP(name, op)                             \
  template <typename A, typename B>                                         \
  std::optional<std::string> name(const char* expr, const A& a,             \
                                  const B& b) {                             \
    if (a op b) return std::nullopt; /* NOLINT(readability-braces) */       \
    return MakeCheckOpMessage(expr, a, b);                                  \
  }
CAFE_INTERNAL_DEFINE_CHECK_OP(CheckEqImpl, ==)
CAFE_INTERNAL_DEFINE_CHECK_OP(CheckNeImpl, !=)
CAFE_INTERNAL_DEFINE_CHECK_OP(CheckLtImpl, <)
CAFE_INTERNAL_DEFINE_CHECK_OP(CheckLeImpl, <=)
CAFE_INTERNAL_DEFINE_CHECK_OP(CheckGtImpl, >)
CAFE_INTERNAL_DEFINE_CHECK_OP(CheckGeImpl, >=)
#undef CAFE_INTERNAL_DEFINE_CHECK_OP

}  // namespace internal
}  // namespace cafe

// Always-on invariant check. The `while` runs at most once: CheckFailure's
// destructor aborts at the end of the statement.
#define CAFE_CHECK(cond)                                               \
  while (__builtin_expect(!(cond), 0))                                 \
  ::cafe::internal::CheckVoidify() &                                   \
      ::cafe::internal::CheckFailure(__FILE__, __LINE__,               \
                                     "Check failed: " #cond " ")       \
          .stream()

#define CAFE_INTERNAL_CHECK_OP(impl, a, b, op_str)                     \
  while (auto _cafe_check_msg =                                        \
             ::cafe::internal::impl(#a " " op_str " " #b, (a), (b)))   \
  ::cafe::internal::CheckVoidify() &                                   \
      ::cafe::internal::CheckFailure(__FILE__, __LINE__,               \
                                     *std::move(_cafe_check_msg))      \
          .stream()

#define CAFE_CHECK_EQ(a, b) CAFE_INTERNAL_CHECK_OP(CheckEqImpl, a, b, "==")
#define CAFE_CHECK_NE(a, b) CAFE_INTERNAL_CHECK_OP(CheckNeImpl, a, b, "!=")
#define CAFE_CHECK_LT(a, b) CAFE_INTERNAL_CHECK_OP(CheckLtImpl, a, b, "<")
#define CAFE_CHECK_LE(a, b) CAFE_INTERNAL_CHECK_OP(CheckLeImpl, a, b, "<=")
#define CAFE_CHECK_GT(a, b) CAFE_INTERNAL_CHECK_OP(CheckGtImpl, a, b, ">")
#define CAFE_CHECK_GE(a, b) CAFE_INTERNAL_CHECK_OP(CheckGeImpl, a, b, ">=")

// Debug-only checks. In Release (NDEBUG) the condition is dead code —
// never evaluated, but still parsed, so operands stay odr-used and the
// expression keeps compiling.
#ifndef NDEBUG
#define CAFE_DCHECK(cond) CAFE_CHECK(cond)
#define CAFE_DCHECK_EQ(a, b) CAFE_CHECK_EQ(a, b)
#define CAFE_DCHECK_NE(a, b) CAFE_CHECK_NE(a, b)
#define CAFE_DCHECK_LT(a, b) CAFE_CHECK_LT(a, b)
#define CAFE_DCHECK_LE(a, b) CAFE_CHECK_LE(a, b)
#define CAFE_DCHECK_GT(a, b) CAFE_CHECK_GT(a, b)
#define CAFE_DCHECK_GE(a, b) CAFE_CHECK_GE(a, b)
#else
#define CAFE_DCHECK(cond) \
  while (false) CAFE_CHECK(cond)
#define CAFE_DCHECK_EQ(a, b) \
  while (false) CAFE_CHECK_EQ(a, b)
#define CAFE_DCHECK_NE(a, b) \
  while (false) CAFE_CHECK_NE(a, b)
#define CAFE_DCHECK_LT(a, b) \
  while (false) CAFE_CHECK_LT(a, b)
#define CAFE_DCHECK_LE(a, b) \
  while (false) CAFE_CHECK_LE(a, b)
#define CAFE_DCHECK_GT(a, b) \
  while (false) CAFE_CHECK_GT(a, b)
#define CAFE_DCHECK_GE(a, b) \
  while (false) CAFE_CHECK_GE(a, b)
#endif

#endif  // CAFE_UTIL_CHECK_H_
