#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace cafe {

unsigned ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = HardwareThreads();
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task: exceptions land in the future, not here
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto task =
      std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> future = task->get_future();
  {
    MutexLock lock(&mu_);
    queue_.emplace([task] { (*task)(); });
  }
  cv_.NotifyOne();
  return future;
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t, unsigned)>& body) {
  if (n == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<size_t>(num_threads(), n));
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }

  std::atomic<size_t> next{0};
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    futures.push_back(Submit([&next, &body, n, w] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        body(i, w);
      }
    }));
  }

  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cafe
