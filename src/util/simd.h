// Runtime SIMD dispatch tiers.
//
// Every vectorized kernel in the tree (the PCLMULQDQ CRC sweep, the
// AVX2 packed-payload scan, the striped Smith-Waterman) keeps its
// scalar implementation as the reference oracle and selects the widest
// tier the CPU supports at runtime. `CAFE_SIMD_LEVEL` caps the tier
// from the environment (`scalar` | `sse2` | `avx2`) so tests and CI can
// force every path onto the same inputs; see docs/PERFORMANCE.md for
// the tier table and the forcing recipe.
//
// ActiveSimdLevel() is computed once (cpuid + env) and cached; the test
// override in `internal` exists because the env is read only once —
// per-test setenv would silently not apply.

#ifndef CAFE_UTIL_SIMD_H_
#define CAFE_UTIL_SIMD_H_

namespace cafe {

/// Dispatch tiers, widest last. Comparison order is meaningful:
/// a kernel compiled for tier T may run iff ActiveSimdLevel() >= T.
enum class SimdLevel : int {
  kScalar = 0,  // portable reference path, always available
  kSse2 = 1,    // 128-bit lanes (baseline on x86-64)
  kAvx2 = 2,    // 256-bit lanes
};

/// Lowercase tier name ("scalar", "sse2", "avx2") — the exact spelling
/// CAFE_SIMD_LEVEL accepts.
const char* SimdLevelName(SimdLevel level);

/// Parses a CAFE_SIMD_LEVEL value. Returns false (and leaves *out
/// untouched) on anything but the three canonical names.
bool ParseSimdLevel(const char* text, SimdLevel* out);

/// Widest tier this CPU supports, ignoring the environment.
SimdLevel DetectCpuSimdLevel();

/// The tier kernels actually dispatch on: min(DetectCpuSimdLevel(),
/// CAFE_SIMD_LEVEL). Computed once and cached; an unparseable env value
/// is ignored (full CPU tier).
SimdLevel ActiveSimdLevel();

namespace internal {

/// Overrides ActiveSimdLevel() for the calling process (all threads)
/// until Reset, clamped to DetectCpuSimdLevel(). Test-only: lets one
/// binary exercise every dispatch tier without re-exec'ing under
/// different environments.
void SetActiveSimdLevelForTest(SimdLevel level);
void ResetActiveSimdLevelForTest();

}  // namespace internal

}  // namespace cafe

#endif  // CAFE_UTIL_SIMD_H_
