// The repo's one mutex: cafe::Mutex / cafe::MutexLock / cafe::CondVar,
// thin wrappers over the std primitives that carry Clang Thread Safety
// Analysis capability attributes. Every locking invariant in src/ —
// which fields a mutex guards, which methods require it held, which
// public entry points must not hold it — is written down with the
// CAFE_* macros below and machine-checked by `-Wthread-safety`
// (promoted to an error under CAFE_WERROR and in the static-analysis
// CI job). Under compilers without the analysis (GCC) the attributes
// expand to nothing and the wrappers cost exactly what std::mutex
// costs.
//
// Raw std::mutex / std::lock_guard / std::unique_lock /
// std::condition_variable are banned everywhere else in src/ by
// tools/lint_cafe.py (cafe-no-raw-mutex), the same confinement pattern
// as std::thread -> ThreadPool, so a mutex cannot re-enter the tree
// without its invariants being statically expressible.
//
// Annotation cheat sheet (docs/ARCHITECTURE.md "Concurrency
// invariants" has the repo-wide lock hierarchy):
//
//   Mutex mu_;
//   int items_ CAFE_GUARDED_BY(mu_);          // reads+writes need mu_
//   void Compact() CAFE_REQUIRES(mu_);        // caller already holds it
//   size_t Size() const CAFE_EXCLUDES(mu_);   // caller must NOT hold it
//
// Condition waits: CondVar::Wait takes the Mutex itself and is
// annotated CAFE_REQUIRES(mu), so the analysis verifies the lock is
// held at the wait. Write predicate loops out explicitly —
//
//   MutexLock lock(&mu_);
//   while (!done_) cv_.Wait(&mu_);
//
// — rather than passing a predicate lambda: the analysis treats a
// lambda body as a separate unannotated function and would flag its
// guarded-field reads.
//
// CAFE_NO_THREAD_SAFETY_ANALYSIS is the escape hatch for the rare
// function whose locking discipline is correct but inexpressible
// (e.g. lock handoff between functions). Every use MUST carry a
// comment justifying why the analysis cannot see the invariant; the
// static-analysis CI job greps uses against that contract.

#ifndef CAFE_UTIL_MUTEX_H_
#define CAFE_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros. GCC accepts none of
// these, so they compile away there; the analysis itself only runs
// under clang -Wthread-safety.
#if defined(__clang__)
#define CAFE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CAFE_THREAD_ANNOTATION_(x)
#endif

/// Declares a type to be a lockable capability ("mutex" in warnings).
#define CAFE_CAPABILITY(x) CAFE_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability at construction
/// and releases it at destruction.
#define CAFE_SCOPED_CAPABILITY CAFE_THREAD_ANNOTATION_(scoped_lockable)

/// Field/variable may only be accessed while holding `x`.
#define CAFE_GUARDED_BY(x) CAFE_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding `x`
/// (the pointer itself is unguarded).
#define CAFE_PT_GUARDED_BY(x) CAFE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-ordering documentation: this mutex must be acquired before /
/// after the named ones.
#define CAFE_ACQUIRED_BEFORE(...) \
  CAFE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define CAFE_ACQUIRED_AFTER(...) \
  CAFE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function requires the capability held on entry (and does not
/// release it).
#define CAFE_REQUIRES(...) \
  CAFE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define CAFE_ACQUIRE(...) \
  CAFE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller held.
#define CAFE_RELEASE(...) \
  CAFE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success value.
#define CAFE_TRY_ACQUIRE(...) \
  CAFE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention on
/// re-entrant public APIs).
#define CAFE_EXCLUDES(...) \
  CAFE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (fact injection).
#define CAFE_ASSERT_CAPABILITY(x) \
  CAFE_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the named capability.
#define CAFE_RETURN_CAPABILITY(x) CAFE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use
/// must carry a justification comment (see file header).
#define CAFE_NO_THREAD_SAFETY_ANALYSIS \
  CAFE_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace cafe {

class CondVar;

/// A non-reentrant mutual-exclusion lock carrying the "mutex"
/// capability. Same cost and semantics as std::mutex; prefer MutexLock
/// over manual Lock/Unlock pairs.
class CAFE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CAFE_ACQUIRE() { mu_.lock(); }
  void Unlock() CAFE_RELEASE() { mu_.unlock(); }
  bool TryLock() CAFE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock: acquires at construction, releases at destruction.
class CAFE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CAFE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() CAFE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to cafe::Mutex. Wait atomically releases
/// the mutex and re-acquires it before returning; to the thread safety
/// analysis the mutex stays held across the call, which matches what
/// the caller observes. Spurious wakeups happen — always wait in a
/// `while (!predicate)` loop (written out, not as a lambda; see the
/// file header).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) CAFE_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait protocol, then
    // release the unique_lock wrapper so ownership stays with the
    // caller's MutexLock.
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cafe

#endif  // CAFE_UTIL_MUTEX_H_
