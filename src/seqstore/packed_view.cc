#include "seqstore/packed_view.h"

#include <algorithm>
#include <cstring>

#include "alphabet/nucleotide.h"
#include "seqstore/packed_scan_simd.h"
#include "util/check.h"

namespace cafe {
namespace {

constexpr uint64_t kPairLow = 0x5555555555555555ull;

// Loads the 64-bit big-endian value at byte `j` of a payload of
// `payload_bytes` bytes, zero-padding past the end, then splices in the
// sub-byte offset so base `pos` sits in the top bit pair.
uint64_t LoadShifted(const uint8_t* payload, size_t payload_bytes,
                     size_t pos) {
  CAFE_DCHECK_LT(pos >> 2, payload_bytes);
  size_t j = pos >> 2;
  int r = static_cast<int>(pos & 3);
  if (j + 9 <= payload_bytes) {
    // Fast path: one unaligned load + byte swap covers bytes j..j+7.
    uint64_t hi;
    std::memcpy(&hi, payload + j, 8);
    hi = __builtin_bswap64(hi);
    if (r == 0) return hi;
    return (hi << (2 * r)) |
           (static_cast<uint64_t>(payload[j + 8]) >> (8 - 2 * r));
  }
  uint8_t buf[9] = {0};
  size_t avail = payload_bytes > j ? payload_bytes - j : 0;
  if (avail > 9) avail = 9;
  std::memcpy(buf, payload + j, avail);
  uint64_t hi = 0;
  for (int k = 0; k < 8; ++k) hi = (hi << 8) | buf[k];
  if (r == 0) return hi;
  return (hi << (2 * r)) | (static_cast<uint64_t>(buf[8]) >> (8 - 2 * r));
}

// Mismatch flags (low bit of each pair) between two 32-base words.
inline uint64_t MismatchFlags(uint64_t a, uint64_t b) {
  uint64_t x = a ^ b;
  return (x | (x >> 1)) & kPairLow;
}

// Mask selecting the top `take` base pairs (take in [0, 32]).
inline uint64_t TopPairs(int take) {
  if (take <= 0) return 0;
  if (take >= 32) return ~uint64_t{0};
  return ~uint64_t{0} << (64 - 2 * take);
}

}  // namespace

uint64_t PackedView::Extract64(size_t pos, int* valid) const {
  size_t payload_bytes = (size_ + 3) / 4;
  if (pos >= size_) {
    if (valid != nullptr) *valid = 0;
    return 0;
  }
  if (valid != nullptr) {
    size_t rest = size_ - pos;
    *valid = rest >= 32 ? 32 : static_cast<int>(rest);
  }
  return LoadShifted(payload_, payload_bytes, pos);
}

std::string PackedView::ToString() const {
  std::string out(size_, 'A');
  for (size_t i = 0; i < size_; ++i) {
    out[i] = CodeToBase(BaseCode(i));
  }
  return out;
}

Result<PackedQuery> PackedQuery::FromString(std::string_view seq) {
  PackedQuery q;
  q.buffer_.assign((seq.size() + 3) / 4, 0);
  for (size_t i = 0; i < seq.size(); ++i) {
    int code = BaseToCode(seq[i]);
    if (code < 0) {
      uint8_t mask = IupacMask(seq[i]);
      if (mask == 0) {
        return Status::InvalidArgument(
            std::string("non-IUPAC character '") + seq[i] + "'");
      }
      code = 0;
      while ((mask & (1u << code)) == 0) ++code;
    }
    q.buffer_[i >> 2] |= static_cast<uint8_t>(code << (2 * (3 - (i & 3))));
  }
  q.view_ = PackedView(q.buffer_.data(), seq.size());
  return q;
}

namespace {

// Windows shorter than this skip the vector attempt: the scalar word
// loop already does 32 bases per step and the alignment head/tail
// bookkeeping would dominate.
constexpr size_t kPackedSimdMinBases = 64;

// The 32-bases-per-64-bit-load reference loop (also the head/tail
// handler for the vectorized path).
size_t ScalarMatchCount(const PackedView& a, size_t apos,
                        const PackedView& b, size_t bpos, size_t len) {
  size_t matches = 0;
  size_t done = 0;
  while (done < len) {
    int va = 0, vb = 0;
    uint64_t wa = a.Extract64(apos + done, &va);
    uint64_t wb = b.Extract64(bpos + done, &vb);
    int take = static_cast<int>(len - done);
    if (take > va) take = va;
    if (take > vb) take = vb;
    if (take <= 0) break;  // window ran past a sequence end
    uint64_t ne = MismatchFlags(wa, wb) & TopPairs(take);
    matches += static_cast<size_t>(take) -
               static_cast<size_t>(__builtin_popcountll(ne));
    done += static_cast<size_t>(take);
  }
  return matches;
}

}  // namespace

size_t PackedMatchCount(const PackedView& a, size_t apos,
                        const PackedView& b, size_t bpos, size_t len,
                        SimdLevel level) {
  size_t a_avail = a.size() > apos ? a.size() - apos : 0;
  size_t b_avail = b.size() > bpos ? b.size() - bpos : 0;
  size_t window = std::min(len, std::min(a_avail, b_avail));
  size_t matches = 0;
  size_t done = 0;
  size_t simd_bases = 0;
  if (level != SimdLevel::kScalar && window >= kPackedSimdMinBases) {
    // Scalar head until stream `a` hits a byte boundary.
    size_t head = (4 - (apos & 3)) & 3;
    if (head != 0) {
      matches += ScalarMatchCount(a, apos, b, bpos, head);
      done = head;
    }
    size_t a_off = apos + done;  // multiple of 4 from here on
    size_t b_off = bpos + done;
    size_t nbytes = (window - done) / 4;
    if (nbytes != 0) {
      // Whole bytes inside both sequences: every read below — including
      // b's one-byte lookahead when the shift is non-zero — stays
      // within the payloads (see packed_scan_simd.h).
      size_t bytes_done = 0;
      size_t mism = PackedBulkMismatches(
          a.payload() + (a_off >> 2), b.payload() + (b_off >> 2),
          static_cast<int>(2 * (b_off & 3)), nbytes, level, &bytes_done);
      simd_bases = bytes_done * 4;
      matches += simd_bases - mism;
      done += simd_bases;
    }
  }
  if (done < len) {
    matches += ScalarMatchCount(a, apos + done, b, bpos + done, len - done);
  }
  internal::RecordPackedScan(simd_bases, window - simd_bases);
  return matches;
}

size_t PackedMatchCount(const PackedView& a, size_t apos,
                        const PackedView& b, size_t bpos, size_t len) {
  return PackedMatchCount(a, apos, b, bpos, len, ActiveSimdLevel());
}

UngappedSegment PackedXDropExtend(const PackedView& a, const PackedView& b,
                                  uint32_t a_pos, uint32_t b_pos,
                                  uint32_t seed_len, int match,
                                  int mismatch, int xdrop) {
  // Seed score.
  size_t seed_matches = PackedMatchCount(a, a_pos, b, b_pos, seed_len);
  int score = static_cast<int>(seed_matches) * match +
              static_cast<int>(seed_len - seed_matches) * mismatch;

  UngappedSegment seg;
  seg.query_begin = a_pos;
  seg.query_end = a_pos + seed_len;
  seg.target_begin = b_pos;
  seg.target_end = b_pos + seed_len;

  // Left arm: base at a time (short in practice; packed loads would need
  // reverse extraction).
  {
    int run = score;
    int best = score;
    uint32_t ai = a_pos, bi = b_pos;
    uint32_t best_a = a_pos, best_b = b_pos;
    while (ai > 0 && bi > 0) {
      --ai;
      --bi;
      run += a.BaseCode(ai) == b.BaseCode(bi) ? match : mismatch;
      if (run > best) {
        best = run;
        best_a = ai;
        best_b = bi;
      } else if (run < best - xdrop) {
        break;
      }
    }
    score = best;
    seg.query_begin = best_a;
    seg.target_begin = best_b;
  }

  // Right arm: 32 bases per load; all-match chunks are consumed in one
  // step, mixed chunks are resolved pair by pair in registers. The
  // running/best bookkeeping matches XDropExtend exactly.
  {
    int run = score;
    int best = score;
    uint64_t ai = a_pos + seed_len;
    uint64_t bi = b_pos + seed_len;
    uint64_t best_a = ai, best_b = bi;
    bool dropped = false;
    while (!dropped) {
      int va = 0, vb = 0;
      uint64_t wa = a.Extract64(ai, &va);
      uint64_t wb = b.Extract64(bi, &vb);
      int take = va < vb ? va : vb;
      if (take <= 0) break;
      uint64_t ne = MismatchFlags(wa, wb) & TopPairs(take);
      if (ne == 0) {
        // Monotone rise: if the chunk crosses the previous peak, the new
        // peak is the chunk end; inside a dip the peak may survive.
        run += take * match;
        ai += static_cast<uint64_t>(take);
        bi += static_cast<uint64_t>(take);
        if (run > best) {
          best = run;
          best_a = ai;
          best_b = bi;
        }
        continue;
      }
      // Mixed chunk: jump mismatch to mismatch (clz on the flag mask);
      // between mismatches run rises monotonically, so batch-adding the
      // match run and checking the peak once is exactly the per-base
      // bookkeeping of XDropExtend.
      int consumed = 0;  // bases of this chunk already applied
      while (true) {
        int k;  // chunk-relative index of the next mismatch, or `take`
        if (ne == 0) {
          k = take;
        } else {
          // Flag for base k sits at MSB-index 2k+1.
          k = __builtin_clzll(ne) >> 1;
        }
        int gap = k - consumed;
        if (gap > 0) {
          run += gap * match;
          ai += static_cast<uint64_t>(gap);
          bi += static_cast<uint64_t>(gap);
          if (run > best) {
            best = run;
            best_a = ai;
            best_b = bi;
          }
          consumed = k;
        }
        if (k >= take) break;
        run += mismatch;
        ++ai;
        ++bi;
        ++consumed;
        ne &= ~(uint64_t{1} << (62 - 2 * k));
        if (run > best) {  // only reachable with a non-negative mismatch
          best = run;
          best_a = ai;
          best_b = bi;
        } else if (run < best - xdrop) {
          dropped = true;
          break;
        }
      }
    }
    score = best;
    seg.query_end = static_cast<uint32_t>(best_a);
    seg.target_end = static_cast<uint32_t>(best_b);
  }

  seg.score = score;
  return seg;
}

}  // namespace cafe
