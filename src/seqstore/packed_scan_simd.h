// Vectorized bulk comparison of 2-bit packed base streams.
//
// PackedMatchCount's scalar kernel compares 32 bases per 64-bit load;
// these kernels widen that to 128-bit (SSE2, 64 bases/step) and 256-bit
// (AVX2, 128 bases/step) lanes. The contract is byte-granular: the
// caller aligns stream `a` to a byte boundary (4 bases) and passes
// stream `b` as a byte pointer plus a sub-byte bit shift, exactly the
// shift-extract idiom of the scalar LoadShifted splice:
//
//   b_aligned[i] = (b[i] << shift) | (b[i + 1] >> (8 - shift))
//
// so when shift != 0 the kernels read one byte past `b + nbytes - 1`
// (the caller guarantees it is in range — see PackedMatchCount).
// Mismatch flags and popcounts are the same pair-low trick as the
// scalar path, just 16 or 32 bytes at a time.
//
// Dispatch: PackedBulkMismatches picks the widest kernel allowed by
// `level`, consumes as many whole vector blocks as fit, and reports how
// many bytes it processed; the scalar word loop in packed_view.cc
// finishes the tail. Forcing `level` (CAFE_SIMD_LEVEL, or the explicit
// PackedMatchCount overload) must never change any count — the oracle
// tests in tests/packed_scan_simd_test.cc hold every tier to that.

#ifndef CAFE_SEQSTORE_PACKED_SCAN_SIMD_H_
#define CAFE_SEQSTORE_PACKED_SCAN_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "util/simd.h"

namespace cafe {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Counts mismatching bases between the byte-aligned stream `a` and the
/// bit-shifted stream `b` over the widest whole vector blocks `level`
/// allows (32-byte blocks for AVX2, 16 for SSE2). `shift` is the bit
/// offset of b's first base within `b[0]` (0, 2, 4, or 6). Sets
/// `*bytes_done` to the number of bytes actually compared (a multiple
/// of the block size; 0 when `level` is scalar or `nbytes` is under one
/// block) — the caller handles the remainder. When `shift != 0` the
/// kernels read `b[*bytes_done]` (one byte beyond the compared range);
/// the caller must guarantee that byte exists.
size_t PackedBulkMismatches(const uint8_t* a, const uint8_t* b, int shift,
                            size_t nbytes, SimdLevel level,
                            size_t* bytes_done);

/// Mirrors the SIMD/scalar split of PackedMatchCount into counters:
///   coarse.packed_scans        calls that reached the bulk dispatcher
///   coarse.packed_simd_bases   bases compared by a vector kernel
///   coarse.packed_scalar_bases bases compared by the scalar word loop
/// Pass nullptr to detach. Attach before concurrent scanning starts;
/// the counters themselves are lock-free.
void AttachPackedScanMetrics(obs::MetricsRegistry* registry);

namespace internal {

/// Hot-path hooks for packed_view.cc (relaxed-atomic counter pointers;
/// one null check per site when no registry is attached).
void RecordPackedScan(size_t simd_bases, size_t scalar_bases);

}  // namespace internal

}  // namespace cafe

#endif  // CAFE_SEQSTORE_PACKED_SCAN_SIMD_H_
