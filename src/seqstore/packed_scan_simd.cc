#include "seqstore/packed_scan_simd.h"

#include <atomic>

#include "obs/metrics.h"
#include "util/check.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define CAFE_PACKED_SCAN_X86 1
#endif

namespace cafe {
namespace {

std::atomic<obs::Counter*> g_scans{nullptr};
std::atomic<obs::Counter*> g_simd_bases{nullptr};
std::atomic<obs::Counter*> g_scalar_bases{nullptr};

#if defined(CAFE_PACKED_SCAN_X86)

// Counts mismatching base pairs across 16 bytes (64 bases): a is
// byte-aligned, b is spliced from two overlapping loads when shift != 0.
// The flag math is the scalar MismatchFlags verbatim, per byte lane:
//   x = a ^ b;  flags = (x | x >> 1) & 0x55...;  popcount(flags)
__attribute__((target("sse2"))) size_t PackedScanSse2(const uint8_t* a,
                                                      const uint8_t* b,
                                                      int shift,
                                                      size_t nbytes) {
  const __m128i pair_low = _mm_set1_epi8(0x55);
  const __m128i low7 = _mm_set1_epi8(0x7F);
  const __m128i hi_keep = _mm_set1_epi8(static_cast<char>(0xFF << shift));
  const __m128i lo_keep = _mm_set1_epi8(static_cast<char>((1 << shift) - 1));
  size_t mismatches = 0;
  for (size_t i = 0; i < nbytes; i += 16) {
    __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb;
    if (shift == 0) {
      vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    } else {
      // Per-byte shifts emulated with 16-bit shifts + byte masks (the
      // bits that crossed a byte boundary inside the 16-bit lane are
      // masked off).
      __m128i b1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
      __m128i b2 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i + 1));
      __m128i hi = _mm_and_si128(_mm_slli_epi16(b1, shift), hi_keep);
      __m128i lo = _mm_and_si128(_mm_srli_epi16(b2, 8 - shift), lo_keep);
      vb = _mm_or_si128(hi, lo);
    }
    __m128i x = _mm_xor_si128(va, vb);
    __m128i x1 = _mm_and_si128(_mm_srli_epi16(x, 1), low7);
    __m128i ne = _mm_and_si128(_mm_or_si128(x, x1), pair_low);
    alignas(16) uint64_t words[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(words), ne);
    mismatches += static_cast<size_t>(__builtin_popcountll(words[0])) +
                  static_cast<size_t>(__builtin_popcountll(words[1]));
  }
  return mismatches;
}

// Same kernel at 256-bit width: 32 bytes (128 bases) per step.
__attribute__((target("avx2,popcnt"))) size_t PackedScanAvx2(
    const uint8_t* a, const uint8_t* b, int shift, size_t nbytes) {
  const __m256i pair_low = _mm256_set1_epi8(0x55);
  const __m256i low7 = _mm256_set1_epi8(0x7F);
  const __m256i hi_keep = _mm256_set1_epi8(static_cast<char>(0xFF << shift));
  const __m256i lo_keep =
      _mm256_set1_epi8(static_cast<char>((1 << shift) - 1));
  size_t mismatches = 0;
  for (size_t i = 0; i < nbytes; i += 32) {
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb;
    if (shift == 0) {
      vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    } else {
      __m256i b1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      __m256i b2 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 1));
      __m256i hi = _mm256_and_si256(_mm256_slli_epi16(b1, shift), hi_keep);
      __m256i lo =
          _mm256_and_si256(_mm256_srli_epi16(b2, 8 - shift), lo_keep);
      vb = _mm256_or_si256(hi, lo);
    }
    __m256i x = _mm256_xor_si256(va, vb);
    __m256i x1 = _mm256_and_si256(_mm256_srli_epi16(x, 1), low7);
    __m256i ne = _mm256_and_si256(_mm256_or_si256(x, x1), pair_low);
    alignas(32) uint64_t words[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(words), ne);
    mismatches += static_cast<size_t>(__builtin_popcountll(words[0])) +
                  static_cast<size_t>(__builtin_popcountll(words[1])) +
                  static_cast<size_t>(__builtin_popcountll(words[2])) +
                  static_cast<size_t>(__builtin_popcountll(words[3]));
  }
  return mismatches;
}

#endif  // CAFE_PACKED_SCAN_X86

}  // namespace

size_t PackedBulkMismatches(const uint8_t* a, const uint8_t* b, int shift,
                            size_t nbytes, SimdLevel level,
                            size_t* bytes_done) {
  CAFE_DCHECK_EQ(shift % 2, 0);
  CAFE_DCHECK_LT(shift, 8);
#if defined(CAFE_PACKED_SCAN_X86)
  if (level >= SimdLevel::kAvx2) {
    size_t blocked = nbytes & ~size_t{31};
    if (blocked != 0) {
      *bytes_done = blocked;
      return PackedScanAvx2(a, b, shift, blocked);
    }
  }
  if (level >= SimdLevel::kSse2) {
    size_t blocked = nbytes & ~size_t{15};
    if (blocked != 0) {
      *bytes_done = blocked;
      return PackedScanSse2(a, b, shift, blocked);
    }
  }
#else
  (void)a;
  (void)b;
  (void)shift;
  (void)nbytes;
  (void)level;
#endif
  *bytes_done = 0;
  return 0;
}

void AttachPackedScanMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    g_scans.store(nullptr, std::memory_order_release);
    g_simd_bases.store(nullptr, std::memory_order_release);
    g_scalar_bases.store(nullptr, std::memory_order_release);
    return;
  }
  g_scans.store(registry->GetCounter("coarse.packed_scans"),
                std::memory_order_release);
  g_simd_bases.store(registry->GetCounter("coarse.packed_simd_bases"),
                     std::memory_order_release);
  g_scalar_bases.store(registry->GetCounter("coarse.packed_scalar_bases"),
                       std::memory_order_release);
}

namespace internal {

void RecordPackedScan(size_t simd_bases, size_t scalar_bases) {
  obs::Counter* scans = g_scans.load(std::memory_order_acquire);
  if (scans == nullptr) return;
  scans->Increment();
  if (simd_bases != 0) {
    g_simd_bases.load(std::memory_order_acquire)->Add(simd_bases);
  }
  if (scalar_bases != 0) {
    g_scalar_bases.load(std::memory_order_acquire)->Add(scalar_bases);
  }
}

}  // namespace internal

}  // namespace cafe
