// Random-access stores of nucleotide sequences.
//
// SequenceStore keeps every sequence direct-coded (see direct_coding.h) in
// one contiguous blob with a byte-offset table, so sequences can be
// retrieved independently of insertion order — the access pattern of the
// fine-search phase, which pulls an arbitrary ranked subset of the
// collection. An uncompressed PlainSequenceStore (plain_store.h) with the
// same interface is the experimental control.

#ifndef CAFE_SEQSTORE_SEQUENCE_STORE_H_
#define CAFE_SEQSTORE_SEQUENCE_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "seqstore/packed_view.h"
#include "util/status.h"

namespace cafe {

/// Interface shared by the compressed and plain stores so that retrieval
/// experiments can swap the representation.
class SequenceStoreInterface {
 public:
  virtual ~SequenceStoreInterface() = default;

  /// Appends a sequence; returns its id (dense, starting at 0).
  [[nodiscard]] virtual Result<uint32_t> Append(std::string_view seq) = 0;

  /// Materializes sequence `id` into `*out`.
  [[nodiscard]] virtual Status Get(uint32_t id, std::string* out) const = 0;

  /// Materializes only bases [start, start+count) of sequence `id`
  /// (random access within a record; the direct-coded store does this
  /// without expanding the whole sequence).
  [[nodiscard]] virtual Status GetRange(uint32_t id, size_t start, size_t count,
                          std::string* out) const = 0;

  /// Length in bases of sequence `id` (no decode of the payload).
  [[nodiscard]] virtual Result<size_t> Length(uint32_t id) const = 0;

  virtual uint32_t NumSequences() const = 0;
  virtual uint64_t TotalBases() const = 0;

  /// Bytes of the stored representation (blob + offset table).
  virtual uint64_t StorageBytes() const = 0;
};

/// Direct-coded store.
class SequenceStore final : public SequenceStoreInterface {
 public:
  SequenceStore() { offsets_.push_back(0); }

  [[nodiscard]] Result<uint32_t> Append(std::string_view seq) override;
  [[nodiscard]] Status Get(uint32_t id, std::string* out) const override;
  [[nodiscard]] Status GetRange(uint32_t id, size_t start, size_t count,
                  std::string* out) const override;
  [[nodiscard]] Result<size_t> Length(uint32_t id) const override;
  uint32_t NumSequences() const override {
    return static_cast<uint32_t>(offsets_.size() - 1);
  }
  uint64_t TotalBases() const override { return total_bases_; }
  uint64_t StorageBytes() const override {
    return blob_.size() + offsets_.size() * sizeof(uint64_t);
  }

  /// Zero-decode view of sequence `id`'s 2-bit packed payload (wildcards
  /// appear as their first ambiguity-set base). The view borrows the
  /// store's memory: valid until the store is mutated or destroyed.
  [[nodiscard]] Result<PackedView> GetPackedView(uint32_t id) const;

  /// Serializes to a self-checking byte string (magic, version, CRC).
  void Serialize(std::string* out) const;

  /// Parses a string produced by Serialize.
  [[nodiscard]] static Result<SequenceStore> Deserialize(std::string_view data);

  [[nodiscard]] Status Save(const std::string& path) const;
  [[nodiscard]] static Result<SequenceStore> Load(const std::string& path);

 private:
  std::vector<uint8_t> blob_;
  std::vector<uint64_t> offsets_;  // offsets_[i]..offsets_[i+1] is seq i
  uint64_t total_bases_ = 0;
};

}  // namespace cafe

#endif  // CAFE_SEQSTORE_SEQUENCE_STORE_H_
