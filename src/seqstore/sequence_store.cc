#include "seqstore/sequence_store.h"

#include <cstring>

#include "seqstore/direct_coding.h"
#include "util/crc32.h"
#include "util/env.h"

namespace cafe {
namespace {

constexpr char kMagic[8] = {'C', 'A', 'F', 'S', 'E', 'Q', '1', '\0'};

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint64_t ReadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

Result<uint32_t> SequenceStore::Append(std::string_view seq) {
  Status s = DirectEncodeAppend(seq, &blob_);
  if (!s.ok()) return s;
  offsets_.push_back(blob_.size());
  total_bases_ += seq.size();
  return static_cast<uint32_t>(offsets_.size() - 2);
}

Status SequenceStore::Get(uint32_t id, std::string* out) const {
  if (id + 1 >= offsets_.size()) {
    return Status::NotFound("sequence id " + std::to_string(id));
  }
  uint64_t begin = offsets_[id];
  uint64_t end = offsets_[id + 1];
  return DirectDecode(blob_.data() + begin, end - begin, out);
}

Status SequenceStore::GetRange(uint32_t id, size_t start, size_t count,
                               std::string* out) const {
  if (id + 1 >= offsets_.size()) {
    return Status::NotFound("sequence id " + std::to_string(id));
  }
  uint64_t begin = offsets_[id];
  uint64_t end = offsets_[id + 1];
  return DirectDecodeRange(blob_.data() + begin, end - begin, start, count,
                           out);
}

Result<size_t> SequenceStore::Length(uint32_t id) const {
  if (id + 1 >= offsets_.size()) {
    return Status::NotFound("sequence id " + std::to_string(id));
  }
  size_t n = 0;
  Status s = DirectDecodeLength(blob_.data() + offsets_[id],
                                offsets_[id + 1] - offsets_[id], &n);
  if (!s.ok()) return s;
  return n;
}

Result<PackedView> SequenceStore::GetPackedView(uint32_t id) const {
  if (id + 1 >= offsets_.size()) {
    return Status::NotFound("sequence id " + std::to_string(id));
  }
  uint64_t begin = offsets_[id];
  uint64_t end = offsets_[id + 1];
  size_t length = 0, payload_offset = 0;
  CAFE_RETURN_IF_ERROR(DirectLocatePayload(blob_.data() + begin,
                                           end - begin, &length,
                                           &payload_offset));
  return PackedView(blob_.data() + begin + payload_offset, length);
}

void SequenceStore::Serialize(std::string* out) const {
  out->clear();
  out->append(kMagic, 8);
  AppendU64(out, offsets_.size() - 1);  // sequence count
  AppendU64(out, total_bases_);
  AppendU64(out, blob_.size());
  for (uint64_t off : offsets_) AppendU64(out, off);
  out->append(reinterpret_cast<const char*>(blob_.data()), blob_.size());
  uint32_t crc = Crc32(out->data(), out->size());
  char buf[4];
  std::memcpy(buf, &crc, 4);
  out->append(buf, 4);
}

Result<SequenceStore> SequenceStore::Deserialize(std::string_view data) {
  if (data.size() < 8 + 24 + 8 + 4) {
    return Status::Corruption("sequence store: too short");
  }
  if (std::memcmp(data.data(), kMagic, 8) != 0) {
    return Status::Corruption("sequence store: bad magic");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, data.data() + data.size() - 4, 4);
  if (Crc32(data.data(), data.size() - 4) != stored_crc) {
    return Status::Corruption("sequence store: checksum mismatch");
  }

  const char* p = data.data() + 8;
  uint64_t count = ReadU64(p);
  uint64_t total_bases = ReadU64(p + 8);
  uint64_t blob_size = ReadU64(p + 16);
  p += 24;
  if (count > data.size() || blob_size > data.size()) {
    return Status::Corruption("sequence store: counts too large");
  }
  uint64_t need = 8 + 24 + (count + 1) * 8 + blob_size + 4;
  if (data.size() != need) {
    return Status::Corruption("sequence store: size mismatch");
  }

  SequenceStore store;
  store.offsets_.resize(count + 1);
  for (uint64_t i = 0; i <= count; ++i) {
    store.offsets_[i] = ReadU64(p);
    p += 8;
  }
  if (store.offsets_[0] != 0 || store.offsets_[count] != blob_size) {
    return Status::Corruption("sequence store: bad offsets");
  }
  for (uint64_t i = 0; i < count; ++i) {
    if (store.offsets_[i] > store.offsets_[i + 1]) {
      return Status::Corruption("sequence store: unsorted offsets");
    }
  }
  store.blob_.assign(reinterpret_cast<const uint8_t*>(p),
                     reinterpret_cast<const uint8_t*>(p) + blob_size);
  store.total_bases_ = total_bases;
  return store;
}

Status SequenceStore::Save(const std::string& path) const {
  std::string data;
  Serialize(&data);
  return WriteStringToFile(path, data);
}

Result<SequenceStore> SequenceStore::Load(const std::string& path) {
  std::string data;
  Status s = ReadFileToString(path, &data);
  if (!s.ok()) return s;
  return Deserialize(data);
}

}  // namespace cafe
