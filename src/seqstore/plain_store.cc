#include "seqstore/plain_store.h"

#include "alphabet/nucleotide.h"

namespace cafe {

Result<uint32_t> PlainSequenceStore::Append(std::string_view seq) {
  if (!IsValidSequence(seq)) {
    return Status::InvalidArgument("non-IUPAC character in sequence");
  }
  blob_.append(seq);
  offsets_.push_back(blob_.size());
  return static_cast<uint32_t>(offsets_.size() - 2);
}

Status PlainSequenceStore::Get(uint32_t id, std::string* out) const {
  if (id + 1 >= offsets_.size()) {
    return Status::NotFound("sequence id " + std::to_string(id));
  }
  out->assign(blob_, offsets_[id], offsets_[id + 1] - offsets_[id]);
  return Status::OK();
}

Status PlainSequenceStore::GetRange(uint32_t id, size_t start,
                                    size_t count, std::string* out) const {
  if (id + 1 >= offsets_.size()) {
    return Status::NotFound("sequence id " + std::to_string(id));
  }
  size_t len = offsets_[id + 1] - offsets_[id];
  if (start + count > len) {
    return Status::OutOfRange("range exceeds sequence length");
  }
  out->assign(blob_, offsets_[id] + start, count);
  return Status::OK();
}

Result<size_t> PlainSequenceStore::Length(uint32_t id) const {
  if (id + 1 >= offsets_.size()) {
    return Status::NotFound("sequence id " + std::to_string(id));
  }
  return static_cast<size_t>(offsets_[id + 1] - offsets_[id]);
}

}  // namespace cafe
