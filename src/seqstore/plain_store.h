// Uncompressed (one ASCII byte per base) sequence store with the same
// interface as the direct-coded SequenceStore. Experimental control for
// the storage/retrieval comparison (experiment E7).

#ifndef CAFE_SEQSTORE_PLAIN_STORE_H_
#define CAFE_SEQSTORE_PLAIN_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "seqstore/sequence_store.h"

namespace cafe {

class PlainSequenceStore final : public SequenceStoreInterface {
 public:
  PlainSequenceStore() { offsets_.push_back(0); }

  [[nodiscard]] Result<uint32_t> Append(std::string_view seq) override;
  [[nodiscard]] Status Get(uint32_t id, std::string* out) const override;
  [[nodiscard]] Status GetRange(uint32_t id, size_t start, size_t count,
                  std::string* out) const override;
  [[nodiscard]] Result<size_t> Length(uint32_t id) const override;
  uint32_t NumSequences() const override {
    return static_cast<uint32_t>(offsets_.size() - 1);
  }
  uint64_t TotalBases() const override { return blob_.size(); }
  uint64_t StorageBytes() const override {
    return blob_.size() + offsets_.size() * sizeof(uint64_t);
  }

 private:
  std::string blob_;
  std::vector<uint64_t> offsets_;
};

}  // namespace cafe

#endif  // CAFE_SEQSTORE_PLAIN_STORE_H_
