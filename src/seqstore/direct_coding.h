// Direct coding of nucleotide sequences (the `cino` scheme from the CAFE
// lineage): lossless, model-free, byte-packed for fast decompression.
//
// Layout per sequence (bit stream, then byte-aligned payload):
//   gamma(L + 1)                      sequence length
//   gamma(w + 1)                      number of wildcard exceptions
//   [ golomb(gap_i; b(w, L)) ]*w      wildcard positions as 1-based gaps,
//                                     parameter derived from (w, L) so no
//                                     side information is stored
//   [ 4-bit IUPAC mask ]*w            the wildcard letters themselves
//   <pad to byte boundary>
//   ceil(L / 4) bytes                 2-bit base codes, 4 bases per byte,
//                                     wildcard slots hold the first base of
//                                     their ambiguity set (repaired from
//                                     the exception list on decode)
//
// The byte-aligned payload is what makes decompression fast: the decoder
// expands whole bytes through a 256-entry -> 4-char table instead of
// shifting bits. Wildcards — rare in practice (~0.02 % of GenBank bases) —
// cost a few bits each, so the scheme stays within a hair of 2 bits/base
// while remaining lossless.

#ifndef CAFE_SEQSTORE_DIRECT_CODING_H_
#define CAFE_SEQSTORE_DIRECT_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cafe {

/// Appends the direct coding of `seq` to `*out`. `seq` must be a valid
/// normalized IUPAC sequence (upper case; use NormalizeSequence /
/// IsValidSequence upstream). The encoding starts and ends on a byte
/// boundary, so encoded sequences can be concatenated and sliced by byte
/// offsets.
[[nodiscard]] Status DirectEncodeAppend(std::string_view seq, std::vector<uint8_t>* out);

/// Decodes one sequence from `data` (which must contain exactly the bytes
/// produced by one DirectEncodeAppend call — the store tracks per-sequence
/// byte ranges).
[[nodiscard]] Status DirectDecode(const uint8_t* data, size_t size, std::string* out);

/// Decodes only the length, without expanding the bases.
[[nodiscard]] Status DirectDecodeLength(const uint8_t* data, size_t size, size_t* length);

/// Decodes only bases [start, start+count) of one encoded sequence —
/// the byte-aligned 2-bit payload permits random access within a
/// sequence, so long records need not be fully expanded to align a
/// region. Fails with OutOfRange if the window exceeds the sequence.
[[nodiscard]] Status DirectDecodeRange(const uint8_t* data, size_t size, size_t start,
                         size_t count, std::string* out);

/// Locates the byte-aligned 2-bit payload inside one encoded sequence:
/// on success *length is the base count and *payload_offset the byte
/// offset of the packed bases within `data`. Enables zero-decode packed
/// comparison (seqstore/packed_view.h).
[[nodiscard]] Status DirectLocatePayload(const uint8_t* data, size_t size,
                           size_t* length, size_t* payload_offset);

/// Bytes DirectEncodeAppend would emit for `seq` (for sizing tables).
size_t DirectEncodedSize(std::string_view seq);

}  // namespace cafe

#endif  // CAFE_SEQSTORE_DIRECT_CODING_H_
