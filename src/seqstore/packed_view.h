// Byte-packed sequence comparison — the cino fast path.
//
// The direct-coded store keeps bases 2-bit packed; the follow-up work in
// the CAFE lineage (and later FSA-BLAST) exploits exactly this: "queries
// and collection sequences [are] compared four bases at a time" without
// decompression. PackedView exposes a sequence's packed payload in place
// (zero decode, zero copy), PackQuery packs a query string once, and the
// comparison kernels fetch 32 bases per 64-bit load:
//
//   x = bases_a ^ bases_b                 2 bits per base, 0 iff equal
//   ne = (x | x >> 1) & 0x5555...         1 flag bit per base
//   mismatches = popcount(ne)
//
// Wildcards are approximated by their first ambiguity-set base (exactly
// what the packed payload stores); at GenBank rates (~2e-4) this
// perturbs ungapped seed scores by well under one mismatch per seed.
// Alignment-grade scoring still goes through the IUPAC-aware scalar
// path.

#ifndef CAFE_SEQSTORE_PACKED_VIEW_H_
#define CAFE_SEQSTORE_PACKED_VIEW_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "align/xdrop.h"
#include "util/simd.h"
#include "util/status.h"

namespace cafe {

/// A 2-bit packed sequence: either a view into a store's payload or
/// backed by its own buffer (PackQuery).
class PackedView {
 public:
  PackedView() = default;

  /// View over an existing packed payload (4 bases/byte, MSB pair first).
  PackedView(const uint8_t* payload, size_t num_bases)
      : payload_(payload), size_(num_bases) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const uint8_t* payload() const { return payload_; }

  /// 2-bit code of base i (A=0 C=1 G=2 T=3).
  int BaseCode(size_t i) const {
    uint8_t byte = payload_[i >> 2];
    return (byte >> (2 * (3 - (i & 3)))) & 3;
  }

  /// Up to 32 bases starting at `pos`, packed 2 bits per base with base
  /// `pos` in the TOP bit pair. Bases past the end are zero-filled;
  /// `*valid` receives how many are real.
  uint64_t Extract64(size_t pos, int* valid) const;

  /// Expands to characters (no wildcard restoration — packed views carry
  /// the substituted bases).
  std::string ToString() const;

 private:
  const uint8_t* payload_ = nullptr;
  size_t size_ = 0;
};

/// Packs a query string; wildcards map to the first base of their
/// ambiguity set (as the store does). Fails on non-IUPAC characters.
class PackedQuery {
 public:
  [[nodiscard]] static Result<PackedQuery> FromString(std::string_view seq);

  const PackedView& view() const { return view_; }
  size_t size() const { return view_.size(); }

 private:
  std::vector<uint8_t> buffer_;
  PackedView view_;
};

/// Number of equal base pairs in a[apos, apos+len) vs b[bpos, bpos+len).
/// Long windows go through the vectorized bulk kernels
/// (seqstore/packed_scan_simd.h) at the given dispatch tier — a scalar
/// head aligns `a` to a byte, the kernel compares whole vector blocks,
/// and the scalar 32-bases-per-word loop finishes the tail. Every tier
/// returns the identical count (the scalar path is the oracle).
size_t PackedMatchCount(const PackedView& a, size_t apos,
                        const PackedView& b, size_t bpos, size_t len,
                        SimdLevel level);

/// Same, at ActiveSimdLevel().
size_t PackedMatchCount(const PackedView& a, size_t apos,
                        const PackedView& b, size_t bpos, size_t len);

/// Ungapped X-drop extension on packed sequences; semantics identical to
/// XDropExtend (align/xdrop.h) under pure match/mismatch scoring —
/// verified against it in tests — but fed by 64-bit packed loads.
UngappedSegment PackedXDropExtend(const PackedView& a, const PackedView& b,
                                  uint32_t a_pos, uint32_t b_pos,
                                  uint32_t seed_len, int match,
                                  int mismatch, int xdrop);

}  // namespace cafe

#endif  // CAFE_SEQSTORE_PACKED_VIEW_H_
