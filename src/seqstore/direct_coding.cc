#include "seqstore/direct_coding.h"

#include <array>

#include "alphabet/nucleotide.h"
#include "coding/elias.h"
#include "coding/golomb.h"
#include "util/bitio.h"

namespace cafe {
namespace {

// 256-entry expansion table: byte of four 2-bit codes -> four base chars.
struct ExpandTable {
  std::array<std::array<char, 4>, 256> rows;
  ExpandTable() {
    for (int b = 0; b < 256; ++b) {
      rows[b][0] = CodeToBase((b >> 6) & 3);
      rows[b][1] = CodeToBase((b >> 4) & 3);
      rows[b][2] = CodeToBase((b >> 2) & 3);
      rows[b][3] = CodeToBase(b & 3);
    }
  }
};

const ExpandTable& Expander() {
  static const ExpandTable table;
  return table;
}

// First base in an ambiguity mask, as a 2-bit code.
int MaskFirstBaseCode(uint8_t mask) {
  for (int i = 0; i < 4; ++i) {
    if (mask & (1u << i)) return i;
  }
  return 0;
}

}  // namespace

Status DirectEncodeAppend(std::string_view seq, std::vector<uint8_t>* out) {
  const size_t n = seq.size();

  // Collect wildcard exceptions first.
  std::vector<uint32_t> positions;
  std::vector<uint8_t> masks;
  for (size_t i = 0; i < n; ++i) {
    char c = seq[i];
    if (BaseToCode(c) >= 0) continue;
    uint8_t mask = IupacMask(c);
    if (mask == 0) {
      return Status::InvalidArgument(
          std::string("non-IUPAC character '") + c + "' at position " +
          std::to_string(i));
    }
    positions.push_back(static_cast<uint32_t>(i));
    masks.push_back(mask);
  }

  BitWriter w;
  coding::EncodeGamma(&w, static_cast<uint64_t>(n) + 1);
  coding::EncodeGamma(&w, static_cast<uint64_t>(positions.size()) + 1);
  if (!positions.empty()) {
    uint64_t b = coding::OptimalGolombParameter(positions.size(), n);
    uint64_t prev = 0;
    for (uint32_t p : positions) {
      coding::EncodeGolomb(&w, p + 1 - prev, b);
      prev = p + 1;
    }
    for (uint8_t m : masks) w.WriteBits(m, 4);
  }
  w.AlignToByte();

  // Byte-aligned 2-bit payload.
  uint8_t acc = 0;
  int filled = 0;
  for (size_t i = 0; i < n; ++i) {
    int code = BaseToCode(seq[i]);
    if (code < 0) code = MaskFirstBaseCode(IupacMask(seq[i]));
    acc = static_cast<uint8_t>((acc << 2) | code);
    if (++filled == 4) {
      w.WriteBits(acc, 8);
      acc = 0;
      filled = 0;
    }
  }
  if (filled != 0) {
    acc = static_cast<uint8_t>(acc << (2 * (4 - filled)));
    w.WriteBits(acc, 8);
  }

  std::vector<uint8_t> bytes = w.Finish();
  out->insert(out->end(), bytes.begin(), bytes.end());
  return Status::OK();
}

Status DirectDecode(const uint8_t* data, size_t size, std::string* out) {
  BitReader r(data, size);
  uint64_t n = coding::DecodeGamma(&r) - 1;
  uint64_t w = coding::DecodeGamma(&r) - 1;
  if (r.overflowed() || w > n) {
    return Status::Corruption("direct coding: bad header");
  }
  // Each exception costs several bits, so w can never exceed the input's
  // bit count; reject before sizing the exception arrays (guards decode
  // of adversarial buffers against huge allocations).
  if (w > size * 8) {
    return Status::Corruption("direct coding: exception count too large");
  }

  std::vector<uint32_t> positions(w);
  std::vector<uint8_t> masks(w);
  if (w > 0) {
    uint64_t b = coding::OptimalGolombParameter(w, n);
    uint64_t prev = 0;
    for (uint64_t i = 0; i < w; ++i) {
      uint64_t gap = coding::DecodeGolomb(&r, b);
      prev += gap;
      if (prev > n) return Status::Corruption("direct coding: bad position");
      positions[i] = static_cast<uint32_t>(prev - 1);
    }
    for (uint64_t i = 0; i < w; ++i) {
      masks[i] = static_cast<uint8_t>(r.ReadBits(4));
    }
  }
  r.AlignToByte();
  if (r.overflowed()) {
    return Status::Corruption("direct coding: truncated exceptions");
  }

  size_t payload_bytes = (n + 3) / 4;
  size_t payload_start = r.bit_position() / 8;
  if (payload_start + payload_bytes > size) {
    return Status::Corruption("direct coding: truncated payload");
  }

  out->resize(n);
  char* dst = out->data();
  const uint8_t* src = data + payload_start;
  const ExpandTable& table = Expander();
  size_t full = n / 4;
  for (size_t i = 0; i < full; ++i) {
    const auto& row = table.rows[src[i]];
    dst[0] = row[0];
    dst[1] = row[1];
    dst[2] = row[2];
    dst[3] = row[3];
    dst += 4;
  }
  size_t rem = n % 4;
  if (rem != 0) {
    const auto& row = table.rows[src[full]];
    for (size_t j = 0; j < rem; ++j) dst[j] = row[j];
  }

  for (uint64_t i = 0; i < w; ++i) {
    (*out)[positions[i]] = MaskToIupac(masks[i]);
  }
  return Status::OK();
}

Status DirectDecodeRange(const uint8_t* data, size_t size, size_t start,
                         size_t count, std::string* out) {
  BitReader r(data, size);
  uint64_t n = coding::DecodeGamma(&r) - 1;
  uint64_t w = coding::DecodeGamma(&r) - 1;
  if (r.overflowed() || w > n || w > size * 8) {
    return Status::Corruption("direct coding: bad header");
  }
  if (start + count > n) {
    return Status::OutOfRange("range [" + std::to_string(start) + ", " +
                              std::to_string(start + count) +
                              ") exceeds sequence length " +
                              std::to_string(n));
  }

  // Exceptions are in the header regardless; collect only those that
  // fall inside the window.
  std::vector<std::pair<uint32_t, uint8_t>> window_exceptions;
  if (w > 0) {
    uint64_t b = coding::OptimalGolombParameter(w, n);
    std::vector<uint64_t> positions(w);
    uint64_t prev = 0;
    for (uint64_t i = 0; i < w; ++i) {
      prev += coding::DecodeGolomb(&r, b);
      if (prev > n) return Status::Corruption("direct coding: bad position");
      positions[i] = prev - 1;
    }
    for (uint64_t i = 0; i < w; ++i) {
      uint8_t mask = static_cast<uint8_t>(r.ReadBits(4));
      if (positions[i] >= start && positions[i] < start + count) {
        window_exceptions.emplace_back(
            static_cast<uint32_t>(positions[i] - start), mask);
      }
    }
  }
  r.AlignToByte();
  if (r.overflowed()) {
    return Status::Corruption("direct coding: truncated exceptions");
  }

  size_t payload_start = r.bit_position() / 8;
  if (payload_start + (n + 3) / 4 > size) {
    return Status::Corruption("direct coding: truncated payload");
  }

  out->resize(count);
  const uint8_t* payload = data + payload_start;
  const ExpandTable& table = Expander();
  for (size_t i = 0; i < count; ++i) {
    size_t base_index = start + i;
    uint8_t byte = payload[base_index / 4];
    (*out)[i] = table.rows[byte][base_index % 4];
  }
  for (const auto& [offset, mask] : window_exceptions) {
    (*out)[offset] = MaskToIupac(mask);
  }
  return Status::OK();
}

Status DirectLocatePayload(const uint8_t* data, size_t size,
                           size_t* length, size_t* payload_offset) {
  BitReader r(data, size);
  uint64_t n = coding::DecodeGamma(&r) - 1;
  uint64_t w = coding::DecodeGamma(&r) - 1;
  if (r.overflowed() || w > n || w > size * 8) {
    return Status::Corruption("direct coding: bad header");
  }
  if (w > 0) {
    uint64_t b = coding::OptimalGolombParameter(w, n);
    uint64_t prev = 0;
    for (uint64_t i = 0; i < w; ++i) {
      prev += coding::DecodeGolomb(&r, b);
      if (prev > n) return Status::Corruption("direct coding: bad position");
    }
    r.SeekToBit(r.bit_position() + 4 * w);  // skip the IUPAC masks
  }
  r.AlignToByte();
  if (r.overflowed()) {
    return Status::Corruption("direct coding: truncated exceptions");
  }
  size_t start = r.bit_position() / 8;
  if (start + (n + 3) / 4 > size) {
    return Status::Corruption("direct coding: truncated payload");
  }
  *length = static_cast<size_t>(n);
  *payload_offset = start;
  return Status::OK();
}

Status DirectDecodeLength(const uint8_t* data, size_t size, size_t* length) {
  BitReader r(data, size);
  uint64_t n = coding::DecodeGamma(&r) - 1;
  if (r.overflowed()) return Status::Corruption("direct coding: bad header");
  *length = static_cast<size_t>(n);
  return Status::OK();
}

size_t DirectEncodedSize(std::string_view seq) {
  std::vector<uint8_t> tmp;
  Status s = DirectEncodeAppend(seq, &tmp);
  return s.ok() ? tmp.size() : 0;
}

}  // namespace cafe
