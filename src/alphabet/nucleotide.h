// The nucleotide alphabet: 2-bit codes for the four bases plus the full
// IUPAC ambiguity ("wildcard") alphabet that appears in real GenBank
// entries and which the direct-coded sequence store must preserve
// losslessly.
//
// Two encodings are used throughout the library:
//  * base code   — 2 bits, A=0 C=1 G=2 T=3; only for unambiguous bases.
//                  This is what the interval index and aligners consume.
//  * IUPAC mask  — 4 bits, one bit per base (A=1, C=2, G=4, T=8); every
//                  IUPAC letter maps to the set of bases it denotes
//                  (e.g. R = A|G, N = ACGT).

#ifndef CAFE_ALPHABET_NUCLEOTIDE_H_
#define CAFE_ALPHABET_NUCLEOTIDE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace cafe {

inline constexpr int kNumBases = 4;
inline constexpr char kBases[kNumBases] = {'A', 'C', 'G', 'T'};

/// Code for an unambiguous base; 0..3. Returns -1 for anything else
/// (including IUPAC wildcards). Accepts lower case; 'U' maps to T.
int BaseToCode(char c);

/// Inverse of BaseToCode. `code` must be in [0, 4).
char CodeToBase(int code);

/// True for A/C/G/T (either case, or U).
bool IsBase(char c);

/// True for any IUPAC nucleotide letter, wildcard or not (either case).
bool IsIupac(char c);

/// True for IUPAC letters that are ambiguous (not A/C/G/T/U).
bool IsWildcard(char c);

/// 4-bit base-set mask for an IUPAC letter; 0 for non-IUPAC characters.
uint8_t IupacMask(char c);

/// Canonical (upper-case) IUPAC letter for a non-zero 4-bit mask.
char MaskToIupac(uint8_t mask);

/// True if two IUPAC letters can denote a common base
/// (mask intersection non-empty). This is the wildcard-aware match rule
/// used by the IUPAC-aware scoring scheme.
bool IupacCompatible(char a, char b);

/// Watson-Crick complement of an IUPAC letter (complement of the mask);
/// returns the input unchanged for non-IUPAC characters.
char Complement(char c);

/// Reverse complement of a sequence.
std::string ReverseComplement(std::string_view seq);

/// True if every character of `seq` is an IUPAC letter.
bool IsValidSequence(std::string_view seq);

/// Upper-cases and maps U->T; non-IUPAC characters are left untouched
/// (validation is a separate concern, see IsValidSequence).
std::string NormalizeSequence(std::string_view seq);

}  // namespace cafe

#endif  // CAFE_ALPHABET_NUCLEOTIDE_H_
