#include "alphabet/spaced_seed.h"

namespace cafe {

Result<SpacedSeed> SpacedSeed::Parse(std::string_view pattern) {
  if (pattern.empty()) {
    return Status::InvalidArgument("spaced seed pattern is empty");
  }
  if (pattern.size() > static_cast<size_t>(kMaxSeedSpan)) {
    return Status::InvalidArgument("spaced seed span exceeds " +
                                   std::to_string(kMaxSeedSpan));
  }
  if (pattern.front() != '1' || pattern.back() != '1') {
    return Status::InvalidArgument(
        "spaced seed pattern must start and end with '1'");
  }
  SpacedSeed seed;
  seed.pattern_.assign(pattern);
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] == '1') {
      seed.care_.push_back(static_cast<uint8_t>(i));
    } else if (pattern[i] != '0') {
      return Status::InvalidArgument(
          "spaced seed pattern may contain only '0' and '1'");
    }
  }
  if (seed.weight() < kMinSeedWeight || seed.weight() > kMaxSeedWeight) {
    return Status::InvalidArgument(
        "spaced seed weight must be in [" + std::to_string(kMinSeedWeight) +
        ", " + std::to_string(kMaxSeedWeight) + "]");
  }
  return seed;
}

}  // namespace cafe
