// Spaced seeds: extraction patterns with "don't care" gaps.
//
// A contiguous interval of length n demands n consecutive matching
// bases; a single substitution destroys n overlapping intervals at
// once. A spaced seed keeps the same number of *care* positions (the
// weight, so term width and vocabulary are unchanged) but spreads them
// over a longer window, e.g. "1101101101101101" — mismatches at
// don't-care positions cost nothing, which is why spaced seeds hold
// sensitivity at the same k (PatternHunter; and the positional-index
// DNA engines of arXiv:1307.0194 / arXiv:1006.4114).
//
// A pattern is a string of '1' (care) and '0' (don't care). It must
// start and end with '1' (leading/trailing zeros only shift windows).
// The all-ones pattern of length n extracts exactly the same terms at
// the same positions as ForEachInterval(seq, n, stride, fn).

#ifndef CAFE_ALPHABET_SPACED_SEED_H_
#define CAFE_ALPHABET_SPACED_SEED_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "alphabet/nucleotide.h"
#include "util/status.h"

namespace cafe {

/// Inclusive bounds on the seed weight (number of care positions).
/// The weight plays the interval length's role — terms are 2*weight
/// bits — so these mirror kMin/MaxIntervalLength in index/interval.h.
inline constexpr int kMinSeedWeight = 4;
inline constexpr int kMaxSeedWeight = 16;

/// Upper bound on the window width (pattern length). Keeps windows
/// cheap to scan and the span serializable as a single byte.
inline constexpr int kMaxSeedSpan = 64;

/// A parsed, validated spaced-seed pattern.
class SpacedSeed {
 public:
  /// Parses a '1'/'0' pattern string. Fails unless the pattern starts
  /// and ends with '1', its weight is in [kMinSeedWeight,
  /// kMaxSeedWeight], and its span is at most kMaxSeedSpan.
  [[nodiscard]] static Result<SpacedSeed> Parse(std::string_view pattern);

  const std::string& pattern() const { return pattern_; }
  /// Window width (pattern length).
  int span() const { return static_cast<int>(pattern_.size()); }
  /// Number of care positions; terms are 2*weight() bits wide.
  int weight() const { return static_cast<int>(care_.size()); }
  /// Offsets of the care positions within the window, ascending.
  const std::vector<uint8_t>& care_offsets() const { return care_; }
  /// True for the all-ones pattern (equivalent to a contiguous
  /// interval of length weight()).
  bool contiguous() const { return span() == weight(); }

  /// Encodes the window starting at window[0]: the care-position bases
  /// packed MSB-first into a 2*weight()-bit term. Returns -1 when any
  /// care position holds a non-base (wildcard) character or the window
  /// does not fit. Don't-care positions may hold anything.
  int64_t Encode(std::string_view window) const {
    if (window.size() < pattern_.size()) return -1;
    uint32_t term = 0;
    for (uint8_t offset : care_) {
      int code = BaseToCode(window[offset]);
      if (code < 0) return -1;
      term = (term << 2) | static_cast<uint32_t>(code);
    }
    return term;
  }

 private:
  SpacedSeed() = default;

  std::string pattern_;
  std::vector<uint8_t> care_;
};

/// Calls `fn(position, term)` for every window of `seed` at positions
/// 0, stride, 2*stride, ... whose care positions are all unambiguous
/// bases. Matches ForEachInterval's contract: `position` is the window
/// start, terms are 2*weight-bit codes, wildcard-blocked windows are
/// skipped.
template <typename Fn>
void ForEachSpacedSeed(std::string_view seq, const SpacedSeed& seed,
                       uint32_t stride, Fn&& fn) {
  const size_t span = static_cast<size_t>(seed.span());
  if (stride == 0 || seq.size() < span) return;
  const size_t last = seq.size() - span;
  for (size_t start = 0; start <= last; start += stride) {
    int64_t term = seed.Encode(seq.substr(start));
    if (term >= 0) {
      fn(static_cast<uint32_t>(start), static_cast<uint32_t>(term));
    }
  }
}

}  // namespace cafe

#endif  // CAFE_ALPHABET_SPACED_SEED_H_
