#include "alphabet/nucleotide.h"

#include <array>
#include <cctype>

namespace cafe {
namespace {

// 4-bit masks: A=1, C=2, G=4, T=8.
constexpr uint8_t kA = 1, kC = 2, kG = 4, kT = 8;

struct Tables {
  std::array<int8_t, 256> base_code;
  std::array<uint8_t, 256> iupac_mask;
  std::array<char, 16> mask_to_char;

  constexpr Tables() : base_code(), iupac_mask(), mask_to_char() {
    for (auto& v : base_code) v = -1;
    for (auto& v : iupac_mask) v = 0;
    for (auto& v : mask_to_char) v = '?';

    auto set = [&](char upper, int code, uint8_t mask) {
      base_code[static_cast<unsigned char>(upper)] = static_cast<int8_t>(code);
      base_code[static_cast<unsigned char>(upper - 'A' + 'a')] =
          static_cast<int8_t>(code);
      iupac_mask[static_cast<unsigned char>(upper)] = mask;
      iupac_mask[static_cast<unsigned char>(upper - 'A' + 'a')] = mask;
    };

    set('A', 0, kA);
    set('C', 1, kC);
    set('G', 2, kG);
    set('T', 3, kT);
    set('U', 3, kT);  // RNA uracil is stored as T

    auto amb = [&](char upper, uint8_t mask) { set(upper, -1, mask); };
    amb('R', kA | kG);
    amb('Y', kC | kT);
    amb('S', kC | kG);
    amb('W', kA | kT);
    amb('K', kG | kT);
    amb('M', kA | kC);
    amb('B', kC | kG | kT);
    amb('D', kA | kG | kT);
    amb('H', kA | kC | kT);
    amb('V', kA | kC | kG);
    amb('N', kA | kC | kG | kT);

    // U shares T's code but should keep code 3 despite the -1 from amb();
    // re-assert the unambiguous entries after the ambiguity loop.
    base_code[static_cast<unsigned char>('A')] = 0;
    base_code[static_cast<unsigned char>('a')] = 0;
    base_code[static_cast<unsigned char>('C')] = 1;
    base_code[static_cast<unsigned char>('c')] = 1;
    base_code[static_cast<unsigned char>('G')] = 2;
    base_code[static_cast<unsigned char>('g')] = 2;
    base_code[static_cast<unsigned char>('T')] = 3;
    base_code[static_cast<unsigned char>('t')] = 3;
    base_code[static_cast<unsigned char>('U')] = 3;
    base_code[static_cast<unsigned char>('u')] = 3;

    mask_to_char[kA] = 'A';
    mask_to_char[kC] = 'C';
    mask_to_char[kG] = 'G';
    mask_to_char[kT] = 'T';
    mask_to_char[kA | kG] = 'R';
    mask_to_char[kC | kT] = 'Y';
    mask_to_char[kC | kG] = 'S';
    mask_to_char[kA | kT] = 'W';
    mask_to_char[kG | kT] = 'K';
    mask_to_char[kA | kC] = 'M';
    mask_to_char[kC | kG | kT] = 'B';
    mask_to_char[kA | kG | kT] = 'D';
    mask_to_char[kA | kC | kT] = 'H';
    mask_to_char[kA | kC | kG] = 'V';
    mask_to_char[kA | kC | kG | kT] = 'N';
  }
};

constexpr Tables kTables;

}  // namespace

int BaseToCode(char c) {
  return kTables.base_code[static_cast<unsigned char>(c)];
}

char CodeToBase(int code) { return kBases[code & 3]; }

bool IsBase(char c) { return BaseToCode(c) >= 0; }

bool IsIupac(char c) {
  return kTables.iupac_mask[static_cast<unsigned char>(c)] != 0;
}

bool IsWildcard(char c) { return IsIupac(c) && !IsBase(c); }

uint8_t IupacMask(char c) {
  return kTables.iupac_mask[static_cast<unsigned char>(c)];
}

char MaskToIupac(uint8_t mask) { return kTables.mask_to_char[mask & 0xF]; }

bool IupacCompatible(char a, char b) {
  return (IupacMask(a) & IupacMask(b)) != 0;
}

char Complement(char c) {
  uint8_t mask = IupacMask(c);
  if (mask == 0) return c;
  // Complement swaps A<->T (bits 1<->8) and C<->G (bits 2<->4): reverse the
  // 4-bit mask.
  uint8_t rev = static_cast<uint8_t>(((mask & 1) << 3) | ((mask & 2) << 1) |
                                     ((mask & 4) >> 1) | ((mask & 8) >> 3));
  return MaskToIupac(rev);
}

std::string ReverseComplement(std::string_view seq) {
  std::string out;
  out.reserve(seq.size());
  for (size_t i = seq.size(); i > 0; --i) {
    out.push_back(Complement(seq[i - 1]));
  }
  return out;
}

bool IsValidSequence(std::string_view seq) {
  for (char c : seq) {
    if (!IsIupac(c)) return false;
  }
  return true;
}

std::string NormalizeSequence(std::string_view seq) {
  std::string out;
  out.reserve(seq.size());
  for (char c : seq) {
    char u = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (u == 'U') u = 'T';
    out.push_back(u);
  }
  return out;
}

}  // namespace cafe
