// Quickstart: build a collection, index it, and run one partitioned query.
//
//   $ ./quickstart
//
// Walks through the minimal public-API flow: SequenceCollection ->
// IndexBuilder -> PartitionedSearch.

#include <cstdio>
#include <cstdlib>

#include "index/inverted_index.h"
#include "search/partitioned.h"

using cafe::IndexBuilder;
using cafe::IndexOptions;
using cafe::InvertedIndex;
using cafe::PartitionedSearch;
using cafe::Result;
using cafe::SearchOptions;
using cafe::SearchResult;
using cafe::SequenceCollection;

namespace {

void Die(const cafe::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  // 1. A tiny nucleotide database. Real applications would call
  //    SequenceCollection::FromFasta / ::Load instead.
  SequenceCollection collection;
  struct {
    const char* id;
    const char* seq;
  } records[] = {
      {"plasmid_a", "ACGTTGCAGGCATCAGGATTACAGGCATTGCAACGGTTACAGCATTGA"},
      {"plasmid_b", "TTTTGGGGCCCCAAAATTTTGGGGCCCCAAAATTTTGGGGCCCCAAAA"},
      {"phage_x", "GGCATCAGGATTACAGGCATTGCAACGGTTACAGCATTGACCGTAGGC"},
      {"random_1", "ACACACACACACACACACACACACACACACACACACACACACACACAC"},
  };
  for (const auto& r : records) {
    Result<uint32_t> id = collection.Add(r.id, "", r.seq);
    if (!id.ok()) Die(id.status());
  }
  std::printf("collection: %u sequences, %llu bases\n",
              collection.NumSequences(),
              static_cast<unsigned long long>(collection.TotalBases()));

  // 2. Build the compressed inverted interval index.
  IndexOptions index_options;
  index_options.interval_length = 8;  // 8-base intervals, 4^8 vocabulary
  Result<InvertedIndex> index = IndexBuilder::Build(collection, index_options);
  if (!index.ok()) Die(index.status());
  std::printf("index: %llu terms, %llu postings, %.1f bits/posting\n",
              static_cast<unsigned long long>(index->stats().num_terms),
              static_cast<unsigned long long>(index->stats().total_postings),
              index->stats().bits_per_posting);

  // 3. Partitioned search: coarse rank via the index, then local
  //    alignment on the survivors.
  PartitionedSearch engine(&collection, &*index);
  SearchOptions options;
  options.max_results = 3;
  options.traceback = true;

  const char* query = "GGCATCAGGATTACAGGCATTGCAACGGTTAC";
  Result<SearchResult> result = engine.Search(query, options);
  if (!result.ok()) Die(result.status());

  std::printf("\nquery: %s\n", query);
  std::printf("hits: %zu (aligned %llu of %u sequences)\n\n",
              result->hits.size(),
              static_cast<unsigned long long>(
                  result->stats.candidates_aligned),
              collection.NumSequences());
  for (const cafe::SearchHit& hit : result->hits) {
    std::printf("  %-10s score=%-4d coarse=%.0f\n",
                collection.Name(hit.seq_id).c_str(), hit.score,
                hit.coarse_score);
    std::string target;
    if (collection.GetSequence(hit.seq_id, &target).ok() &&
        !hit.alignment.ops.empty()) {
      std::printf("%s\n", hit.alignment.Format(query, target).c_str());
    }
  }
  return 0;
}
