// Index explorer: build indexes over a synthetic collection at several
// interval lengths and report the size/compression statistics that drive
// the paper's design discussion, plus a few sample postings lists.
//
//   $ ./index_explorer [megabases]

#include <cstdio>
#include <cstdlib>

#include "eval/table.h"
#include "index/index_stats.h"
#include "index/interval.h"
#include "index/inverted_index.h"
#include "sim/generator.h"
#include "util/stringutil.h"

using namespace cafe;

int main(int argc, char** argv) {
  double megabases = argc > 1 ? std::atof(argv[1]) : 2.0;

  sim::CollectionOptions copt;
  copt.target_bases = static_cast<uint64_t>(megabases * 1e6);
  copt.seed = 7;
  Result<SequenceCollection> col = sim::CollectionGenerator(copt).Generate();
  if (!col.ok()) {
    std::fprintf(stderr, "error: %s\n", col.status().ToString().c_str());
    return 1;
  }
  std::printf("collection: %u sequences, %s bases\n\n", col->NumSequences(),
              WithCommas(col->TotalBases()).c_str());

  eval::TablePrinter table({"n", "terms", "postings", "bits/posting",
                            "index bytes", "% of database"});
  for (int n : {6, 8, 10, 12}) {
    IndexOptions options;
    options.interval_length = n;
    Result<InvertedIndex> index = IndexBuilder::Build(*col, options);
    if (!index.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    const IndexStats& s = index->stats();
    uint64_t bytes = index->SerializedBytes();
    table.AddRow({std::to_string(n), WithCommas(s.num_terms),
                  WithCommas(s.total_postings),
                  FormatDouble(s.bits_per_posting, 2), WithCommas(bytes),
                  FormatDouble(100.0 * static_cast<double>(bytes) /
                                   static_cast<double>(col->TotalBases()),
                               1)});
  }
  table.Print();

  // Detailed view of one index.
  IndexOptions options;
  options.interval_length = 8;
  Result<InvertedIndex> index = IndexBuilder::Build(*col, options);
  if (!index.ok()) return 1;
  std::printf("\n%s", FormatIndexStats(*index, col->TotalBases()).c_str());

  // Show a few postings lists.
  std::printf("\nsample postings lists (interval -> [seq:pos ...]):\n");
  int shown = 0;
  index->directory().ForEachTerm([&](uint32_t term, const TermEntry& e) {
    if (shown >= 3 || e.doc_count < 3) return;
    ++shown;
    std::printf("  %s (df=%u):", DecodeInterval(term, 8).c_str(),
                e.doc_count);
    int printed = 0;
    index->ForEachPosting(term, [&](uint32_t doc, uint32_t,
                                    const uint32_t* positions,
                                    uint32_t npos) {
      if (printed >= 5) return;
      ++printed;
      if (npos > 0) {
        std::printf(" %u:%u", doc, positions[0]);
      } else {
        std::printf(" %u", doc);
      }
    });
    std::printf(" ...\n");
  });
  return 0;
}
