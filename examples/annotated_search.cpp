// Annotated search: both-strand querying with calibrated E-values — the
// full production-style result presentation (strand, bit score,
// expectation, alignment) over a synthetic collection with a homologue
// planted on the minus strand.
//
//   $ ./annotated_search

#include <cstdio>

#include "align/statistics.h"
#include "alphabet/nucleotide.h"
#include "eval/table.h"
#include "search/partitioned.h"
#include "sim/generator.h"
#include "util/stringutil.h"

using namespace cafe;

int main() {
  // A background collection plus two planted homologues: one on the
  // forward strand, one reverse-complemented (minus strand).
  sim::CollectionOptions copt;
  copt.num_sequences = 400;
  copt.seed = 77;
  sim::CollectionGenerator gen(copt);
  Result<SequenceCollection> col = gen.Generate();
  if (!col.ok()) return 1;

  std::string query = gen.RandomSequence(250);
  Result<uint32_t> plus = col->Add(
      "plus_strand", "forward homologue",
      gen.RandomSequence(300) + query + gen.RandomSequence(300));
  Result<uint32_t> minus = col->Add(
      "minus_strand", "reverse-complement homologue",
      gen.RandomSequence(300) + ReverseComplement(query) +
          gen.RandomSequence(300));
  if (!plus.ok() || !minus.ok()) return 1;

  IndexOptions iopt;
  iopt.interval_length = 8;
  Result<InvertedIndex> index = IndexBuilder::Build(*col, iopt);
  if (!index.ok()) return 1;

  // Calibrate Gumbel statistics for this scoring scheme once; in a real
  // deployment the parameters would be computed at index-build time and
  // stored beside the index.
  SearchOptions options;
  options.search_both_strands = true;
  options.max_results = 5;
  Result<GumbelParams> params = CalibrateGumbel(
      options.scoring, 250, 1000, /*trials=*/80, /*seed=*/7);
  if (!params.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 params.status().ToString().c_str());
    return 1;
  }
  options.statistics = *params;
  std::printf("Gumbel calibration: lambda=%.4f K=%.4f\n\n", params->lambda,
              params->k);

  PartitionedSearch engine(&*col, &*index);
  Result<SearchResult> result = SearchWithStrands(&engine, query, options);
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("query: %zu bases, both strands, %u sequences (%s bases)\n\n",
              query.size(), col->NumSequences(),
              WithCommas(col->TotalBases()).c_str());
  eval::TablePrinter table(
      {"sequence", "strand", "score", "bits", "evalue"});
  for (const SearchHit& hit : result->hits) {
    char evalue[32];
    std::snprintf(evalue, sizeof(evalue), "%.2e", hit.evalue);
    table.AddRow({col->Name(hit.seq_id),
                  hit.strand == Strand::kForward ? "+" : "-",
                  std::to_string(hit.score),
                  FormatDouble(hit.bit_score, 1), evalue});
  }
  table.Print();

  std::printf(
      "\nBoth planted homologues surface with essentially equal scores —\n"
      "the minus-strand copy is invisible to a forward-only search.\n");
  return 0;
}
