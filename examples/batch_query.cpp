// Batch querying with persistence: build a collection + index once, save
// both to disk, then stream a batch of queries against the loaded
// artifacts and print a per-query report — the shape of a production
// retrieval service built on the library. Queries are evaluated
// concurrently through SearchEngine::BatchSearch; results are identical
// at every thread count.
//
//   $ ./batch_query [num_queries] [threads]   (threads 0 = hardware)

#include <cstdio>
#include <cstdlib>

#include "eval/harness.h"
#include "search/partitioned.h"
#include "sim/workload.h"
#include "util/env.h"
#include "util/stringutil.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace cafe;

int main(int argc, char** argv) {
  uint32_t num_queries =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 10;
  uint32_t threads =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 0;

  const std::string col_path = TempDir() + "/cafe_batch_collection.bin";
  const std::string idx_path = TempDir() + "/cafe_batch_index.bin";

  // --- Build & persist phase (run once in a real deployment) ---
  {
    sim::CollectionOptions copt;
    copt.target_bases = 2'000'000;
    copt.seed = 99;
    Result<SequenceCollection> col =
        sim::CollectionGenerator(copt).Generate();
    if (!col.ok()) return 1;
    IndexOptions iopt;
    iopt.interval_length = 8;
    Result<InvertedIndex> index = IndexBuilder::Build(*col, iopt);
    if (!index.ok()) return 1;
    if (!col->Save(col_path).ok() || !index->Save(idx_path).ok()) {
      std::fprintf(stderr, "failed to persist artifacts\n");
      return 1;
    }
    std::printf("persisted %s (%s) and index (%s)\n", col_path.c_str(),
                HumanBytes(col->StorageBytes()).c_str(),
                HumanBytes(index->SerializedBytes()).c_str());
  }

  // --- Serving phase: load artifacts, answer queries ---
  WallTimer load_timer;
  Result<SequenceCollection> col = SequenceCollection::Load(col_path);
  Result<InvertedIndex> index = InvertedIndex::Load(idx_path);
  if (!col.ok() || !index.ok()) {
    std::fprintf(stderr, "failed to load artifacts\n");
    return 1;
  }
  std::printf("loaded collection + index in %.2fs\n\n",
              load_timer.Seconds());

  Result<std::vector<std::string>> queries =
      sim::SampleQueries(*col, num_queries, 300, 0.08, 123);
  if (!queries.ok()) return 1;

  PartitionedSearch engine(&*col, &*index);
  SearchOptions options;
  options.max_results = 5;
  options.threads = threads;
  std::printf("serving with %u worker thread(s)\n",
              threads == 0 ? ThreadPool::HardwareThreads() : threads);
  Result<eval::BatchResult> batch =
      eval::RunBatch(&engine, *queries, options);
  if (!batch.ok()) {
    std::fprintf(stderr, "error: %s\n", batch.status().ToString().c_str());
    return 1;
  }

  for (size_t i = 0; i < batch->results.size(); ++i) {
    const SearchResult& r = batch->results[i];
    std::printf("query %2zu: best=%-5d hits=%zu coarse=%.1fms fine=%.1fms\n",
                i, r.hits.empty() ? 0 : r.hits[0].score, r.hits.size(),
                r.stats.coarse_seconds * 1e3, r.stats.fine_seconds * 1e3);
  }
  std::printf("\n%zu queries in %.3fs wall (%.1f ms/query mean, "
              "%.1f queries/sec)\n",
              batch->results.size(), batch->wall_seconds,
              batch->mean_query_seconds * 1e3,
              batch->wall_seconds > 0
                  ? static_cast<double>(batch->results.size()) /
                        batch->wall_seconds
                  : 0.0);
  std::printf("postings decoded: %s, DP cells: %s\n",
              WithCommas(batch->aggregate.postings_decoded).c_str(),
              WithCommas(batch->aggregate.cells_computed).c_str());

  RemoveFile(col_path).IgnoreError();
  RemoveFile(idx_path).IgnoreError();
  return 0;
}
