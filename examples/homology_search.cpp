// Homology search scenario: a GenBank-like synthetic collection with
// planted homologues at known divergences; compare what the partitioned
// (indexed) engine and the exhaustive Smith-Waterman oracle retrieve.
//
//   $ ./homology_search [num_background_sequences]
//
// This is the workload the paper's introduction motivates: given a probe
// sequence, find the related entries in a large nucleotide database.

#include <cstdio>
#include <cstdlib>

#include "eval/metrics.h"
#include "search/exhaustive.h"
#include "search/partitioned.h"
#include "sim/workload.h"
#include "util/timer.h"

using namespace cafe;  // example code favours brevity

int main(int argc, char** argv) {
  uint32_t background = argc > 1
                            ? static_cast<uint32_t>(std::atoi(argv[1]))
                            : 300;

  sim::CollectionOptions copt;
  copt.num_sequences = background;
  copt.seed = 42;
  sim::WorkloadOptions wopt;
  wopt.num_queries = 5;
  wopt.query_length = 400;
  wopt.homologs_per_query = 4;
  wopt.min_homolog_divergence = 0.05;
  wopt.max_homolog_divergence = 0.25;
  wopt.seed = 43;

  std::printf("building collection (%u background sequences) ...\n",
              background);
  Result<sim::PlantedWorkload> wl = sim::BuildPlantedWorkload(copt, wopt);
  if (!wl.ok()) {
    std::fprintf(stderr, "error: %s\n", wl.status().ToString().c_str());
    return 1;
  }
  std::printf("collection: %u sequences, %llu bases\n",
              wl->collection.NumSequences(),
              static_cast<unsigned long long>(wl->collection.TotalBases()));

  IndexOptions iopt;
  iopt.interval_length = 8;
  WallTimer build_timer;
  Result<InvertedIndex> index = IndexBuilder::Build(wl->collection, iopt);
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }
  std::printf("index built in %.2fs (%llu postings)\n\n",
              build_timer.Seconds(),
              static_cast<unsigned long long>(
                  index->stats().total_postings));

  PartitionedSearch part(&wl->collection, &*index);
  ExhaustiveSearch exh(&wl->collection);
  SearchOptions options;
  options.max_results = 10;
  options.fine_candidates = 50;

  double part_time = 0, exh_time = 0, recall_sum = 0, overlap_sum = 0;
  for (size_t qi = 0; qi < wl->queries.size(); ++qi) {
    const sim::PlantedQuery& q = wl->queries[qi];
    Result<SearchResult> rp = part.Search(q.sequence, options);
    Result<SearchResult> re = exh.Search(q.sequence, options);
    if (!rp.ok() || !re.ok()) {
      std::fprintf(stderr, "search failed\n");
      return 1;
    }
    part_time += rp->stats.total_seconds;
    exh_time += re->stats.total_seconds;
    double recall =
        eval::RecallAtK(rp->hits, q.true_positives, options.max_results);
    double overlap = eval::OverlapAtK(rp->hits, re->hits, 5);
    recall_sum += recall;
    overlap_sum += overlap;

    std::printf("query %zu: %zu hits, planted-homologue recall %.2f, "
                "oracle-overlap@5 %.2f\n",
                qi, rp->hits.size(), recall, overlap);
    for (size_t i = 0; i < rp->hits.size() && i < 4; ++i) {
      const SearchHit& h = rp->hits[i];
      std::printf("    #%zu %-12s score=%d\n", i + 1,
                  wl->collection.Name(h.seq_id).c_str(), h.score);
    }
  }

  size_t n = wl->queries.size();
  std::printf("\npartitioned: %.3fs total, exhaustive: %.3fs total "
              "(%.1fx speedup)\n",
              part_time, exh_time, exh_time / part_time);
  std::printf("mean planted recall %.2f, mean oracle overlap %.2f\n",
              recall_sum / n, overlap_sum / n);
  return 0;
}
