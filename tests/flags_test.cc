#include "util/flags.h"

#include <gtest/gtest.h>

namespace cafe {
namespace {

TEST(FlagsTest, EqualsForm) {
  FlagParser p({"--name=value", "--count=7"});
  EXPECT_EQ(p.GetString("name", ""), "value");
  EXPECT_EQ(p.GetInt("count", 0), 7);
  EXPECT_TRUE(p.Finish().ok());
}

TEST(FlagsTest, SpaceForm) {
  FlagParser p({"--name", "value", "--count", "7"});
  EXPECT_EQ(p.GetString("name", ""), "value");
  EXPECT_EQ(p.GetInt("count", 0), 7);
  EXPECT_TRUE(p.Finish().ok());
}

TEST(FlagsTest, BooleanForms) {
  FlagParser p({"--verbose", "--color=false", "--fast=yes"});
  EXPECT_TRUE(p.GetBool("verbose"));
  EXPECT_FALSE(p.GetBool("color", true));
  EXPECT_TRUE(p.GetBool("fast"));
  EXPECT_FALSE(p.GetBool("absent", false));
  EXPECT_TRUE(p.GetBool("absent2", true));
  EXPECT_TRUE(p.Finish().ok());
}

TEST(FlagsTest, BooleanBeforeAnotherFlag) {
  FlagParser p({"--verbose", "--name=x"});
  EXPECT_TRUE(p.GetBool("verbose"));
  EXPECT_EQ(p.GetString("name", ""), "x");
  EXPECT_TRUE(p.Finish().ok());
}

TEST(FlagsTest, Positional) {
  FlagParser p({"search", "--top=5", "ACGT"});
  EXPECT_EQ(p.GetInt("top", 0), 5);
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "search");
  EXPECT_EQ(p.positional()[1], "ACGT");
}

TEST(FlagsTest, DoubleDashEndsFlagParsing) {
  FlagParser p({"--top=5", "--", "--not-a-flag"});
  EXPECT_EQ(p.GetInt("top", 0), 5);
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "--not-a-flag");
  EXPECT_TRUE(p.Finish().ok());
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagParser p({"--tpo=5"});
  EXPECT_EQ(p.GetInt("top", 0), 0);
  Status s = p.Finish();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("tpo"), std::string::npos);
}

TEST(FlagsTest, BadIntegerRejected) {
  FlagParser p({"--count=seven"});
  EXPECT_EQ(p.GetInt("count", 3), 3);
  EXPECT_TRUE(p.Finish().IsInvalidArgument());
}

TEST(FlagsTest, BadDoubleRejected) {
  FlagParser p({"--rate=fast"});
  EXPECT_EQ(p.GetDouble("rate", 0.5), 0.5);
  EXPECT_TRUE(p.Finish().IsInvalidArgument());
}

TEST(FlagsTest, BadBoolRejected) {
  FlagParser p({"--flag=maybe"});
  EXPECT_FALSE(p.GetBool("flag"));
  EXPECT_TRUE(p.Finish().IsInvalidArgument());
}

TEST(FlagsTest, DoubleValues) {
  FlagParser p({"--rate=0.25", "--neg=-1.5"});
  EXPECT_DOUBLE_EQ(p.GetDouble("rate", 0), 0.25);
  EXPECT_DOUBLE_EQ(p.GetDouble("neg", 0), -1.5);
  EXPECT_TRUE(p.Finish().ok());
}

TEST(FlagsTest, ArgcArgvConstructor) {
  const char* argv[] = {"prog", "--x=1", "pos"};
  FlagParser p(3, argv);
  EXPECT_EQ(p.GetInt("x", 0), 1);
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "pos");
}

TEST(FlagsTest, HasDetectsPresence) {
  FlagParser p({"--a=1"});
  EXPECT_TRUE(p.Has("a"));
  EXPECT_FALSE(p.Has("b"));
}

}  // namespace
}  // namespace cafe
