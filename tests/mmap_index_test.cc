#include "index/mmap_index.h"

#include <gtest/gtest.h>

#include <thread>
#include <tuple>
#include <vector>

#include "collection/collection.h"
#include "index/disk_index.h"
#include "index/index_reader.h"
#include "search/partitioned.h"
#include "sim/workload.h"
#include "util/env.h"
#include "util/mmap_file.h"

namespace cafe {
namespace {

struct Fixture {
  SequenceCollection collection;
  InvertedIndex index;
  std::string path;
  std::vector<sim::PlantedQuery> queries;
};

Fixture MakeFixture(IndexGranularity granularity =
                        IndexGranularity::kPositional) {
  sim::CollectionOptions copt;
  copt.num_sequences = 50;
  copt.length_mu = 6.0;
  copt.length_sigma = 0.4;
  copt.wildcard_rate = 0.001;
  copt.seed = 97;
  sim::WorkloadOptions wopt;
  wopt.num_queries = 3;
  wopt.query_length = 150;
  wopt.homologs_per_query = 3;
  wopt.seed = 98;
  Result<sim::PlantedWorkload> wl = sim::BuildPlantedWorkload(copt, wopt);
  EXPECT_TRUE(wl.ok());

  IndexOptions iopt;
  iopt.interval_length = 8;
  iopt.granularity = granularity;
  Result<InvertedIndex> index = IndexBuilder::Build(wl->collection, iopt);
  EXPECT_TRUE(index.ok());

  Fixture f;
  f.collection = std::move(wl->collection);
  f.index = std::move(*index);
  f.queries = std::move(wl->queries);
  f.path = TempDir() + "/cafe_mmap_index_test.idx";
  EXPECT_TRUE(f.index.Save(f.path).ok());
  return f;
}

using PostingTuple = std::tuple<uint32_t, uint32_t, std::vector<uint32_t>>;

std::vector<PostingTuple> Collect(const PostingSource& source,
                                  uint32_t term) {
  std::vector<PostingTuple> out;
  source.ScanPostings(term, [&](uint32_t doc, uint32_t tf,
                                const uint32_t* pos, uint32_t npos) {
    std::vector<uint32_t> p;
    if (pos != nullptr) p.assign(pos, pos + npos);
    out.emplace_back(doc, tf, std::move(p));
  });
  return out;
}

TEST(MmapFileTest, MissingFileFails) {
  EXPECT_TRUE(MmapFile::Open("/nonexistent/cafe.bin").status().IsIOError());
}

TEST(MmapFileTest, MapsFileContents) {
  std::string path = TempDir() + "/cafe_mmap_file_test.bin";
  ASSERT_TRUE(WriteStringToFile(path, "mapped bytes").ok());
  Result<MmapFile> file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->view(), "mapped bytes");
  EXPECT_EQ(file->size(), 12u);
  // Hints are best-effort and never fail, whatever the range.
  file->Advise(MmapFile::Advice::kSequential);
  file->Advise(MmapFile::Advice::kRandom, 4, 4);
  file->Advise(MmapFile::Advice::kWillNeed, 1 << 20, 8);
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(MmapFileTest, EmptyFileMapsEmpty) {
  std::string path = TempDir() + "/cafe_mmap_file_empty.bin";
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  Result<MmapFile> file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->size(), 0u);
  file->Advise(MmapFile::Advice::kSequential);  // no-op, no crash
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(MmapFileTest, MoveTransfersOwnership) {
  std::string path = TempDir() + "/cafe_mmap_file_move.bin";
  ASSERT_TRUE(WriteStringToFile(path, "abc").ok());
  Result<MmapFile> file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok());
  MmapFile moved = std::move(*file);
  EXPECT_EQ(moved.view(), "abc");
  EXPECT_EQ(file->size(), 0u);  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(MmapIndexTest, OpenParsesMetadata) {
  Fixture f = MakeFixture();
  Result<std::unique_ptr<MmapIndex>> mapped = MmapIndex::Open(f.path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ((*mapped)->num_docs(), f.index.num_docs());
  EXPECT_EQ((*mapped)->options().interval_length,
            f.index.options().interval_length);
  EXPECT_EQ((*mapped)->doc_lengths(), f.index.doc_lengths());
  EXPECT_EQ((*mapped)->stats().num_terms, f.index.stats().num_terms);
  EXPECT_EQ((*mapped)->stats().total_postings,
            f.index.stats().total_postings);
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

// The tentpole contract: every term in the vocabulary decodes to the
// same postings through the mmap path, the cached DiskIndex path (the
// reference oracle) and the in-memory index.
TEST(MmapIndexTest, FullVocabularyMatchesDiskIndexAndMemory) {
  Fixture f = MakeFixture();
  Result<std::unique_ptr<MmapIndex>> mapped = MmapIndex::Open(f.path);
  ASSERT_TRUE(mapped.ok());
  Result<std::unique_ptr<DiskIndex>> disk = DiskIndex::Open(f.path);
  ASSERT_TRUE(disk.ok());
  size_t checked = 0;
  f.index.directory().ForEachTerm([&](uint32_t term, const TermEntry&) {
    std::vector<PostingTuple> want = Collect(f.index, term);
    EXPECT_EQ(Collect(**mapped, term), want) << "mmap term " << term;
    EXPECT_EQ(Collect(**disk, term), want) << "disk term " << term;
    ++checked;
  });
  EXPECT_GT(checked, 100u);
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(MmapIndexTest, DocumentGranularityMatches) {
  Fixture f = MakeFixture(IndexGranularity::kDocument);
  Result<std::unique_ptr<MmapIndex>> mapped = MmapIndex::Open(f.path);
  ASSERT_TRUE(mapped.ok());
  f.index.directory().ForEachTerm([&](uint32_t term, const TermEntry&) {
    EXPECT_EQ(Collect(**mapped, term), Collect(f.index, term));
  });
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(MmapIndexTest, UnknownTermIsNoop) {
  Fixture f = MakeFixture();
  Result<std::unique_ptr<MmapIndex>> mapped = MmapIndex::Open(f.path);
  ASSERT_TRUE(mapped.ok());
  uint32_t missing = 0;
  while (f.index.FindTerm(missing) != nullptr) ++missing;
  EXPECT_TRUE(Collect(**mapped, missing).empty());
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(MmapIndexTest, PartitionedSearchOverMmapMatchesMemory) {
  Fixture f = MakeFixture();
  Result<std::unique_ptr<MmapIndex>> mapped = MmapIndex::Open(f.path);
  ASSERT_TRUE(mapped.ok());

  PartitionedSearch mem_engine(&f.collection, &f.index);
  PartitionedSearch mmap_engine(&f.collection, mapped->get());
  SearchOptions options;
  options.fine_candidates = 20;
  for (const sim::PlantedQuery& q : f.queries) {
    Result<SearchResult> rm = mem_engine.Search(q.sequence, options);
    Result<SearchResult> rx = mmap_engine.Search(q.sequence, options);
    ASSERT_TRUE(rm.ok() && rx.ok());
    ASSERT_EQ(rm->hits.size(), rx->hits.size());
    for (size_t i = 0; i < rm->hits.size(); ++i) {
      EXPECT_EQ(rm->hits[i].seq_id, rx->hits[i].seq_id);
      EXPECT_EQ(rm->hits[i].score, rx->hits[i].score);
    }
  }
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

// Lock-free reader contract under TSan: many threads decode
// overlapping term sets concurrently with no synchronization, and
// every one sees exactly the reference postings.
TEST(MmapIndexTest, ConcurrentReadersSeeIdenticalPostings) {
  Fixture f = MakeFixture();
  Result<std::unique_ptr<MmapIndex>> mapped = MmapIndex::Open(f.path);
  ASSERT_TRUE(mapped.ok());

  std::vector<uint32_t> terms;
  f.index.directory().ForEachTerm([&](uint32_t t, const TermEntry&) {
    if (terms.size() < 64) terms.push_back(t);
  });
  std::vector<PostingTuple> want;
  for (uint32_t t : terms) {
    std::vector<PostingTuple> one = Collect(f.index, t);
    want.insert(want.end(), one.begin(), one.end());
  }

  constexpr int kThreads = 4;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    readers.emplace_back([&, i] {
      for (int round = 0; round < 3; ++round) {
        std::vector<PostingTuple> got;
        for (uint32_t t : terms) {
          std::vector<PostingTuple> one = Collect(**mapped, t);
          got.insert(got.end(), one.begin(), one.end());
        }
        if (got != want) ++mismatches[i];
      }
    });
  }
  for (std::thread& r : readers) r.join();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(mismatches[i], 0) << "reader " << i;
  }
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(MmapIndexTest, HeapFootprintExcludesMapping) {
  Fixture f = MakeFixture();
  Result<std::unique_ptr<MmapIndex>> mapped = MmapIndex::Open(f.path);
  ASSERT_TRUE(mapped.ok());
  // The mapping covers the whole file; the heap holds only the
  // directory (the length table appears once metrics attach).
  EXPECT_GT((*mapped)->MappedBytes(), f.index.stats().postings_bits / 8);
  EXPECT_LE((*mapped)->MemoryBytes(),
            f.index.stats().directory_bytes + 4096);
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(MmapIndexTest, MetricsMirrorCountsScans) {
  Fixture f = MakeFixture();
  Result<std::unique_ptr<MmapIndex>> mapped = MmapIndex::Open(f.path);
  ASSERT_TRUE(mapped.ok());
  obs::MetricsRegistry registry;
  (*mapped)->AttachMetrics(&registry);
  uint32_t term = 0;
  f.index.directory().ForEachTerm([&](uint32_t t, const TermEntry&) {
    if (term == 0) term = t;
  });
  Collect(**mapped, term);
  Collect(**mapped, term);
  obs::MetricsSnapshot snap = registry.SnapshotData();
  EXPECT_EQ(snap.counters["mmap_index.lists_scanned"], 2u);
  EXPECT_GT(snap.counters["mmap_index.bytes_decoded"], 0u);
  EXPECT_EQ(snap.counters["mmap_index.maps"], 1u);
  EXPECT_EQ(snap.counters["mmap_index.bytes_mapped"],
            (*mapped)->MappedBytes());
  EXPECT_EQ(snap.histograms["mmap_index.first_touch_micros"].count, 1u);
  // Re-attaching must not double-count the open-time facts.
  (*mapped)->AttachMetrics(&registry);
  snap = registry.SnapshotData();
  EXPECT_EQ(snap.counters["mmap_index.maps"], 1u);
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(MmapIndexTest, IndexReaderSelectsEachMode) {
  Fixture f = MakeFixture();
  for (IndexMode mode :
       {IndexMode::kMemory, IndexMode::kCached, IndexMode::kMmap}) {
    Result<IndexReader> reader = IndexReader::Open(f.path, mode);
    ASSERT_TRUE(reader.ok()) << IndexModeName(mode);
    EXPECT_EQ(reader->mode(), mode);
    EXPECT_EQ(reader->source()->num_docs(), f.index.num_docs());
  }
  EXPECT_TRUE(ParseIndexMode("mmap").ok());
  EXPECT_TRUE(ParseIndexMode("disk").ok());  // legacy alias for cached
  EXPECT_TRUE(ParseIndexMode("sideways").status().IsInvalidArgument());
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(MmapIndexTest, MissingFileFails) {
  EXPECT_TRUE(MmapIndex::Open("/nonexistent/cafe.idx").status().IsIOError());
}

// Malformed inputs are rejected with Status — never a CHECK — at every
// truncation point: inside the header, inside the directory, inside
// the blob, and one byte short of the checksum.
TEST(MmapIndexTest, TruncatedFileFails) {
  Fixture f = MakeFixture();
  std::string data;
  ASSERT_TRUE(ReadFileToString(f.path, &data).ok());
  std::string bad_path = TempDir() + "/cafe_mmap_index_trunc.idx";
  for (size_t keep :
       {size_t{3}, size_t{16}, size_t{40}, data.size() / 2,
        data.size() - 1}) {
    ASSERT_TRUE(WriteStringToFile(bad_path, data.substr(0, keep)).ok());
    Result<std::unique_ptr<MmapIndex>> mapped = MmapIndex::Open(bad_path);
    EXPECT_TRUE(mapped.status().IsCorruption()) << "kept " << keep;
  }
  ASSERT_TRUE(RemoveFile(f.path).ok());
  ASSERT_TRUE(RemoveFile(bad_path).ok());
}

TEST(MmapIndexTest, CorruptFileFails) {
  Fixture f = MakeFixture();
  std::string data;
  ASSERT_TRUE(ReadFileToString(f.path, &data).ok());
  std::string bad_path = TempDir() + "/cafe_mmap_index_bad.idx";
  // A flipped bit anywhere — header, directory, blob — must trip the
  // CRC sweep before any postings decode touches the bytes.
  for (size_t at : {size_t{9}, data.size() / 2, data.size() - 8}) {
    std::string bad = data;
    bad[at] ^= 0x20;
    ASSERT_TRUE(WriteStringToFile(bad_path, bad).ok());
    EXPECT_TRUE(MmapIndex::Open(bad_path).status().IsCorruption())
        << "flip at " << at;
  }
  ASSERT_TRUE(RemoveFile(f.path).ok());
  ASSERT_TRUE(RemoveFile(bad_path).ok());
}

}  // namespace
}  // namespace cafe
