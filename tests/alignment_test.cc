#include "align/alignment.h"

#include <gtest/gtest.h>

namespace cafe {
namespace {

LocalAlignment Sample() {
  LocalAlignment a;
  a.score = 42;
  a.query_begin = 2;
  a.query_end = 8;
  a.target_begin = 10;
  a.target_end = 17;
  a.ops = {EditOp::kMatch,    EditOp::kMatch, EditOp::kMismatch,
           EditOp::kDeletion, EditOp::kMatch, EditOp::kMatch,
           EditOp::kInsertion, EditOp::kMatch};
  return a;
}

TEST(AlignmentTest, Counts) {
  LocalAlignment a = Sample();
  EXPECT_EQ(a.Matches(), 5u);
  EXPECT_EQ(a.Mismatches(), 1u);
  EXPECT_EQ(a.GapColumns(), 2u);
  EXPECT_EQ(a.QuerySpan(), 6u);
  EXPECT_EQ(a.TargetSpan(), 7u);
}

TEST(AlignmentTest, Identity) {
  LocalAlignment a = Sample();
  EXPECT_NEAR(a.Identity(), 5.0 / 8.0, 1e-12);
  LocalAlignment empty;
  EXPECT_EQ(empty.Identity(), 0.0);
}

TEST(AlignmentTest, CigarCompression) {
  LocalAlignment a = Sample();
  EXPECT_EQ(a.Cigar(), "2=1X1D2=1I1=");
  LocalAlignment empty;
  EXPECT_EQ(empty.Cigar(), "");
  LocalAlignment uniform;
  uniform.ops = std::vector<EditOp>(12, EditOp::kMatch);
  EXPECT_EQ(uniform.Cigar(), "12=");
}

TEST(AlignmentTest, FormatRowsConsistent) {
  //            0123456789
  std::string query = "xxACGTACGTxx";  // not real bases; format is literal
  std::string target = "yyyyACGTACGTyy";
  LocalAlignment a;
  a.score = 10;
  a.query_begin = 2;
  a.query_end = 10;
  a.target_begin = 4;
  a.target_end = 12;
  a.ops = std::vector<EditOp>(8, EditOp::kMatch);
  std::string text = a.Format(query, target, 60);
  EXPECT_NE(text.find("ACGTACGT"), std::string::npos);
  EXPECT_NE(text.find("||||||||"), std::string::npos);
  EXPECT_NE(text.find("score 10"), std::string::npos);
  EXPECT_NE(text.find("identity 100%"), std::string::npos);
}

TEST(AlignmentTest, FormatShowsGaps) {
  std::string query = "ACGT";
  std::string target = "AGT";
  LocalAlignment a;
  a.score = 5;
  a.query_begin = 0;
  a.query_end = 4;
  a.target_begin = 0;
  a.target_end = 3;
  a.ops = {EditOp::kMatch, EditOp::kInsertion, EditOp::kMatch,
           EditOp::kMatch};
  std::string text = a.Format(query, target);
  // Insertion shows a dash in the target row.
  EXPECT_NE(text.find("A-GT"), std::string::npos);
}

TEST(AlignmentTest, FormatWraps) {
  std::string query(100, 'A');
  std::string target(100, 'A');
  LocalAlignment a;
  a.score = 1;
  a.query_begin = 0;
  a.query_end = 100;
  a.target_begin = 0;
  a.target_end = 100;
  a.ops = std::vector<EditOp>(100, EditOp::kMatch);
  std::string text = a.Format(query, target, 40);
  // 100 columns at width 40 -> 3 blocks, each with a Q line.
  size_t q_lines = 0;
  size_t pos = 0;
  while ((pos = text.find("Q ", pos)) != std::string::npos) {
    ++q_lines;
    pos += 2;
  }
  EXPECT_EQ(q_lines, 3u);
}

}  // namespace
}  // namespace cafe
