#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace cafe {
namespace {

std::string TestPath(const char* name) {
  return TempDir() + "/cafe_env_test_" + name;
}

TEST(EnvTest, WriteReadRoundTrip) {
  std::string path = TestPath("rt");
  std::string payload = "hello";
  payload.push_back('\0');
  payload += "world\nbinary\xff ok";
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, payload);
  EXPECT_TRUE(RemoveFile(path).ok());
}

TEST(EnvTest, ReadMissingFileFails) {
  std::string data;
  Status s = ReadFileToString(TestPath("missing_nope"), &data);
  EXPECT_TRUE(s.IsIOError());
}

TEST(EnvTest, FileExists) {
  std::string path = TestPath("exists");
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(WriteStringToFile(path, "x").ok());
  EXPECT_TRUE(FileExists(path));
  ASSERT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
}

TEST(EnvTest, RemoveMissingIsOk) {
  EXPECT_TRUE(RemoveFile(TestPath("never_created")).ok());
}

TEST(EnvTest, OverwriteTruncates) {
  std::string path = TestPath("trunc");
  ASSERT_TRUE(WriteStringToFile(path, "a long first payload").ok());
  ASSERT_TRUE(WriteStringToFile(path, "short").ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "short");
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(EnvTest, GetEnvIntDefault) {
  unsetenv("CAFE_TEST_ENV_INT");
  EXPECT_EQ(GetEnvInt("CAFE_TEST_ENV_INT", 17), 17);
}

TEST(EnvTest, GetEnvIntParses) {
  setenv("CAFE_TEST_ENV_INT", "123", 1);
  EXPECT_EQ(GetEnvInt("CAFE_TEST_ENV_INT", 17), 123);
  setenv("CAFE_TEST_ENV_INT", "-5", 1);
  EXPECT_EQ(GetEnvInt("CAFE_TEST_ENV_INT", 17), -5);
  setenv("CAFE_TEST_ENV_INT", "junk", 1);
  EXPECT_EQ(GetEnvInt("CAFE_TEST_ENV_INT", 17), 17);
  unsetenv("CAFE_TEST_ENV_INT");
}

TEST(EnvTest, TempDirNonEmpty) {
  EXPECT_FALSE(TempDir().empty());
}

}  // namespace
}  // namespace cafe
