#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cafe {
namespace {

TEST(Crc32Test, EmptyIsZero) {
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32 (IEEE) check value.
  const std::string s = "123456789";
  EXPECT_EQ(Crc32(s.data(), s.size()), 0xCBF43926u);
  const std::string abc = "abc";
  EXPECT_EQ(Crc32(abc.data(), abc.size()), 0x352441C2u);
}

TEST(Crc32Test, ChunkedEqualsWhole) {
  const std::string s = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32(s.data(), s.size());
  uint32_t part = Crc32(s.data(), 10);
  part = Crc32(s.data() + 10, s.size() - 10, part);
  EXPECT_EQ(part, whole);
}

TEST(Crc32Test, SensitiveToSingleBitFlip) {
  std::string s = "hello world";
  uint32_t before = Crc32(s.data(), s.size());
  s[3] ^= 1;
  EXPECT_NE(Crc32(s.data(), s.size()), before);
}

TEST(Crc32Test, SensitiveToOrder) {
  const std::string a = "ab";
  const std::string b = "ba";
  EXPECT_NE(Crc32(a.data(), 2), Crc32(b.data(), 2));
}

// Bit-at-a-time reference implementation of the same polynomial. The
// production Crc32 dispatches between a bytewise table, a slice-by-8
// loop, and a PCLMULQDQ folding kernel depending on length and CPU;
// every path must agree with this oracle bit for bit.
uint32_t ReferenceCrc32(const uint8_t* p, size_t n, uint32_t seed) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c ^= p[i];
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
  }
  return c ^ 0xFFFFFFFFu;
}

TEST(Crc32Test, AllLengthsMatchReference) {
  // Cover every code path boundary: <8 (bytewise), 8..63 (slice-by-8),
  // 64.. (SIMD folding when available), including sizes straddling the
  // 16- and 64-byte fold granules, at several alignments and seeds.
  std::vector<uint8_t> buf(4096 + 16);
  uint32_t state = 0x12345678u;
  for (size_t i = 0; i < buf.size(); ++i) {
    state = state * 1664525u + 1013904223u;
    buf[i] = static_cast<uint8_t>(state >> 24);
  }
  const size_t sizes[] = {0,  1,  7,   8,   9,   15,  16,  17,   63,  64,
                          65, 79, 80,  127, 128, 129, 255, 1024, 4096};
  for (size_t size : sizes) {
    for (size_t align : {0u, 1u, 7u}) {
      for (uint32_t seed : {0u, 0xDEADBEEFu}) {
        const uint8_t* p = buf.data() + align;
        EXPECT_EQ(Crc32(p, size, seed), ReferenceCrc32(p, size, seed))
            << "size=" << size << " align=" << align << " seed=" << seed;
      }
    }
  }
}

TEST(Crc32Test, ChunkedEqualsWholeAcrossSimdThreshold) {
  std::vector<uint8_t> buf(1000);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i * 131 + 17);
  }
  const uint32_t whole = Crc32(buf.data(), buf.size());
  for (size_t split : {1u, 63u, 64u, 65u, 500u, 999u}) {
    uint32_t part = Crc32(buf.data(), split);
    part = Crc32(buf.data() + split, buf.size() - split, part);
    EXPECT_EQ(part, whole) << "split=" << split;
  }
}

}  // namespace
}  // namespace cafe
