#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace cafe {
namespace {

TEST(Crc32Test, EmptyIsZero) {
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32 (IEEE) check value.
  const std::string s = "123456789";
  EXPECT_EQ(Crc32(s.data(), s.size()), 0xCBF43926u);
  const std::string abc = "abc";
  EXPECT_EQ(Crc32(abc.data(), abc.size()), 0x352441C2u);
}

TEST(Crc32Test, ChunkedEqualsWhole) {
  const std::string s = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32(s.data(), s.size());
  uint32_t part = Crc32(s.data(), 10);
  part = Crc32(s.data() + 10, s.size() - 10, part);
  EXPECT_EQ(part, whole);
}

TEST(Crc32Test, SensitiveToSingleBitFlip) {
  std::string s = "hello world";
  uint32_t before = Crc32(s.data(), s.size());
  s[3] ^= 1;
  EXPECT_NE(Crc32(s.data(), s.size()), before);
}

TEST(Crc32Test, SensitiveToOrder) {
  const std::string a = "ab";
  const std::string b = "ba";
  EXPECT_NE(Crc32(a.data(), 2), Crc32(b.data(), 2));
}

}  // namespace
}  // namespace cafe
