// Runtime behaviour of cafe::Mutex / MutexLock / CondVar
// (src/util/mutex.h). The compile-time half of the contract — the
// thread safety annotations — is exercised by the negative-compile
// probes (tests/thread_safety_*_check.cc) and the static-analysis CI
// job; this test runs under TSan in CI to check the wrappers actually
// exclude, hand off, and wake correctly.

#include "util/mutex.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace cafe {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;  // guarded by mu (local, so annotated by convention)
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhenHeldAndSucceedsWhenFree) {
  Mutex mu;
  mu.Lock();
  // Held by this thread: another thread's TryLock must fail without
  // blocking. (Same-thread try_lock on a held std::mutex is UB, so the
  // probe runs on its own thread.)
  bool acquired = true;
  std::thread prober([&] { acquired = mu.TryLock(); });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();

  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, ManualLockUnlockExcludes) {
  Mutex mu;
  int stage = 0;
  mu.Lock();
  std::thread other([&] {
    mu.Lock();
    EXPECT_EQ(stage, 1);  // must not run until the main thread unlocks
    stage = 2;
    mu.Unlock();
  });
  stage = 1;
  mu.Unlock();
  other.join();
  EXPECT_EQ(stage, 2);
}

TEST(CondVarTest, ProducerConsumerHandoff) {
  Mutex mu;
  CondVar cv;
  std::vector<int> queue;  // guarded by mu
  bool done = false;       // guarded by mu
  constexpr int kItems = 1000;

  std::thread consumer([&] {
    int expected = 0;
    while (true) {
      int item = -1;
      {
        MutexLock lock(&mu);
        while (queue.empty() && !done) cv.Wait(&mu);
        if (queue.empty()) return;  // done, and fully drained
        item = queue.front();
        queue.erase(queue.begin());
      }
      EXPECT_EQ(item, expected);
      ++expected;
    }
  });

  for (int i = 0; i < kItems; ++i) {
    {
      MutexLock lock(&mu);
      queue.push_back(i);
    }
    cv.NotifyOne();
  }
  {
    MutexLock lock(&mu);
    done = true;
  }
  cv.NotifyAll();
  consumer.join();

  MutexLock lock(&mu);
  EXPECT_TRUE(queue.empty());
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;    // guarded by mu
  int awake = 0;      // guarded by mu
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      ++awake;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();

  MutexLock lock(&mu);
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace cafe
