#include "seqstore/sequence_store.h"

#include <gtest/gtest.h>

#include "alphabet/nucleotide.h"
#include "seqstore/plain_store.h"
#include "util/env.h"
#include "util/random.h"

namespace cafe {
namespace {

std::vector<std::string> SampleSequences() {
  return {"ACGT", "NNNACGTNNN", "T", "ACGTACGTACGTACG",
          "GGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGG", ""};
}

TEST(SequenceStoreTest, AppendAssignsDenseIds) {
  SequenceStore store;
  for (uint32_t i = 0; i < 5; ++i) {
    Result<uint32_t> id = store.Append("ACGT");
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, i);
  }
  EXPECT_EQ(store.NumSequences(), 5u);
  EXPECT_EQ(store.TotalBases(), 20u);
}

TEST(SequenceStoreTest, GetRoundTrip) {
  SequenceStore store;
  auto seqs = SampleSequences();
  for (const auto& s : seqs) ASSERT_TRUE(store.Append(s).ok());
  for (uint32_t i = 0; i < seqs.size(); ++i) {
    std::string out;
    ASSERT_TRUE(store.Get(i, &out).ok());
    EXPECT_EQ(out, seqs[i]) << i;
  }
}

TEST(SequenceStoreTest, RandomAccessOrderIndependent) {
  SequenceStore store;
  auto seqs = SampleSequences();
  for (const auto& s : seqs) ASSERT_TRUE(store.Append(s).ok());
  // Access in reverse and repeatedly.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint32_t i = static_cast<uint32_t>(seqs.size()); i-- > 0;) {
      std::string out;
      ASSERT_TRUE(store.Get(i, &out).ok());
      EXPECT_EQ(out, seqs[i]);
    }
  }
}

TEST(SequenceStoreTest, LengthWithoutDecode) {
  SequenceStore store;
  ASSERT_TRUE(store.Append("ACGTNACGTA").ok());
  Result<size_t> len = store.Length(0);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(*len, 10u);
}

TEST(SequenceStoreTest, OutOfRangeIdIsNotFound) {
  SequenceStore store;
  ASSERT_TRUE(store.Append("ACGT").ok());
  std::string out;
  EXPECT_TRUE(store.Get(1, &out).IsNotFound());
  EXPECT_TRUE(store.Length(7).status().IsNotFound());
}

TEST(SequenceStoreTest, RejectsInvalidSequence) {
  SequenceStore store;
  EXPECT_TRUE(store.Append("AC!GT").status().IsInvalidArgument());
  EXPECT_EQ(store.NumSequences(), 0u);
}

TEST(SequenceStoreTest, SerializeDeserializeRoundTrip) {
  SequenceStore store;
  auto seqs = SampleSequences();
  for (const auto& s : seqs) ASSERT_TRUE(store.Append(s).ok());
  std::string data;
  store.Serialize(&data);
  Result<SequenceStore> back = SequenceStore::Deserialize(data);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumSequences(), store.NumSequences());
  EXPECT_EQ(back->TotalBases(), store.TotalBases());
  for (uint32_t i = 0; i < seqs.size(); ++i) {
    std::string out;
    ASSERT_TRUE(back->Get(i, &out).ok());
    EXPECT_EQ(out, seqs[i]);
  }
}

TEST(SequenceStoreTest, DeserializeDetectsCorruption) {
  SequenceStore store;
  ASSERT_TRUE(store.Append("ACGTACGTACGT").ok());
  std::string data;
  store.Serialize(&data);

  // Flip a payload byte.
  std::string bad = data;
  bad[bad.size() / 2] ^= 0x40;
  EXPECT_TRUE(SequenceStore::Deserialize(bad).status().IsCorruption());

  // Truncate.
  EXPECT_TRUE(SequenceStore::Deserialize(
                  std::string_view(data).substr(0, data.size() - 3))
                  .status()
                  .IsCorruption());

  // Bad magic.
  bad = data;
  bad[0] = 'X';
  EXPECT_TRUE(SequenceStore::Deserialize(bad).status().IsCorruption());

  // Empty.
  EXPECT_TRUE(SequenceStore::Deserialize("").status().IsCorruption());
}

TEST(SequenceStoreTest, SaveLoadFile) {
  std::string path = TempDir() + "/cafe_store_test.bin";
  SequenceStore store;
  ASSERT_TRUE(store.Append("ACGTNNNN").ok());
  ASSERT_TRUE(store.Save(path).ok());
  Result<SequenceStore> back = SequenceStore::Load(path);
  ASSERT_TRUE(back.ok());
  std::string out;
  ASSERT_TRUE(back->Get(0, &out).ok());
  EXPECT_EQ(out, "ACGTNNNN");
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(SequenceStoreTest, LoadMissingFileIsIOError) {
  EXPECT_TRUE(SequenceStore::Load("/nonexistent/cafe.bin")
                  .status()
                  .IsIOError());
}

TEST(SequenceStoreTest, CompressionBeatsPlainStore) {
  Rng rng(3);
  SequenceStore packed;
  PlainSequenceStore plain;
  for (int i = 0; i < 50; ++i) {
    std::string seq(1000, 'A');
    for (char& c : seq) c = CodeToBase(static_cast<int>(rng.Uniform(4)));
    ASSERT_TRUE(packed.Append(seq).ok());
    ASSERT_TRUE(plain.Append(seq).ok());
  }
  // Direct coding stores ~2 bits/base vs 8: expect close to 4x smaller.
  EXPECT_LT(packed.StorageBytes() * 3, plain.StorageBytes());
}

TEST(SequenceStoreTest, GetRangeMatchesFullDecode) {
  Rng rng(12);
  SequenceStore store;
  std::string seq(777, 'A');
  const std::string wildcards = "NRY";
  for (char& c : seq) {
    c = rng.Bernoulli(0.03) ? wildcards[rng.Uniform(3)]
                            : CodeToBase(static_cast<int>(rng.Uniform(4)));
  }
  ASSERT_TRUE(store.Append(seq).ok());
  std::string window;
  for (int trial = 0; trial < 50; ++trial) {
    size_t start = rng.Uniform(seq.size());
    size_t count = rng.Uniform(seq.size() - start + 1);
    ASSERT_TRUE(store.GetRange(0, start, count, &window).ok());
    EXPECT_EQ(window, seq.substr(start, count))
        << "start=" << start << " count=" << count;
  }
}

TEST(SequenceStoreTest, GetRangeEdges) {
  SequenceStore store;
  ASSERT_TRUE(store.Append("ACGTNACGTA").ok());
  std::string out;
  ASSERT_TRUE(store.GetRange(0, 0, 10, &out).ok());
  EXPECT_EQ(out, "ACGTNACGTA");
  ASSERT_TRUE(store.GetRange(0, 4, 1, &out).ok());
  EXPECT_EQ(out, "N");
  ASSERT_TRUE(store.GetRange(0, 9, 1, &out).ok());
  EXPECT_EQ(out, "A");
  ASSERT_TRUE(store.GetRange(0, 3, 0, &out).ok());
  EXPECT_EQ(out, "");
  EXPECT_TRUE(store.GetRange(0, 5, 6, &out).IsOutOfRange());
  EXPECT_TRUE(store.GetRange(0, 11, 0, &out).IsOutOfRange());
  EXPECT_TRUE(store.GetRange(3, 0, 1, &out).IsNotFound());
}

TEST(PlainStoreTest, GetRangeMatchesDirectStore) {
  SequenceStore packed;
  PlainSequenceStore plain;
  std::string seq = "ACGTNRYACGTACGTNNACGT";
  ASSERT_TRUE(packed.Append(seq).ok());
  ASSERT_TRUE(plain.Append(seq).ok());
  std::string a, b;
  for (size_t start = 0; start < seq.size(); start += 3) {
    size_t count = std::min<size_t>(7, seq.size() - start);
    ASSERT_TRUE(packed.GetRange(0, start, count, &a).ok());
    ASSERT_TRUE(plain.GetRange(0, start, count, &b).ok());
    EXPECT_EQ(a, b);
  }
  EXPECT_TRUE(plain.GetRange(0, 20, 5, &a).IsOutOfRange());
}

TEST(PlainStoreTest, BasicRoundTrip) {
  PlainSequenceStore store;
  auto seqs = SampleSequences();
  for (const auto& s : seqs) ASSERT_TRUE(store.Append(s).ok());
  EXPECT_EQ(store.NumSequences(), seqs.size());
  for (uint32_t i = 0; i < seqs.size(); ++i) {
    std::string out;
    ASSERT_TRUE(store.Get(i, &out).ok());
    EXPECT_EQ(out, seqs[i]);
    Result<size_t> len = store.Length(i);
    ASSERT_TRUE(len.ok());
    EXPECT_EQ(*len, seqs[i].size());
  }
}

TEST(PlainStoreTest, RejectsInvalidAndOutOfRange) {
  PlainSequenceStore store;
  EXPECT_TRUE(store.Append("AC GT").status().IsInvalidArgument());
  std::string out;
  EXPECT_TRUE(store.Get(0, &out).IsNotFound());
}

TEST(StoreInterfaceTest, PolymorphicUse) {
  SequenceStore packed;
  PlainSequenceStore plain;
  for (SequenceStoreInterface* store :
       std::vector<SequenceStoreInterface*>{&packed, &plain}) {
    ASSERT_TRUE(store->Append("ACGTN").ok());
    std::string out;
    ASSERT_TRUE(store->Get(0, &out).ok());
    EXPECT_EQ(out, "ACGTN");
    EXPECT_EQ(store->TotalBases(), 5u);
  }
}

}  // namespace
}  // namespace cafe
