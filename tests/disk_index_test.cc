#include "index/disk_index.h"

#include <gtest/gtest.h>

#include <tuple>

#include "collection/collection.h"
#include "search/partitioned.h"
#include "sim/workload.h"
#include "util/env.h"

namespace cafe {
namespace {

struct Fixture {
  SequenceCollection collection;
  InvertedIndex index;
  std::string path;
  std::vector<sim::PlantedQuery> queries;
};

Fixture MakeFixture(IndexGranularity granularity =
                        IndexGranularity::kPositional) {
  sim::CollectionOptions copt;
  copt.num_sequences = 50;
  copt.length_mu = 6.0;
  copt.length_sigma = 0.4;
  copt.wildcard_rate = 0.001;
  copt.seed = 77;
  sim::WorkloadOptions wopt;
  wopt.num_queries = 3;
  wopt.query_length = 150;
  wopt.homologs_per_query = 3;
  wopt.seed = 78;
  Result<sim::PlantedWorkload> wl = sim::BuildPlantedWorkload(copt, wopt);
  EXPECT_TRUE(wl.ok());

  IndexOptions iopt;
  iopt.interval_length = 8;
  iopt.granularity = granularity;
  Result<InvertedIndex> index = IndexBuilder::Build(wl->collection, iopt);
  EXPECT_TRUE(index.ok());

  Fixture f;
  f.collection = std::move(wl->collection);
  f.index = std::move(*index);
  f.queries = std::move(wl->queries);
  f.path = TempDir() + "/cafe_disk_index_test.idx";
  EXPECT_TRUE(f.index.Save(f.path).ok());
  return f;
}

using PostingTuple = std::tuple<uint32_t, uint32_t, std::vector<uint32_t>>;

std::vector<PostingTuple> Collect(const PostingSource& source,
                                  uint32_t term) {
  std::vector<PostingTuple> out;
  source.ScanPostings(term, [&](uint32_t doc, uint32_t tf,
                                const uint32_t* pos, uint32_t npos) {
    std::vector<uint32_t> p;
    if (pos != nullptr) p.assign(pos, pos + npos);
    out.emplace_back(doc, tf, std::move(p));
  });
  return out;
}

TEST(DiskIndexTest, OpenParsesMetadata) {
  Fixture f = MakeFixture();
  Result<std::unique_ptr<DiskIndex>> disk = DiskIndex::Open(f.path);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ((*disk)->num_docs(), f.index.num_docs());
  EXPECT_EQ((*disk)->options().interval_length,
            f.index.options().interval_length);
  EXPECT_EQ((*disk)->doc_lengths(), f.index.doc_lengths());
  EXPECT_EQ((*disk)->stats().num_terms, f.index.stats().num_terms);
  EXPECT_EQ((*disk)->stats().total_postings,
            f.index.stats().total_postings);
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(DiskIndexTest, EveryTermMatchesInMemoryIndex) {
  Fixture f = MakeFixture();
  Result<std::unique_ptr<DiskIndex>> disk = DiskIndex::Open(f.path);
  ASSERT_TRUE(disk.ok());
  size_t checked = 0;
  f.index.directory().ForEachTerm([&](uint32_t term, const TermEntry&) {
    EXPECT_EQ(Collect(**disk, term), Collect(f.index, term))
        << "term " << term;
    ++checked;
  });
  EXPECT_GT(checked, 100u);
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(DiskIndexTest, DocumentGranularityMatches) {
  Fixture f = MakeFixture(IndexGranularity::kDocument);
  Result<std::unique_ptr<DiskIndex>> disk = DiskIndex::Open(f.path);
  ASSERT_TRUE(disk.ok());
  f.index.directory().ForEachTerm([&](uint32_t term, const TermEntry&) {
    EXPECT_EQ(Collect(**disk, term), Collect(f.index, term));
  });
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(DiskIndexTest, UnknownTermIsNoop) {
  Fixture f = MakeFixture();
  Result<std::unique_ptr<DiskIndex>> disk = DiskIndex::Open(f.path);
  ASSERT_TRUE(disk.ok());
  // Find a term with no postings.
  uint32_t missing = 0;
  while (f.index.FindTerm(missing) != nullptr) ++missing;
  EXPECT_TRUE(Collect(**disk, missing).empty());
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(DiskIndexTest, CacheHitsOnRepeatedAccess) {
  Fixture f = MakeFixture();
  Result<std::unique_ptr<DiskIndex>> disk = DiskIndex::Open(f.path);
  ASSERT_TRUE(disk.ok());
  uint32_t term = 0;
  f.index.directory().ForEachTerm([&](uint32_t t, const TermEntry&) {
    if (term == 0) term = t;
  });
  Collect(**disk, term);
  EXPECT_EQ((*disk)->cache_stats().misses, 1u);
  Collect(**disk, term);
  Collect(**disk, term);
  EXPECT_EQ((*disk)->cache_stats().hits, 2u);
  EXPECT_EQ((*disk)->cache_stats().misses, 1u);
  EXPECT_GT((*disk)->cache_stats().bytes_read, 0u);
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(DiskIndexTest, TinyCacheEvicts) {
  Fixture f = MakeFixture();
  // Capacity so small that every distinct term evicts the previous one.
  Result<std::unique_ptr<DiskIndex>> disk = DiskIndex::Open(f.path, 1);
  ASSERT_TRUE(disk.ok());
  std::vector<uint32_t> terms;
  f.index.directory().ForEachTerm([&](uint32_t t, const TermEntry&) {
    if (terms.size() < 10) terms.push_back(t);
  });
  for (uint32_t t : terms) Collect(**disk, t);
  EXPECT_GT((*disk)->cache_stats().evictions, 0u);
  // Results stay correct under eviction pressure.
  for (uint32_t t : terms) {
    EXPECT_EQ(Collect(**disk, t), Collect(f.index, t));
  }
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(DiskIndexTest, PartitionedSearchOverDiskIndexMatchesMemory) {
  Fixture f = MakeFixture();
  Result<std::unique_ptr<DiskIndex>> disk = DiskIndex::Open(f.path);
  ASSERT_TRUE(disk.ok());

  PartitionedSearch mem_engine(&f.collection, &f.index);
  PartitionedSearch disk_engine(&f.collection, disk->get());
  SearchOptions options;
  options.fine_candidates = 20;
  for (const sim::PlantedQuery& q : f.queries) {
    Result<SearchResult> rm = mem_engine.Search(q.sequence, options);
    Result<SearchResult> rd = disk_engine.Search(q.sequence, options);
    ASSERT_TRUE(rm.ok() && rd.ok());
    ASSERT_EQ(rm->hits.size(), rd->hits.size());
    for (size_t i = 0; i < rm->hits.size(); ++i) {
      EXPECT_EQ(rm->hits[i].seq_id, rd->hits[i].seq_id);
      EXPECT_EQ(rm->hits[i].score, rd->hits[i].score);
    }
  }
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(DiskIndexTest, MemoryFootprintExcludesBlob) {
  Fixture f = MakeFixture();
  Result<std::unique_ptr<DiskIndex>> disk = DiskIndex::Open(f.path, 1 << 10);
  ASSERT_TRUE(disk.ok());
  // Resident bytes are bounded by directory + length table + cache
  // capacity — independent of the postings blob volume.
  uint64_t bound = f.index.stats().directory_bytes +
                   f.index.stats().num_terms * 16 + (1 << 10) + 4096;
  EXPECT_LE((*disk)->MemoryBytes(), bound);
  ASSERT_TRUE(RemoveFile(f.path).ok());
}

TEST(DiskIndexTest, MissingFileFails) {
  EXPECT_TRUE(DiskIndex::Open("/nonexistent/cafe.idx").status().IsIOError());
}

TEST(DiskIndexTest, CorruptFileFails) {
  Fixture f = MakeFixture();
  std::string data;
  ASSERT_TRUE(ReadFileToString(f.path, &data).ok());
  data[data.size() / 2] ^= 0x20;
  std::string bad_path = TempDir() + "/cafe_disk_index_bad.idx";
  ASSERT_TRUE(WriteStringToFile(bad_path, data).ok());
  EXPECT_TRUE(DiskIndex::Open(bad_path).status().IsCorruption());
  ASSERT_TRUE(RemoveFile(f.path).ok());
  ASSERT_TRUE(RemoveFile(bad_path).ok());
}

}  // namespace
}  // namespace cafe
