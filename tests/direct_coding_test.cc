#include "seqstore/direct_coding.h"

#include <gtest/gtest.h>

#include "alphabet/nucleotide.h"
#include "util/random.h"

namespace cafe {
namespace {

std::string RoundTrip(const std::string& seq) {
  std::vector<uint8_t> buf;
  Status s = DirectEncodeAppend(seq, &buf);
  EXPECT_TRUE(s.ok()) << s.ToString();
  std::string out;
  s = DirectDecode(buf.data(), buf.size(), &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST(DirectCodingTest, EmptySequence) {
  EXPECT_EQ(RoundTrip(""), "");
}

TEST(DirectCodingTest, ShortSequences) {
  for (const char* s : {"A", "C", "G", "T", "AC", "ACG", "ACGT", "ACGTA"}) {
    EXPECT_EQ(RoundTrip(s), s);
  }
}

TEST(DirectCodingTest, PureBases) {
  EXPECT_EQ(RoundTrip("ACGTACGTACGTACGTACGT"), "ACGTACGTACGTACGTACGT");
}

TEST(DirectCodingTest, WildcardsPreservedLosslessly) {
  EXPECT_EQ(RoundTrip("ACGTN"), "ACGTN");
  EXPECT_EQ(RoundTrip("NNNNN"), "NNNNN");
  EXPECT_EQ(RoundTrip("NACGT"), "NACGT");
  EXPECT_EQ(RoundTrip("ACGRYSWKMBDHVNT"), "ACGRYSWKMBDHVNT");
}

TEST(DirectCodingTest, WildcardAtEveryPosition) {
  std::string base = "ACGTACGTACGT";
  for (size_t i = 0; i < base.size(); ++i) {
    std::string s = base;
    s[i] = 'N';
    EXPECT_EQ(RoundTrip(s), s) << "N at " << i;
  }
}

TEST(DirectCodingTest, RejectsNonIupac) {
  std::vector<uint8_t> buf;
  Status s = DirectEncodeAppend("ACXGT", &buf);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("position 2"), std::string::npos);
}

TEST(DirectCodingTest, CompressionNearTwoBitsPerBase) {
  std::string seq(10000, 'A');
  Rng rng(5);
  for (char& c : seq) c = CodeToBase(static_cast<int>(rng.Uniform(4)));
  size_t bytes = DirectEncodedSize(seq);
  // 2 bits/base = 2500 bytes; header overhead must stay tiny.
  EXPECT_LT(bytes, 2520u);
  EXPECT_GE(bytes, 2500u);
}

TEST(DirectCodingTest, WildcardOverheadModest) {
  std::string seq(10000, 'A');
  Rng rng(6);
  for (char& c : seq) c = CodeToBase(static_cast<int>(rng.Uniform(4)));
  // GenBank-like 0.02% wildcards.
  for (size_t i = 0; i < seq.size(); i += 500) seq[i] = 'N';
  size_t bytes = DirectEncodedSize(seq);
  EXPECT_LT(bytes, 2600u);
  EXPECT_EQ(RoundTrip(seq), seq);
}

TEST(DirectCodingTest, DecodeLengthWithoutPayload) {
  std::vector<uint8_t> buf;
  ASSERT_TRUE(DirectEncodeAppend("ACGTNACGT", &buf).ok());
  size_t len = 0;
  ASSERT_TRUE(DirectDecodeLength(buf.data(), buf.size(), &len).ok());
  EXPECT_EQ(len, 9u);
}

TEST(DirectCodingTest, ConcatenatedSequencesSliced) {
  std::vector<uint8_t> buf;
  std::vector<size_t> offsets = {0};
  std::vector<std::string> seqs = {"ACGT", "NNNACGTNNN", "T",
                                   "ACGTACGTACGTACG"};
  for (const auto& s : seqs) {
    ASSERT_TRUE(DirectEncodeAppend(s, &buf).ok());
    offsets.push_back(buf.size());
  }
  for (size_t i = 0; i < seqs.size(); ++i) {
    std::string out;
    ASSERT_TRUE(DirectDecode(buf.data() + offsets[i],
                             offsets[i + 1] - offsets[i], &out)
                    .ok());
    EXPECT_EQ(out, seqs[i]);
  }
}

TEST(DirectCodingTest, TruncatedPayloadDetected) {
  std::vector<uint8_t> buf;
  ASSERT_TRUE(DirectEncodeAppend("ACGTACGTACGTACGTACGT", &buf).ok());
  std::string out;
  Status s = DirectDecode(buf.data(), buf.size() - 2, &out);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(DirectCodingTest, EmptyBufferDetected) {
  std::string out;
  Status s = DirectDecode(nullptr, 0, &out);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(DirectCodingPropertyTest, RandomRoundTrip) {
  Rng rng(77);
  const std::string wildcards = "NRYSWKMBDHV";
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = rng.Uniform(500);
    std::string seq(len, 'A');
    for (char& c : seq) {
      if (rng.Bernoulli(0.05)) {
        c = wildcards[rng.Uniform(wildcards.size())];
      } else {
        c = CodeToBase(static_cast<int>(rng.Uniform(4)));
      }
    }
    EXPECT_EQ(RoundTrip(seq), seq);
  }
}

TEST(DirectCodingPropertyTest, EncodedSizeMatchesAppend) {
  Rng rng(88);
  for (int trial = 0; trial < 50; ++trial) {
    size_t len = rng.Uniform(300);
    std::string seq(len, 'A');
    for (char& c : seq) {
      c = rng.Bernoulli(0.02) ? 'N'
                              : CodeToBase(static_cast<int>(rng.Uniform(4)));
    }
    std::vector<uint8_t> buf;
    ASSERT_TRUE(DirectEncodeAppend(seq, &buf).ok());
    EXPECT_EQ(DirectEncodedSize(seq), buf.size());
  }
}

}  // namespace
}  // namespace cafe
