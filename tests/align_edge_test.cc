// Edge cases of the alignment kernels: degenerate sizes, boundary
// alignments, linear-gap schemes, wildcard-only inputs, and bands that
// miss the matrix entirely.

#include <gtest/gtest.h>

#include "align/smith_waterman.h"
#include "align/xdrop.h"
#include "alphabet/nucleotide.h"

namespace cafe {
namespace {

TEST(AlignEdgeTest, SingleCharacterSequences) {
  Aligner aligner;
  const int match = aligner.scheme().match;
  EXPECT_EQ(aligner.ScoreOnly("A", "A"), match);
  EXPECT_EQ(aligner.ScoreOnly("A", "C"), 0);
  EXPECT_EQ(aligner.ScoreOnly("A", "CCCCACCCC"), match);
  Result<LocalAlignment> a = aligner.Align("A", "A");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->score, match);
  EXPECT_EQ(a->Cigar(), "1=");
}

TEST(AlignEdgeTest, LinearGapScheme) {
  // gap_open == gap_extend degenerates affine to linear gaps; the
  // aligner must still agree with itself via traceback re-scoring.
  ScoringScheme s;
  s.gap_open = -2;
  s.gap_extend = -2;
  ASSERT_TRUE(s.Validate().ok());
  Aligner aligner(s);
  std::string t = "ACGTAAGCTATTGCACGGAT";
  std::string q = t.substr(0, 10) + "CCC" + t.substr(10);
  Result<LocalAlignment> a = aligner.Align(q, t);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->score, aligner.ScoreOnly(q, t));
  // Linear 3-base gap: 20 matches - 3*2.
  EXPECT_EQ(a->score, 20 * s.match + 3 * s.gap_extend);
}

TEST(AlignEdgeTest, AllWildcardQuery) {
  Aligner aligner;  // wildcard_score = 0
  EXPECT_EQ(aligner.ScoreOnly("NNNNNNNN", "ACGTACGT"), 0);
  Result<LocalAlignment> a = aligner.Align("NNNN", "ACGT");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->score, 0);
  EXPECT_TRUE(a->ops.empty());
}

TEST(AlignEdgeTest, PositiveWildcardScore) {
  ScoringScheme s;
  s.wildcard_score = 1;
  Aligner aligner(s);
  EXPECT_EQ(aligner.ScoreOnly("NNNN", "ACGT"), 4);
}

TEST(AlignEdgeTest, ExtremeAsymmetry) {
  Aligner aligner;
  std::string needle = "ACGTTGCA";
  std::string haystack(5000, 'T');
  haystack.replace(2500, needle.size(), needle);
  EXPECT_EQ(aligner.ScoreOnly(needle, haystack),
            static_cast<int>(needle.size()) * aligner.scheme().match);
  Result<LocalAlignment> a = aligner.Align(needle, haystack);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->target_begin, 2500u);
}

TEST(AlignEdgeTest, AlignmentAtSequenceBoundaries) {
  Aligner aligner;
  // Match region flush against both starts.
  Result<LocalAlignment> head = aligner.Align("ACGTACGT", "ACGTACGTTTTT");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->query_begin, 0u);
  EXPECT_EQ(head->target_begin, 0u);
  // Flush against both ends.
  Result<LocalAlignment> tail = aligner.Align("ACGTACGT", "TTTTACGTACGT");
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->query_end, 8u);
  EXPECT_EQ(tail->target_end, 12u);
}

TEST(AlignEdgeTest, BandMissesMatrixEntirely) {
  Aligner aligner;
  // Diagonal far outside [-|q|, |t|]: no cell is in range.
  EXPECT_EQ(aligner.BandedScore("ACGTACGT", "ACGTACGT", 1000, 4), 0);
  EXPECT_EQ(aligner.BandedScore("ACGTACGT", "ACGTACGT", -1000, 4), 0);
  Result<LocalAlignment> a =
      aligner.BandedAlign("ACGTACGT", "ACGTACGT", 1000, 4);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->score, 0);
}

TEST(AlignEdgeTest, IdenticalSequencesBandZero) {
  Aligner aligner;
  std::string s = "ACGGTTACAGCATTGACCGTAGGCATCAGG";
  EXPECT_EQ(aligner.BandedScore(s, s, 0, 0),
            static_cast<int>(s.size()) * aligner.scheme().match);
}

TEST(AlignEdgeTest, XDropZeroLengthArms) {
  ScoringScheme scheme;
  PairScoreTable table(scheme);
  // Seed occupying an entire sequence: nothing to extend.
  UngappedSegment seg = XDropExtend("ACGT", "ACGT", 0, 0, 4, table, 10);
  EXPECT_EQ(seg.score, 4 * scheme.match);
  EXPECT_EQ(seg.Length(), 4u);
}

TEST(AlignEdgeTest, XDropSeedAtEnds) {
  ScoringScheme scheme;
  PairScoreTable table(scheme);
  std::string q = "TTTTACGT";
  std::string t = "GGGGACGT";
  // Seed at the right edge of both sequences.
  UngappedSegment seg = XDropExtend(q, t, 4, 4, 4, table, 10);
  EXPECT_EQ(seg.query_end, 8u);
  EXPECT_EQ(seg.target_end, 8u);
  EXPECT_EQ(seg.score, 4 * scheme.match);
}

TEST(AlignEdgeTest, TracebackThroughLongGapRuns) {
  Aligner aligner;
  std::string t = "ACGTAAGCTATTGCACGGATACGTAAGCTA";
  std::string q = t.substr(0, 15) + std::string(12, 'C') + t.substr(15);
  Result<LocalAlignment> a = aligner.Align(q, t);
  ASSERT_TRUE(a.ok());
  // One 12-column insertion run in the CIGAR.
  EXPECT_NE(a->Cigar().find("12I"), std::string::npos) << a->Cigar();
  EXPECT_EQ(a->score, aligner.ScoreOnly(q, t));
}

TEST(AlignEdgeTest, BandedTracebackOnDriftingDiagonal) {
  Aligner aligner;
  std::string t = "ACGTAAGCTATTGCACGGATACGTAAGCTA";
  // Concatenation (rather than string::insert) sidesteps a GCC 12
  // -Wrestrict false positive (GCC PR105651). Equivalent to inserting
  // "GG" at offset 10 and "T" at offset 22 of the result.
  std::string q =
      t.substr(0, 10) + "GG" + t.substr(10, 10) + "T" + t.substr(20);
  Result<LocalAlignment> banded = aligner.BandedAlign(q, t, 0, 8);
  Result<LocalAlignment> full = aligner.Align(q, t);
  ASSERT_TRUE(banded.ok() && full.ok());
  EXPECT_EQ(banded->score, full->score);
  EXPECT_EQ(banded->Cigar(), full->Cigar());
}

}  // namespace
}  // namespace cafe
