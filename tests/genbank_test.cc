#include "collection/genbank.h"

#include <gtest/gtest.h>

#include "collection/collection.h"
#include "util/env.h"

namespace cafe {
namespace {

constexpr const char* kSample =
    "LOCUS       AB000001     45 bp    DNA     linear   PRI\n"
    "DEFINITION  Homo sapiens test gene,\n"
    "            complete cds.\n"
    "ACCESSION   AB000001\n"
    "FEATURES             Location/Qualifiers\n"
    "     source          1..45\n"
    "                     /organism=\"Homo sapiens\"\n"
    "ORIGIN\n"
    "        1 gatcctccat atacaacggt atctccacct caggtttaga\n"
    "       41 tctca\n"
    "//\n"
    "LOCUS       AB000002     10 bp    DNA\n"
    "ORIGIN\n"
    "        1 acgtnacgta\n"
    "//\n";

TEST(GenBankParseTest, ParsesRecords) {
  std::vector<FastaRecord> recs;
  ASSERT_TRUE(ParseGenBank(kSample, &recs).ok());
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].id, "AB000001");
  EXPECT_EQ(recs[0].description,
            "Homo sapiens test gene, complete cds.");
  EXPECT_EQ(recs[0].sequence.size(), 45u);
  EXPECT_EQ(recs[0].sequence.substr(0, 10), "GATCCTCCAT");
  EXPECT_EQ(recs[0].sequence.substr(40), "TCTCA");
  EXPECT_EQ(recs[1].id, "AB000002");
  EXPECT_EQ(recs[1].sequence, "ACGTNACGTA");
  EXPECT_EQ(recs[1].description, "");
}

TEST(GenBankParseTest, UracilMapped) {
  std::vector<FastaRecord> recs;
  ASSERT_TRUE(
      ParseGenBank("LOCUS X\nORIGIN\n 1 acgu\n//\n", &recs).ok());
  EXPECT_EQ(recs[0].sequence, "ACGT");
}

TEST(GenBankParseTest, EmptyInput) {
  std::vector<FastaRecord> recs = {FastaRecord{}};
  ASSERT_TRUE(ParseGenBank("", &recs).ok());
  EXPECT_TRUE(recs.empty());
}

TEST(GenBankParseTest, ErrorOnDataBeforeLocus) {
  std::vector<FastaRecord> recs;
  Status s = ParseGenBank("DEFINITION  orphan\n", &recs);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("line 1"), std::string::npos);
}

TEST(GenBankParseTest, ErrorOnEmptyLocusName) {
  std::vector<FastaRecord> recs;
  EXPECT_TRUE(ParseGenBank("LOCUS\nORIGIN\n//\n", &recs)
                  .IsInvalidArgument());
}

TEST(GenBankParseTest, ErrorOnInvalidBase) {
  std::vector<FastaRecord> recs;
  Status s =
      ParseGenBank("LOCUS Z\nORIGIN\n 1 acgz\n//\n", &recs);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("'z'"), std::string::npos);
  EXPECT_NE(s.message().find("Z"), std::string::npos);
}

TEST(GenBankParseTest, SkipsUnknownSections) {
  const char* text =
      "LOCUS A\n"
      "COMMENT     free text here\n"
      "            continued comment\n"
      "ORIGIN\n"
      " 1 acgt\n"
      "//\n";
  std::vector<FastaRecord> recs;
  ASSERT_TRUE(ParseGenBank(text, &recs).ok());
  EXPECT_EQ(recs[0].sequence, "ACGT");
  EXPECT_EQ(recs[0].description, "");
}

TEST(GenBankParseTest, MissingTrailingSlashesTolerated) {
  std::vector<FastaRecord> recs;
  ASSERT_TRUE(ParseGenBank("LOCUS A\nORIGIN\n 1 acgt\n", &recs).ok());
  EXPECT_EQ(recs[0].sequence, "ACGT");
}

TEST(GenBankWriteTest, RoundTrip) {
  std::vector<FastaRecord> recs = {
      {"SEQ1", "first record", std::string(137, 'A') + "CGTN"},
      {"SEQ2", "", "ACGT"},
  };
  std::string text = WriteGenBank(recs);
  std::vector<FastaRecord> back;
  ASSERT_TRUE(ParseGenBank(text, &back).ok()) << text;
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, recs[0].id);
  EXPECT_EQ(back[0].description, recs[0].description);
  EXPECT_EQ(back[0].sequence, recs[0].sequence);
  EXPECT_EQ(back[1].sequence, "ACGT");
}

TEST(GenBankFileTest, ReadFile) {
  std::string path = TempDir() + "/cafe_genbank_test.gb";
  ASSERT_TRUE(WriteStringToFile(path, kSample).ok());
  std::vector<FastaRecord> recs;
  ASSERT_TRUE(ReadGenBankFile(path, &recs).ok());
  EXPECT_EQ(recs.size(), 2u);
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(GenBankFileTest, MissingFileFails) {
  std::vector<FastaRecord> recs;
  EXPECT_TRUE(ReadGenBankFile("/nonexistent/x.gb", &recs).IsIOError());
}

TEST(GenBankIntegrationTest, FeedsCollection) {
  std::vector<FastaRecord> recs;
  ASSERT_TRUE(ParseGenBank(kSample, &recs).ok());
  Result<SequenceCollection> col = SequenceCollection::FromFasta(recs);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->NumSequences(), 2u);
  std::string seq;
  ASSERT_TRUE(col->GetSequence(1, &seq).ok());
  EXPECT_EQ(seq, "ACGTNACGTA");
}

}  // namespace
}  // namespace cafe
