// Cross-cutting randomized property tests that tie modules together:
// interval extraction vs a naive reference over wildcard-bearing
// sequences, alignment invariances (symmetry, reverse-complement,
// wildcard monotonicity), and coarse-ranking frame-width robustness.

#include <gtest/gtest.h>

#include "align/smith_waterman.h"
#include "alphabet/nucleotide.h"
#include "index/interval.h"
#include "search/coarse.h"
#include "search/partitioned.h"
#include "sim/generator.h"
#include "util/random.h"

namespace cafe {
namespace {

std::string RandomIupac(size_t len, double wildcard_rate, Rng* rng) {
  const std::string wildcards = "NRYSWKMBDHV";
  std::string s(len, 'A');
  for (char& c : s) {
    if (rng->Bernoulli(wildcard_rate)) {
      c = wildcards[rng->Uniform(wildcards.size())];
    } else {
      c = CodeToBase(static_cast<int>(rng->Uniform(4)));
    }
  }
  return s;
}

TEST(IntervalPropertyTest, ExtractionMatchesNaiveUnderWildcards) {
  Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    size_t len = rng.Uniform(200);
    double rate = rng.NextDouble() * 0.2;
    std::string seq = RandomIupac(len, rate, &rng);
    int n = 4 + static_cast<int>(rng.Uniform(6));
    uint32_t stride = 1 + static_cast<uint32_t>(rng.Uniform(4));

    // Naive reference: every aligned window re-encoded from scratch.
    std::vector<IntervalHit> expected;
    for (size_t pos = 0; pos + n <= seq.size(); pos += stride) {
      int64_t term = EncodeInterval(
          std::string_view(seq).substr(pos), n);
      if (term >= 0) {
        expected.push_back(
            {static_cast<uint32_t>(pos), static_cast<uint32_t>(term)});
      }
    }

    auto got = ExtractIntervals(seq, n, stride);
    ASSERT_EQ(got.size(), expected.size())
        << "trial " << trial << " n=" << n << " stride=" << stride;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].position, expected[i].position);
      EXPECT_EQ(got[i].term, expected[i].term);
    }
  }
}

TEST(AlignPropertyTest, ScoreIsSymmetric) {
  Rng rng(43);
  Aligner aligner;
  for (int trial = 0; trial < 40; ++trial) {
    std::string a = RandomIupac(10 + rng.Uniform(80), 0.02, &rng);
    std::string b = RandomIupac(10 + rng.Uniform(80), 0.02, &rng);
    EXPECT_EQ(aligner.ScoreOnly(a, b), aligner.ScoreOnly(b, a));
  }
}

TEST(AlignPropertyTest, ReverseComplementInvariance) {
  // Local alignment score is invariant under reverse-complementing BOTH
  // sequences (the alignment maps onto the other strand).
  Rng rng(44);
  Aligner aligner;
  for (int trial = 0; trial < 40; ++trial) {
    std::string a = RandomIupac(10 + rng.Uniform(80), 0.0, &rng);
    std::string b = RandomIupac(10 + rng.Uniform(80), 0.0, &rng);
    EXPECT_EQ(aligner.ScoreOnly(a, b),
              aligner.ScoreOnly(ReverseComplement(a), ReverseComplement(b)))
        << a << " / " << b;
  }
}

TEST(AlignPropertyTest, ScoreBoundedByPerfectMatch) {
  Rng rng(45);
  Aligner aligner;
  int match = aligner.scheme().match;
  for (int trial = 0; trial < 40; ++trial) {
    std::string a = RandomIupac(5 + rng.Uniform(60), 0.05, &rng);
    std::string b = RandomIupac(5 + rng.Uniform(60), 0.05, &rng);
    int bound =
        match * static_cast<int>(std::min(a.size(), b.size()));
    int score = aligner.ScoreOnly(a, b);
    EXPECT_GE(score, 0);
    EXPECT_LE(score, bound);
  }
}

TEST(AlignPropertyTest, SubstringAlwaysScoresFullMatch) {
  Rng rng(46);
  Aligner aligner;
  for (int trial = 0; trial < 30; ++trial) {
    std::string host = RandomIupac(200, 0.0, &rng);
    size_t len = 10 + rng.Uniform(50);
    size_t start = rng.Uniform(host.size() - len);
    std::string probe = host.substr(start, len);
    EXPECT_GE(aligner.ScoreOnly(probe, host),
              aligner.scheme().match * static_cast<int>(len));
  }
}

TEST(AlignPropertyTest, BandedNeverExceedsFull) {
  Rng rng(47);
  Aligner aligner;
  for (int trial = 0; trial < 30; ++trial) {
    std::string a = RandomIupac(20 + rng.Uniform(60), 0.01, &rng);
    std::string b = RandomIupac(20 + rng.Uniform(60), 0.01, &rng);
    int full = aligner.ScoreOnly(a, b);
    int64_t diag = static_cast<int64_t>(rng.UniformInt(-20, 20));
    int band = static_cast<int>(rng.Uniform(30));
    EXPECT_LE(aligner.BandedScore(a, b, diag, band), full);
  }
}

TEST(CoarsePropertyTest, FrameWidthDoesNotChangeTopContainingDoc) {
  // Whatever the frame width, a sequence containing the query verbatim
  // must outrank unrelated sequences.
  sim::CollectionOptions copt;
  copt.num_sequences = 20;
  copt.seed = 48;
  sim::CollectionGenerator gen(copt);
  SequenceCollection col = *gen.Generate();
  std::string query = gen.RandomSequence(150);
  uint32_t target =
      *col.Add("target", "", gen.RandomSequence(100) + query +
                                 gen.RandomSequence(100));
  IndexOptions iopt;
  iopt.interval_length = 8;
  InvertedIndex index = *IndexBuilder::Build(col, iopt);
  CoarseRanker ranker(&index);
  for (uint32_t frame_width : {4u, 8u, 16u, 64u, 256u}) {
    SearchStats stats;
    auto cands = ranker.Rank(query, CoarseRankMode::kDiagonal, 5,
                             frame_width, &stats);
    ASSERT_FALSE(cands.empty()) << "frame width " << frame_width;
    EXPECT_EQ(cands[0].doc, target) << "frame width " << frame_width;
  }
}

TEST(StorePropertyTest, CollectionRoundTripsArbitraryIupac) {
  Rng rng(49);
  for (int trial = 0; trial < 20; ++trial) {
    SequenceCollection col;
    std::vector<std::string> originals;
    size_t count = 1 + rng.Uniform(10);
    for (size_t i = 0; i < count; ++i) {
      originals.push_back(RandomIupac(rng.Uniform(400), 0.1, &rng));
      ASSERT_TRUE(
          col.Add("s" + std::to_string(i), "", originals.back()).ok());
    }
    std::string data;
    col.Serialize(&data);
    Result<SequenceCollection> back = SequenceCollection::Deserialize(data);
    ASSERT_TRUE(back.ok());
    std::string seq;
    for (size_t i = 0; i < count; ++i) {
      ASSERT_TRUE(back->GetSequence(static_cast<uint32_t>(i), &seq).ok());
      EXPECT_EQ(seq, originals[i]);
    }
  }
}

}  // namespace
}  // namespace cafe
