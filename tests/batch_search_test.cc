// Determinism of the parallel execution layer: BatchSearch and the
// parallel fine phase must return bit-identical rankings at every
// thread count, and the parallel index build must produce the same
// index bytes as the sequential build.

#include <gtest/gtest.h>

#include "index/disk_index.h"
#include "index/index_merge.h"
#include "search/exhaustive.h"
#include "search/partitioned.h"
#include "sim/generator.h"
#include "sim/workload.h"
#include "util/env.h"

namespace cafe {
namespace {

struct Fixture {
  SequenceCollection collection;
  InvertedIndex index;
  std::vector<std::string> queries;
};

Fixture MakeFixture(uint32_t num_queries = 6) {
  sim::CollectionOptions copt;
  copt.num_sequences = 80;
  copt.length_mu = 6.0;
  copt.length_sigma = 0.4;
  copt.seed = 4242;
  Result<SequenceCollection> col =
      sim::CollectionGenerator(copt).Generate();
  EXPECT_TRUE(col.ok()) << col.status().ToString();

  IndexOptions iopt;
  iopt.interval_length = 8;
  Result<InvertedIndex> index = IndexBuilder::Build(*col, iopt);
  EXPECT_TRUE(index.ok()) << index.status().ToString();

  Result<std::vector<std::string>> queries =
      sim::SampleQueries(*col, num_queries, 220, 0.08, 17);
  EXPECT_TRUE(queries.ok()) << queries.status().ToString();

  Fixture f;
  f.collection = std::move(*col);
  f.index = std::move(*index);
  f.queries = std::move(*queries);
  return f;
}

// Compares everything deterministic about two results: the ranking and
// the work counters. Timings are excluded (they are the only fields
// parallelism may change).
void ExpectSameResult(const SearchResult& a, const SearchResult& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (size_t h = 0; h < a.hits.size(); ++h) {
    EXPECT_EQ(a.hits[h].seq_id, b.hits[h].seq_id) << "hit " << h;
    EXPECT_EQ(a.hits[h].score, b.hits[h].score) << "hit " << h;
    EXPECT_EQ(a.hits[h].coarse_score, b.hits[h].coarse_score)
        << "hit " << h;
    EXPECT_EQ(a.hits[h].strand, b.hits[h].strand) << "hit " << h;
    EXPECT_EQ(a.hits[h].bit_score, b.hits[h].bit_score) << "hit " << h;
    EXPECT_EQ(a.hits[h].evalue, b.hits[h].evalue) << "hit " << h;
  }
  EXPECT_EQ(a.stats.candidates_ranked, b.stats.candidates_ranked);
  EXPECT_EQ(a.stats.candidates_aligned, b.stats.candidates_aligned);
  EXPECT_EQ(a.stats.cells_computed, b.stats.cells_computed);
  EXPECT_EQ(a.stats.postings_decoded, b.stats.postings_decoded);
}

void ExpectSameBatch(const std::vector<SearchResult>& a,
                     const std::vector<SearchResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    ExpectSameResult(a[i], b[i]);
  }
}

TEST(BatchSearchTest, OneVsManyThreadsIdenticalResults) {
  Fixture f = MakeFixture();
  PartitionedSearch engine(&f.collection, &f.index);
  SearchOptions options;
  options.max_results = 10;
  options.fine_candidates = 30;

  options.threads = 1;
  Result<std::vector<SearchResult>> sequential =
      engine.BatchSearch(f.queries, options);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
  ASSERT_FALSE((*sequential)[0].hits.empty());

  for (uint32_t threads : {2u, 4u, 8u}) {
    options.threads = threads;
    Result<std::vector<SearchResult>> parallel =
        engine.BatchSearch(f.queries, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectSameBatch(*sequential, *parallel);
  }
}

TEST(BatchSearchTest, ParallelFinePhaseMatchesSequential) {
  Fixture f = MakeFixture(/*num_queries=*/3);
  PartitionedSearch engine(&f.collection, &f.index);
  SearchOptions options;
  options.max_results = 10;
  options.fine_candidates = 40;

  for (const std::string& q : f.queries) {
    options.threads = 1;
    Result<SearchResult> sequential = engine.Search(q, options);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    options.threads = 4;
    Result<SearchResult> parallel = engine.Search(q, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectSameResult(*sequential, *parallel);
  }
}

TEST(BatchSearchTest, BothStrandsAndRescoreStayDeterministic) {
  Fixture f = MakeFixture(/*num_queries=*/3);
  PartitionedSearch engine(&f.collection, &f.index);
  SearchOptions options;
  options.max_results = 8;
  options.fine_candidates = 25;
  options.search_both_strands = true;
  options.rescore_full = true;

  options.threads = 1;
  Result<std::vector<SearchResult>> sequential =
      engine.BatchSearch(f.queries, options);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
  options.threads = 4;
  Result<std::vector<SearchResult>> parallel =
      engine.BatchSearch(f.queries, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectSameBatch(*sequential, *parallel);
}

TEST(BatchSearchTest, ConcurrentQueriesOverDiskIndex) {
  Fixture f = MakeFixture();
  const std::string path = TempDir() + "/cafe_batch_search_test.idx";
  ASSERT_TRUE(f.index.Save(path).ok());
  // A small cache forces evictions while several queries are in flight.
  Result<std::unique_ptr<DiskIndex>> disk =
      DiskIndex::Open(path, /*cache_capacity_bytes=*/1 << 12);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  PartitionedSearch mem_engine(&f.collection, &f.index);
  PartitionedSearch disk_engine(&f.collection, disk->get());
  SearchOptions options;
  options.max_results = 10;
  options.fine_candidates = 30;

  options.threads = 1;
  Result<std::vector<SearchResult>> reference =
      mem_engine.BatchSearch(f.queries, options);
  ASSERT_TRUE(reference.ok());
  options.threads = 4;
  Result<std::vector<SearchResult>> concurrent =
      disk_engine.BatchSearch(f.queries, options);
  ASSERT_TRUE(concurrent.ok()) << concurrent.status().ToString();
  ExpectSameBatch(*reference, *concurrent);
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(BatchSearchTest, BaselineEngineBatchIsDeterministic) {
  Fixture f = MakeFixture(/*num_queries=*/2);
  ExhaustiveSearch engine(&f.collection);
  SearchOptions options;
  options.max_results = 5;

  options.threads = 1;
  Result<std::vector<SearchResult>> sequential =
      engine.BatchSearch(f.queries, options);
  ASSERT_TRUE(sequential.ok());
  options.threads = 2;
  Result<std::vector<SearchResult>> parallel =
      engine.BatchSearch(f.queries, options);
  ASSERT_TRUE(parallel.ok());
  ExpectSameBatch(*sequential, *parallel);
}

TEST(BatchSearchTest, ParallelIndexBuildMatchesSequentialBytes) {
  Fixture f = MakeFixture(/*num_queries=*/1);
  IndexOptions iopt;
  iopt.interval_length = 8;
  Result<InvertedIndex> parallel =
      IndexBuilder::BuildParallel(f.collection, iopt, /*threads=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  std::string sequential_bytes, parallel_bytes;
  f.index.Serialize(&sequential_bytes);
  parallel->Serialize(&parallel_bytes);
  EXPECT_EQ(sequential_bytes, parallel_bytes);
}

TEST(BatchSearchTest, EmptyBatchAndErrorPropagation) {
  Fixture f = MakeFixture(/*num_queries=*/1);
  PartitionedSearch engine(&f.collection, &f.index);
  SearchOptions options;
  options.threads = 4;

  Result<std::vector<SearchResult>> empty =
      engine.BatchSearch({}, options);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  // A query shorter than the interval length fails; the batch reports
  // the error even when other queries succeed.
  std::vector<std::string> queries = {f.queries[0], "ACG", f.queries[0]};
  Result<std::vector<SearchResult>> bad =
      engine.BatchSearch(queries, options);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument())
      << bad.status().ToString();
}

}  // namespace
}  // namespace cafe
