#include "align/statistics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "alphabet/nucleotide.h"

namespace cafe {
namespace {

TEST(UngappedLambdaTest, SatisfiesDefiningEquation) {
  ScoringScheme s;  // +5/-4
  Result<double> lambda = UngappedLambda(s, kUniformComposition);
  ASSERT_TRUE(lambda.ok()) << lambda.status().ToString();
  EXPECT_GT(*lambda, 0.0);
  // Check sum p_i p_j exp(lambda s_ij) == 1.
  double total = 0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      total += 0.0625 *
               std::exp(*lambda * s.Score(CodeToBase(i), CodeToBase(j)));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(UngappedLambdaTest, KnownClosedForm) {
  // For match +1 / mismatch -1 with uniform composition:
  //   (1/4) e^l + (3/4) e^-l = 1  =>  e^l = 3  =>  lambda = ln 3.
  ScoringScheme s;
  s.match = 1;
  s.mismatch = -1;
  Result<double> lambda = UngappedLambda(s, kUniformComposition);
  ASSERT_TRUE(lambda.ok());
  EXPECT_NEAR(*lambda, std::log(3.0), 1e-9);
}

TEST(UngappedLambdaTest, StrongerMatchMeansSmallerLambda) {
  ScoringScheme weak;
  weak.match = 1;
  weak.mismatch = -3;
  ScoringScheme strong;
  strong.match = 10;
  strong.mismatch = -30;
  Result<double> lw = UngappedLambda(weak, kUniformComposition);
  Result<double> ls = UngappedLambda(strong, kUniformComposition);
  ASSERT_TRUE(lw.ok() && ls.ok());
  // Scaling all scores by c scales lambda by 1/c.
  EXPECT_NEAR(*ls, *lw / 10.0, 1e-9);
}

TEST(UngappedLambdaTest, RejectsPositiveExpectation) {
  ScoringScheme s;
  s.match = 5;
  s.mismatch = -1;  // expected score (5 - 3)/4 > 0
  EXPECT_TRUE(UngappedLambda(s, kUniformComposition)
                  .status()
                  .IsInvalidArgument());
}

TEST(UngappedLambdaTest, SkewedComposition) {
  ScoringScheme s;
  std::array<double, 4> skew = {0.4, 0.1, 0.1, 0.4};
  Result<double> lambda = UngappedLambda(s, skew);
  ASSERT_TRUE(lambda.ok());
  Result<double> uniform = UngappedLambda(s, kUniformComposition);
  ASSERT_TRUE(uniform.ok());
  // AT-rich composition raises chance matches, lowering lambda.
  EXPECT_LT(*lambda, *uniform);
}

TEST(FitGumbelTest, RecoversSyntheticGumbel) {
  // Draw from a known Gumbel(mu=50, lambda=0.2) and refit.
  const double mu = 50, lambda = 0.2;
  std::vector<int> scores;
  uint64_t state = 777;
  for (int i = 0; i < 200000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    double u = static_cast<double>(state >> 11) * 0x1.0p-53;
    if (u < 1e-12) u = 1e-12;
    double x = mu - std::log(-std::log(u)) / lambda;
    scores.push_back(static_cast<int>(std::lround(x)));
  }
  GumbelParams params = FitGumbel(scores, 100, 1000);
  EXPECT_NEAR(params.lambda, lambda, 0.02);
  // K satisfies mu = ln(K m n)/lambda.
  double mu_hat = std::log(params.k * 100 * 1000) / params.lambda;
  EXPECT_NEAR(mu_hat, mu, 1.5);
}

TEST(FitGumbelTest, DegenerateInputsYieldZero) {
  GumbelParams p = FitGumbel({}, 10, 10);
  EXPECT_EQ(p.lambda, 0.0);
  p = FitGumbel({5, 5, 5}, 10, 10);  // zero variance
  EXPECT_EQ(p.lambda, 0.0);
  p = FitGumbel({1, 9}, 0, 10);
  EXPECT_EQ(p.lambda, 0.0);
}

TEST(CalibrateGumbelTest, ProducesUsableParams) {
  ScoringScheme s;
  Result<GumbelParams> params = CalibrateGumbel(s, 100, 400, 60, 9);
  ASSERT_TRUE(params.ok()) << params.status().ToString();
  EXPECT_GT(params->lambda, 0.0);
  EXPECT_GT(params->k, 0.0);
  // By construction of K, the E-value at the distribution's mode is ~1:
  // a typical random score should have E in a broad band around 1.
  Result<GumbelParams> check = CalibrateGumbel(s, 100, 400, 60, 10);
  ASSERT_TRUE(check.ok());
  // Score at E=1: S* = ln(K m n)/lambda; recompute under the second fit.
  double s_star = std::log(params->k * 100 * 400) / params->lambda;
  double e = Evalue(static_cast<int>(s_star), 100, 400, *check);
  EXPECT_GT(e, 0.05);
  EXPECT_LT(e, 20.0);
}

TEST(CalibrateGumbelTest, Deterministic) {
  ScoringScheme s;
  Result<GumbelParams> a = CalibrateGumbel(s, 80, 200, 30, 5);
  Result<GumbelParams> b = CalibrateGumbel(s, 80, 200, 30, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->lambda, b->lambda);
  EXPECT_EQ(a->k, b->k);
}

TEST(CalibrateGumbelTest, RejectsBadArgs) {
  ScoringScheme s;
  EXPECT_TRUE(CalibrateGumbel(s, 0, 10, 10, 1).status().IsInvalidArgument());
  EXPECT_TRUE(CalibrateGumbel(s, 10, 10, 1, 1).status().IsInvalidArgument());
}

TEST(UngappedEntropyTest, PositiveAndScalesWithScores) {
  ScoringScheme s;
  Result<double> h = UngappedEntropy(s, kUniformComposition);
  ASSERT_TRUE(h.ok());
  EXPECT_GT(*h, 0.0);
  // Doubling all scores halves lambda, leaving H = lambda*E[s e^{ls}]
  // invariant; verify within numerical tolerance.
  ScoringScheme doubled;
  doubled.match = 2 * s.match;
  doubled.mismatch = 2 * s.mismatch;
  doubled.gap_open = 2 * s.gap_open;
  doubled.gap_extend = 2 * s.gap_extend;
  Result<double> h2 = UngappedEntropy(doubled, kUniformComposition);
  ASSERT_TRUE(h2.ok());
  EXPECT_NEAR(*h2, *h, 1e-6);
}

TEST(UngappedEntropyTest, PropagatesLambdaFailure) {
  ScoringScheme s;
  s.match = 5;
  s.mismatch = -1;
  EXPECT_FALSE(UngappedEntropy(s, kUniformComposition).ok());
}

TEST(EffectiveLengthsTest, ShrinksBothSides) {
  GumbelParams params{0.19, 0.35};
  EffectiveLengths eff =
      ComputeEffectiveLengths(200, 1000000, 1000, params, 0.7);
  EXPECT_LT(eff.query, 200u);
  EXPECT_LT(eff.database, 1000000u);
  EXPECT_GE(eff.query, 1u);
  EXPECT_GE(eff.database, 1u);
}

TEST(EffectiveLengthsTest, ClampsToOne) {
  GumbelParams params{0.19, 0.35};
  // A tiny query with an enormous database: l exceeds the query length.
  EffectiveLengths eff =
      ComputeEffectiveLengths(30, 1000000000, 1, params, 0.7);
  EXPECT_EQ(eff.query, 1u);
}

TEST(EffectiveLengthsTest, DegenerateParamsPassThrough) {
  GumbelParams zero;
  EffectiveLengths eff = ComputeEffectiveLengths(100, 1000, 10, zero, 0.7);
  EXPECT_EQ(eff.query, 100u);
  EXPECT_EQ(eff.database, 1000u);
}

TEST(ScoreConversionTest, BitScoreMonotonic) {
  GumbelParams params{0.19, 0.35};
  EXPECT_LT(BitScore(50, params), BitScore(100, params));
  EXPECT_GT(Evalue(50, 100, 1000000, params),
            Evalue(100, 100, 1000000, params));
}

TEST(ScoreConversionTest, EvalueScalesWithDatabase) {
  GumbelParams params{0.19, 0.35};
  double small = Evalue(80, 100, 1000000, params);
  double large = Evalue(80, 100, 10000000, params);
  EXPECT_NEAR(large / small, 10.0, 1e-9);
}

TEST(ScoreConversionTest, DoublingBitsSquaresInverseEvalue) {
  // E = m*n*2^{-bits}: +10 bits => E shrinks 1024x.
  GumbelParams params{0.19, 0.35};
  double ln2 = std::log(2.0);
  int s1 = 100;
  int s2 = s1 + static_cast<int>(std::lround(10 * ln2 / params.lambda));
  double ratio = Evalue(s1, 100, 1000000, params) /
                 Evalue(s2, 100, 1000000, params);
  EXPECT_NEAR(std::log2(ratio), 10.0, 0.3);
}

}  // namespace
}  // namespace cafe
