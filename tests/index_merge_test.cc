#include "index/index_merge.h"

#include <gtest/gtest.h>

#include <tuple>

#include "collection/collection.h"
#include "sim/generator.h"

namespace cafe {
namespace {

Result<SequenceCollection> TestCollection(uint32_t n, uint64_t seed) {
  sim::CollectionOptions copt;
  copt.num_sequences = n;
  copt.length_mu = 5.5;
  copt.length_sigma = 0.5;
  copt.wildcard_rate = 0.002;
  copt.seed = seed;
  return sim::CollectionGenerator(copt).Generate();
}

using PostingTuple = std::tuple<uint32_t, uint32_t, std::vector<uint32_t>>;

std::vector<PostingTuple> Collect(const InvertedIndex& index,
                                  uint32_t term) {
  std::vector<PostingTuple> out;
  index.ForEachPosting(term, [&](uint32_t doc, uint32_t tf,
                                 const uint32_t* pos, uint32_t npos) {
    std::vector<uint32_t> p;
    if (pos != nullptr) p.assign(pos, pos + npos);
    out.emplace_back(doc, tf, std::move(p));
  });
  return out;
}

void ExpectEquivalent(const InvertedIndex& a, const InvertedIndex& b) {
  EXPECT_EQ(a.num_docs(), b.num_docs());
  EXPECT_EQ(a.doc_lengths(), b.doc_lengths());
  EXPECT_EQ(a.stats().num_terms, b.stats().num_terms);
  EXPECT_EQ(a.stats().total_postings, b.stats().total_postings);
  a.directory().ForEachTerm([&](uint32_t term, const TermEntry& ea) {
    const TermEntry* eb = b.FindTerm(term);
    ASSERT_NE(eb, nullptr) << "term " << term;
    EXPECT_EQ(ea.doc_count, eb->doc_count) << term;
    EXPECT_EQ(ea.posting_count, eb->posting_count) << term;
    EXPECT_EQ(Collect(a, term), Collect(b, term)) << term;
  });
}

TEST(IndexMergeTest, ShardedEqualsDirectPositional) {
  Result<SequenceCollection> col = TestCollection(37, 61);
  ASSERT_TRUE(col.ok());
  IndexOptions options;
  options.interval_length = 6;
  Result<InvertedIndex> direct = IndexBuilder::Build(*col, options);
  ASSERT_TRUE(direct.ok());
  for (uint32_t shard_size : {1u, 7u, 10u, 37u, 100u}) {
    Result<InvertedIndex> sharded =
        BuildSharded(*col, options, shard_size);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ExpectEquivalent(*direct, *sharded);
  }
}

TEST(IndexMergeTest, ShardedEqualsDirectDocumentGranularity) {
  Result<SequenceCollection> col = TestCollection(25, 62);
  ASSERT_TRUE(col.ok());
  IndexOptions options;
  options.interval_length = 6;
  options.granularity = IndexGranularity::kDocument;
  Result<InvertedIndex> direct = IndexBuilder::Build(*col, options);
  Result<InvertedIndex> sharded = BuildSharded(*col, options, 8);
  ASSERT_TRUE(direct.ok() && sharded.ok());
  ExpectEquivalent(*direct, *sharded);
}

TEST(IndexMergeTest, ShardedEqualsDirectWithStride) {
  Result<SequenceCollection> col = TestCollection(20, 63);
  ASSERT_TRUE(col.ok());
  IndexOptions options;
  options.interval_length = 8;
  options.stride = 4;
  Result<InvertedIndex> direct = IndexBuilder::Build(*col, options);
  Result<InvertedIndex> sharded = BuildSharded(*col, options, 6);
  ASSERT_TRUE(direct.ok() && sharded.ok());
  ExpectEquivalent(*direct, *sharded);
}

TEST(IndexMergeTest, MergedSerializedFormRoundTrips) {
  Result<SequenceCollection> col = TestCollection(15, 64);
  ASSERT_TRUE(col.ok());
  IndexOptions options;
  options.interval_length = 6;
  Result<InvertedIndex> sharded = BuildSharded(*col, options, 4);
  ASSERT_TRUE(sharded.ok());
  std::string data;
  sharded->Serialize(&data);
  Result<InvertedIndex> back = InvertedIndex::Deserialize(data);
  ASSERT_TRUE(back.ok());
  ExpectEquivalent(*sharded, *back);
}

TEST(IndexMergeTest, SingleShardIdentity) {
  Result<SequenceCollection> col = TestCollection(10, 65);
  ASSERT_TRUE(col.ok());
  IndexOptions options;
  options.interval_length = 6;
  Result<InvertedIndex> direct = IndexBuilder::Build(*col, options);
  ASSERT_TRUE(direct.ok());
  std::vector<const InvertedIndex*> shards = {&*direct};
  Result<InvertedIndex> merged = MergeIndexes(shards, {0});
  ASSERT_TRUE(merged.ok());
  ExpectEquivalent(*direct, *merged);
}

TEST(IndexMergeTest, MixedGranularityMergeDowngradesToDocument) {
  Result<SequenceCollection> col = TestCollection(20, 71);
  ASSERT_TRUE(col.ok());
  IndexOptions pos_opt;
  pos_opt.interval_length = 6;
  IndexOptions doc_opt = pos_opt;
  doc_opt.granularity = IndexGranularity::kDocument;
  // Shard 0 (docs 0..9) positional, shard 1 (docs 10..19) document.
  Result<InvertedIndex> a =
      IndexBuilder::BuildRange(*col, pos_opt, 0, 10);
  Result<InvertedIndex> b =
      IndexBuilder::BuildRange(*col, doc_opt, 10, 20);
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<const InvertedIndex*> shards = {&*a, &*b};
  Result<InvertedIndex> merged = MergeIndexes(shards, {0, 10});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  // A merge with any document-granularity shard can only answer
  // document-granularity queries.
  EXPECT_EQ(merged->options().granularity, IndexGranularity::kDocument);
  // The result equals building the whole collection at document
  // granularity: positional shards contribute their tf, not offsets.
  Result<InvertedIndex> direct = IndexBuilder::Build(*col, doc_opt);
  ASSERT_TRUE(direct.ok());
  ExpectEquivalent(*direct, *merged);
}

TEST(IndexMergeTest, ShardedEqualsDirectWithSpacedSeed) {
  Result<SequenceCollection> col = TestCollection(24, 72);
  ASSERT_TRUE(col.ok());
  IndexOptions options;
  options.interval_length = 5;
  options.spaced_seed = "1101011";
  Result<InvertedIndex> direct = IndexBuilder::Build(*col, options);
  Result<InvertedIndex> sharded = BuildSharded(*col, options, 7);
  ASSERT_TRUE(direct.ok() && sharded.ok())
      << direct.status().ToString() << sharded.status().ToString();
  ExpectEquivalent(*direct, *sharded);
}

TEST(IndexMergeTest, RejectsMismatchedSpacedSeeds) {
  Result<SequenceCollection> col = TestCollection(10, 73);
  ASSERT_TRUE(col.ok());
  IndexOptions a;
  a.interval_length = 5;
  a.spaced_seed = "1101011";
  IndexOptions b;
  b.interval_length = 5;
  b.spaced_seed = "1110101";
  Result<InvertedIndex> ia = IndexBuilder::Build(*col, a);
  Result<InvertedIndex> ib = IndexBuilder::Build(*col, b);
  ASSERT_TRUE(ia.ok() && ib.ok());
  std::vector<const InvertedIndex*> shards = {&*ia, &*ib};
  EXPECT_TRUE(MergeIndexes(shards, {0, 10}).status().IsInvalidArgument());
}

TEST(IndexMergeTest, RejectsMismatchedOptions) {
  Result<SequenceCollection> col = TestCollection(10, 66);
  ASSERT_TRUE(col.ok());
  IndexOptions a;
  a.interval_length = 6;
  IndexOptions b;
  b.interval_length = 8;
  Result<InvertedIndex> ia = IndexBuilder::Build(*col, a);
  Result<InvertedIndex> ib = IndexBuilder::Build(*col, b);
  ASSERT_TRUE(ia.ok() && ib.ok());
  std::vector<const InvertedIndex*> shards = {&*ia, &*ib};
  EXPECT_TRUE(MergeIndexes(shards, {0, 10}).status().IsInvalidArgument());
}

TEST(IndexMergeTest, RejectsBadOffsets) {
  Result<SequenceCollection> col = TestCollection(10, 67);
  ASSERT_TRUE(col.ok());
  IndexOptions options;
  options.interval_length = 6;
  Result<InvertedIndex> index = IndexBuilder::Build(*col, options);
  ASSERT_TRUE(index.ok());
  std::vector<const InvertedIndex*> shards = {&*index, &*index};
  // Second shard must start at 10, not 5.
  EXPECT_TRUE(MergeIndexes(shards, {0, 5}).status().IsInvalidArgument());
  EXPECT_TRUE(MergeIndexes({}, {}).status().IsInvalidArgument());
}

TEST(IndexMergeTest, RejectsStoppedShards) {
  Result<SequenceCollection> col = TestCollection(10, 68);
  ASSERT_TRUE(col.ok());
  IndexOptions options;
  options.interval_length = 6;
  options.stop_doc_fraction = 0.5;
  EXPECT_TRUE(BuildSharded(*col, options, 5).status().IsInvalidArgument());
  Result<InvertedIndex> stopped = IndexBuilder::Build(*col, options);
  ASSERT_TRUE(stopped.ok());
  std::vector<const InvertedIndex*> shards = {&*stopped};
  EXPECT_TRUE(MergeIndexes(shards, {0}).status().IsInvalidArgument());
}

TEST(IndexMergeTest, RejectsZeroShardSize) {
  Result<SequenceCollection> col = TestCollection(10, 69);
  ASSERT_TRUE(col.ok());
  IndexOptions options;
  EXPECT_TRUE(BuildSharded(*col, options, 0).status().IsInvalidArgument());
}

TEST(IndexBuilderRangeTest, SubRangeUsesLocalIds) {
  Result<SequenceCollection> col = TestCollection(12, 70);
  ASSERT_TRUE(col.ok());
  IndexOptions options;
  options.interval_length = 6;
  Result<InvertedIndex> range =
      IndexBuilder::BuildRange(*col, options, 4, 8);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->num_docs(), 4u);
  // Every posting's doc id is local (< 4).
  range->directory().ForEachTerm([&](uint32_t term, const TermEntry&) {
    range->ForEachPosting(term, [&](uint32_t doc, uint32_t,
                                    const uint32_t*, uint32_t) {
      EXPECT_LT(doc, 4u);
    });
  });
  EXPECT_TRUE(IndexBuilder::BuildRange(*col, options, 8, 8)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(IndexBuilder::BuildRange(*col, options, 0, 13)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace cafe
