#include "search/coarse.h"

#include <gtest/gtest.h>

#include "collection/collection.h"
#include "index/inverted_index.h"

namespace cafe {
namespace {

// Collection where sequence 1 contains the query verbatim, sequence 2
// shares half of it, and the others are unrelated.
SequenceCollection RankableCollection(const std::string& query) {
  SequenceCollection col;
  EXPECT_TRUE(col.Add("unrelated0", "", "GGGGGGGGGGGGGGGGGGGGGGGGGGGG").ok());
  EXPECT_TRUE(
      col.Add("exact", "", "TTTTTT" + query + "TTTTTT").ok());
  EXPECT_TRUE(col.Add("half", "",
                      "CCCCCC" + query.substr(0, query.size() / 2) +
                          "CCCCCC")
                  .ok());
  EXPECT_TRUE(col.Add("unrelated1", "", "GGGGGGGGGGGGGGGGGGGGGGGGGGGG").ok());
  return col;
}

InvertedIndex BuildIndex(const SequenceCollection& col,
                         IndexGranularity granularity) {
  IndexOptions options;
  options.interval_length = 8;
  options.granularity = granularity;
  Result<InvertedIndex> index = IndexBuilder::Build(col, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(*index);
}

const std::string kQuery = "ACGTTGCAGGCATCAGGATTACAGGCATTGCA";

TEST(CoarseRankerTest, HitCountRanksContainingSequenceFirst) {
  SequenceCollection col = RankableCollection(kQuery);
  InvertedIndex index = BuildIndex(col, IndexGranularity::kPositional);
  CoarseRanker ranker(&index);
  SearchStats stats;
  auto cands = ranker.Rank(kQuery, CoarseRankMode::kHitCount, 10, 16,
                           &stats);
  ASSERT_GE(cands.size(), 2u);
  EXPECT_EQ(cands[0].doc, 1u);  // exact container
  EXPECT_EQ(cands[1].doc, 2u);  // half container
  EXPECT_GT(cands[0].score, cands[1].score);
  EXPECT_FALSE(cands[0].has_diagonal);
  EXPECT_GT(stats.postings_decoded, 0u);
  EXPECT_GT(stats.candidates_ranked, 0u);
}

TEST(CoarseRankerTest, DiagonalModeFindsCorrectDiagonal) {
  SequenceCollection col = RankableCollection(kQuery);
  InvertedIndex index = BuildIndex(col, IndexGranularity::kPositional);
  CoarseRanker ranker(&index);
  SearchStats stats;
  auto cands =
      ranker.Rank(kQuery, CoarseRankMode::kDiagonal, 10, 16, &stats);
  ASSERT_GE(cands.size(), 1u);
  EXPECT_EQ(cands[0].doc, 1u);
  ASSERT_TRUE(cands[0].has_diagonal);
  // True diagonal is +6 (query embedded after "TTTTTT"); the frame
  // estimate must be within one frame width.
  EXPECT_NEAR(static_cast<double>(cands[0].diagonal), 6.0, 16.0);
}

TEST(CoarseRankerTest, DiagonalFallsBackOnDocumentIndex) {
  SequenceCollection col = RankableCollection(kQuery);
  InvertedIndex index = BuildIndex(col, IndexGranularity::kDocument);
  CoarseRanker ranker(&index);
  SearchStats stats;
  auto cands =
      ranker.Rank(kQuery, CoarseRankMode::kDiagonal, 10, 16, &stats);
  ASSERT_GE(cands.size(), 1u);
  EXPECT_EQ(cands[0].doc, 1u);
  EXPECT_FALSE(cands[0].has_diagonal);  // hit-count fallback
}

TEST(CoarseRankerTest, LimitRespected) {
  SequenceCollection col = RankableCollection(kQuery);
  InvertedIndex index = BuildIndex(col, IndexGranularity::kPositional);
  CoarseRanker ranker(&index);
  SearchStats stats;
  auto cands = ranker.Rank(kQuery, CoarseRankMode::kHitCount, 1, 16,
                           &stats);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].doc, 1u);
}

TEST(CoarseRankerTest, NoSharedIntervalsYieldsEmpty) {
  SequenceCollection col;
  ASSERT_TRUE(col.Add("a", "", "GGGGGGGGGGGGGGGGGGGG").ok());
  InvertedIndex index = BuildIndex(col, IndexGranularity::kPositional);
  CoarseRanker ranker(&index);
  SearchStats stats;
  auto cands = ranker.Rank(std::string(20, 'A'),
                           CoarseRankMode::kDiagonal, 10, 16, &stats);
  EXPECT_TRUE(cands.empty());
}

TEST(CoarseRankerTest, DiagonalModeSeparatesScatteredFromCollinear) {
  // Two sequences share the same number of query intervals, but in one
  // they are collinear (true homologue) and in the other scattered.
  // Diagonal ranking must prefer the collinear one; plain hit counting
  // cannot tell them apart.
  std::string q = "ACGTTGCAGGCATCAGGATTACAGGCA";  // 27 bases
  std::string collinear = "TTTTTTTT" + q + "TTTTTTTT";
  // Scattered: same 8-mers but permuted in blocks of 9 with junk between.
  std::string scattered = "TTTTTTTT" + q.substr(18, 9) + "GGGGGGGGGG" +
                          q.substr(0, 9) + "GGGGGGGGGG" + q.substr(9, 9) +
                          "TTTTTTTT";
  SequenceCollection col;
  ASSERT_TRUE(col.Add("collinear", "", collinear).ok());
  ASSERT_TRUE(col.Add("scattered", "", scattered).ok());

  InvertedIndex index = BuildIndex(col, IndexGranularity::kPositional);
  CoarseRanker ranker(&index);
  SearchStats stats;
  auto cands = ranker.Rank(q, CoarseRankMode::kDiagonal, 10, 16, &stats);
  ASSERT_GE(cands.size(), 2u);
  EXPECT_EQ(cands[0].doc, 0u);
  EXPECT_GT(cands[0].score, cands[1].score);
}

TEST(CoarseRankerTest, QueryRepeatsDoNotOvercount) {
  // Query with a repeated interval: hit-count scoring uses
  // min(query tf, doc tf).
  std::string unit = "ACGTTGCA";
  std::string q = unit + unit + unit;  // interval ACGTTGCA occurs 3 times
  SequenceCollection col;
  ASSERT_TRUE(col.Add("single", "", "TTTT" + unit + "TTTT").ok());
  InvertedIndex index = BuildIndex(col, IndexGranularity::kPositional);
  CoarseRanker ranker(&index);
  SearchStats stats;
  auto cands = ranker.Rank(q, CoarseRankMode::kHitCount, 10, 16, &stats);
  ASSERT_EQ(cands.size(), 1u);
  // The doc has each of the repeated-unit intervals once; min() keeps the
  // score bounded by the doc's own count, not the query's 3x repetition.
  EXPECT_LE(cands[0].score, 9.0);
}

}  // namespace
}  // namespace cafe
