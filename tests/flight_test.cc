// Tests for the flight recorder: ring retention and wraparound,
// slow-log pinning and bounding, JSON rendering, and concurrent
// writers (the TSan job runs this binary).

#include "obs/flight.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace cafe::obs {
namespace {

FlightRecord MakeRecord(uint64_t trace_id, uint64_t total_micros) {
  FlightRecord r;
  r.trace_id = trace_id;
  r.options_key = "abcd";
  r.queue_micros = 7;
  r.total_micros = total_micros;
  r.trace.queries = 1;
  r.trace.candidates_aligned = 3;
  r.hits = 2;
  return r;
}

TEST(FlightRecorderTest, RecordAndRecentNewestFirst) {
  FlightRecorder rec({.capacity = 8, .slow_micros = 1000000});
  rec.Record(MakeRecord(1, 10));
  rec.Record(MakeRecord(2, 20));
  rec.Record(MakeRecord(3, 30));
  EXPECT_EQ(rec.recorded(), 3u);

  std::vector<FlightRecord> recent = rec.Recent(10);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].trace_id, 3u);
  EXPECT_EQ(recent[1].trace_id, 2u);
  EXPECT_EQ(recent[2].trace_id, 1u);
  EXPECT_EQ(recent[0].total_micros, 30u);
  EXPECT_EQ(recent[0].queue_micros, 7u);
  EXPECT_EQ(recent[0].hits, 2u);
  EXPECT_EQ(recent[0].trace.candidates_aligned, 3u);
  EXPECT_GT(recent[0].completed_unix_micros, 0);  // stamped by Record

  // `max` truncates after the newest-first sort.
  std::vector<FlightRecord> top = rec.Recent(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].trace_id, 3u);
  EXPECT_EQ(top[1].trace_id, 2u);
}

TEST(FlightRecorderTest, RingWrapsKeepingNewest) {
  FlightRecorder rec({.capacity = 4, .slow_micros = 1000000});
  for (uint64_t i = 1; i <= 10; ++i) rec.Record(MakeRecord(i, i));
  EXPECT_EQ(rec.recorded(), 10u);

  std::vector<FlightRecord> recent = rec.Recent(100);
  ASSERT_EQ(recent.size(), 4u);  // the ring holds only the last 4
  EXPECT_EQ(recent[0].trace_id, 10u);
  EXPECT_EQ(recent[1].trace_id, 9u);
  EXPECT_EQ(recent[2].trace_id, 8u);
  EXPECT_EQ(recent[3].trace_id, 7u);
}

TEST(FlightRecorderTest, SlowLogPinsOverThresholdOnly) {
  FlightRecorder rec(
      {.capacity = 2, .slow_micros = 1000, .slow_capacity = 8});
  rec.Record(MakeRecord(1, 999));    // fast
  rec.Record(MakeRecord(2, 1000));   // exactly at threshold: slow
  rec.Record(MakeRecord(3, 5000));   // slow
  rec.Record(MakeRecord(4, 10));     // fast
  EXPECT_EQ(rec.slow_recorded(), 2u);

  // The fast burst wrapped the 2-slot ring past the slow records...
  std::vector<FlightRecord> recent = rec.Recent(10);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].trace_id, 4u);
  // ...but the slow log still has them, newest first.
  std::vector<FlightRecord> slow = rec.Slow(10);
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].trace_id, 3u);
  EXPECT_EQ(slow[1].trace_id, 2u);
}

TEST(FlightRecorderTest, SlowLogIsBounded) {
  FlightRecorder rec(
      {.capacity = 4, .slow_micros = 1, .slow_capacity = 3});
  for (uint64_t i = 1; i <= 10; ++i) rec.Record(MakeRecord(i, 100));
  EXPECT_EQ(rec.slow_recorded(), 10u);  // monotonic, not bounded
  std::vector<FlightRecord> slow = rec.Slow(100);
  ASSERT_EQ(slow.size(), 3u);  // bounded, oldest dropped
  EXPECT_EQ(slow[0].trace_id, 10u);
  EXPECT_EQ(slow[2].trace_id, 8u);
}

TEST(FlightRecorderTest, ThresholdZeroPinsEverything) {
  FlightRecorder rec(
      {.capacity = 8, .slow_micros = 0, .slow_capacity = 8});
  rec.Record(MakeRecord(1, 0));  // even a 0us request pins
  rec.Record(MakeRecord(2, 5));
  EXPECT_EQ(rec.slow_recorded(), 2u);
  EXPECT_EQ(rec.Slow(10).size(), 2u);
}

TEST(FlightRecorderTest, JsonRendering) {
  FlightRecorder rec({.capacity = 4, .slow_micros = 0});
  FlightRecord r = MakeRecord(0xdeadbeef, 42);
  r.truncated = true;
  rec.Record(r);

  std::string recent = rec.RecentJson(10);
  EXPECT_NE(recent.find("\"records\":["), std::string::npos) << recent;
  EXPECT_NE(recent.find("\"trace_id\":\"00000000deadbeef\""),
            std::string::npos)
      << recent;
  EXPECT_NE(recent.find("\"total_us\":42"), std::string::npos);
  EXPECT_NE(recent.find("\"truncated\":true"), std::string::npos);
  EXPECT_NE(recent.find("\"deadline_expired\":false"), std::string::npos);
  EXPECT_NE(recent.find("\"options_key\":\"abcd\""), std::string::npos);
  // The full pruning funnel rides along.
  EXPECT_NE(recent.find("\"candidates_aligned\":3"), std::string::npos);

  std::string slow = rec.SlowJson(10);
  EXPECT_NE(slow.find("\"threshold_micros\":0"), std::string::npos);
  EXPECT_NE(slow.find("\"trace_id\":\"00000000deadbeef\""),
            std::string::npos);
}

TEST(FlightRecorderTest, EmptyRecorder) {
  FlightRecorder rec({.capacity = 4});
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.Recent(10).empty());
  EXPECT_TRUE(rec.Slow(10).empty());
  EXPECT_EQ(rec.RecentJson(10), "{\"records\":[]}");
}

TEST(FlightRecorderTest, CapacityClampedToOne) {
  FlightRecorder rec({.capacity = 0, .slow_capacity = 0});
  rec.Record(MakeRecord(1, 1));
  rec.Record(MakeRecord(2, 2));
  EXPECT_EQ(rec.capacity(), 1u);
  ASSERT_EQ(rec.Recent(10).size(), 1u);
  EXPECT_EQ(rec.Recent(10)[0].trace_id, 2u);
}

TEST(FlightRecorderTest, ConcurrentWritersAndReaders) {
  // Hammer a small ring from several threads while a reader sweeps it;
  // the TSan CI job runs this test to certify the slot locking. The
  // invariant: every record the sweep returns is internally consistent
  // (trace_id encodes the writer's payload).
  FlightRecorder rec(
      {.capacity = 16, .slow_micros = 1u << 30, .slow_capacity = 4});
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 2000;

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t id = static_cast<uint64_t>(t) * kPerThread + i + 1;
        rec.Record(MakeRecord(id, id * 3));
      }
    });
  }
  std::thread reader([&rec] {
    for (int i = 0; i < 200; ++i) {
      for (const FlightRecord& r : rec.Recent(16)) {
        // total_micros must be the matching payload for this trace_id —
        // a torn slot would break this.
        EXPECT_EQ(r.total_micros, r.trace_id * 3);
      }
    }
  });
  for (std::thread& w : writers) w.join();
  reader.join();

  EXPECT_EQ(rec.recorded(), kThreads * kPerThread);
  std::vector<FlightRecord> recent = rec.Recent(16);
  EXPECT_EQ(recent.size(), 16u);
  std::set<uint64_t> ids;
  for (const FlightRecord& r : recent) ids.insert(r.trace_id);
  EXPECT_EQ(ids.size(), recent.size());  // all distinct
}

}  // namespace
}  // namespace cafe::obs
