#include "search/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <climits>

namespace cafe {
namespace {

SearchHit Hit(uint32_t id, int score) {
  SearchHit h;
  h.seq_id = id;
  h.score = score;
  return h;
}

TEST(TopHitsTest, KeepsBestK) {
  TopHits top(3);
  for (int s : {5, 1, 9, 7, 3, 8}) {
    top.Add(Hit(static_cast<uint32_t>(s), s));
  }
  std::vector<SearchHit> hits = top.Take();
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].score, 9);
  EXPECT_EQ(hits[1].score, 8);
  EXPECT_EQ(hits[2].score, 7);
}

TEST(TopHitsTest, FewerThanK) {
  TopHits top(10);
  top.Add(Hit(1, 5));
  top.Add(Hit(2, 7));
  std::vector<SearchHit> hits = top.Take();
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].score, 7);
}

TEST(TopHitsTest, ZeroLimit) {
  TopHits top(0);
  top.Add(Hit(1, 5));
  EXPECT_TRUE(top.Take().empty());
}

TEST(TopHitsTest, TieBreakPrefersLowerSeqId) {
  TopHits top(2);
  top.Add(Hit(9, 5));
  top.Add(Hit(1, 5));
  top.Add(Hit(4, 5));
  std::vector<SearchHit> hits = top.Take();
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].seq_id, 1u);
  EXPECT_EQ(hits[1].seq_id, 4u);
}

TEST(TopHitsTest, FloorTracksWorstRetained) {
  TopHits top(2);
  EXPECT_EQ(top.Floor(), INT_MIN);
  top.Add(Hit(1, 5));
  EXPECT_EQ(top.Floor(), INT_MIN);  // not full yet
  top.Add(Hit(2, 9));
  EXPECT_EQ(top.Floor(), 5);
  top.Add(Hit(3, 7));
  EXPECT_EQ(top.Floor(), 7);
}

TEST(TopHitsTest, ManyInsertsMatchFullSort) {
  TopHits top(16);
  std::vector<SearchHit> all;
  uint64_t state = 12345;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    int score = static_cast<int>(state % 100);
    SearchHit h = Hit(static_cast<uint32_t>(i), score);
    all.push_back(h);
    top.Add(h);
  }
  std::sort(all.begin(), all.end(), [](const SearchHit& a,
                                       const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.seq_id < b.seq_id;
  });
  std::vector<SearchHit> hits = top.Take();
  ASSERT_EQ(hits.size(), 16u);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].seq_id, all[i].seq_id) << i;
    EXPECT_EQ(hits[i].score, all[i].score) << i;
  }
}

TEST(SearchStatsTest, Accumulate) {
  SearchStats a;
  a.coarse_seconds = 1.0;
  a.fine_seconds = 2.0;
  a.total_seconds = 3.5;
  a.candidates_ranked = 10;
  a.candidates_aligned = 5;
  a.cells_computed = 1000;
  a.postings_decoded = 99;
  SearchStats b = a;
  b.Accumulate(a);
  EXPECT_DOUBLE_EQ(b.coarse_seconds, 2.0);
  EXPECT_DOUBLE_EQ(b.fine_seconds, 4.0);
  EXPECT_DOUBLE_EQ(b.total_seconds, 7.0);
  EXPECT_EQ(b.candidates_ranked, 20u);
  EXPECT_EQ(b.candidates_aligned, 10u);
  EXPECT_EQ(b.cells_computed, 2000u);
  EXPECT_EQ(b.postings_decoded, 198u);
}

}  // namespace
}  // namespace cafe
