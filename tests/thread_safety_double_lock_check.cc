// Negative-compile probe: this file MUST FAIL to compile under Clang
// with -Wthread-safety -Werror=thread-safety. cafe::Mutex is
// non-reentrant; acquiring it twice on one thread is a guaranteed
// deadlock, and the analysis must reject the second acquire at compile
// time. If this ever compiles, the CAFE_ACQUIRE/CAFE_SCOPED_CAPABILITY
// annotations on Mutex/MutexLock have been lost.

#include "util/mutex.h"

namespace {

cafe::Mutex g_mu;

int DoubleAcquire() {
  cafe::MutexLock outer(&g_mu);
  cafe::MutexLock inner(&g_mu);  // second acquire: must not compile
  return 0;
}

}  // namespace

int main() { return DoubleAcquire(); }
