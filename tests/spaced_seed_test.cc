#include "alphabet/spaced_seed.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "index/interval.h"
#include "index/seed_extract.h"

namespace cafe {
namespace {

using Extraction = std::vector<std::pair<uint32_t, uint32_t>>;

Extraction SpacedTerms(std::string_view seq, const SpacedSeed& seed,
                       uint32_t stride = 1) {
  Extraction out;
  ForEachSpacedSeed(seq, seed, stride, [&](uint32_t pos, uint32_t term) {
    out.emplace_back(pos, term);
  });
  return out;
}

Extraction IntervalTerms(std::string_view seq, int n, uint32_t stride = 1) {
  Extraction out;
  ForEachInterval(seq, n, stride, [&](uint32_t pos, uint32_t term) {
    out.emplace_back(pos, term);
  });
  return out;
}

TEST(SpacedSeedTest, ParsesValidPattern) {
  Result<SpacedSeed> seed = SpacedSeed::Parse("1101011");
  ASSERT_TRUE(seed.ok()) << seed.status().ToString();
  EXPECT_EQ(seed->span(), 7);
  EXPECT_EQ(seed->weight(), 5);
  EXPECT_FALSE(seed->contiguous());
  EXPECT_EQ(seed->care_offsets(),
            (std::vector<uint8_t>{0, 1, 3, 5, 6}));
}

TEST(SpacedSeedTest, AllOnesIsContiguous) {
  Result<SpacedSeed> seed = SpacedSeed::Parse("11111111");
  ASSERT_TRUE(seed.ok());
  EXPECT_TRUE(seed->contiguous());
  EXPECT_EQ(seed->span(), seed->weight());
}

TEST(SpacedSeedTest, ParseRejectsMalformedPatterns) {
  // Empty, bad characters, zero-terminated ends, weight out of range,
  // span too wide.
  EXPECT_TRUE(SpacedSeed::Parse("").status().IsInvalidArgument());
  EXPECT_TRUE(SpacedSeed::Parse("11x11").status().IsInvalidArgument());
  EXPECT_TRUE(SpacedSeed::Parse("01111").status().IsInvalidArgument());
  EXPECT_TRUE(SpacedSeed::Parse("11110").status().IsInvalidArgument());
  EXPECT_TRUE(SpacedSeed::Parse("111").status().IsInvalidArgument());
  std::string heavy(kMaxSeedWeight + 1, '1');
  EXPECT_TRUE(SpacedSeed::Parse(heavy).status().IsInvalidArgument());
  std::string wide = "1" + std::string(kMaxSeedSpan - 1, '0') + "1";
  ASSERT_GT(static_cast<int>(wide.size()), kMaxSeedSpan);
  EXPECT_TRUE(SpacedSeed::Parse(wide).status().IsInvalidArgument());
}

TEST(SpacedSeedTest, EncodePacksCarePositionsMsbFirst) {
  Result<SpacedSeed> seed = SpacedSeed::Parse("11011");
  ASSERT_TRUE(seed.ok());
  // Care positions 0,1,3,4 of "ACGTA" -> A,C,T,A = 0,1,3,0.
  EXPECT_EQ(seed->Encode("ACGTA"),
            (0 << 6) | (1 << 4) | (3 << 2) | 0);
  // The don't-care slot may hold anything, including a wildcard.
  EXPECT_EQ(seed->Encode("ACNTA"), seed->Encode("ACGTA"));
}

TEST(SpacedSeedTest, EncodeRejectsWildcardsAndShortWindows) {
  Result<SpacedSeed> seed = SpacedSeed::Parse("11011");
  ASSERT_TRUE(seed.ok());
  EXPECT_EQ(seed->Encode("NCGTA"), -1);  // wildcard on a care position
  EXPECT_EQ(seed->Encode("ACGT"), -1);   // window shorter than the span
}

TEST(SpacedSeedTest, AllOnesMatchesForEachInterval) {
  const std::string seq = "ACGTACGTNACCGGTTACGT";
  for (int n : {4, 6, 8}) {
    Result<SpacedSeed> seed = SpacedSeed::Parse(std::string(n, '1'));
    ASSERT_TRUE(seed.ok());
    for (uint32_t stride : {1u, 3u}) {
      EXPECT_EQ(SpacedTerms(seq, *seed, stride),
                IntervalTerms(seq, n, stride))
          << "n=" << n << " stride=" << stride;
    }
  }
}

TEST(SpacedSeedTest, SpacedExtractionSkipsDontCareMismatches) {
  Result<SpacedSeed> seed = SpacedSeed::Parse("101");
  // Weight 2 is below kMinSeedWeight; use a real pattern instead.
  EXPECT_TRUE(seed.status().IsInvalidArgument());
  Result<SpacedSeed> real = SpacedSeed::Parse("110101");
  ASSERT_TRUE(real.ok());
  // Two sequences differing only at don't-care offsets 2 and 4 produce
  // identical terms at position 0.
  Extraction a = SpacedTerms("ACGTACGT", *real);
  Extraction b = SpacedTerms("ACATCCGT", *real);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(a[0], b[0]);
}

TEST(SeedExtractorTest, EmptyPatternIsContiguous) {
  Result<SeedExtractor> ex = SeedExtractor::Create(6, "");
  ASSERT_TRUE(ex.ok());
  EXPECT_FALSE(ex->spaced());
  EXPECT_EQ(ex->window(), 6);
  const std::string seq = "ACGTACGTACGT";
  Extraction got;
  ex->ForEach(seq, 1, [&](uint32_t pos, uint32_t term) {
    got.emplace_back(pos, term);
  });
  EXPECT_EQ(got, IntervalTerms(seq, 6));
}

TEST(SeedExtractorTest, SpacedPatternUsesSpanWindow) {
  Result<SeedExtractor> ex = SeedExtractor::Create(5, "1101011");
  ASSERT_TRUE(ex.ok());
  EXPECT_TRUE(ex->spaced());
  EXPECT_EQ(ex->window(), 7);
}

TEST(SeedExtractorTest, RejectsWeightMismatch) {
  EXPECT_TRUE(
      SeedExtractor::Create(6, "1101011").status().IsInvalidArgument());
  EXPECT_TRUE(SeedExtractor::Create(5, "bad").status().IsInvalidArgument());
}

}  // namespace
}  // namespace cafe
