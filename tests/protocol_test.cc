// Wire protocol round trips and hostile-input behaviour: every decoder
// must turn arbitrary bytes into a Status, never a crash, and the frame
// reader must reject tampered headers (magic, version, length, CRC).

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "server/protocol.h"
#include "util/crc32.h"
#include "util/random.h"

namespace cafe::server {
namespace {

// A connected AF_UNIX stream pair; frames written to fds[0] are read
// from fds[1]. (The frame I/O uses send/recv with MSG_NOSIGNAL, which
// needs sockets, not pipes.)
struct SocketPair {
  int fds[2];
  SocketPair() { EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    for (int fd : fds) {
      if (fd >= 0) close(fd);
    }
  }
  void CloseWriter() {
    close(fds[0]);
    fds[0] = -1;
  }
};

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>(v >> 8));
}

// Hand-builds a frame so tests can corrupt individual header fields.
std::string RawFrame(uint32_t magic, uint16_t version, uint16_t type,
                     uint32_t size, uint32_t crc,
                     const std::string& payload) {
  std::string out;
  PutU32(&out, magic);
  PutU16(&out, version);
  PutU16(&out, type);
  PutU32(&out, size);
  PutU32(&out, crc);
  out += payload;
  return out;
}

void SendRaw(int fd, const std::string& bytes) {
  ASSERT_EQ(send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
}

SearchRequest MakeRequest() {
  SearchRequest r;
  r.max_results = 7;
  r.fine_candidates = 55;
  r.band = 32;
  r.frame_width = 24;
  r.min_score = 3;
  r.diagonal_mode = false;
  r.both_strands = true;
  r.rescore_full = true;
  r.deadline_millis = 1500;
  r.query = "ACGTACGTNRY";
  return r;
}

TEST(ProtocolTest, HelloRoundTrip) {
  Hello in;
  in.server_version = "0.4.0+abc123";
  Hello out;
  ASSERT_TRUE(DecodeHello(EncodeHello(in), &out).ok());
  EXPECT_EQ(out.server_version, in.server_version);
}

TEST(ProtocolTest, SearchRequestRoundTrip) {
  SearchRequest in = MakeRequest();
  SearchRequest out;
  ASSERT_TRUE(DecodeSearchRequest(EncodeSearchRequest(in), &out).ok());
  EXPECT_EQ(out.max_results, in.max_results);
  EXPECT_EQ(out.fine_candidates, in.fine_candidates);
  EXPECT_EQ(out.band, in.band);
  EXPECT_EQ(out.frame_width, in.frame_width);
  EXPECT_EQ(out.min_score, in.min_score);
  EXPECT_EQ(out.diagonal_mode, in.diagonal_mode);
  EXPECT_EQ(out.both_strands, in.both_strands);
  EXPECT_EQ(out.rescore_full, in.rescore_full);
  EXPECT_EQ(out.deadline_millis, in.deadline_millis);
  EXPECT_EQ(out.query, in.query);
}

TEST(ProtocolTest, SearchResponseRoundTrip) {
  SearchResponse in;
  in.truncated = true;
  SearchHit hit;
  hit.seq_id = 42;
  hit.score = 117;
  hit.coarse_score = 31.5;
  hit.strand = Strand::kReverse;
  in.hits.push_back(hit);
  hit.seq_id = 7;
  hit.score = 12;
  hit.coarse_score = 3.0;
  hit.strand = Strand::kForward;
  in.hits.push_back(hit);

  SearchResponse out;
  ASSERT_TRUE(DecodeSearchResponse(EncodeSearchResponse(in), &out).ok());
  EXPECT_TRUE(out.status.ok());
  EXPECT_TRUE(out.truncated);
  ASSERT_EQ(out.hits.size(), 2u);
  EXPECT_EQ(out.hits[0].seq_id, 42u);
  EXPECT_EQ(out.hits[0].score, 117);
  EXPECT_EQ(out.hits[0].coarse_score, 31.5);
  EXPECT_EQ(out.hits[0].strand, Strand::kReverse);
  EXPECT_EQ(out.hits[1].seq_id, 7u);
}

TEST(ProtocolTest, ErrorResponseCarriesStatus) {
  SearchResponse in;
  in.status = Status::Overloaded("queue full");
  SearchResponse out;
  ASSERT_TRUE(DecodeSearchResponse(EncodeSearchResponse(in), &out).ok());
  EXPECT_TRUE(out.status.IsOverloaded());
  EXPECT_NE(out.status.ToString().find("queue full"), std::string::npos);
  EXPECT_TRUE(out.hits.empty());
}

TEST(ProtocolTest, StatusWireCodesRoundTrip) {
  const Status statuses[] = {
      Status::OK(),
      Status::InvalidArgument("a"),
      Status::NotFound("b"),
      Status::Corruption("c"),
      Status::IOError("d"),
      Status::NotSupported("e"),
      Status::OutOfRange("f"),
      Status::Internal("g"),
      Status::Overloaded("h"),
  };
  for (const Status& s : statuses) {
    Status back = StatusFromWire(StatusCodeToWire(s), "msg");
    EXPECT_EQ(back.code(), s.code()) << s.ToString();
  }
  // Unknown codes from a newer peer degrade to Internal, not a failure.
  EXPECT_TRUE(StatusFromWire(250, "future code").IsInternal());
}

TEST(ProtocolTest, TrailingBytesRejected) {
  std::string payload = EncodeSearchRequest(MakeRequest());
  payload.push_back('\0');
  SearchRequest out;
  Status s = DecodeSearchRequest(payload, &out);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(ProtocolTest, TruncatedPayloadsReturnCorruption) {
  // Every proper prefix must fail cleanly — no partial-read crashes —
  // with one deliberate exception: the prefix that is exactly a v1
  // payload (v2 minus the trailing trace id) decodes, with trace_id 0.
  const std::string full = EncodeSearchRequest(MakeRequest());
  const size_t v1_len = full.size() - sizeof(uint64_t);
  for (size_t len = 0; len < full.size(); ++len) {
    SearchRequest out;
    Status s = DecodeSearchRequest(full.substr(0, len), &out);
    if (len == v1_len) {
      EXPECT_TRUE(s.ok()) << s.ToString();
      EXPECT_EQ(out.trace_id, 0u);
    } else {
      EXPECT_FALSE(s.ok()) << "prefix length " << len;
    }
  }
  const std::string hello = EncodeHello({"v1"});
  for (size_t len = 0; len < hello.size(); ++len) {
    Hello out;
    EXPECT_FALSE(DecodeHello(hello.substr(0, len), &out).ok());
  }
}

TEST(ProtocolTest, DecodeFuzzNeverCrashes) {
  // Random bytes through every decoder: any Status is fine, UB is not.
  Rng rng(20260807);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes;
    size_t len = rng.Uniform(64);
    bytes.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Uniform(256)));
    }
    Hello hello;
    (void)DecodeHello(bytes, &hello);
    SearchRequest request;
    (void)DecodeSearchRequest(bytes, &request);
    SearchResponse response;
    (void)DecodeSearchResponse(bytes, &response);
  }
}

TEST(ProtocolTest, FrameRoundTripOverSocket) {
  SocketPair sp;
  const std::string payload = EncodeSearchRequest(MakeRequest());
  ASSERT_TRUE(
      WriteFrame(sp.fds[0], FrameType::kSearchRequest, payload).ok());

  FrameType type{};
  std::string got;
  ASSERT_TRUE(ReadFrame(sp.fds[1], &type, &got).ok());
  EXPECT_EQ(type, FrameType::kSearchRequest);
  EXPECT_EQ(got, payload);
}

TEST(ProtocolTest, EmptyPayloadFrameRoundTrip) {
  SocketPair sp;
  ASSERT_TRUE(WriteFrame(sp.fds[0], FrameType::kStatsRequest, "").ok());
  FrameType type{};
  std::string got;
  ASSERT_TRUE(ReadFrame(sp.fds[1], &type, &got).ok());
  EXPECT_EQ(type, FrameType::kStatsRequest);
  EXPECT_TRUE(got.empty());
}

TEST(ProtocolTest, CleanEofIsNotFound) {
  SocketPair sp;
  sp.CloseWriter();
  FrameType type{};
  std::string payload;
  Status s = ReadFrame(sp.fds[1], &type, &payload);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
}

TEST(ProtocolTest, MidHeaderEofIsError) {
  SocketPair sp;
  SendRaw(sp.fds[0], std::string("CAFE\x01", 5));  // 5 of 16 header bytes
  sp.CloseWriter();
  FrameType type{};
  std::string payload;
  Status s = ReadFrame(sp.fds[1], &type, &payload);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.IsNotFound()) << s.ToString();
}

TEST(ProtocolTest, BadMagicIsCorruption) {
  SocketPair sp;
  const std::string payload = "xy";
  SendRaw(sp.fds[0], RawFrame(0xDEADBEEF, kProtocolVersion, 2,
                              payload.size(), Crc32(payload.data(), payload.size()), payload));
  FrameType type{};
  std::string got;
  Status s = ReadFrame(sp.fds[1], &type, &got);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(ProtocolTest, VersionSkewIsNotSupported) {
  SocketPair sp;
  const std::string payload = "xy";
  SendRaw(sp.fds[0], RawFrame(kFrameMagic, kProtocolVersion + 1, 2,
                              payload.size(), Crc32(payload.data(), payload.size()), payload));
  FrameType type{};
  std::string got;
  Status s = ReadFrame(sp.fds[1], &type, &got);
  EXPECT_TRUE(s.IsNotSupported()) << s.ToString();
}

TEST(ProtocolTest, OversizedLengthIsCorruption) {
  SocketPair sp;
  // The header alone promises more than kMaxPayloadBytes; the reader
  // must reject before allocating anything of that size.
  SendRaw(sp.fds[0], RawFrame(kFrameMagic, kProtocolVersion, 2,
                              kMaxPayloadBytes + 1, 0, ""));
  FrameType type{};
  std::string got;
  Status s = ReadFrame(sp.fds[1], &type, &got);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(ProtocolTest, CrcMismatchIsCorruption) {
  SocketPair sp;
  const std::string payload = "payload bytes";
  SendRaw(sp.fds[0], RawFrame(kFrameMagic, kProtocolVersion, 2,
                              payload.size(), Crc32(payload.data(), payload.size()) ^ 1,
                              payload));
  FrameType type{};
  std::string got;
  Status s = ReadFrame(sp.fds[1], &type, &got);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(ProtocolTest, FlippedPayloadByteFailsCrc) {
  SocketPair sp;
  std::string payload = "payload bytes";
  uint32_t crc = Crc32(payload.data(), payload.size());
  payload[3] ^= 0x20;  // corrupt after the CRC was computed
  SendRaw(sp.fds[0], RawFrame(kFrameMagic, kProtocolVersion, 2,
                              payload.size(), crc, payload));
  FrameType type{};
  std::string got;
  Status s = ReadFrame(sp.fds[1], &type, &got);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(ProtocolTest, OptionsKeyIgnoresQueryAndDeadline) {
  SearchRequest a = MakeRequest();
  SearchRequest b = MakeRequest();
  b.query = "TTTTTTTTTTTT";
  b.deadline_millis = 9;
  EXPECT_EQ(a.OptionsKey(), b.OptionsKey());

  b = MakeRequest();
  b.max_results += 1;
  EXPECT_NE(a.OptionsKey(), b.OptionsKey());
  b = MakeRequest();
  b.both_strands = !b.both_strands;
  EXPECT_NE(a.OptionsKey(), b.OptionsKey());
  b = MakeRequest();
  b.band += 1;
  EXPECT_NE(a.OptionsKey(), b.OptionsKey());
}

TEST(ProtocolTest, ToSearchOptionsMapsEveryWireField) {
  SearchRequest r = MakeRequest();
  SearchOptions o = r.ToSearchOptions();
  EXPECT_EQ(o.max_results, r.max_results);
  EXPECT_EQ(o.fine_candidates, r.fine_candidates);
  EXPECT_EQ(o.band, r.band);
  EXPECT_EQ(o.frame_width, r.frame_width);
  EXPECT_EQ(o.min_score, r.min_score);
  EXPECT_EQ(o.coarse_mode, CoarseRankMode::kHitCount);  // diagonal off
  EXPECT_TRUE(o.search_both_strands);
  EXPECT_TRUE(o.rescore_full);
  EXPECT_EQ(o.deadline, nullptr);  // deadlines stay per-request
}

// --- Trace-id propagation and v1 <-> v2 compatibility ---------------

TEST(ProtocolTest, TraceIdRoundTripsInRequest) {
  SearchRequest in = MakeRequest();
  in.trace_id = 0x0123456789abcdefull;
  SearchRequest out;
  ASSERT_TRUE(DecodeSearchRequest(EncodeSearchRequest(in), &out).ok());
  EXPECT_EQ(out.trace_id, in.trace_id);
  EXPECT_EQ(out.query, in.query);
}

TEST(ProtocolTest, TraceIdRoundTripsInResponse) {
  SearchResponse in;
  in.trace_id = 0xfeedface12345678ull;
  SearchHit hit;
  hit.seq_id = 1;
  in.hits.push_back(hit);
  SearchResponse out;
  ASSERT_TRUE(DecodeSearchResponse(EncodeSearchResponse(in), &out).ok());
  EXPECT_EQ(out.trace_id, in.trace_id);
  ASSERT_EQ(out.hits.size(), 1u);
}

TEST(ProtocolTest, V1PayloadsDecodeWithZeroTraceId) {
  // A v1 peer's payloads are the v3 encoding minus the trailing fields:
  // the trace id (both directions) and, on responses, the v3 sampled
  // byte that follows it.
  SearchRequest request = MakeRequest();
  request.trace_id = 77;  // must NOT leak into the v1-shaped decode
  std::string v1_request = EncodeSearchRequest(request);
  v1_request.resize(v1_request.size() - sizeof(uint64_t));
  SearchRequest req_out;
  ASSERT_TRUE(DecodeSearchRequest(v1_request, &req_out).ok());
  EXPECT_EQ(req_out.trace_id, 0u);
  EXPECT_EQ(req_out.query, request.query);

  SearchResponse response;
  response.trace_id = 99;
  response.sampled = true;
  SearchHit hit;
  hit.seq_id = 5;
  response.hits.push_back(hit);
  std::string v1_response = EncodeSearchResponse(response);
  v1_response.resize(v1_response.size() - sizeof(uint64_t) -
                     sizeof(uint8_t));
  SearchResponse resp_out;
  ASSERT_TRUE(DecodeSearchResponse(v1_response, &resp_out).ok());
  EXPECT_EQ(resp_out.trace_id, 0u);
  EXPECT_FALSE(resp_out.sampled);
  ASSERT_EQ(resp_out.hits.size(), 1u);
  EXPECT_EQ(resp_out.hits[0].seq_id, 5u);
}

TEST(ProtocolTest, SampledFlagRoundTripsInResponse) {
  for (bool sampled : {false, true}) {
    SearchResponse in;
    in.trace_id = 0xabc;
    in.sampled = sampled;
    SearchResponse out;
    ASSERT_TRUE(DecodeSearchResponse(EncodeSearchResponse(in), &out).ok());
    EXPECT_EQ(out.sampled, sampled);
    EXPECT_EQ(out.trace_id, 0xabcu);
  }
}

TEST(ProtocolTest, V2ResponsesDecodeWithSampledFalse) {
  // A v2 peer's response ends at the trace id; the missing sampled byte
  // must read as "not sampled", not as corruption.
  SearchResponse response;
  response.trace_id = 0x1234;
  response.sampled = true;  // must NOT leak into the v2-shaped decode
  std::string v2_response = EncodeSearchResponse(response);
  v2_response.resize(v2_response.size() - sizeof(uint8_t));
  SearchResponse out;
  ASSERT_TRUE(DecodeSearchResponse(v2_response, &out).ok());
  EXPECT_EQ(out.trace_id, 0x1234u);
  EXPECT_FALSE(out.sampled);

  // The sampled byte is a strict boolean: anything else is corruption,
  // not a silently-truthy flag.
  std::string bad = EncodeSearchResponse(response);
  bad.back() = 2;
  Status s = DecodeSearchResponse(bad, &out);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(ProtocolTest, MinProtocolVersionFramesAccepted) {
  // Frames stamped with any version in [kMinProtocolVersion,
  // kProtocolVersion] must read back — a v1 peer's Hello still works
  // against this build.
  static_assert(kMinProtocolVersion < kProtocolVersion);
  SocketPair sp;
  const std::string hello = EncodeHello({"legacy-peer"});
  ASSERT_TRUE(WriteFrame(sp.fds[0], FrameType::kHello, hello,
                         kMinProtocolVersion)
                  .ok());
  FrameType type{};
  std::string payload;
  ASSERT_TRUE(ReadFrame(sp.fds[1], &type, &payload).ok());
  EXPECT_EQ(type, FrameType::kHello);
  Hello out;
  ASSERT_TRUE(DecodeHello(payload, &out).ok());
  EXPECT_EQ(out.server_version, "legacy-peer");
}

TEST(ProtocolTest, VersionsOutsideTheWindowAreRejected) {
  // Below the floor and above the ceiling both fail with NotSupported
  // (VersionSkewIsNotSupported covers kProtocolVersion + 1).
  SocketPair sp;
  const std::string payload = "xy";
  SendRaw(sp.fds[0],
          RawFrame(kFrameMagic, kMinProtocolVersion - 1, 2, payload.size(),
                   Crc32(payload.data(), payload.size()), payload));
  FrameType type{};
  std::string got;
  Status s = ReadFrame(sp.fds[1], &type, &got);
  EXPECT_TRUE(s.IsNotSupported()) << s.ToString();
}

}  // namespace
}  // namespace cafe::server
