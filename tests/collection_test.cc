#include "collection/collection.h"

#include <gtest/gtest.h>

#include "util/env.h"

namespace cafe {
namespace {

SequenceCollection MakeSample() {
  SequenceCollection col;
  EXPECT_TRUE(col.Add("s0", "first", "ACGTACGT").ok());
  EXPECT_TRUE(col.Add("s1", "", "NNNACGT").ok());
  EXPECT_TRUE(col.Add("s2", "third record", "T").ok());
  return col;
}

TEST(CollectionTest, AddAndGet) {
  SequenceCollection col = MakeSample();
  EXPECT_EQ(col.NumSequences(), 3u);
  EXPECT_EQ(col.TotalBases(), 16u);
  std::string seq;
  ASSERT_TRUE(col.GetSequence(0, &seq).ok());
  EXPECT_EQ(seq, "ACGTACGT");
  ASSERT_TRUE(col.GetSequence(1, &seq).ok());
  EXPECT_EQ(seq, "NNNACGT");
  EXPECT_EQ(col.Name(0), "s0");
  EXPECT_EQ(col.Name(2), "s2");
  EXPECT_EQ(col.Description(2), "third record");
  EXPECT_EQ(col.Description(1), "");
}

TEST(CollectionTest, IdsAreDense) {
  SequenceCollection col;
  Result<uint32_t> a = col.Add("a", "", "ACGT");
  Result<uint32_t> b = col.Add("b", "", "ACGT");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
}

TEST(CollectionTest, OutOfRangeAccessors) {
  SequenceCollection col = MakeSample();
  std::string seq;
  EXPECT_TRUE(col.GetSequence(99, &seq).IsNotFound());
  EXPECT_EQ(col.Name(99), "");
  EXPECT_EQ(col.Description(99), "");
  EXPECT_TRUE(col.SequenceLength(99).status().IsNotFound());
}

TEST(CollectionTest, SequenceLength) {
  SequenceCollection col = MakeSample();
  Result<size_t> len = col.SequenceLength(1);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(*len, 7u);
}

TEST(CollectionTest, RejectsEmptyId) {
  SequenceCollection col;
  EXPECT_TRUE(col.Add("", "", "ACGT").status().IsInvalidArgument());
}

TEST(CollectionTest, RejectsInvalidSequence) {
  SequenceCollection col;
  EXPECT_TRUE(col.Add("a", "", "AC-GT").status().IsInvalidArgument());
  EXPECT_EQ(col.NumSequences(), 0u);
}

TEST(CollectionTest, FromFasta) {
  std::vector<FastaRecord> recs = {
      {"r1", "one", "ACGT"},
      {"r2", "two", "TTTTNN"},
  };
  Result<SequenceCollection> col = SequenceCollection::FromFasta(recs);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->NumSequences(), 2u);
  std::string seq;
  ASSERT_TRUE(col->GetSequence(1, &seq).ok());
  EXPECT_EQ(seq, "TTTTNN");
  EXPECT_EQ(col->Name(0), "r1");
}

TEST(CollectionTest, SerializeRoundTrip) {
  SequenceCollection col = MakeSample();
  std::string data;
  col.Serialize(&data);
  Result<SequenceCollection> back = SequenceCollection::Deserialize(data);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumSequences(), 3u);
  EXPECT_EQ(back->TotalBases(), 16u);
  for (uint32_t i = 0; i < 3; ++i) {
    std::string a, b;
    ASSERT_TRUE(col.GetSequence(i, &a).ok());
    ASSERT_TRUE(back->GetSequence(i, &b).ok());
    EXPECT_EQ(a, b);
    EXPECT_EQ(col.Name(i), back->Name(i));
    EXPECT_EQ(col.Description(i), back->Description(i));
  }
}

TEST(CollectionTest, DeserializeDetectsCorruption) {
  SequenceCollection col = MakeSample();
  std::string data;
  col.Serialize(&data);

  std::string bad = data;
  bad[10] ^= 0x01;
  EXPECT_TRUE(SequenceCollection::Deserialize(bad).status().IsCorruption());
  EXPECT_TRUE(SequenceCollection::Deserialize("short").status().IsCorruption());
  bad = data;
  bad[1] = 'z';
  EXPECT_TRUE(SequenceCollection::Deserialize(bad).status().IsCorruption());
}

TEST(CollectionTest, SaveLoad) {
  std::string path = TempDir() + "/cafe_collection_test.bin";
  SequenceCollection col = MakeSample();
  ASSERT_TRUE(col.Save(path).ok());
  Result<SequenceCollection> back = SequenceCollection::Load(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumSequences(), 3u);
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(CollectionTest, StorageBytesAccountsNames) {
  SequenceCollection col = MakeSample();
  EXPECT_GT(col.StorageBytes(), 0u);
  EXPECT_GE(col.StorageBytes(), col.store().StorageBytes());
}

TEST(CollectionTest, EmptyCollectionSerializes) {
  SequenceCollection col;
  std::string data;
  col.Serialize(&data);
  Result<SequenceCollection> back = SequenceCollection::Deserialize(data);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumSequences(), 0u);
}

}  // namespace
}  // namespace cafe
