// Negative-compile probe: this file MUST FAIL to compile with
// -Werror=unused-result. tests/CMakeLists.txt try_compiles it and stops
// the configure if it ever succeeds — which would mean Status lost its
// [[nodiscard]] and callers can silently drop errors again.

#include "util/status.h"

namespace {

cafe::Status Fallible() { return cafe::Status::Internal("dropped"); }

}  // namespace

int main() {
  Fallible();  // discarding a [[nodiscard]] Status: must not compile
  return 0;
}
