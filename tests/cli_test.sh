#!/bin/sh
# End-to-end exercise of cafe_cli: generate -> build -> info -> search
# (including failure paths). Run by ctest with the cli binary as $1.
set -eu

CLI="${1:?usage: cli_test.sh <path-to-cafe_cli>}"
DIR="$(mktemp -d "${TMPDIR:-/tmp}/cafe_cli_test.XXXXXX")"
trap 'rm -rf "$DIR"' EXIT

"$CLI" generate --bases 100000 --out "$DIR/db.fa" --seed 5 > "$DIR/log" 2>&1
grep -q "wrote" "$DIR/log"

"$CLI" build --fasta "$DIR/db.fa" --collection "$DIR/db.col" \
    --index "$DIR/db.idx" --interval 8 > "$DIR/log" 2>&1
grep -q "postings" "$DIR/log"

"$CLI" info --collection "$DIR/db.col" --index "$DIR/db.idx" \
    > "$DIR/log" 2>&1
grep -q "bits/base" "$DIR/log"
grep -q "interval length" "$DIR/log"

"$CLI" terms --index "$DIR/db.idx" --top 5 > "$DIR/log" 2>&1
grep -q "interval" "$DIR/log"

# Sharded build produces an equivalent index file (same search answers).
"$CLI" build --fasta "$DIR/db.fa" --collection "$DIR/db2.col" \
    --index "$DIR/db2.idx" --interval 8 --shards 4 > "$DIR/log" 2>&1
grep -q "postings" "$DIR/log"
cmp "$DIR/db.idx" "$DIR/db2.idx"

# Excise a query from the generated FASTA (second line = first sequence).
QUERY="$(sed -n '2p' "$DIR/db.fa" | cut -c1-60)"
"$CLI" search --collection "$DIR/db.col" --index "$DIR/db.idx" \
    --query "$QUERY" --top 3 > "$DIR/log" 2>&1
grep -q "SYN0" "$DIR/log"

# Disk index + both strands + evalues path.
"$CLI" search --collection "$DIR/db.col" --index "$DIR/db.idx" \
    --query "$QUERY" --top 3 --disk-index --both-strands --evalues \
    > "$DIR/log" 2>&1
grep -q "evalue" "$DIR/log"

# Query file path with traceback.
printf '>probe\n%s\n' "$QUERY" > "$DIR/q.fa"
"$CLI" search --collection "$DIR/db.col" --index "$DIR/db.idx" \
    --query-file "$DIR/q.fa" --top 1 --traceback > "$DIR/log" 2>&1
grep -q "identity 100%" "$DIR/log"

# Observability: --stats appends the trace funnel; --stats=json makes
# stdout a single JSON document (validated when python3 is available).
"$CLI" search --collection "$DIR/db.col" --index "$DIR/db.idx" \
    --query "$QUERY" --top 3 --stats > "$DIR/log" 2>&1
grep -q "funnel:" "$DIR/log"
grep -q "candidates ranked" "$DIR/log"

"$CLI" search --collection "$DIR/db.col" --index "$DIR/db.idx" \
    --query "$QUERY" --top 3 --disk-index --stats=json > "$DIR/stats.json"
grep -q '"trace_total"' "$DIR/stats.json"
grep -q '"postings_decoded"' "$DIR/stats.json"
grep -q '"timings_us"' "$DIR/stats.json"
grep -q 'disk_index.cache_misses' "$DIR/stats.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$DIR/stats.json" > /dev/null
fi

"$CLI" build --fasta "$DIR/db.fa" --collection "$DIR/db3.col" \
    --index "$DIR/db3.idx" --stats=json > "$DIR/build.json"
grep -q 'index_build.builds' "$DIR/build.json"
grep -q '"p50"' "$DIR/build.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$DIR/build.json" > /dev/null
fi

# Chaining middle stage: --chain=filter must keep the self-hit and
# surface the chain funnel line under --stats.
"$CLI" search --collection "$DIR/db.col" --index "$DIR/db.idx" \
    --query "$QUERY" --top 3 --chain filter --stats > "$DIR/log" 2>&1
grep -q "SYN0" "$DIR/log"
grep -q "chain:" "$DIR/log"

# The spaced-seed build path: weight-8 pattern, searched end to end.
"$CLI" build --fasta "$DIR/db.fa" --collection "$DIR/db4.col" \
    --index "$DIR/db4.idx" --seed-pattern 11011011011 > "$DIR/log" 2>&1
grep -q "postings" "$DIR/log"
"$CLI" search --collection "$DIR/db4.col" --index "$DIR/db4.idx" \
    --query "$QUERY" --top 3 --chain filter > "$DIR/log" 2>&1
grep -q "SYN0" "$DIR/log"

# batch = search over a query file; rejects inline --query.
"$CLI" batch --collection "$DIR/db.col" --index "$DIR/db.idx" \
    --query-file "$DIR/q.fa" --top 1 > "$DIR/log" 2>&1
grep -q "probe" "$DIR/log"

# batch over the zero-copy mmap read path answers identically (the
# per-query timing line is wall-clock, so it is excluded from the
# comparison).
"$CLI" batch --collection "$DIR/db.col" --index "$DIR/db.idx" \
    --query-file "$DIR/q.fa" --top 1 --index-mode=mmap \
    > "$DIR/log_mmap" 2>&1
grep -q "probe" "$DIR/log_mmap"
grep -v "hits in" "$DIR/log" > "$DIR/hits_memory"
grep -v "hits in" "$DIR/log_mmap" > "$DIR/hits_mmap"
cmp "$DIR/hits_memory" "$DIR/hits_mmap"
if "$CLI" batch --collection "$DIR/db.col" --index "$DIR/db.idx" \
    --query ACGTACGTACGT > "$DIR/log" 2>&1; then
  echo "expected failure: batch without --query-file" >&2
  exit 1
fi
grep -q "query-file" "$DIR/log"

# Failure paths must exit non-zero with a diagnostic.
if "$CLI" search --collection "$DIR/db.col" --index "$DIR/db.idx" \
    > "$DIR/log" 2>&1; then
  echo "expected failure on missing query" >&2
  exit 1
fi
grep -q "query" "$DIR/log"

if "$CLI" build --fasta /nonexistent.fa --collection "$DIR/x" \
    --index "$DIR/y" > "$DIR/log" 2>&1; then
  echo "expected failure on missing fasta" >&2
  exit 1
fi

if "$CLI" search --collection "$DIR/db.col" --index "$DIR/db.idx" \
    --query ACGTACGTACGT --tpo 3 > "$DIR/log" 2>&1; then
  echo "expected failure on unknown flag" >&2
  exit 1
fi
grep -q "tpo" "$DIR/log"

echo "cli_test OK"
