#include "eval/table.h"

#include <gtest/gtest.h>

namespace cafe::eval {
namespace {

TEST(TablePrinterTest, HeaderOnly) {
  TablePrinter t({"a", "bb"});
  std::string out = t.Render();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_NE(out.find("--"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer_name", "22"});
  std::string out = t.Render();
  // All lines equal length (left-padded numerics, right-padded text).
  std::vector<size_t> lens;
  size_t start = 0;
  while (start < out.size()) {
    size_t end = out.find('\n', start);
    lens.push_back(end - start);
    start = end + 1;
  }
  ASSERT_EQ(lens.size(), 4u);
  EXPECT_EQ(lens[0], lens[1]);
  EXPECT_EQ(lens[1], lens[2]);
  EXPECT_EQ(lens[2], lens[3]);
}

TEST(TablePrinterTest, NumericRightAligned) {
  TablePrinter t({"metric", "count"});
  t.AddRow({"rows", "7"});
  t.AddRow({"cols", "1234"});
  std::string out = t.Render();
  // "7" right-aligned in a 5-wide column -> preceded by spaces.
  EXPECT_NE(out.find("    7"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::string out = t.Render();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TablePrinterTest, MixedContentTreatedAsText) {
  TablePrinter t({"h"});
  t.AddRow({"1.5x faster"});
  std::string out = t.Render();
  EXPECT_NE(out.find("1.5x faster"), std::string::npos);
}

}  // namespace
}  // namespace cafe::eval
