#include "util/stringutil.h"

#include <gtest/gtest.h>

namespace cafe {
namespace {

TEST(HumanBytesTest, SmallValues) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1023), "1023 B");
}

TEST(HumanBytesTest, Units) {
  EXPECT_EQ(HumanBytes(1024), "1.0 KB");
  EXPECT_EQ(HumanBytes(1536), "1.5 KB");
  EXPECT_EQ(HumanBytes(uint64_t{10} * 1024 * 1024), "10.0 MB");
  EXPECT_EQ(HumanBytes(uint64_t{3} * 1024 * 1024 * 1024), "3.0 GB");
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(1.5, 2), "1.50");
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.142");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(WithCommasTest, Grouping) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
  EXPECT_EQ(WithCommas(1000000000ull), "1,000,000,000");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  auto parts = Split("a,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
  auto trailing = Split("a,", ',');
  ASSERT_EQ(trailing.size(), 2u);
  EXPECT_EQ(trailing[1], "");
}

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("\t x \n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(ToUpperTest, Ascii) {
  EXPECT_EQ(ToUpper("acgtN"), "ACGTN");
  EXPECT_EQ(ToUpper("AbC123"), "ABC123");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
}

}  // namespace
}  // namespace cafe
