#include "eval/harness.h"

#include <gtest/gtest.h>

#include "search/exhaustive.h"
#include "sim/workload.h"

namespace cafe::eval {
namespace {

TEST(HarnessTest, RunsAllQueries) {
  sim::CollectionOptions copt;
  copt.num_sequences = 15;
  copt.min_length = 300;
  copt.length_mu = 6.3;
  copt.seed = 50;
  Result<SequenceCollection> col =
      sim::CollectionGenerator(copt).Generate();
  ASSERT_TRUE(col.ok());
  Result<std::vector<std::string>> queries =
      sim::SampleQueries(*col, 4, 120, 0.05, 51);
  ASSERT_TRUE(queries.ok());

  ExhaustiveSearch engine(&*col);
  SearchOptions options;
  Result<BatchResult> batch = RunBatch(&engine, *queries, options);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->engine_name, "exhaustive-sw");
  EXPECT_EQ(batch->results.size(), 4u);
  EXPECT_GT(batch->aggregate.total_seconds, 0.0);
  EXPECT_GT(batch->mean_query_seconds, 0.0);
  EXPECT_EQ(batch->aggregate.candidates_aligned, 4u * col->NumSequences());
  for (const SearchResult& r : batch->results) {
    EXPECT_FALSE(r.hits.empty());  // query excised from the collection
  }
}

TEST(HarnessTest, PropagatesEngineError) {
  SequenceCollection col;
  ASSERT_TRUE(col.Add("a", "", "ACGTACGTACGT").ok());
  ExhaustiveSearch engine(&col);
  SearchOptions options;
  std::vector<std::string> queries = {"ACGTACGT", ""};
  Result<BatchResult> batch = RunBatch(&engine, queries, options);
  EXPECT_TRUE(batch.status().IsInvalidArgument());
}

TEST(HarnessTest, EmptyQuerySetOk) {
  SequenceCollection col;
  ASSERT_TRUE(col.Add("a", "", "ACGTACGTACGT").ok());
  ExhaustiveSearch engine(&col);
  SearchOptions options;
  Result<BatchResult> batch = RunBatch(&engine, {}, options);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->results.empty());
  EXPECT_EQ(batch->mean_query_seconds, 0.0);
}

}  // namespace
}  // namespace cafe::eval
