#include "sim/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "alphabet/nucleotide.h"

namespace cafe::sim {
namespace {

TEST(CollectionOptionsTest, DefaultsValid) {
  EXPECT_TRUE(CollectionOptions().Validate().ok());
}

TEST(CollectionOptionsTest, ValidationCatchesBadValues) {
  CollectionOptions o;
  o.num_sequences = 0;
  o.target_bases = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = CollectionOptions();
  o.min_length = 100;
  o.max_length = 50;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = CollectionOptions();
  o.composition = {0, 0, 0, 0};
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = CollectionOptions();
  o.wildcard_rate = 0.9;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(GeneratorTest, GeneratesRequestedCount) {
  CollectionOptions o;
  o.num_sequences = 37;
  o.seed = 1;
  CollectionGenerator gen(o);
  Result<SequenceCollection> col = gen.Generate();
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->NumSequences(), 37u);
  EXPECT_GT(col->TotalBases(), 0u);
}

TEST(GeneratorTest, TargetBasesMode) {
  CollectionOptions o;
  o.target_bases = 100000;
  o.seed = 2;
  CollectionGenerator gen(o);
  Result<SequenceCollection> col = gen.Generate();
  ASSERT_TRUE(col.ok());
  EXPECT_GE(col->TotalBases(), 100000u);
  // Overshoot bounded by one max-length sequence.
  EXPECT_LT(col->TotalBases(), 100000u + o.max_length);
}

TEST(GeneratorTest, Deterministic) {
  CollectionOptions o;
  o.num_sequences = 10;
  o.seed = 7;
  Result<SequenceCollection> a = CollectionGenerator(o).Generate();
  Result<SequenceCollection> b = CollectionGenerator(o).Generate();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NumSequences(), b->NumSequences());
  for (uint32_t i = 0; i < a->NumSequences(); ++i) {
    std::string sa, sb;
    ASSERT_TRUE(a->GetSequence(i, &sa).ok());
    ASSERT_TRUE(b->GetSequence(i, &sb).ok());
    EXPECT_EQ(sa, sb);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  CollectionOptions o;
  o.num_sequences = 5;
  o.seed = 1;
  Result<SequenceCollection> a = CollectionGenerator(o).Generate();
  o.seed = 2;
  Result<SequenceCollection> b = CollectionGenerator(o).Generate();
  ASSERT_TRUE(a.ok() && b.ok());
  std::string sa, sb;
  ASSERT_TRUE(a->GetSequence(0, &sa).ok());
  ASSERT_TRUE(b->GetSequence(0, &sb).ok());
  EXPECT_NE(sa, sb);
}

TEST(GeneratorTest, LengthBoundsRespected) {
  CollectionOptions o;
  o.num_sequences = 200;
  o.min_length = 100;
  o.max_length = 2000;
  o.seed = 3;
  CollectionGenerator gen(o);
  Result<SequenceCollection> col = gen.Generate();
  ASSERT_TRUE(col.ok());
  for (uint32_t i = 0; i < col->NumSequences(); ++i) {
    Result<size_t> len = col->SequenceLength(i);
    ASSERT_TRUE(len.ok());
    EXPECT_GE(*len, 100u);
    EXPECT_LE(*len, 2000u);
  }
}

TEST(GeneratorTest, CompositionRealized) {
  CollectionOptions o;
  o.num_sequences = 1;
  o.composition = {0.7, 0.1, 0.1, 0.1};
  o.wildcard_rate = 0;
  o.min_length = 20000;
  o.max_length = 20000;
  o.length_mu = 12.0;  // clamped to max anyway
  o.seed = 4;
  CollectionGenerator gen(o);
  std::string seq = gen.RandomSequence(20000);
  size_t a_count = 0;
  for (char c : seq) a_count += (c == 'A');
  EXPECT_NEAR(a_count / 20000.0, 0.7, 0.03);
}

TEST(GeneratorTest, WildcardRateRealized) {
  CollectionOptions o;
  o.wildcard_rate = 0.01;
  o.seed = 5;
  CollectionGenerator gen(o);
  std::string seq = gen.RandomSequence(50000);
  size_t wild = 0;
  for (char c : seq) wild += IsWildcard(c);
  EXPECT_NEAR(wild / 50000.0, 0.01, 0.004);
  EXPECT_TRUE(IsValidSequence(seq));
}

TEST(GeneratorTest, ZeroWildcardRateMeansPureBases) {
  CollectionOptions o;
  o.wildcard_rate = 0;
  o.seed = 6;
  CollectionGenerator gen(o);
  std::string seq = gen.RandomSequence(5000);
  for (char c : seq) EXPECT_TRUE(IsBase(c));
}

TEST(GeneratorTest, SequencesAreValidIupac) {
  CollectionOptions o;
  o.num_sequences = 20;
  o.wildcard_rate = 0.01;
  o.seed = 7;
  Result<SequenceCollection> col = CollectionGenerator(o).Generate();
  ASSERT_TRUE(col.ok());
  std::string seq;
  for (uint32_t i = 0; i < col->NumSequences(); ++i) {
    ASSERT_TRUE(col->GetSequence(i, &seq).ok());
    EXPECT_TRUE(IsValidSequence(seq));
  }
}

TEST(GeneratorTest, RepeatValidation) {
  CollectionOptions o;
  o.repeat_fraction = 0.95;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = CollectionOptions();
  o.repeat_fraction = 0.3;
  o.repeat_library_size = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = CollectionOptions();
  o.repeat_fraction = 0.3;
  o.repeat_divergence = 0.9;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(GeneratorTest, RepeatsCreateSharedSubstrings) {
  // With a tiny repeat library at zero drift, the same interval content
  // must recur across many sequences; without repeats it shouldn't.
  CollectionOptions with;
  with.num_sequences = 30;
  with.length_mu = 6.5;
  with.repeat_fraction = 0.5;
  with.repeat_library_size = 1;
  with.repeat_length = 100;
  with.repeat_divergence = 0.0;
  with.wildcard_rate = 0;
  with.seed = 9;
  CollectionGenerator gen(with);
  Result<SequenceCollection> col = gen.Generate();
  ASSERT_TRUE(col.ok());

  // Extract a probe from one sequence's repeat region by finding a
  // 40-mer that occurs in at least half of the sequences.
  std::string first;
  ASSERT_TRUE(col->GetSequence(0, &first).ok());
  bool found_shared = false;
  std::string seq;
  for (size_t start = 0; start + 40 <= first.size() && !found_shared;
       start += 20) {
    std::string probe = first.substr(start, 40);
    uint32_t containing = 0;
    for (uint32_t i = 0; i < col->NumSequences(); ++i) {
      ASSERT_TRUE(col->GetSequence(i, &seq).ok());
      containing += seq.find(probe) != std::string::npos;
    }
    found_shared = containing >= col->NumSequences() / 2;
  }
  EXPECT_TRUE(found_shared);
}

TEST(GeneratorTest, ZeroRepeatFractionMatchesPlainGeneration) {
  CollectionOptions o;
  o.num_sequences = 5;
  o.repeat_fraction = 0.0;
  o.seed = 10;
  CollectionGenerator a(o), b(o);
  EXPECT_EQ(a.RandomSequenceWithRepeats(500), b.RandomSequence(500));
}

TEST(GeneratorTest, RepeatSequencesValidIupac) {
  CollectionOptions o;
  o.num_sequences = 10;
  o.repeat_fraction = 0.4;
  o.wildcard_rate = 0.001;
  o.seed = 11;
  Result<SequenceCollection> col = CollectionGenerator(o).Generate();
  ASSERT_TRUE(col.ok());
  std::string seq;
  for (uint32_t i = 0; i < col->NumSequences(); ++i) {
    ASSERT_TRUE(col->GetSequence(i, &seq).ok());
    EXPECT_TRUE(IsValidSequence(seq));
  }
}

TEST(GeneratorTest, NamesAreUnique) {
  CollectionOptions o;
  o.num_sequences = 30;
  o.seed = 8;
  Result<SequenceCollection> col = CollectionGenerator(o).Generate();
  ASSERT_TRUE(col.ok());
  std::set<std::string> names;
  for (uint32_t i = 0; i < col->NumSequences(); ++i) {
    names.insert(col->Name(i));
  }
  EXPECT_EQ(names.size(), 30u);
}

}  // namespace
}  // namespace cafe::sim
