// Property tests over the whole codec family: every codec must round-trip
// arbitrary positive integer arrays drawn from distributions shaped like
// real postings data (geometric gaps, uniform, heavy-tailed, constant).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "coding/codec.h"
#include "util/random.h"

namespace cafe::coding {
namespace {

enum class Distribution { kGeometricSmall, kGeometricLarge, kUniform,
                          kHeavyTail, kAllOnes, kSingleton };

std::string DistName(Distribution d) {
  switch (d) {
    case Distribution::kGeometricSmall: return "geo_small";
    case Distribution::kGeometricLarge: return "geo_large";
    case Distribution::kUniform: return "uniform";
    case Distribution::kHeavyTail: return "heavy_tail";
    case Distribution::kAllOnes: return "all_ones";
    case Distribution::kSingleton: return "singleton";
  }
  return "?";
}

std::vector<uint64_t> Draw(Distribution d, size_t count, Rng* rng) {
  std::vector<uint64_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    switch (d) {
      case Distribution::kGeometricSmall:
        out.push_back(1 + rng->NextGeometric(0.3));
        break;
      case Distribution::kGeometricLarge:
        out.push_back(1 + rng->NextGeometric(0.001));
        break;
      case Distribution::kUniform:
        out.push_back(1 + rng->Uniform(1 << 20));
        break;
      case Distribution::kHeavyTail: {
        double u = std::max(rng->NextDouble(), 1e-6);
        out.push_back(1 + static_cast<uint64_t>(
                              std::min(std::pow(u, -2.0), 1e12)));
        break;
      }
      case Distribution::kAllOnes:
        out.push_back(1);
        break;
      case Distribution::kSingleton:
        out.push_back(987654321);
        break;
    }
  }
  return out;
}

struct ParamCase {
  CodecId codec;
  Distribution dist;
};

class CodecRoundTrip : public ::testing::TestWithParam<ParamCase> {};

TEST_P(CodecRoundTrip, EncodeDecodeIdentity) {
  auto [id, dist] = GetParam();
  auto codec = CreateCodec(id);
  ASSERT_NE(codec, nullptr);
  Rng rng(static_cast<uint64_t>(id) * 1000 + static_cast<uint64_t>(dist));
  for (size_t count : {size_t{1}, size_t{7}, size_t{100}, size_t{1000}}) {
    // Unary on large values would be pathological; cap its inputs.
    if (id == CodecId::kUnary &&
        (dist == Distribution::kGeometricLarge ||
         dist == Distribution::kUniform || dist == Distribution::kHeavyTail ||
         dist == Distribution::kSingleton)) {
      GTEST_SKIP() << "unary is not usable for large magnitudes";
    }
    std::vector<uint64_t> values = Draw(dist, count, &rng);
    if (id == CodecId::kFixed32) {
      for (uint64_t& v : values) v = (v % 0xFFFFFFFFull) + 1;
    }
    BitWriter w;
    codec->Encode(values, &w);
    std::vector<uint8_t> bytes = w.Finish();
    BitReader r(bytes);
    std::vector<uint64_t> back;
    codec->Decode(&r, values.size(), &back);
    EXPECT_FALSE(r.overflowed());
    EXPECT_EQ(back, values) << codec->name() << " count=" << count;
  }
}

TEST_P(CodecRoundTrip, ConcatenatedBlocksDecodeInOrder) {
  auto [id, dist] = GetParam();
  if (id == CodecId::kUnary && dist != Distribution::kGeometricSmall &&
      dist != Distribution::kAllOnes) {
    GTEST_SKIP() << "unary is not usable for large magnitudes";
  }
  auto codec = CreateCodec(id);
  Rng rng(99);
  std::vector<uint64_t> a = Draw(dist, 50, &rng);
  std::vector<uint64_t> b = Draw(dist, 75, &rng);
  if (id == CodecId::kFixed32) {
    for (uint64_t& v : a) v = (v % 0xFFFFFFFFull) + 1;
    for (uint64_t& v : b) v = (v % 0xFFFFFFFFull) + 1;
  }
  BitWriter w;
  codec->Encode(a, &w);
  codec->Encode(b, &w);
  std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  std::vector<uint64_t> back_a, back_b;
  codec->Decode(&r, a.size(), &back_a);
  codec->Decode(&r, b.size(), &back_b);
  EXPECT_EQ(back_a, a);
  EXPECT_EQ(back_b, b);
}

std::vector<ParamCase> AllCases() {
  std::vector<ParamCase> cases;
  for (CodecId id : AllCodecIds()) {
    for (Distribution d :
         {Distribution::kGeometricSmall, Distribution::kGeometricLarge,
          Distribution::kUniform, Distribution::kHeavyTail,
          Distribution::kAllOnes, Distribution::kSingleton}) {
      cases.push_back({id, d});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllDistributions, CodecRoundTrip,
    ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<ParamCase>& param_info) {
      return std::string(CodecIdName(param_info.param.codec)) + "_" +
             DistName(param_info.param.dist);
    });

TEST(CodecFactoryTest, NamesAreUniqueAndStable) {
  std::vector<std::string> names;
  for (CodecId id : AllCodecIds()) {
    auto codec = CreateCodec(id);
    ASSERT_NE(codec, nullptr);
    EXPECT_EQ(codec->name(), CodecIdName(id));
    EXPECT_EQ(codec->id(), id);
    names.push_back(codec->name());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(CodecComparisonTest, GolombWinsOnGeometricGaps) {
  // The compression claim behind the paper's index: for geometric-ish
  // d-gaps, parameterised Golomb beats the non-parameterised codes.
  Rng rng(7);
  std::vector<uint64_t> gaps = Draw(Distribution::kGeometricLarge, 5000, &rng);
  auto bits = [&](CodecId id) {
    auto codec = CreateCodec(id);
    BitWriter w;
    codec->Encode(gaps, &w);
    return w.bit_count();
  };
  uint64_t golomb = bits(CodecId::kGolomb);
  EXPECT_LT(golomb, bits(CodecId::kGamma));
  EXPECT_LT(golomb, bits(CodecId::kVByte));
  EXPECT_LT(golomb, bits(CodecId::kFixed32));
}

}  // namespace
}  // namespace cafe::coding
