#include <gtest/gtest.h>

#include "coding/binary.h"
#include "coding/elias.h"
#include "coding/golomb.h"
#include "coding/unary.h"
#include "coding/vbyte.h"
#include "util/bitio.h"

namespace cafe::coding {
namespace {

TEST(UnaryCodeTest, RoundTrip) {
  BitWriter w;
  for (uint64_t v = 1; v <= 40; ++v) EncodeUnary(&w, v);
  std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  for (uint64_t v = 1; v <= 40; ++v) EXPECT_EQ(DecodeUnary(&r), v);
}

TEST(UnaryCodeTest, BitCost) {
  EXPECT_EQ(UnaryBits(1), 1u);
  EXPECT_EQ(UnaryBits(7), 7u);
  BitWriter w;
  EncodeUnary(&w, 9);
  EXPECT_EQ(w.bit_count(), 9u);
}

TEST(GammaCodeTest, KnownCodes) {
  // gamma(1) = "1"
  {
    BitWriter w;
    EncodeGamma(&w, 1);
    EXPECT_EQ(w.bit_count(), 1u);
    std::vector<uint8_t> b = w.Finish();
    EXPECT_EQ(b[0], 0x80);
  }
  // gamma(2) = "010", gamma(3) = "011"
  {
    BitWriter w;
    EncodeGamma(&w, 2);
    EXPECT_EQ(w.bit_count(), 3u);
    std::vector<uint8_t> b = w.Finish();
    EXPECT_EQ(b[0], 0b01000000);
  }
  {
    BitWriter w;
    EncodeGamma(&w, 5);  // 101 -> "00" "1" "01" = 00101
    EXPECT_EQ(w.bit_count(), 5u);
    std::vector<uint8_t> b = w.Finish();
    EXPECT_EQ(b[0], 0b00101000);
  }
}

TEST(GammaCodeTest, RoundTripWideRange) {
  BitWriter w;
  std::vector<uint64_t> values;
  for (uint64_t v = 1; v < 2000; v += 7) values.push_back(v);
  values.push_back(uint64_t{1} << 40);
  values.push_back((uint64_t{1} << 40) + 12345);
  for (uint64_t v : values) EncodeGamma(&w, v);
  std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  for (uint64_t v : values) EXPECT_EQ(DecodeGamma(&r), v);
  EXPECT_FALSE(r.overflowed());
}

TEST(GammaCodeTest, BitCostMatchesFormula) {
  for (uint64_t v : {1ull, 2ull, 3ull, 4ull, 7ull, 8ull, 1000ull}) {
    BitWriter w;
    EncodeGamma(&w, v);
    EXPECT_EQ(w.bit_count(), GammaBits(v)) << v;
  }
  EXPECT_EQ(GammaBits(1), 1u);
  EXPECT_EQ(GammaBits(2), 3u);
  EXPECT_EQ(GammaBits(4), 5u);
}

TEST(DeltaCodeTest, RoundTripWideRange) {
  BitWriter w;
  std::vector<uint64_t> values;
  for (uint64_t v = 1; v < 5000; v += 13) values.push_back(v);
  values.push_back(uint64_t{1} << 50);
  for (uint64_t v : values) EncodeDelta(&w, v);
  std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  for (uint64_t v : values) EXPECT_EQ(DecodeDelta(&r), v);
}

TEST(DeltaCodeTest, ShorterThanGammaForLargeValues) {
  EXPECT_LT(DeltaBits(1 << 20), GammaBits(1 << 20));
  // And the cost formula matches the writer.
  BitWriter w;
  EncodeDelta(&w, 123456);
  EXPECT_EQ(w.bit_count(), DeltaBits(123456));
}

TEST(GolombCodeTest, RoundTripVariousParameters) {
  for (uint64_t b : {1ull, 2ull, 3ull, 7ull, 8ull, 64ull, 100ull}) {
    BitWriter w;
    for (uint64_t v = 1; v <= 300; ++v) EncodeGolomb(&w, v, b);
    std::vector<uint8_t> bytes = w.Finish();
    BitReader r(bytes);
    for (uint64_t v = 1; v <= 300; ++v) {
      EXPECT_EQ(DecodeGolomb(&r, b), v) << "b=" << b << " v=" << v;
    }
  }
}

TEST(GolombCodeTest, BitCostMatchesFormula) {
  for (uint64_t b : {1ull, 3ull, 8ull, 13ull}) {
    for (uint64_t v = 1; v <= 100; ++v) {
      BitWriter w;
      EncodeGolomb(&w, v, b);
      EXPECT_EQ(w.bit_count(), GolombBits(v, b)) << "b=" << b << " v=" << v;
    }
  }
}

TEST(GolombCodeTest, TruncatedBinarySavesBits) {
  // With b=3 (not a power of two), remainder 0 takes 1 bit, 1/2 take 2.
  EXPECT_EQ(GolombBits(1, 3), 2u);  // q=0 (1 bit) + rem 0 (1 bit)
  EXPECT_EQ(GolombBits(2, 3), 3u);
  EXPECT_EQ(GolombBits(3, 3), 3u);
  EXPECT_EQ(GolombBits(4, 3), 3u);  // q=1
}

TEST(GolombCodeTest, OptimalParameterFormula) {
  // mean gap = universe/occurrences; b ~= 0.69 * mean.
  EXPECT_EQ(OptimalGolombParameter(100, 10000), 69u);
  EXPECT_EQ(OptimalGolombParameter(1, 1), 1u);
  EXPECT_EQ(OptimalGolombParameter(0, 100), 1u);
  EXPECT_EQ(OptimalGolombParameter(100, 0), 1u);
  EXPECT_GE(OptimalGolombParameter(1000000, 1000000), 1u);
}

TEST(RiceCodeTest, RoundTrip) {
  for (int k : {0, 1, 3, 7}) {
    BitWriter w;
    for (uint64_t v = 1; v <= 200; ++v) EncodeRice(&w, v, k);
    std::vector<uint8_t> bytes = w.Finish();
    BitReader r(bytes);
    for (uint64_t v = 1; v <= 200; ++v) {
      EXPECT_EQ(DecodeRice(&r, k), v) << "k=" << k;
    }
  }
}

TEST(RiceCodeTest, MatchesGolombPowerOfTwo) {
  // Rice with parameter k is Golomb with b = 2^k: identical bit cost.
  for (uint64_t v = 1; v <= 64; ++v) {
    EXPECT_EQ(RiceBits(v, 3), GolombBits(v, 8)) << v;
  }
}

TEST(RiceCodeTest, OptimalParameter) {
  int k = OptimalRiceParameter(100, 10000);  // golomb b = 69 -> k = 6
  EXPECT_EQ(k, 6);
  EXPECT_EQ(OptimalRiceParameter(1, 1), 0);
}

TEST(VByteCodeTest, RoundTrip) {
  BitWriter w;
  std::vector<uint64_t> values = {1, 2, 127, 128, 129, 16384, 1 << 20,
                                  uint64_t{1} << 40};
  for (uint64_t v : values) EncodeVByte(&w, v);
  std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  for (uint64_t v : values) EXPECT_EQ(DecodeVByte(&r), v);
}

TEST(VByteCodeTest, ByteBoundaries) {
  EXPECT_EQ(VByteBits(1), 8u);
  EXPECT_EQ(VByteBits(128), 8u);   // stores v-1 = 127
  EXPECT_EQ(VByteBits(129), 16u);  // stores v-1 = 128
  EXPECT_EQ(VByteBits(uint64_t{1} << 22), 32u);
}

TEST(VByteCodeTest, ByteVectorForm) {
  std::vector<uint8_t> buf;
  AppendVByte(&buf, 1);
  AppendVByte(&buf, 300);
  AppendVByte(&buf, uint64_t{1} << 33);
  size_t pos = 0;
  EXPECT_EQ(ReadVByte(buf.data(), buf.size(), &pos), 1u);
  EXPECT_EQ(ReadVByte(buf.data(), buf.size(), &pos), 300u);
  EXPECT_EQ(ReadVByte(buf.data(), buf.size(), &pos), uint64_t{1} << 33);
  EXPECT_EQ(pos, buf.size());
}

TEST(FixedCodeTest, RoundTrip) {
  BitWriter w;
  EncodeFixed(&w, 1, 1);
  EncodeFixed(&w, 256, 8);
  EncodeFixed(&w, 1000, 16);
  EncodeFixed(&w, uint64_t{1} << 31, 32);
  std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_EQ(DecodeFixed(&r, 1), 1u);
  EXPECT_EQ(DecodeFixed(&r, 8), 256u);
  EXPECT_EQ(DecodeFixed(&r, 16), 1000u);
  EXPECT_EQ(DecodeFixed(&r, 32), uint64_t{1} << 31);
}

TEST(FixedCodeTest, WidthFor) {
  EXPECT_EQ(FixedWidthFor(1), 1);
  EXPECT_EQ(FixedWidthFor(2), 1);
  EXPECT_EQ(FixedWidthFor(3), 2);
  EXPECT_EQ(FixedWidthFor(256), 8);
  EXPECT_EQ(FixedWidthFor(257), 9);
}

TEST(CodeFamilyTest, GammaBeatsUnaryBeyondSmall) {
  EXPECT_LT(GammaBits(100), UnaryBits(100));
  EXPECT_EQ(UnaryBits(1), GammaBits(1));
}

TEST(CodeFamilyTest, GolombNearEntropyForGeometricGaps) {
  // For geometric gaps with mean ~32, optimal Golomb should use fewer
  // bits than gamma on average.
  uint64_t golomb_total = 0, gamma_total = 0;
  uint64_t b = OptimalGolombParameter(1000, 32000);
  for (uint64_t v = 1; v <= 64; ++v) {
    golomb_total += GolombBits(v, b);
    gamma_total += GammaBits(v);
  }
  EXPECT_LT(golomb_total, gamma_total);
}

}  // namespace
}  // namespace cafe::coding
