#include "collection/fasta.h"

#include <gtest/gtest.h>

#include "util/env.h"

namespace cafe {
namespace {

TEST(FastaParseTest, SingleRecord) {
  std::vector<FastaRecord> recs;
  ASSERT_TRUE(ParseFasta(">seq1 a description\nACGT\nACGT\n", &recs).ok());
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].id, "seq1");
  EXPECT_EQ(recs[0].description, "a description");
  EXPECT_EQ(recs[0].sequence, "ACGTACGT");
}

TEST(FastaParseTest, MultipleRecords) {
  std::vector<FastaRecord> recs;
  ASSERT_TRUE(
      ParseFasta(">a\nAC\nGT\n>b desc two\nTTTT\n>c\nG\n", &recs).ok());
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].sequence, "ACGT");
  EXPECT_EQ(recs[1].id, "b");
  EXPECT_EQ(recs[1].description, "desc two");
  EXPECT_EQ(recs[1].sequence, "TTTT");
  EXPECT_EQ(recs[2].sequence, "G");
}

TEST(FastaParseTest, NormalizesCaseAndUracil) {
  std::vector<FastaRecord> recs;
  ASSERT_TRUE(ParseFasta(">r\nacgu\nNryN\n", &recs).ok());
  EXPECT_EQ(recs[0].sequence, "ACGTNRYN");
}

TEST(FastaParseTest, BlankLinesAndWhitespaceTolerated) {
  std::vector<FastaRecord> recs;
  ASSERT_TRUE(ParseFasta("\n\n>r\n  ACGT  \n\nACGT\n\n", &recs).ok());
  EXPECT_EQ(recs[0].sequence, "ACGTACGT");
}

TEST(FastaParseTest, NoTrailingNewline) {
  std::vector<FastaRecord> recs;
  ASSERT_TRUE(ParseFasta(">r\nACGT", &recs).ok());
  EXPECT_EQ(recs[0].sequence, "ACGT");
}

TEST(FastaParseTest, CarriageReturnsTrimmed) {
  std::vector<FastaRecord> recs;
  ASSERT_TRUE(ParseFasta(">r desc\r\nACGT\r\n", &recs).ok());
  EXPECT_EQ(recs[0].description, "desc");
  EXPECT_EQ(recs[0].sequence, "ACGT");
}

TEST(FastaParseTest, EmptySequenceAllowed) {
  std::vector<FastaRecord> recs;
  ASSERT_TRUE(ParseFasta(">only_header\n>next\nAC\n", &recs).ok());
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_TRUE(recs[0].sequence.empty());
}

TEST(FastaParseTest, ErrorOnDataBeforeHeader) {
  std::vector<FastaRecord> recs;
  Status s = ParseFasta("ACGT\n>r\nAC\n", &recs);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("line 1"), std::string::npos);
}

TEST(FastaParseTest, ErrorOnEmptyHeader) {
  std::vector<FastaRecord> recs;
  Status s = ParseFasta(">\nACGT\n", &recs);
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(FastaParseTest, ErrorOnInvalidCharacterNamesRecord) {
  std::vector<FastaRecord> recs;
  Status s = ParseFasta(">good\nACGT\n>bad\nACZT\n", &recs);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("bad"), std::string::npos);
  EXPECT_NE(s.message().find("line 4"), std::string::npos);
}

TEST(FastaParseTest, EmptyInputYieldsNoRecords) {
  std::vector<FastaRecord> recs = {FastaRecord{}};
  ASSERT_TRUE(ParseFasta("", &recs).ok());
  EXPECT_TRUE(recs.empty());
}

TEST(FastaWriteTest, RoundTrip) {
  std::vector<FastaRecord> recs = {
      {"a", "first record", "ACGTACGTNN"},
      {"b", "", "T"},
  };
  std::string text = WriteFasta(recs, 4);
  std::vector<FastaRecord> back;
  ASSERT_TRUE(ParseFasta(text, &back).ok());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, recs[0].id);
  EXPECT_EQ(back[0].description, recs[0].description);
  EXPECT_EQ(back[0].sequence, recs[0].sequence);
  EXPECT_EQ(back[1].sequence, "T");
}

TEST(FastaWriteTest, LineWidthRespected) {
  std::vector<FastaRecord> recs = {{"a", "", std::string(100, 'A')}};
  std::string text = WriteFasta(recs, 30);
  // 100 bases at 30/line -> 4 sequence lines.
  size_t lines = 0;
  for (char c : text) lines += (c == '\n');
  EXPECT_EQ(lines, 5u);  // header + 4
}

TEST(FastaFileTest, WriteReadFile) {
  std::string path = TempDir() + "/cafe_fasta_test.fa";
  std::vector<FastaRecord> recs = {{"x", "d", "ACGTN"}};
  ASSERT_TRUE(WriteFastaFile(path, recs).ok());
  std::vector<FastaRecord> back;
  ASSERT_TRUE(ReadFastaFile(path, &back).ok());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].sequence, "ACGTN");
  ASSERT_TRUE(RemoveFile(path).ok());
}

TEST(FastaFileTest, ReadMissingFileFails) {
  std::vector<FastaRecord> recs;
  EXPECT_TRUE(ReadFastaFile("/nonexistent/x.fa", &recs).IsIOError());
}

}  // namespace
}  // namespace cafe
