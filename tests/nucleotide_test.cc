#include "alphabet/nucleotide.h"

#include <gtest/gtest.h>

namespace cafe {
namespace {

TEST(NucleotideTest, BaseCodes) {
  EXPECT_EQ(BaseToCode('A'), 0);
  EXPECT_EQ(BaseToCode('C'), 1);
  EXPECT_EQ(BaseToCode('G'), 2);
  EXPECT_EQ(BaseToCode('T'), 3);
  EXPECT_EQ(BaseToCode('a'), 0);
  EXPECT_EQ(BaseToCode('t'), 3);
  EXPECT_EQ(BaseToCode('U'), 3);
  EXPECT_EQ(BaseToCode('u'), 3);
}

TEST(NucleotideTest, NonBasesHaveNoCode) {
  EXPECT_EQ(BaseToCode('N'), -1);
  EXPECT_EQ(BaseToCode('R'), -1);
  EXPECT_EQ(BaseToCode('X'), -1);
  EXPECT_EQ(BaseToCode('-'), -1);
  EXPECT_EQ(BaseToCode(' '), -1);
}

TEST(NucleotideTest, CodeToBaseRoundTrip) {
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(BaseToCode(CodeToBase(c)), c);
  }
}

TEST(NucleotideTest, IsBase) {
  EXPECT_TRUE(IsBase('A'));
  EXPECT_TRUE(IsBase('c'));
  EXPECT_TRUE(IsBase('U'));
  EXPECT_FALSE(IsBase('N'));
  EXPECT_FALSE(IsBase('Z'));
}

TEST(NucleotideTest, IupacClassification) {
  const std::string wildcards = "RYSWKMBDHVN";
  for (char c : wildcards) {
    EXPECT_TRUE(IsIupac(c)) << c;
    EXPECT_TRUE(IsWildcard(c)) << c;
    EXPECT_TRUE(IsIupac(static_cast<char>(c + 32))) << c;  // lower case
  }
  for (char c : std::string("ACGTU")) {
    EXPECT_TRUE(IsIupac(c));
    EXPECT_FALSE(IsWildcard(c));
  }
  EXPECT_FALSE(IsIupac('E'));
  EXPECT_FALSE(IsIupac('?'));
}

TEST(NucleotideTest, IupacMasks) {
  EXPECT_EQ(IupacMask('A'), 1);
  EXPECT_EQ(IupacMask('C'), 2);
  EXPECT_EQ(IupacMask('G'), 4);
  EXPECT_EQ(IupacMask('T'), 8);
  EXPECT_EQ(IupacMask('R'), 1 | 4);   // A or G (purines)
  EXPECT_EQ(IupacMask('Y'), 2 | 8);   // C or T (pyrimidines)
  EXPECT_EQ(IupacMask('N'), 15);
  EXPECT_EQ(IupacMask('V'), 1 | 2 | 4);
  EXPECT_EQ(IupacMask('Z'), 0);
}

TEST(NucleotideTest, MaskToIupacInverse) {
  for (char c : std::string("ACGTRYSWKMBDHVN")) {
    EXPECT_EQ(MaskToIupac(IupacMask(c)), c) << c;
  }
}

TEST(NucleotideTest, Compatibility) {
  EXPECT_TRUE(IupacCompatible('A', 'A'));
  EXPECT_FALSE(IupacCompatible('A', 'C'));
  EXPECT_TRUE(IupacCompatible('N', 'A'));
  EXPECT_TRUE(IupacCompatible('N', 'T'));
  EXPECT_TRUE(IupacCompatible('R', 'A'));
  EXPECT_TRUE(IupacCompatible('R', 'G'));
  EXPECT_FALSE(IupacCompatible('R', 'C'));
  EXPECT_FALSE(IupacCompatible('R', 'Y'));  // purines vs pyrimidines
  EXPECT_TRUE(IupacCompatible('S', 'K'));   // share G
  EXPECT_FALSE(IupacCompatible('A', 'Z'));  // non-IUPAC never compatible
}

TEST(NucleotideTest, Complement) {
  EXPECT_EQ(Complement('A'), 'T');
  EXPECT_EQ(Complement('T'), 'A');
  EXPECT_EQ(Complement('C'), 'G');
  EXPECT_EQ(Complement('G'), 'C');
  EXPECT_EQ(Complement('N'), 'N');
  EXPECT_EQ(Complement('R'), 'Y');  // A|G -> T|C
  EXPECT_EQ(Complement('Y'), 'R');
  EXPECT_EQ(Complement('S'), 'S');  // C|G self-complementary
  EXPECT_EQ(Complement('W'), 'W');
  EXPECT_EQ(Complement('K'), 'M');
  EXPECT_EQ(Complement('M'), 'K');
  EXPECT_EQ(Complement('B'), 'V');
  EXPECT_EQ(Complement('V'), 'B');
  EXPECT_EQ(Complement('?'), '?');  // passthrough
}

TEST(NucleotideTest, ReverseComplement) {
  EXPECT_EQ(ReverseComplement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(ReverseComplement("AAAA"), "TTTT");
  EXPECT_EQ(ReverseComplement("ACGTN"), "NACGT");
  EXPECT_EQ(ReverseComplement(""), "");
  // Involution property.
  const std::string s = "ACGGTTANRY";
  EXPECT_EQ(ReverseComplement(ReverseComplement(s)), s);
}

TEST(NucleotideTest, ValidateSequence) {
  EXPECT_TRUE(IsValidSequence("ACGT"));
  EXPECT_TRUE(IsValidSequence("ACGTNRYSWKMBDHV"));
  EXPECT_TRUE(IsValidSequence(""));
  EXPECT_FALSE(IsValidSequence("ACGT X"));
  EXPECT_FALSE(IsValidSequence("ACG-T"));
}

TEST(NucleotideTest, Normalize) {
  EXPECT_EQ(NormalizeSequence("acgt"), "ACGT");
  EXPECT_EQ(NormalizeSequence("ACGU"), "ACGT");
  EXPECT_EQ(NormalizeSequence("uuu"), "TTT");
  EXPECT_EQ(NormalizeSequence("nAcGs"), "NACGS");
  // Invalid characters pass through for the validator to catch.
  EXPECT_EQ(NormalizeSequence("ac?t"), "AC?T");
}

}  // namespace
}  // namespace cafe
