#include "sim/workload.h"

#include <gtest/gtest.h>

#include "alphabet/nucleotide.h"

namespace cafe::sim {
namespace {

TEST(WorkloadOptionsTest, DefaultsValid) {
  EXPECT_TRUE(WorkloadOptions().Validate().ok());
}

TEST(WorkloadOptionsTest, ValidationCatchesBadValues) {
  WorkloadOptions o;
  o.num_queries = 0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = WorkloadOptions();
  o.query_length = 5;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o = WorkloadOptions();
  o.min_homolog_divergence = 0.5;
  o.max_homolog_divergence = 0.1;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(PlantedWorkloadTest, StructureAsConfigured) {
  CollectionOptions copt;
  copt.num_sequences = 30;
  copt.seed = 10;
  WorkloadOptions wopt;
  wopt.num_queries = 5;
  wopt.homologs_per_query = 3;
  wopt.seed = 11;
  Result<PlantedWorkload> wl = BuildPlantedWorkload(copt, wopt);
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(wl->queries.size(), 5u);
  // Collection = background + planted.
  EXPECT_EQ(wl->collection.NumSequences(), 30u + 5u * 3u);
  for (const PlantedQuery& q : wl->queries) {
    EXPECT_EQ(q.true_positives.size(), 3u);
    EXPECT_EQ(q.divergences.size(), 3u);
    EXPECT_FALSE(q.sequence.empty());
    EXPECT_TRUE(IsValidSequence(q.sequence));
    // Divergences ascend (strongest homologue first).
    for (size_t i = 1; i < q.divergences.size(); ++i) {
      EXPECT_LE(q.divergences[i - 1], q.divergences[i]);
    }
    // Planted ids refer to real sequences.
    for (uint32_t tp : q.true_positives) {
      EXPECT_LT(tp, wl->collection.NumSequences());
      EXPECT_GE(tp, 30u);  // appended after the background
    }
  }
}

TEST(PlantedWorkloadTest, HomologuesContainSimilarRegion) {
  CollectionOptions copt;
  copt.num_sequences = 10;
  copt.seed = 12;
  WorkloadOptions wopt;
  wopt.num_queries = 2;
  wopt.query_length = 100;
  wopt.homologs_per_query = 2;
  wopt.min_homolog_divergence = 0.01;
  wopt.max_homolog_divergence = 0.05;
  wopt.seed = 13;
  Result<PlantedWorkload> wl = BuildPlantedWorkload(copt, wopt);
  ASSERT_TRUE(wl.ok());
  // Host sequences must be longer than the core region (they have flanks).
  for (const PlantedQuery& q : wl->queries) {
    for (uint32_t tp : q.true_positives) {
      Result<size_t> len = wl->collection.SequenceLength(tp);
      ASSERT_TRUE(len.ok());
      EXPECT_GE(*len, 90u);
    }
  }
}

TEST(PlantedWorkloadTest, Deterministic) {
  CollectionOptions copt;
  copt.num_sequences = 10;
  copt.seed = 14;
  WorkloadOptions wopt;
  wopt.num_queries = 2;
  wopt.seed = 15;
  Result<PlantedWorkload> a = BuildPlantedWorkload(copt, wopt);
  Result<PlantedWorkload> b = BuildPlantedWorkload(copt, wopt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->queries[0].sequence, b->queries[0].sequence);
  EXPECT_EQ(a->queries[1].true_positives, b->queries[1].true_positives);
}

TEST(SampleQueriesTest, ProducesRequestedQueries) {
  CollectionOptions copt;
  copt.num_sequences = 20;
  copt.min_length = 300;
  copt.length_mu = 6.5;
  copt.seed = 16;
  Result<SequenceCollection> col = CollectionGenerator(copt).Generate();
  ASSERT_TRUE(col.ok());
  Result<std::vector<std::string>> queries =
      SampleQueries(*col, 8, 200, 0.05, 17);
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), 8u);
  for (const std::string& q : *queries) {
    EXPECT_GT(q.size(), 150u);  // indels may shift length slightly
    EXPECT_LT(q.size(), 250u);
    EXPECT_TRUE(IsValidSequence(q));
  }
}

TEST(SampleQueriesTest, ZeroDivergenceIsExactExcision) {
  CollectionOptions copt;
  copt.num_sequences = 5;
  copt.min_length = 500;
  copt.length_mu = 6.8;
  copt.wildcard_rate = 0;
  copt.seed = 18;
  Result<SequenceCollection> col = CollectionGenerator(copt).Generate();
  ASSERT_TRUE(col.ok());
  Result<std::vector<std::string>> queries =
      SampleQueries(*col, 3, 100, 0.0, 19);
  ASSERT_TRUE(queries.ok());
  // Each query must literally occur in some collection sequence.
  for (const std::string& q : *queries) {
    ASSERT_EQ(q.size(), 100u);
    bool found = false;
    std::string seq;
    for (uint32_t i = 0; i < col->NumSequences() && !found; ++i) {
      ASSERT_TRUE(col->GetSequence(i, &seq).ok());
      found = seq.find(q) != std::string::npos;
    }
    EXPECT_TRUE(found);
  }
}

TEST(SampleQueriesTest, EmptyCollectionFails) {
  SequenceCollection col;
  EXPECT_TRUE(
      SampleQueries(col, 1, 100, 0.0, 1).status().IsInvalidArgument());
}

TEST(SampleQueriesTest, TooShortSequencesFail) {
  SequenceCollection col;
  ASSERT_TRUE(col.Add("short", "", "ACGT").ok());
  EXPECT_TRUE(SampleQueries(col, 1, 100, 0.0, 1).status().IsInternal());
}

}  // namespace
}  // namespace cafe::sim
