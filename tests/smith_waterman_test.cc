#include "align/smith_waterman.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "alphabet/nucleotide.h"
#include "util/random.h"

namespace cafe {
namespace {

// Independent reference implementation: full-matrix Gotoh local alignment,
// O(mn) memory, written as directly from the recurrences as possible.
int ReferenceScore(std::string_view q, std::string_view t,
                   const ScoringScheme& s) {
  const int m = static_cast<int>(q.size());
  const int n = static_cast<int>(t.size());
  const int kNeg = -1000000;
  std::vector<std::vector<int>> H(m + 1, std::vector<int>(n + 1, 0));
  std::vector<std::vector<int>> E(m + 1, std::vector<int>(n + 1, kNeg));
  std::vector<std::vector<int>> F(m + 1, std::vector<int>(n + 1, kNeg));
  int best = 0;
  for (int i = 1; i <= m; ++i) {
    for (int j = 1; j <= n; ++j) {
      E[i][j] = std::max(H[i][j - 1] + s.gap_open,
                         E[i][j - 1] + s.gap_extend);
      F[i][j] = std::max(H[i - 1][j] + s.gap_open,
                         F[i - 1][j] + s.gap_extend);
      int diag = H[i - 1][j - 1] + s.Score(q[i - 1], t[j - 1]);
      H[i][j] = std::max({0, diag, E[i][j], F[i][j]});
      best = std::max(best, H[i][j]);
    }
  }
  return best;
}

std::string RandomSeq(size_t len, Rng* rng) {
  std::string s(len, 'A');
  for (char& c : s) c = CodeToBase(static_cast<int>(rng->Uniform(4)));
  return s;
}

// Recomputes an alignment's score from its transcript.
int ScoreFromOps(const LocalAlignment& a, std::string_view q,
                 std::string_view t, const ScoringScheme& s) {
  int score = 0;
  size_t qi = a.query_begin, ti = a.target_begin;
  bool in_gap_q = false, in_gap_t = false;
  for (EditOp op : a.ops) {
    switch (op) {
      case EditOp::kMatch:
      case EditOp::kMismatch:
        score += s.Score(q[qi], t[ti]);
        ++qi;
        ++ti;
        in_gap_q = in_gap_t = false;
        break;
      case EditOp::kInsertion:
        score += in_gap_q ? s.gap_extend : s.gap_open;
        in_gap_q = true;
        in_gap_t = false;
        ++qi;
        break;
      case EditOp::kDeletion:
        score += in_gap_t ? s.gap_extend : s.gap_open;
        in_gap_t = true;
        in_gap_q = false;
        ++ti;
        break;
    }
  }
  EXPECT_EQ(qi, a.query_end);
  EXPECT_EQ(ti, a.target_end);
  return score;
}

TEST(SmithWatermanTest, EmptyInputs) {
  Aligner aligner;
  EXPECT_EQ(aligner.ScoreOnly("", "ACGT"), 0);
  EXPECT_EQ(aligner.ScoreOnly("ACGT", ""), 0);
  Result<LocalAlignment> a = aligner.Align("", "");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->score, 0);
}

TEST(SmithWatermanTest, PerfectMatch) {
  Aligner aligner;
  const ScoringScheme& s = aligner.scheme();
  EXPECT_EQ(aligner.ScoreOnly("ACGT", "ACGT"), 4 * s.match);
  EXPECT_EQ(aligner.ScoreOnly("ACGTACGT", "ACGTACGT"), 8 * s.match);
}

TEST(SmithWatermanTest, SubstringMatch) {
  Aligner aligner;
  const ScoringScheme& s = aligner.scheme();
  EXPECT_EQ(aligner.ScoreOnly("CGTA", "TTTTCGTATTTT"), 4 * s.match);
}

TEST(SmithWatermanTest, CompletelyDifferent) {
  Aligner aligner;
  EXPECT_EQ(aligner.ScoreOnly("AAAA", "CCCC"), 0);
}

TEST(SmithWatermanTest, MismatchInMiddle) {
  Aligner aligner;
  const ScoringScheme& s = aligner.scheme();
  // ACGTACGT vs ACGAACGT: best local alignment takes the mismatch.
  int expected = 7 * s.match + s.mismatch;
  EXPECT_EQ(aligner.ScoreOnly("ACGTACGT", "ACGAACGT"), expected);
}

TEST(SmithWatermanTest, GapHandling) {
  Aligner aligner;
  const ScoringScheme& s = aligner.scheme();
  // Query is the target with "CC" inserted in the middle. The two-base
  // gap (open + extend) beats aligning only one ungapped half.
  std::string t = "ACGTAAGCTATTGCACGGAT";
  std::string q = t.substr(0, 10) + "CC" + t.substr(10);
  int with_gap = 20 * s.match + s.gap_open + s.gap_extend;
  EXPECT_EQ(aligner.ScoreOnly(q, t), with_gap);
}

TEST(SmithWatermanTest, AgreesWithReferenceOnRandomInputs) {
  Rng rng(2024);
  ScoringScheme s;
  Aligner aligner(s);
  for (int trial = 0; trial < 60; ++trial) {
    std::string q = RandomSeq(1 + rng.Uniform(60), &rng);
    std::string t = RandomSeq(1 + rng.Uniform(60), &rng);
    EXPECT_EQ(aligner.ScoreOnly(q, t), ReferenceScore(q, t, s))
        << "q=" << q << " t=" << t;
  }
}

TEST(SmithWatermanTest, AgreesWithReferenceUnderOtherSchemes) {
  Rng rng(11);
  ScoringScheme s;
  s.match = 2;
  s.mismatch = -1;
  s.gap_open = -3;
  s.gap_extend = -1;
  Aligner aligner(s);
  for (int trial = 0; trial < 40; ++trial) {
    std::string q = RandomSeq(1 + rng.Uniform(40), &rng);
    std::string t = RandomSeq(1 + rng.Uniform(40), &rng);
    EXPECT_EQ(aligner.ScoreOnly(q, t), ReferenceScore(q, t, s));
  }
}

TEST(SmithWatermanTest, AlignScoreMatchesScoreOnly) {
  Rng rng(3030);
  Aligner aligner;
  for (int trial = 0; trial < 40; ++trial) {
    std::string q = RandomSeq(5 + rng.Uniform(80), &rng);
    std::string t = RandomSeq(5 + rng.Uniform(80), &rng);
    Result<LocalAlignment> a = aligner.Align(q, t);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->score, aligner.ScoreOnly(q, t));
  }
}

TEST(SmithWatermanTest, TracebackScoreConsistent) {
  Rng rng(4040);
  ScoringScheme s;
  Aligner aligner(s);
  for (int trial = 0; trial < 40; ++trial) {
    std::string q = RandomSeq(10 + rng.Uniform(60), &rng);
    std::string t = RandomSeq(10 + rng.Uniform(60), &rng);
    Result<LocalAlignment> a = aligner.Align(q, t);
    ASSERT_TRUE(a.ok());
    if (a->score == 0) continue;
    EXPECT_EQ(ScoreFromOps(*a, q, t, s), a->score);
  }
}

TEST(SmithWatermanTest, TracebackCoordinatesValid) {
  Aligner aligner;
  std::string q = "TTTTACGTACGTTTTT";
  std::string t = "GGGGACGTACGTGGGG";
  Result<LocalAlignment> a = aligner.Align(q, t);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->query_begin, 4u);
  EXPECT_EQ(a->query_end, 12u);
  EXPECT_EQ(a->target_begin, 4u);
  EXPECT_EQ(a->target_end, 12u);
  EXPECT_EQ(a->ops.size(), 8u);
  EXPECT_EQ(a->Identity(), 1.0);
}

TEST(SmithWatermanTest, WildcardNeutralAlignment) {
  ScoringScheme s;
  s.iupac_aware = true;
  Aligner aligner(s);
  // N scores 0: alignment through N neither helps nor hurts.
  int with_n = aligner.ScoreOnly("ACGTNACGT", "ACGTAACGT");
  int plain = aligner.ScoreOnly("ACGTAACGT", "ACGTAACGT");
  EXPECT_EQ(with_n, plain - s.match);
}

TEST(SmithWatermanTest, MaxCellsGuard) {
  Aligner aligner;
  std::string q(1000, 'A');
  std::string t(1000, 'A');
  Result<LocalAlignment> a = aligner.Align(q, t, /*max_cells=*/1000);
  EXPECT_TRUE(a.status().IsInvalidArgument());
}

TEST(SmithWatermanTest, CellAccounting) {
  Aligner aligner;
  aligner.ResetCellCount();
  aligner.ScoreOnly("ACGTACGT", "ACGTACGTACGT");
  EXPECT_EQ(aligner.cells_computed(), 8u * 12u);
  aligner.ResetCellCount();
  EXPECT_EQ(aligner.cells_computed(), 0u);
}

TEST(SmithWatermanTest, LongGapAffinePreference) {
  // With affine gaps a single long gap must beat many short ones.
  ScoringScheme s;
  Aligner aligner(s);
  std::string q = "AAAAAAAAAA";
  std::string t = "AAAAACCCCCAAAAA";
  // Best: align 10 A's with a 5-base gap: 10*5 + (open + 4*extend).
  int expected = 10 * s.match + s.gap_open + 4 * s.gap_extend;
  EXPECT_EQ(aligner.ScoreOnly(q, t), std::max(expected, 5 * s.match));
}

}  // namespace
}  // namespace cafe
