#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/trace.h"
#include "search/partitioned.h"
#include "sim/workload.h"
#include "util/thread_pool.h"

namespace cafe {
namespace {

TEST(CounterTest, StartsAtZeroAndSums) {
  obs::Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add(3);
  c.Increment();
  c.Add(0);
  EXPECT_EQ(c.Value(), 4u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  // Exercised under TSan in CI: striped relaxed increments must be both
  // race-free and lossless.
  obs::Counter c;
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 10000;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads * kPerThread,
                   [&](size_t /*i*/, unsigned /*w*/) { c.Add(1); });
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(HistogramTest, BucketsByBitWidth) {
  obs::Histogram h;
  h.Record(0);     // bucket 0
  h.Record(1);     // bucket 1
  h.Record(2);     // bucket 2
  h.Record(3);     // bucket 2
  h.Record(1024);  // bucket 11
  obs::Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 1030u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1024u);
  EXPECT_DOUBLE_EQ(s.Mean(), 206.0);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[11], 1u);
}

TEST(HistogramTest, EmptySnapshot) {
  obs::Histogram h;
  obs::Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(HistogramTest, ConcurrentRecordsAreLossless) {
  obs::Histogram h;
  constexpr size_t kSamples = 40000;
  ThreadPool pool(8);
  pool.ParallelFor(kSamples, [&](size_t i, unsigned /*w*/) {
    h.Record(i % 7);
  });
  obs::Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, kSamples);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 6u);
}

TEST(RegistryTest, StablePointersPerName) {
  obs::MetricsRegistry r;
  obs::Counter* a = r.GetCounter("x.a");
  obs::Counter* b = r.GetCounter("x.b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, r.GetCounter("x.a"));
  obs::Histogram* h = r.GetHistogram("x.h");
  EXPECT_EQ(h, r.GetHistogram("x.h"));
}

TEST(RegistryTest, SnapshotsAreDeterministicForEqualState) {
  // Same metric state -> byte-identical exports, regardless of the
  // registration order (std::map sorts by name).
  obs::MetricsRegistry r1, r2;
  r1.GetCounter("b")->Add(2);
  r1.GetCounter("a")->Add(1);
  r1.GetHistogram("h")->Record(5);
  r2.GetCounter("a")->Add(1);
  r2.GetHistogram("h")->Record(5);
  r2.GetCounter("b")->Add(2);
  EXPECT_EQ(r1.SnapshotText(), r2.SnapshotText());
  EXPECT_EQ(r1.SnapshotJson(), r2.SnapshotJson());
  EXPECT_NE(r1.SnapshotJson().find("\"a\":1"), std::string::npos);
  EXPECT_NE(r1.SnapshotJson().find("\"counters\""), std::string::npos);
  EXPECT_NE(r1.SnapshotJson().find("\"histograms\""), std::string::npos);
}

TEST(RegistryTest, ConcurrentRegistrationIsSafe) {
  obs::MetricsRegistry r;
  ThreadPool pool(8);
  pool.ParallelFor(1000, [&](size_t i, unsigned /*w*/) {
    r.GetCounter(i % 2 == 0 ? "even" : "odd")->Add(1);
  });
  EXPECT_EQ(r.GetCounter("even")->Value(), 500u);
  EXPECT_EQ(r.GetCounter("odd")->Value(), 500u);
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(obs::JsonEscape(std::string("a\x01", 2)), "a\\u0001");
}

TEST(TimerTest, RecordsOnDestruction) {
  obs::Histogram h;
  { obs::Timer t(&h); }
  EXPECT_EQ(h.Snap().count, 1u);
  { obs::Timer t(nullptr); }  // detached: must be a no-op
  EXPECT_EQ(h.Snap().count, 1u);
}

TEST(TraceSpanTest, AccumulatesMicros) {
  double sink = 0.0;
  { obs::TraceSpan span(&sink); }
  EXPECT_GE(sink, 0.0);
  double before = sink;
  { obs::TraceSpan span(nullptr); }  // detached: must be a no-op
  EXPECT_EQ(sink, before);
}

TEST(SearchTraceTest, MergeIsFieldwise) {
  obs::SearchTrace a, b;
  a.queries = 1;
  a.intervals_extracted = 10;
  a.cells_computed = 100;
  a.coarse_micros = 1.5;
  b.queries = 2;
  b.intervals_extracted = 5;
  b.hits_reported = 3;
  b.coarse_micros = 2.5;
  a.Merge(b);
  EXPECT_EQ(a.queries, 3u);
  EXPECT_EQ(a.intervals_extracted, 15u);
  EXPECT_EQ(a.cells_computed, 100u);
  EXPECT_EQ(a.hits_reported, 3u);
  EXPECT_DOUBLE_EQ(a.coarse_micros, 4.0);
}

TEST(SearchTraceTest, CountersJsonExcludesTimings) {
  obs::SearchTrace t;
  t.queries = 1;
  t.total_micros = 123456.0;  // must not appear in the counters document
  std::string json = t.CountersJson();
  EXPECT_NE(json.find("\"queries\":1"), std::string::npos);
  EXPECT_EQ(json.find("micros"), std::string::npos);
  EXPECT_EQ(json.find("123456"), std::string::npos);
  EXPECT_NE(t.ToJson().find("\"timings_us\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Determinism: the SearchTrace counters must be byte-identical at every
// thread count — the per-worker sums commute and BatchSearchTraced
// merges per-query slots in input order.

struct Fixture {
  SequenceCollection collection;
  InvertedIndex index;
  std::vector<sim::PlantedQuery> queries;
};

Fixture MakeFixture() {
  sim::CollectionOptions copt;
  copt.num_sequences = 60;
  copt.length_mu = 6.0;
  copt.length_sigma = 0.4;
  copt.seed = 99;
  sim::WorkloadOptions wopt;
  wopt.num_queries = 4;
  wopt.query_length = 200;
  wopt.homologs_per_query = 3;
  wopt.min_homolog_divergence = 0.03;
  wopt.max_homolog_divergence = 0.12;
  wopt.seed = 7;

  Result<sim::PlantedWorkload> wl = sim::BuildPlantedWorkload(copt, wopt);
  EXPECT_TRUE(wl.ok()) << wl.status().ToString();

  IndexOptions iopt;
  iopt.interval_length = 8;
  Result<InvertedIndex> index = IndexBuilder::Build(wl->collection, iopt);
  EXPECT_TRUE(index.ok()) << index.status().ToString();

  Fixture f;
  f.collection = std::move(wl->collection);
  f.index = std::move(*index);
  f.queries = std::move(wl->queries);
  return f;
}

TEST(SearchTraceTest, CountersIdenticalAcrossThreadCounts) {
  Fixture f = MakeFixture();
  PartitionedSearch engine(&f.collection, &f.index);

  std::vector<std::string> queries;
  for (const sim::PlantedQuery& q : f.queries) queries.push_back(q.sequence);

  std::vector<std::string> reference;  // per-query CountersJson at 1 thread
  for (uint32_t threads : {1u, 4u}) {
    SearchOptions options;
    options.fine_candidates = 20;
    options.threads = threads;
    std::vector<obs::SearchTrace> traces;
    Result<std::vector<SearchResult>> batch =
        engine.BatchSearchTraced(queries, options, &traces);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(traces.size(), queries.size());
    std::vector<std::string> jsons;
    for (const obs::SearchTrace& t : traces) {
      EXPECT_EQ(t.queries, 1u);
      jsons.push_back(t.CountersJson());
    }
    if (reference.empty()) {
      reference = std::move(jsons);
    } else {
      EXPECT_EQ(jsons, reference) << "trace counters depend on --threads";
    }
  }
}

TEST(SearchTraceTest, CallerTraceIsMergeOfPerQuerySlots) {
  Fixture f = MakeFixture();
  PartitionedSearch engine(&f.collection, &f.index);
  std::vector<std::string> queries;
  for (const sim::PlantedQuery& q : f.queries) queries.push_back(q.sequence);

  SearchOptions options;
  options.fine_candidates = 20;
  std::vector<obs::SearchTrace> traces;
  obs::SearchTrace total;
  options.trace = &total;
  Result<std::vector<SearchResult>> batch =
      engine.BatchSearchTraced(queries, options, &traces);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  obs::SearchTrace merged;
  for (const obs::SearchTrace& t : traces) merged.Merge(t);
  EXPECT_EQ(total.CountersJson(), merged.CountersJson());
  EXPECT_EQ(total.queries, queries.size());
}

TEST(SearchTraceTest, TraceMatchesResultStats) {
  Fixture f = MakeFixture();
  PartitionedSearch engine(&f.collection, &f.index);
  SearchOptions options;
  options.fine_candidates = 20;
  obs::SearchTrace trace;
  options.trace = &trace;
  Result<SearchResult> r = engine.Search(f.queries[0].sequence, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(trace.candidates_aligned, r->stats.candidates_aligned);
  EXPECT_EQ(trace.cells_computed, r->stats.cells_computed);
  EXPECT_EQ(trace.hits_reported, r->hits.size());
  EXPECT_EQ(trace.candidates_kept,
            trace.candidates_ranked - trace.candidates_discarded);
  EXPECT_GT(trace.intervals_extracted, 0u);
  EXPECT_GT(trace.postings_decoded, 0u);
}

TEST(HistogramTest, ApproxPercentileTracksDistribution) {
  obs::Histogram h;
  // 100 samples of 10 and 100 samples of 1000: the median sits in the
  // low cluster, the upper tail in the high cluster.
  for (int i = 0; i < 100; ++i) h.Record(10);
  for (int i = 0; i < 100; ++i) h.Record(1000);
  obs::Histogram::Snapshot snap = h.Snap();

  uint64_t p25 = snap.ApproxPercentile(0.25);
  uint64_t p99 = snap.ApproxPercentile(0.99);
  // Log-scale buckets are exact only to a factor of two, and the
  // estimate clamps to the observed range.
  EXPECT_GE(p25, 10u);
  EXPECT_LT(p25, 20u);
  EXPECT_GT(p99, 500u);
  EXPECT_LE(p99, 1000u);
  // q=0 lands in the low bucket (upper edge 15, floored at min=10);
  // q=1 is clamped to the observed max.
  uint64_t p0 = snap.ApproxPercentile(0.0);
  EXPECT_GE(p0, 10u);
  EXPECT_LE(p0, 15u);
  EXPECT_EQ(snap.ApproxPercentile(1.0), 1000u);
}

TEST(HistogramTest, ApproxPercentileEdgeCases) {
  obs::Histogram empty;
  EXPECT_EQ(empty.Snap().ApproxPercentile(0.5), 0u);

  obs::Histogram zeros;
  zeros.Record(0);
  zeros.Record(0);
  EXPECT_EQ(zeros.Snap().ApproxPercentile(0.99), 0u);

  obs::Histogram one;
  one.Record(7);
  // A single sample IS every percentile: the estimate clamps to the
  // observed [min, max] range, which has collapsed to a point.
  EXPECT_EQ(one.Snap().ApproxPercentile(0.0), 7u);
  EXPECT_EQ(one.Snap().ApproxPercentile(0.5), 7u);
  EXPECT_EQ(one.Snap().ApproxPercentile(1.0), 7u);

  // Every sample in one bucket ([64, 127] for these values): any
  // quantile must land inside the bucket, clamped to the observed
  // min/max rather than the bucket edges.
  obs::Histogram packed;
  packed.Record(100);
  packed.Record(110);
  packed.Record(120);
  obs::Histogram::Snapshot snap = packed.Snap();
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    uint64_t v = snap.ApproxPercentile(q);
    EXPECT_GE(v, 100u) << "q=" << q;
    EXPECT_LE(v, 120u) << "q=" << q;
  }
  EXPECT_EQ(snap.ApproxPercentile(1.0), 120u);
}

// --- Windowed snapshots (DeltaFrom / MetricsRegistry::Delta) --------

TEST(HistogramTest, DeltaFromIsolatesTheWindow) {
  obs::Histogram h;
  h.Record(5);
  h.Record(1000);
  obs::Histogram::Snapshot before = h.Snap();
  h.Record(100);
  h.Record(100);
  h.Record(200);
  obs::Histogram::Snapshot delta = h.Snap().DeltaFrom(before);

  EXPECT_EQ(delta.count, 3u);
  EXPECT_EQ(delta.sum, 400u);
  // The interval's samples live in buckets 7 ([64,127]) and 8
  // ([128,255]); min/max are those bucket edges.
  EXPECT_EQ(delta.min, 64u);
  EXPECT_EQ(delta.max, 255u);
  // Interval percentiles stay meaningful: the p50 of {100,100,200}
  // lands in the [64,127] bucket.
  uint64_t p50 = delta.ApproxPercentile(0.50);
  EXPECT_GE(p50, 64u);
  EXPECT_LE(p50, 127u);

  // A no-op window deltas to empty.
  obs::Histogram::Snapshot now = h.Snap();
  EXPECT_EQ(now.DeltaFrom(now).count, 0u);
}

TEST(RegistryTest, DeltaComputesIntervalRates) {
  obs::MetricsRegistry r;
  r.GetCounter("c")->Add(5);
  r.GetHistogram("h")->Record(10);
  obs::MetricsSnapshot before = r.SnapshotData();

  r.GetCounter("c")->Add(3);
  r.GetHistogram("h")->Record(20);
  r.GetCounter("fresh")->Add(2);  // registered mid-window
  obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Delta(r.SnapshotData(), before);

  EXPECT_EQ(delta.counters.at("c"), 3u);
  EXPECT_EQ(delta.counters.at("fresh"), 2u);  // diffs against zero
  EXPECT_EQ(delta.histograms.at("h").count, 1u);
  EXPECT_EQ(delta.histograms.at("h").sum, 20u);
}

TEST(RegistryTest, SnapshotJsonHasPercentiles) {
  obs::MetricsRegistry r;
  for (int i = 0; i < 100; ++i) r.GetHistogram("h")->Record(64);
  std::string json = r.SnapshotJson();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  // All mass on one value: every percentile is that value (within the
  // bucket's factor-of-two, clamped to observed max = 64).
  EXPECT_NE(json.find("\"p99\":64"), std::string::npos) << json;
}

// --- Prometheus text exposition -------------------------------------

TEST(RegistryTest, SnapshotPrometheusExposition) {
  obs::MetricsRegistry r;
  r.GetCounter("server.requests_accepted")->Add(7);
  r.GetHistogram("server.request_micros")->Record(0);
  r.GetHistogram("server.request_micros")->Record(100);
  std::string text = r.SnapshotPrometheus();

  // Counters: cafe_ prefix, dots to underscores, _total suffix.
  EXPECT_NE(
      text.find("# TYPE cafe_server_requests_accepted_total counter"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("cafe_server_requests_accepted_total 7"),
            std::string::npos);

  // Histograms: cumulative le buckets, +Inf, _sum, _count.
  EXPECT_NE(text.find("# TYPE cafe_server_request_micros histogram"),
            std::string::npos);
  EXPECT_NE(text.find("cafe_server_request_micros_bucket{le=\"0\"} 1"),
            std::string::npos)
      << text;
  // 100 lands in bucket [64,127]; cumulative count at that edge is 2.
  EXPECT_NE(text.find("cafe_server_request_micros_bucket{le=\"127\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cafe_server_request_micros_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cafe_server_request_micros_sum 100"),
            std::string::npos);
  EXPECT_NE(text.find("cafe_server_request_micros_count 2"),
            std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

// --- Log line formatting --------------------------------------------

TEST(LogTest, FormatLogLine) {
  // 1234567890 s + 123456 us since the epoch.
  const int64_t t = 1234567890123456;
  EXPECT_EQ(obs::FormatLogLine(obs::LogSeverity::kInfo, "hello world",
                               /*trace_id=*/0, t, /*tid=*/0),
            "2009-02-13T23:31:30.123Z I tid=0 hello world");
  EXPECT_EQ(obs::FormatLogLine(obs::LogSeverity::kError, "boom",
                               /*trace_id=*/0xdeadbeef, t, /*tid=*/3),
            "2009-02-13T23:31:30.123Z E tid=3 "
            "trace=00000000deadbeef boom");
  EXPECT_EQ(obs::FormatLogLine(obs::LogSeverity::kWarning, "careful",
                               /*trace_id=*/0, t, /*tid=*/12),
            "2009-02-13T23:31:30.123Z W tid=12 careful");
}

}  // namespace
}  // namespace cafe
