#include "coding/interpolative.h"

#include <gtest/gtest.h>

#include "coding/codec.h"
#include "util/random.h"

namespace cafe::coding {
namespace {

void RoundTrip(const std::vector<uint64_t>& values, uint64_t universe) {
  BitWriter w;
  EncodeInterpolative(values, universe, &w);
  std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  std::vector<uint64_t> back;
  DecodeInterpolative(&r, values.size(), universe, &back);
  EXPECT_EQ(back, values) << "universe " << universe;
  EXPECT_FALSE(r.overflowed());
}

TEST(InterpolativeTest, Empty) {
  RoundTrip({}, 100);
}

TEST(InterpolativeTest, Singleton) {
  RoundTrip({1}, 1);
  RoundTrip({5}, 10);
  RoundTrip({10}, 10);
}

TEST(InterpolativeTest, DenseRange) {
  // The whole universe present: every value is forced, zero payload bits.
  std::vector<uint64_t> all;
  for (uint64_t v = 1; v <= 64; ++v) all.push_back(v);
  BitWriter w;
  EncodeInterpolative(all, 64, &w);
  EXPECT_EQ(w.bit_count(), 0u);
  std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  std::vector<uint64_t> back;
  DecodeInterpolative(&r, all.size(), 64, &back);
  EXPECT_EQ(back, all);
}

TEST(InterpolativeTest, SparseList) {
  RoundTrip({3, 900, 90000, 1000000}, 1 << 24);
}

TEST(InterpolativeTest, BoundaryValues) {
  RoundTrip({1, 1000000}, 1000000);
}

TEST(InterpolativeTest, RandomRoundTrips) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t universe = 10 + rng.Uniform(1 << 20);
    size_t count = 1 + rng.Uniform(200);
    if (count > universe) count = universe;
    // Sample distinct sorted values.
    std::vector<uint64_t> values;
    uint64_t v = 0;
    uint64_t headroom = universe - count;
    for (size_t i = 0; i < count; ++i) {
      v += 1 + rng.Uniform(headroom / count + 1);
      values.push_back(v);
    }
    ASSERT_LE(values.back(), universe);
    RoundTrip(values, universe);
  }
}

TEST(InterpolativeTest, ClusteredBeatsGolomb) {
  // A tightly clustered list (runs of consecutive ids) is interpolative
  // coding's best case; Golomb pays ~per-gap overhead regardless.
  std::vector<uint64_t> gaps;
  for (int cluster = 0; cluster < 50; ++cluster) {
    gaps.push_back(5000);  // jump to the next cluster
    for (int i = 0; i < 40; ++i) gaps.push_back(1);  // dense run
  }
  auto interp = CreateCodec(CodecId::kInterpolative);
  auto golomb = CreateCodec(CodecId::kGolomb);
  BitWriter wi, wg;
  interp->Encode(gaps, &wi);
  golomb->Encode(gaps, &wg);
  EXPECT_LT(wi.bit_count(), wg.bit_count());
}

TEST(InterpolativeTest, MinimalBinaryBits) {
  EXPECT_EQ(MinimalBinaryBits(1), 0);
  EXPECT_EQ(MinimalBinaryBits(2), 1);
  EXPECT_EQ(MinimalBinaryBits(3), 2);
  EXPECT_EQ(MinimalBinaryBits(4), 2);
  EXPECT_EQ(MinimalBinaryBits(1024), 10);
}

TEST(InterpolativeCodecTest, GapInterfaceRoundTrip) {
  auto codec = CreateCodec(CodecId::kInterpolative);
  std::vector<uint64_t> gaps = {5, 1, 1, 100, 3, 77, 1};
  BitWriter w;
  codec->Encode(gaps, &w);
  std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  std::vector<uint64_t> back;
  codec->Decode(&r, gaps.size(), &back);
  EXPECT_EQ(back, gaps);
}

}  // namespace
}  // namespace cafe::coding
