#include "align/scoring.h"

#include <gtest/gtest.h>

#include "align/smith_waterman.h"

namespace cafe {
namespace {

TEST(ScoringTest, DefaultsAreValid) {
  ScoringScheme s;
  EXPECT_TRUE(s.Validate().ok());
}

TEST(ScoringTest, MatchAndMismatch) {
  ScoringScheme s;
  EXPECT_EQ(s.Score('A', 'A'), s.match);
  EXPECT_EQ(s.Score('A', 'C'), s.mismatch);
  EXPECT_EQ(s.Score('G', 'G'), s.match);
  EXPECT_EQ(s.Score('T', 'G'), s.mismatch);
}

TEST(ScoringTest, WildcardNeutralWhenAware) {
  ScoringScheme s;
  s.iupac_aware = true;
  s.wildcard_score = 0;
  EXPECT_EQ(s.Score('N', 'A'), 0);
  EXPECT_EQ(s.Score('A', 'N'), 0);
  EXPECT_EQ(s.Score('R', 'A'), 0);   // compatible
  EXPECT_EQ(s.Score('R', 'C'), s.mismatch);  // incompatible
  EXPECT_EQ(s.Score('N', 'N'), 0);
}

TEST(ScoringTest, WildcardAsMismatchWhenUnaware) {
  ScoringScheme s;
  s.iupac_aware = false;
  EXPECT_EQ(s.Score('N', 'A'), s.mismatch);
  // Identical non-base characters compare equal under the unaware rule.
  EXPECT_EQ(s.Score('N', 'N'), s.match);
}

TEST(ScoringTest, ValidationCatchesBadSchemes) {
  ScoringScheme s;
  s.match = 0;
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
  s = ScoringScheme();
  s.mismatch = 1;
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
  s = ScoringScheme();
  s.gap_open = 0;
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
  s = ScoringScheme();
  s.gap_extend = -20;  // more negative than open
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(PairScoreTableTest, MatchesScheme) {
  ScoringScheme s;
  PairScoreTable table(s);
  const std::string alphabet = "ACGTNRYSWKMBDHVacgt?";
  for (char a : alphabet) {
    for (char b : alphabet) {
      EXPECT_EQ(table(a, b), s.Score(a, b)) << a << " vs " << b;
    }
  }
}

TEST(PairScoreTableTest, RowAccessor) {
  ScoringScheme s;
  PairScoreTable table(s);
  const int16_t* row = table.Row('A');
  EXPECT_EQ(row[static_cast<uint8_t>('A')], s.match);
  EXPECT_EQ(row[static_cast<uint8_t>('C')], s.mismatch);
}

}  // namespace
}  // namespace cafe
