// Parameterised sweep over index configurations: every combination of
// interval length (including the sparse-directory regime), stride and
// granularity must agree with a brute-force reference, survive
// serialization, and be served identically by the disk-resident reader.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "collection/collection.h"
#include "index/disk_index.h"
#include "index/interval.h"
#include "index/inverted_index.h"
#include "sim/generator.h"
#include "util/env.h"

namespace cafe {
namespace {

struct IndexConfig {
  int interval_length;
  uint32_t stride;
  IndexGranularity granularity;
};

std::string ConfigName(const ::testing::TestParamInfo<IndexConfig>& info) {
  return "n" + std::to_string(info.param.interval_length) + "_s" +
         std::to_string(info.param.stride) + "_" +
         (info.param.granularity == IndexGranularity::kPositional ? "pos"
                                                                  : "doc");
}

class IndexConfigTest : public ::testing::TestWithParam<IndexConfig> {
 protected:
  static void SetUpTestSuite() {
    sim::CollectionOptions copt;
    copt.num_sequences = 30;
    copt.length_mu = 5.6;
    copt.length_sigma = 0.5;
    copt.wildcard_rate = 0.005;
    copt.seed = 314;
    collection_ = new SequenceCollection(
        *sim::CollectionGenerator(copt).Generate());
  }
  static void TearDownTestSuite() {
    delete collection_;
    collection_ = nullptr;
  }

  static SequenceCollection* collection_;
};

SequenceCollection* IndexConfigTest::collection_ = nullptr;

using PostingMap =
    std::map<uint32_t,
             std::vector<std::tuple<uint32_t, uint32_t, uint32_t>>>;

// (term -> [(doc, tf position index, position)]) reference; for document
// granularity positions are recorded as 0.
PostingMap BruteForce(const SequenceCollection& col,
                      const IndexConfig& config) {
  PostingMap ref;
  std::string seq;
  for (uint32_t doc = 0; doc < col.NumSequences(); ++doc) {
    EXPECT_TRUE(col.GetSequence(doc, &seq).ok());
    ForEachInterval(seq, config.interval_length, config.stride,
                    [&](uint32_t pos, uint32_t term) {
                      uint32_t p =
                          config.granularity == IndexGranularity::kPositional
                              ? pos
                              : 0;
                      ref[term].emplace_back(doc, 0, p);
                    });
  }
  return ref;
}

PostingMap Materialize(const PostingSource& source,
                       const TermDirectory& directory,
                       IndexGranularity granularity) {
  PostingMap out;
  directory.ForEachTerm([&](uint32_t term, const TermEntry&) {
    source.ScanPostings(term, [&](uint32_t doc, uint32_t tf,
                                  const uint32_t* pos, uint32_t npos) {
      if (granularity == IndexGranularity::kPositional) {
        EXPECT_EQ(tf, npos);
        for (uint32_t i = 0; i < npos; ++i) {
          out[term].emplace_back(doc, 0, pos[i]);
        }
      } else {
        for (uint32_t i = 0; i < tf; ++i) {
          out[term].emplace_back(doc, 0, 0);
        }
      }
    });
  });
  return out;
}

TEST_P(IndexConfigTest, MatchesBruteForceAndRoundTrips) {
  const IndexConfig& config = GetParam();
  IndexOptions options;
  options.interval_length = config.interval_length;
  options.stride = config.stride;
  options.granularity = config.granularity;

  Result<InvertedIndex> index = IndexBuilder::Build(*collection_, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  PostingMap ref = BruteForce(*collection_, config);
  EXPECT_EQ(index->stats().num_terms, ref.size());
  EXPECT_EQ(Materialize(*index, index->directory(), config.granularity),
            ref);

  // Serialization round trip preserves everything.
  std::string data;
  index->Serialize(&data);
  Result<InvertedIndex> back = InvertedIndex::Deserialize(data);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(Materialize(*back, back->directory(), config.granularity), ref);

  // The disk reader serves the same postings.
  std::string path = TempDir() + "/cafe_index_param_" +
                     std::to_string(config.interval_length) + "_" +
                     std::to_string(config.stride) + ".idx";
  ASSERT_TRUE(index->Save(path).ok());
  Result<std::unique_ptr<DiskIndex>> disk = DiskIndex::Open(path);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ(Materialize(**disk, index->directory(), config.granularity),
            ref);
  ASSERT_TRUE(RemoveFile(path).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndexConfigTest,
    ::testing::Values(
        IndexConfig{4, 1, IndexGranularity::kPositional},
        IndexConfig{6, 1, IndexGranularity::kPositional},
        IndexConfig{8, 1, IndexGranularity::kPositional},
        IndexConfig{8, 1, IndexGranularity::kDocument},
        IndexConfig{8, 4, IndexGranularity::kPositional},
        IndexConfig{8, 8, IndexGranularity::kDocument},
        IndexConfig{12, 1, IndexGranularity::kPositional},
        IndexConfig{13, 1, IndexGranularity::kPositional},  // sparse dir
        IndexConfig{13, 2, IndexGranularity::kDocument},
        IndexConfig{16, 1, IndexGranularity::kPositional}),
    ConfigName);

}  // namespace
}  // namespace cafe
