// Tests of the three scan-based baseline engines, including agreement
// with each other and with the exhaustive oracle on planted homologies.

#include <gtest/gtest.h>

#include "search/blast_like.h"
#include "search/exhaustive.h"
#include "search/fasta_like.h"
#include "sim/workload.h"

namespace cafe {
namespace {

struct Fixture {
  SequenceCollection collection;
  std::vector<sim::PlantedQuery> queries;
};

Fixture MakeFixture() {
  sim::CollectionOptions copt;
  copt.num_sequences = 50;
  copt.length_mu = 6.0;
  copt.length_sigma = 0.4;
  copt.seed = 31;
  sim::WorkloadOptions wopt;
  wopt.num_queries = 3;
  wopt.query_length = 200;
  wopt.homologs_per_query = 2;
  wopt.min_homolog_divergence = 0.03;
  wopt.max_homolog_divergence = 0.10;
  wopt.seed = 5;
  Result<sim::PlantedWorkload> wl = sim::BuildPlantedWorkload(copt, wopt);
  EXPECT_TRUE(wl.ok());
  Fixture f;
  f.collection = std::move(wl->collection);
  f.queries = std::move(wl->queries);
  return f;
}

TEST(ExhaustiveSearchTest, FindsPlantedHomologs) {
  Fixture f = MakeFixture();
  ExhaustiveSearch engine(&f.collection);
  SearchOptions options;
  for (const sim::PlantedQuery& q : f.queries) {
    Result<SearchResult> r = engine.Search(q.sequence, options);
    ASSERT_TRUE(r.ok());
    ASSERT_GE(r->hits.size(), q.true_positives.size());
    EXPECT_EQ(r->hits[0].seq_id, q.true_positives[0]);
    EXPECT_EQ(r->stats.candidates_aligned, f.collection.NumSequences());
  }
}

TEST(ExhaustiveSearchTest, ScansEverySequence) {
  Fixture f = MakeFixture();
  ExhaustiveSearch engine(&f.collection);
  SearchOptions options;
  Result<SearchResult> r = engine.Search(f.queries[0].sequence, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.candidates_ranked, f.collection.NumSequences());
  EXPECT_GT(r->stats.cells_computed, 0u);
}

TEST(ExhaustiveSearchTest, RejectsEmptyQueryAndBadScoring) {
  Fixture f = MakeFixture();
  ExhaustiveSearch engine(&f.collection);
  SearchOptions options;
  EXPECT_TRUE(engine.Search("", options).status().IsInvalidArgument());
  options.scoring.gap_open = 5;
  EXPECT_TRUE(engine.Search("ACGTACGT", options)
                  .status()
                  .IsInvalidArgument());
}

TEST(ExhaustiveSearchTest, TracebackAlignments) {
  Fixture f = MakeFixture();
  ExhaustiveSearch engine(&f.collection);
  SearchOptions options;
  options.traceback = true;
  options.max_results = 2;
  Result<SearchResult> r = engine.Search(f.queries[0].sequence, options);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->hits.empty());
  EXPECT_FALSE(r->hits[0].alignment.ops.empty());
  EXPECT_EQ(r->hits[0].alignment.score, r->hits[0].score);
}

TEST(BlastLikeSearchTest, FindsPlantedHomologs) {
  Fixture f = MakeFixture();
  BlastLikeSearch engine(&f.collection);
  SearchOptions options;
  for (const sim::PlantedQuery& q : f.queries) {
    Result<SearchResult> r = engine.Search(q.sequence, options);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r->hits.empty());
    EXPECT_EQ(r->hits[0].seq_id, q.true_positives[0]);
  }
}

TEST(BlastLikeSearchTest, AgreesWithExhaustiveTopHit) {
  Fixture f = MakeFixture();
  BlastLikeSearch blast(&f.collection);
  ExhaustiveSearch exh(&f.collection);
  SearchOptions options;
  for (const sim::PlantedQuery& q : f.queries) {
    Result<SearchResult> rb = blast.Search(q.sequence, options);
    Result<SearchResult> re = exh.Search(q.sequence, options);
    ASSERT_TRUE(rb.ok() && re.ok());
    ASSERT_FALSE(rb->hits.empty());
    EXPECT_EQ(rb->hits[0].seq_id, re->hits[0].seq_id);
  }
}

TEST(BlastLikeSearchTest, RejectsBadParams) {
  Fixture f = MakeFixture();
  BlastLikeParams params;
  params.seed_length = 2;
  BlastLikeSearch engine(&f.collection, params);
  SearchOptions options;
  EXPECT_TRUE(engine.Search(f.queries[0].sequence, options)
                  .status()
                  .IsInvalidArgument());
  BlastLikeSearch ok_engine(&f.collection);
  EXPECT_TRUE(ok_engine.Search("ACGT", options)  // shorter than seed
                  .status()
                  .IsInvalidArgument());
}

TEST(BlastLikeSearchTest, UnrelatedQueryFindsNothingStrong) {
  SequenceCollection col;
  ASSERT_TRUE(col.Add("g", "", std::string(500, 'G')).ok());
  BlastLikeSearch engine(&col);
  SearchOptions options;
  Result<SearchResult> r = engine.Search(std::string(100, 'A'), options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->hits.empty());
}

TEST(FastaLikeSearchTest, FindsPlantedHomologs) {
  Fixture f = MakeFixture();
  FastaLikeSearch engine(&f.collection);
  SearchOptions options;
  for (const sim::PlantedQuery& q : f.queries) {
    Result<SearchResult> r = engine.Search(q.sequence, options);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r->hits.empty());
    EXPECT_EQ(r->hits[0].seq_id, q.true_positives[0]);
  }
}

TEST(FastaLikeSearchTest, AgreesWithExhaustiveTopHit) {
  Fixture f = MakeFixture();
  FastaLikeSearch fasta(&f.collection);
  ExhaustiveSearch exh(&f.collection);
  SearchOptions options;
  const sim::PlantedQuery& q = f.queries[0];
  Result<SearchResult> rf = fasta.Search(q.sequence, options);
  Result<SearchResult> re = exh.Search(q.sequence, options);
  ASSERT_TRUE(rf.ok() && re.ok());
  ASSERT_FALSE(rf->hits.empty());
  EXPECT_EQ(rf->hits[0].seq_id, re->hits[0].seq_id);
}

TEST(FastaLikeSearchTest, RejectsBadParams) {
  Fixture f = MakeFixture();
  FastaLikeParams params;
  params.ktup = 1;
  FastaLikeSearch engine(&f.collection, params);
  SearchOptions options;
  EXPECT_TRUE(engine.Search(f.queries[0].sequence, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(FastaLikeSearchTest, MinDiagonalHitsFilters) {
  Fixture f = MakeFixture();
  FastaLikeParams params;
  params.min_diagonal_hits = 1000000;  // impossible
  FastaLikeSearch engine(&f.collection, params);
  SearchOptions options;
  Result<SearchResult> r = engine.Search(f.queries[0].sequence, options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->hits.empty());
  EXPECT_EQ(r->stats.candidates_aligned, 0u);
}

TEST(EngineNamesTest, Distinct) {
  Fixture f = MakeFixture();
  ExhaustiveSearch a(&f.collection);
  BlastLikeSearch b(&f.collection);
  FastaLikeSearch c(&f.collection);
  EXPECT_NE(a.name(), b.name());
  EXPECT_NE(b.name(), c.name());
  EXPECT_NE(a.name(), c.name());
}

}  // namespace
}  // namespace cafe
