#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace cafe::eval {
namespace {

std::vector<SearchHit> Hits(std::initializer_list<uint32_t> ids) {
  std::vector<SearchHit> out;
  int score = 1000;
  for (uint32_t id : ids) {
    SearchHit h;
    h.seq_id = id;
    h.score = score--;
    out.push_back(h);
  }
  return out;
}

TEST(RecallAtKTest, PerfectRecall) {
  auto hits = Hits({1, 2, 3});
  EXPECT_DOUBLE_EQ(RecallAtK(hits, {1, 2, 3}, 3), 1.0);
}

TEST(RecallAtKTest, PartialRecall) {
  auto hits = Hits({1, 9, 2, 8, 7});
  EXPECT_DOUBLE_EQ(RecallAtK(hits, {1, 2, 3, 4}, 5), 0.5);
}

TEST(RecallAtKTest, CutoffMatters) {
  auto hits = Hits({9, 8, 1});
  EXPECT_DOUBLE_EQ(RecallAtK(hits, {1}, 2), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK(hits, {1}, 3), 1.0);
}

TEST(RecallAtKTest, EmptyRelevantIsPerfect) {
  EXPECT_DOUBLE_EQ(RecallAtK(Hits({1}), {}, 10), 1.0);
}

TEST(RecallAtKTest, EmptyHitsIsZero) {
  EXPECT_DOUBLE_EQ(RecallAtK({}, {1, 2}, 10), 0.0);
}

TEST(RecallAtKTest, DuplicateRelevantIdsCollapse) {
  auto hits = Hits({1});
  EXPECT_DOUBLE_EQ(RecallAtK(hits, {1, 1, 1}, 10), 1.0);
}

TEST(AveragePrecisionTest, PerfectRanking) {
  auto hits = Hits({1, 2, 3, 9, 8});
  EXPECT_DOUBLE_EQ(AveragePrecision(hits, {1, 2, 3}), 1.0);
}

TEST(AveragePrecisionTest, WorstRanking) {
  auto hits = Hits({9, 8, 7, 1});
  // Single relevant at rank 4: AP = 1/4.
  EXPECT_DOUBLE_EQ(AveragePrecision(hits, {1}), 0.25);
}

TEST(AveragePrecisionTest, Interleaved) {
  auto hits = Hits({1, 9, 2});
  // Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecision(hits, {1, 2}), (1.0 + 2.0 / 3.0) / 2, 1e-12);
}

TEST(AveragePrecisionTest, MissingRelevantPenalized) {
  auto hits = Hits({1});
  EXPECT_NEAR(AveragePrecision(hits, {1, 2}), 0.5, 1e-12);
}

TEST(AveragePrecisionTest, EmptyRelevantIsPerfect) {
  EXPECT_DOUBLE_EQ(AveragePrecision(Hits({5}), {}), 1.0);
}

TEST(PrecisionAtKTest, Basics) {
  auto hits = Hits({1, 9, 2, 8});
  EXPECT_DOUBLE_EQ(PrecisionAtK(hits, {1, 2}, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(hits, {1, 2}, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(hits, {1, 2}, 4), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(hits, {1, 2}, 0), 0.0);
  // Short result list: missing slots count as misses.
  EXPECT_DOUBLE_EQ(PrecisionAtK(Hits({1}), {1}, 10), 0.1);
}

TEST(PrecisionRecallCurveTest, PointsAtEachRelevantRank) {
  auto hits = Hits({1, 9, 2});
  auto curve = PrecisionRecallCurve(hits, {1, 2});
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].recall, 1.0);
  EXPECT_NEAR(curve[1].precision, 2.0 / 3.0, 1e-12);
}

TEST(PrecisionRecallCurveTest, EmptyRelevant) {
  EXPECT_TRUE(PrecisionRecallCurve(Hits({1}), {}).empty());
}

TEST(ElevenPointTest, PerfectRanking) {
  auto hits = Hits({1, 2, 3});
  EXPECT_DOUBLE_EQ(ElevenPointAveragePrecision(hits, {1, 2, 3}), 1.0);
}

TEST(ElevenPointTest, NothingFound) {
  auto hits = Hits({9, 8});
  EXPECT_DOUBLE_EQ(ElevenPointAveragePrecision(hits, {1}), 0.0);
}

TEST(ElevenPointTest, InterpolationUsesBestLaterPrecision) {
  // Relevant at ranks 2 and 3: precision points (0.5, 0.5), (1.0, 2/3).
  // Interpolated precision at recall <= 0.5 is max(0.5, 2/3) = 2/3;
  // at recall in (0.5, 1.0] it is 2/3. So all 11 points = 2/3.
  auto hits = Hits({9, 1, 2});
  EXPECT_NEAR(ElevenPointAveragePrecision(hits, {1, 2}), 2.0 / 3.0, 1e-12);
}

TEST(ElevenPointTest, EmptyRelevantIsPerfect) {
  EXPECT_DOUBLE_EQ(ElevenPointAveragePrecision(Hits({5}), {}), 1.0);
}

TEST(OverlapAtKTest, IdenticalRankings) {
  auto a = Hits({1, 2, 3});
  EXPECT_DOUBLE_EQ(OverlapAtK(a, a, 3), 1.0);
}

TEST(OverlapAtKTest, DisjointRankings) {
  EXPECT_DOUBLE_EQ(OverlapAtK(Hits({1, 2}), Hits({3, 4}), 2), 0.0);
}

TEST(OverlapAtKTest, OrderInsensitiveWithinK) {
  EXPECT_DOUBLE_EQ(OverlapAtK(Hits({2, 1}), Hits({1, 2}), 2), 1.0);
}

TEST(OverlapAtKTest, PartialOverlap) {
  EXPECT_DOUBLE_EQ(OverlapAtK(Hits({1, 5, 6, 7}), Hits({1, 2, 3, 4}), 4),
                   0.25);
}

TEST(OverlapAtKTest, ShortOracleUsesItsLength) {
  // Oracle has 2 hits, k = 10: denominator is 2.
  EXPECT_DOUBLE_EQ(OverlapAtK(Hits({1, 2, 9}), Hits({1, 2}), 10), 1.0);
}

TEST(OverlapAtKTest, EmptyOracleIsPerfect) {
  EXPECT_DOUBLE_EQ(OverlapAtK(Hits({1}), {}, 5), 1.0);
}

}  // namespace
}  // namespace cafe::eval
