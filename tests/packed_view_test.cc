#include "seqstore/packed_view.h"

#include <gtest/gtest.h>

#include "align/smith_waterman.h"
#include "align/xdrop.h"
#include "alphabet/nucleotide.h"
#include "seqstore/sequence_store.h"
#include "util/random.h"

namespace cafe {
namespace {

std::string RandomBases(size_t len, Rng* rng) {
  std::string s(len, 'A');
  for (char& c : s) c = CodeToBase(static_cast<int>(rng->Uniform(4)));
  return s;
}

TEST(PackedQueryTest, RoundTripPureBases) {
  Rng rng(1);
  for (size_t len : {0u, 1u, 3u, 4u, 5u, 31u, 32u, 33u, 200u}) {
    std::string seq = RandomBases(len, &rng);
    Result<PackedQuery> q = PackedQuery::FromString(seq);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->view().ToString(), seq) << len;
  }
}

TEST(PackedQueryTest, WildcardsSubstituted) {
  Result<PackedQuery> q = PackedQuery::FromString("ANRYT");
  ASSERT_TRUE(q.ok());
  // N -> A (first of ACGT), R -> A (first of AG), Y -> C (first of CT).
  EXPECT_EQ(q->view().ToString(), "AAACT");
}

TEST(PackedQueryTest, RejectsNonIupac) {
  EXPECT_TRUE(PackedQuery::FromString("AC-GT").status().IsInvalidArgument());
}

TEST(PackedViewTest, BaseCodeMatchesString) {
  Rng rng(2);
  std::string seq = RandomBases(100, &rng);
  Result<PackedQuery> q = PackedQuery::FromString(seq);
  ASSERT_TRUE(q.ok());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(q->view().BaseCode(i), BaseToCode(seq[i])) << i;
  }
}

TEST(PackedViewTest, Extract64AllOffsets) {
  Rng rng(3);
  std::string seq = RandomBases(100, &rng);
  Result<PackedQuery> q = PackedQuery::FromString(seq);
  ASSERT_TRUE(q.ok());
  for (size_t pos = 0; pos < seq.size(); ++pos) {
    int valid = 0;
    uint64_t w = q->view().Extract64(pos, &valid);
    size_t expect_valid = std::min<size_t>(32, seq.size() - pos);
    ASSERT_EQ(static_cast<size_t>(valid), expect_valid) << pos;
    for (int k = 0; k < valid; ++k) {
      int code = static_cast<int>((w >> (62 - 2 * k)) & 3);
      EXPECT_EQ(code, BaseToCode(seq[pos + k])) << "pos " << pos << " k "
                                                << k;
    }
  }
  int valid = -1;
  q->view().Extract64(seq.size(), &valid);
  EXPECT_EQ(valid, 0);
}

TEST(PackedMatchCountTest, MatchesNaive) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    std::string sa = RandomBases(10 + rng.Uniform(150), &rng);
    std::string sb = RandomBases(10 + rng.Uniform(150), &rng);
    Result<PackedQuery> a = PackedQuery::FromString(sa);
    Result<PackedQuery> b = PackedQuery::FromString(sb);
    ASSERT_TRUE(a.ok() && b.ok());
    size_t apos = rng.Uniform(sa.size());
    size_t bpos = rng.Uniform(sb.size());
    size_t len = rng.Uniform(
        std::min(sa.size() - apos, sb.size() - bpos) + 1);
    size_t naive = 0;
    for (size_t i = 0; i < len; ++i) {
      naive += sa[apos + i] == sb[bpos + i];
    }
    EXPECT_EQ(PackedMatchCount(a->view(), apos, b->view(), bpos, len),
              naive)
        << "trial " << trial;
  }
}

TEST(PackedXDropTest, MatchesScalarOnRandomData) {
  Rng rng(5);
  ScoringScheme scheme;  // +5/-4; iupac-aware irrelevant for pure bases
  PairScoreTable table(scheme);
  for (int trial = 0; trial < 200; ++trial) {
    // Correlated sequences so extensions actually run.
    std::string sa = RandomBases(50 + rng.Uniform(300), &rng);
    std::string sb = sa;
    for (char& c : sb) {
      if (rng.Bernoulli(0.1)) c = CodeToBase(static_cast<int>(rng.Uniform(4)));
    }
    uint32_t seed_len = 8;
    uint32_t limit = static_cast<uint32_t>(sa.size()) - seed_len;
    uint32_t pos = static_cast<uint32_t>(rng.Uniform(limit));
    int xdrop = 5 + static_cast<int>(rng.Uniform(40));

    UngappedSegment scalar =
        XDropExtend(sa, sb, pos, pos, seed_len, table, xdrop);
    Result<PackedQuery> a = PackedQuery::FromString(sa);
    Result<PackedQuery> b = PackedQuery::FromString(sb);
    ASSERT_TRUE(a.ok() && b.ok());
    UngappedSegment packed =
        PackedXDropExtend(a->view(), b->view(), pos, pos, seed_len,
                          scheme.match, scheme.mismatch, xdrop);

    EXPECT_EQ(packed.score, scalar.score) << "trial " << trial;
    EXPECT_EQ(packed.query_begin, scalar.query_begin);
    EXPECT_EQ(packed.query_end, scalar.query_end);
    EXPECT_EQ(packed.target_begin, scalar.target_begin);
    EXPECT_EQ(packed.target_end, scalar.target_end);
  }
}

TEST(PackedXDropTest, DifferentDiagonals) {
  Rng rng(6);
  ScoringScheme scheme;
  PairScoreTable table(scheme);
  for (int trial = 0; trial < 50; ++trial) {
    std::string core = RandomBases(80, &rng);
    std::string sa = RandomBases(rng.Uniform(40), &rng) + core +
                     RandomBases(rng.Uniform(40), &rng);
    std::string sb = RandomBases(rng.Uniform(40), &rng) + core +
                     RandomBases(rng.Uniform(40), &rng);
    // Find the core in both (by construction).
    uint32_t apos = static_cast<uint32_t>(sa.find(core)) + 10;
    uint32_t bpos = static_cast<uint32_t>(sb.find(core)) + 10;
    UngappedSegment scalar =
        XDropExtend(sa, sb, apos, bpos, 8, table, 20);
    Result<PackedQuery> a = PackedQuery::FromString(sa);
    Result<PackedQuery> b = PackedQuery::FromString(sb);
    ASSERT_TRUE(a.ok() && b.ok());
    UngappedSegment packed = PackedXDropExtend(
        a->view(), b->view(), apos, bpos, 8, scheme.match, scheme.mismatch,
        20);
    EXPECT_EQ(packed.score, scalar.score);
    EXPECT_EQ(packed.query_begin, scalar.query_begin);
    EXPECT_EQ(packed.query_end, scalar.query_end);
  }
}

TEST(PackedStoreViewTest, ViewsPayloadWithoutDecode) {
  SequenceStore store;
  Rng rng(7);
  std::vector<std::string> seqs;
  for (int i = 0; i < 10; ++i) {
    seqs.push_back(RandomBases(50 + rng.Uniform(200), &rng));
    ASSERT_TRUE(store.Append(seqs.back()).ok());
  }
  for (uint32_t i = 0; i < 10; ++i) {
    Result<PackedView> view = store.GetPackedView(i);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(view->ToString(), seqs[i]) << i;
  }
  EXPECT_TRUE(store.GetPackedView(99).status().IsNotFound());
}

TEST(PackedStoreViewTest, WildcardsAppearSubstituted) {
  SequenceStore store;
  ASSERT_TRUE(store.Append("ACGTNACGT").ok());
  Result<PackedView> view = store.GetPackedView(0);
  ASSERT_TRUE(view.ok());
  // N is stored as its first ambiguity base (A); the lossless path
  // (Get) still restores it.
  EXPECT_EQ(view->ToString(), "ACGTAACGT");
  std::string full;
  ASSERT_TRUE(store.Get(0, &full).ok());
  EXPECT_EQ(full, "ACGTNACGT");
}

TEST(PackedStoreViewTest, StoreQueryComparison) {
  // End-to-end: compare a packed query against a store-resident packed
  // sequence without any decode.
  SequenceStore store;
  Rng rng(8);
  std::string target = RandomBases(500, &rng);
  std::string probe = target.substr(200, 64);
  ASSERT_TRUE(store.Append(target).ok());
  Result<PackedView> view = store.GetPackedView(0);
  Result<PackedQuery> query = PackedQuery::FromString(probe);
  ASSERT_TRUE(view.ok() && query.ok());
  EXPECT_EQ(PackedMatchCount(query->view(), 0, *view, 200, 64), 64u);
  UngappedSegment seg =
      PackedXDropExtend(query->view(), *view, 0, 200, 16, 5, -4, 20);
  EXPECT_GE(seg.score, 64 * 5);
  EXPECT_EQ(seg.target_begin, 200u);
}

}  // namespace
}  // namespace cafe
