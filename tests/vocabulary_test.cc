#include "index/vocabulary.h"

#include <gtest/gtest.h>

#include "index/interval.h"

namespace cafe {
namespace {

TEST(TermDirectoryTest, EmptyDirectory) {
  TermDirectory dir(8);
  EXPECT_EQ(dir.NumTerms(), 0u);
  EXPECT_EQ(dir.Find(0), nullptr);
  EXPECT_EQ(dir.Find(65535), nullptr);
}

TEST(TermDirectoryTest, FindOrCreateDense) {
  TermDirectory dir(8);
  TermEntry* e = dir.FindOrCreate(1234);
  ASSERT_NE(e, nullptr);
  e->posting_count = 3;
  e->doc_count = 2;
  EXPECT_EQ(dir.NumTerms(), 1u);
  const TermEntry* found = dir.Find(1234);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->posting_count, 3u);
  EXPECT_EQ(found->doc_count, 2u);
}

TEST(TermDirectoryTest, ZeroPostingEntriesAreInvisible) {
  TermDirectory dir(8);
  dir.FindOrCreate(7);  // created but never given postings
  EXPECT_EQ(dir.Find(7), nullptr);
  size_t visited = 0;
  dir.ForEachTerm([&](uint32_t, const TermEntry&) { ++visited; });
  EXPECT_EQ(visited, 0u);
}

TEST(TermDirectoryTest, ForEachTermSortedDense) {
  TermDirectory dir(8);
  for (uint32_t t : {500u, 3u, 65535u, 100u}) {
    dir.FindOrCreate(t)->posting_count = t + 1;
  }
  std::vector<uint32_t> seen;
  dir.ForEachTerm([&](uint32_t term, const TermEntry& e) {
    seen.push_back(term);
    EXPECT_EQ(e.posting_count, term + 1);
  });
  EXPECT_EQ(seen, (std::vector<uint32_t>{3, 100, 500, 65535}));
}

TEST(TermDirectoryTest, ForEachTermSortedSparse) {
  TermDirectory dir(14);  // beyond dense limit
  for (uint32_t t : {99999u, 5u, 1u << 27}) {
    dir.FindOrCreate(t)->posting_count = 1;
  }
  std::vector<uint32_t> seen;
  dir.ForEachTerm([&](uint32_t term, const TermEntry&) {
    seen.push_back(term);
  });
  EXPECT_EQ(seen, (std::vector<uint32_t>{5, 99999, 1u << 27}));
}

TEST(TermDirectoryTest, SparseFindMatchesDenseSemantics) {
  TermDirectory dense(8), sparse(14);
  for (TermDirectory* dir : {&dense, &sparse}) {
    dir->FindOrCreate(42)->posting_count = 9;
    const TermEntry* e = dir->Find(42);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->posting_count, 9u);
    EXPECT_EQ(dir->Find(43), nullptr);
    EXPECT_EQ(dir->NumTerms(), 1u);
  }
}

TEST(TermDirectoryTest, EraseDense) {
  TermDirectory dir(8);
  dir.FindOrCreate(10)->posting_count = 1;
  dir.FindOrCreate(20)->posting_count = 1;
  dir.Erase(10);
  EXPECT_EQ(dir.NumTerms(), 1u);
  EXPECT_EQ(dir.Find(10), nullptr);
  ASSERT_NE(dir.Find(20), nullptr);
  dir.Erase(999);  // absent: no-op
  EXPECT_EQ(dir.NumTerms(), 1u);
}

TEST(TermDirectoryTest, EraseSparse) {
  TermDirectory dir(14);
  dir.FindOrCreate(10)->posting_count = 1;
  dir.Erase(10);
  EXPECT_EQ(dir.NumTerms(), 0u);
  EXPECT_EQ(dir.Find(10), nullptr);
}

TEST(TermDirectoryTest, MutableIteration) {
  TermDirectory dir(8);
  dir.FindOrCreate(5)->posting_count = 1;
  dir.FindOrCreate(6)->posting_count = 2;
  dir.ForEachTermMutable([&](uint32_t, TermEntry* e) {
    e->bit_offset = 77;
  });
  EXPECT_EQ(dir.Find(5)->bit_offset, 77u);
  EXPECT_EQ(dir.Find(6)->bit_offset, 77u);
}

TEST(TermDirectoryTest, MemoryBytesNonZero) {
  TermDirectory dense(8);
  EXPECT_EQ(dense.MemoryBytes(),
            VocabularyUniverse(8) * sizeof(TermEntry));
  TermDirectory sparse(14);
  sparse.FindOrCreate(1)->posting_count = 1;
  EXPECT_GT(sparse.MemoryBytes(), 0u);
}

TEST(TermDirectoryTest, DenseLimitBoundary) {
  // n = 12 is still dense; n = 13 must use the sparse backend and still
  // behave identically.
  TermDirectory at_limit(12);
  TermDirectory beyond(13);
  at_limit.FindOrCreate(4096)->posting_count = 2;
  beyond.FindOrCreate(4096)->posting_count = 2;
  EXPECT_EQ(at_limit.Find(4096)->posting_count, 2u);
  EXPECT_EQ(beyond.Find(4096)->posting_count, 2u);
}

}  // namespace
}  // namespace cafe
