// Tests for the span timeline layer (src/obs/span.{h,cc}) and its
// engine instrumentation: recorder semantics (implicit anchor, arena
// overflow, cross-thread AddSpan), Chrome trace JSON export, sampling,
// the /tracez backing store, and — the load-bearing contract — that a
// search records the same span names and the same (name, parent-name)
// tree shape at every thread count. The 4-thread cases run under TSan
// in CI, exercising the lock-free arena against concurrent fine
// workers.

#include "obs/span.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "search/partitioned.h"
#include "sim/workload.h"
#include "util/thread_pool.h"

namespace cafe {
namespace {

// --- SpanRecorder ----------------------------------------------------

TEST(SpanRecorderTest, StartEndBuildsATreeUnderTheAnchor) {
  obs::SpanRecorder rec(0xabcdef);
  EXPECT_EQ(rec.trace_id(), 0xabcdefu);
  EXPECT_EQ(rec.current(), 0u);

  uint32_t root = rec.StartSpan("request");
  EXPECT_EQ(root, 1u);
  EXPECT_EQ(rec.current(), root);

  uint32_t child = rec.StartSpan("search");
  EXPECT_EQ(rec.current(), child);
  uint32_t grandchild = rec.StartSpan("coarse.rank");
  rec.EndSpan(grandchild);
  EXPECT_EQ(rec.current(), child);  // anchor popped back to the parent
  rec.EndSpan(child);
  EXPECT_EQ(rec.current(), root);
  rec.EndSpan(root);
  EXPECT_EQ(rec.current(), 0u);

  std::vector<obs::SpanEvent> spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "request");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].parent, child);
  for (const obs::SpanEvent& s : spans) {
    EXPECT_GE(s.end_ns, s.begin_ns) << s.name;
    EXPECT_EQ(s.tid, obs::DenseThreadId());
  }
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(SpanRecorderTest, ExplicitParentAndAddSpanLeaveTheAnchorAlone) {
  obs::SpanRecorder rec(1);
  uint32_t root = rec.StartSpan("request");

  uint32_t side = rec.StartSpan("queue.wait", /*parent=*/root);
  EXPECT_EQ(rec.current(), root);  // explicit-parent form: anchor unmoved
  rec.EndSpan(side);
  EXPECT_EQ(rec.current(), root);  // non-anchor end: anchor unmoved

  uint64_t begin = obs::SpanRecorder::NowNanos();
  uint64_t end = obs::SpanRecorder::NowNanos();
  uint32_t added = rec.AddSpan("fine.worker", root, /*tid=*/42, begin, end);
  EXPECT_NE(added, 0u);
  EXPECT_EQ(rec.current(), root);

  std::vector<obs::SpanEvent> spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[2].tid, 42u);  // AddSpan keeps the caller's stamps
  EXPECT_EQ(spans[2].begin_ns, begin);
  EXPECT_EQ(spans[2].end_ns, end);
}

TEST(SpanRecorderTest, OverflowCountsDroppedAndStaysValid) {
  obs::SpanRecorder rec(7, /*capacity=*/2);
  uint32_t a = rec.StartSpan("request");
  uint32_t b = rec.StartSpan("search");
  uint32_t c = rec.StartSpan("coarse.rank");  // arena full
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_EQ(c, 0u);
  EXPECT_EQ(rec.AddSpan("fine.worker", b, 0, 0, 0), 0u);
  rec.EndSpan(c);  // EndSpan(0) must be a no-op
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.dropped(), 2u);
  // The dropped span never became the anchor, so the open spans are
  // still nested correctly.
  EXPECT_EQ(rec.current(), b);
  // Export still works, and reports the loss.
  std::string json = rec.ChromeTraceJson();
  EXPECT_NE(json.find("\"dropped\":2"), std::string::npos) << json;
}

TEST(SpanRecorderTest, ConcurrentRecordingClaimsUniqueSlots) {
  // Run under TSan in CI: many threads hammering one arena must neither
  // race nor lose spans.
  obs::SpanRecorder rec(9, /*capacity=*/4096);
  constexpr size_t kSpans = 4000;
  ThreadPool pool(8);
  pool.ParallelFor(kSpans, [&](size_t i, unsigned /*w*/) {
    if (i % 2 == 0) {
      uint32_t id = rec.StartSpan("fine.align", /*parent=*/0);
      rec.EndSpan(id);
    } else {
      uint64_t now = obs::SpanRecorder::NowNanos();
      rec.AddSpan("fine.worker", 0, obs::DenseThreadId(), now, now);
    }
  });
  EXPECT_EQ(rec.size(), kSpans);
  EXPECT_EQ(rec.dropped(), 0u);
  std::set<uint32_t> ids;
  for (const obs::SpanEvent& s : rec.Snapshot()) ids.insert(s.id);
  EXPECT_EQ(ids.size(), kSpans);  // every slot claimed exactly once
}

TEST(SpanRecorderTest, ChromeTraceJsonShape) {
  obs::SpanRecorder rec(0xdeadbeef);
  uint32_t root = rec.StartSpan("request");
  uint32_t child = rec.StartSpan("search");
  rec.EndSpan(child);
  rec.EndSpan(root);
  uint32_t open = rec.StartSpan("queue.wait");  // left open on purpose

  std::string json = rec.ChromeTraceJson();
  EXPECT_NE(json.find("\"trace_id\":\"00000000deadbeef\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"id\":1,\"parent\":0}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"args\":{\"id\":2,\"parent\":1}"),
            std::string::npos)
      << json;
  // The unclosed span renders with dur 0, not a negative duration.
  EXPECT_NE(open, 0u);
  EXPECT_NE(json.find("\"dur\":0.000"), std::string::npos) << json;
  EXPECT_EQ(json.find("-"), std::string::npos) << json;
}

TEST(SpanTest, NullRecorderIsANoOp) {
  obs::Span detached(nullptr, "search");
  EXPECT_EQ(detached.id(), 0u);  // and the destructor must not crash
}

// --- SpanSampler -----------------------------------------------------

TEST(SpanSamplerTest, RateZeroNeverRateOneAlways) {
  obs::SpanSampler never(0.0);
  obs::SpanSampler always(1.0);
  for (uint64_t id : {0ull, 1ull, 0xdeadbeefull}) {
    EXPECT_FALSE(never.ShouldSample(id));
    EXPECT_TRUE(always.ShouldSample(id));
  }
}

TEST(SpanSamplerTest, DecisionIsDeterministicPerTraceId) {
  obs::SpanSampler a(0.25);
  obs::SpanSampler b(0.25);
  size_t sampled = 0;
  for (uint64_t id = 1; id <= 4000; ++id) {
    bool first = a.ShouldSample(id);
    EXPECT_EQ(first, a.ShouldSample(id)) << id;  // stable across calls
    EXPECT_EQ(first, b.ShouldSample(id)) << id;  // and across samplers
    EXPECT_EQ(first, obs::SplitMix64Hash(id) <
                         static_cast<uint64_t>(0.25 *
                                               18446744073709551616.0));
    if (first) ++sampled;
  }
  // A well-mixed hash should land near the configured rate.
  EXPECT_GT(sampled, 4000u * 15 / 100);
  EXPECT_LT(sampled, 4000u * 35 / 100);
}

TEST(SpanSamplerTest, ZeroTraceIdFallsBackToRoundRobin) {
  obs::SpanSampler sampler(0.25);
  size_t sampled = 0;
  for (int i = 0; i < 400; ++i) {
    if (sampler.ShouldSample(0)) ++sampled;
  }
  EXPECT_EQ(sampled, 100u);  // exactly every 4th id-less request
}

// --- SpanStore -------------------------------------------------------

TEST(SpanStoreTest, PutGetListAndEviction) {
  obs::SpanStore store(/*capacity=*/2);
  EXPECT_EQ(store.size(), 0u);
  std::string json;
  EXPECT_FALSE(store.GetJson(1, &json));

  for (uint64_t id = 1; id <= 3; ++id) {
    obs::SpanRecorder rec(id);
    rec.EndSpan(rec.StartSpan("request"));
    store.Put(rec);
  }
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.GetJson(1, &json));  // oldest evicted
  ASSERT_TRUE(store.GetJson(3, &json));
  EXPECT_NE(json.find("\"trace_id\":\"0000000000000003\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);

  // The index page lists newest first with span counts.
  std::string list = store.ListJson();
  size_t pos3 = list.find("0000000000000003");
  size_t pos2 = list.find("0000000000000002");
  EXPECT_NE(pos3, std::string::npos) << list;
  EXPECT_NE(pos2, std::string::npos) << list;
  EXPECT_LT(pos3, pos2);
  EXPECT_NE(list.find("\"spans\":1"), std::string::npos) << list;
}

// --- Engine instrumentation: thread-count-invariant timelines --------

struct Fixture {
  SequenceCollection collection;
  InvertedIndex index;
  std::vector<sim::PlantedQuery> queries;
};

Fixture MakeFixture() {
  sim::CollectionOptions copt;
  copt.num_sequences = 60;
  copt.length_mu = 6.0;
  copt.length_sigma = 0.4;
  copt.seed = 99;
  sim::WorkloadOptions wopt;
  wopt.num_queries = 4;
  wopt.query_length = 200;
  wopt.homologs_per_query = 3;
  wopt.min_homolog_divergence = 0.03;
  wopt.max_homolog_divergence = 0.12;
  wopt.seed = 7;

  Result<sim::PlantedWorkload> wl = sim::BuildPlantedWorkload(copt, wopt);
  EXPECT_TRUE(wl.ok()) << wl.status().ToString();

  IndexOptions iopt;
  iopt.interval_length = 8;
  Result<InvertedIndex> index = IndexBuilder::Build(wl->collection, iopt);
  EXPECT_TRUE(index.ok()) << index.status().ToString();

  Fixture f;
  f.collection = std::move(wl->collection);
  f.index = std::move(*index);
  f.queries = std::move(wl->queries);
  return f;
}

// The timeline reduced to its thread-count-invariant shape: the set of
// names and the set of (name, parent name) edges. Durations, tids and
// worker multiplicity may vary with --threads; the shape may not.
struct TimelineShape {
  std::set<std::string> names;
  std::set<std::pair<std::string, std::string>> edges;
};

TimelineShape ShapeOf(const obs::SpanRecorder& rec) {
  std::map<uint32_t, std::string> by_id;
  for (const obs::SpanEvent& s : rec.Snapshot()) {
    by_id[s.id] = s.name;
  }
  TimelineShape shape;
  for (const obs::SpanEvent& s : rec.Snapshot()) {
    shape.names.insert(s.name);
    shape.edges.insert(
        {s.name, s.parent == 0 ? std::string("root") : by_id[s.parent]});
  }
  return shape;
}

TEST(SpanEngineTest, TimelineShapeIsThreadCountInvariant) {
  Fixture f = MakeFixture();
  PartitionedSearch engine(&f.collection, &f.index);

  std::vector<TimelineShape> reference;  // per query, from --threads 1
  for (uint32_t threads : {1u, 4u}) {
    std::vector<TimelineShape> shapes;
    for (const sim::PlantedQuery& q : f.queries) {
      SearchOptions options;
      options.fine_candidates = 20;
      options.threads = threads;
      options.chain_mode = ChainMode::kFilter;
      obs::SpanRecorder rec(0x5eed);
      options.spans = &rec;
      Result<SearchResult> r = engine.Search(q.sequence, options);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(rec.dropped(), 0u);
      EXPECT_EQ(rec.current(), 0u);  // every span closed
      shapes.push_back(ShapeOf(rec));
    }
    if (reference.empty()) {
      reference = std::move(shapes);
      continue;
    }
    for (size_t i = 0; i < shapes.size(); ++i) {
      EXPECT_EQ(shapes[i].names, reference[i].names) << "query " << i;
      EXPECT_EQ(shapes[i].edges, reference[i].edges) << "query " << i;
    }
  }

  // The engine alone records the full phase catalogue below the
  // dispatcher: one search root, coarse + postings, chaining, the fine
  // phase with its per-worker spans and merge, and post-processing.
  const std::set<std::string> expected = {
      "search",      "coarse.rank", "index.postings", "chain.filter",
      "fine.align",  "fine.worker", "fine.merge",     "post.process"};
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i].names, expected) << "query " << i;
    EXPECT_TRUE(reference[i].edges.count({"fine.worker", "fine.align"}))
        << "query " << i;
    EXPECT_TRUE(reference[i].edges.count({"index.postings", "coarse.rank"}))
        << "query " << i;
    EXPECT_TRUE(reference[i].edges.count({"search", "root"}))
        << "query " << i;
  }
}

TEST(SpanEngineTest, FineWorkerSpansCarryPoolThreadStamps) {
  Fixture f = MakeFixture();
  PartitionedSearch engine(&f.collection, &f.index);

  SearchOptions options;
  options.fine_candidates = 20;
  options.threads = 4;
  obs::SpanRecorder rec(0xf00d);
  options.spans = &rec;
  Result<SearchResult> r = engine.Search(f.queries[0].sequence, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::map<uint32_t, obs::SpanEvent> by_id;
  for (const obs::SpanEvent& s : rec.Snapshot()) by_id[s.id] = s;
  uint64_t fine_begin = 0;
  uint64_t fine_end = 0;
  size_t workers = 0;
  for (const auto& [id, s] : by_id) {
    if (std::string(s.name) == "fine.align") {
      fine_begin = s.begin_ns;
      fine_end = s.end_ns;
    }
  }
  ASSERT_NE(fine_begin, 0u);
  for (const auto& [id, s] : by_id) {
    if (std::string(s.name) != "fine.worker") continue;
    ++workers;
    // Nested inside the fine phase, and measured on the pool thread —
    // which is never the coordinating thread that opened fine.align.
    EXPECT_STREQ(by_id[s.parent].name, "fine.align");
    EXPECT_GE(s.begin_ns, fine_begin);
    EXPECT_LE(s.end_ns, fine_end);
    EXPECT_GE(s.end_ns, s.begin_ns);
    EXPECT_NE(s.tid, by_id[s.parent].tid);
  }
  EXPECT_GE(workers, 1u);
  EXPECT_LE(workers, 4u);
}

}  // namespace
}  // namespace cafe
