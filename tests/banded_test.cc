#include <gtest/gtest.h>

#include "align/smith_waterman.h"
#include "alphabet/nucleotide.h"
#include "util/random.h"

namespace cafe {
namespace {

std::string RandomSeq(size_t len, Rng* rng) {
  std::string s(len, 'A');
  for (char& c : s) c = CodeToBase(static_cast<int>(rng->Uniform(4)));
  return s;
}

TEST(BandedTest, EmptyAndDegenerate) {
  Aligner aligner;
  EXPECT_EQ(aligner.BandedScore("", "ACGT", 0, 8), 0);
  EXPECT_EQ(aligner.BandedScore("ACGT", "", 0, 8), 0);
  EXPECT_EQ(aligner.BandedScore("ACGT", "ACGT", 0, -1), 0);
}

TEST(BandedTest, PerfectMatchOnCenterDiagonal) {
  Aligner aligner;
  const ScoringScheme& s = aligner.scheme();
  EXPECT_EQ(aligner.BandedScore("ACGTACGT", "ACGTACGT", 0, 4),
            8 * s.match);
  // Band of zero still covers an exact diagonal alignment.
  EXPECT_EQ(aligner.BandedScore("ACGTACGT", "ACGTACGT", 0, 0),
            8 * s.match);
}

TEST(BandedTest, OffsetDiagonal) {
  Aligner aligner;
  const ScoringScheme& s = aligner.scheme();
  // Query matches target at offset 6: diagonal = +6.
  std::string q = "ACGTACGT";
  std::string t = "TTTTTT" + q + "CCC";
  EXPECT_EQ(aligner.BandedScore(q, t, 6, 2), 8 * s.match);
  // A band centred on the wrong diagonal (far away) misses the match.
  EXPECT_LT(aligner.BandedScore(q, t, -6, 2), 8 * s.match);
}

TEST(BandedTest, WideBandEqualsFullSmithWaterman) {
  Rng rng(555);
  Aligner aligner;
  for (int trial = 0; trial < 30; ++trial) {
    std::string q = RandomSeq(5 + rng.Uniform(40), &rng);
    std::string t = RandomSeq(5 + rng.Uniform(40), &rng);
    // A band wide enough to cover the entire matrix is exact.
    int band = static_cast<int>(q.size() + t.size());
    int64_t diag =
        (static_cast<int64_t>(t.size()) - static_cast<int64_t>(q.size())) /
        2;
    EXPECT_EQ(aligner.BandedScore(q, t, diag, band),
              aligner.ScoreOnly(q, t))
        << "q=" << q << " t=" << t;
  }
}

TEST(BandedTest, NarrowBandIsLowerBound) {
  Rng rng(777);
  Aligner aligner;
  for (int trial = 0; trial < 30; ++trial) {
    std::string q = RandomSeq(20 + rng.Uniform(40), &rng);
    std::string t = RandomSeq(20 + rng.Uniform(40), &rng);
    int full = aligner.ScoreOnly(q, t);
    for (int band : {0, 2, 8}) {
      EXPECT_LE(aligner.BandedScore(q, t, 0, band), full);
    }
  }
}

TEST(BandedTest, GapWithinBand) {
  Aligner aligner;
  const ScoringScheme& s = aligner.scheme();
  std::string t = "ACGTAAGCTATTGCACGGAT";
  std::string q = t.substr(0, 10) + "CC" + t.substr(10);
  int expected = 20 * s.match + s.gap_open + s.gap_extend;
  // Diagonal drifts from 0 to -2; band 4 covers it.
  EXPECT_EQ(aligner.BandedScore(q, t, 0, 4), expected);
  EXPECT_EQ(aligner.BandedScore(q, t, -1, 4), expected);
}

TEST(BandedTest, BandedAlignMatchesBandedScore) {
  Rng rng(888);
  Aligner aligner;
  for (int trial = 0; trial < 25; ++trial) {
    std::string q = RandomSeq(10 + rng.Uniform(50), &rng);
    std::string t = RandomSeq(10 + rng.Uniform(50), &rng);
    for (int band : {3, 10}) {
      int score = aligner.BandedScore(q, t, 0, band);
      Result<LocalAlignment> a = aligner.BandedAlign(q, t, 0, band);
      ASSERT_TRUE(a.ok());
      EXPECT_EQ(a->score, score);
    }
  }
}

TEST(BandedTest, BandedAlignTracebackCoordinates) {
  Aligner aligner;
  std::string q = "TTTTACGTACGTTTTT";
  std::string t = "GGGGACGTACGTGGGG";
  Result<LocalAlignment> a = aligner.BandedAlign(q, t, 0, 4);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->query_begin, 4u);
  EXPECT_EQ(a->query_end, 12u);
  EXPECT_EQ(a->target_begin, 4u);
  EXPECT_EQ(a->target_end, 12u);
  EXPECT_EQ(a->Cigar(), "8=");
}

TEST(BandedTest, BandedAlignOnShiftedDiagonal) {
  Aligner aligner;
  std::string q = "ACGTACGTAC";
  std::string t = std::string(25, 'T') + q;
  Result<LocalAlignment> a = aligner.BandedAlign(q, t, 25, 3);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->score, 10 * aligner.scheme().match);
  EXPECT_EQ(a->target_begin, 25u);
  EXPECT_EQ(a->target_end, 35u);
  EXPECT_EQ(a->Identity(), 1.0);
}

TEST(BandedTest, HomologRecoveredThroughIndels) {
  // A banded alignment around the true diagonal must recover most of the
  // score even with scattered indels, as long as drift < band.
  Aligner aligner;
  std::string core = "ACGGTTACAGCATTGACCGTAGGCATCAGGATTACAGGCA";
  std::string q = core;
  // Concatenation (rather than string::insert) sidesteps a GCC 12
  // -Wrestrict false positive (GCC PR105651). Equivalent to inserting
  // "G" at offset 10 and "TT" at offset 30 of the result.
  std::string t = core.substr(0, 10) + "G" + core.substr(10, 19) + "TT" +
                  core.substr(29);
  int banded = aligner.BandedScore(q, t, 0, 8);
  int full = aligner.ScoreOnly(q, t);
  EXPECT_EQ(banded, full);
}

TEST(BandedTest, CellAccountingGrowsWithBand) {
  Aligner aligner;
  std::string q(50, 'A'), t(50, 'A');
  aligner.ResetCellCount();
  aligner.BandedScore(q, t, 0, 2);
  uint64_t narrow = aligner.cells_computed();
  aligner.ResetCellCount();
  aligner.BandedScore(q, t, 0, 20);
  uint64_t wide = aligner.cells_computed();
  EXPECT_LT(narrow, wide);
}

}  // namespace
}  // namespace cafe
