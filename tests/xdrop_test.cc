#include "align/xdrop.h"

#include <gtest/gtest.h>

namespace cafe {
namespace {

class XDropTest : public ::testing::Test {
 protected:
  ScoringScheme scheme_;
  PairScoreTable table_{scheme_};
};

TEST_F(XDropTest, SeedOnlyNoExtension) {
  // Seed surrounded by mismatches: extension stops immediately.
  std::string q = "CCCCACGTCCCC";
  std::string t = "GGGGACGTGGGG";
  UngappedSegment seg = XDropExtend(q, t, 4, 4, 4, table_, 10);
  EXPECT_EQ(seg.score, 4 * scheme_.match);
  EXPECT_EQ(seg.query_begin, 4u);
  EXPECT_EQ(seg.query_end, 8u);
  EXPECT_EQ(seg.target_begin, 4u);
  EXPECT_EQ(seg.target_end, 8u);
}

TEST_F(XDropTest, ExtendsBothDirections) {
  std::string q = "ACGTACGTACGT";
  std::string t = q;
  UngappedSegment seg = XDropExtend(q, t, 4, 4, 4, table_, 20);
  EXPECT_EQ(seg.score, 12 * scheme_.match);
  EXPECT_EQ(seg.query_begin, 0u);
  EXPECT_EQ(seg.query_end, 12u);
}

TEST_F(XDropTest, ExtensionAtSequenceBoundaries) {
  std::string q = "ACGT";
  std::string t = "ACGT";
  UngappedSegment seg = XDropExtend(q, t, 0, 0, 4, table_, 20);
  EXPECT_EQ(seg.score, 4 * scheme_.match);
  EXPECT_EQ(seg.query_begin, 0u);
  EXPECT_EQ(seg.query_end, 4u);
}

TEST_F(XDropTest, OffsetSeedPositions) {
  std::string q = "AAAACGTACGTAAA";
  std::string t = "GGGGGGGGGCGTACGTGGG";
  // q[4..8) = "CGTA" matches t[9..13).
  UngappedSegment seg = XDropExtend(q, t, 4, 9, 4, table_, 10);
  EXPECT_GE(seg.score, 4 * scheme_.match);
  EXPECT_GE(static_cast<int>(seg.query_end - seg.query_begin), 4);
  // The extension keeps the diagonal.
  EXPECT_EQ(seg.target_begin - seg.query_begin, 5u);
  EXPECT_EQ(seg.target_end - seg.query_end, 5u);
}

TEST_F(XDropTest, ToleratesIsolatedMismatch) {
  // One mismatch inside a long match run: extension should push through
  // (drop 4 < xdrop 20) and recover.
  std::string core = "ACGGTTACAGCATTGACCGT";
  std::string q = core + "ACGT" + core;
  std::string t = core + "ACCT" + core;  // one mismatch in the middle
  UngappedSegment seg =
      XDropExtend(q, t, 0, 0, 4, table_, 20);
  EXPECT_EQ(seg.query_end, q.size());
  EXPECT_EQ(seg.score,
            static_cast<int>(q.size() - 1) * scheme_.match +
                scheme_.mismatch);
}

TEST_F(XDropTest, StopsAtMismatchWall) {
  // With a small xdrop, a run of mismatches terminates the arm before the
  // distant match region is reached.
  std::string q = "ACGTACGT" + std::string(10, 'A') + "ACGTACGT";
  std::string t = "ACGTACGT" + std::string(10, 'C') + "ACGTACGT";
  UngappedSegment seg = XDropExtend(q, t, 0, 0, 8, table_, 8);
  EXPECT_EQ(seg.query_begin, 0u);
  EXPECT_EQ(seg.query_end, 8u);  // did not cross the wall
  EXPECT_EQ(seg.score, 8 * scheme_.match);
}

TEST_F(XDropTest, CrossesWallWithLargeXdrop) {
  std::string q = "ACGTACGT" + std::string(3, 'A') + "ACGTACGT";
  std::string t = "ACGTACGT" + std::string(3, 'C') + "ACGTACGT";
  // Drop through the wall: 3 mismatches cost 12; xdrop 20 allows it.
  UngappedSegment seg = XDropExtend(q, t, 0, 0, 8, table_, 20);
  EXPECT_EQ(seg.query_end, q.size());
  EXPECT_EQ(seg.score, 16 * scheme_.match + 3 * scheme_.mismatch);
}

TEST_F(XDropTest, LengthAccessor) {
  UngappedSegment seg;
  seg.query_begin = 3;
  seg.query_end = 10;
  EXPECT_EQ(seg.Length(), 7u);
}

}  // namespace
}  // namespace cafe
