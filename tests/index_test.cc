#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include <map>

#include "collection/collection.h"
#include "index/interval.h"
#include "sim/generator.h"

namespace cafe {
namespace {

SequenceCollection SmallCollection() {
  SequenceCollection col;
  EXPECT_TRUE(col.Add("a", "", "ACGTACGTAC").ok());
  EXPECT_TRUE(col.Add("b", "", "TTTTACGTTTTT").ok());
  EXPECT_TRUE(col.Add("c", "", "GGGGGGGG").ok());
  EXPECT_TRUE(col.Add("d", "", "ACGNNACGT").ok());
  return col;
}

// Brute-force positional index for cross-checking.
std::map<uint32_t, std::vector<std::pair<uint32_t, uint32_t>>> BruteForce(
    const SequenceCollection& col, int n, uint32_t stride) {
  std::map<uint32_t, std::vector<std::pair<uint32_t, uint32_t>>> ref;
  std::string seq;
  for (uint32_t doc = 0; doc < col.NumSequences(); ++doc) {
    EXPECT_TRUE(col.GetSequence(doc, &seq).ok());
    ForEachInterval(seq, n, stride, [&](uint32_t pos, uint32_t term) {
      ref[term].emplace_back(doc, pos);
    });
  }
  return ref;
}

void ExpectIndexMatchesBruteForce(const SequenceCollection& col,
                                  const InvertedIndex& index) {
  auto ref = BruteForce(col, index.options().interval_length,
                        index.options().stride);
  EXPECT_EQ(index.stats().num_terms, ref.size());
  for (const auto& [term, entries] : ref) {
    std::vector<std::pair<uint32_t, uint32_t>> got;
    index.ForEachPosting(term, [&](uint32_t doc, uint32_t tf,
                                   const uint32_t* positions,
                                   uint32_t npos) {
      EXPECT_EQ(tf, npos);
      for (uint32_t i = 0; i < npos; ++i) {
        got.emplace_back(doc, positions[i]);
      }
    });
    EXPECT_EQ(got, entries) << "term " << term;
  }
}

TEST(IndexBuilderTest, SmallCollectionMatchesBruteForce) {
  SequenceCollection col = SmallCollection();
  IndexOptions options;
  options.interval_length = 4;
  Result<InvertedIndex> index = IndexBuilder::Build(col, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  ExpectIndexMatchesBruteForce(col, *index);
}

TEST(IndexBuilderTest, SyntheticCollectionMatchesBruteForce) {
  sim::CollectionOptions copt;
  copt.num_sequences = 40;
  copt.length_mu = 5.0;  // short sequences keep the test fast
  copt.length_sigma = 0.4;
  copt.seed = 11;
  sim::CollectionGenerator gen(copt);
  Result<SequenceCollection> col = gen.Generate();
  ASSERT_TRUE(col.ok());

  for (int n : {4, 8}) {
    IndexOptions options;
    options.interval_length = n;
    Result<InvertedIndex> index = IndexBuilder::Build(*col, options);
    ASSERT_TRUE(index.ok());
    ExpectIndexMatchesBruteForce(*col, *index);
  }
}

TEST(IndexBuilderTest, StrideIndexing) {
  SequenceCollection col = SmallCollection();
  IndexOptions options;
  options.interval_length = 4;
  options.stride = 4;
  Result<InvertedIndex> index = IndexBuilder::Build(col, options);
  ASSERT_TRUE(index.ok());
  ExpectIndexMatchesBruteForce(col, *index);
  // Strided index must be smaller than the overlapping one.
  IndexOptions full = options;
  full.stride = 1;
  Result<InvertedIndex> dense = IndexBuilder::Build(col, full);
  ASSERT_TRUE(dense.ok());
  EXPECT_LT(index->stats().total_postings, dense->stats().total_postings);
}

TEST(IndexBuilderTest, DocumentGranularity) {
  SequenceCollection col = SmallCollection();
  IndexOptions options;
  options.interval_length = 4;
  options.granularity = IndexGranularity::kDocument;
  Result<InvertedIndex> index = IndexBuilder::Build(col, options);
  ASSERT_TRUE(index.ok());

  auto ref = BruteForce(col, 4, 1);
  for (const auto& [term, entries] : ref) {
    std::map<uint32_t, uint32_t> expected_tf;
    for (auto [doc, pos] : entries) ++expected_tf[doc];
    std::map<uint32_t, uint32_t> got;
    index->ForEachPosting(term, [&](uint32_t doc, uint32_t tf,
                                    const uint32_t* positions,
                                    uint32_t npos) {
      EXPECT_EQ(positions, nullptr);
      EXPECT_EQ(npos, 0u);
      got[doc] = tf;
    });
    EXPECT_EQ(got, expected_tf) << "term " << term;
  }
  // Document-level postings must be smaller than positional.
  IndexOptions positional;
  positional.interval_length = 4;
  Result<InvertedIndex> pos_index = IndexBuilder::Build(col, positional);
  ASSERT_TRUE(pos_index.ok());
  EXPECT_LT(index->stats().postings_bits, pos_index->stats().postings_bits);
}

TEST(IndexBuilderTest, WildcardsNeverIndexed) {
  SequenceCollection col;
  ASSERT_TRUE(col.Add("w", "", "ACGTNNNNACGT").ok());
  IndexOptions options;
  options.interval_length = 4;
  Result<InvertedIndex> index = IndexBuilder::Build(col, options);
  ASSERT_TRUE(index.ok());
  // Only positions 0 and 8 are wildcard-free windows... plus inner ones:
  // windows 0 (ACGT) and 8 (ACGT) are valid; everything crossing N is not.
  EXPECT_EQ(index->stats().total_postings, 2u);
}

TEST(IndexBuilderTest, IndexStoppingDropsFrequentTerms) {
  // AAAA occurs in every sequence; CGTA in only one.
  SequenceCollection col;
  ASSERT_TRUE(col.Add("a", "", "AAAAAAA").ok());
  ASSERT_TRUE(col.Add("b", "", "AAAACGTA").ok());
  ASSERT_TRUE(col.Add("c", "", "TTAAAATT").ok());

  IndexOptions options;
  options.interval_length = 4;
  options.stop_doc_fraction = 0.7;  // terms in >70% of docs are stopped
  Result<InvertedIndex> index = IndexBuilder::Build(col, options);
  ASSERT_TRUE(index.ok());

  int64_t aaaa = EncodeInterval("AAAA", 4);
  EXPECT_EQ(index->FindTerm(static_cast<uint32_t>(aaaa)), nullptr);
  int64_t cgta = EncodeInterval("CGTA", 4);
  EXPECT_NE(index->FindTerm(static_cast<uint32_t>(cgta)), nullptr);
  EXPECT_GT(index->stats().stopped_terms, 0u);
  EXPECT_GT(index->stats().stopped_postings, 0u);
}

TEST(IndexBuilderTest, StoppingDisabledKeepsEverything) {
  SequenceCollection col = SmallCollection();
  IndexOptions options;
  options.interval_length = 4;
  options.stop_doc_fraction = 1.0;
  Result<InvertedIndex> index = IndexBuilder::Build(col, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->stats().stopped_terms, 0u);
}

TEST(IndexBuilderTest, DocLengthsRecorded) {
  SequenceCollection col = SmallCollection();
  IndexOptions options;
  options.interval_length = 4;
  Result<InvertedIndex> index = IndexBuilder::Build(col, options);
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->num_docs(), 4u);
  EXPECT_EQ(index->doc_length(0), 10u);
  EXPECT_EQ(index->doc_length(2), 8u);
}

TEST(IndexBuilderTest, RejectsBadOptions) {
  SequenceCollection col = SmallCollection();
  IndexOptions options;
  options.interval_length = 2;
  EXPECT_TRUE(IndexBuilder::Build(col, options)
                  .status()
                  .IsInvalidArgument());
  options.interval_length = 8;
  options.stride = 0;
  EXPECT_TRUE(IndexBuilder::Build(col, options)
                  .status()
                  .IsInvalidArgument());
  options.stride = 1;
  options.stop_doc_fraction = 0.0;
  EXPECT_TRUE(IndexBuilder::Build(col, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(IndexBuilderTest, RejectsEmptyCollection) {
  SequenceCollection col;
  IndexOptions options;
  EXPECT_TRUE(IndexBuilder::Build(col, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(IndexBuilderTest, UnknownTermLookupIsNoop) {
  SequenceCollection col = SmallCollection();
  IndexOptions options;
  options.interval_length = 4;
  Result<InvertedIndex> index = IndexBuilder::Build(col, options);
  ASSERT_TRUE(index.ok());
  bool called = false;
  index->ForEachPosting(EncodeInterval("CCCC", 4),
                        [&](uint32_t, uint32_t, const uint32_t*, uint32_t) {
                          called = true;
                        });
  EXPECT_FALSE(called);
}

TEST(IndexStatsTest, BitsPerPostingComputed) {
  SequenceCollection col = SmallCollection();
  IndexOptions options;
  options.interval_length = 4;
  Result<InvertedIndex> index = IndexBuilder::Build(col, options);
  ASSERT_TRUE(index.ok());
  const IndexStats& s = index->stats();
  EXPECT_GT(s.total_postings, 0u);
  EXPECT_GT(s.postings_bits, 0u);
  EXPECT_NEAR(s.bits_per_posting,
              static_cast<double>(s.postings_bits) / s.total_postings,
              1e-9);
}

}  // namespace
}  // namespace cafe
