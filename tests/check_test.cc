#include "util/check.h"

#include <gtest/gtest.h>

namespace cafe {
namespace {

// Death-test suites follow the gtest *DeathTest naming convention so the
// runner schedules them first.

TEST(CheckDeathTest, FailureAbortsWithFileLineAndCondition) {
  EXPECT_DEATH(CAFE_CHECK(1 == 2),
               "check_test\\.cc:[0-9]+: Check failed: 1 == 2");
}

TEST(CheckDeathTest, StreamedContextIsAppended) {
  int term = 7;
  EXPECT_DEATH(CAFE_CHECK(false) << "while decoding term " << term,
               "Check failed: false.*while decoding term 7");
}

TEST(CheckDeathTest, OpVariantsPrintBothOperands) {
  int a = 3;
  int b = 5;
  EXPECT_DEATH(CAFE_CHECK_EQ(a, b), "Check failed: a == b \\(3 vs\\. 5\\)");
  EXPECT_DEATH(CAFE_CHECK_NE(a, a), "Check failed: a != a \\(3 vs\\. 3\\)");
  EXPECT_DEATH(CAFE_CHECK_LT(b, a), "Check failed: b < a \\(5 vs\\. 3\\)");
  EXPECT_DEATH(CAFE_CHECK_LE(b, a), "Check failed: b <= a \\(5 vs\\. 3\\)");
  EXPECT_DEATH(CAFE_CHECK_GT(a, b), "Check failed: a > b \\(3 vs\\. 5\\)");
  EXPECT_DEATH(CAFE_CHECK_GE(a, b), "Check failed: a >= b \\(3 vs\\. 5\\)");
}

TEST(CheckDeathTest, OpVariantsStreamExtraContext) {
  EXPECT_DEATH(CAFE_CHECK_EQ(2, 4) << "block " << 9,
               "\\(2 vs\\. 4\\).*block 9");
}

TEST(CheckTest, PassingChecksDoNotFire) {
  CAFE_CHECK(true);
  CAFE_CHECK(1 + 1 == 2) << "never rendered";
  CAFE_CHECK_EQ(4, 4);
  CAFE_CHECK_NE(4, 5);
  CAFE_CHECK_LT(4, 5);
  CAFE_CHECK_LE(4, 4);
  CAFE_CHECK_GT(5, 4);
  CAFE_CHECK_GE(5, 5);
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto once = [&calls] {
    ++calls;
    return true;
  };
  CAFE_CHECK(once());
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, WorksWithDanglingElse) {
  // The macros must parse as a single statement.
  if (true)
    CAFE_CHECK(true);
  else
    CAFE_CHECK(false);

  if (true)
    CAFE_CHECK_EQ(1, 1);
  else
    CAFE_CHECK_EQ(1, 2);
}

TEST(CheckTest, DcheckMatchesBuildType) {
#ifdef NDEBUG
  // Release: DCHECK is compiled out and must not evaluate its operands.
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return false;
  };
  CAFE_DCHECK(touch());
  CAFE_DCHECK_EQ(evaluations, 12345);
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_DEATH(CAFE_DCHECK(false), "Check failed: false");
  EXPECT_DEATH(CAFE_DCHECK_EQ(1, 2), "\\(1 vs\\. 2\\)");
#endif
}

TEST(CheckTest, StringsAndPointersStream) {
  std::string name = "golomb";
  const char* literal = "param";
  CAFE_CHECK_EQ(name, std::string("golomb")) << literal;
}

}  // namespace
}  // namespace cafe
