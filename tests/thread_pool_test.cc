#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace cafe {
namespace {

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, DefaultSizeMatchesHardware) {
  ThreadPool pool;
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareThreads());
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> ok = pool.Submit([] {});
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker survives a throwing task.
  std::future<void> after = pool.Submit([] {});
  EXPECT_NO_THROW(after.get());
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] { ++ran; });
    }
  }  // ~ThreadPool waits for all submitted work
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(1000);
  pool.ParallelFor(seen.size(),
                   [&](size_t i, unsigned /*worker*/) { ++seen[i]; });
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWorkerIdsAreDense) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<unsigned> ids;
  pool.ParallelFor(200, [&](size_t /*i*/, unsigned worker) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(worker);
  });
  ASSERT_FALSE(ids.empty());
  // Ids fall in [0, min(num_threads, n)); with 200 items every id that
  // appears is below the pool size.
  EXPECT_LT(*ids.rbegin(), 3u);
}

TEST(ThreadPoolTest, ParallelForZeroItemsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleWorkerRunsInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(10, [&](size_t i, unsigned worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i, unsigned) {
                         ++ran;
                         if (i == 13) {
                           throw std::runtime_error("index 13");
                         }
                       }),
      std::runtime_error);
  // Workers that did not throw keep draining; at least the throwing
  // index ran.
  EXPECT_GE(ran.load(), 1);
  // The pool is still usable afterwards.
  std::atomic<int> again{0};
  pool.ParallelFor(10, [&](size_t, unsigned) { ++again; });
  EXPECT_EQ(again.load(), 10);
}

}  // namespace
}  // namespace cafe
