// End-to-end server lifecycle over real sockets: results through the
// wire must be byte-identical to direct engine calls, concurrent
// clients must all be served, overload and deadline failures must be
// visible to the client, and shutdown must drain in-flight requests.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "search/partitioned.h"
#include "server/client.h"
#include "server/server.h"
#include "sim/generator.h"
#include "sim/workload.h"
#include "util/version.h"

namespace cafe::server {
namespace {

struct Fixture {
  SequenceCollection collection;
  InvertedIndex index;
  std::vector<std::string> queries;
};

Fixture MakeFixture(uint32_t num_queries = 6) {
  sim::CollectionOptions copt;
  copt.num_sequences = 80;
  copt.length_mu = 6.0;
  copt.length_sigma = 0.4;
  copt.seed = 4242;
  Result<SequenceCollection> col =
      sim::CollectionGenerator(copt).Generate();
  EXPECT_TRUE(col.ok()) << col.status().ToString();

  IndexOptions iopt;
  iopt.interval_length = 8;
  Result<InvertedIndex> index = IndexBuilder::Build(*col, iopt);
  EXPECT_TRUE(index.ok()) << index.status().ToString();

  Result<std::vector<std::string>> queries =
      sim::SampleQueries(*col, num_queries, 220, 0.08, 17);
  EXPECT_TRUE(queries.ok()) << queries.status().ToString();

  Fixture f;
  f.collection = std::move(*col);
  f.index = std::move(*index);
  f.queries = std::move(*queries);
  return f;
}

// Everything that travels on the wire must match the direct answer.
void ExpectSameHits(const std::vector<SearchHit>& direct,
                    const std::vector<SearchHit>& remote) {
  ASSERT_EQ(direct.size(), remote.size());
  for (size_t h = 0; h < direct.size(); ++h) {
    EXPECT_EQ(direct[h].seq_id, remote[h].seq_id) << "hit " << h;
    EXPECT_EQ(direct[h].score, remote[h].score) << "hit " << h;
    EXPECT_EQ(direct[h].coarse_score, remote[h].coarse_score)
        << "hit " << h;
    EXPECT_EQ(direct[h].strand, remote[h].strand) << "hit " << h;
  }
}

std::unique_ptr<Client> MustConnect(const Server& server) {
  Result<std::unique_ptr<Client>> client =
      Client::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(*client);
}

TEST(ServerTest, SearchMatchesDirectEngine) {
  Fixture f = MakeFixture();
  PartitionedSearch engine(&f.collection, &f.index);
  Server server(&engine, ServerOptions());
  ASSERT_TRUE(server.Start().ok());

  std::unique_ptr<Client> client = MustConnect(server);
  EXPECT_EQ(client->server_version(), kVersionString);

  for (const std::string& query : f.queries) {
    SearchRequest request;
    request.query = query;
    SearchResponse response;
    Status sent = client->Search(request, &response);
    ASSERT_TRUE(sent.ok()) << sent.ToString();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_FALSE(response.truncated);

    Result<SearchResult> direct =
        SearchWithStrands(&engine, query, request.ToSearchOptions());
    ASSERT_TRUE(direct.ok());
    ExpectSameHits(direct->hits, response.hits);
  }
  server.Shutdown();
}

TEST(ServerTest, BothStrandOptionsTravelTheWire) {
  Fixture f = MakeFixture(/*num_queries=*/3);
  PartitionedSearch engine(&f.collection, &f.index);
  Server server(&engine, ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  std::unique_ptr<Client> client = MustConnect(server);

  SearchRequest request;
  request.query = f.queries[0];
  request.both_strands = true;
  request.max_results = 5;
  request.fine_candidates = 40;
  SearchResponse response;
  ASSERT_TRUE(client->Search(request, &response).ok());
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();

  Result<SearchResult> direct = SearchWithStrands(
      &engine, request.query, request.ToSearchOptions());
  ASSERT_TRUE(direct.ok());
  ExpectSameHits(direct->hits, response.hits);
  server.Shutdown();
}

TEST(ServerTest, FourConcurrentClientsGetCorrectAnswers) {
  Fixture f = MakeFixture();
  PartitionedSearch engine(&f.collection, &f.index);
  ServerOptions options;
  options.dispatcher.workers = 2;
  Server server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  // Reference answers computed directly, once.
  std::vector<std::vector<SearchHit>> expected;
  for (const std::string& query : f.queries) {
    Result<SearchResult> direct =
        SearchWithStrands(&engine, query, SearchRequest().ToSearchOptions());
    ASSERT_TRUE(direct.ok());
    expected.push_back(direct->hits);
  }

  constexpr int kClients = 4;
  constexpr int kRounds = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      std::unique_ptr<Client> client = MustConnect(server);
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < f.queries.size(); ++q) {
          SearchRequest request;
          request.query = f.queries[(q + c) % f.queries.size()];
          SearchResponse response;
          if (!client->Search(request, &response).ok() ||
              !response.status.ok()) {
            failures.fetch_add(1);
            return;
          }
          ExpectSameHits(expected[(q + c) % f.queries.size()],
                         response.hits);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.Shutdown();
}

TEST(ServerTest, TraceIdIsEchoedEndToEnd) {
  Fixture f = MakeFixture(/*num_queries=*/1);
  PartitionedSearch engine(&f.collection, &f.index);
  Server server(&engine, ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  std::unique_ptr<Client> client = MustConnect(server);

  SearchRequest request;
  request.query = f.queries[0];
  request.trace_id = 0x1122334455667788ull;
  SearchResponse response;
  ASSERT_TRUE(client->Search(request, &response).ok());
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.trace_id, 0x1122334455667788ull);

  // Errors echo the id too — it is how the caller correlates failures.
  SearchRequest bad;
  bad.query = "AC!!GT";
  bad.trace_id = 0x99ull;
  ASSERT_TRUE(client->Search(bad, &response).ok());
  EXPECT_TRUE(response.status.IsInvalidArgument());
  EXPECT_EQ(response.trace_id, 0x99ull);
  server.Shutdown();
}

TEST(ServerTest, ClientMintsTraceIdWhenCallerLeavesItZero) {
  Fixture f = MakeFixture(/*num_queries=*/2);
  PartitionedSearch engine(&f.collection, &f.index);
  Server server(&engine, ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  std::unique_ptr<Client> client = MustConnect(server);

  SearchRequest request;
  request.query = f.queries[0];
  ASSERT_EQ(request.trace_id, 0u);  // caller did not set one
  SearchResponse first;
  ASSERT_TRUE(client->Search(request, &first).ok());
  EXPECT_NE(first.trace_id, 0u);  // minted by the client

  SearchResponse second;
  ASSERT_TRUE(client->Search(request, &second).ok());
  EXPECT_NE(second.trace_id, 0u);
  EXPECT_NE(second.trace_id, first.trace_id);  // unique per request
  server.Shutdown();
}

TEST(ServerTest, StatsVerbReturnsServerMetrics) {
  Fixture f = MakeFixture(/*num_queries=*/1);
  PartitionedSearch engine(&f.collection, &f.index);
  Server server(&engine, ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  std::unique_ptr<Client> client = MustConnect(server);

  SearchRequest request;
  request.query = f.queries[0];
  SearchResponse response;
  ASSERT_TRUE(client->Search(request, &response).ok());

  std::string json;
  ASSERT_TRUE(client->Stats(&json).ok());
  EXPECT_NE(json.find("\"command\":\"stats\""), std::string::npos) << json;
  EXPECT_NE(json.find("server.requests_accepted"), std::string::npos)
      << json;
  EXPECT_NE(json.find("server.connections"), std::string::npos) << json;
  EXPECT_NE(json.find(kVersionString), std::string::npos) << json;
  server.Shutdown();
}

TEST(ServerTest, InvalidQueryFailsThatRequestOnly) {
  Fixture f = MakeFixture(/*num_queries=*/1);
  PartitionedSearch engine(&f.collection, &f.index);
  Server server(&engine, ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  std::unique_ptr<Client> client = MustConnect(server);

  SearchRequest bad;
  bad.query = "AC!!GT";
  SearchResponse response;
  ASSERT_TRUE(client->Search(bad, &response).ok());
  EXPECT_TRUE(response.status.IsInvalidArgument())
      << response.status.ToString();

  // The connection survives an in-band error: the next request works.
  SearchRequest good;
  good.query = f.queries[0];
  ASSERT_TRUE(client->Search(good, &response).ok());
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  server.Shutdown();
}

// --- Gated stub engine for overload / deadline / drain tests ---------

class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

class GatedEngine : public SearchEngine {
 public:
  explicit GatedEngine(Gate* gate) : gate_(gate) {}
  std::string name() const override { return "gated-stub"; }
  bool SupportsConcurrentSearch() const override { return true; }
  Result<SearchResult> Search(std::string_view query,
                              const SearchOptions& options) override {
    entered_.fetch_add(1);
    gate_->Wait();
    SearchResult result;
    if (options.deadline != nullptr && options.deadline->Expired()) {
      result.truncated = true;
      return result;
    }
    SearchHit hit;
    hit.seq_id = static_cast<uint32_t>(query.size());
    hit.score = 1;
    result.hits.push_back(hit);
    return result;
  }
  int entered() const { return entered_.load(); }

 private:
  Gate* gate_;
  std::atomic<int> entered_{0};
};

template <typename Pred>
void WaitUntil(Pred pred) {
  for (int i = 0; i < 5000 && !pred(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(pred());
}

TEST(ServerTest, OverloadSurfacesAsOverloadedStatus) {
  Gate gate;
  GatedEngine engine(&gate);
  ServerOptions options;
  options.dispatcher.workers = 1;
  options.dispatcher.max_queue = 1;
  Server server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  // Occupy the worker, then fill the one queue slot.
  std::thread blocked([&] {
    std::unique_ptr<Client> client = MustConnect(server);
    SearchResponse response;
    EXPECT_TRUE(client->Search(SearchRequest{.query = "AAAA"}, &response)
                    .ok());
    EXPECT_TRUE(response.status.ok());
  });
  WaitUntil([&] { return engine.entered() == 1; });
  std::thread queued([&] {
    std::unique_ptr<Client> client = MustConnect(server);
    SearchResponse response;
    EXPECT_TRUE(client->Search(SearchRequest{.query = "CCCC"}, &response)
                    .ok());
    EXPECT_TRUE(response.status.ok());
  });
  obs::MetricsRegistry* metrics = server.metrics();
  WaitUntil([&] {
    return metrics->GetCounter("server.requests_accepted")->Value() == 2;
  });

  // Queue full: this request must come back kOverloaded immediately,
  // while the gate is still closed.
  std::unique_ptr<Client> client = MustConnect(server);
  SearchResponse response;
  ASSERT_TRUE(
      client->Search(SearchRequest{.query = "GGGG"}, &response).ok());
  EXPECT_TRUE(response.status.IsOverloaded())
      << response.status.ToString();

  gate.Open();
  blocked.join();
  queued.join();
  server.Shutdown();
}

TEST(ServerTest, DeadlineExpiredInQueueReturnsTruncatedFast) {
  Gate gate;
  GatedEngine engine(&gate);
  ServerOptions options;
  options.dispatcher.workers = 1;
  Server server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  std::thread blocked([&] {
    std::unique_ptr<Client> client = MustConnect(server);
    SearchResponse response;
    EXPECT_TRUE(client->Search(SearchRequest{.query = "AAAA"}, &response)
                    .ok());
  });
  WaitUntil([&] { return engine.entered() == 1; });

  SearchResponse response;
  std::unique_ptr<Client> client = MustConnect(server);
  SearchRequest doomed;
  doomed.query = "CCCC";
  doomed.deadline_millis = 10;
  std::thread doomed_thread([&] {
    EXPECT_TRUE(client->Search(doomed, &response).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.Open();
  doomed_thread.join();
  blocked.join();

  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.truncated);
  EXPECT_TRUE(response.hits.empty());
  EXPECT_GE(server.metrics()->GetCounter("server.deadline_exceeded")
                ->Value(),
            1u);
  server.Shutdown();
}

TEST(ServerTest, ShutdownDrainsInFlightRequests) {
  Gate gate;
  GatedEngine engine(&gate);
  ServerOptions options;
  options.dispatcher.workers = 1;
  Server server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> got_response{false};
  std::thread in_flight([&] {
    std::unique_ptr<Client> client = MustConnect(server);
    SearchResponse response;
    Status s = client->Search(SearchRequest{.query = "AAAA"}, &response);
    if (s.ok() && response.status.ok() && !response.hits.empty()) {
      got_response.store(true);
    }
  });
  WaitUntil([&] { return engine.entered() == 1; });

  // Shutdown begins while the request is mid-engine; it must wait for
  // the response to be written, not cut the connection.
  std::thread shutdown([&] { server.Shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Open();
  shutdown.join();
  in_flight.join();
  EXPECT_TRUE(got_response.load());

  // The listening socket is gone after shutdown.
  Result<std::unique_ptr<Client>> late =
      Client::Connect("127.0.0.1", server.port());
  EXPECT_FALSE(late.ok());
}

TEST(ServerTest, StartRejectsBadBindAddress) {
  Fixture f = MakeFixture(/*num_queries=*/1);
  PartitionedSearch engine(&f.collection, &f.index);
  ServerOptions options;
  options.bind_address = "not-an-address";
  Server server(&engine, options);
  Status s = server.Start();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

}  // namespace
}  // namespace cafe::server
