// Tests for the introspection HTTP listener: request parsing, routing
// to the handler, error statuses, and shutdown.

#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace cafe::server {
namespace {

// One raw HTTP exchange: connect, send `request` verbatim, read to EOF.
std::string Exchange(uint16_t port, const std::string& request) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  shutdown(fd, SHUT_WR);
  std::string response;
  char buf[1024];
  while (true) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

class HttpServerTest : public ::testing::Test {
 protected:
  void StartServer() {
    HttpOptions options;
    options.metrics = &metrics_;
    server_ = std::make_unique<HttpServer>(
        [](const std::string& path, const std::string& query) {
          HttpResponse response;
          if (path == "/hello") {
            response.body = "hi there\n";
          } else if (path == "/json") {
            response.content_type = "application/json";
            response.body = "{\"ok\":true}";
          } else if (path == "/echo") {
            response.body = "query=" + query + "\n";
          } else {
            response.status = 404;
            response.body = "nope\n";
          }
          return response;
        },
        options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  obs::MetricsRegistry metrics_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, ServesHandlerResponse) {
  StartServer();
  std::string response =
      Exchange(server_->port(), "GET /hello HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos)
      << response;
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 9"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\nhi there\n"), std::string::npos);
}

TEST_F(HttpServerTest, ContentTypePassesThrough) {
  StartServer();
  std::string response =
      Exchange(server_->port(), "GET /json HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("{\"ok\":true}"), std::string::npos);
}

TEST_F(HttpServerTest, UnknownPathIs404) {
  StartServer();
  std::string response =
      Exchange(server_->port(), "GET /missing HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 404 Not Found"), std::string::npos)
      << response;
}

TEST_F(HttpServerTest, QueryStringIsStripped) {
  StartServer();
  std::string response =
      Exchange(server_->port(), "GET /hello?x=1 HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos)
      << response;
}

TEST_F(HttpServerTest, QueryStringReachesHandler) {
  StartServer();
  std::string response = Exchange(
      server_->port(), "GET /echo?trace_id=00c0ffee HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("query=trace_id=00c0ffee\n"), std::string::npos)
      << response;
  // No '?' means the handler sees an empty query string.
  response = Exchange(server_->port(), "GET /echo HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("query=\n"), std::string::npos) << response;
}

TEST_F(HttpServerTest, NonGetIs405) {
  StartServer();
  std::string response = Exchange(
      server_->port(), "POST /hello HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 405 Method Not Allowed"),
            std::string::npos)
      << response;
}

TEST_F(HttpServerTest, MalformedRequestLineIs400) {
  StartServer();
  std::string response = Exchange(server_->port(), "GARBAGE\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 400 Bad Request"), std::string::npos)
      << response;
}

TEST_F(HttpServerTest, CountsRequests) {
  StartServer();
  obs::Counter* requests = metrics_.GetCounter("server.http_requests");
  const uint64_t before = requests->Value();
  (void)Exchange(server_->port(), "GET /hello HTTP/1.0\r\n\r\n");
  (void)Exchange(server_->port(), "GET /missing HTTP/1.0\r\n\r\n");
  EXPECT_EQ(requests->Value(), before + 2);
}

TEST_F(HttpServerTest, ShutdownIsIdempotentAndRestartable) {
  StartServer();
  const uint16_t first_port = server_->port();
  server_->Shutdown();
  server_->Shutdown();  // idempotent
  ASSERT_TRUE(server_->Start().ok());
  EXPECT_NE(server_->port(), 0);
  (void)first_port;
  std::string response =
      Exchange(server_->port(), "GET /hello HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
}

}  // namespace
}  // namespace cafe::server
